// Package mpass_test hosts the benchmark harness that regenerates every
// table and figure of the paper (one testing.B benchmark per experiment;
// see DESIGN.md's experiment index), plus micro-benchmarks of the core
// primitives the attack pipeline is built from.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks share one lazily built evaluation suite and
// cache the offline grid, so Tables I-III pay for the attack grid once.
// Custom metrics (ASR %, AVQ, APR %) are attached via b.ReportMetric.
package mpass_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"mpass/internal/attacks"
	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/eval"
	"mpass/internal/features"
	"mpass/internal/nn"
	"mpass/internal/packer"
	"mpass/internal/pefile"
	"mpass/internal/recovery"
	"mpass/internal/sandbox"
	"mpass/internal/shapley"
)

// benchConfig sizes the experiment benchmarks: the paper's 100-query budget
// on a compact victim set.
func benchConfig() eval.Config {
	cfg := eval.DefaultConfig()
	cfg.Victims = 6
	cfg.NumMalware, cfg.NumBenign = 40, 40
	cfg.TrainFrac = 0.75
	return cfg
}

var (
	suiteOnce sync.Once
	suiteVal  *eval.Suite
	suiteErr  error
)

func suite(b *testing.B) *eval.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = eval.Setup(benchConfig())
	})
	if suiteErr != nil {
		b.Fatalf("suite: %v", suiteErr)
	}
	return suiteVal
}

var (
	gridOnce sync.Once
	gridVal  *eval.Grid
	gridErr  error
)

func offlineGrid(b *testing.B) *eval.Grid {
	b.Helper()
	s := suite(b)
	gridOnce.Do(func() {
		gridVal, gridErr = s.RunOfflineGrid()
	})
	if gridErr != nil {
		b.Fatalf("offline grid: %v", gridErr)
	}
	return gridVal
}

var (
	avGridOnce sync.Once
	avGridVal  *eval.Grid
	avGridErr  error
)

func avGrid(b *testing.B) *eval.Grid {
	b.Helper()
	s := suite(b)
	avGridOnce.Do(func() {
		avGridVal, avGridErr = s.RunAVGrid()
	})
	if avGridErr != nil {
		b.Fatalf("AV grid: %v", avGridErr)
	}
	return avGridVal
}

// reportGrid attaches one metric per (attack, target) cell. Metric units
// must be whitespace-free, so attack names like "Random data" are
// hyphenated.
func reportGrid(b *testing.B, g *eval.Grid, m eval.Metric, unit string) {
	for _, atk := range g.Attacks {
		for _, tgt := range g.Targets {
			if c := g.Cell(atk, tgt); c != nil {
				var v float64
				switch m {
				case eval.MetricASR:
					v = c.ASR()
				case eval.MetricAVQ:
					v = c.AVQ()
				case eval.MetricAPR:
					v = c.APR()
				}
				name := strings.ReplaceAll(atk, " ", "-") + "/" + tgt + "_" + unit
				b.ReportMetric(v, name)
			}
		}
	}
}

// BenchmarkPEMRanking regenerates the §III-B explainability finding
// (Algorithm 1 over the known models).
func BenchmarkPEMRanking(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.RunPEMRanking(5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Top2OverTop3, "rank2/rank3_ratio")
		b.ReportMetric(float64(len(r.Result.Critical)), "critical_sections")
	}
}

// BenchmarkTable1ASR regenerates Table I: attack success rate of the five
// attacks against the four offline models.
func BenchmarkTable1ASR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportGrid(b, offlineGrid(b), eval.MetricASR, "ASR")
	}
}

// BenchmarkTable2AVQ regenerates Table II: average queries per sample.
func BenchmarkTable2AVQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportGrid(b, offlineGrid(b), eval.MetricAVQ, "AVQ")
	}
}

// BenchmarkTable3APR regenerates Table III: average appending rate.
func BenchmarkTable3APR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportGrid(b, offlineGrid(b), eval.MetricAPR, "APR")
	}
}

// BenchmarkFunctionality regenerates the §IV-A sandbox verification of
// every successful AE.
func BenchmarkFunctionality(b *testing.B) {
	s := suite(b)
	grid := offlineGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := s.RunFunctionalityCheck(grid)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			b.ReportMetric(r.Rate(), r.Attack+"_preserved%")
		}
	}
}

// BenchmarkFig3AVGrid regenerates Figure 3: ASR against the five
// commercial-AV simulators.
func BenchmarkFig3AVGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportGrid(b, avGrid(b), eval.MetricASR, "ASR")
	}
}

// BenchmarkTable4Packers regenerates Table IV: UPX/PESpin/ASPack vs MPass
// on the AVs.
func BenchmarkTable4Packers(b *testing.B) {
	s := suite(b)
	ag := avGrid(b)
	mpassRow := make(map[string]*eval.Cell)
	for _, tgt := range ag.Targets {
		if c := ag.Cell("MPass", tgt); c != nil {
			mpassRow[tgt] = c
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid, err := s.RunPackerComparison(mpassRow)
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, grid, eval.MetricASR, "ASR")
	}
}

// BenchmarkFig4Learning regenerates Figure 4: bypass rate of first-time
// successful AEs across five weekly AV learning rounds.
func BenchmarkFig4Learning(b *testing.B) {
	s := suite(b)
	ag := avGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, avName := range []string{"AV1", "AV3", "AV4"} {
			curves, err := s.RunLearningCurve(ag, avName, 5)
			if err != nil {
				b.Fatal(err)
			}
			for atk, series := range curves {
				if len(series) > 0 {
					b.ReportMetric(series[len(series)-1], avName+"/"+atk+"_wk4_bypass%")
				}
			}
		}
	}
}

// BenchmarkTable5OtherSec regenerates Table V: the Other-sec position
// ablation on the AVs.
func BenchmarkTable5OtherSec(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		grid, err := s.RunOtherSecAblation()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, grid, eval.MetricASR, "ASR")
	}
}

// BenchmarkTable6RandomData regenerates Table VI: random data at MPass's
// modification positions.
func BenchmarkTable6RandomData(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		grid, err := s.RunRandomDataAblation()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, grid, eval.MetricASR, "ASR")
	}
}

// BenchmarkEnsembleAblation covers the DESIGN.md design-choice ablation:
// transfer quality with one versus all known models.
func BenchmarkEnsembleAblation(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		grid, err := s.RunEnsembleAblation()
		if err != nil {
			b.Fatal(err)
		}
		reportGrid(b, grid, eval.MetricASR, "ASR")
	}
}

// --- micro-benchmarks of the pipeline primitives ---

func benchVictim(b *testing.B) []byte {
	b.Helper()
	return corpus.NewGenerator(404).Sample(corpus.Malware).Raw
}

// BenchmarkPEParse measures PE32 parsing.
func BenchmarkPEParse(b *testing.B) {
	raw := benchVictim(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pefile.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSandboxRun measures full program execution with tracing.
func BenchmarkSandboxRun(b *testing.B) {
	raw := benchVictim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sandbox.Run(raw)
		if err != nil || !res.Halted() {
			b.Fatal(err, res.Err)
		}
	}
}

// BenchmarkRecoveryBuild measures the shuffled recovery construction.
func BenchmarkRecoveryBuild(b *testing.B) {
	raw := benchVictim(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := pefile.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := recovery.Build(f, recovery.Options{Shuffle: true, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtract measures the EMBER-style feature pipeline.
func BenchmarkFeatureExtract(b *testing.B) {
	raw := benchVictim(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(raw)
	}
}

// BenchmarkDetectorPredict measures one MalConv forward pass.
func BenchmarkDetectorPredict(b *testing.B) {
	s := suite(b)
	raw := benchVictim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MalConv.Score(raw)
	}
}

// BenchmarkDetectorPredictQuant measures the same MalConv forward pass
// through the int32 fixed-point tables — the certified quantized serving
// mode. Compare against BenchmarkDetectorPredict in the same run.
func BenchmarkDetectorPredictQuant(b *testing.B) {
	s := suite(b)
	raw := benchVictim(b)
	s.SetQuantMode(nn.QuantInt32)
	defer s.SetQuantMode(nn.QuantOff)
	s.MalConv.Score(raw) // build the quant tables outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MalConv.Score(raw)
	}
}

// BenchmarkStreamScore measures the O(chunk) streaming scorer on the same
// sample, fed in 4 KiB chunks.
func BenchmarkStreamScore(b *testing.B) {
	s := suite(b)
	raw := benchVictim(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.MalConv.NewStream()
		for off := 0; off < len(raw); off += 4096 {
			end := off + 4096
			if end > len(raw) {
				end = len(raw)
			}
			st.Feed(raw[off:end])
		}
		st.Finish()
	}
}

// BenchmarkInputGradient measures one embedding-space gradient (the unit of
// Eq. 3's optimization).
func BenchmarkInputGradient(b *testing.B) {
	s := suite(b)
	raw := benchVictim(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MalConv.InputGradient(raw, 0).Release()
	}
}

// BenchmarkShapleySample measures one exact section-Shapley computation.
func BenchmarkShapleySample(b *testing.B) {
	s := suite(b)
	raw := benchVictim(b)
	secs := []string{".text", ".data", ".rdata", ".idata"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shapley.SectionShapley(raw, secs, s.MalConv.Score); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPassSingleAttack measures one full MPass attack round trip
// against MalConv.
func BenchmarkMPassSingleAttack(b *testing.B) {
	s := suite(b)
	victim := s.Victims[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(s.KnownFor("MalConv"), s.MPassDonorPool)
		cfg.Seed = int64(i)
		atk, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := atk.Attack(victim.Raw, &core.CountingOracle{Oracle: core.DetectorOracle{D: s.MalConv}})
		if err != nil {
			b.Fatal(err)
		}
		if res.Success {
			b.ReportMetric(float64(res.Queries), "queries")
		}
	}
}

// BenchmarkGAMMASingleAttack measures one GAMMA attack for comparison.
func BenchmarkGAMMASingleAttack(b *testing.B) {
	s := suite(b)
	victim := s.Victims[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atk, err := attacks.NewGAMMA(attacks.Config{
			Donors: s.BaselineDonorPool, MaxQueries: 100, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := atk.Run(victim.Raw, &core.CountingOracle{Oracle: core.DetectorOracle{D: s.MalConv}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPackerUPX measures one UPX pack operation.
func BenchmarkPackerUPX(b *testing.B) {
	raw := benchVictim(b)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := packer.NewUPX().Pack(raw, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelWorkerCounts are the pool sizes the parallel micro-benchmarks
// sweep; 0 resolves to GOMAXPROCS.
var parallelWorkerCounts = []int{1, 2, 4, 0}

// benchTrainingBatch builds one fixed minibatch of corpus samples.
func benchTrainingBatch(b *testing.B, n int) ([][]byte, []float64) {
	b.Helper()
	g := corpus.NewGenerator(505)
	batch := make([][]byte, n)
	ys := make([]float64, n)
	for i := range batch {
		if i%2 == 0 {
			batch[i] = g.Sample(corpus.Malware).Raw
			ys[i] = 1
		} else {
			batch[i] = g.Sample(corpus.Benign).Raw
		}
	}
	return batch, ys
}

// BenchmarkTrainBatchParallel measures the data-parallel minibatch step of
// the MalConv architecture across worker counts. Losses and weights are
// bit-identical at every count; only wall-clock should move.
func BenchmarkTrainBatchParallel(b *testing.B) {
	batch, ys := benchTrainingBatch(b, 16)
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			net, err := nn.NewConvNet(nn.ConvConfig{
				SeqLen: detect.SeqLen, EmbedDim: 4, Kernel: 8, Stride: 8, Filters: 8, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			net.Workers = workers
			opt := nn.NewAdam(5e-3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.TrainBatch(batch, ys, opt)
			}
			b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkShapleyParallel measures the pooled exact-Shapley subset
// enumeration (2^4 ablated renders + model evaluations per op) across
// worker counts, against the trained MalConv.
func BenchmarkShapleyParallel(b *testing.B) {
	s := suite(b)
	raw := benchVictim(b)
	secs := []string{".text", ".data", ".rdata", ".idata"}
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := shapley.SectionShapleyWorkers(raw, secs, s.MalConv.Score, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(int(1)<<len(secs))/b.Elapsed().Seconds(), "subset-evals/sec")
		})
	}
}

// BenchmarkScoreBatch measures the batched scoring path on the trained
// MalConv — the unit the harness's victim selection and calibration use.
func BenchmarkScoreBatch(b *testing.B) {
	s := suite(b)
	raws, _ := benchTrainingBatch(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MalConv.ScoreBatch(raws)
	}
	b.ReportMetric(float64(b.N*len(raws))/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkDetectorTraining measures training one MalConv from scratch.
func BenchmarkDetectorTraining(b *testing.B) {
	ds := corpus.MakeAugmentedDataset(55, 20, 20, 0.8)
	cfg := detect.DefaultTrainConfig()
	cfg.Epochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := detect.TrainMalConv(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
