# Build / verify entry points. `make ci` is the gate: build, vet, tests,
# the race detector over the parallel engine, and a benchmark smoke.

GO ?= go

# Packages owning the parallel compute layer and its parity tests; the race
# target drills into these (the full suite under -race is race-all, which
# retrains every eval model and takes tens of minutes).
PARALLEL_PKGS = ./internal/parallel ./internal/tensor ./internal/nn \
                ./internal/shapley ./internal/detect ./internal/av \
                ./internal/server ./internal/features ./internal/gateway \
                ./internal/faultinject ./internal/engine ./internal/analysis \
                ./internal/tenant

# BENCH_N.json names follow the PR sequence and are append-only history:
# benchjson refuses to overwrite an existing trajectory file, so a new run
# bumps the number (or passes FORCE_BENCH=1 to regenerate in place).
BENCH_JSON ?= BENCH_4.json
SERVE_BENCH_JSON ?= BENCH_5.json
CLUSTER_BENCH_JSON ?= BENCH_6.json
RELOAD_BENCH_JSON ?= BENCH_7.json
LINT_BENCH_JSON ?= BENCH_8.json
SCENARIO_BENCH_JSON ?= BENCH_9.json
BENCHJSON_FORCE = $(if $(FORCE_BENCH),-force,)

.PHONY: all build vet lint lint-bench test race race-all bench bench-full \
        bench-json quant-gate alloc serve-smoke serve-faults reload-smoke \
        cluster-smoke scenario-gate ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own invariant analyzers (internal/analysis via
# cmd/mpass-lint): goroutine discipline, weight-mutation guards,
# determinism, typed atomics, bounded serving queues, the
# //mpass:zeroalloc pragma, and the round-2 dataflow set — snapshotonce
# (one generation pin per request path), mutexguard (//mpass:guardedby
# lock discipline), versionkey ((version, hash) cache keys), failclosed
# (error-tainted scores never reach responses, caches, or nil-error
# returns). Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/mpass-lint ./...

# lint-bench gates the dataflow round's cost: a full 11-analyzer run over
# the loaded tree must stay within 2x of the PR 4 per-file baseline
# (ns(baseline)/ns(full) >= 0.5). Writes $(LINT_BENCH_JSON) on first run
# (append-only; FORCE_BENCH=1 regenerates).
lint-bench:
	$(GO) test -run '^$$' -bench 'Lint(Baseline|Full)$$' -benchtime=3x -count=1 \
		./internal/analysis | $(GO) run ./cmd/benchjson $(BENCHJSON_FORCE) \
		-gate 'BenchmarkLintBaseline,BenchmarkLintFull,0.5' -out $(LINT_BENCH_JSON)

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 $(PARALLEL_PKGS)

race-all:
	$(GO) test -race -count=1 ./...

# bench is the quick smoke: the data-parallel training step across worker
# counts, no experiment-suite setup.
bench:
	$(GO) test -run '^$$' -bench 'TrainBatchParallel' -benchtime=3x -benchmem .

# bench-full sweeps every micro- and experiment benchmark (sets up the full
# evaluation suite; expect minutes).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-json runs the inference-engine benchmarks and a serving-layer load
# run, writing machine-readable reports for regression diffing.
bench-json:
	$(GO) test -run '^$$' \
		-bench 'DetectorPredict$$|DetectorPredictQuant$$|StreamScore$$|InputGradient$$|ShapleySample$$' \
		-benchmem -count=1 . | $(GO) run ./cmd/benchjson $(BENCHJSON_FORCE) -out $(BENCH_JSON)
	sh scripts/serve_bench.sh bench | $(GO) run ./cmd/benchjson $(BENCHJSON_FORCE) -out $(SERVE_BENCH_JSON)

# quant-gate is the fixed-point speedup gate: the int32 quantized table
# path must beat the float64 table path by >= 1.3x, measured in a single
# `go test -bench` run on the serving-size network so machine noise
# cancels. (The matching accuracy gates — <= 1e-6 score deviation and zero
# label flips on the eval corpus — are ordinary tests in internal/nn and
# internal/detect.)
quant-gate:
	$(GO) test -run '^$$' -bench 'PredictTable(Float|Quant32)$$' -count=1 \
		./internal/nn | $(GO) run ./cmd/benchjson \
		-gate 'BenchmarkPredictTableFloat,BenchmarkPredictTableQuant32,1.3' >/dev/null

# serve-smoke boots mpassd on a random port, drives it with mpass-load
# (healthz preflight, scan burst, one attack job, /metrics cross-check), and
# verifies a graceful SIGTERM drain.
serve-smoke:
	sh scripts/serve_bench.sh smoke

# serve-faults is the resilience drill: mpassd runs with deterministic
# oracle fault injection (hangs, transient errors, latency) and mpass-load
# -faults verifies every attack job still reaches a terminal state, then the
# SIGTERM drain must complete within its deadline.
serve-faults:
	sh scripts/serve_bench.sh faults

# reload-smoke is the zero-downtime hot-reload drill: mpassd persists its
# engines as a per-engine envelope directory, then mpass-load -reload swaps
# model generations from inside a sustained scan burst — every swap must
# certify (health, finite probes, int32 quant parity) and land, every scan
# response must carry a generation the server really served, and /healthz
# and /metrics must agree with the last swap. Writes $(RELOAD_BENCH_JSON)
# on first run (append-only; FORCE_BENCH=1 regenerates).
reload-smoke:
	sh scripts/serve_bench.sh reload | $(GO) run ./cmd/benchjson \
		$(BENCHJSON_FORCE) -out $(RELOAD_BENCH_JSON)

# cluster-smoke boots 3 mpassd replicas behind mpass-gateway (one training
# run, shared models.gob), compares a single-replica burst against the same
# burst through the gateway (host-aware speedup gate — 2.5x on >= 4 CPUs,
# a sanity bound on smaller hosts), enforces the shard-affinity checks
# (per-replica cache-hit ratio >= 0.9, misses near the distinct-sample
# count), and runs a replica kill drill: SIGKILL one replica and require
# zero failed scans while the ring re-shards. Writes $(CLUSTER_BENCH_JSON)
# on first run.
cluster-smoke:
	CLUSTER_BENCH_JSON=$(CLUSTER_BENCH_JSON) FORCE_BENCH=$(FORCE_BENCH) \
		sh scripts/serve_cluster.sh smoke

# alloc is the allocation-regression gate: the scoring and gradient hot
# paths — float, quantized, and streaming — must stay zero-allocation in
# steady state.
alloc:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/nn

# scenario-gate is the multi-tenant serving gate: a 2-replica fleet with
# the scenarios/tenants.json allowlist behind the gateway runs the
# noisy-neighbor scenario (phased multi-tenant contention, mixed
# scan/cachemiss/attack/stream traffic) and enforces its thresholds —
# p99, shed rate, per-tenant fairness bound, correctness == 1.0,
# Retry-After >= 1 on every 429. A negative drill first proves a broken
# threshold exits non-zero, then a SIGHUP drill proves the allowlist
# hot-reload keeps auth closed. Writes $(SCENARIO_BENCH_JSON) on first run.
scenario-gate:
	SCENARIO_BENCH_JSON=$(SCENARIO_BENCH_JSON) FORCE_BENCH=$(FORCE_BENCH) \
		sh scripts/scenario_gate.sh

ci: build vet lint lint-bench test race alloc bench quant-gate serve-smoke serve-faults reload-smoke cluster-smoke scenario-gate
