// Package av simulates the five commercial ML-based antivirus products the
// paper attacks through VirusTotal (§IV-B: MAX, CrowdStrike, Acronis,
// SentinelOne, Cylance — anonymized as AV1..AV5).
//
// Each AV is a heterogeneous detector ensemble behind a hard-label query
// interface: one or two ML members (gated-conv nets and boosted trees with
// vendor-specific architectures, seeds, and thresholds), static heuristics
// commercial engines ship (packed-file entropy, byte-distribution anomaly),
// and a byte-signature store. The ensembles differ enough that Figure 3's
// per-AV spread emerges naturally.
//
// The signature store implements the paper's §IV-C "commercial ML AVs'
// learning": given the pool of samples submitted to the AV, LearnRound
// mines invariant byte n-grams that recur across submissions but never
// appear in the vendor's benign reference corpus, and adds them as
// detection signatures. Attacks whose AEs share fixed artifacts (packer
// stubs, reused payloads, untouched malware data constants) decay round
// over round; MPass's shuffled stubs and per-AE donors leave nothing to
// mine.
package av

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/features"
	"mpass/internal/nn"
	"mpass/internal/parallel"
	"mpass/internal/pefile"
)

// member is one detection component of an AV ensemble.
type member interface {
	flag(raw []byte) bool
}

// scoreMember wraps an ML detector with a vendor-specific threshold.
type scoreMember struct {
	d   detect.Detector
	thr float64
}

func (m scoreMember) flag(raw []byte) bool { return m.d.Score(raw) >= m.thr }

// entropyMember is the packed-file heuristic: flag when any code or
// initialized-data section of meaningful size has near-uniform entropy.
type entropyMember struct {
	thr     float64
	minSize int
}

func (m entropyMember) flag(raw []byte) bool {
	f, err := pefile.Parse(raw)
	if err != nil {
		return true // unparsable submissions are flagged, as real engines do
	}
	for _, s := range f.Sections {
		if len(s.Data) < m.minSize {
			continue
		}
		if s.IsCode() || s.Characteristics&pefile.SecInitializedData != 0 {
			if features.Entropy(s.Data) >= m.thr {
				return true
			}
		}
	}
	return false
}

// noveltyMember models the reputation/anomaly component of commercial
// engines: a file whose static feature vector sits far from everything in
// the vendor's benign corpus is suspicious regardless of classifier scores.
// Distance is z-scored per dimension against the benign corpus statistics,
// then averaged, so no single feature family dominates.
type noveltyMember struct {
	refs  [][]float64 // benign feature vectors
	mean  []float64
	invSD []float64
	thr   float64
}

func newNoveltyMember(benign [][]byte, thr float64) *noveltyMember {
	m := &noveltyMember{thr: thr}
	for _, b := range benign {
		m.refs = append(m.refs, features.Extract(b))
	}
	dim := len(m.refs[0])
	m.mean = make([]float64, dim)
	m.invSD = make([]float64, dim)
	for _, v := range m.refs {
		for i, x := range v {
			m.mean[i] += x
		}
	}
	for i := range m.mean {
		m.mean[i] /= float64(len(m.refs))
	}
	for _, v := range m.refs {
		for i, x := range v {
			d := x - m.mean[i]
			m.invSD[i] += d * d
		}
	}
	for i := range m.invSD {
		sd := math.Sqrt(m.invSD[i] / float64(len(m.refs)))
		// Floor the deviation so near-constant dimensions (rare flags,
		// fixed header fields) cannot dominate the distance alone.
		if sd < 0.05 {
			sd = 0.05
		}
		m.invSD[i] = 1 / sd
	}
	return m
}

// distance returns the mean z-scored distance to the nearest benign
// reference.
func (m *noveltyMember) distance(raw []byte) float64 {
	v := features.Extract(raw)
	best := math.Inf(1)
	for _, r := range m.refs {
		var s float64
		for i := range v {
			d := (v[i] - r[i]) * m.invSD[i]
			s += d * d
		}
		if s < best {
			best = s
		}
	}
	return math.Sqrt(best / float64(len(v)))
}

func (m *noveltyMember) flag(raw []byte) bool { return m.distance(raw) >= m.thr }

// withThr returns a copy sharing the reference statistics but with its own
// threshold, so the (expensive) reference table is built once per suite.
func (m *noveltyMember) withThr(thr float64) *noveltyMember {
	c := *m
	c.thr = thr
	return &c
}

// packerMember is the classic packer heuristic every commercial engine
// ships: flag files whose section table carries known packer names, or
// whose executable sections are zeroed-out shells (content moved to a
// compressed blob).
type packerMember struct {
	names       []string
	flagZeroExe bool
}

func (m packerMember) flag(raw []byte) bool {
	f, err := pefile.Parse(raw)
	if err != nil {
		return true
	}
	for _, s := range f.Sections {
		for _, n := range m.names {
			if s.Name == n {
				return true
			}
		}
		if m.flagZeroExe && s.IsCode() && len(s.Data) >= 256 {
			zero := true
			for _, b := range s.Data {
				if b != 0 {
					zero = false
					break
				}
			}
			if zero {
				return true
			}
		}
	}
	return false
}

// knownPackerNames are the telltale section names of common packers.
var knownPackerNames = []string{"UPX0", "UPX1", ".aspack", ".adata", ".pspin", ".themida", ".vmp0"}

// histMember is the byte-distribution anomaly heuristic: flag when the
// whole-file byte histogram diverges from the benign profile by more than
// the threshold (L1 distance).
type histMember struct {
	profile []float64 // mean benign 64-bin histogram
	thr     float64
}

func newHistMember(benign [][]byte, thr float64) *histMember {
	prof := make([]float64, 64)
	for _, b := range benign {
		for _, x := range b {
			prof[int(x)/4]++
		}
	}
	var total float64
	for _, v := range prof {
		total += v
	}
	for i := range prof {
		prof[i] /= total
	}
	return &histMember{profile: prof, thr: thr}
}

func (m *histMember) flag(raw []byte) bool {
	if len(raw) == 0 {
		return true
	}
	hist := make([]float64, 64)
	for _, x := range raw {
		hist[int(x)/4]++
	}
	var dist float64
	inv := 1 / float64(len(raw))
	for i := range hist {
		d := hist[i]*inv - m.profile[i]
		if d < 0 {
			d = -d
		}
		dist += d
	}
	return dist >= m.thr
}

// AV is one simulated commercial ML antivirus.
type AV struct {
	name    string
	members []member
	sigs    [][]byte // learned byte signatures
	// benignRef is the vendor's benign corpus, concatenated for substring
	// checks during signature mining.
	benignRef []byte
}

// Name implements core.Oracle.
func (a *AV) Name() string { return a.name }

// Detected implements core.Oracle: hard-label verdict over all members and
// learned signatures.
func (a *AV) Detected(raw []byte) bool {
	for _, sig := range a.sigs {
		if bytes.Contains(raw, sig) {
			return true
		}
	}
	for _, m := range a.members {
		if m.flag(raw) {
			return true
		}
	}
	return false
}

// SignatureCount reports how many byte signatures the AV has learned.
func (a *AV) SignatureCount() int { return len(a.sigs) }

// Signatures returns copies of the learned byte signatures (diagnostics).
func (a *AV) Signatures() [][]byte {
	out := make([][]byte, len(a.sigs))
	for i, s := range a.sigs {
		out[i] = append([]byte(nil), s...)
	}
	return out
}

// ResetSignatures clears learned state (used between experiments).
func (a *AV) ResetSignatures() { a.sigs = nil }

// LearnRound mines up to maxNew invariant byte signatures from the pool of
// submitted samples and adds them to the AV's store. A window qualifies
// when it recurs in at least minSupport distinct submissions, never occurs
// in the vendor's benign reference corpus, and carries enough information
// to be a usable signature.
//
// Mining walks section contents and the overlay, not raw file bytes:
// vendors normalize the PE before signature extraction, because raw-header
// windows (section tables, alignment padding) are both volatile and
// false-positive prone.
func (a *AV) LearnRound(pool [][]byte, maxNew int) int {
	const (
		sigLen = 24
		stride = 8
	)
	if len(pool) == 0 || maxNew <= 0 {
		return 0
	}
	minSupport := len(pool) / 5
	if minSupport < 2 {
		minSupport = 2
	}

	support := make(map[string]int)
	for _, raw := range pool {
		seen := make(map[string]bool)
		for _, region := range contentRegions(raw) {
			for off := 0; off+sigLen <= len(region); off += stride {
				w := string(region[off : off+sigLen])
				if !seen[w] {
					seen[w] = true
					support[w]++
				}
			}
		}
	}

	type cand struct {
		w string
		n int
	}
	var cands []cand
	for w, n := range support {
		if n >= minSupport {
			cands = append(cands, cand{w, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].w < cands[j].w
	})

	added := 0
	for _, c := range cands {
		if added >= maxNew {
			break
		}
		w := []byte(c.w)
		if lowInformation(w) || bytes.Contains(a.benignRef, w) {
			continue // useless or false-positive-prone
		}
		// Padding-boundary windows: zeros act as wildcards in real
		// signature QA, so a window whose zero-trimmed core is ordinary
		// goodware content would false-positive on half the software in
		// existence. Reject those too.
		if core := bytes.Trim(w, "\x00"); len(core) < len(w) &&
			(len(core) < 8 || bytes.Contains(a.benignRef, core)) {
			continue
		}
		dup := false
		for _, s := range a.sigs {
			if bytes.Equal(s, w) {
				dup = true
				break
			}
		}
		if !dup {
			a.sigs = append(a.sigs, w)
			added++
		}
	}
	return added
}

// contentRegions returns the byte regions signature mining may use: every
// section's content plus the overlay. Unparsable submissions fall back to
// the raw bytes.
func contentRegions(raw []byte) [][]byte {
	f, err := pefile.Parse(raw)
	if err != nil {
		return [][]byte{raw}
	}
	var out [][]byte
	for _, s := range f.Sections {
		if len(s.Data) > 0 {
			out = append(out, s.Data)
		}
	}
	if len(f.Overlay) > 0 {
		out = append(out, f.Overlay)
	}
	return out
}

// lowInformation rejects padding-like windows (alignment runs, sparse
// fills) that would fire on half the software in existence.
func lowInformation(b []byte) bool {
	var seen [256]bool
	distinct := 0
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			distinct++
		}
	}
	return distinct < 6
}

// SuiteConfig controls construction of the five AVs.
type SuiteConfig struct {
	Train detect.TrainConfig
	Seed  int64
	// VendorMalware/VendorBenign size the vendors' own training corpus
	// (zero selects the defaults). Vendor models train on their own,
	// heavily augmented dataset — see corpus.MakeVendorDataset.
	VendorMalware, VendorBenign int
	// ExtraBenignRef is additional known-benign software folded into the
	// vendors' signature false-positive reference. The paper's attackers
	// harvest donors "from the local Microsoft Windows system and GitHub" —
	// software every AV vendor also has in its benign corpus, which is why
	// verbatim benign content can never become a detection signature.
	ExtraBenignRef [][]byte
}

// DefaultSuiteConfig mirrors the offline training defaults.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Train: detect.DefaultTrainConfig(), Seed: 9000}
}

// NewSuite trains and assembles AV1..AV5. The dataset plays the role of the
// vendors' (much larger) training corpora; the benign training split also
// serves as each vendor's benign reference for signature mining.
func NewSuite(ds *corpus.Dataset, cfg SuiteConfig) ([]*AV, error) {
	var benign [][]byte
	var refBuf bytes.Buffer
	for _, s := range ds.Train {
		if s.Family == corpus.Benign {
			benign = append(benign, s.Raw)
			refBuf.Write(s.Raw)
		}
	}
	if len(benign) == 0 {
		return nil, fmt.Errorf("av: no benign training samples")
	}
	for _, b := range cfg.ExtraBenignRef {
		refBuf.Write(b)
	}
	ref := refBuf.Bytes()

	// Vendor models train on their own, heavily augmented corpus: real AV
	// vendors see repacked and bundled malware at scale, which makes their
	// classifiers far more resistant to append/injection washout than the
	// offline academic models.
	nMal, nBen := cfg.VendorMalware, cfg.VendorBenign
	if nMal == 0 {
		nMal = 60
	}
	if nBen == 0 {
		nBen = 60
	}
	vendorDS := corpus.MakeVendorDataset(cfg.Seed+333, nMal, nBen, 0.85)

	tc := cfg.Train
	conv := func(name string, seed int64, kernel, stride, filters, hidden int) (*detect.ConvDetector, error) {
		return detect.TrainConvCustom(name, nn.ConvConfig{
			SeqLen: detect.SeqLen, EmbedDim: 4,
			Kernel: kernel, Stride: stride, Filters: filters, Hidden: hidden,
			Seed: seed,
		}, vendorDS, tc)
	}

	// The vendor models share nothing but the read-only corpus — distinct
	// architectures, seeds, and calibration — so the whole zoo trains
	// concurrently, alongside the (feature-extraction-heavy) novelty
	// reference statistics.
	var c1, c2, c3, c5 *detect.ConvDetector
	var g2, g4 *detect.GBDTDetector
	var novelty *noveltyMember
	err := parallel.Do(tc.Workers,
		func() (e error) { c1, e = conv("av1-conv", cfg.Seed+1, 8, 8, 10, 0); return },
		func() (e error) { c2, e = conv("av2-conv", cfg.Seed+2, 16, 16, 12, 6); return },
		func() (e error) { c3, e = conv("av3-conv", cfg.Seed+3, 8, 4, 6, 0); return },
		func() (e error) { c5, e = conv("av5-conv", cfg.Seed+5, 24, 8, 12, 8); return },
		func() (e error) { g2, e = detect.TrainLightGBM(vendorDS, tc); return },
		func() (e error) {
			g4, e = detect.TrainLightGBM(vendorDS, detect.TrainConfig{
				Epochs: tc.Epochs, BatchSize: tc.BatchSize, LR: tc.LR,
				TargetFPR: tc.TargetFPR / 2, Seed: cfg.Seed + 4, Workers: tc.Workers,
			})
			return
		},
		func() error { novelty = newNoveltyMember(benign, 0); return nil }, // thresholds set per vendor below
	)
	if err != nil {
		return nil, err
	}

	// Per-vendor ensembles. Thresholds below each member's calibrated value
	// make the AVs stricter than the offline models, and the heuristic mix
	// differs per vendor — both properties Figure 3 and Tables IV-VI rely
	// on.

	avs := []*AV{
		{
			name: "AV1",
			members: []member{
				scoreMember{c1, maxF(c1.Threshold*0.5, 0.25)},
				entropyMember{thr: 7.90, minSize: 256},
				packerMember{names: knownPackerNames, flagZeroExe: true},
				newHistMember(benign, 0.95),
				novelty.withThr(6.67),
			},
		},
		{
			name: "AV2",
			members: []member{
				scoreMember{c2, maxF(c2.Threshold*0.55, 0.28)},
				scoreMember{g2, maxF(g2.Threshold*0.5, 0.25)},
				entropyMember{thr: 7.92, minSize: 256},
				packerMember{names: knownPackerNames},
				novelty.withThr(6.64),
			},
		},
		{
			name: "AV3",
			members: []member{
				scoreMember{c3, maxF(c3.Threshold*0.7, 0.35)},
				entropyMember{thr: 7.95, minSize: 384},
				packerMember{names: knownPackerNames},
				novelty.withThr(7.02),
			},
		},
		{
			name: "AV4",
			members: []member{
				scoreMember{g4, maxF(g4.Threshold*0.55, 0.28)},
				entropyMember{thr: 7.90, minSize: 256},
				packerMember{names: knownPackerNames, flagZeroExe: true},
				newHistMember(benign, 1.05),
				novelty.withThr(6.70),
			},
		},
		{
			name: "AV5",
			members: []member{
				scoreMember{c5, maxF(c5.Threshold*0.4, 0.20)},
				scoreMember{c1, maxF(c1.Threshold*0.6, 0.30)},
				entropyMember{thr: 7.85, minSize: 256},
				packerMember{names: knownPackerNames, flagZeroExe: true},
				newHistMember(benign, 0.85),
				novelty.withThr(6.62),
			},
		},
	}
	for _, a := range avs {
		a.benignRef = ref
	}
	return avs, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// NoveltyProbe exposes the novelty member's distance for calibration and
// diagnostics (cmd/mpass-bench prints these distributions).
type NoveltyProbe struct{ m *noveltyMember }

// NewNoveltyProbe builds a probe over a benign reference corpus.
func NewNoveltyProbe(benign [][]byte) *NoveltyProbe {
	return &NoveltyProbe{m: newNoveltyMember(benign, 0)}
}

// Distance returns the z-scored nearest-benign distance for raw.
func (p *NoveltyProbe) Distance(raw []byte) float64 { return p.m.distance(raw) }
