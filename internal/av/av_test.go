package av

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/packer"
	"mpass/internal/pefile"
)

var (
	avOnce sync.Once
	avErr  error
	suite  []*AV
	avDS   *corpus.Dataset
)

func avFixtures(t *testing.T) {
	t.Helper()
	avOnce.Do(func() {
		avDS = corpus.MakeDataset(31, 40, 40, 0.75)
		suite, avErr = NewSuite(avDS, DefaultSuiteConfig())
	})
	if avErr != nil {
		t.Fatalf("NewSuite: %v", avErr)
	}
}

func TestSuiteHasFiveNamedAVs(t *testing.T) {
	avFixtures(t)
	if len(suite) != 5 {
		t.Fatalf("suite size = %d", len(suite))
	}
	for i, a := range suite {
		want := []string{"AV1", "AV2", "AV3", "AV4", "AV5"}[i]
		if a.Name() != want {
			t.Errorf("AV %d name = %q, want %q", i, a.Name(), want)
		}
	}
}

func TestAVsDetectMalwareAndPassBenign(t *testing.T) {
	avFixtures(t)
	for _, a := range suite {
		var detected, falsePos int
		var nMal, nBen int
		for _, s := range avDS.Test {
			if s.Family == corpus.Malware {
				nMal++
				if a.Detected(s.Raw) {
					detected++
				}
			} else {
				nBen++
				if a.Detected(s.Raw) {
					falsePos++
				}
			}
		}
		if detected < nMal*8/10 {
			t.Errorf("%s detects only %d/%d malware", a.Name(), detected, nMal)
		}
		if falsePos > nBen/4 {
			t.Errorf("%s flags %d/%d benign", a.Name(), falsePos, nBen)
		}
	}
}

func TestAVsFlagPackedSamples(t *testing.T) {
	// The entropy heuristic should catch most encrypted-packer output on at
	// least the stricter AVs.
	avFixtures(t)
	g := corpus.NewGenerator(400)
	rng := rand.New(rand.NewSource(4))
	p := packer.NewPESpin()
	flagged := 0
	total := 0
	for i := 0; i < 6; i++ {
		packed, err := p.Pack(g.Sample(corpus.Malware).Raw, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range suite {
			total++
			if a.Detected(packed) {
				flagged++
			}
		}
	}
	if flagged < total*6/10 {
		t.Errorf("packed samples flagged %d/%d times", flagged, total)
	}
}

func TestAVFlagsGarbage(t *testing.T) {
	avFixtures(t)
	if !suite[0].Detected([]byte("not a pe at all")) {
		t.Error("unparsable submission not flagged")
	}
}

func TestLearnRoundMinesSharedArtifacts(t *testing.T) {
	avFixtures(t)
	a := suite[0]
	a.ResetSignatures()
	defer a.ResetSignatures()

	// Build a pool of "AEs" sharing a fixed 64-byte artifact not present in
	// benign programs.
	artifact := bytes.Repeat([]byte{0xDE, 0xAD, 0xBE, 0xEF}, 16)
	g := corpus.NewGenerator(500)
	var pool [][]byte
	for i := 0; i < 6; i++ {
		f, err := pefile.Parse(g.Sample(corpus.Malware).Raw)
		if err != nil {
			t.Fatal(err)
		}
		f.AppendOverlay(artifact)
		pool = append(pool, f.Bytes())
	}
	added := a.LearnRound(pool, 50)
	if added == 0 {
		t.Fatal("no signatures mined from a pool with a shared artifact")
	}
	// The learned signatures must now catch every pool member.
	for i, raw := range pool {
		if !a.Detected(raw) {
			t.Errorf("pool member %d evades after learning", i)
		}
	}
}

func TestLearnRoundIgnoresBenignContent(t *testing.T) {
	avFixtures(t)
	a := suite[1]
	a.ResetSignatures()
	defer a.ResetSignatures()

	// A pool whose only shared content comes verbatim from the vendor's
	// benign reference corpus must yield no signatures matching benign
	// programs.
	var benign []byte
	for _, s := range avDS.Train {
		if s.Family == corpus.Benign {
			benign = s.Raw
			break
		}
	}
	g := corpus.NewGenerator(600)
	var pool [][]byte
	for i := 0; i < 5; i++ {
		f, _ := pefile.Parse(g.Sample(corpus.Malware).Raw)
		f.AppendOverlay(benign[:256])
		pool = append(pool, f.Bytes())
	}
	a.LearnRound(pool, 50)
	for _, sig := range a.sigs {
		if bytes.Contains(benign, sig) {
			t.Fatalf("mined signature matches benign reference content")
		}
	}
}

func TestLearnRoundSupportsThreshold(t *testing.T) {
	avFixtures(t)
	a := suite[2]
	a.ResetSignatures()
	defer a.ResetSignatures()
	// A single submission can never produce a signature (support < 2).
	g := corpus.NewGenerator(700)
	if added := a.LearnRound([][]byte{g.Sample(corpus.Malware).Raw}, 10); added != 0 {
		t.Errorf("single-sample pool yielded %d signatures", added)
	}
	if added := a.LearnRound(nil, 10); added != 0 {
		t.Errorf("empty pool yielded %d signatures", added)
	}
}

func TestSignatureAccumulationAndReset(t *testing.T) {
	avFixtures(t)
	a := suite[3]
	a.ResetSignatures()
	artifact := bytes.Repeat([]byte{0x41, 0x42, 0x43, 0x99}, 12)
	g := corpus.NewGenerator(800)
	var pool [][]byte
	for i := 0; i < 4; i++ {
		f, _ := pefile.Parse(g.Sample(corpus.Malware).Raw)
		f.AppendOverlay(artifact)
		pool = append(pool, f.Bytes())
	}
	n1 := a.LearnRound(pool, 3)
	c1 := a.SignatureCount()
	a.LearnRound(pool, 3) // same pool: dups skipped, maybe few new
	if a.SignatureCount() < c1 {
		t.Error("signature count decreased")
	}
	if n1 == 0 {
		t.Error("first round added nothing")
	}
	a.ResetSignatures()
	if a.SignatureCount() != 0 {
		t.Error("reset did not clear signatures")
	}
}
