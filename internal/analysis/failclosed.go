package analysis

import (
	"go/ast"
	"go/types"
)

// failclosed enforces the serving tier's error posture: a score, label,
// or response value produced alongside an error — by an oracle query, a
// transport round-trip, or an engine call — is garbage until that error
// has been checked, and must not reach a served response, a cache
// insert, or a nil-error return. The adversarial-ML literature's
// recurring harness bug is exactly this shape: a failed oracle query
// silently read as "not detected", which both corrupts evaluation and,
// in serving, turns infrastructure faults into false negatives. The
// repo's contract is fail closed — treat errors as detected / 5xx.
//
// The dataflow engine seeds SrcErrTainted on the non-error results of
// multi-result calls into the serving packages (and net/http transports),
// links them to the error variable, and clears the taint only on the
// err == nil side of a check — so code that uses the value inside the
// err != nil branch, or before any check at all, still reports. Sinks:
//
//   - calls that hand a tainted value to an http.ResponseWriter (helper
//     or method on the writer itself);
//   - cache inserts (put on a *cache type) of a tainted key or value;
//   - returning a tainted value alongside a literal nil error, which
//     masks the failure as success for the caller.
//
// `return zeroValue, err` and explicit fail-closed branches
// (`if err != nil { return true, nil }` with a constant) pass untouched.

var failClosedPackages = []string{"internal/server", "internal/gateway", "internal/core"}

// failClosedSources are the packages whose multi-result calls seed error
// taint. Engine calls are sources (scores come from there) even though
// engine code itself is not checked for sinks.
var failClosedSources = []string{"internal/server", "internal/gateway", "internal/core", "internal/engine"}

var FailClosed = &Analyzer{
	Name:  "failclosed",
	Doc:   "error-tainted scores/labels never reach responses, caches, or nil-error returns",
	Needs: []string{"snapshotonce"},
	Run:   runFailClosed,
}

func runFailClosed(pass *Pass) {
	if !pathWithinAny(pass.Pkg.PkgPath, failClosedPackages) {
		return
	}
	sess := pass.Sess
	cfg := &flowConfig{
		loaderResult: func(fn *types.Func) bool { return isLoader(sess, fn) },
		errSource:    isErrTaintSource,
	}
	cfg.visit = func(c *flowCtx, n ast.Node, st *flowState) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCallSink(pass, c, n)
		case *ast.ReturnStmt:
			checkNilErrReturn(pass, c, n)
		}
	}
	runFlow(sess, pass.Pkg, cfg)
}

// isErrTaintSource reports whether call's non-error results should be
// treated as garbage until the error is checked: calls resolved into the
// serving packages, plus net/http client/transport round-trips.
func isErrTaintSource(pkg *Package, call *ast.CallExpr) bool {
	callee := StaticCallee(pkg.Info, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	path := callee.Pkg().Path()
	if pathWithinAny(path, failClosedSources) {
		return true
	}
	if path == "net/http" {
		switch callee.Name() {
		case "Do", "Get", "Post", "PostForm", "Head", "RoundTrip":
			return true
		}
	}
	return false
}

// checkCallSink reports tainted arguments handed to a response write or a
// cache insert.
func checkCallSink(pass *Pass, c *flowCtx, call *ast.CallExpr) {
	sink := ""
	switch {
	case isResponseSink(c.Pkg, call):
		sink = "a served response"
	case isCacheInsert(c.Pkg, call):
		sink = "a cache insert"
	default:
		return
	}
	for _, arg := range call.Args {
		if isResponseWriterType(c.Pkg.Info.TypeOf(arg)) {
			continue
		}
		if c.Value(arg)&SrcErrTainted != 0 {
			pass.Reportf(call.Pos(),
				"error-tainted %s flows into %s before its error is checked; add a fail-closed branch (detected / 5xx) first",
				types.ExprString(arg), sink)
		}
	}
}

// isResponseSink matches calls that can emit bytes to the client: any
// call taking an http.ResponseWriter argument (writeJSON-style helpers),
// or a method invoked on the ResponseWriter itself.
func isResponseSink(pkg *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isResponseWriterType(pkg.Info.TypeOf(arg)) {
			return true
		}
	}
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if selection := pkg.Info.Selections[sel]; selection != nil {
			return isResponseWriterType(selection.Recv())
		}
	}
	return false
}

func isResponseWriterType(t types.Type) bool {
	named := namedType(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter"
}

// checkNilErrReturn reports `return taintedValue, ..., nil` in functions
// whose last result is an error: the failure is being masked as success.
func checkNilErrReturn(pass *Pass, c *flowCtx, ret *ast.ReturnStmt) {
	n := len(ret.Results)
	if n < 2 {
		return
	}
	last, isIdent := ast.Unparen(ret.Results[n-1]).(*ast.Ident)
	if !isIdent || last.Name != "nil" {
		return
	}
	// The enclosing function's signature decides whether the nil is an
	// error result (a literal nil's own type is untyped).
	ft := c.Fn.Type
	if c.Lit != nil {
		ft = c.Lit.Type
	}
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return
	}
	lastField := ft.Results.List[len(ft.Results.List)-1]
	if t := c.Pkg.Info.TypeOf(lastField.Type); t == nil || !isErrorType(t) {
		return
	}
	for _, r := range ret.Results[:n-1] {
		if c.Value(r)&SrcErrTainted != 0 {
			pass.Reportf(ret.Pos(),
				"returning error-tainted %s with a nil error masks the failed query as success; fail closed (or propagate the error)",
				types.ExprString(r))
		}
	}
}
