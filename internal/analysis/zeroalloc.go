package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// zeroallocPragma marks a function whose body must not allocate. The
// runtime complement is the `make alloc` gate (testing.AllocsPerRun over
// the same paths); the analyzer rejects the allocation at the line that
// introduces it instead of as an aggregate count after the fact.
const zeroallocPragma = "mpass:zeroalloc"

// ZeroAlloc checks functions annotated //mpass:zeroalloc for
// allocation-introducing constructs:
//
//   - make / new / append (growth);
//   - closure literals and go statements;
//   - &composite literals, and slice or map literals;
//   - string concatenation and string<->[]byte/[]rune conversions;
//   - implicit interface boxing: a concrete value passed to an interface
//     parameter or converted to an interface type.
//
// The check is intra-procedural: callees are not followed (annotate them
// too), and branches that terminate in panic are skipped — error paths
// are allowed to allocate their message.
var ZeroAlloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "//mpass:zeroalloc functions must not allocate (static complement of the runtime alloc gate)",
	Run:  runZeroAlloc,
}

func runZeroAlloc(p *Pass) {
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		if !hasPragma(fd.Doc) {
			return
		}
		w := &zeroallocWalker{p: p, info: p.Pkg.Info}
		w.skip = panicOnlyBlocks(p.Pkg.Info, fd.Body)
		w.walk(fd.Body)
	})
}

// hasPragma reports whether the doc comment carries the zeroalloc pragma
// as its own line.
func hasPragma(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == zeroallocPragma {
			return true
		}
	}
	return false
}

// panicOnlyBlocks collects if-bodies whose last statement panics: bounds
// and shape guards whose allocation (typically fmt.Sprintf into panic)
// never runs in steady state.
func panicOnlyBlocks(info *types.Info, body *ast.BlockStmt) map[ast.Node]bool {
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, isIf := n.(*ast.IfStmt)
		if !isIf || len(ifStmt.Body.List) == 0 {
			return true
		}
		last, isExpr := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ExprStmt)
		if !isExpr {
			return true
		}
		call, isCall := last.X.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if ident, isIdent := call.Fun.(*ast.Ident); isIdent {
			if b, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin && b.Name() == "panic" {
				skip[ifStmt.Body] = true
			}
		}
		return true
	})
	return skip
}

type zeroallocWalker struct {
	p    *Pass
	info *types.Info
	skip map[ast.Node]bool // panic-terminated blocks
	lits map[ast.Node]bool // composite literals already reported under a &
}

func (w *zeroallocWalker) walk(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if w.skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.FuncLit:
			w.p.Reportf(n.Pos(), "closure literal in a zeroalloc function may escape to the heap")
			return false // the closure body is not this function's steady state
		case *ast.GoStmt:
			w.p.Reportf(n.Pos(), "go statement allocates a goroutine in a zeroalloc function")
		case *ast.UnaryExpr:
			if lit, isLit := n.X.(*ast.CompositeLit); n.Op == token.AND && isLit {
				if w.lits == nil {
					w.lits = map[ast.Node]bool{}
				}
				w.lits[lit] = true
				w.p.Reportf(n.Pos(), "&composite literal allocates")
			}
		case *ast.CompositeLit:
			if w.lits[n] {
				return true
			}
			switch w.typeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				w.p.Reportf(n.Pos(), "slice/map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(w.typeOf(n)) {
				w.p.Reportf(n.OpPos, "string concatenation allocates")
			}
		}
		return true
	})
}

func (w *zeroallocWalker) typeOf(e ast.Expr) types.Type {
	if t := w.info.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (w *zeroallocWalker) checkCall(call *ast.CallExpr) {
	// Builtins: make, new, and append are the direct allocators.
	if ident, isIdent := call.Fun.(*ast.Ident); isIdent {
		if b, isBuiltin := w.info.Uses[ident].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				w.p.Reportf(call.Pos(), "%s allocates in a zeroalloc function", b.Name())
			case "append":
				w.p.Reportf(call.Pos(), "append may grow its backing array in a zeroalloc function")
			}
			return
		}
	}

	// Conversions: T(x) to an interface boxes; string<->byte/rune slice
	// conversions copy.
	if tv, isConv := w.info.Types[call.Fun]; isConv && tv.IsType() && len(call.Args) == 1 {
		dst, src := w.typeOf(call), w.typeOf(call.Args[0])
		switch {
		case types.IsInterface(dst) && !types.IsInterface(src):
			w.p.Reportf(call.Pos(), "conversion to interface boxes the value on the heap")
		case isString(dst) != isString(src) && (isByteOrRuneSlice(dst) || isByteOrRuneSlice(src)):
			w.p.Reportf(call.Pos(), "string <-> byte/rune slice conversion copies")
		}
		return
	}

	// Ordinary calls: a concrete argument passed to an interface
	// parameter is an implicit box (fmt-style variadics included).
	sig, isSig := w.typeOf(call.Fun).Underlying().(*types.Signature)
	if !isSig {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		argType := w.typeOf(arg)
		if types.IsInterface(paramType) && !types.IsInterface(argType) &&
			argType.Underlying() != types.Typ[types.UntypedNil] {
			w.p.Reportf(arg.Pos(), "argument boxes into interface parameter and may allocate")
		}
	}
}

func isString(t types.Type) bool {
	basic, isBasic := t.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	slice, isSlice := t.Underlying().(*types.Slice)
	if !isSlice {
		return false
	}
	basic, isBasic := slice.Elem().Underlying().(*types.Basic)
	return isBasic && (basic.Kind() == types.Byte || basic.Kind() == types.Rune ||
		basic.Kind() == types.Uint8 || basic.Kind() == types.Int32)
}
