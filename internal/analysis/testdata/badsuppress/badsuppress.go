// Package badsuppress holds a malformed lint:ignore directive (no
// reason). The directive must not suppress anything and must itself be
// reported; the test asserts both findings programmatically, since the
// malformed line cannot carry a want comment.
package badsuppress

func work() {}

func spawn(done chan struct{}) {
	//lint:ignore nakedgo
	go work()
	<-done
}
