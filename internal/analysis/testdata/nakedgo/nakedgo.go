// Package nakedgo exercises the nakedgo analyzer: goroutines outside the
// pool layer fire, suppressed ones do not.
package nakedgo

func work() {}

func spawn(done chan struct{}) {
	go work() // want "nakedgo: naked goroutine"
	<-done
}

func lifecycle(done chan struct{}) {
	//lint:ignore nakedgo fixture lifecycle goroutine, reason provided
	go work()
	<-done
}

func inlineSuppressed(done chan struct{}) {
	go work() //lint:ignore nakedgo trailing-comment suppression form
	<-done
}
