// Package zeroalloc exercises the //mpass:zeroalloc pragma analyzer:
// annotated functions may not allocate (make/new/append, closures,
// &literals, string building, interface boxing); panic-only guard
// branches and unannotated functions are free to.
package zeroalloc

import "fmt"

func sink(v any) { _ = v }

type point struct{ x, y int }

// hotCopy is the clean steady-state shape: no findings.
//
//mpass:zeroalloc
func hotCopy(dst, src []float64) {
	for i := range src {
		dst[i] = src[i]
	}
}

// guarded allocates only inside its panic guard, which is exempt.
//
//mpass:zeroalloc
func guarded(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("zeroalloc: negative %d", n))
	}
	return n * 2
}

//mpass:zeroalloc
func slab(n int) []int {
	buf := make([]int, 0, n) // want "zeroalloc: make allocates"
	buf = append(buf, 1)     // want "zeroalloc: append may grow"
	return buf
}

//mpass:zeroalloc
func fresh() *point {
	return new(point) // want "zeroalloc: new allocates"
}

//mpass:zeroalloc
func box(n int) {
	sink(n) // want "zeroalloc: argument boxes into interface"
}

//mpass:zeroalloc
func closes(n int) func() int {
	return func() int { return n } // want "zeroalloc: closure literal"
}

//mpass:zeroalloc
func addressed() *point {
	return &point{1, 2} // want "zeroalloc: &composite literal allocates"
}

//mpass:zeroalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want "zeroalloc: slice/map literal allocates"
}

//mpass:zeroalloc
func strcat(a, b string) string {
	return a + b // want "zeroalloc: string concatenation allocates"
}

//mpass:zeroalloc
func bytesToString(b []byte) string {
	return string(b) // want "zeroalloc: string <-> byte/rune slice conversion copies"
}

//mpass:zeroalloc
func coldPath(n int) []byte {
	//lint:ignore zeroalloc fixture: pool-miss path, populates the recycle pool
	return make([]byte, n)
}

// coldSetup is unannotated: allocation is fine here.
func coldSetup(n int) []int { return make([]int, n) }
