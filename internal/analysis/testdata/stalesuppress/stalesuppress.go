// Package stalesuppress exercises the stale-suppression audit: a
// //lint:ignore directive whose analyzer never fires on the covered lines
// is itself a "suppressions" finding, as is a directive naming an analyzer
// the framework does not know. A stale directive can in turn be waived —
// with a reason — by a //lint:ignore suppressions directive, and only an
// unused waiver of that kind is flagged on the second audit round.
// Expected findings are asserted by TestStaleSuppression, not by // want
// comments: the findings land on the directive lines themselves.
package stalesuppress

//lint:ignore nakedgo pretending a goroutine lived here once
func quiet() int { return 1 }

//lint:ignore nosuchanalyzer directives for unknown analyzers are stale by definition
func unknown() int { return 2 }

//lint:ignore suppressions fixture: grandfathered waiver kept while the hot path moves
//lint:ignore zeroalloc kept deliberately during the table-path migration
func waived() int { return 3 }
