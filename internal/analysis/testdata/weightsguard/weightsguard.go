// Package weightsguard exercises the weightsguard analyzer from outside
// the model packages: direct parameter writes, writes through aliasing
// accessors, in-place mutating calls, and unpaired optimizer steps fire;
// paired steps and suppressed surgery do not.
package weightsguard

import "fixture.example/internal/nn"

func pokeHead(n *nn.ConvNet) {
	n.OutW[0] = 1 // want "weightsguard: write to model parameter ConvNet.OutW"
}

func pokeEmbedStorage(n *nn.ConvNet) {
	n.Embed.Data[3] = 0.5 // want "weightsguard: write to model parameter ConvNet.Embed"
}

func pokeViaAccessor(n *nn.ConvNet) {
	n.EmbedMatrix().Data[0] = 2 // want "weightsguard: write to model parameter EmbedMatrix"
}

func zeroHeadInPlace(n *nn.ConvNet) {
	n.OutW.Zero() // want "weightsguard: Zero mutates model parameter ConvNet.OutW"
}

func fillEmbed(n *nn.ConvNet) {
	n.Embed.Fill(0.1) // want "weightsguard: Fill mutates model parameter ConvNet.Embed"
}

func unpairedStep(a *nn.Adam) {
	a.Step(nil, nil) // want "weightsguard: Adam.Step mutates weights"
}

func pairedStep(n *nn.ConvNet, a *nn.Adam) {
	a.Step(nil, nil)
	n.MarkWeightsChanged()
}

func readOnly(n *nn.ConvNet) float64 {
	return n.OutW[0] + n.EmbedMatrix().Data[0] // reads are fine
}

func surgery(n *nn.ConvNet) {
	//lint:ignore weightsguard calibration surgery; caller bumps the weight version
	n.OutW[0] = 0
}
