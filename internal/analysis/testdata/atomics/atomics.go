// Package atomics exercises the atomics analyzer: legacy package-level
// atomic calls fire, and a field touched both atomically and plainly is
// flagged at every plain site. Typed atomics pass.
package atomics

import "sync/atomic"

type counters struct {
	hits int64
	ok   atomic.Int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1) // want "atomics: legacy atomic.AddInt64"
}

func read(c *counters) int64 {
	return c.hits // want "atomics: field hits is accessed atomically elsewhere"
}

func typed(c *counters) { c.ok.Add(1) }

func snapshot(c *counters) int64 {
	//lint:ignore atomics fixture: read after all writers joined
	return c.hits
}
