// Package parallel is the fixture stand-in for the real pool layer: it is
// on the nakedgo allowlist, so the goroutine below produces no finding.
package parallel

// Do runs fn on its own goroutine and waits for it.
func Do(fn func()) {
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	<-done
}
