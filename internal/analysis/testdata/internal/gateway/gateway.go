// Package gateway exercises snapshotonce over the gateway's generation
// type: the consistent-hash ring is an atomic snapshot exactly like the
// server's model set, and routing paths pin it at most once.
package gateway

import "sync/atomic"

type ring struct{ gen int }

type gw struct {
	ring atomic.Pointer[ring]
}

// route pins the ring once — the sanctioned shape.
func (g *gw) route() int {
	r := g.ring.Load()
	return r.gen
}

// doubleRoute re-pins mid-path: a re-shard between the two loads would
// route one request against two ring generations.
func (g *gw) doubleRoute() int {
	a := g.ring.Load()
	b := g.ring.Load() // want "snapshotonce: second generation snapshot on this request path"
	return a.gen + b.gen
}
