// Package nn is the fixture stand-in for the real model package: a
// ConvNet with parameter tensors, the weight-version counter, an aliasing
// accessor, and an Adam optimizer — the shapes weightsguard keys on.
// Being inside internal/nn, this package may touch its own parameters.
package nn

import "fixture.example/internal/tensor"

// ConvNet mirrors the real network's parameter surface.
type ConvNet struct {
	Embed *tensor.Mat
	OutW  tensor.Vec

	version uint64
}

// MarkWeightsChanged bumps the weight-version counter.
func (n *ConvNet) MarkWeightsChanged() { n.version++ }

// EmbedMatrix returns the embedding table, aliasing internal storage.
func (n *ConvNet) EmbedMatrix() *tensor.Mat { return n.Embed }

// Reset zeroes the head in place — legal here, inside the owning package.
func (n *ConvNet) Reset() { n.OutW.Zero() }

// Adam is the optimizer whose Step mutates parameters.
type Adam struct{}

// Step applies one optimizer update.
func (a *Adam) Step(params, grads []tensor.Vec) {}
