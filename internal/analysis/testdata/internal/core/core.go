// Package core exercises the determinism analyzer inside a
// score-affecting package path: global rand draws, wall-clock reads,
// map-order float accumulation, and exact float equality fire; threaded
// RNGs, constant comparisons, comparison helpers, comparator closures,
// and sorted-key folds do not.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func jitter() int {
	return rand.Intn(3) // want "determinism: global rand.Intn"
}

func stamp() int64 {
	return time.Now().UnixNano() // want "determinism: time.Now"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "determinism: time.Since"
}

func total(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want "determinism: float accumulation over randomized map iteration"
	}
	return s
}

func sameScore(a, b float64) bool {
	return a == b // want "determinism: exact == between computed floats"
}

// Allowed shapes below: no findings.

func draw(r *rand.Rand) int { return r.Intn(3) } // threaded RNG

func seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) } // constructors

func skipZero(g float64) bool { return g == 0 } // constant comparison idiom

func scoresEqual(a, b float64) bool { return a == b } // comparison helper by name

func totalSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

func rankDeterministic(vals []float64, idx []int) {
	sort.Slice(idx, func(i, j int) bool {
		if vals[idx[i]] != vals[idx[j]] { // comparator tiebreak: exempt
			return vals[idx[i]] > vals[idx[j]]
		}
		return idx[i] < idx[j]
	})
}

func suppressedStamp() int64 {
	//lint:ignore determinism fixture: timing metadata, never feeds a score
	return time.Now().UnixNano()
}
