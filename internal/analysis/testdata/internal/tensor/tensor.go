// Package tensor is the fixture stand-in for the real tensor kernels:
// just enough surface for the weightsguard fixtures to type-check.
package tensor

// Vec is a dense vector.
type Vec []float64

// Zero sets every element to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Mat is a row-major dense matrix.
type Mat struct {
	Rows, Cols int
	Data       Vec
}

// Fill sets every element to x.
func (m *Mat) Fill(x float64) {
	for i := range m.Data {
		m.Data[i] = x
	}
}
