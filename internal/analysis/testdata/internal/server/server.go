// Package server exercises the boundedqueue analyzer: bare sends fire,
// select-with-default (shed) and ctx.Done-bounded sends do not. As a
// serving package it is also on the nakedgo allowlist.
package server

import "context"

func bare(ch chan int) {
	ch <- 1 // want "boundedqueue: bare channel send"
}

func twoSendsNoEscape(a, b chan int) {
	select {
	case a <- 1: // want "boundedqueue: bare channel send"
	case b <- 2: // want "boundedqueue: bare channel send"
	}
}

func shed(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

func bounded(ctx context.Context, ch chan int) error {
	select {
	case ch <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func dispatcher(ch chan int) {
	go func() { // no finding: internal/server owns its dispatcher goroutines
		//lint:ignore boundedqueue fixture: buffered reply channel, single write
		ch <- 2
	}()
}
