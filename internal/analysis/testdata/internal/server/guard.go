// guard.go exercises mutexguard: fields annotated //mpass:guardedby mu may
// only be touched while mu is held on every path. The fixture mirrors the
// real jobRegistry shape, plus the two sanctioned exemptions (the ...Locked
// naming convention and the //mpass:locked pragma) and a malformed
// annotation.
package server

import "sync"

type guardedReg struct {
	mu   sync.Mutex
	jobs map[string]int //mpass:guardedby mu
}

// good holds the lock for the whole access, deferred-unlock style.
func (r *guardedReg) good(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// bad reads the guarded map with no lock at all.
func (r *guardedReg) bad(id string) int {
	return r.jobs[id] // want "mutexguard: r.jobs accessed without holding r.mu"
}

// oneArm locks on only one branch: the must-held merge is an intersection,
// so the access after the join is unprotected.
func (r *guardedReg) oneArm(id string, fast bool) int {
	if !fast {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	return r.jobs[id] // want "mutexguard: r.jobs accessed without holding r.mu"
}

// sizeLocked follows the repo convention: the ...Locked suffix declares
// that the caller holds the receiver's mutexes.
func (r *guardedReg) sizeLocked() int { return len(r.jobs) }

// evict runs under the sweep loop's lock, declared explicitly.
//
//mpass:locked mu
func (r *guardedReg) evict(id string) { delete(r.jobs, id) }

// racyLen carries a reasoned waiver instead of a lock.
func (r *guardedReg) racyLen() int {
	//lint:ignore mutexguard fixture: approximate gauge read, torn reads acceptable
	return len(r.jobs)
}

// orphanGuard's annotation names a mutex field that does not exist: the
// annotation itself is the finding.
type orphanGuard struct {
	//mpass:guardedby lock
	n int // want "mutexguard: //mpass:guardedby lock: no sibling sync.Mutex"
}

func (o *orphanGuard) read() int { return o.n }
