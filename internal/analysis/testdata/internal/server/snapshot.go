// snapshot.go exercises snapshotonce: a request path pins at most one
// serving generation. The fixture mirrors the real server's shape — an
// atomic.Pointer[modelSet] cell, a snap() helper, and handlers that either
// thread the one snapshot through (clean) or re-load it (firing).
package server

import "sync/atomic"

// modelSet is the fixture's serving generation (the name and package path
// are what make its atomic loads count as generation pins).
type modelSet struct {
	version string
	dets    []string
}

type fixServer struct {
	models atomic.Pointer[modelSet]
}

// snap pins the current generation — the one sanctioned load helper.
func (s *fixServer) snap() *modelSet { return s.models.Load() }

// doubleLoad re-pins directly: the second atomic load fires.
func (s *fixServer) doubleLoad() (string, string) {
	a := s.models.Load()
	b := s.models.Load() // want "snapshotonce: second generation snapshot on this request path"
	return a.version, b.version
}

// helperReload re-pins through the helper: the loader fact makes the snap
// call a load event, and the diagnostic carries the call-path trace down
// to the primitive atomic load.
func (s *fixServer) helperReload() string {
	ms := s.models.Load()
	other := s.snap() // want "snapshotonce: second generation snapshot on this request path"
	return ms.version + other.version
}

// threaded is the sanctioned shape: pin once, pass the snapshot down.
func (s *fixServer) threaded() string {
	ms := s.snap()
	return describe(ms)
}

func describe(ms *modelSet) string { return ms.version }

// outerPath -> midPath -> snap is the multi-hop cone the call-graph test
// pins: outerPath transitively pins a generation without a direct load.
func (s *fixServer) outerPath() string { return s.midPath() }

func (s *fixServer) midPath() string { return s.snap().version }

// dispatcherLit loads only inside a closure: the literal's body is its own
// request-scoped path (and contributes no call-graph edge), so neither the
// closure nor the constructor fires.
func (s *fixServer) dispatcherLit() func() string {
	return func() string { return s.snap().version }
}

// reloadSwap touches two generations by design — the reload handler shape
// — and carries the sanctioned, reasoned waiver.
func (s *fixServer) reloadSwap() (string, string) {
	prev := s.snap()
	//lint:ignore snapshotonce fixture: the reload path reads the old generation and installs the new one by design
	next := s.snap()
	return prev.version, next.version
}
