// failclosed.go exercises failclosed: a score produced alongside an error
// is garbage until the error is checked, and must not reach a served
// response, a cache insert, or a nil-error return. shedOnError is the
// sanctioned shape — check the error first, fail closed with a 5xx.
package server

import (
	"crypto/sha256"
	"errors"
	"net/http"
)

// scoreQuery stands in for an oracle query: a score produced alongside an
// error, resolved into the serving package (an error-taint source).
func scoreQuery(raw []byte) (float64, error) {
	if len(raw) == 0 {
		return 0, errors.New("empty sample")
	}
	return float64(raw[0]), nil
}

func writeScore(w http.ResponseWriter, s float64) {}

// badServe hands the score to the response writer without ever checking
// the error.
func badServe(w http.ResponseWriter, raw []byte) {
	score, err := scoreQuery(raw)
	_ = err
	writeScore(w, score) // want "failclosed: error-tainted score flows into a served response"
}

// maskError uses the score inside the err != nil branch with a nil error —
// the failure is masked as success for the caller. The fall-through return
// is clean: the err != nil check refined that path.
func maskError(raw []byte) (float64, error) {
	score, err := scoreQuery(raw)
	if err != nil {
		return score, nil // want "failclosed: returning error-tainted score with a nil error"
	}
	return score, nil
}

// badCacheFill files an unchecked score into the cache (the key itself is
// well-formed — the tainted value is the finding).
func badCacheFill(s *fixServer, c *vCache, raw []byte) {
	ms := s.snap()
	sum := sha256.Sum256(raw)
	score, err := scoreQuery(raw)
	_ = err
	c.put(vKey{version: ms.version, sum: sum}, int(score)) // want "failclosed: error-tainted .* flows into a cache insert"
}

// shedOnError is the sanctioned fail-closed shape: a failed query becomes
// a 5xx, never a served score.
func shedOnError(w http.ResponseWriter, raw []byte) {
	score, err := scoreQuery(raw)
	if err != nil {
		http.Error(w, "oracle unavailable", http.StatusBadGateway)
		return
	}
	writeScore(w, score)
}

// debugServe reports raw outcomes errors-and-all, with a reasoned waiver.
func debugServe(w http.ResponseWriter, raw []byte) {
	score, err := scoreQuery(raw)
	_ = err
	//lint:ignore failclosed fixture: diagnostics endpoint reports the raw score, errors and all
	writeScore(w, score)
}
