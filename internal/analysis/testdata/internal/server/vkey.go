// vkey.go exercises versionkey: every score-cache insert must be keyed by
// BOTH a model/set version and a content hash. staleCacheBug reproduces
// the PR 8 stale-generation bug shape end to end — a second generation pin
// plus a key whose version component is not generation-derived — and is
// caught by snapshotonce and versionkey together.
package server

import "crypto/sha256"

// vKey mirrors the real scoreKey: generation version + content digest.
type vKey struct {
	version string
	sum     [32]byte
}

type vCache struct{ m map[vKey]int }

func (c *vCache) put(k vKey, v int) { c.m[k] = v }

func (c *vCache) get(k vKey) (int, bool) {
	v, ok := c.m[k]
	return v, ok
}

// goodInsert derives both components: .version of a pinned generation and
// a sha256 over the scanned bytes.
func goodInsert(s *fixServer, c *vCache, raw []byte) {
	ms := s.snap()
	sum := sha256.Sum256(raw)
	c.put(vKey{version: ms.version, sum: sum}, 1)
}

// staleInsert hard-codes the version instead of deriving it from the
// generation that scored.
func staleInsert(c *vCache, raw []byte) {
	sum := sha256.Sum256(raw)
	c.put(vKey{version: "v1", sum: sum}, 1) // want "versionkey: cache key version is not derived from a model/set version"
}

// noHash fills the digest component with a zero value instead of hashing
// the content.
func noHash(s *fixServer, c *vCache) {
	ms := s.snap()
	c.put(vKey{version: ms.version, sum: [32]byte{}}, 1) // want "versionkey: cache key sum is not derived from a content hash"
}

// flatCache keys by bare string — the key type itself is the bug.
type flatCache struct{ m map[string]int }

func (c *flatCache) put(k string, v int) { c.m[k] = v }

func flatInsert(c *flatCache, raw []byte) {
	c.put(string(raw), 1) // want "versionkey: cache insert keyed by string"
}

// seedInsert is a sanctioned synthetic warm-up insert, waived with a reason.
func seedInsert(c *vCache) {
	//lint:ignore versionkey fixture: warm-up insert under a pinned synthetic generation
	c.put(vKey{version: "warmup", sum: [32]byte{}}, 0)
}

// staleCacheBug is the PR 8 regression fixture: score under one pinned
// generation, re-pin mid-path, then file the result under a key whose
// version is not the generation that scored. Pre-PR-8 serving had exactly
// this shape, and a hot reload between the two pins served stale verdicts.
func staleCacheBug(s *fixServer, c *vCache, raw []byte) {
	first := s.models.Load()
	second := s.snap() // want "snapshotonce: second generation snapshot on this request path"
	sum := sha256.Sum256(raw)
	_, _ = first, second
	c.put(vKey{version: "", sum: sum}, 1) // want "versionkey: cache key version is not derived from a model/set version"
}
