package server

import (
	"context"
	"time"
)

// freshRoot is the pre-hardening resident-oracle shape: a serving-path
// query minting its own context root, unreachable by shutdown.
func freshRoot(timeout time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), timeout) // want "ctxflow: context.Background mints a fresh root"
}

func todoRoot() context.Context {
	return context.TODO() // want "ctxflow: context.TODO mints a fresh root"
}

func uninterruptibleBackoff(d time.Duration) {
	time.Sleep(d) // want "ctxflow: time.Sleep cannot observe cancellation"
}

// threaded derives from the caller's ctx — the shape ctxflow demands.
func threaded(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, timeout)
}

// interruptibleBackoff waits with a timer select, observing cancellation.
func interruptibleBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	}
}

// threadedCtx derives a bounded context from the caller's: the dataflow
// engine test asserts the returned context keeps its ctx-derived bit.
func threadedCtx(ctx context.Context, d time.Duration) context.Context {
	qctx, cancel := context.WithTimeout(ctx, d)
	_ = cancel
	return qctx
}

// lifetimeRoot is the sanctioned escape hatch: a justified suppression.
func lifetimeRoot() (context.Context, context.CancelFunc) {
	//lint:ignore ctxflow fixture: process-lifetime root, cancelled by the owner on shutdown
	return context.WithCancel(context.Background())
}
