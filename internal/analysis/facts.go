package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The fact layer is how analyzers compose without sharing code: an analyzer
// with a global view (a prepass over every package) exports per-function
// facts under a name, and later analyzers import them by declaring the
// producer in Analyzer.Needs. Run orders analyzer execution so every
// producer's Init has completed before a consumer starts, which makes fact
// availability a scheduling guarantee instead of a convention.

// Fact is an arbitrary per-function datum exported by one analyzer and
// imported by others. Concrete fact types live next to their producer.
type Fact interface {
	// FactName namespaces the fact; by convention it is the producing
	// analyzer's name plus a suffix, e.g. "snapshotonce.loader".
	FactName() string
}

type factKey struct {
	fn   *types.Func
	name string
}

// Session is the shared state of one Run over a loaded tree: the packages,
// the cross-package call graph, per-function primitive summaries, and the
// fact store. Every Pass holds a pointer to the session, so an analyzer's
// Run can consult facts produced by the Inits that ran before it.
type Session struct {
	Pkgs  []*Package
	Graph *CallGraph

	facts map[factKey]Fact
	extra map[string]any

	// primLoads records, per declared function, the source positions of
	// direct generation-snapshot loads (atomic.Pointer[modelSet|ring|Set]
	// .Load() on the serving types). It is the seed layer that
	// snapshotonce's Init propagates over the call graph.
	primLoads map[*types.Func][]token.Pos

	// pkgOf finds the *Package that declares a function, for resolving
	// positions and ASTs of cross-package callees.
	pkgOf map[*types.Func]*Package
}

// NewSession loads nothing itself: it indexes already-loaded packages,
// builds the call graph, and computes the primitive summaries that fact
// producers refine.
func NewSession(pkgs []*Package) *Session {
	s := &Session{
		Pkgs:      pkgs,
		Graph:     buildCallGraph(pkgs),
		facts:     map[factKey]Fact{},
		extra:     map[string]any{},
		primLoads: map[*types.Func][]token.Pos{},
		pkgOf:     map[*types.Func]*Package{},
	}
	for _, fn := range s.Graph.Funcs() {
		node := s.Graph.Node(fn)
		s.pkgOf[fn] = node.Pkg
		s.primLoads[fn] = directSnapshotLoads(node.Pkg, node.Decl)
	}
	return s
}

// ExportFact publishes fact for fn. Re-exporting the same fact name for the
// same function overwrites — producers own their namespace.
func (s *Session) ExportFact(fn *types.Func, fact Fact) {
	s.facts[factKey{fn, fact.FactName()}] = fact
}

// ImportFact returns the fact of the given name for fn, or nil if no
// producer exported one.
func (s *Session) ImportFact(fn *types.Func, name string) Fact {
	return s.facts[factKey{fn, name}]
}

// PutData stores analyzer-scoped session state (non-function-keyed
// prepass results) under key; Data retrieves it. Keeping this on the
// session rather than the Analyzer value matters because analyzers are
// process-wide singletons while sessions are per-Run: fixture-tree state
// must not leak into a real-tree run.
func (s *Session) PutData(key string, v any) { s.extra[key] = v }

// Data returns the analyzer-scoped state stored under key, or nil.
func (s *Session) Data(key string) any { return s.extra[key] }

// PackageOf returns the loaded root package declaring fn, or nil for
// functions outside the root set.
func (s *Session) PackageOf(fn *types.Func) *Package { return s.pkgOf[fn] }

// PrimLoads returns the direct generation-load sites in fn's body.
func (s *Session) PrimLoads(fn *types.Func) []token.Pos { return s.primLoads[fn] }

// generationTypes are the named types whose atomic.Pointer cells hold a
// serving generation. A .Load() of one of these is the primitive "pin a
// snapshot" operation the snapshotonce domain counts; scoping by declaring
// package keeps look-alike atomics (e.g. internal/nn's quantized response
// tables) out of the domain.
var generationTypes = map[string][]string{
	"modelSet": {"internal/server"},
	"ring":     {"internal/gateway"},
	"Set":      {"internal/engine"},
}

// isGenerationType reports whether t (after pointer stripping) is one of
// the serving-generation named types.
func isGenerationType(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if isNamed {
		obj := n.Obj()
		pkgs, known := generationTypes[obj.Name()]
		if known && obj.Pkg() != nil {
			return pathWithinAny(obj.Pkg().Path(), pkgs)
		}
	}
	return false
}

// isSnapshotLoadCall reports whether call is a direct atomic load of a
// serving generation: a .Load() whose receiver is a sync/atomic.Pointer[T]
// with T a generation type.
func isSnapshotLoadCall(info *types.Info, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Load" {
		return false
	}
	selection := info.Selections[sel]
	if selection == nil {
		return false
	}
	recv := selection.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil ||
		named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return false
	}
	args := named.TypeArgs()
	return args != nil && args.Len() == 1 && isGenerationType(args.At(0))
}

// directSnapshotLoads collects the generation-load call sites lexically
// inside fd, excluding nested function literals: a closure's loads happen
// when the closure runs, and attributing them to the declaring function
// would double-count generations across request paths that never share one.
func directSnapshotLoads(pkg *Package, fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if isCall && isSnapshotLoadCall(pkg.Info, call) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// orderByNeeds returns analyzers sorted so that every analyzer runs after
// the analyzers it Needs (when those are present in the run set). Missing
// producers are not an error — their Init still runs (Run inits all known
// analyzers), only their diagnostics are skipped — so a subset `-run` keeps
// fact-consuming analyzers functional. Cycles are reported as errors.
func orderByNeeds(analyzers []*Analyzer) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a.Name] {
		case 1:
			return fmt.Errorf("analysis: dependency cycle through %q", a.Name)
		case 2:
			return nil
		}
		state[a.Name] = 1
		for _, need := range a.Needs {
			dep, present := byName[need]
			if present {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[a.Name] = 2
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}
