package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
	"testing"
	"time"
)

// loadFixtures loads the testdata module once per test binary.
func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load("testdata", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return pkgs
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wantExpectation is one `// want "regex"` golden comment.
type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}

// scanWants collects the golden expectations per file:line.
func scanWants(t *testing.T, pkgs []*Package) map[string][]*wantExpectation {
	t.Helper()
	wants := map[string][]*wantExpectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					args := wantArgRE.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						t.Errorf("%s: want comment with no quoted pattern", key)
						continue
					}
					for _, a := range args {
						re, err := regexp.Compile(a[1])
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", key, a[1], err)
							continue
						}
						wants[key] = append(wants[key], &wantExpectation{re: re})
					}
				}
			}
		}
	}
	return wants
}

// TestFixtures runs every analyzer over the fixture module and checks the
// findings against the // want golden comments: every want must be hit,
// and every finding must be wanted. Each analyzer has at least one firing
// and one suppressed fixture case — a suppression that stopped working
// shows up here as an unexpected finding.
func TestFixtures(t *testing.T) {
	pkgs := loadFixtures(t)
	diags := Run(pkgs, All())
	wants := scanWants(t, pkgs)

	for _, d := range diags {
		if strings.Contains(d.File, "badsuppress") {
			continue // asserted by TestMalformedSuppression
		}
		if strings.Contains(d.File, "stalesuppress") {
			continue // asserted by TestStaleSuppression (findings land on directive lines)
		}
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.re)
			}
		}
	}
}

// TestMalformedSuppression asserts that a reason-less lint:ignore
// directive suppresses nothing and is itself reported.
func TestMalformedSuppression(t *testing.T) {
	pkgs := loadFixtures(t)
	var got []Diagnostic
	for _, d := range Run(pkgs, All()) {
		if strings.Contains(d.File, "badsuppress") {
			got = append(got, d)
		}
	}
	if len(got) != 2 {
		t.Fatalf("badsuppress: got %d findings, want 2 (malformed directive + unsuppressed goroutine):\n%v", len(got), got)
	}
	if got[0].Analyzer != "lint" || !strings.Contains(got[0].Message, "malformed") {
		t.Errorf("first finding should be the malformed directive, got %s", got[0])
	}
	if got[1].Analyzer != "nakedgo" {
		t.Errorf("second finding should be the unsuppressed goroutine, got %s", got[1])
	}
}

// TestRealTreeClean is the gate the Makefile lint target codifies: the
// repo itself must be free of findings. It doubles as a smoke test that
// the loader handles the full dependency cone (stdlib included) and stays
// fast enough for CI.
func TestRealTreeClean(t *testing.T) {
	start := time.Now()
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("real tree finding: %s", d)
	}
	t.Logf("linted %d packages in %v", len(pkgs), time.Since(start))
}

// TestGatewayInScope pins the PR 7 scope extension: the gateway is a
// serving tier, so the serving-path invariants (bounded sends, context
// threading) must cover it. A refactor that drops internal/gateway from
// these lists silently un-lints the front door.
func TestGatewayInScope(t *testing.T) {
	const gw = "mpass/internal/gateway"
	if !pathWithinAny(gw, boundedQueuePackages) {
		t.Errorf("boundedqueue does not cover %s", gw)
	}
	if !pathWithinAny(gw, ctxflowPackages) {
		t.Errorf("ctxflow does not cover %s", gw)
	}
	if pathWithinAny(gw, goroutineOwners) {
		t.Errorf("nakedgo exempts %s: the gateway must use internal/parallel, not own goroutines", gw)
	}
}

// TestTenantInScope pins the PR 10 scope extension: per-tenant admission
// (internal/tenant) runs inside every request handler, so the serving-path
// invariants (bounded sends, context threading) must cover it — and it
// must not be exempt from nakedgo: the quota layer decides synchronously
// and owns no goroutines.
func TestTenantInScope(t *testing.T) {
	const tn = "mpass/internal/tenant"
	if !pathWithinAny(tn, boundedQueuePackages) {
		t.Errorf("boundedqueue does not cover %s", tn)
	}
	if !pathWithinAny(tn, ctxflowPackages) {
		t.Errorf("ctxflow does not cover %s", tn)
	}
	if pathWithinAny(tn, goroutineOwners) {
		t.Errorf("nakedgo exempts %s: the quota layer decides synchronously and owns no goroutines", tn)
	}
}

// TestEngineInScope pins the PR 8 scope extension: the engine driver layer
// scores (the RNN detector), trains, and derives content-addressed versions,
// so the determinism analyzer must cover it. Dropping internal/engine from
// scorePackages would let wall-clock or unseeded randomness leak into engine
// versions and RNN scores unnoticed.
func TestEngineInScope(t *testing.T) {
	if !pathWithinAny("mpass/internal/engine", scorePackages) {
		t.Error("determinism does not cover mpass/internal/engine")
	}
}

// TestStaleSuppression asserts the suppression audit: the stalesuppress
// fixture carries one ordinary stale directive (nakedgo never fires
// there), one directive naming an unknown analyzer, and one stale
// directive waived by a reasoned //lint:ignore suppressions — which must
// produce exactly the first two findings and nothing for the waived pair.
func TestStaleSuppression(t *testing.T) {
	pkgs := loadFixtures(t)
	var got []Diagnostic
	for _, d := range Run(pkgs, All()) {
		if strings.Contains(d.File, "stalesuppress") {
			got = append(got, d)
		}
	}
	if len(got) != 2 {
		t.Fatalf("stalesuppress: got %d findings, want 2:\n%v", len(got), got)
	}
	for _, d := range got {
		if d.Analyzer != "suppressions" {
			t.Errorf("finding from %q, want the suppressions pseudo-analyzer: %s", d.Analyzer, d)
		}
	}
	if !strings.Contains(got[0].Message, "never fires there") {
		t.Errorf("first finding should flag the never-firing directive, got %s", got[0])
	}
	if !strings.Contains(got[1].Message, "no such analyzer") {
		t.Errorf("second finding should flag the unknown analyzer, got %s", got[1])
	}
}

// fixtureFunc resolves a declared fixture function by name (and receiver
// type name, when the name alone is ambiguous).
func fixtureFunc(t *testing.T, sess *Session, name string) *types.Func {
	t.Helper()
	var found *types.Func
	for _, fn := range sess.Graph.Funcs() {
		if fn.Name() != name {
			continue
		}
		if found != nil {
			t.Fatalf("fixture function %q is ambiguous", name)
		}
		found = fn
	}
	if found == nil {
		t.Fatalf("fixture function %q not found", name)
	}
	return found
}

// TestCallGraphCone pins the call-graph layer on a known cone of the
// fixture tree: outerPath -> midPath -> snap -> (atomic load). Callers,
// shortest paths, loader-fact propagation, and the deliberate exclusion of
// closure bodies are all load-bearing for snapshotonce's diagnostics.
func TestCallGraphCone(t *testing.T) {
	pkgs := loadFixtures(t)
	sess := NewSession(pkgs)
	SnapshotOnce.Init(sess)

	snap := fixtureFunc(t, sess, "snap")
	mid := fixtureFunc(t, sess, "midPath")
	outer := fixtureFunc(t, sess, "outerPath")
	lit := fixtureFunc(t, sess, "dispatcherLit")

	callers := map[string]bool{}
	for _, fn := range sess.Graph.Callers(snap) {
		callers[fn.Name()] = true
	}
	for _, want := range []string{"midPath", "helperReload", "reloadSwap", "threaded"} {
		if !callers[want] {
			t.Errorf("Callers(snap) is missing %s (got %v)", want, callers)
		}
	}
	// dispatcherLit calls snap only inside a closure: no static edge.
	if callers["dispatcherLit"] {
		t.Error("Callers(snap) includes dispatcherLit: closure bodies must not contribute edges")
	}

	if path := sess.Graph.PathTo(outer, snap); len(path) != 2 {
		t.Errorf("PathTo(outerPath, snap) = %d hops, want 2 (via midPath)", len(path))
	} else if path[0].Callee != mid || path[1].Callee != snap {
		t.Errorf("PathTo(outerPath, snap) routes %s -> %s, want midPath -> snap",
			path[0].Callee.Name(), path[1].Callee.Name())
	}
	if sess.Graph.PathTo(snap, outer) != nil {
		t.Error("PathTo(snap, outerPath) found a reverse path in an acyclic cone")
	}

	// Loader facts: the BFS must reach outerPath through midPath, and must
	// not mark dispatcherLit (its only load is inside the literal).
	if sess.ImportFact(outer, loaderFactName) == nil {
		t.Error("outerPath has no loader fact: BFS propagation missed a transitive pin")
	}
	if sess.ImportFact(lit, loaderFactName) != nil {
		t.Error("dispatcherLit has a loader fact: closure loads must not count for the declarer")
	}
	if len(sess.PrimLoads(snap)) != 1 {
		t.Errorf("PrimLoads(snap) = %d sites, want 1", len(sess.PrimLoads(snap)))
	}
}

// TestDataflowEngine drives the abstract interpreter directly with a
// recording config, pinning the three domain behaviors the analyzers rely
// on: err-nil refinement (taint cleared only on the err-is-nil side),
// must-held lock tracking through defer Unlock, and ctx-derived seeding of
// context parameters.
func TestDataflowEngine(t *testing.T) {
	pkgs := loadFixtures(t)
	sess := NewSession(pkgs)
	var srv *Package
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.PkgPath, "internal/server") {
			srv = pkg
		}
	}
	if srv == nil {
		t.Fatal("fixture internal/server package not loaded")
	}

	var maskTaints []bool
	heldAtReturn := map[string]bool{}
	var ctxDerived bool
	cfg := &flowConfig{
		errSource: isErrTaintSource,
		visit: func(c *flowCtx, n ast.Node, st *flowState) {
			ret, isRet := n.(*ast.ReturnStmt)
			if !isRet {
				return
			}
			switch c.Fn.Name.Name {
			case "maskError":
				maskTaints = append(maskTaints, c.Value(ret.Results[0])&SrcErrTainted != 0)
			case "good", "bad":
				heldAtReturn[c.Fn.Name.Name] = st.Held("r.mu")
			case "threadedCtx":
				ctxDerived = c.Value(ret.Results[0])&SrcCtx != 0
			}
		},
	}
	runFlow(sess, srv, cfg)

	if len(maskTaints) != 2 || !maskTaints[0] || maskTaints[1] {
		t.Errorf("maskError taint at returns = %v, want [true false] (err != nil keeps taint, fall-through clears it)", maskTaints)
	}
	if !heldAtReturn["good"] {
		t.Error("good: r.mu not held at return despite Lock + defer Unlock")
	}
	if heldAtReturn["bad"] {
		t.Error("bad: r.mu reported held with no Lock anywhere")
	}
	if !ctxDerived {
		t.Error("threadedCtx: derived context lost the SrcCtx bit")
	}
}

// TestSnapshotTrace asserts that an indirect snapshotonce finding carries
// the call-path trace down to the primitive atomic load: helperReload
// re-pins through snap(), so the diagnostic's first trace hop must be the
// load site inside snap.
func TestSnapshotTrace(t *testing.T) {
	pkgs := loadFixtures(t)
	for _, d := range Run(pkgs, All()) {
		if d.Analyzer != "snapshotonce" || !strings.Contains(d.File, "snapshot.go") || len(d.Trace) == 0 {
			continue
		}
		step := d.Trace[0]
		if step.Func != "snap" || !strings.Contains(step.File, "snapshot.go") || step.Line == 0 {
			t.Errorf("trace step %+v, want the atomic load inside snap", step)
		}
		return
	}
	t.Error("no snapshotonce finding carried a call-path trace")
}

// TestRecoveryVisaInScope pins the lint round 2 scope extension: the
// recovery and visa layers run under request/drain deadlines, so the
// serving-path invariants (bounded sends, context threading) must cover
// them — and neither may own naked goroutines.
func TestRecoveryVisaInScope(t *testing.T) {
	for _, pkg := range []string{"mpass/internal/recovery", "mpass/internal/visa"} {
		if !pathWithinAny(pkg, boundedQueuePackages) {
			t.Errorf("boundedqueue does not cover %s", pkg)
		}
		if !pathWithinAny(pkg, ctxflowPackages) {
			t.Errorf("ctxflow does not cover %s", pkg)
		}
		if pathWithinAny(pkg, goroutineOwners) {
			t.Errorf("nakedgo exempts %s: it must use internal/parallel, not own goroutines", pkg)
		}
	}
}

// TestNeedsOrder pins the fact-scheduling contract: producers run before
// consumers, and a Needs cycle is a loud error rather than a silent
// reorder.
func TestNeedsOrder(t *testing.T) {
	ordered, err := orderByNeeds(All())
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, a := range ordered {
		idx[a.Name] = i
	}
	for _, consumer := range []string{"versionkey", "failclosed"} {
		if idx[consumer] < idx["snapshotonce"] {
			t.Errorf("%s ordered before its producer snapshotonce", consumer)
		}
	}
	a := &Analyzer{Name: "a", Needs: []string{"b"}}
	b := &Analyzer{Name: "b", Needs: []string{"a"}}
	if _, err := orderByNeeds([]*Analyzer{a, b}); err == nil {
		t.Error("orderByNeeds accepted a dependency cycle")
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("nakedgo, zeroalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "nakedgo" || as[1].Name != "zeroalloc" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
