package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

// loadFixtures loads the testdata module once per test binary.
func loadFixtures(t *testing.T) []*Package {
	t.Helper()
	pkgs, err := Load("testdata", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return pkgs
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wantExpectation is one `// want "regex"` golden comment.
type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}

// scanWants collects the golden expectations per file:line.
func scanWants(t *testing.T, pkgs []*Package) map[string][]*wantExpectation {
	t.Helper()
	wants := map[string][]*wantExpectation{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					args := wantArgRE.FindAllStringSubmatch(m[1], -1)
					if len(args) == 0 {
						t.Errorf("%s: want comment with no quoted pattern", key)
						continue
					}
					for _, a := range args {
						re, err := regexp.Compile(a[1])
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", key, a[1], err)
							continue
						}
						wants[key] = append(wants[key], &wantExpectation{re: re})
					}
				}
			}
		}
	}
	return wants
}

// TestFixtures runs every analyzer over the fixture module and checks the
// findings against the // want golden comments: every want must be hit,
// and every finding must be wanted. Each analyzer has at least one firing
// and one suppressed fixture case — a suppression that stopped working
// shows up here as an unexpected finding.
func TestFixtures(t *testing.T) {
	pkgs := loadFixtures(t)
	diags := Run(pkgs, All())
	wants := scanWants(t, pkgs)

	for _, d := range diags {
		if strings.Contains(d.File, "badsuppress") {
			continue // asserted by TestMalformedSuppression
		}
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matched want %q", key, w.re)
			}
		}
	}
}

// TestMalformedSuppression asserts that a reason-less lint:ignore
// directive suppresses nothing and is itself reported.
func TestMalformedSuppression(t *testing.T) {
	pkgs := loadFixtures(t)
	var got []Diagnostic
	for _, d := range Run(pkgs, All()) {
		if strings.Contains(d.File, "badsuppress") {
			got = append(got, d)
		}
	}
	if len(got) != 2 {
		t.Fatalf("badsuppress: got %d findings, want 2 (malformed directive + unsuppressed goroutine):\n%v", len(got), got)
	}
	if got[0].Analyzer != "lint" || !strings.Contains(got[0].Message, "malformed") {
		t.Errorf("first finding should be the malformed directive, got %s", got[0])
	}
	if got[1].Analyzer != "nakedgo" {
		t.Errorf("second finding should be the unsuppressed goroutine, got %s", got[1])
	}
}

// TestRealTreeClean is the gate the Makefile lint target codifies: the
// repo itself must be free of findings. It doubles as a smoke test that
// the loader handles the full dependency cone (stdlib included) and stays
// fast enough for CI.
func TestRealTreeClean(t *testing.T) {
	start := time.Now()
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("real tree finding: %s", d)
	}
	t.Logf("linted %d packages in %v", len(pkgs), time.Since(start))
}

// TestGatewayInScope pins the PR 7 scope extension: the gateway is a
// serving tier, so the serving-path invariants (bounded sends, context
// threading) must cover it. A refactor that drops internal/gateway from
// these lists silently un-lints the front door.
func TestGatewayInScope(t *testing.T) {
	const gw = "mpass/internal/gateway"
	if !pathWithinAny(gw, boundedQueuePackages) {
		t.Errorf("boundedqueue does not cover %s", gw)
	}
	if !pathWithinAny(gw, ctxflowPackages) {
		t.Errorf("ctxflow does not cover %s", gw)
	}
	if pathWithinAny(gw, goroutineOwners) {
		t.Errorf("nakedgo exempts %s: the gateway must use internal/parallel, not own goroutines", gw)
	}
}

// TestEngineInScope pins the PR 8 scope extension: the engine driver layer
// scores (the RNN detector), trains, and derives content-addressed versions,
// so the determinism analyzer must cover it. Dropping internal/engine from
// scorePackages would let wall-clock or unseeded randomness leak into engine
// versions and RNN scores unnoticed.
func TestEngineInScope(t *testing.T) {
	if !pathWithinAny("mpass/internal/engine", scorePackages) {
		t.Error("determinism does not cover mpass/internal/engine")
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("nakedgo, zeroalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "nakedgo" || as[1].Name != "zeroalloc" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
