package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The call graph is the cross-package backbone of the dataflow layer: one
// pass over every loaded root package resolves each static call site to the
// *types.Func it invokes, so per-function summaries (snapshot loads, lock
// expectations) can propagate from callee to caller and diagnostics can
// carry the call path that connects a finding to the primitive operation
// that justifies it.
//
// Resolution is deliberately static and concrete: package-level functions,
// methods called on concrete receivers, and method values. Calls through
// interfaces, function-typed fields, and function parameters have no single
// static callee and contribute no edge — the analyzers that consume the
// graph treat an unresolved call as a no-op, which keeps them quiet rather
// than wrong (a lint that cries wolf on dynamic dispatch gets suppressed
// wholesale and guards nothing).

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// CallNode is one declared function with its outgoing static calls.
type CallNode struct {
	Func  *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallSite
}

// CallGraph indexes every function declared in the loaded root packages.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	order []*types.Func // insertion order, for deterministic iteration
}

// buildCallGraph walks every function declaration in pkgs and records its
// resolved static call sites. Function literals are not graph nodes: a
// closure has no *types.Func identity, and its body executes under whatever
// function eventually invokes it — the dataflow engine analyzes literal
// bodies separately instead.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CallNode{}}
	for _, pkg := range pkgs {
		forEachFunc(pkg, func(fd *ast.FuncDecl) {
			fn, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
			if !isFn {
				return
			}
			node := &CallNode{Func: fn, Decl: fd, Pkg: pkg}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, isLit := n.(*ast.FuncLit); isLit {
					// A closure's calls happen when the closure runs, not
					// when the enclosing function does; attributing them
					// here would invent paths that never execute together.
					_ = lit
					return false
				}
				call, isCall := n.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if callee := StaticCallee(pkg.Info, call); callee != nil {
					node.Calls = append(node.Calls, CallSite{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
			g.nodes[fn] = node
			g.order = append(g.order, fn)
		})
	}
	return g
}

// StaticCallee resolves call to the concrete *types.Func it invokes, or nil
// when the callee is dynamic (interface dispatch, func values, builtins,
// conversions).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, isFn := info.Uses[fun].(*types.Func); isFn {
			return fn
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			// Methods: only concrete receivers give a static callee.
			fn, isFn := sel.Obj().(*types.Func)
			if isFn && !types.IsInterface(sel.Recv()) {
				return fn
			}
			return nil
		}
		// Package-qualified function: pkg.Func.
		if fn, isFn := info.Uses[fun.Sel].(*types.Func); isFn {
			return fn
		}
	}
	return nil
}

// Node returns fn's call-graph entry, or nil for functions outside the
// loaded root packages (stdlib, dynamic).
func (g *CallGraph) Node(fn *types.Func) *CallNode { return g.nodes[fn] }

// Funcs returns every declared function in deterministic (load) order.
func (g *CallGraph) Funcs() []*types.Func { return g.order }

// Callers returns the functions with at least one static call to fn, in
// deterministic order.
func (g *CallGraph) Callers(fn *types.Func) []*types.Func {
	var out []*types.Func
	for _, caller := range g.order {
		for _, site := range g.nodes[caller].Calls {
			if site.Callee == fn {
				out = append(out, caller)
				break
			}
		}
	}
	return out
}

// PathTo returns a shortest static call chain from `from` to `to` as the
// sequence of call sites traversed, or nil when no path exists. It is the
// trace attached to cross-function diagnostics: each step is "this call is
// how the property reaches you".
func (g *CallGraph) PathTo(from, to *types.Func) []CallSite {
	if from == to {
		return []CallSite{}
	}
	type hop struct {
		fn   *types.Func
		via  CallSite
		prev *hop
	}
	seen := map[*types.Func]bool{from: true}
	queue := []*hop{{fn: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.nodes[cur.fn]
		if node == nil {
			continue
		}
		for _, site := range node.Calls {
			if seen[site.Callee] {
				continue
			}
			next := &hop{fn: site.Callee, via: site, prev: cur}
			if site.Callee == to {
				var path []CallSite
				for h := next; h.prev != nil; h = h.prev {
					path = append([]CallSite{h.via}, path...)
				}
				return path
			}
			seen[site.Callee] = true
			queue = append(queue, next)
		}
	}
	return nil
}
