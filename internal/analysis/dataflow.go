package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The dataflow engine is an intraprocedural forward abstract interpreter
// over the repo's serving-tier domain. It owns the transfer function — how
// abstract values originate and propagate — and analyzers are pure
// consumers: they register a visit hook, read the state the engine hands
// them at each node, and report. Centralizing the semantics keeps the four
// dataflow analyzers (snapshotonce, mutexguard, versionkey, failclosed)
// from growing four slightly-different interpreters of the same code.
//
// The abstract domain is small and repo-specific:
//
//	SrcSnapshot    — the value is a pinned serving generation (*modelSet,
//	                 *engine.Set, *gateway ring) from an atomic load or a
//	                 loader function (snapshotonce facts).
//	SrcCtx         — derived from the caller's context.Context.
//	SrcErrTainted  — produced alongside an error that has not yet been
//	                 checked on this path; cleared by an `err == nil`
//	                 refinement.
//	SrcVersion     — derived from a model/set version (a .version field or
//	                 Version() method of a generation type).
//	SrcContentHash — derived from a content digest (sha256.Sum256, or a
//	                 hash.Hash Sum into a caller buffer).
//
// Lock-held regions are path state rather than value state: flowState.held
// tracks the must-held set of canonical mutex paths ("r.mu", "h.reg.mu").
// Merges union value sources (may-analysis) and intersect held locks
// (must-analysis) — exactly the directions that make each consumer sound
// for its purpose: a value *may* be tainted, a lock *must* be held.

type absValue uint16

const (
	SrcSnapshot absValue = 1 << iota
	SrcCtx
	SrcErrTainted
	SrcVersion
	SrcContentHash
)

// flowState is the abstract state at one program point.
type flowState struct {
	vals    map[types.Object]absValue
	errDeps map[types.Object][]types.Object // error var -> values it taints
	held    map[string]bool                 // must-held canonical mutex paths
	loads   []token.Pos                     // snapshot-load sites that may precede this point
}

func newFlowState() *flowState {
	return &flowState{
		vals:    map[types.Object]absValue{},
		errDeps: map[types.Object][]types.Object{},
		held:    map[string]bool{},
	}
}

func (s *flowState) clone() *flowState {
	c := newFlowState()
	for k, v := range s.vals {
		c.vals[k] = v
	}
	for k, v := range s.errDeps {
		c.errDeps[k] = append([]types.Object(nil), v...)
	}
	for k, v := range s.held {
		c.held[k] = v
	}
	c.loads = append([]token.Pos(nil), s.loads...)
	return c
}

// Held reports whether the canonical mutex path is held on every path
// reaching this point.
func (s *flowState) Held(path string) bool { return s.held[path] }

// Loads returns the snapshot-load sites that may already have executed on
// some path reaching this point, in discovery order.
func (s *flowState) Loads() []token.Pos { return s.loads }

// merge folds b into a: value sources union, held locks intersect, load
// sites union (order-preserving).
func (s *flowState) merge(b *flowState) {
	for k, v := range b.vals {
		s.vals[k] |= v
	}
	for k, deps := range b.errDeps {
	next:
		for _, d := range deps {
			for _, have := range s.errDeps[k] {
				if have == d {
					continue next
				}
			}
			s.errDeps[k] = append(s.errDeps[k], d)
		}
	}
	for k := range s.held {
		if !b.held[k] {
			delete(s.held, k)
		}
	}
	for _, p := range b.loads {
		s.addLoad(p)
	}
}

func (s *flowState) addLoad(p token.Pos) {
	for _, have := range s.loads {
		if have == p {
			return
		}
	}
	s.loads = append(s.loads, p)
}

func (s *flowState) equal(b *flowState) bool {
	if len(s.vals) != len(b.vals) || len(s.held) != len(b.held) || len(s.loads) != len(b.loads) {
		return false
	}
	for k, v := range s.vals {
		if b.vals[k] != v {
			return false
		}
	}
	for k := range s.held {
		if !b.held[k] {
			return false
		}
	}
	for i, p := range s.loads {
		if b.loads[i] != p {
			return false
		}
	}
	return true
}

// clearErr removes the error taint that errObj's check resolves: on the
// `err == nil` side of a branch the values produced alongside errObj are
// known good.
func (s *flowState) clearErr(errObj types.Object) {
	for _, dep := range s.errDeps[errObj] {
		s.vals[dep] &^= SrcErrTainted
	}
	delete(s.errDeps, errObj)
}

// flowCtx is the engine handle passed to analyzer visit hooks.
type flowCtx struct {
	Sess *Session
	Pkg  *Package
	Fn   *ast.FuncDecl // enclosing declared function
	Lit  *ast.FuncLit  // non-nil when analyzing a function literal's body
	f    *flow
}

// Value returns the abstract value the engine computed for an expression
// already evaluated in the current function (zero for unevaluated nodes).
func (c *flowCtx) Value(e ast.Expr) absValue { return c.f.exprVals[e] }

// flowConfig configures one engine run over a package.
type flowConfig struct {
	// visit is called in evaluation order: for statements after their
	// immediate expressions are evaluated, and for selector, call, and
	// composite-literal expressions with the state at that point (calls:
	// before the call's own effects apply, so st.Loads() excludes the call
	// itself). Loop bodies re-visit on each fixpoint iteration; report
	// dedup happens in Run.
	visit func(c *flowCtx, n ast.Node, st *flowState)
	// errSource reports whether a multi-result call's non-error results
	// should carry SrcErrTainted until the error is checked. nil seeds no
	// error taint.
	errSource func(pkg *Package, call *ast.CallExpr) bool
	// loaderResult reports, for a resolved static callee, whether its
	// results of generation type are snapshots and the call is itself a
	// load event (fact import from snapshotonce). nil limits load events
	// to primitive atomic loads.
	loaderResult func(fn *types.Func) bool
}

// runFlow interprets every declared function in pkg (and, separately, each
// function literal encountered) under cfg.
func runFlow(sess *Session, pkg *Package, cfg *flowConfig) {
	forEachFunc(pkg, func(fd *ast.FuncDecl) {
		f := &flow{sess: sess, pkg: pkg, cfg: cfg, exprVals: map[ast.Expr]absValue{}}
		ctx := &flowCtx{Sess: sess, Pkg: pkg, Fn: fd, f: f}
		st := newFlowState()
		seedParams(pkg, fd.Type, st)
		seedHeld(pkg, fd, st)
		f.ctx = ctx
		f.block(st, fd.Body)
		// Literal bodies run later, under whatever function invokes them:
		// captured value taints carry over, but lock-held state and the
		// load count restart (a closure is its own request-scoped path).
		for len(f.lits) > 0 {
			lit := f.lits[0]
			f.lits = f.lits[1:]
			litSt := st.clone()
			litSt.held = map[string]bool{}
			litSt.loads = nil
			seedParams(pkg, lit.Type, litSt)
			f.ctx = &flowCtx{Sess: sess, Pkg: pkg, Fn: fd, Lit: lit, f: f}
			f.block(litSt, lit.Body)
		}
	})
}

// seedParams marks context.Context parameters as ctx-derived.
func seedParams(pkg *Package, ft *ast.FuncType, st *flowState) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				st.vals[obj] = SrcCtx
			}
		}
	}
}

func isContextType(t types.Type) bool {
	n, isNamed := t.(*types.Named)
	return isNamed && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// seedHeld grants the caller-holds-the-lock contract to functions that
// declare it: a method named with the `...Locked` suffix (repo convention:
// caller holds the receiver's mutex), or an explicit `//mpass:locked <mu>`
// pragma naming one mutex field.
func seedHeld(pkg *Package, fd *ast.FuncDecl, st *flowState) {
	recvName, recvType := receiverOf(pkg, fd)
	if recvName == "" {
		return
	}
	var grant []string
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		grant = mutexFields(recvType)
	} else if mu := lockedPragma(fd.Doc); mu != "" {
		grant = []string{mu}
	}
	for _, mu := range grant {
		st.held[recvName+"."+mu] = true
	}
}

func receiverOf(pkg *Package, fd *ast.FuncDecl) (string, types.Type) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return "", nil
	}
	name := fd.Recv.List[0].Names[0]
	obj := pkg.Info.Defs[name]
	if obj == nil {
		return "", nil
	}
	return name.Name, obj.Type()
}

// mutexFields lists the sync.Mutex / sync.RWMutex fields of t (after
// pointer stripping).
func mutexFields(t types.Type) []string {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, isStruct := t.Underlying().(*types.Struct)
	if !isStruct {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			out = append(out, st.Field(i).Name())
		}
	}
	return out
}

func isMutexType(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	return isNamed && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

func lockedPragma(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, has := strings.CutPrefix(text, "mpass:locked "); has {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// canonPath renders a selector chain as a canonical dotted path ("h.reg.mu")
// for the must-held set, or "" when the base is not a stable chain of
// identifiers and fields.
func canonPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := canonPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return canonPath(e.X)
	}
	return ""
}

// flow interprets one declared function (plus its literals).
type flow struct {
	sess     *Session
	pkg      *Package
	cfg      *flowConfig
	ctx      *flowCtx
	exprVals map[ast.Expr]absValue
	lits     []*ast.FuncLit
}

func (f *flow) visit(n ast.Node, st *flowState) {
	if f.cfg.visit != nil {
		f.cfg.visit(f.ctx, n, st)
	}
}

// block interprets stmts in sequence; the returned flag reports whether the
// path terminated (return / branch / panic) before the end.
func (f *flow) block(st *flowState, b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	return f.stmts(st, b.List)
}

func (f *flow) stmts(st *flowState, list []ast.Stmt) bool {
	for _, s := range list {
		if f.stmt(st, s) {
			return true
		}
	}
	return false
}

// stmt applies one statement's transfer function to st in place, returning
// true when the statement terminates the path.
func (f *flow) stmt(st *flowState, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return f.block(st, s)
	case *ast.LabeledStmt:
		return f.stmt(st, s.Stmt)
	case *ast.ExprStmt:
		f.eval(st, s.X)
		if isPanicCall(f.pkg, s.X) {
			return true
		}
	case *ast.AssignStmt:
		f.assign(st, s)
		f.visit(s, st)
	case *ast.DeclStmt:
		f.declStmt(st, s)
	case *ast.IncDecStmt:
		f.eval(st, s.X)
	case *ast.SendStmt:
		f.eval(st, s.Chan)
		f.eval(st, s.Value)
		f.visit(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.eval(st, r)
		}
		f.visit(s, st)
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave the current straight-line path; for
		// branch merging that is the same as termination.
		return true
	case *ast.DeferStmt:
		f.deferStmt(st, s)
	case *ast.GoStmt:
		f.eval(st, s.Call)
	case *ast.IfStmt:
		return f.ifStmt(st, s)
	case *ast.ForStmt:
		f.forStmt(st, s)
	case *ast.RangeStmt:
		f.rangeStmt(st, s)
	case *ast.SwitchStmt:
		f.switchStmt(st, s)
	case *ast.TypeSwitchStmt:
		f.typeSwitchStmt(st, s)
	case *ast.SelectStmt:
		f.selectStmt(st, s)
	}
	return false
}

func (f *flow) deferStmt(st *flowState, s *ast.DeferStmt) {
	// `defer mu.Unlock()` runs at function exit: the lock stays held for
	// the rest of the body, so the unlock effect is deliberately dropped.
	if name, _ := mutexCall(f.pkg, s.Call); name == "Unlock" || name == "RUnlock" {
		return
	}
	f.eval(st, s.Call)
}

func (f *flow) declStmt(st *flowState, s *ast.DeclStmt) {
	gd, isGen := s.Decl.(*ast.GenDecl)
	if !isGen {
		return
	}
	for _, spec := range gd.Specs {
		vs, isVal := spec.(*ast.ValueSpec)
		if !isVal {
			continue
		}
		for i, name := range vs.Names {
			var v absValue
			if i < len(vs.Values) {
				v = f.eval(st, vs.Values[i])
			}
			if obj := f.pkg.Info.Defs[name]; obj != nil {
				st.vals[obj] = v
			}
		}
	}
}

func (f *flow) assign(st *flowState, s *ast.AssignStmt) {
	// Evaluate non-ident LHS targets too: `r.jobs[id] = j` is a guarded
	// field access and the visit hooks must see it.
	for _, lhs := range s.Lhs {
		if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
			f.eval(st, lhs)
		}
	}
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		f.tupleAssign(st, s)
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		v := f.eval(st, s.Rhs[i])
		if obj := lhsObject(f.pkg, lhs); obj != nil {
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				st.vals[obj] = v
			} else {
				st.vals[obj] |= v
			}
		}
	}
}

// tupleAssign handles `a, b, err := call()` — per-result abstract values
// plus error-taint seeding that links the result objects to the error var.
func (f *flow) tupleAssign(st *flowState, s *ast.AssignStmt) {
	rhs := s.Rhs[0]
	f.eval(st, rhs)
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	results := make([]absValue, len(s.Lhs))
	errIndex := -1
	if isCall {
		callee := StaticCallee(f.pkg.Info, call)
		ctxIn := false
		for _, a := range call.Args {
			if f.exprVals[a]&SrcCtx != 0 {
				ctxIn = true
			}
		}
		if tuple, isTuple := f.pkg.Info.TypeOf(call).(*types.Tuple); isTuple && tuple.Len() == len(s.Lhs) {
			for i := 0; i < tuple.Len(); i++ {
				t := tuple.At(i).Type()
				if isGenerationType(t) && f.cfg.loaderResult != nil && callee != nil && f.cfg.loaderResult(callee) {
					results[i] |= SrcSnapshot
				}
				if isContextType(t) && ctxIn {
					results[i] |= SrcCtx
				}
				if isErrorType(t) {
					errIndex = i
				}
			}
		}
		if errIndex >= 0 && f.cfg.errSource != nil && f.cfg.errSource(f.pkg, call) {
			errObj := lhsObject(f.pkg, s.Lhs[errIndex])
			for i := range results {
				if i == errIndex {
					continue
				}
				results[i] |= SrcErrTainted
				if errObj != nil {
					if depObj := lhsObject(f.pkg, s.Lhs[i]); depObj != nil {
						st.errDeps[errObj] = append(st.errDeps[errObj], depObj)
					}
				}
			}
		}
	} else {
		// x, ok := m[k] / v, ok := y.(T): propagate the source's bits to
		// the value result.
		base := f.exprVals[rhs]
		if len(results) > 0 {
			results[0] = base
		}
	}
	for i, lhs := range s.Lhs {
		if obj := lhsObject(f.pkg, lhs); obj != nil {
			st.vals[obj] = results[i]
		}
	}
}

func lhsObject(pkg *Package, lhs ast.Expr) types.Object {
	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if !isIdent || id.Name == "_" {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func (f *flow) ifStmt(st *flowState, s *ast.IfStmt) bool {
	if s.Init != nil {
		f.stmt(st, s.Init)
	}
	f.eval(st, s.Cond)
	f.visit(s, st)
	thenSt := st.clone()
	elseSt := st.clone()
	refineErrCheck(f.pkg, s.Cond, thenSt, elseSt)
	thenTerm := f.block(thenSt, s.Body)
	elseTerm := false
	if s.Else != nil {
		elseTerm = f.stmt(elseSt, s.Else)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		*st = *elseSt
	case elseTerm:
		*st = *thenSt
	default:
		thenSt.merge(elseSt)
		*st = *thenSt
	}
	return false
}

// refineErrCheck applies the nil-check refinement for `err != nil` /
// `err == nil` conditions on error-typed variables: on the err-is-nil side
// the values produced alongside that error are known good and lose their
// taint; on the err-is-non-nil side the taint stays, so using the value
// there (instead of failing closed) still reports.
func refineErrCheck(pkg *Package, cond ast.Expr, thenSt, elseSt *flowState) {
	bin, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	ident, other := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if id, isIdent := other.(*ast.Ident); isIdent && id.Name != "nil" {
		ident, other = other, ident
	}
	nilIdent, isNil := other.(*ast.Ident)
	if !isNil || nilIdent.Name != "nil" {
		return
	}
	errIdent, isIdent := ident.(*ast.Ident)
	if !isIdent {
		return
	}
	obj := pkg.Info.Uses[errIdent]
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	if bin.Op == token.EQL { // err == nil: then-side clean
		thenSt.clearErr(obj)
	} else { // err != nil: else/fallthrough-side clean
		elseSt.clearErr(obj)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func (f *flow) forStmt(st *flowState, s *ast.ForStmt) {
	if s.Init != nil {
		f.stmt(st, s.Init)
	}
	f.loop(st, func(iter *flowState) bool {
		if s.Cond != nil {
			f.eval(iter, s.Cond)
		}
		term := f.block(iter, s.Body)
		if !term && s.Post != nil {
			f.stmt(iter, s.Post)
		}
		return term
	})
}

func (f *flow) rangeStmt(st *flowState, s *ast.RangeStmt) {
	src := f.eval(st, s.X)
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e == nil {
			continue
		}
		if obj := lhsObject(f.pkg, e); obj != nil {
			st.vals[obj] = src
		}
	}
	f.loop(st, func(iter *flowState) bool {
		return f.block(iter, s.Body)
	})
}

// loop runs body to a small fixpoint: iterate until the state stabilizes
// (bounded), merging each iteration's exit back into the loop head, and
// fold the result into st — which also covers the zero-iteration path.
func (f *flow) loop(st *flowState, body func(*flowState) bool) {
	iter := st.clone()
	for round := 0; round < 4; round++ {
		out := iter.clone()
		term := body(out)
		next := iter.clone()
		if !term {
			next.merge(out)
		}
		if next.equal(iter) {
			break
		}
		iter = next
	}
	st.merge(iter)
}

func (f *flow) switchStmt(st *flowState, s *ast.SwitchStmt) {
	if s.Init != nil {
		f.stmt(st, s.Init)
	}
	if s.Tag != nil {
		f.eval(st, s.Tag)
	}
	// A tagless switch is a chained if: reaching a later clause (or falling
	// past the switch) means every earlier guard was false, so an
	// `err != nil` clause clears the error taint on the paths that skip it.
	f.caseMerge(st, s.Body, s.Tag == nil, nil)
}

func (f *flow) typeSwitchStmt(st *flowState, s *ast.TypeSwitchStmt) {
	if s.Init != nil {
		f.stmt(st, s.Init)
	}
	var bindVal absValue
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		bindVal = f.eval(st, a.X)
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			bindVal = f.eval(st, a.Rhs[0])
		}
	}
	f.caseMerge(st, s.Body, false, func(clause *ast.CaseClause, caseSt *flowState) {
		// The per-clause binding of `v := x.(type)` is a distinct object
		// per clause, recorded in Implicits.
		if obj := f.pkg.Info.Implicits[clause]; obj != nil {
			caseSt.vals[obj] = bindVal
		}
	})
}

// caseMerge interprets each case clause of a switch body from the entry
// state and merges the non-terminated exits; without a default clause the
// fall-past path keeps the entry state. With refineFall set (tagless
// switch), nil-check clauses refine the entry state for the clauses and
// fall-through after them.
func (f *flow) caseMerge(st *flowState, body *ast.BlockStmt, refineFall bool, seed func(*ast.CaseClause, *flowState)) {
	var merged *flowState
	hasDefault := false
	for _, raw := range body.List {
		clause, isCase := raw.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		caseSt := st.clone()
		for _, e := range clause.List {
			f.eval(caseSt, e)
			if refineFall {
				refineErrCheck(f.pkg, e, caseSt, st)
			}
		}
		if seed != nil {
			seed(clause, caseSt)
		}
		if f.stmts(caseSt, clause.Body) {
			continue
		}
		if merged == nil {
			merged = caseSt
		} else {
			merged.merge(caseSt)
		}
	}
	if merged == nil {
		return
	}
	if hasDefault {
		*st = *merged
	} else {
		st.merge(merged)
	}
}

func (f *flow) selectStmt(st *flowState, s *ast.SelectStmt) {
	var merged *flowState
	for _, raw := range s.Body.List {
		clause, isComm := raw.(*ast.CommClause)
		if !isComm {
			continue
		}
		caseSt := st.clone()
		if clause.Comm != nil {
			f.stmt(caseSt, clause.Comm)
		}
		if f.stmts(caseSt, clause.Body) {
			continue
		}
		if merged == nil {
			merged = caseSt
		} else {
			merged.merge(caseSt)
		}
	}
	if merged != nil {
		// A select always takes exactly one clause; with every armed
		// clause accounted for, the merge replaces the entry state.
		*st = *merged
	}
}

// eval computes e's abstract value, applies its effects to st, records the
// value for flowCtx.Value, and fires visit hooks for interesting nodes.
func (f *flow) eval(st *flowState, e ast.Expr) absValue {
	v := f.evalInner(st, e)
	f.exprVals[e] = v
	return v
}

func (f *flow) evalInner(st *flowState, e ast.Expr) absValue {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := f.pkg.Info.Uses[e]; obj != nil {
			return st.vals[obj]
		}
		return 0
	case *ast.SelectorExpr:
		return f.evalSelector(st, e)
	case *ast.CallExpr:
		return f.evalCall(st, e)
	case *ast.CompositeLit:
		var v absValue
		for _, elt := range e.Elts {
			v |= f.eval(st, elt)
		}
		f.visit(e, st)
		return v
	case *ast.KeyValueExpr:
		return f.eval(st, e.Value)
	case *ast.ParenExpr:
		return f.eval(st, e.X)
	case *ast.StarExpr:
		return f.eval(st, e.X)
	case *ast.UnaryExpr:
		return f.eval(st, e.X)
	case *ast.BinaryExpr:
		return f.eval(st, e.X) | f.eval(st, e.Y)
	case *ast.IndexExpr:
		return f.eval(st, e.X) | f.eval(st, e.Index)
	case *ast.IndexListExpr:
		return f.eval(st, e.X)
	case *ast.SliceExpr:
		return f.eval(st, e.X)
	case *ast.TypeAssertExpr:
		return f.eval(st, e.X)
	case *ast.FuncLit:
		f.lits = append(f.lits, e)
		return 0
	}
	return 0
}

func (f *flow) evalSelector(st *flowState, e *ast.SelectorExpr) absValue {
	sel := f.pkg.Info.Selections[e]
	if sel == nil {
		// Package-qualified identifier: pkg.Name.
		var v absValue
		if obj := f.pkg.Info.Uses[e.Sel]; obj != nil {
			v = st.vals[obj]
		}
		f.visit(e, st)
		return v
	}
	base := f.eval(st, e.X)
	f.visit(e, st)
	v := base
	// A version field of a generation value is version-derived: ms.version
	// on *modelSet, whether ms came from a tracked load or a parameter.
	if sel.Kind() == types.FieldVal && strings.EqualFold(e.Sel.Name, "version") &&
		(base&SrcSnapshot != 0 || isGenerationType(sel.Recv())) {
		v |= SrcVersion
	}
	return v
}

func (f *flow) evalCall(st *flowState, call *ast.CallExpr) absValue {
	// Conversions propagate their operand: string(raw), []byte(s).
	if tv, known := f.pkg.Info.Types[call.Fun]; known && tv.IsType() {
		var v absValue
		for _, a := range call.Args {
			v |= f.eval(st, a)
		}
		return v
	}
	var args absValue
	for _, a := range call.Args {
		args |= f.eval(st, a)
	}
	var recv absValue
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if f.pkg.Info.Selections[sel] != nil {
			recv = f.eval(st, sel.X)
		}
	}
	// Hooks observe the call with pre-call state (arguments evaluated, the
	// call's own effects not yet applied): snapshotonce reads st.Loads()
	// here to ask "was a generation already pinned before this load?".
	f.visit(call, st)

	name, muPath := mutexCall(f.pkg, call)
	switch name {
	case "Lock", "RLock":
		if muPath != "" {
			st.held[muPath] = true
		}
	case "Unlock", "RUnlock":
		if muPath != "" {
			delete(st.held, muPath)
		}
	}

	var v absValue
	callee := StaticCallee(f.pkg.Info, call)
	if isSnapshotLoadCall(f.pkg.Info, call) ||
		(callee != nil && f.cfg.loaderResult != nil && f.cfg.loaderResult(callee)) {
		st.addLoad(call.Pos())
		if isGenerationType(f.pkg.Info.TypeOf(call)) {
			v |= SrcSnapshot
		}
	}
	if isBuiltinName(f.pkg, call.Fun, "append") || isBuiltinName(f.pkg, call.Fun, "copy") {
		v |= args
	}
	v |= f.hashValue(st, call, callee)
	if isVersionMethod(f.pkg, call) {
		v |= SrcVersion
	}
	if recv&SrcErrTainted != 0 {
		v |= SrcErrTainted
	}
	return v
}

// hashValue recognizes content-digest production: sha256.Sum256(data), and
// the streaming form h.Sum(buf[:0]) which also marks buf's variable as
// hash-derived.
func (f *flow) hashValue(st *flowState, call *ast.CallExpr, callee *types.Func) absValue {
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "crypto/sha256" &&
		strings.HasPrefix(callee.Name(), "Sum") {
		return SrcContentHash
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Sum" || f.pkg.Info.Selections[sel] == nil || len(call.Args) != 1 {
		return 0
	}
	// h.Sum(sum[:0]): the digest lands in sum's backing array.
	if slice, isSlice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); isSlice {
		if id, isIdent := ast.Unparen(slice.X).(*ast.Ident); isIdent {
			if obj := f.pkg.Info.Uses[id]; obj != nil {
				st.vals[obj] |= SrcContentHash
			}
		}
	}
	return SrcContentHash
}

// isVersionMethod reports Version()-style calls on the serving layer's own
// types (engine drivers and sets, server model sets): their results key
// cache generations.
func isVersionMethod(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Version" {
		return false
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil {
		return false
	}
	recv := selection.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	n, isNamed := recv.(*types.Named)
	return isNamed && n.Obj().Pkg() != nil &&
		pathWithinAny(n.Obj().Pkg().Path(), []string{"internal/server", "internal/gateway", "internal/engine"})
}

func isBuiltinName(pkg *Package, fun ast.Expr, name string) bool {
	id, isIdent := ast.Unparen(fun).(*ast.Ident)
	if !isIdent || id.Name != name {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// mutexCall reports the method name and canonical mutex path for
// Lock/Unlock/RLock/RUnlock calls on sync.Mutex / sync.RWMutex values.
func mutexCall(pkg *Package, call *ast.CallExpr) (string, string) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil || !isMutexType(selection.Recv()) {
		return "", ""
	}
	return sel.Sel.Name, canonPath(sel.X)
}

func isPanicCall(pkg *Package, e ast.Expr) bool {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false
	}
	if isBuiltinName(pkg, call.Fun, "panic") {
		return true
	}
	if callee := StaticCallee(pkg.Info, call); callee != nil && callee.Pkg() != nil {
		p, n := callee.Pkg().Path(), callee.Name()
		if p == "os" && n == "Exit" {
			return true
		}
		if p == "log" && strings.HasPrefix(n, "Fatal") {
			return true
		}
	}
	return false
}
