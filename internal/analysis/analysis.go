// Package analysis is the repo's static-analysis framework: a small,
// stdlib-only (go/parser + go/types, no x/tools) analyzer harness plus the
// mpass-specific invariant checks that cmd/mpass-lint runs over the tree.
//
// The invariants it guards were bought with parity and race tests in PRs
// 1–3 — bit-identical scoring across worker counts and the lookup-table
// fast path, pool-mediated concurrency, shed-or-bounded-wait serving
// queues, zero-allocation steady-state hot paths. Runtime tests catch a
// regression after it ships; the analyzers here reject the shapes of code
// that cause one at lint time.
//
// Round 2 added a dataflow layer on top of the per-file walks: a
// cross-package call graph (callgraph.go), per-function facts that
// analyzers export and import in dependency order (facts.go), and a
// forward abstract interpreter over the serving-tier domain —
// snapshot-load, lock-held region, ctx-derived, error-tainted
// (dataflow.go). The snapshotonce, mutexguard, versionkey, and failclosed
// analyzers are built on it.
//
// Findings can be silenced case by case with
//
//	//lint:ignore <analyzer> <reason>
//
// placed at the end of the flagged line or on its own line directly above.
// The reason is mandatory; a directive without one is itself reported. A
// directive whose analyzer no longer fires on the covered lines is
// reported by the pseudo-analyzer "suppressions", so dead waivers cannot
// accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package and reports findings through the Pass. Init, when
// set, runs once per session before any analyzer's Run — it is where an
// analyzer computes global state (call-graph prepasses) and exports facts.
// Needs names the analyzers whose facts this one imports; Run orders
// execution so producers complete first.
type Analyzer struct {
	Name  string // short identifier, used in //lint:ignore directives
	Doc   string // one-line description of the invariant
	Needs []string
	Init  func(*Session)
	Run   func(*Pass)
}

// Pass hands one package to one analyzer, with the session shared by the
// whole run for fact import and call-graph access.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Sess     *Session
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportTrace(pos, nil, format, args...)
}

// ReportTrace records a finding with an attached call-path trace: the
// chain of call sites connecting the reported position to the primitive
// operation that justifies the finding.
func (p *Pass) ReportTrace(pos token.Pos, trace []TraceStep, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Trace:    trace,
	})
}

// TraceStep is one hop of a diagnostic's call-path trace.
type TraceStep struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Func string `json:"func"`
}

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
	Trace    []TraceStep    `json:"trace,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package (test files excluded).
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Timing is one analyzer's wall-clock share of a run. The pseudo-entry
// "session" covers call-graph construction plus every analyzer's Init.
type Timing struct {
	Analyzer string        `json:"analyzer"`
	Duration time.Duration `json:"duration_ns"`
}

// All returns the full analyzer set in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NakedGo,
		WeightsGuard,
		Determinism,
		Atomics,
		BoundedQueue,
		CtxFlow,
		ZeroAlloc,
		SnapshotOnce,
		MutexGuard,
		VersionKey,
		FailClosed,
	}
}

// ByName resolves a comma-separated analyzer list against All, erroring on
// unknown names.
func ByName(list string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package, drops findings covered by a
// //lint:ignore directive, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall-time. The run is analyzer-major
// in Needs order: every fact producer's Init has completed before any Run
// starts, and each analyzer sweeps all packages before the next begins, so
// cross-package facts are complete when imported.
//
// Suppression handling reports two pseudo-analyzers of its own: "lint" for
// malformed directives (missing analyzer name or reason) and
// "suppressions" for stale ones — a directive that covered nothing this
// run, provided its analyzer actually ran (so a subset -run does not flag
// other analyzers' waivers) or is unknown to the framework entirely.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	ordered, err := orderByNeeds(analyzers)
	if err != nil {
		// A Needs cycle is a bug in the analyzer set, not in the analyzed
		// code; fail loudly.
		panic(err)
	}

	var timings []Timing
	start := time.Now()
	sess := NewSession(pkgs)
	for _, a := range All() {
		if a.Init != nil {
			a.Init(sess)
		}
	}
	timings = append(timings, Timing{Analyzer: "session", Duration: time.Since(start)})

	var raw []Diagnostic
	for _, a := range ordered {
		t0 := time.Now()
		for _, pkg := range pkgs {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Sess: sess, diags: &raw})
		}
		timings = append(timings, Timing{Analyzer: a.Name, Duration: time.Since(t0)})
	}
	raw = dedup(raw)

	sup, malformed := collectSuppressions(pkgs)
	var out []Diagnostic
	for _, d := range raw {
		if sup.covers(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, malformed...)
	out = append(out, staleSuppressions(sup, ordered)...)

	for i := range out {
		out[i].File = out[i].Pos.Filename
		out[i].Line = out[i].Pos.Line
		out[i].Col = out[i].Pos.Column
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, timings
}

// dedup removes repeated identical findings: dataflow loop fixpoints visit
// loop bodies more than once, and the same violation re-reported from a
// later iteration carries no new information.
func dedup(diags []Diagnostic) []Diagnostic {
	seen := map[string]bool{}
	var out []Diagnostic
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// staleSuppressions turns unused directives into findings. Two rounds: the
// first flags ordinary stale directives and lets a //lint:ignore
// suppressions waiver (with a reason) cover them; the second flags
// suppressions-waivers that themselves covered nothing.
func staleSuppressions(sup *suppressions, ran []*Analyzer) []Diagnostic {
	active := map[string]bool{"lint": true, "suppressions": true}
	for _, a := range ran {
		active[a.Name] = true
	}
	known := map[string]bool{"lint": true, "suppressions": true, "*": true}
	for _, a := range All() {
		known[a.Name] = true
	}

	stale := func(wantSupWaivers bool) []Diagnostic {
		var out []Diagnostic
		for _, e := range sup.entries {
			if e.used || (e.analyzer == "suppressions") != wantSupWaivers {
				continue
			}
			reason := "never fires there"
			if !known[e.analyzer] {
				reason = "no such analyzer"
			} else if !active[e.analyzer] {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      e.pos,
				Analyzer: "suppressions",
				Message: fmt.Sprintf("stale //lint:ignore %s: the analyzer %s; delete the directive or re-justify it",
					e.analyzer, reason),
			})
		}
		return out
	}

	var out []Diagnostic
	for _, d := range stale(false) {
		if !sup.covers(d) {
			out = append(out, d)
		}
	}
	out = append(out, stale(true)...)
	return out
}

// supEntry is one parsed //lint:ignore directive and whether it covered a
// finding this run.
type supEntry struct {
	pos      token.Position
	analyzer string
	used     bool
}

// suppressions indexes directives by file -> line -> analyzer. A directive
// covers its own line (trailing-comment form) and the line below it
// (directive-above form).
type suppressions struct {
	index   map[string]map[int]map[string]*supEntry
	entries []*supEntry
}

func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.index[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range [2]string{d.Analyzer, "*"} {
			if e := lines[ln][name]; e != nil {
				e.used = true
				return true
			}
		}
	}
	return false
}

const ignoreDirective = "lint:ignore"

// collectSuppressions scans every comment in every file for lint:ignore
// directives, returning the suppression index and diagnostics for
// malformed directives.
func collectSuppressions(pkgs []*Package) (*suppressions, []Diagnostic) {
	sup := &suppressions{index: map[string]map[int]map[string]*supEntry{}}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Directive form only: no space after //, like go:build.
					// "// lint:ignore ..." is prose about a directive, not one.
					text, isLine := strings.CutPrefix(c.Text, "//")
					if !isLine || !strings.HasPrefix(text, ignoreDirective) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" with a non-empty reason",
						})
						continue
					}
					lines := sup.index[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]*supEntry{}
						sup.index[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = map[string]*supEntry{}
					}
					entry := &supEntry{pos: pos, analyzer: fields[0]}
					lines[pos.Line][fields[0]] = entry
					sup.entries = append(sup.entries, entry)
				}
			}
		}
	}
	return sup, malformed
}
