// Package analysis is the repo's static-analysis framework: a small,
// stdlib-only (go/parser + go/types, no x/tools) analyzer harness plus the
// mpass-specific invariant checks that cmd/mpass-lint runs over the tree.
//
// The invariants it guards were bought with parity and race tests in PRs
// 1–3 — bit-identical scoring across worker counts and the lookup-table
// fast path, pool-mediated concurrency, shed-or-bounded-wait serving
// queues, zero-allocation steady-state hot paths. Runtime tests catch a
// regression after it ships; the analyzers here reject the shapes of code
// that cause one at lint time.
//
// Findings can be silenced case by case with
//
//	//lint:ignore <analyzer> <reason>
//
// placed at the end of the flagged line or on its own line directly above.
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string // short identifier, used in //lint:ignore directives
	Doc  string // one-line description of the invariant
	Run  func(*Pass)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package (test files excluded).
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// All returns the full analyzer set in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NakedGo,
		WeightsGuard,
		Determinism,
		Atomics,
		BoundedQueue,
		CtxFlow,
		ZeroAlloc,
	}
}

// ByName resolves a comma-separated analyzer list against All, erroring on
// unknown names.
func ByName(list string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies every analyzer to every package, drops findings covered by a
// //lint:ignore directive, and returns the rest sorted by position. A
// malformed directive (missing analyzer name or reason) is reported as a
// finding of the pseudo-analyzer "lint".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &raw})
		}
	}

	sup, malformed := collectSuppressions(pkgs)
	var out []Diagnostic
	for _, d := range raw {
		if sup.covers(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, malformed...)

	for i := range out {
		out[i].File = out[i].Pos.Filename
		out[i].Line = out[i].Pos.Line
		out[i].Col = out[i].Pos.Column
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions maps file -> line -> analyzer names silenced on that line.
// A directive covers its own line (trailing-comment form) and the line
// below it (directive-above form).
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if lines[ln][d.Analyzer] || lines[ln]["*"] {
			return true
		}
	}
	return false
}

const ignoreDirective = "lint:ignore"

// collectSuppressions scans every comment in every file for lint:ignore
// directives, returning the suppression index and diagnostics for
// malformed directives.
func collectSuppressions(pkgs []*Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignoreDirective) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" with a non-empty reason",
						})
						continue
					}
					lines := sup[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						sup[pos.Filename] = lines
					}
					if lines[pos.Line] == nil {
						lines[pos.Line] = map[string]bool{}
					}
					lines[pos.Line][fields[0]] = true
				}
			}
		}
	}
	return sup, malformed
}
