package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// versionkey guards the generation-keyed score cache that PR 8
// introduced: every insert into a score cache must derive its key from
// BOTH a model/set version and a content hash. A key missing the version
// component regresses to the pre-PR-8 bug — a hot reload leaves stale
// scores served for identical bytes under the new model generation; a
// key missing the content hash would collide every sample of a
// generation onto one entry.
//
// Derivation is checked with the dataflow engine's value sources: the
// version component must carry SrcVersion (a .version field of a
// generation value, or a Version() method of the serving layer's types)
// and the digest component must carry SrcContentHash (sha256.Sum256, or
// a hash.Hash Sum into a caller buffer). Insert sites are calls to a
// `put` method on a *cache-named type; lookup keys are deliberately not
// checked — a malformed get key is a harmless miss, a malformed put key
// is a poisoned cache.
//
// versionkey Needs snapshotonce: the loader facts are what make
// `ms := s.snap(); ... ms.version` version-derived through helper calls.

var versionKeyPackages = []string{"internal/server"}

var VersionKey = &Analyzer{
	Name:  "versionkey",
	Doc:   "score-cache inserts are keyed by (model/set version, content hash)",
	Needs: []string{"snapshotonce"},
	Run:   runVersionKey,
}

func runVersionKey(pass *Pass) {
	if !pathWithinAny(pass.Pkg.PkgPath, versionKeyPackages) {
		return
	}
	sess := pass.Sess
	cfg := &flowConfig{
		loaderResult: func(fn *types.Func) bool { return isLoader(sess, fn) },
	}
	cfg.visit = func(c *flowCtx, n ast.Node, st *flowState) {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || !isCacheInsert(c.Pkg, call) || len(call.Args) < 1 {
			return
		}
		key := ast.Unparen(call.Args[0])
		keyType := c.Pkg.Info.TypeOf(key)
		versionField, hashField := versionKeyFields(keyType)
		if versionField == nil || hashField == nil {
			pass.Reportf(call.Pos(),
				"cache insert keyed by %s: the key type must pair a model/set version with a content hash (scoreKey shape)",
				types.TypeString(keyType, types.RelativeTo(pass.Pkg.Types)))
			return
		}
		if lit, isLit := key.(*ast.CompositeLit); isLit {
			checkKeyLiteral(pass, c, lit, versionField, hashField)
			return
		}
		v := c.Value(key)
		if v&SrcVersion == 0 {
			pass.Reportf(call.Pos(),
				"cache key's %s is not derived from a model/set version on this path", versionField.Name())
		}
		if v&SrcContentHash == 0 {
			pass.Reportf(call.Pos(),
				"cache key's %s is not derived from a content hash on this path", hashField.Name())
		}
	}
	runFlow(sess, pass.Pkg, cfg)
}

// checkKeyLiteral verifies each component of an inline key literal
// individually, so the diagnostic names the field that is wrong rather
// than the whole key.
func checkKeyLiteral(pass *Pass, c *flowCtx, lit *ast.CompositeLit, versionField, hashField *types.Var) {
	exprs := map[*types.Var]ast.Expr{}
	fields := structFieldsOf(c.Pkg.Info.TypeOf(lit))
	for i, elt := range lit.Elts {
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			name, isIdent := kv.Key.(*ast.Ident)
			if !isIdent {
				continue
			}
			for _, f := range fields {
				if f.Name() == name.Name {
					exprs[f] = kv.Value
				}
			}
			continue
		}
		if i < len(fields) {
			exprs[fields[i]] = elt
		}
	}
	if e, present := exprs[versionField]; !present || !exprHas(c, e, SrcVersion) {
		pass.Reportf(lit.Pos(),
			"cache key %s is not derived from a model/set version (want a generation's .version or Version())",
			versionField.Name())
	}
	if e, present := exprs[hashField]; !present || !exprHas(c, e, SrcContentHash) {
		pass.Reportf(lit.Pos(),
			"cache key %s is not derived from a content hash (want sha256 over the scanned bytes)",
			hashField.Name())
	}
}

func exprHas(c *flowCtx, e ast.Expr, bit absValue) bool {
	return (c.Value(e)|c.Value(ast.Unparen(e)))&bit != 0
}

// isCacheInsert matches calls to a method named "put" on a receiver whose
// named type is a cache (name contains "cache" / "Cache").
func isCacheInsert(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "put" {
		return false
	}
	fn, recv := methodSelection(pkg.Info, sel)
	if fn == nil {
		return false
	}
	named := namedType(recv)
	return named != nil && strings.Contains(strings.ToLower(named.Obj().Name()), "cache")
}

// versionKeyFields identifies the version and content-hash components of
// a key type: a named struct with a string field whose name contains
// "version" and a byte-array/slice field (the digest).
func versionKeyFields(t types.Type) (versionField, hashField *types.Var) {
	for _, f := range structFieldsOf(t) {
		name := strings.ToLower(f.Name())
		if strings.Contains(name, "version") && isStringType(f.Type()) {
			versionField = f
		} else if isByteSequence(f.Type()) {
			hashField = f
		}
	}
	return versionField, hashField
}

func structFieldsOf(t types.Type) []*types.Var {
	if t == nil {
		return nil
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	st, isStruct := t.Underlying().(*types.Struct)
	if !isStruct {
		return nil
	}
	out := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		out = append(out, st.Field(i))
	}
	return out
}

func isStringType(t types.Type) bool {
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsString != 0
}

func isByteSequence(t types.Type) bool {
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Array:
		elem = u.Elem()
	case *types.Slice:
		elem = u.Elem()
	default:
		return false
	}
	b, isBasic := elem.Underlying().(*types.Basic)
	return isBasic && b.Kind() == types.Byte
}
