package analysis

import "testing"

// The lint benchmarks price the dataflow round against the PR 4 per-file
// baseline on the same loaded tree. Loading and type-checking happen once
// outside the timed loop — the measured cost is one Run: session build
// (call graph, primitive summaries, every Init) plus the analyzer sweeps.
// The session is shared overhead in both measurements, so the gate
// (`make lint-bench`: full <= 2x baseline) prices exactly what round 2
// added — the four dataflow walks and the fact propagation.

func benchLint(b *testing.B, analyzers []*Analyzer) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(pkgs, analyzers)
	}
}

// BenchmarkLintBaseline runs the pre-dataflow analyzer set (PR 4 scope:
// per-file AST walks only).
func BenchmarkLintBaseline(b *testing.B) {
	base, err := ByName("nakedgo,weightsguard,determinism,atomics,boundedqueue,ctxflow,zeroalloc")
	if err != nil {
		b.Fatal(err)
	}
	benchLint(b, base)
}

// BenchmarkLintFull runs all eleven analyzers — the `make lint` set.
func BenchmarkLintFull(b *testing.B) {
	benchLint(b, All())
}
