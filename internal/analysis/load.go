package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader resolves package patterns with `go list -deps` and
// type-checks everything — the target packages and their full dependency
// cone, standard library included — from source, in the dependency order
// go list already emits. No export data and no x/tools: one go-list
// process, then go/parser + go/types. The whole tree (≈200 packages with
// stdlib deps) loads in about two seconds, which keeps the lint gate
// cheap enough to sit inside `make ci`.
//
// Test files are deliberately excluded: the invariants guard production
// code paths, and tests legitimately spawn goroutines, compare floats, and
// allocate in annotated shapes.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
}

// Load type-checks the packages matching patterns, resolved relative to
// dir, and returns the matched packages (dependencies are checked too but
// not returned). Cgo is disabled during resolution so the file sets are
// pure Go.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,GoFiles,ImportMap,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	memo := map[string]*types.Package{"unsafe": types.Unsafe}
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	var roots []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if len(lp.GoFiles) == 0 {
			// Test-only packages (the repo root holds just bench_test.go)
			// list with no non-test files; there is nothing to lint.
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name),
				nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}

		importMap := lp.ImportMap
		conf := types.Config{
			Sizes: sizes,
			Importer: importerFunc(func(path string) (*types.Package, error) {
				if mapped, ok := importMap[path]; ok {
					path = mapped
				}
				tp, ok := memo[path]
				if !ok {
					return nil, fmt.Errorf("dependency %q not loaded", path)
				}
				return tp, nil
			}),
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tp, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		memo[lp.ImportPath] = tp
		if !lp.DepOnly {
			roots = append(roots, &Package{
				PkgPath: lp.ImportPath,
				Dir:     lp.Dir,
				Fset:    fset,
				Files:   files,
				Types:   tp,
				Info:    info,
			})
		}
	}
	return roots, nil
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
