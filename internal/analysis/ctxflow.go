package analysis

import (
	"go/ast"
)

// ctxflowPackages are the serving-path packages: code here sits between an
// HTTP request (or a daemon's drain deadline) and a blocking operation, so
// every wait must be interruptible through a context threaded from the
// caller. internal/core is exempt — its context-free Attack entry point is
// a documented legacy surface, and the determinism analyzer already bans
// wall-clock reads there. internal/recovery and internal/visa joined the
// scope in lint round 2: both run under request or drain deadlines and owe
// their callers the same interruptibility. internal/tenant joined in
// PR 10: per-tenant admission runs inside every request handler, so any
// blocking wait it grew would stall scans past their deadlines.
var ctxflowPackages = []string{
	"internal/server",
	"internal/gateway",
	"internal/parallel",
	"internal/faultinject",
	"internal/recovery",
	"internal/visa",
	"internal/tenant",
}

// CtxFlow enforces context threading on the serving path:
//
//   - context.Background() / context.TODO() mint a fresh root, severing the
//     chain that lets Server.Shutdown and per-job deadlines reach a blocked
//     call. The pre-hardening resident oracle did exactly this — each query
//     ran under WithTimeout(Background(), ...) and a draining server could
//     not interrupt it. Serving-path code must derive from the ctx it was
//     handed; the few legitimate roots (a pool's lifetime context, a
//     post-cancel grace window, context-free compatibility shims) carry
//     //lint:ignore ctxflow directives stating why.
//   - time.Sleep blocks with no way to observe cancellation: use
//     time.NewTimer and select against ctx.Done().
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "serving-path packages: no fresh context roots (Background/TODO) and no uninterruptible time.Sleep — thread the caller's ctx",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if !pathWithinAny(p.Pkg.PkgPath, ctxflowPackages) {
		return
	}
	info := p.Pkg.Info
	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		ast.Inspect(fd, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(info, call)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "context" && (name == "Background" || name == "TODO"):
				p.Reportf(call.Pos(), "context.%s mints a fresh root on the serving path, unreachable by shutdown or deadlines: thread the caller's ctx", name)
			case pkgPath == "time" && name == "Sleep":
				p.Reportf(call.Pos(), "time.Sleep cannot observe cancellation: use time.NewTimer with a select on ctx.Done()")
			}
			return true
		})
	})
}
