package analysis

import (
	"go/ast"
	"go/types"
)

// Atomics enforces the typed sync/atomic style and coherent access.
//
// Invariant (PRs 1–3): every shared counter in the tree — pool cursors,
// serving metrics, the batcher's queue state — is a typed atomic value
// (atomic.Int64 and friends) embedded in its owning struct. The legacy
// package-level functions (atomic.AddInt64 on a plain field) type-check
// even when other code touches the same field non-atomically, which is
// exactly the torn-counter bug the race gate only catches when a test
// happens to race. Two rules:
//
//  1. calls to sync/atomic package-level functions are flagged outright —
//     declare the field as a typed atomic instead;
//  2. a plain field that is passed to an atomic function somewhere and
//     read or written directly somewhere else in the same package is
//     flagged at every non-atomic site.
var Atomics = &Analyzer{
	Name: "atomics",
	Doc:  "counters must use typed sync/atomic values; no mixed atomic/plain access to one field",
	Run:  runAtomics,
}

func runAtomics(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: flag legacy atomic calls and remember which struct fields
	// they address, plus the selector nodes used inside those calls so
	// pass 2 does not double-report them.
	atomicFields := map[*types.Var]bool{}
	inAtomicCall := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(info, call)
			if !ok || pkgPath != "sync/atomic" {
				return true
			}
			p.Reportf(call.Pos(), "legacy atomic.%s call: declare the field as a typed sync/atomic value (atomic.Int64 etc.)", name)
			for _, arg := range call.Args {
				unary, isUnary := arg.(*ast.UnaryExpr)
				if !isUnary {
					continue
				}
				sel, isSel := unary.X.(*ast.SelectorExpr)
				if !isSel {
					continue
				}
				if field, _ := fieldSelection(info, sel); field != nil {
					atomicFields[field] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: any other access to a field addressed atomically above is a
	// coherence violation.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel || inAtomicCall[sel] {
				return true
			}
			if field, _ := fieldSelection(info, sel); field != nil && atomicFields[field] {
				p.Reportf(sel.Pos(), "field %s is accessed atomically elsewhere in this package; non-atomic access tears the counter", field.Name())
			}
			return true
		})
	}
}
