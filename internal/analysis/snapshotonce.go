package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// snapshotonce enforces the one-generation-per-request invariant that the
// PR 8 hot-reload work made load-bearing: a request-scoped code path in
// the serving tier may pin a serving generation (models.Load(), the
// engine registry's Current(), the gateway ring load) at most once, and
// must thread that one snapshot through everything it calls. Two loads on
// the same path can straddle a concurrent reload and mix generations —
// score with one model set, label or cache under another — which is
// exactly the stale-cache bug shape the generation-keyed cache fixed
// dynamically. This analyzer rejects the shape statically.
//
// Mechanically: the session records every direct atomic generation load
// (facts.go); Init propagates a loader fact over the call graph, so a
// function that transitively pins a generation is itself a load event at
// its call sites; Run then walks each request path with the dataflow
// engine and reports any load event that executes after another load may
// already have happened on the same path. Diagnostics for indirect loads
// carry the call-path trace down to the primitive atomic load.
//
// Calls the graph cannot resolve (interface methods, func-typed fields
// like the batcher's snapshot source) contribute no load event; that is
// deliberate under-approximation — per-invocation re-snapshot behind a
// func field is the documented micro-batching contract.

const loaderFactName = "snapshotonce.loader"

// loaderFact marks a function that pins a serving generation when called.
// Dir points one hop along a static call chain toward the primitive
// atomic load; Site is the position of that hop's call site (or of the
// atomic load itself when Dir is nil).
type loaderFact struct {
	Dir  *types.Func
	Site token.Pos
}

func (*loaderFact) FactName() string { return loaderFactName }

// snapshotOncePackages is where the one-load rule is enforced. The fact
// prepass still covers every loaded package, so loads reached through
// helpers declared elsewhere (internal/engine's registry) are visible.
var snapshotOncePackages = []string{"internal/server", "internal/gateway"}

var SnapshotOnce = &Analyzer{
	Name: "snapshotonce",
	Doc:  "request paths pin at most one serving-generation snapshot and thread it through",
	Init: snapshotOnceInit,
	Run:  runSnapshotOnce,
}

func snapshotOnceInit(sess *Session) {
	var queue []*types.Func
	for _, fn := range sess.Graph.Funcs() {
		if loads := sess.PrimLoads(fn); len(loads) > 0 {
			sess.ExportFact(fn, &loaderFact{Site: loads[0]})
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range sess.Graph.Callers(fn) {
			if sess.ImportFact(caller, loaderFactName) != nil {
				continue
			}
			site := token.NoPos
			for _, cs := range sess.Graph.Node(caller).Calls {
				if cs.Callee == fn {
					site = cs.Pos
					break
				}
			}
			sess.ExportFact(caller, &loaderFact{Dir: fn, Site: site})
			queue = append(queue, caller)
		}
	}
}

// isLoader reports whether a resolved callee pins a generation.
func isLoader(sess *Session, fn *types.Func) bool {
	return sess.ImportFact(fn, loaderFactName) != nil
}

// loaderTrace renders the call chain from fn down to the primitive atomic
// load as diagnostic trace steps.
func loaderTrace(sess *Session, fn *types.Func) []TraceStep {
	var out []TraceStep
	for fn != nil {
		fact, isLoader := sess.ImportFact(fn, loaderFactName).(*loaderFact)
		pkg := sess.PackageOf(fn)
		if !isLoader || pkg == nil || !fact.Site.IsValid() || len(out) > 16 {
			break
		}
		pos := pkg.Fset.Position(fact.Site)
		out = append(out, TraceStep{File: pos.Filename, Line: pos.Line, Col: pos.Column, Func: fn.Name()})
		fn = fact.Dir
	}
	return out
}

func runSnapshotOnce(pass *Pass) {
	if !pathWithinAny(pass.Pkg.PkgPath, snapshotOncePackages) {
		return
	}
	sess := pass.Sess
	cfg := &flowConfig{
		loaderResult: func(fn *types.Func) bool { return isLoader(sess, fn) },
		visit: func(c *flowCtx, n ast.Node, st *flowState) {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return
			}
			callee := StaticCallee(c.Pkg.Info, call)
			direct := isSnapshotLoadCall(c.Pkg.Info, call)
			if !direct && (callee == nil || !isLoader(sess, callee)) {
				return
			}
			prior := st.Loads()
			if len(prior) == 0 {
				return
			}
			first := c.Pkg.Fset.Position(prior[0])
			var trace []TraceStep
			if !direct && callee != nil {
				trace = loaderTrace(sess, callee)
			}
			pass.ReportTrace(call.Pos(), trace,
				"second generation snapshot on this request path (first pinned at %s:%d); thread one snapshot through instead of re-loading",
				first.Filename, first.Line)
		},
	}
	runFlow(sess, pass.Pkg, cfg)
}
