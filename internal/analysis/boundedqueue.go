package analysis

import "go/ast"

// boundedQueuePackages are the request-serving tiers: the replica server
// and the gateway in front of it, plus the recovery and visa layers that
// sit on the same request paths (scoped in lint round 2). All of them sit
// between an HTTP caller and a queue, so all owe the caller an explicit
// shed instead of a silent block. internal/tenant (PR 10) is the quota
// layer in front of the shared admission queue and must shed, not queue.
var boundedQueuePackages = []string{
	"internal/server",
	"internal/gateway",
	"internal/recovery",
	"internal/visa",
	"internal/tenant",
}

// BoundedQueue flags bare channel sends in the serving tiers.
//
// Invariant (PR 3, extended to the gateway in PR 7): every send on a
// serving-path channel is either a select-with-default (admission control
// sheds with 429 when the queue is full) or a select bounded by ctx.Done
// (admitted work applies backpressure but honors the caller's deadline,
// the ScoreWait pattern). A bare `ch <- v` can block a request handler
// forever and turns a full queue into unbounded goroutine pileup instead
// of explicit load shedding.
var BoundedQueue = &Analyzer{
	Name: "boundedqueue",
	Doc:  "channel sends in internal/server and internal/gateway must shed (select+default) or bound the wait (ctx.Done case)",
	Run:  runBoundedQueue,
}

func runBoundedQueue(p *Pass) {
	if !pathWithinAny(p.Pkg.PkgPath, boundedQueuePackages) {
		return
	}
	// escorted holds sends that appear as the comm statement of a select
	// clause with an escape hatch (default, or any receive case such as
	// <-ctx.Done()).
	escorted := map[*ast.SendStmt]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectStmt)
			if !isSel {
				return true
			}
			hasEscape := false
			var sends []*ast.SendStmt
			for _, stmt := range sel.Body.List {
				clause := stmt.(*ast.CommClause)
				switch comm := clause.Comm.(type) {
				case nil: // default:
					hasEscape = true
				case *ast.SendStmt:
					sends = append(sends, comm)
				default: // receive cases (<-ctx.Done(), result channels)
					hasEscape = true
				}
			}
			if hasEscape {
				for _, s := range sends {
					escorted[s] = true
				}
			}
			return true
		})
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if s, isSend := n.(*ast.SendStmt); isSend && !escorted[s] {
				p.Reportf(s.Arrow, "bare channel send on a serving path: shed with select+default or bound the wait with a ctx.Done case")
			}
			return true
		})
	}
}
