package analysis

import "go/ast"

// goroutineOwners are the packages allowed to launch goroutines directly:
// the pool layer itself and the serving layer's single dispatcher /
// lifecycle goroutines. Everywhere else concurrency must go through
// internal/parallel (ForEach/MapReduce for batch fan-out, Pool for
// long-lived queues), which is what carries the repo's bounded-worker and
// bit-identical-reduction guarantees. Command mains that genuinely need a
// lifecycle goroutine (serving an http.Server, overlapping shutdowns)
// suppress case by case with a reason.
var goroutineOwners = []string{"internal/parallel", "internal/server"}

// NakedGo flags `go` statements outside the packages that own concurrency.
//
// Invariant (PR 1): all data-parallel fan-out runs on the shared worker
// pool, so worker counts stay bounded by one knob and reductions stay in
// index order — a stray goroutine reintroduces unbounded spawn and
// nondeterministic accumulation.
var NakedGo = &Analyzer{
	Name: "nakedgo",
	Doc:  "go statements outside internal/parallel and internal/server must use the pool layer",
	Run:  runNakedGo,
}

func runNakedGo(p *Pass) {
	if pathWithinAny(p.Pkg.PkgPath, goroutineOwners) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, isGo := n.(*ast.GoStmt); isGo {
				p.Reportf(g.Pos(), "naked goroutine: use internal/parallel (ForEach or Pool) so worker counts stay bounded and deterministic")
			}
			return true
		})
	}
}
