package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathWithin reports whether pkgPath is the package identified by suffix —
// an exact match or a path ending in "/<suffix>". Matching by suffix keeps
// the analyzers module-agnostic, so the same rules apply to the real tree
// ("mpass/internal/nn") and the test fixtures
// ("fixture.example/internal/nn").
func pathWithin(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// pathWithinAny reports whether pkgPath matches any of the suffixes.
func pathWithinAny(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pathWithin(pkgPath, s) {
			return true
		}
	}
	return false
}

// pkgFuncCall resolves call to a package-level function reference,
// returning the defining package's import path and the function name.
// ok is false for method calls, builtins, conversions, and locals.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// namedType unwraps pointers and aliases and returns the named type of t,
// or nil when t is unnamed.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isNamed reports whether t (through pointers) is the named type
// <pkgSuffix>.<name>.
func isNamed(t types.Type, pkgSuffix, name string) bool {
	named := namedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && pathWithin(named.Obj().Pkg().Path(), pkgSuffix)
}

// fieldSelection returns the selected field when sel is a field access,
// and the receiver type it was selected from.
func fieldSelection(info *types.Info, sel *ast.SelectorExpr) (*types.Var, types.Type) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil, nil
	}
	field, isVar := s.Obj().(*types.Var)
	if !isVar {
		return nil, nil
	}
	return field, s.Recv()
}

// methodSelection returns the selected method when sel is a method value,
// and the receiver type.
func methodSelection(info *types.Info, sel *ast.SelectorExpr) (*types.Func, types.Type) {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, isFunc := s.Obj().(*types.Func)
	if !isFunc {
		return nil, nil
	}
	return fn, s.Recv()
}

// forEachFunc invokes fn once per function declaration in the package,
// handing over the declaration so analyzers can scope rules to the
// enclosing function (name-based exemptions, same-function pairing).
func forEachFunc(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, isFunc := decl.(*ast.FuncDecl); isFunc && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, isBasic := t.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsFloat != 0
}
