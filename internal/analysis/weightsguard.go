package analysis

import (
	"go/ast"
	"go/types"
)

// Model-parameter storage, as seen from outside the owning packages.
var (
	// convNetParams are nn.ConvNet's trainable tensors. Writing one from
	// outside internal/nn bypasses the weight-version counter that keeps
	// the lookup-table fast path coherent with the weights.
	convNetParams = map[string]bool{
		"Embed": true, "ConvW": true, "GateW": true,
		"ConvB": true, "GateB": true,
		"HidW": true, "HidB": true,
		"OutW": true, "OutB": true,
	}
	// ensembleParams are gbdt.Ensemble's learned state.
	ensembleParams = map[string]bool{"Bias": true, "LR": true, "Trees": true}
	// aliasingAccessors return parameter storage by reference (documented
	// read-only); a write or mutating call routed through one is a
	// parameter write. Matched by name so interface-mediated access
	// (detect.WhiteboxModel) is caught too.
	aliasingAccessors = map[string]bool{"EmbedMatrix": true, "EmbedRow": true}
	// mutatingTensorMethods write their receiver in place.
	mutatingTensorMethods = map[string]bool{
		"Zero": true, "Fill": true, "Scale": true, "Set": true,
		"XavierInit": true, "HeInit": true,
	}
)

// paramOwners may touch parameter tensors freely: the packages that define
// the models and their training loops, which are responsible for calling
// MarkWeightsChanged at the right points.
var paramOwners = []string{"internal/nn", "internal/gbdt"}

// WeightsGuard flags parameter-tensor writes outside the model packages,
// and optimizer steps that are not paired with MarkWeightsChanged.
//
// Invariant (PR 2): the ConvNet inference engine serves scores from
// per-byte response tables keyed by a weight-version counter. Any weight
// mutation that does not bump the counter (TrainBatch does it internally;
// direct surgery must call MarkWeightsChanged) leaves the tables stale and
// silently breaks the table/direct bit-identity guarantee. gbdt state is
// guarded the same way for symmetry: the serving layer assumes frozen
// models.
var WeightsGuard = &Analyzer{
	Name: "weightsguard",
	Doc:  "no parameter-tensor writes outside internal/nn+internal/gbdt; Adam.Step must pair with MarkWeightsChanged",
	Run:  runWeightsGuard,
}

func runWeightsGuard(p *Pass) {
	if pathWithinAny(p.Pkg.PkgPath, paramOwners) {
		return
	}
	info := p.Pkg.Info

	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		marks := callsMarkWeightsChanged(fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if name, ok := paramChainRoot(info, lhs); ok {
						p.Reportf(lhs.Pos(), "write to model parameter %s outside its owning package: the lookup-table weight version cannot track this mutation", name)
					}
				}
			case *ast.IncDecStmt:
				if name, ok := paramChainRoot(info, n.X); ok {
					p.Reportf(n.X.Pos(), "write to model parameter %s outside its owning package: the lookup-table weight version cannot track this mutation", name)
				}
			case *ast.CallExpr:
				sel, isSel := n.Fun.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				if mutatingTensorMethods[sel.Sel.Name] {
					if name, ok := paramChainRoot(info, sel.X); ok {
						p.Reportf(n.Pos(), "%s mutates model parameter %s in place outside its owning package", sel.Sel.Name, name)
					}
				}
				if fn, recv := methodSelection(info, sel); fn != nil && fn.Name() == "Step" && isNamed(recv, "internal/nn", "Adam") && !marks {
					p.Reportf(n.Pos(), "Adam.Step mutates weights: call MarkWeightsChanged in the same function to invalidate the inference tables")
				}
			}
			return true
		})
	})
}

// callsMarkWeightsChanged reports whether fd contains a MarkWeightsChanged
// call — the pairing that keeps a manual optimizer step coherent with the
// fast path.
func callsMarkWeightsChanged(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "MarkWeightsChanged" {
			found = true
		}
		return true
	})
	return found
}

// paramChainRoot walks an lvalue (or mutating-method receiver) chain —
// selectors, indexing, slicing, derefs, and aliasing-accessor calls —
// and reports the parameter tensor it is rooted in, if any. Examples that
// root in a parameter: n.OutW[i], n.Embed.Data[k],
// m.EmbedMatrix().Data[k], d.EmbedRow(b)[j].
func paramChainRoot(info *types.Info, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if field, recv := fieldSelection(info, x); field != nil {
				switch {
				case convNetParams[field.Name()] && isNamed(recv, "internal/nn", "ConvNet"):
					return "ConvNet." + field.Name(), true
				case ensembleParams[field.Name()] && isNamed(recv, "internal/gbdt", "Ensemble"):
					return "Ensemble." + field.Name(), true
				}
			}
			e = x.X
		case *ast.CallExpr:
			sel, isSel := x.Fun.(*ast.SelectorExpr)
			if isSel && aliasingAccessors[sel.Sel.Name] {
				return sel.Sel.Name + "()", true
			}
			return "", false
		default:
			return "", false
		}
	}
}
