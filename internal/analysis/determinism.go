package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// scorePackages are the packages whose code can influence a model score:
// the two model families, the tensor kernels under them, the feature
// extractor feeding the tree model (buffered and streaming paths), the
// detector layer, the Shapley explainer, the attack core that consumes
// gradients and oracle scores, and the engine driver layer (its RNN
// detector scores and trains, and its content-addressed versions must be a
// pure function of the weights). Everything the repo reports — transfer
// tables, section rankings, query counts — is a pure function of (seed,
// corpus, config) only as long as these stay deterministic.
var scorePackages = []string{
	"internal/nn",
	"internal/gbdt",
	"internal/tensor",
	"internal/features",
	"internal/detect",
	"internal/shapley",
	"internal/core",
	"internal/engine",
}

// randConstructors are the math/rand package-level functions that build
// generator state rather than draw from the global source; they are how
// the repo threads seeded *rand.Rand values and stay allowed.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism flags nondeterminism sources in score-affecting packages:
//
//   - global math/rand draws (rand.Intn, rand.Float64, ...): unseeded and
//     process-global; every RNG must be a *rand.Rand threaded from a
//     config seed;
//   - time.Now / time.Since / time.Until: wall-clock reads make scores a
//     function of when they ran;
//   - float accumulation inside map-range bodies: Go randomizes map
//     iteration order, and float addition does not commute bitwise —
//     collect and sort the keys first;
//   - == / != between two non-constant floats: exact equality on computed
//     floats silently diverges across compilers and accumulation orders;
//     comparisons against constants (the `g == 0` skip idiom), dedicated
//     comparison helpers (functions whose name contains Equal, Approx, or
//     Near), and comparator closures (func(int, int) bool, where exact
//     compare-then-tiebreak is what makes a sort deterministic) are
//     exempt.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "score-affecting packages: no global rand, wall-clock reads, map-order float accumulation, or exact float equality",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	if !pathWithinAny(p.Pkg.PkgPath, scorePackages) {
		return
	}
	info := p.Pkg.Info

	forEachFunc(p.Pkg, func(fd *ast.FuncDecl) {
		comparisonHelper := isComparisonHelper(fd.Name.Name)
		comparators := comparatorLits(info, fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkgPath, name, ok := pkgFuncCall(info, n)
				if !ok {
					return true
				}
				switch {
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name]:
					p.Reportf(n.Pos(), "global rand.%s draws from the process-wide source: thread a seeded *rand.Rand instead", name)
				case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
					p.Reportf(n.Pos(), "time.%s in a score-affecting package makes results depend on the wall clock", name)
				}
			case *ast.RangeStmt:
				checkMapRangeAccumulation(p, info, n)
			case *ast.BinaryExpr:
				if comparisonHelper || insideAny(n, comparators) {
					return true
				}
				checkFloatEquality(p, info, n)
			}
			return true
		})
	})
}

// comparatorLits collects func(int, int) bool literals — sort.Slice less
// functions, where exact float compare-then-tiebreak keeps ordering
// deterministic and is therefore allowed.
func comparatorLits(info *types.Info, fd *ast.FuncDecl) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(fd, func(n ast.Node) bool {
		lit, isLit := n.(*ast.FuncLit)
		if !isLit {
			return true
		}
		sig, isSig := info.TypeOf(lit).(*types.Signature)
		if isSig && sig.Params().Len() == 2 && sig.Results().Len() == 1 &&
			types.Identical(sig.Params().At(0).Type(), types.Typ[types.Int]) &&
			types.Identical(sig.Params().At(1).Type(), types.Typ[types.Int]) &&
			types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool]) {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// insideAny reports whether n lies within any of the literals.
func insideAny(n ast.Node, lits []*ast.FuncLit) bool {
	for _, lit := range lits {
		if n.Pos() >= lit.Pos() && n.End() <= lit.End() {
			return true
		}
	}
	return false
}

// isComparisonHelper exempts functions that exist to compare floats —
// tolerance helpers and the exact-parity Equal used by the bit-identity
// tests.
func isComparisonHelper(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "equal") ||
		strings.Contains(lower, "approx") ||
		strings.Contains(lower, "near")
}

// checkMapRangeAccumulation flags compound float accumulation
// (+=, -=, *=, /=) inside the body of a range over a map: iteration order
// is randomized per run, and float folds are order-sensitive at the bit
// level.
func checkMapRangeAccumulation(p *Pass, info *types.Info, rs *ast.RangeStmt) {
	t := info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		assign, isAssign := n.(*ast.AssignStmt)
		if !isAssign {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if len(assign.Lhs) == 1 && isFloat(info.TypeOf(assign.Lhs[0])) {
			p.Reportf(assign.Pos(), "float accumulation over randomized map iteration order is nondeterministic: sort the keys and fold in sorted order")
		}
		return true
	})
}

// checkFloatEquality flags == / != where both operands are computed
// (non-constant) floats.
func checkFloatEquality(p *Pass, info *types.Info, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isFloat(info.TypeOf(b.X)) || !isFloat(info.TypeOf(b.Y)) {
		return
	}
	if info.Types[b.X].Value != nil || info.Types[b.Y].Value != nil {
		return // comparison against a constant (e.g. the `g == 0` skip idiom)
	}
	p.Reportf(b.OpPos, "exact %s between computed floats: use a tolerance helper (or an *Equal parity helper)", b.Op)
}
