package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// mutexguard enforces declared lock discipline: a struct field annotated
//
//	//mpass:guardedby <mu>
//
// (doc or line comment on the field; <mu> names a sibling sync.Mutex or
// sync.RWMutex field) may only be read or written while that mutex is
// held on every path reaching the access. The dataflow engine tracks the
// must-held set through branches, selects, defers (a deferred Unlock
// keeps the region held to the end of the body), and the merge at joins
// is an intersection — so "locked on one arm only" accesses report.
//
// Two contracts exempt an access by granting entry-held state instead of
// silencing the check: the repo's `...Locked` method-name convention
// (caller holds the receiver's mutexes), and an explicit
// `//mpass:locked <mu>` doc pragma. Function literals are analyzed with
// an empty held set: a closure may run long after the creating region
// unlocked.
//
// This covers the serving tier's jobRegistry.mu, scoreCache.mu,
// batcher.mu, and the gateway replica mu statically — invariants that
// previously only `-race` drills exercised, probabilistically.

const mutexGuardDataKey = "mutexguard"

type mutexGuardData struct {
	// guards maps an annotated field to its guarding mutex field name.
	guards map[*types.Var]string
	// owners is the set of packages declaring at least one annotation;
	// guarded fields are unexported in practice, so only their declaring
	// package needs the (comparatively expensive) dataflow walk.
	owners map[*types.Package]bool
	// bad records malformed annotations, reported by the declaring
	// package's pass.
	bad []Diagnostic
}

var MutexGuard = &Analyzer{
	Name: "mutexguard",
	Doc:  "fields marked //mpass:guardedby mu are only touched while mu is held",
	Init: mutexGuardInit,
	Run:  runMutexGuard,
}

const guardedByPragma = "mpass:guardedby"

func mutexGuardInit(sess *Session) {
	data := &mutexGuardData{
		guards: map[*types.Var]string{},
		owners: map[*types.Package]bool{},
	}
	for _, pkg := range sess.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, isStruct := n.(*ast.StructType)
				if isStruct {
					collectGuards(pkg, st, data)
				}
				return true
			})
		}
	}
	sess.PutData(mutexGuardDataKey, data)
}

func collectGuards(pkg *Package, st *ast.StructType, data *mutexGuardData) {
	for _, field := range st.Fields.List {
		mu := guardAnnotation(field)
		if mu == "" {
			continue
		}
		if !structHasMutex(pkg, st, mu) {
			data.bad = append(data.bad, Diagnostic{
				Pos:      pkg.Fset.Position(field.Pos()),
				Analyzer: "mutexguard",
				Message: "//mpass:guardedby " + mu +
					": no sibling sync.Mutex/RWMutex field named \"" + mu + "\"",
			})
			continue
		}
		for _, name := range field.Names {
			if fv, isVar := pkg.Info.Defs[name].(*types.Var); isVar {
				data.guards[fv] = mu
				data.owners[pkg.Types] = true
			}
		}
	}
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "" when unannotated.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, has := strings.CutPrefix(text, guardedByPragma+" "); has {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

func structHasMutex(pkg *Package, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			if obj := pkg.Info.Defs[name]; obj != nil && isMutexType(obj.Type()) {
				return true
			}
		}
	}
	return false
}

func runMutexGuard(pass *Pass) {
	data, hasData := pass.Sess.Data(mutexGuardDataKey).(*mutexGuardData)
	if !hasData {
		return
	}
	for _, d := range data.bad {
		if d.Pos.Filename != "" && samePackageFile(pass.Pkg, d.Pos.Filename) {
			*pass.diags = append(*pass.diags, d)
		}
	}
	if !data.owners[pass.Pkg.Types] {
		return
	}
	cfg := &flowConfig{
		visit: func(c *flowCtx, n ast.Node, st *flowState) {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return
			}
			field, _ := fieldSelection(c.Pkg.Info, sel)
			if field == nil {
				return
			}
			mu, guarded := data.guards[field]
			if !guarded {
				return
			}
			base := canonPath(sel.X)
			if base == "" {
				pass.Reportf(sel.Pos(),
					"access to guarded field %s through an unresolvable receiver chain; bind the owner to a variable so the lock is checkable",
					field.Name())
				return
			}
			if !st.Held(base + "." + mu) {
				pass.Reportf(sel.Pos(),
					"%s.%s accessed without holding %s.%s (field is //mpass:guardedby %s)",
					base, field.Name(), base, mu, mu)
			}
		},
	}
	runFlow(pass.Sess, pass.Pkg, cfg)
}

func samePackageFile(pkg *Package, filename string) bool {
	for _, f := range pkg.Files {
		if pkg.Fset.Position(f.Pos()).Filename == filename {
			return true
		}
	}
	return false
}
