package recovery

import (
	"math/rand"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/pefile"
	"mpass/internal/sandbox"
)

// buildSample returns a malware sample and its parsed file.
func buildSample(t *testing.T, seed int64) ([]byte, *pefile.File) {
	t.Helper()
	s := corpus.NewGenerator(seed).Sample(corpus.Malware)
	f, err := pefile.Parse(s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	return s.Raw, f
}

func TestRecoveryPreservesBehaviourSequential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		orig, f := buildSample(t, seed)
		if _, err := Build(f, Options{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Errorf("seed %d: behaviour not preserved without shuffle", seed)
		}
	}
}

func TestRecoveryPreservesBehaviourShuffled(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		orig, f := buildSample(t, seed)
		rng := rand.New(rand.NewSource(seed * 31))
		if _, err := Build(f, Options{Shuffle: true, Rng: rng}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ok {
			t.Errorf("seed %d: behaviour not preserved with shuffle", seed)
		}
	}
}

func TestRecoveryWithBenignFill(t *testing.T) {
	donor := corpus.NewGenerator(99).Sample(corpus.Benign).Raw
	cursor := 0
	fill := func(_ string, n int) []byte {
		out := make([]byte, n)
		for i := range out {
			out[i] = donor[cursor%len(donor)]
			cursor++
		}
		return out
	}
	orig, f := buildSample(t, 3)
	rng := rand.New(rand.NewSource(7))
	lay, err := Build(f, Options{Shuffle: true, Rng: rng, Fill: fill})
	if err != nil {
		t.Fatal(err)
	}
	// The code section now holds donor content, not the original code.
	text := f.SectionByName(".text")
	origF, _ := pefile.Parse(orig)
	same := 0
	for i, b := range text.Data {
		if b == origF.SectionByName(".text").Data[i] {
			same++
		}
	}
	if same == len(text.Data) {
		t.Error("code section unchanged by fill")
	}
	ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
	if err != nil || !ok {
		t.Errorf("behaviour broken with benign fill: ok=%v err=%v", ok, err)
	}
	if lay.TotalEncoded() == 0 {
		t.Error("no bytes encoded")
	}
}

func TestEncodedRegionsCoverCodeAndData(t *testing.T) {
	_, f := buildSample(t, 4)
	lay, err := Build(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, r := range lay.Regions {
		names[r.Section] = true
	}
	if !names[".text"] || !names[".data"] {
		t.Errorf("regions = %v, want .text and .data", names)
	}
}

func TestExplicitSectionSelection(t *testing.T) {
	orig, f := buildSample(t, 5)
	lay, err := Build(f, Options{Sections: []string{".data"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Regions) != 1 || lay.Regions[0].Section != ".data" {
		t.Fatalf("regions = %+v", lay.Regions)
	}
	ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
	if err != nil || !ok {
		t.Errorf("data-only recovery broken: ok=%v err=%v", ok, err)
	}
}

func TestBuildErrors(t *testing.T) {
	_, f := buildSample(t, 6)
	if _, err := Build(f, Options{Sections: []string{".absent"}}); err == nil {
		t.Error("missing section accepted")
	}
	if _, err := Build(f, Options{Shuffle: true}); err != ErrNoRng {
		t.Errorf("shuffle without rng: err = %v", err)
	}
	empty := pefile.New()
	if _, err := Build(empty, Options{}); err != ErrNoRegions {
		t.Errorf("empty file: err = %v", err)
	}
}

func TestGapBytesAreInert(t *testing.T) {
	// Arbitrary writes into the shuffle gaps must not change behaviour:
	// they are never executed.
	orig, f := buildSample(t, 7)
	rng := rand.New(rand.NewSource(11))
	lay, err := Build(f, Options{Shuffle: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if lay.TotalGapSpace() == 0 {
		t.Fatal("shuffled layout has no gaps")
	}
	stub := f.SectionByName(lay.StubSection)
	for _, g := range lay.Gaps {
		off := g.VA - stub.VirtualAddress
		for i := 0; i < g.Len; i++ {
			stub.Data[off+uint32(i)] = byte(0xC3 + i)
		}
	}
	ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
	if err != nil || !ok {
		t.Errorf("gap writes changed behaviour: ok=%v err=%v", ok, err)
	}
}

func TestKeyCoupledMutationPreservesBehaviour(t *testing.T) {
	// Changing an encoded byte AND adjusting its key by the same delta must
	// keep behaviour identical — the invariant behind mask matrix M (Eq. 2).
	orig, f := buildSample(t, 8)
	rng := rand.New(rand.NewSource(12))
	lay, err := Build(f, Options{Shuffle: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	keysec := f.SectionByName(lay.KeySection)
	coupling := lay.KeyCoupling()
	text := f.SectionByName(".text")
	// Mutate 40 code bytes.
	for i := 0; i < 40; i++ {
		va := text.VirtualAddress + uint32(i*7%len(text.Data))
		keyVA, ok := coupling[va]
		if !ok {
			t.Fatalf("no key for VA %#x", va)
		}
		delta := byte(i + 1)
		text.Data[va-text.VirtualAddress] += delta
		keysec.Data[keyVA-keysec.VirtualAddress] += delta
	}
	ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
	if err != nil || !ok {
		t.Errorf("key-coupled mutation broke behaviour: ok=%v err=%v", ok, err)
	}
}

func TestUncoupledMutationBreaksBehaviour(t *testing.T) {
	// Changing encoded code bytes WITHOUT the key update must break the
	// program (recovery restores the wrong bytes).
	orig, f := buildSample(t, 9)
	if _, err := Build(f, Options{}); err != nil {
		t.Fatal(err)
	}
	text := f.SectionByName(".text")
	for i := 0; i < 64 && i < len(text.Data); i++ {
		text.Data[i] ^= 0x5A
	}
	ok, err := sandbox.BehaviourPreserved(orig, f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("uncoupled code mutation did not change behaviour")
	}
}

func TestShuffleChangesStubLayout(t *testing.T) {
	_, f1 := buildSample(t, 10)
	_, f2 := buildSample(t, 10)
	l1, err := Build(f1, Options{Shuffle: true, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Build(f2, Options{Shuffle: true, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	s1 := f1.SectionByName(l1.StubSection)
	s2 := f2.SectionByName(l2.StubSection)
	if len(s1.Data) == len(s2.Data) {
		diff := 0
		for i := range s1.Data {
			if s1.Data[i] != s2.Data[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Error("two shuffles produced identical stubs")
		}
	}
}

func TestEntryPointRedirected(t *testing.T) {
	_, f := buildSample(t, 11)
	before := f.Optional.AddressOfEntryPoint
	lay, err := Build(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Optional.AddressOfEntryPoint == before {
		t.Error("entry point unchanged")
	}
	if f.Optional.AddressOfEntryPoint != lay.StubVA {
		t.Errorf("entry = %#x, stub at %#x", f.Optional.AddressOfEntryPoint, lay.StubVA)
	}
	if lay.OrigEntry != before {
		t.Errorf("OrigEntry = %#x, want %#x", lay.OrigEntry, before)
	}
}

func TestRoundTripThroughBytes(t *testing.T) {
	// The modified file must survive serialization + reparse and still run.
	orig, f := buildSample(t, 12)
	rng := rand.New(rand.NewSource(13))
	if _, err := Build(f, Options{Shuffle: true, Rng: rng}); err != nil {
		t.Fatal(err)
	}
	raw := f.Bytes()
	g, err := pefile.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sandbox.BehaviourPreserved(orig, g.Bytes())
	if err != nil || !ok {
		t.Errorf("reparsed file broken: ok=%v err=%v", ok, err)
	}
}
