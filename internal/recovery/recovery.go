// Package recovery implements the paper's runtime recovery technique
// (§III-C), the mechanism that lets MPass overwrite code and data sections
// with arbitrary perturbations while preserving functionality.
//
// Build encodes the chosen sections byte-by-byte against attacker-chosen
// content ("the keys": k = b − x, so x = b − k at runtime), emits a VISA-32
// recovery stub into a fresh section, and retargets the PE entry point at
// the stub. When the modified program runs, the stub saves the register
// context, walks every encoded region subtracting the key stream to restore
// the original bytes in place, restores the context, and jumps to the
// original entry point.
//
// The shuffle strategy (§III-C "Shuffle strategy") breaks the stub's fixed
// instruction pattern: the stub's instructions are permuted into random
// slots separated by attacker-controlled filler gaps, with relative jump
// instructions inserted to re-chain the original execution order, and every
// relative displacement re-patched for its new position.
package recovery

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"mpass/internal/pefile"
	"mpass/internal/visa"
)

// FillFunc supplies n bytes of initial perturbation content for the named
// target section (typically sliced from a benign donor program, matched by
// section class so code sections receive code-like bytes). The stub
// section's own filler gaps request content with section name "".
type FillFunc func(section string, n int) []byte

// ZeroFill is the trivial fill source.
func ZeroFill(_ string, n int) []byte { return make([]byte, n) }

// Options configures Build.
type Options struct {
	// Sections lists the section names to encode. Empty means every code
	// and initialized-writable-data section — the critical sections PEM
	// identifies.
	Sections []string
	// Fill provides initial content for the encoded regions and the
	// shuffle gaps. Defaults to ZeroFill.
	Fill FillFunc
	// Shuffle enables the instruction-shuffling layout. When false the
	// stub is laid out sequentially with no gaps (the fixed-pattern
	// variant the paper's adaptive-AV experiment punishes).
	Shuffle bool
	// GapMin/GapMax bound the filler gap sizes between shuffled cells.
	GapMin, GapMax int
	// Rng drives the shuffle; required when Shuffle is true.
	Rng *rand.Rand
}

// EncodedRegion records one byte range protected by the recovery module.
type EncodedRegion struct {
	Section string
	VA      uint32 // first encoded byte (virtual address)
	Len     int
	KeyVA   uint32 // first key byte inside the stub section
}

// Gap is one attacker-writable filler range inside the stub section.
type Gap struct {
	VA  uint32
	Len int
}

// Layout describes the recovery construction applied to a file. Virtual
// addresses are used throughout so the layout stays valid if later
// mutations (tail sections, overlay) shift raw file offsets.
type Layout struct {
	StubSection string
	KeySection  string
	StubVA      uint32
	OrigEntry   uint32
	Regions     []EncodedRegion
	Gaps        []Gap
}

// Errors returned by Build.
var (
	ErrNoRegions = errors.New("recovery: no sections to encode")
	ErrNoRng     = errors.New("recovery: shuffle requested without Rng")
)

// stubInst is one logical stub instruction plus its branch-target metadata.
type stubInst struct {
	in       visa.Inst
	cellTgt  int    // >= 0: branch targets that cell's start
	absTgt   uint32 // used when abs is true: branch to this VA
	abs      bool
	chainOut bool // needs a chain jump to the next cell when shuffled
}

// Build applies the recovery construction to f in place and returns the
// layout. The caller should add any further sections (tail perturbation
// area) after Build; the layout's VAs remain valid.
func Build(f *pefile.File, opts Options) (*Layout, error) {
	if opts.Fill == nil {
		opts.Fill = ZeroFill
	}
	if opts.Shuffle && opts.Rng == nil {
		return nil, ErrNoRng
	}
	if opts.GapMin <= 0 {
		opts.GapMin = 8
	}
	if opts.GapMax < opts.GapMin {
		opts.GapMax = opts.GapMin + 56
	}

	sections := opts.Sections
	if len(sections) == 0 {
		for _, s := range f.Sections {
			if s.IsCode() || s.IsData() {
				sections = append(sections, s.Name)
			}
		}
	}
	var regions []EncodedRegion
	totalKeyLen := 0
	for _, name := range sections {
		s := f.SectionByName(name)
		if s == nil {
			return nil, fmt.Errorf("%w: %q", pefile.ErrNoSuchSection, name)
		}
		if len(s.Data) == 0 {
			continue
		}
		regions = append(regions, EncodedRegion{
			Section: name,
			VA:      s.VirtualAddress,
			Len:     len(s.Data),
		})
		totalKeyLen += len(s.Data)
	}
	if len(regions) == 0 {
		return nil, ErrNoRegions
	}

	origEntry := f.Optional.AddressOfEntryPoint
	stubVA := f.NextVirtualAddress()

	// The stub program length is independent of the constants, so lay out
	// cells and gaps first, then fill in addresses.
	prog := stubProgram(regions, origEntry, 0 /* keys base, patched below */)

	order, gaps := layoutOrder(len(prog), opts)
	cellOff, stubLen := placeCells(prog, order, gaps)

	// The key stream lives in its own non-executable section directly
	// after the stub (keys are data; packing them into an executable
	// section would give the image a glaring high-entropy code section).
	sa := f.Optional.SectionAlignment
	if sa == 0 {
		sa = pefile.DefaultSectionAlignment
	}
	keysVA := stubVA + (uint32(stubLen)+sa-1)/sa*sa
	keyVA := keysVA
	for i := range regions {
		regions[i].KeyVA = keyVA
		keyVA += uint32(regions[i].Len)
	}

	// Regenerate the program with real constants (same shape).
	prog = stubProgram(regions, origEntry, keysVA)

	// Render the stub section: entry jump, shuffled cells, gaps.
	data := opts.Fill("", stubLen)
	if len(data) != stubLen {
		return nil, fmt.Errorf("recovery: fill returned %d bytes, want %d", len(data), stubLen)
	}
	gapsOut := renderCells(data, prog, order, cellOff, gaps, stubVA)

	// Entry jump at section start to cell 0.
	entry := visa.Inst{Op: visa.JMP, Imm: int32(cellOff[0]) - visa.Size}
	entry.Encode(data[0:])

	// Encode the regions: keys = fill − original, region bytes = fill.
	keys := make([]byte, totalKeyLen)
	keyCursor := 0
	for _, r := range regions {
		s := f.SectionByName(r.Section)
		fill := opts.Fill(r.Section, r.Len)
		if len(fill) != r.Len {
			return nil, fmt.Errorf("recovery: fill returned %d bytes, want %d", len(fill), r.Len)
		}
		for i := 0; i < r.Len; i++ {
			keys[keyCursor+i] = fill[i] - s.Data[i]
			s.Data[i] = fill[i]
		}
		keyCursor += r.Len
	}

	name := stubSectionName(opts.Rng)
	stub, err := f.AddSection(name, data, pefile.SecCharacteristicsText)
	if err != nil {
		return nil, err
	}
	if stub.VirtualAddress != stubVA {
		return nil, fmt.Errorf("recovery: stub VA %#x, expected %#x", stub.VirtualAddress, stubVA)
	}
	keyName := stubSectionName(opts.Rng)
	for keyName == name {
		keyName = stubSectionName(opts.Rng)
	}
	ks, err := f.AddSection(keyName, keys, pefile.SecCharacteristicsRsrc)
	if err != nil {
		return nil, err
	}
	if ks.VirtualAddress != keysVA {
		return nil, fmt.Errorf("recovery: key section VA %#x, expected %#x", ks.VirtualAddress, keysVA)
	}
	f.SetEntryPoint(stubVA)

	return &Layout{
		StubSection: name,
		KeySection:  keyName,
		StubVA:      stubVA,
		OrigEntry:   origEntry,
		Regions:     regions,
		Gaps:        gapsOut,
	}, nil
}

// nameCounter disambiguates deterministic names when no RNG is supplied.
var nameCounter atomic.Int64

// stubSectionName draws a plausible section name; randomized so the stub
// section itself is not a constant signature.
func stubSectionName(rng *rand.Rand) string {
	if rng == nil {
		return fmt.Sprintf(".mp%d", nameCounter.Add(1)%100)
	}
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := []byte{'.', 0, 0, 0, 0}
	for i := 1; i < len(b); i++ {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// stubProgram emits the logical recovery program. keysBase is the VA of the
// first key byte; region key VAs are consumed in order.
func stubProgram(regions []EncodedRegion, origEntry uint32, keysBase uint32) []stubInst {
	var prog []stubInst
	add := func(in visa.Inst) { prog = append(prog, stubInst{in: in, cellTgt: -1}) }

	add(visa.Inst{Op: visa.PUSHA})
	keyVA := keysBase
	for _, r := range regions {
		add(visa.Inst{Op: visa.MOVI, Ra: 1, Imm: int32(r.VA)})
		add(visa.Inst{Op: visa.MOVI, Ra: 2, Imm: int32(keyVA)})
		add(visa.Inst{Op: visa.MOVI, Ra: 3, Imm: int32(r.Len)})
		loopHead := len(prog)
		add(visa.Inst{Op: visa.LOADB, Ra: 4, Rb: 1})    // current (= fill byte b)
		add(visa.Inst{Op: visa.LOADB, Ra: 5, Rb: 2})    // key k
		add(visa.Inst{Op: visa.SUB, Ra: 4, Rb: 5})      // x = b − k
		add(visa.Inst{Op: visa.ANDI, Ra: 4, Imm: 0xFF}) // byte wraparound
		add(visa.Inst{Op: visa.STOREB, Ra: 4, Rb: 1})   // restore
		add(visa.Inst{Op: visa.ADDI, Ra: 1, Imm: 1})
		add(visa.Inst{Op: visa.ADDI, Ra: 2, Imm: 1})
		add(visa.Inst{Op: visa.SUBI, Ra: 3, Imm: 1})
		prog = append(prog, stubInst{
			in:      visa.Inst{Op: visa.JNZ, Ra: 3},
			cellTgt: loopHead,
		})
		keyVA += uint32(r.Len)
	}
	add(visa.Inst{Op: visa.POPA})
	prog = append(prog, stubInst{
		in:  visa.Inst{Op: visa.JMP},
		abs: true, absTgt: origEntry, cellTgt: -1,
	})

	// Every cell except the final absolute jump needs a chain jump to the
	// next cell when cells are permuted.
	for i := range prog[:len(prog)-1] {
		prog[i].chainOut = true
	}
	return prog
}

// layoutOrder picks the physical cell order and the gap preceding each
// physical slot. Without shuffle the order is the identity with no gaps.
func layoutOrder(n int, opts Options) (order []int, gaps []int) {
	order = make([]int, n)
	gaps = make([]int, n)
	for i := range order {
		order[i] = i
	}
	if !opts.Shuffle {
		return order, gaps
	}
	opts.Rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	for i := range gaps {
		gaps[i] = opts.GapMin + opts.Rng.Intn(opts.GapMax-opts.GapMin+1)
	}
	return order, gaps
}

// placeCells assigns the byte offset of every logical cell within the stub
// section. Layout: [entry jump][gap?][cell][gap?][cell]...; returns the
// per-cell offsets (indexed by logical instruction index) and the total
// length of the cell area.
func placeCells(prog []stubInst, order []int, gaps []int) (cellOff []int, end int) {
	cellOff = make([]int, len(prog))
	off := visa.Size // entry jump occupies [0,8)
	for phys, logical := range order {
		off += gaps[phys]
		cellOff[logical] = off
		off += visa.Size
		if prog[logical].chainOut {
			off += visa.Size // room for the chain jump
		}
	}
	return cellOff, off
}

// renderCells encodes every cell (instruction + optional chain jump) at its
// slot, patching relative displacements for the final positions, and
// returns the writable gap ranges.
func renderCells(data []byte, prog []stubInst, order []int, cellOff []int, gaps []int, stubVA uint32) []Gap {
	var out []Gap
	off := visa.Size
	for phys, logical := range order {
		if gaps[phys] > 0 {
			out = append(out, Gap{VA: stubVA + uint32(off), Len: gaps[phys]})
		}
		off += gaps[phys]
		cell := prog[logical]
		in := cell.in
		instVA := stubVA + uint32(cellOff[logical])
		switch {
		case cell.abs:
			in.Imm = int32(cell.absTgt) - int32(instVA) - visa.Size
		case cell.cellTgt >= 0:
			in.Imm = int32(cellOff[cell.cellTgt]) - int32(cellOff[logical]) - visa.Size
		}
		in.Encode(data[cellOff[logical]:])
		off += visa.Size
		if cell.chainOut {
			nextVA := cellOff[logical+1]
			chain := visa.Inst{
				Op:  visa.JMP,
				Imm: int32(nextVA) - (int32(cellOff[logical]) + visa.Size) - visa.Size,
			}
			chain.Encode(data[cellOff[logical]+visa.Size:])
			off += visa.Size
		}
	}
	return out
}

// KeyCoupling returns, for every encoded byte, the (byteVA, keyVA) pair —
// the paper's tuple corpus J realized in virtual addresses.
func (l *Layout) KeyCoupling() map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for _, r := range l.Regions {
		for i := 0; i < r.Len; i++ {
			out[r.VA+uint32(i)] = r.KeyVA + uint32(i)
		}
	}
	return out
}

// TotalEncoded returns the number of protected bytes.
func (l *Layout) TotalEncoded() int {
	n := 0
	for _, r := range l.Regions {
		n += r.Len
	}
	return n
}

// TotalGapSpace returns the number of writable filler bytes in the stub.
func (l *Layout) TotalGapSpace() int {
	n := 0
	for _, g := range l.Gaps {
		n += g.Len
	}
	return n
}
