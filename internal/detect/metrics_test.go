package detect

import (
	"math"
	"testing"

	"mpass/internal/corpus"
)

func TestAUCOfTrainedDetectors(t *testing.T) {
	mc, _, lg, _ := models(t)
	ds := dataset(t)
	for _, d := range []Detector{mc, lg} {
		auc := AUC(d, ds.Test)
		if auc < 0.95 {
			t.Errorf("%s AUC = %.3f, want near-perfect on the synthetic corpus", d.Name(), auc)
		}
	}
}

func TestROCMonotone(t *testing.T) {
	mc, _, _, _ := models(t)
	ds := dataset(t)
	roc := ROC(mc, ds.Test)
	if len(roc) < 3 {
		t.Fatalf("ROC has %d points", len(roc))
	}
	for i := 1; i < len(roc); i++ {
		if roc[i].FPR < roc[i-1].FPR || roc[i].TPR < roc[i-1].TPR {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, roc[i-1], roc[i])
		}
	}
	last := roc[len(roc)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("ROC does not end at (1,1): %+v", last)
	}
}

func TestROCDegenerateInputs(t *testing.T) {
	mc, _, _, _ := models(t)
	onlyMal := []*corpus.Sample{{Family: corpus.Malware, Raw: []byte{1, 2, 3}}}
	if got := ROC(mc, onlyMal); got != nil {
		t.Error("single-class ROC should be nil")
	}
	if got := AUC(mc, nil); got != 0 {
		t.Errorf("empty AUC = %v", got)
	}
}

// perfectDetector scores by a planted label byte — lets us pin exact
// metric values.
type perfectDetector struct{ invert bool }

func (perfectDetector) Name() string { return "perfect" }
func (d perfectDetector) Score(raw []byte) float64 {
	s := float64(raw[0])
	if d.invert {
		s = 1 - s
	}
	return s
}
func (d perfectDetector) Label(raw []byte) bool { return d.Score(raw) >= 0.5 }

func syntheticSamples() []*corpus.Sample {
	var out []*corpus.Sample
	for i := 0; i < 10; i++ {
		fam := corpus.Benign
		b := byte(0)
		if i%2 == 0 {
			fam = corpus.Malware
			b = 1
		}
		out = append(out, &corpus.Sample{Family: fam, Raw: []byte{b}})
	}
	return out
}

func TestAUCBounds(t *testing.T) {
	ss := syntheticSamples()
	if auc := AUC(perfectDetector{}, ss); math.Abs(auc-1) > 1e-9 {
		t.Errorf("perfect detector AUC = %v", auc)
	}
	if auc := AUC(perfectDetector{invert: true}, ss); math.Abs(auc) > 1e-9 {
		t.Errorf("inverted detector AUC = %v", auc)
	}
}

func TestConfusionMatrixAndDerived(t *testing.T) {
	ss := syntheticSamples()
	m := Confusion(perfectDetector{}, ss)
	if m.TP != 5 || m.TN != 5 || m.FP != 0 || m.FN != 0 {
		t.Fatalf("confusion = %+v", m)
	}
	if m.Precision() != 1 || m.Recall() != 1 || m.F1() != 1 {
		t.Errorf("perfect detector metrics: P=%v R=%v F1=%v", m.Precision(), m.Recall(), m.F1())
	}
	var zero ConfusionMatrix
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Error("zero matrix metrics not zero")
	}
}
