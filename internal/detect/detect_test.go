package detect

import (
	"sync"
	"testing"

	"mpass/internal/corpus"
)

// sharedDataset is built once: detector training is the expensive step in
// this package's tests.
var (
	dsOnce sync.Once
	dsVal  *corpus.Dataset
)

func dataset(t *testing.T) *corpus.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsVal = corpus.MakeDataset(7, 40, 40, 0.75)
	})
	return dsVal
}

var (
	modelsOnce sync.Once
	mMalConv   *ConvDetector
	mNonNeg    *ConvDetector
	mLGBM      *GBDTDetector
	mMalGCG    *ConvDetector
	modelsErr  error
)

func models(t *testing.T) (*ConvDetector, *ConvDetector, *GBDTDetector, *ConvDetector) {
	t.Helper()
	ds := dataset(t)
	modelsOnce.Do(func() {
		mMalConv, mNonNeg, mLGBM, mMalGCG, modelsErr = TrainAll(ds, DefaultTrainConfig())
	})
	if modelsErr != nil {
		t.Fatalf("TrainAll: %v", modelsErr)
	}
	return mMalConv, mNonNeg, mLGBM, mMalGCG
}

func TestAllDetectorsSeparateFamilies(t *testing.T) {
	mc, nn_, lg, gcg := models(t)
	ds := dataset(t)
	for _, d := range []Detector{mc, nn_, lg, gcg} {
		acc := Accuracy(d, ds.Test)
		if acc < 0.9 {
			t.Errorf("%s test accuracy = %.2f, want >= 0.9", d.Name(), acc)
		}
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	mc, _, lg, _ := models(t)
	ds := dataset(t)
	for _, s := range ds.Test[:4] {
		for _, d := range []Detector{mc, lg} {
			p := d.Score(s.Raw)
			if p < 0 || p > 1 {
				t.Errorf("%s score = %v", d.Name(), p)
			}
		}
	}
}

func TestNamesMatchPaper(t *testing.T) {
	mc, nn_, lg, gcg := models(t)
	want := []string{"MalConv", "NonNeg", "LightGBM", "MalGCG"}
	got := []string{mc.Name(), nn_.Name(), lg.Name(), gcg.Name()}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("model %d name = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestThresholdsCalibrated(t *testing.T) {
	mc, nn_, lg, gcg := models(t)
	for _, d := range []interface{ Name() string }{mc, nn_, lg, gcg} {
		var thr float64
		switch m := d.(type) {
		case *ConvDetector:
			thr = m.Threshold
		case *GBDTDetector:
			thr = m.Threshold
		}
		if thr < 0.5 || thr > 0.99 {
			t.Errorf("%s threshold = %v outside [0.5, 0.99]", d.Name(), thr)
		}
	}
}

func TestDetectedMalwareFiltersCorrectly(t *testing.T) {
	mc, _, _, _ := models(t)
	ds := dataset(t)
	det := DetectedMalware(mc, ds.Test)
	if len(det) == 0 {
		t.Fatal("no test malware detected at all")
	}
	for _, s := range det {
		if s.Family != corpus.Malware {
			t.Error("benign sample in DetectedMalware output")
		}
		if !mc.Label(s.Raw) {
			t.Error("undetected sample in DetectedMalware output")
		}
	}
}

func TestGradientModelInterface(t *testing.T) {
	mc, nn_, _, gcg := models(t)
	for _, d := range []GradientModel{mc, nn_, gcg} {
		if d.SeqLen() != SeqLen {
			t.Errorf("%s SeqLen = %d", d.Name(), d.SeqLen())
		}
		if d.EmbedDim() <= 0 {
			t.Errorf("%s EmbedDim = %d", d.Name(), d.EmbedDim())
		}
		ig := d.InputGradient(make([]byte, 64), 0)
		if len(ig.Grad) != d.SeqLen()*d.EmbedDim() {
			t.Errorf("%s gradient length %d", d.Name(), len(ig.Grad))
		}
		if len(d.EmbedRow(0)) != d.EmbedDim() {
			t.Errorf("%s EmbedRow length mismatch", d.Name())
		}
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	ds := dataset(t)
	bad := TrainConfig{Epochs: 0, BatchSize: 8, LR: 1e-3, Seed: 1}
	if _, err := TrainMalConv(ds, bad); err == nil {
		t.Error("zero-epoch config accepted")
	}
	if _, err := TrainMalConv(&corpus.Dataset{}, DefaultTrainConfig()); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestAccuracyEmptySamples(t *testing.T) {
	mc, _, _, _ := models(t)
	if got := Accuracy(mc, nil); got != 0 {
		t.Errorf("Accuracy(nil) = %v", got)
	}
}
