// Package detect defines the ML-based static malware detectors the paper
// attacks, and the harness that trains them on the synthetic corpus.
//
// Four offline models mirror §IV-A:
//
//   - MalConv: gated byte-convolution network (Raff et al.).
//   - NonNeg: MalConv with a non-negative classification head
//     (Fleshman et al.), robust to content-appending washout.
//   - LightGBM: gradient-boosted trees over EMBER-style features
//     (Anderson & Roth); not differentiable, so — as in the paper's
//     footnote 6 — never used as a known model for the ensemble attack.
//   - MalGCG: a deeper, wider-receptive-field gated CNN standing in for
//     the constant-memory long-sequence classifier (Raff et al. 2021).
//
// Every detector exposes a calibrated hard-label decision; the byte-level
// networks additionally expose embedding-space input gradients for the
// transfer optimization of Eq. 3.
package detect

import (
	"fmt"
	"math/rand"
	"sort"

	"mpass/internal/corpus"
	"mpass/internal/features"
	"mpass/internal/gbdt"
	"mpass/internal/nn"
	"mpass/internal/parallel"
	"mpass/internal/tensor"
)

// Detector is a static malware classifier with a hard-label interface.
type Detector interface {
	// Name identifies the model in experiment tables.
	Name() string
	// Score returns P(malware | raw bytes).
	Score(raw []byte) float64
	// Label returns true when the sample is flagged malicious.
	Label(raw []byte) bool
}

// BatchScorer is implemented by detectors that amortize padding and
// dispatch across a whole batch of samples. Scores come back in input
// order and equal per-sample Score calls exactly.
type BatchScorer interface {
	ScoreBatch(raws [][]byte) []float64
}

// BatchLabeler is the hard-label counterpart of BatchScorer.
type BatchLabeler interface {
	LabelBatch(raws [][]byte) []bool
}

// ScoreAll scores every sample with d, through the batched path when the
// detector provides one and workers goroutines otherwise.
func ScoreAll(d Detector, raws [][]byte, workers int) []float64 {
	if bs, ok := d.(BatchScorer); ok {
		return bs.ScoreBatch(raws)
	}
	scores := make([]float64, len(raws))
	parallel.ForEach(workers, len(raws), func(i int) {
		scores[i] = d.Score(raws[i])
	})
	return scores
}

// LabelAll labels every sample with d, batched when possible.
func LabelAll(d Detector, raws [][]byte, workers int) []bool {
	if bl, ok := d.(BatchLabeler); ok {
		return bl.LabelBatch(raws)
	}
	labels := make([]bool, len(raws))
	parallel.ForEach(workers, len(raws), func(i int) {
		labels[i] = d.Label(raws[i])
	})
	return labels
}

// Thresholder is implemented by detectors whose hard label is exactly
// score >= threshold. Callers that already hold scores (the serving layer's
// batching dispatcher) derive labels without scoring twice.
type Thresholder interface {
	DecisionThreshold() float64
}

// DecisionThreshold implements Thresholder.
func (d *ConvDetector) DecisionThreshold() float64 { return d.Threshold }

// DecisionThreshold implements Thresholder.
func (d *GBDTDetector) DecisionThreshold() float64 { return d.Threshold }

func labelsFromScores(scores []float64, thr float64) []bool {
	labels := make([]bool, len(scores))
	for i, s := range scores {
		labels[i] = s >= thr
	}
	return labels
}

// GradientModel is a Detector whose score is differentiable with respect to
// the embedded input bytes — the requirement for membership in the MPass
// known-model ensemble.
type GradientModel interface {
	Detector
	InputGradient(raw []byte, target float64) *nn.InputGrad
	EmbedRow(b byte) tensor.Vec
	// EmbedMatrix exposes the full 256×EmbedDim embedding table (read-only;
	// aliases model storage) so the attack's byte-mapping step can score all
	// 256 candidate bytes with one mat-vec.
	EmbedMatrix() *tensor.Mat
	SeqLen() int
	EmbedDim() int
}

// ConvDetector wraps a ConvNet with a calibrated decision threshold.
type ConvDetector struct {
	ModelName string
	Net       *nn.ConvNet
	Threshold float64
}

// Name implements Detector.
func (d *ConvDetector) Name() string { return d.ModelName }

// Score implements Detector.
func (d *ConvDetector) Score(raw []byte) float64 { return d.Net.Predict(raw) }

// ScoreBatch implements BatchScorer over the network's pooled forward pass.
func (d *ConvDetector) ScoreBatch(raws [][]byte) []float64 { return d.Net.PredictBatch(raws) }

// Label implements Detector.
func (d *ConvDetector) Label(raw []byte) bool { return d.Score(raw) >= d.Threshold }

// LabelBatch implements BatchLabeler.
func (d *ConvDetector) LabelBatch(raws [][]byte) []bool {
	return labelsFromScores(d.ScoreBatch(raws), d.Threshold)
}

// InputGradient implements GradientModel.
func (d *ConvDetector) InputGradient(raw []byte, target float64) *nn.InputGrad {
	return d.Net.InputGradient(raw, target)
}

// EmbedRow implements GradientModel.
func (d *ConvDetector) EmbedRow(b byte) tensor.Vec { return d.Net.EmbedRow(b) }

// EmbedMatrix implements GradientModel.
func (d *ConvDetector) EmbedMatrix() *tensor.Mat { return d.Net.EmbedMatrix() }

// SeqLen implements GradientModel.
func (d *ConvDetector) SeqLen() int { return d.Net.SeqLen() }

// EmbedDim implements GradientModel.
func (d *ConvDetector) EmbedDim() int { return d.Net.EmbedDim() }

// GBDTDetector wraps a boosted-tree ensemble behind feature extraction.
type GBDTDetector struct {
	ModelName string
	Ensemble  *gbdt.Ensemble
	Threshold float64
	// Workers bounds ScoreBatch parallelism (<= 0 = GOMAXPROCS).
	Workers int
}

// Name implements Detector.
func (d *GBDTDetector) Name() string { return d.ModelName }

// Score implements Detector.
func (d *GBDTDetector) Score(raw []byte) float64 {
	return d.Ensemble.Predict(features.Extract(raw))
}

// ScoreBatch implements BatchScorer: feature extraction — the dominant cost
// — and tree walks fan out per sample.
func (d *GBDTDetector) ScoreBatch(raws [][]byte) []float64 {
	scores := make([]float64, len(raws))
	parallel.ForEach(d.Workers, len(raws), func(i int) {
		scores[i] = d.Score(raws[i])
	})
	return scores
}

// Label implements Detector.
func (d *GBDTDetector) Label(raw []byte) bool { return d.Score(raw) >= d.Threshold }

// LabelBatch implements BatchLabeler.
func (d *GBDTDetector) LabelBatch(raws [][]byte) []bool {
	return labelsFromScores(d.ScoreBatch(raws), d.Threshold)
}

// TrainConfig controls neural-detector training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	TargetFPR float64 // threshold calibration point
	Seed      int64
	// Workers bounds the data parallelism of minibatch training, threshold
	// calibration, and feature extraction (<= 0 = GOMAXPROCS). Trained
	// weights are bit-identical for every value.
	Workers int
}

// DefaultTrainConfig trains quickly to high accuracy on the synthetic
// corpus.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 40, BatchSize: 8, LR: 5e-3, TargetFPR: 0.01, Seed: 1}
}

// SeqLen is the byte window every neural detector sees. It comfortably
// covers original samples (~2–6 KB) and their adversarial variants
// (recovery section + perturbations), so tail appends remain visible to the
// models as they are to the paper's 1–2 MB MalConv window.
const SeqLen = 16384

// TrainMalConv trains the MalConv detector on the dataset's training split.
func TrainMalConv(ds *corpus.Dataset, cfg TrainConfig) (*ConvDetector, error) {
	net, err := nn.NewConvNet(nn.ConvConfig{
		SeqLen: SeqLen, EmbedDim: 4, Kernel: 8, Stride: 8, Filters: 8,
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return trainConv("MalConv", net, ds, cfg)
}

// TrainNonNeg trains the non-negative-head MalConv variant.
func TrainNonNeg(ds *corpus.Dataset, cfg TrainConfig) (*ConvDetector, error) {
	net, err := nn.NewConvNet(nn.ConvConfig{
		SeqLen: SeqLen, EmbedDim: 4, Kernel: 8, Stride: 8, Filters: 8,
		NonNeg: true, Seed: cfg.Seed + 100,
	})
	if err != nil {
		return nil, err
	}
	return trainConv("NonNeg", net, ds, cfg)
}

// TrainMalGCG trains the deep long-sequence stand-in.
func TrainMalGCG(ds *corpus.Dataset, cfg TrainConfig) (*ConvDetector, error) {
	net, err := nn.NewConvNet(nn.ConvConfig{
		SeqLen: SeqLen, EmbedDim: 4, Kernel: 32, Stride: 16, Filters: 12,
		Hidden: 8, Seed: cfg.Seed + 200,
	})
	if err != nil {
		return nil, err
	}
	return trainConv("MalGCG", net, ds, cfg)
}

// TrainConvCustom trains a gated-conv detector with a caller-chosen
// architecture — used by the commercial-AV simulators, whose member models
// differ from the offline suite in width, receptive field, and seed.
func TrainConvCustom(name string, arch nn.ConvConfig, ds *corpus.Dataset, cfg TrainConfig) (*ConvDetector, error) {
	net, err := nn.NewConvNet(arch)
	if err != nil {
		return nil, err
	}
	return trainConv(name, net, ds, cfg)
}

// TrainLightGBM trains the boosted-tree detector over EMBER-style features.
func TrainLightGBM(ds *corpus.Dataset, cfg TrainConfig) (*GBDTDetector, error) {
	xs := make([][]float64, len(ds.Train))
	ys := make([]float64, len(ds.Train))
	parallel.ForEach(cfg.Workers, len(ds.Train), func(i int) {
		xs[i] = features.Extract(ds.Train[i].Raw)
		ys[i] = label(ds.Train[i])
	})
	ens, err := gbdt.Train(xs, ys, gbdt.DefaultConfig())
	if err != nil {
		return nil, err
	}
	d := &GBDTDetector{ModelName: "LightGBM", Ensemble: ens, Workers: cfg.Workers}
	d.Threshold = calibrate(d.ScoreBatch, ds.Train, cfg.TargetFPR)
	return d, nil
}

// trainConv is the shared minibatch loop for the neural detectors.
func trainConv(name string, net *nn.ConvNet, ds *corpus.Dataset, cfg TrainConfig) (*ConvDetector, error) {
	if len(ds.Train) == 0 {
		return nil, fmt.Errorf("detect: empty training split")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("detect: invalid train config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	opt := nn.NewAdam(cfg.LR)
	net.Workers = cfg.Workers

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for at := 0; at < len(idx); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := make([][]byte, 0, end-at)
			ys := make([]float64, 0, end-at)
			for _, i := range idx[at:end] {
				batch = append(batch, ds.Train[i].Raw)
				ys = append(ys, label(ds.Train[i]))
			}
			epochLoss += net.TrainBatch(batch, ys, opt)
			batches++
		}
		if epochLoss/float64(batches) < 0.01 {
			break // converged early; the corpus signal is strong
		}
	}
	d := &ConvDetector{ModelName: name, Net: net}
	d.Threshold = calibrate(net.PredictBatch, ds.Train, cfg.TargetFPR)
	return d, nil
}

func label(s *corpus.Sample) float64 {
	if s.Family == corpus.Malware {
		return 1
	}
	return 0
}

// calibrate picks the decision threshold achieving the target false-positive
// rate on the benign portion of samples, clamped to at least 0.5. Scoring
// goes through the model's batched path, so calibration rides the pool.
func calibrate(scoreBatch func([][]byte) []float64, samples []*corpus.Sample, targetFPR float64) float64 {
	var benign [][]byte
	for _, s := range samples {
		if s.Family == corpus.Benign {
			benign = append(benign, s.Raw)
		}
	}
	if len(benign) == 0 {
		return 0.5
	}
	benignScores := scoreBatch(benign)
	sort.Float64s(benignScores)
	k := int(float64(len(benignScores)) * (1 - targetFPR))
	if k >= len(benignScores) {
		k = len(benignScores) - 1
	}
	thr := benignScores[k] + 1e-6
	if thr < 0.5 {
		thr = 0.5
	}
	if thr > 0.99 {
		thr = 0.99
	}
	return thr
}

// Accuracy evaluates a detector's hard-label accuracy on samples, through
// the batched labeling path.
func Accuracy(d Detector, samples []*corpus.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	labels := LabelAll(d, rawsOf(samples), 0)
	correct := 0
	for i, s := range samples {
		if labels[i] == (s.Family == corpus.Malware) {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// DetectedMalware filters samples to malware the detector currently flags —
// the paper's requirement (1) for attack-eligible samples.
func DetectedMalware(d Detector, samples []*corpus.Sample) []*corpus.Sample {
	labels := LabelAll(d, rawsOf(samples), 0)
	var out []*corpus.Sample
	for i, s := range samples {
		if s.Family == corpus.Malware && labels[i] {
			out = append(out, s)
		}
	}
	return out
}

func rawsOf(samples []*corpus.Sample) [][]byte {
	raws := make([][]byte, len(samples))
	for i, s := range samples {
		raws[i] = s.Raw
	}
	return raws
}

// TrainAll trains the full offline-model suite of §IV-A. The four models
// are independent — separate architectures, seeds, and gradient state over
// a read-only dataset — so they train concurrently on the Workers pool;
// every model's weights are the same as when trained alone.
func TrainAll(ds *corpus.Dataset, cfg TrainConfig) (malconv, nonneg *ConvDetector, lgbm *GBDTDetector, malgcg *ConvDetector, err error) {
	err = parallel.Do(cfg.Workers,
		func() (e error) { malconv, e = TrainMalConv(ds, cfg); return },
		func() (e error) { nonneg, e = TrainNonNeg(ds, cfg); return },
		func() (e error) { lgbm, e = TrainLightGBM(ds, cfg); return },
		func() (e error) { malgcg, e = TrainMalGCG(ds, cfg); return },
	)
	return
}
