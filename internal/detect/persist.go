// Model persistence: the trained offline suite serializes to a single gob
// stream so a serving process (cmd/mpassd) starts from a file in
// milliseconds instead of retraining from the seed. The networks and the
// tree ensemble carry their own GobEncode/GobDecode (internal/nn,
// internal/gbdt); loading ends with every ConvNet's weight version bumped,
// so the lookup-table inference fast path rebuilds from the loaded weights.
package detect

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mpass/internal/corpus"
)

// Suite is the resident offline-model set of §IV-A — the unit the serving
// layer keeps in memory and the persistence layer writes to disk.
type Suite struct {
	MalConv *ConvDetector
	NonNeg  *ConvDetector
	LGBM    *GBDTDetector
	MalGCG  *ConvDetector
}

// TrainSuite trains the full offline suite (see TrainAll) into a Suite.
func TrainSuite(ds *corpus.Dataset, cfg TrainConfig) (*Suite, error) {
	s := &Suite{}
	var err error
	s.MalConv, s.NonNeg, s.LGBM, s.MalGCG, err = TrainAll(ds, cfg)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// OfflineTargets lists the §IV-A models in paper order.
func (s *Suite) OfflineTargets() []Detector {
	return []Detector{s.MalConv, s.NonNeg, s.LGBM, s.MalGCG}
}

// KnownFor returns MPass's known-model ensemble when attacking the named
// target: the remaining differentiable offline models (LightGBM can never
// be a known model — paper footnote 6; for external targets all three are
// known).
func (s *Suite) KnownFor(target string) []GradientModel {
	var out []GradientModel
	for _, m := range []GradientModel{s.MalConv, s.NonNeg, s.MalGCG} {
		if m.Name() != target {
			out = append(out, m)
		}
	}
	return out
}

// validate rejects suites with missing members, on both save and load.
func (s *Suite) validate() error {
	switch {
	case s == nil:
		return fmt.Errorf("detect: nil suite")
	case s.MalConv == nil || s.MalConv.Net == nil,
		s.NonNeg == nil || s.NonNeg.Net == nil,
		s.MalGCG == nil || s.MalGCG.Net == nil:
		return fmt.Errorf("detect: suite is missing a neural detector")
	case s.LGBM == nil || s.LGBM.Ensemble == nil:
		return fmt.Errorf("detect: suite is missing the tree detector")
	}
	return nil
}

// suiteFile is the on-disk envelope; Magic/Version guard against feeding the
// loader an unrelated gob stream or a future incompatible layout.
type suiteFile struct {
	Magic   string
	Version int
	Suite   *Suite
}

const (
	suiteMagic   = "mpass-models"
	suiteVersion = 1
)

// SaveSuite writes the trained suite to w in gob form.
func SaveSuite(w io.Writer, s *Suite) error {
	if err := s.validate(); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(&suiteFile{Magic: suiteMagic, Version: suiteVersion, Suite: s})
}

// LoadSuite reads a suite written by SaveSuite. Scores and labels of the
// loaded models are bit-identical to the suite that was saved, including
// through the rebuilt lookup-table fast paths.
func LoadSuite(r io.Reader) (*Suite, error) {
	var f suiteFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("detect: load suite: %w", err)
	}
	if f.Magic != suiteMagic {
		return nil, fmt.Errorf("detect: not a model file (magic %q)", f.Magic)
	}
	if f.Version != suiteVersion {
		return nil, fmt.Errorf("detect: model file version %d, this build reads %d", f.Version, suiteVersion)
	}
	if err := f.Suite.validate(); err != nil {
		return nil, err
	}
	return f.Suite, nil
}

// SaveSuiteFile writes the suite atomically: a temp file in the destination
// directory renamed into place, so a crash mid-write never leaves a torn
// model file for the next daemon start.
func SaveSuiteFile(path string, s *Suite) error {
	tmp, err := os.CreateTemp(dirOf(path), ".models-*.gob")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveSuite(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadSuiteFile reads a suite saved by SaveSuiteFile.
func LoadSuiteFile(path string) (*Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSuite(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			return path[:i+1]
		}
	}
	return "."
}
