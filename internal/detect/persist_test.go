package detect

import (
	"bytes"
	"path/filepath"
	"testing"
)

func trainedSuite(t *testing.T) *Suite {
	mc, nng, lg, gcg := models(t)
	return &Suite{MalConv: mc, NonNeg: nng, LGBM: lg, MalGCG: gcg}
}

// TestSuiteGobRoundTripParity is the persistence gate: a saved-then-loaded
// suite must score and label a corpus slice bit-identically to the
// in-memory suite — through both the single-sample and the batched
// (lookup-table) paths, which exercises the fastpath rebuild after decode.
func TestSuiteGobRoundTripParity(t *testing.T) {
	s := trainedSuite(t)
	ds := dataset(t)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, s); err != nil {
		t.Fatalf("SaveSuite: %v", err)
	}
	loaded, err := LoadSuite(&buf)
	if err != nil {
		t.Fatalf("LoadSuite: %v", err)
	}

	raws := rawsOf(ds.Test)
	if len(raws) > 24 {
		raws = raws[:24]
	}
	orig, back := s.OfflineTargets(), loaded.OfflineTargets()
	for i, d := range orig {
		ld := back[i]
		if ld.Name() != d.Name() {
			t.Fatalf("model %d: loaded name %q != %q", i, ld.Name(), d.Name())
		}
		wantScores := ScoreAll(d, raws, 0)
		gotScores := ScoreAll(ld, raws, 0)
		wantLabels := LabelAll(d, raws, 0)
		gotLabels := LabelAll(ld, raws, 0)
		for j := range raws {
			if gotScores[j] != wantScores[j] {
				t.Fatalf("%s sample %d: loaded score %v != original %v", d.Name(), j, gotScores[j], wantScores[j])
			}
			if gotLabels[j] != wantLabels[j] {
				t.Fatalf("%s sample %d: loaded label %v != original %v", d.Name(), j, gotLabels[j], wantLabels[j])
			}
			// Single-sample path too: the loaded fastpath tables must agree
			// with the loaded direct weights.
			if got := ld.Score(raws[j]); got != wantScores[j] {
				t.Fatalf("%s sample %d: loaded single-sample score %v != original %v", d.Name(), j, got, wantScores[j])
			}
		}
	}

	// Thresholds and gradient-model geometry survive too.
	if loaded.MalConv.Threshold != s.MalConv.Threshold ||
		loaded.NonNeg.Threshold != s.NonNeg.Threshold ||
		loaded.LGBM.Threshold != s.LGBM.Threshold ||
		loaded.MalGCG.Threshold != s.MalGCG.Threshold {
		t.Fatal("loaded thresholds differ from saved thresholds")
	}
	if loaded.MalConv.SeqLen() != s.MalConv.SeqLen() || loaded.MalConv.EmbedDim() != s.MalConv.EmbedDim() {
		t.Fatal("loaded gradient-model geometry differs")
	}
}

func TestSuiteFileRoundTripAndKnownFor(t *testing.T) {
	s := trainedSuite(t)
	path := filepath.Join(t.TempDir(), "models.gob")
	if err := SaveSuiteFile(path, s); err != nil {
		t.Fatalf("SaveSuiteFile: %v", err)
	}
	loaded, err := LoadSuiteFile(path)
	if err != nil {
		t.Fatalf("LoadSuiteFile: %v", err)
	}
	known := loaded.KnownFor("MalConv")
	if len(known) != 2 {
		t.Fatalf("KnownFor(MalConv) returned %d models, want 2", len(known))
	}
	for _, m := range known {
		if m.Name() == "MalConv" {
			t.Fatal("KnownFor included the target")
		}
	}
	if got := loaded.KnownFor("AV1"); len(got) != 3 {
		t.Fatalf("KnownFor(external) returned %d models, want 3", len(got))
	}
}

func TestLoadSuiteRejectsGarbage(t *testing.T) {
	if _, err := LoadSuite(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("LoadSuite accepted garbage")
	}
	var empty Suite
	if err := SaveSuite(&bytes.Buffer{}, &empty); err == nil {
		t.Fatal("SaveSuite accepted an empty suite")
	}
}
