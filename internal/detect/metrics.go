package detect

import (
	"sort"

	"mpass/internal/corpus"
)

// ROCPoint is one operating point of a detector.
type ROCPoint struct {
	Threshold float64
	TPR, FPR  float64
}

// ROC sweeps the detector's score over the samples and returns the
// receiver-operating curve, ordered by increasing FPR.
func ROC(d Detector, samples []*corpus.Sample) []ROCPoint {
	type scored struct {
		s float64
		y bool
	}
	var xs []scored
	var pos, neg int
	for _, smp := range samples {
		y := smp.Family == corpus.Malware
		if y {
			pos++
		} else {
			neg++
		}
		xs = append(xs, scored{s: d.Score(smp.Raw), y: y})
	}
	if pos == 0 || neg == 0 {
		return nil
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].s > xs[j].s })

	out := []ROCPoint{{Threshold: 1.01, TPR: 0, FPR: 0}}
	tp, fp := 0, 0
	for i := 0; i < len(xs); {
		thr := xs[i].s
		// lint:ignore below: the ROC sweep must group *bit-identical* scores
		// into one threshold step; a tolerance here would merge distinct
		// operating points.
		//lint:ignore determinism exact grouping of identical scores is intended
		for i < len(xs) && xs[i].s == thr {
			if xs[i].y {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: thr,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out
}

// AUC integrates the ROC with the trapezoid rule. 1.0 is a perfect
// detector; 0.5 is chance.
func AUC(d Detector, samples []*corpus.Sample) float64 {
	roc := ROC(d, samples)
	if len(roc) == 0 {
		return 0
	}
	var auc float64
	for i := 1; i < len(roc); i++ {
		auc += (roc[i].FPR - roc[i-1].FPR) * (roc[i].TPR + roc[i-1].TPR) / 2
	}
	return auc
}

// ConfusionMatrix counts hard-label outcomes at the detector's calibrated
// threshold.
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Confusion evaluates the detector's hard labels over the samples.
func Confusion(d Detector, samples []*corpus.Sample) ConfusionMatrix {
	var m ConfusionMatrix
	for _, smp := range samples {
		pred := d.Label(smp.Raw)
		if smp.Family == corpus.Malware {
			if pred {
				m.TP++
			} else {
				m.FN++
			}
		} else {
			if pred {
				m.FP++
			} else {
				m.TN++
			}
		}
	}
	return m
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (m ConfusionMatrix) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (m ConfusionMatrix) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m ConfusionMatrix) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}
