// Streaming scoring: every offline detector can consume a sample as a
// sequence of chunks and produce the exact score Score would give the
// whole byte slice, in memory bounded by the chunk size (plus, for the
// feature-based model, the constant structural prefix cap). This is the
// O(chunk) path internal/server uses for uploads too large to buffer.
package detect

import (
	"mpass/internal/features"
	"mpass/internal/gbdt"
	"mpass/internal/nn"
)

// ScoreStream scores one sample incrementally. Feed the sample's bytes in
// order, then call Finish exactly once; the result equals Score over the
// concatenation of the chunks, bit for bit. A stream is single-use and not
// safe for concurrent Feeds.
type ScoreStream interface {
	Feed(p []byte)
	Finish() float64
}

// Streamer is implemented by detectors that provide a streaming scorer.
// All four offline models do.
type Streamer interface {
	NewStream() ScoreStream
}

// NewStream implements Streamer. The network's streaming pass fills the
// same pooled window buffer Predict uses (SeqLen truncation means windows
// never span chunks), so the cycle is allocation free in steady state.
func (d *ConvDetector) NewStream() ScoreStream { return d.Net.NewStream() }

// gbdtStream accumulates EMBER-style features incrementally and runs the
// tree walk once at Finish.
type gbdtStream struct {
	ex *features.StreamExtractor
	e  *gbdt.Ensemble
}

func (s *gbdtStream) Feed(p []byte)   { s.ex.Feed(p) }
func (s *gbdtStream) Finish() float64 { return s.e.Predict(s.ex.Finish()) }

// NewStream implements Streamer. Scores equal the buffered path exactly
// for samples within features.DefaultStructuralCap; beyond it the
// structural features degrade to zero (features.StreamExtractor documents
// the bound) while every byte-level family stays exact.
func (d *GBDTDetector) NewStream() ScoreStream {
	return &gbdtStream{ex: features.NewStreamExtractor(), e: d.Ensemble}
}

// SetQuantMode switches this detector's network to the given fixed-point
// table format (nn.QuantOff restores the float64 reference path). It is the
// per-engine hook the driver layer's quantization capability probe finds.
func (d *ConvDetector) SetQuantMode(m nn.QuantMode) {
	if d != nil && d.Net != nil {
		d.Net.SetQuantMode(m)
	}
}

// SetQuantMode switches every neural detector in the suite to the given
// fixed-point table format (nn.QuantOff restores the float64 reference
// path). The tree model has no quantized variant and is unaffected.
func (s *Suite) SetQuantMode(m nn.QuantMode) {
	for _, d := range []*ConvDetector{s.MalConv, s.NonNeg, s.MalGCG} {
		d.SetQuantMode(m)
	}
}
