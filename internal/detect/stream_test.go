package detect

import (
	"bytes"
	"testing"

	"mpass/internal/nn"
)

// streamScore runs raw through d's streaming scorer in chunks of size sz.
func streamScore(d Streamer, raw []byte, sz int) float64 {
	s := d.NewStream()
	for len(raw) > 0 {
		n := sz
		if n > len(raw) {
			n = len(raw)
		}
		s.Feed(raw[:n])
		raw = raw[n:]
	}
	return s.Finish()
}

// TestStreamingMatchesScore is the CI streaming-equivalence gate: for all
// four offline detectors, every chunking of every eval sample must stream
// to exactly the score the buffered path computes — in the float64
// reference mode and with fixed-point tables enabled.
func TestStreamingMatchesScore(t *testing.T) {
	mc, nng, lg, gcg := models(t)
	suite := &Suite{MalConv: mc, NonNeg: nng, LGBM: lg, MalGCG: gcg}
	defer suite.SetQuantMode(nn.QuantOff)
	raws := rawsOf(dataset(t).Test)
	if len(raws) > 8 {
		raws = raws[:8]
	}
	for _, mode := range []nn.QuantMode{nn.QuantOff, nn.QuantInt32} {
		suite.SetQuantMode(mode)
		for _, d := range suite.OfflineTargets() {
			st, ok := d.(Streamer)
			if !ok {
				t.Fatalf("%s does not implement Streamer", d.Name())
			}
			for i, raw := range raws {
				want := d.Score(raw)
				for _, sz := range []int{1, 97, 4096, 1 << 24} {
					if got := streamScore(st, raw, sz); got != want {
						t.Fatalf("%s mode %v sample %d chunk %d: stream %v != score %v",
							d.Name(), mode, i, sz, got, want)
					}
				}
			}
		}
	}
}

// quantEvalBounds are the certified per-mode score-deviation bounds over
// the eval corpus; make quant-parity runs this file as the release gate.
var quantEvalBounds = map[nn.QuantMode]float64{
	nn.QuantInt32: 1e-6,
	nn.QuantInt16: 1e-3,
}

// TestQuantParityOnEvalCorpus is the quantization error-bound gate from
// the serving spec: across the full eval corpus (train + test splits),
// int32 fixed-point scores of every neural detector must stay within 1e-6
// of the float64 reference and flip zero hard labels. The int16 variant
// gets the looser measured bound.
func TestQuantParityOnEvalCorpus(t *testing.T) {
	mc, nng, lg, gcg := models(t)
	suite := &Suite{MalConv: mc, NonNeg: nng, LGBM: lg, MalGCG: gcg}
	defer suite.SetQuantMode(nn.QuantOff)
	ds := dataset(t)
	raws := append(rawsOf(ds.Train), rawsOf(ds.Test)...)

	dets := []*ConvDetector{mc, nng, gcg}
	ref := make([][]float64, len(dets))
	suite.SetQuantMode(nn.QuantOff)
	for i, d := range dets {
		ref[i] = ScoreAll(d, raws, 0)
	}
	for mode, bound := range quantEvalBounds {
		suite.SetQuantMode(mode)
		for i, d := range dets {
			got := ScoreAll(d, raws, 0)
			var maxDev float64
			flips := 0
			for j := range raws {
				dev := got[j] - ref[i][j]
				if dev < 0 {
					dev = -dev
				}
				if dev > maxDev {
					maxDev = dev
				}
				if (got[j] >= d.Threshold) != (ref[i][j] >= d.Threshold) {
					flips++
				}
			}
			if maxDev > bound {
				t.Errorf("%s mode %v: max |dev| %.3g over %d samples exceeds %.0g",
					d.Name(), mode, maxDev, len(raws), bound)
			}
			if flips != 0 {
				t.Errorf("%s mode %v: %d label flips, want 0", d.Name(), mode, flips)
			}
		}
	}
}

// TestSuiteQuantGobRoundTrip: quantized tables are runtime-only. A suite
// saved while serving fixed-point must load cleanly, score bit-identically
// to the float64 source, and — once the mode is re-applied — rebuild quant
// tables from the loaded weights that agree with the source's.
func TestSuiteQuantGobRoundTrip(t *testing.T) {
	s := trainedSuite(t)
	defer s.SetQuantMode(nn.QuantOff)
	raws := rawsOf(dataset(t).Test)
	if len(raws) > 8 {
		raws = raws[:8]
	}

	s.SetQuantMode(nn.QuantInt32)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, s); err != nil {
		t.Fatalf("SaveSuite with quant enabled: %v", err)
	}
	quantScores := ScoreAll(s.MalConv, raws, 0)
	s.SetQuantMode(nn.QuantOff)
	floatScores := ScoreAll(s.MalConv, raws, 0)

	loaded, err := LoadSuite(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSuite: %v", err)
	}
	// Fresh load defaults to the float64 reference path: no stale quant
	// image may ride along in the gob stream.
	for j, raw := range raws {
		if got := loaded.MalConv.Score(raw); got != floatScores[j] {
			t.Fatalf("sample %d: loaded float score %v != source %v", j, got, floatScores[j])
		}
	}
	loaded.SetQuantMode(nn.QuantInt32)
	for j, raw := range raws {
		if got := loaded.MalConv.Score(raw); got != quantScores[j] {
			t.Fatalf("sample %d: loaded quant score %v != source quant %v", j, got, quantScores[j])
		}
	}
}

// TestLoadSuiteTruncatedStream: a gob envelope cut off at any point must
// fail loudly, never yield a partially-initialized suite.
func TestLoadSuiteTruncatedStream(t *testing.T) {
	s := trainedSuite(t)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, s); err != nil {
		t.Fatalf("SaveSuite: %v", err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		n := int(frac * float64(len(full)))
		if _, err := LoadSuite(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("LoadSuite accepted a stream truncated to %d/%d bytes", n, len(full))
		}
	}
}

// TestLoadSuiteCorruptMagic: flipping the envelope magic must be rejected
// as "not a model file", whether the corruption lands in the magic string
// or the surrounding gob framing.
func TestLoadSuiteCorruptMagic(t *testing.T) {
	s := trainedSuite(t)
	var buf bytes.Buffer
	if err := SaveSuite(&buf, s); err != nil {
		t.Fatalf("SaveSuite: %v", err)
	}
	full := buf.Bytes()
	i := bytes.Index(full, []byte(suiteMagic))
	if i < 0 {
		t.Fatal("magic string not found in encoded stream")
	}
	corrupt := append([]byte(nil), full...)
	corrupt[i] ^= 0xFF
	if _, err := LoadSuite(bytes.NewReader(corrupt)); err == nil {
		t.Error("LoadSuite accepted a stream with corrupted magic")
	}
}
