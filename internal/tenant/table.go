package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrUnauthenticated rejects a request whose key matches no resident
// tenant (including the missing-key case). The HTTP layer maps it to 401.
var ErrUnauthenticated = errors.New("tenant: unknown or missing API key")

// QuotaError rejects an authenticated request that exceeded its tenant's
// own budget — the bucket ran dry or the in-flight share is full. The
// HTTP layer maps it to 429 with RetryAfter (clamped to whole seconds)
// in the Retry-After header.
type QuotaError struct {
	Tenant     string
	Saturated  bool // in-flight share full, rather than the rate bucket
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	if e.Saturated {
		return fmt.Sprintf("tenant %q has saturated its in-flight share", e.Tenant)
	}
	return fmt.Sprintf("tenant %q is over its request rate", e.Tenant)
}

// entry is one tenant's live admission state. Entries survive allowlist
// reloads (paired by tenant name), so bucket fill, in-flight count, and
// metrics are continuous across key rotations and quota changes.
type entry struct {
	name        string
	bucket      *bucket
	maxInFlight atomic.Int64 // 0 = uncapped; retuned in place on reload
	admin       atomic.Bool  // operator credential; retuned in place on reload
	inflight    atomic.Int64
	m           Metrics
}

// tableState is one immutable generation of the table: admission resolves
// it with a single atomic load and never blocks on a concurrent reload.
type tableState struct {
	byKey   map[string]*entry
	entries []*entry // allowlist order, for stable snapshots
}

// Table is the resident allowlist: an atomically swappable key→tenant
// index over state-preserving entries. Build one with LoadTable (file,
// hot-reloadable) or NewTable (fixed list — tests and embedders).
type Table struct {
	path string // "" when built from a literal list; Reload then errors

	// reloadMu serializes Reload; admission reads state without it.
	reloadMu sync.Mutex
	state    atomic.Pointer[tableState]
}

// NewTable builds a table over a fixed, already validated tenant list.
func NewTable(tenants []Tenant, now time.Time) *Table {
	t := &Table{}
	t.install(tenants, now)
	return t
}

// LoadTable reads the allowlist file and builds the table; the path is
// retained for Reload.
func LoadTable(path string) (*Table, error) {
	tenants, err := LoadAllowlist(path)
	if err != nil {
		return nil, err
	}
	t := &Table{path: path}
	t.install(tenants, time.Now())
	return t, nil
}

// Reload re-reads the allowlist file and swaps the table to it, returning
// the new tenant count. Entries for surviving tenants (matched by name)
// keep their bucket fill, in-flight count, and metrics; the bucket is
// retuned in place to the new rate and burst. A load or validation error
// leaves the current table serving untouched.
func (t *Table) Reload() (int, error) {
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	if t.path == "" {
		return 0, errors.New("tenant: table has no allowlist path to reload")
	}
	tenants, err := LoadAllowlist(t.path)
	if err != nil {
		return 0, err
	}
	t.install(tenants, time.Now())
	return len(tenants), nil
}

// install publishes a new generation, reusing surviving entries by name.
func (t *Table) install(tenants []Tenant, now time.Time) {
	old := t.state.Load()
	prev := map[string]*entry{}
	if old != nil {
		for _, e := range old.entries {
			prev[e.name] = e
		}
	}
	st := &tableState{byKey: make(map[string]*entry, len(tenants))}
	for _, tn := range tenants {
		e, survived := prev[tn.Name]
		if survived {
			e.bucket.reconfigure(tn.RatePerSec, tn.Burst)
		} else {
			e = &entry{name: tn.Name, bucket: newBucket(tn.RatePerSec, tn.Burst, now)}
		}
		e.maxInFlight.Store(int64(tn.MaxInFlight))
		e.admin.Store(tn.Admin)
		st.byKey[tn.Key] = e
		st.entries = append(st.entries, e)
	}
	t.state.Store(st)
}

// Len reports the resident tenant count.
func (t *Table) Len() int { return len(t.state.Load().entries) }

// Lookup authenticates a key without charging any quota — for read-only
// endpoints (job polls, operational reloads) where metering a poll loop
// would burn the budget the tenant needs for its actual work.
func (t *Table) Lookup(key string) (string, bool) {
	if key == "" {
		return "", false
	}
	e, ok := t.state.Load().byKey[key]
	if !ok {
		return "", false
	}
	return e.name, true
}

// IsAdmin reports whether the key authenticates an admin (operator)
// tenant. Like Lookup it charges no quota; unknown keys are never admin.
func (t *Table) IsAdmin(key string) bool {
	if key == "" {
		return false
	}
	e, ok := t.state.Load().byKey[key]
	return ok && e.admin.Load()
}

// Admit authenticates and meters one request. The checks run cheapest
// first and charge nothing on failure: unknown key → ErrUnauthenticated;
// in-flight share full → QuotaError (Saturated); bucket dry → QuotaError
// with the refill wait. On success the returned Grant holds the in-flight
// slot until Release.
func (t *Table) Admit(key string, now time.Time) (*Grant, error) {
	if key == "" {
		return nil, ErrUnauthenticated
	}
	e, ok := t.state.Load().byKey[key]
	if !ok {
		return nil, ErrUnauthenticated
	}
	// Claim the fair-queue share before the bucket: a tenant already
	// filling its slice of the shared queues must not also drain tokens it
	// cannot use.
	if limit := e.maxInFlight.Load(); limit > 0 && e.inflight.Add(1) > limit {
		e.inflight.Add(-1)
		e.m.Saturated.Add(1)
		return nil, &QuotaError{Tenant: e.name, Saturated: true, RetryAfter: time.Second}
	} else if limit <= 0 {
		e.inflight.Add(1)
	}
	if ok, wait := e.bucket.take(now); !ok {
		e.inflight.Add(-1)
		e.m.RateLimited.Add(1)
		return nil, &QuotaError{Tenant: e.name, RetryAfter: wait}
	}
	e.m.Admitted.Add(1)
	return &Grant{e: e}, nil
}

// Grant is one admitted request's claim on its tenant's in-flight share,
// plus the handle the serving layer labels per-tenant metrics through.
type Grant struct {
	e        *entry
	released atomic.Bool
}

// Tenant names the admitted tenant.
func (g *Grant) Tenant() string { return g.e.name }

// Release returns the in-flight slot; safe to call more than once.
func (g *Grant) Release() {
	if g.released.CompareAndSwap(false, true) {
		g.e.inflight.Add(-1)
	}
}

// CountScan attributes one scan to the tenant.
func (g *Grant) CountScan() { g.e.m.Scans.Add(1) }

// CountAttack attributes one admitted attack job to the tenant.
func (g *Grant) CountAttack() { g.e.m.Attacks.Add(1) }

// ObserveScanLatency records one scan's service time in the tenant's
// latency histogram.
func (g *Grant) ObserveScanLatency(d time.Duration) { g.e.m.ScanLatency.Observe(d) }

// Snapshot samples every tenant's counters, keyed by tenant name.
func (t *Table) Snapshot() map[string]Snapshot {
	st := t.state.Load()
	out := make(map[string]Snapshot, len(st.entries))
	for _, e := range st.entries {
		out[e.name] = e.m.snapshot(e.inflight.Load())
	}
	return out
}
