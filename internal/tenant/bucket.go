package tenant

import (
	"math"
	"sync"
	"time"
)

// bucket is a token bucket refilled on demand from elapsed time: no
// background goroutine, no timer — each take folds the refill owed since
// the previous observation into the balance, so an idle bucket costs
// nothing and the admission path never waits. Callers supply the clock
// (time.Now at the HTTP layer, a fake in tests), which also keeps the
// package free of wall-clock reads of its own.
type bucket struct {
	mu     sync.Mutex
	rate   float64   //mpass:guardedby mu
	burst  float64   //mpass:guardedby mu
	tokens float64   //mpass:guardedby mu
	last   time.Time //mpass:guardedby mu
}

// newBucket starts full: a freshly admitted tenant gets its whole burst.
func newBucket(rate float64, burst int, now time.Time) *bucket {
	b := float64(normalizeBurst(rate, burst))
	return &bucket{rate: rate, burst: b, tokens: b, last: now}
}

// normalizeBurst applies the Tenant.Burst default: ceil(rate), minimum 1.
func normalizeBurst(rate float64, burst int) int {
	if burst > 0 {
		return burst
	}
	if b := int(math.Ceil(rate)); b > 1 {
		return b
	}
	return 1
}

// take spends one token. When the bucket is dry it returns ok=false and
// how long until the refill mints the next whole token — the raw input to
// the HTTP layer's Retry-After clamp. A rate of 0 admits unconditionally.
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return true, 0
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// reconfigure applies a reloaded rate and burst while keeping the current
// fill — a reload must not hand every tenant a fresh burst for free, and
// must not zero out budget a tenant has legitimately saved up (beyond
// clamping to the new capacity).
func (b *bucket) reconfigure(rate float64, burst int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.rate = rate
	b.burst = float64(normalizeBurst(rate, burst))
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
