package tenant

import (
	"sync/atomic"
	"time"
)

// Metrics is one tenant's counter set — the per-tenant labels behind the
// /metrics document's "tenants" map. Same atomics-plus-snapshot shape as
// the server's global Metrics, declared here so the package stays
// dependency-free (the server imports tenant, never the reverse).
type Metrics struct {
	Admitted    atomic.Int64 // requests past auth, bucket, and in-flight share
	Scans       atomic.Int64 // scan requests entering the pipeline (mirrors global ScanRequests)
	Attacks     atomic.Int64 // admitted attack submissions
	RateLimited atomic.Int64 // rejections by the token bucket
	Saturated   atomic.Int64 // rejections by the in-flight share

	ScanLatency Histogram
}

// latencyBounds mirror the server's scan-latency buckets so per-tenant
// and global histograms merge and compare bucket-for-bucket. The last
// implicit bucket is +Inf.
var latencyBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// Histogram is a fixed-bucket latency histogram with atomic counters.
type Histogram struct {
	counts [len(latencyBounds) + 1]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration. It sits on every admitted scan response,
// so it must stay allocation free.
//
//mpass:zeroalloc
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is the JSON form of a Histogram: cumulative upper
// bounds in milliseconds with the +Inf bucket (-1 sentinel) last.
type HistogramSnapshot struct {
	Count     int64     `json:"count"`
	MeanMs    float64   `json:"mean_ms"`
	BucketsMs []float64 `json:"buckets_ms"`
	Counts    []int64   `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanMs = float64(h.sum.Load()) / float64(s.Count) / 1e6
	}
	for i, b := range latencyBounds {
		s.BucketsMs = append(s.BucketsMs, float64(b)/1e6)
		s.Counts = append(s.Counts, h.counts[i].Load())
	}
	s.BucketsMs = append(s.BucketsMs, -1) // +Inf sentinel
	s.Counts = append(s.Counts, h.counts[len(latencyBounds)].Load())
	return s
}

// Snapshot is one tenant's slice of the /metrics document.
type Snapshot struct {
	Admitted    int64 `json:"admitted"`
	Scans       int64 `json:"scans"`
	Attacks     int64 `json:"attacks"`
	RateLimited int64 `json:"rate_limited"`
	Saturated   int64 `json:"saturated"`
	InFlight    int64 `json:"in_flight"` // gauge

	ScanLatency HistogramSnapshot `json:"scan_latency"`
}

func (m *Metrics) snapshot(inflight int64) Snapshot {
	return Snapshot{
		Admitted:    m.Admitted.Load(),
		Scans:       m.Scans.Load(),
		Attacks:     m.Attacks.Load(),
		RateLimited: m.RateLimited.Load(),
		Saturated:   m.Saturated.Load(),
		InFlight:    inflight,
		ScanLatency: m.ScanLatency.snapshot(),
	}
}

// Merge folds b into a for the gateway's fleet rollup: counters and
// gauges sum, histograms merge bucket-wise (every tier uses the same
// fixed bounds), and the mean is re-derived from the merged counts.
func Merge(a, b Snapshot) Snapshot {
	meanNumer := float64(a.ScanLatency.Count)*a.ScanLatency.MeanMs +
		float64(b.ScanLatency.Count)*b.ScanLatency.MeanMs
	a.Admitted += b.Admitted
	a.Scans += b.Scans
	a.Attacks += b.Attacks
	a.RateLimited += b.RateLimited
	a.Saturated += b.Saturated
	a.InFlight += b.InFlight
	if len(a.ScanLatency.BucketsMs) == 0 {
		a.ScanLatency.BucketsMs = append([]float64(nil), b.ScanLatency.BucketsMs...)
		a.ScanLatency.Counts = append([]int64(nil), b.ScanLatency.Counts...)
	} else if len(b.ScanLatency.Counts) == len(a.ScanLatency.Counts) {
		for i, c := range b.ScanLatency.Counts {
			a.ScanLatency.Counts[i] += c
		}
	}
	a.ScanLatency.Count += b.ScanLatency.Count
	if a.ScanLatency.Count > 0 {
		a.ScanLatency.MeanMs = meanNumer / float64(a.ScanLatency.Count)
	}
	return a
}
