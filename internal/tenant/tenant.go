// Package tenant is the multi-tenant admission layer in front of the
// serving pipeline: API-key authentication against a static allowlist
// file, per-tenant token-bucket rate limits, and a per-tenant in-flight
// cap (the fair-queue share of the shared bounded scan/attack queues).
//
// The layer sits *in front of* the server's global admission, never in
// place of it: a request must first present a resident key, then clear
// its tenant's own bucket and in-flight share, and only then competes for
// the shared batcher and job-pool capacity. Quota rejections therefore
// consume no batcher or job-pool slots — a noisy tenant burns only its
// own budget, and the attack economics MPass measures in oracle queries
// become per-tenant accounting instead of an anonymous free-for-all.
//
// The allowlist is hot-reloadable (SIGHUP or POST /v1/tenants/reload):
// reloads preserve the bucket fill and metrics of tenants that survive
// the swap (matched by name, so keys can rotate without resetting
// budgets), and the active table is an atomic snapshot — admission never
// takes the reload lock.
//
// The package deliberately depends only on the standard library so every
// serving tier (server, gateway, daemons) can embed it without cycles.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
)

// Tenant is one allowlist entry: an identity, its API key, and its
// admission budget.
type Tenant struct {
	// Name identifies the tenant in metrics, job views, and logs. Unique.
	Name string `json:"name"`
	// Key is the API credential presented as `Authorization: Bearer <key>`
	// or `X-API-Key: <key>`. Unique across the allowlist; rotating it on a
	// reload keeps the tenant's bucket state (entries pair by Name).
	Key string `json:"key"`
	// RatePerSec is the sustained admission rate of the tenant's token
	// bucket. 0 leaves the tenant unmetered (authentication only).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity — how far above the sustained rate a
	// quiet tenant may spike. Defaults to ceil(RatePerSec), minimum 1.
	Burst int `json:"burst,omitempty"`
	// MaxInFlight caps the tenant's concurrently admitted requests: its
	// fair share of the shared bounded queues behind this layer. 0 means
	// uncapped.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Admin marks an operator credential: only admin keys may drive
	// operational actions (POST /v1/tenants/reload). Customer keys never
	// get this bit — an allowlist with no admin entry leaves HTTP reloads
	// disabled and SIGHUP as the only trigger.
	Admin bool `json:"admin,omitempty"`
}

// allowlistFile is the on-disk form: {"tenants": [...]}.
type allowlistFile struct {
	Tenants []Tenant `json:"tenants"`
}

// ParseAllowlist decodes and validates an allowlist document.
func ParseAllowlist(data []byte) ([]Tenant, error) {
	var doc allowlistFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("tenant: decoding allowlist: %w", err)
	}
	if len(doc.Tenants) == 0 {
		return nil, errors.New("tenant: allowlist declares no tenants")
	}
	names := make(map[string]bool, len(doc.Tenants))
	keys := make(map[string]bool, len(doc.Tenants))
	for i, t := range doc.Tenants {
		switch {
		case t.Name == "":
			return nil, fmt.Errorf("tenant: entry %d has no name", i)
		case t.Key == "":
			return nil, fmt.Errorf("tenant: %q has no key", t.Name)
		case names[t.Name]:
			return nil, fmt.Errorf("tenant: duplicate name %q", t.Name)
		case keys[t.Key]:
			return nil, fmt.Errorf("tenant: %q reuses another tenant's key", t.Name)
		case t.RatePerSec < 0 || math.IsNaN(t.RatePerSec) || math.IsInf(t.RatePerSec, 0):
			return nil, fmt.Errorf("tenant: %q has invalid rate_per_sec %v", t.Name, t.RatePerSec)
		case t.Burst < 0:
			return nil, fmt.Errorf("tenant: %q has negative burst", t.Name)
		case t.MaxInFlight < 0:
			return nil, fmt.Errorf("tenant: %q has negative max_in_flight", t.Name)
		}
		names[t.Name] = true
		keys[t.Key] = true
	}
	return doc.Tenants, nil
}

// LoadAllowlist reads and validates an allowlist file.
func LoadAllowlist(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: reading allowlist: %w", err)
	}
	return ParseAllowlist(data)
}
