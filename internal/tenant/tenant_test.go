package tenant

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

// TestBucketRefill drills the on-demand refill math: a drained bucket
// earns tokens linearly with elapsed time, clamps at burst, and reports a
// refill wait that really is the time until the next whole token.
func TestBucketRefill(t *testing.T) {
	b := newBucket(2, 4, t0) // 2 tokens/s, capacity 4, starts full
	now := t0
	for i := 0; i < 4; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d on a full bucket failed", i)
		}
	}
	ok, wait := b.take(now)
	if ok {
		t.Fatal("5th take on a 4-token bucket succeeded")
	}
	if wait != 500*time.Millisecond {
		t.Fatalf("empty bucket at 2/s: wait = %v, want 500ms", wait)
	}

	// 500ms mints exactly one token.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := b.take(now); !ok {
		t.Fatal("take after exactly one refill period failed")
	}
	if ok, _ := b.take(now); ok {
		t.Fatal("second take in the same instant succeeded on an empty bucket")
	}

	// A long idle stretch clamps at burst, not rate*elapsed.
	now = now.Add(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d after idle clamp failed", i)
		}
	}
	if ok, _ := b.take(now); ok {
		t.Fatal("burst clamp did not hold after a long idle stretch")
	}
}

// TestBucketClockSkew pins the now.After guard: a clock that steps
// backwards must not mint negative refill or move `last` back.
func TestBucketClockSkew(t *testing.T) {
	b := newBucket(1, 2, t0)
	if ok, _ := b.take(t0.Add(-time.Hour)); !ok {
		t.Fatal("take with a skewed-back clock failed on a full bucket")
	}
	if b.tokens != 1 {
		t.Fatalf("tokens = %v after skewed take, want 1", b.tokens)
	}
	if !b.last.Equal(t0) {
		t.Fatalf("last moved backwards to %v", b.last)
	}
}

// TestBucketUnmetered: rate 0 admits unconditionally.
func TestBucketUnmetered(t *testing.T) {
	b := newBucket(0, 0, t0)
	for i := 0; i < 1000; i++ {
		if ok, _ := b.take(t0); !ok {
			t.Fatalf("unmetered take %d failed", i)
		}
	}
}

// TestBucketReconfigure: a retune keeps the current fill (clamped to the
// new capacity) rather than handing out a fresh burst.
func TestBucketReconfigure(t *testing.T) {
	b := newBucket(10, 10, t0)
	for i := 0; i < 8; i++ {
		b.take(t0)
	}
	// 2 tokens left; growing the burst must not refill.
	b.reconfigure(10, 100)
	if b.tokens != 2 {
		t.Fatalf("tokens after growing burst = %v, want 2", b.tokens)
	}
	// Shrinking below the fill clamps.
	b.reconfigure(10, 1)
	if b.tokens != 1 {
		t.Fatalf("tokens after shrinking burst = %v, want 1", b.tokens)
	}
}

func TestNormalizeBurst(t *testing.T) {
	for _, tc := range []struct {
		rate  float64
		burst int
		want  int
	}{
		{rate: 10, burst: 5, want: 5},
		{rate: 10, burst: 0, want: 10},
		{rate: 2.5, burst: 0, want: 3},
		{rate: 0.25, burst: 0, want: 1},
		{rate: 0, burst: 0, want: 1},
	} {
		if got := normalizeBurst(tc.rate, tc.burst); got != tc.want {
			t.Errorf("normalizeBurst(%v, %d) = %d, want %d", tc.rate, tc.burst, got, tc.want)
		}
	}
}

// TestParseAllowlist tables the validation: every malformed document is a
// loud error, never a silently admitted tenant.
func TestParseAllowlist(t *testing.T) {
	for _, tc := range []struct {
		name string
		doc  string
		ok   bool
	}{
		{"valid", `{"tenants":[{"name":"a","key":"k1"},{"name":"b","key":"k2","rate_per_sec":5,"burst":10,"max_in_flight":3}]}`, true},
		{"bad json", `{"tenants":`, false},
		{"empty", `{"tenants":[]}`, false},
		{"no name", `{"tenants":[{"key":"k1"}]}`, false},
		{"no key", `{"tenants":[{"name":"a"}]}`, false},
		{"dup name", `{"tenants":[{"name":"a","key":"k1"},{"name":"a","key":"k2"}]}`, false},
		{"dup key", `{"tenants":[{"name":"a","key":"k1"},{"name":"b","key":"k1"}]}`, false},
		{"negative rate", `{"tenants":[{"name":"a","key":"k1","rate_per_sec":-1}]}`, false},
		{"negative burst", `{"tenants":[{"name":"a","key":"k1","burst":-1}]}`, false},
		{"negative inflight", `{"tenants":[{"name":"a","key":"k1","max_in_flight":-1}]}`, false},
	} {
		_, err := ParseAllowlist([]byte(tc.doc))
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestAdmitLifecycle walks one tenant through every Admit outcome:
// unauthenticated, admitted, in-flight saturation, release idempotence,
// and a dry bucket with a positive refill wait.
func TestAdmitLifecycle(t *testing.T) {
	tb := NewTable([]Tenant{
		{Name: "a", Key: "ka", RatePerSec: 2, Burst: 100, MaxInFlight: 2},
	}, t0)

	if _, err := tb.Admit("", t0); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("empty key: err = %v, want ErrUnauthenticated", err)
	}
	if _, err := tb.Admit("nope", t0); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("unknown key: err = %v, want ErrUnauthenticated", err)
	}

	g1, err := tb.Admit("ka", t0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Tenant() != "a" {
		t.Fatalf("grant tenant = %q, want a", g1.Tenant())
	}
	g2, err := tb.Admit("ka", t0)
	if err != nil {
		t.Fatal(err)
	}

	// Third concurrent request exceeds MaxInFlight 2.
	_, err = tb.Admit("ka", t0)
	var qe *QuotaError
	if !errors.As(err, &qe) || !qe.Saturated {
		t.Fatalf("over in-flight share: err = %v, want saturated QuotaError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("saturated RetryAfter = %v, want > 0", qe.RetryAfter)
	}

	// Release frees the slot; double Release must not free two.
	g1.Release()
	g1.Release()
	g3, err := tb.Admit("ka", t0)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if _, err := tb.Admit("ka", t0); err == nil {
		t.Fatal("double release freed two slots")
	}
	g2.Release()
	g3.Release()

	// Drain the bucket: burst 100 minus the 3 successful admits above
	// (rejections charged nothing) leaves 97.
	for i := 0; i < 97; i++ {
		g, err := tb.Admit("ka", t0)
		if err != nil {
			t.Fatalf("drain admit %d: %v", i, err)
		}
		g.Release()
	}
	_, err = tb.Admit("ka", t0)
	if !errors.As(err, &qe) || qe.Saturated {
		t.Fatalf("dry bucket: err = %v, want rate QuotaError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("dry bucket RetryAfter = %v, want > 0", qe.RetryAfter)
	}

	// A bucket rejection must not leak the in-flight slot it provisionally
	// claimed: after refill, both in-flight slots are still available.
	later := t0.Add(time.Minute)
	ga, err := tb.Admit("ka", later)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := tb.Admit("ka", later)
	if err != nil {
		t.Fatalf("second admit after refill: %v (rate rejection leaked an in-flight slot?)", err)
	}
	ga.Release()
	gb.Release()

	// Two saturated rejections above: the third concurrent admit and the
	// double-release probe.
	snap := tb.Snapshot()["a"]
	if snap.Saturated != 2 || snap.RateLimited != 1 {
		t.Fatalf("snapshot saturated=%d rate_limited=%d, want 2 and 1", snap.Saturated, snap.RateLimited)
	}
	if snap.InFlight != 0 {
		t.Fatalf("in_flight = %d after all releases, want 0", snap.InFlight)
	}
}

// TestLookupChargesNothing: authenticating a poll must not touch the
// bucket or the in-flight count.
func TestLookupChargesNothing(t *testing.T) {
	tb := NewTable([]Tenant{{Name: "a", Key: "ka", RatePerSec: 1, Burst: 1, MaxInFlight: 1}}, t0)
	for i := 0; i < 100; i++ {
		if name, ok := tb.Lookup("ka"); !ok || name != "a" {
			t.Fatalf("Lookup = %q, %v", name, ok)
		}
	}
	if _, ok := tb.Lookup("nope"); ok {
		t.Fatal("Lookup admitted an unknown key")
	}
	if _, ok := tb.Lookup(""); ok {
		t.Fatal("Lookup admitted an empty key")
	}
	g, err := tb.Admit("ka", t0)
	if err != nil {
		t.Fatalf("admit after 100 lookups: %v (lookups charged the bucket?)", err)
	}
	g.Release()
}

func writeAllowlist(t *testing.T, path, doc string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReloadPreservesState is the hot-reload contract: a reload that
// rotates a tenant's key and retunes its quota keeps the bucket fill and
// metrics (paired by name), drops removed tenants, and a broken file
// leaves the serving table untouched.
func TestReloadPreservesState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeAllowlist(t, path, `{"tenants":[
		{"name":"a","key":"ka","rate_per_sec":10,"burst":10},
		{"name":"b","key":"kb","rate_per_sec":10,"burst":10}
	]}`)
	tb, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}

	// Spend 7 of a's tokens and record 3 scans.
	now := time.Now()
	for i := 0; i < 7; i++ {
		g, err := tb.Admit("ka", now)
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			g.CountScan()
		}
		g.Release()
	}

	// Rotate a's key, raise its burst, drop b.
	writeAllowlist(t, path, `{"tenants":[
		{"name":"a","key":"ka-rotated","rate_per_sec":0.001,"burst":10}
	]}`)
	n, err := tb.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || tb.Len() != 1 {
		t.Fatalf("reload count = %d, Len = %d, want 1 and 1", n, tb.Len())
	}
	if _, ok := tb.Lookup("ka"); ok {
		t.Fatal("rotated-out key still authenticates")
	}
	if _, ok := tb.Lookup("kb"); ok {
		t.Fatal("removed tenant still authenticates")
	}

	// The surviving entry kept its fill: 3 tokens remain (rate is now
	// ~0, so no refill interferes), and its metrics are continuous.
	for i := 0; i < 3; i++ {
		g, err := tb.Admit("ka-rotated", now)
		if err != nil {
			t.Fatalf("post-rotation admit %d: %v (bucket fill reset?)", i, err)
		}
		g.Release()
	}
	if _, err := tb.Admit("ka-rotated", now); err == nil {
		t.Fatal("reload refilled the bucket: 11th token granted")
	}
	if scans := tb.Snapshot()["a"].Scans; scans != 3 {
		t.Fatalf("scans after reload = %d, want 3 (metrics reset?)", scans)
	}

	// A broken file must leave the current table serving.
	writeAllowlist(t, path, `{"tenants":[]}`)
	if _, err := tb.Reload(); err == nil {
		t.Fatal("reload of an empty allowlist succeeded")
	}
	if _, ok := tb.Lookup("ka-rotated"); !ok {
		t.Fatal("failed reload clobbered the serving table")
	}
}

// TestIsAdmin: the admin bit gates operator actions — set only by an
// explicit "admin": true entry, never for unknown/empty keys, charged
// nothing, and retuned in place by a reload (grant and revoke both).
func TestIsAdmin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	writeAllowlist(t, path, `{"tenants":[
		{"name":"ops","key":"kops","admin":true},
		{"name":"a","key":"ka","rate_per_sec":1,"burst":1}
	]}`)
	tb, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.IsAdmin("kops") {
		t.Fatal("admin entry's key is not admin")
	}
	for _, key := range []string{"ka", "nope", ""} {
		if tb.IsAdmin(key) {
			t.Fatalf("IsAdmin(%q) = true, want false", key)
		}
	}
	// IsAdmin is auth-only: a's single token must still be there.
	if g, err := tb.Admit("ka", time.Now()); err != nil {
		t.Fatalf("admit after IsAdmin probes: %v (probe charged the bucket?)", err)
	} else {
		g.Release()
	}

	// A reload flips the bit in place: ops demoted, a promoted.
	writeAllowlist(t, path, `{"tenants":[
		{"name":"ops","key":"kops"},
		{"name":"a","key":"ka","rate_per_sec":1,"burst":1,"admin":true}
	]}`)
	if _, err := tb.Reload(); err != nil {
		t.Fatal(err)
	}
	if tb.IsAdmin("kops") {
		t.Fatal("demoted tenant kept the admin bit across reload")
	}
	if !tb.IsAdmin("ka") {
		t.Fatal("promoted tenant did not gain the admin bit across reload")
	}
}

// TestReloadWithoutPath: a literal-list table refuses to Reload rather
// than silently doing nothing.
func TestReloadWithoutPath(t *testing.T) {
	tb := NewTable([]Tenant{{Name: "a", Key: "ka"}}, t0)
	if _, err := tb.Reload(); err == nil {
		t.Fatal("Reload on a pathless table succeeded")
	}
}

// TestMerge checks the gateway rollup: counters and gauges sum, histogram
// buckets add element-wise, and the mean is re-derived from the merged
// population.
func TestMerge(t *testing.T) {
	var ma, mb Metrics
	ma.Admitted.Store(2)
	mb.Admitted.Store(3)
	ma.RateLimited.Store(1)
	ma.ScanLatency.Observe(2 * time.Millisecond)
	mb.ScanLatency.Observe(4 * time.Millisecond)
	mb.ScanLatency.Observe(6 * time.Millisecond)

	got := Merge(ma.snapshot(1), mb.snapshot(2))
	if got.Admitted != 5 || got.RateLimited != 1 || got.InFlight != 3 {
		t.Fatalf("merged counters = %+v", got)
	}
	if got.ScanLatency.Count != 3 {
		t.Fatalf("merged latency count = %d, want 3", got.ScanLatency.Count)
	}
	if want := 4.0; got.ScanLatency.MeanMs != want {
		t.Fatalf("merged mean = %v ms, want %v", got.ScanLatency.MeanMs, want)
	}
	var total int64
	for _, c := range got.ScanLatency.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged bucket counts sum to %d, want 3", total)
	}

	// Merging into a zero snapshot adopts the populated histogram.
	adopted := Merge(Snapshot{}, mb.snapshot(0))
	if adopted.ScanLatency.Count != 2 || len(adopted.ScanLatency.Counts) == 0 {
		t.Fatalf("zero-base merge dropped the histogram: %+v", adopted.ScanLatency)
	}
}

// TestConcurrentAdmitReload races admission against reloads under -race:
// the atomic snapshot must keep Admit lock-free and consistent while the
// allowlist swaps underneath it.
func TestConcurrentAdmitReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	doc := func(gen int) string {
		return fmt.Sprintf(`{"tenants":[
			{"name":"a","key":"ka","rate_per_sec":1000000,"burst":1000000,"max_in_flight":%d},
			{"name":"b","key":"kb","rate_per_sec":1000000}
		]}`, 4+gen%4)
	}
	writeAllowlist(t, path, doc(0))
	tb, err := LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, err := tb.Admit(key, time.Now())
				if err == nil {
					g.CountScan()
					g.ObserveScanLatency(time.Millisecond)
					g.Release()
				} else if errors.Is(err, ErrUnauthenticated) {
					// Keys never rotate in this drill; auth must hold.
					panic("resident key rejected mid-reload")
				}
			}
		}([]string{"ka", "kb"}[w%2])
	}
	for gen := 1; gen <= 20; gen++ {
		writeAllowlist(t, path, doc(gen))
		if _, err := tb.Reload(); err != nil {
			t.Errorf("reload %d: %v", gen, err)
		}
		tb.Snapshot()
	}
	close(stop)
	wg.Wait()

	snap := tb.Snapshot()
	if snap["a"].InFlight != 0 || snap["b"].InFlight != 0 {
		t.Fatalf("in-flight gauge leaked: %+v", snap)
	}
}
