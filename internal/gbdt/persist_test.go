package gbdt

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// trainSmall fits a tiny ensemble on a separable two-feature problem.
func trainSmall(t *testing.T) (*Ensemble, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		y := float64(i % 2)
		xs = append(xs, []float64{y*2 + rng.Float64(), rng.Float64() * 4})
		ys = append(ys, y)
	}
	cfg := DefaultConfig()
	cfg.Trees = 12
	e, err := Train(xs, ys, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return e, xs
}

func TestGobRoundTripBitIdentical(t *testing.T) {
	e, xs := trainSmall(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Ensemble
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Dim() != e.Dim() {
		t.Fatalf("dim: got %d want %d", back.Dim(), e.Dim())
	}
	for i, x := range xs {
		if got, want := back.Predict(x), e.Predict(x); got != want {
			t.Fatalf("sample %d: decoded score %v != original %v", i, got, want)
		}
		if got, want := back.Logit(x), e.Logit(x); got != want {
			t.Fatalf("sample %d: decoded logit %v != original %v", i, got, want)
		}
	}
}

func TestGobDecodeRejectsCorruptTrees(t *testing.T) {
	e, _ := trainSmall(t)
	// Point an internal node's split at a feature beyond the declared dim.
	for _, tr := range e.Trees {
		for i := range tr.nodes {
			if tr.nodes[i].feature >= 0 {
				tr.nodes[i].feature = e.dim + 5
			}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Ensemble
	if err := gob.NewDecoder(&buf).Decode(&back); err == nil {
		t.Fatal("decode accepted out-of-range split feature")
	}
}
