package gbdt

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob persistence for trained ensembles (detect.SaveSuite / LoadSuite).
//
// Trees are stored in structure-of-arrays form — one slice per node field,
// indexed like the flattened node slice — so the format has no unexported
// types and a version bump only has to migrate plain slices.

// treeState is the serialized form of one Tree.
type treeState struct {
	Feature   []int32
	Threshold []float64
	Left      []int32
	Right     []int32
	Value     []float64
}

// ensembleState is the serialized form of an Ensemble.
type ensembleState struct {
	Bias  float64
	LR    float64
	Dim   int
	Trees []treeState
}

// GobEncode implements gob.GobEncoder.
func (e *Ensemble) GobEncode() ([]byte, error) {
	st := ensembleState{Bias: e.Bias, LR: e.LR, Dim: e.dim}
	for _, t := range e.Trees {
		ts := treeState{
			Feature:   make([]int32, len(t.nodes)),
			Threshold: make([]float64, len(t.nodes)),
			Left:      make([]int32, len(t.nodes)),
			Right:     make([]int32, len(t.nodes)),
			Value:     make([]float64, len(t.nodes)),
		}
		for i, n := range t.nodes {
			ts.Feature[i] = int32(n.feature)
			ts.Threshold[i] = n.threshold
			ts.Left[i] = int32(n.left)
			ts.Right[i] = int32(n.right)
			ts.Value[i] = n.value
		}
		st.Trees = append(st.Trees, ts)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, validating node indices so a corrupt
// file cannot produce a tree that walks out of bounds.
func (e *Ensemble) GobDecode(data []byte) error {
	var st ensembleState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if st.Dim <= 0 {
		return fmt.Errorf("gbdt: decoded ensemble has dim %d", st.Dim)
	}
	e.Bias, e.LR, e.dim = st.Bias, st.LR, st.Dim
	e.Trees = nil
	for ti, ts := range st.Trees {
		n := len(ts.Feature)
		if len(ts.Threshold) != n || len(ts.Left) != n || len(ts.Right) != n || len(ts.Value) != n {
			return fmt.Errorf("gbdt: tree %d has ragged node arrays", ti)
		}
		if n == 0 {
			return fmt.Errorf("gbdt: tree %d is empty", ti)
		}
		t := &Tree{nodes: make([]node, n)}
		for i := 0; i < n; i++ {
			nd := node{
				feature:   int(ts.Feature[i]),
				threshold: ts.Threshold[i],
				left:      int(ts.Left[i]),
				right:     int(ts.Right[i]),
				value:     ts.Value[i],
			}
			if nd.feature >= 0 {
				if nd.feature >= st.Dim {
					return fmt.Errorf("gbdt: tree %d node %d splits on feature %d, dim %d", ti, i, nd.feature, st.Dim)
				}
				if nd.left < 0 || nd.left >= n || nd.right < 0 || nd.right >= n {
					return fmt.Errorf("gbdt: tree %d node %d has child out of range", ti, i)
				}
			}
			t.nodes[i] = nd
		}
		e.Trees = append(e.Trees, t)
	}
	return nil
}
