package gbdt

import (
	"math/rand"
	"testing"
)

// xorData is a non-linearly-separable problem a depth-2+ tree ensemble must
// solve but a linear model cannot.
func xorData(rng *rand.Rand, n int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		a := rng.Float64()
		b := rng.Float64()
		xs[i] = []float64{a, b, rng.Float64()} // third feature is noise
		if (a > 0.5) != (b > 0.5) {
			ys[i] = 1
		}
	}
	return xs, ys
}

func TestTrainLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs, ys := xorData(rng, 400)
	e, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	txs, tys := xorData(rand.New(rand.NewSource(2)), 200)
	correct := 0
	for i, x := range txs {
		if (e.Predict(x) > 0.5) == (tys[i] > 0.5) {
			correct++
		}
	}
	if correct < 180 {
		t.Errorf("XOR accuracy %d/200", correct)
	}
}

func TestPredictInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := xorData(rng, 100)
	e, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		p := e.Predict(x)
		if p < 0 || p > 1 {
			t.Fatalf("Predict = %v", p)
		}
	}
}

func TestTrainInputValidation(t *testing.T) {
	cases := []struct {
		name string
		xs   [][]float64
		ys   []float64
		cfg  Config
	}{
		{"empty", nil, nil, DefaultConfig()},
		{"length mismatch", [][]float64{{1}}, []float64{1, 0}, DefaultConfig()},
		{"ragged", [][]float64{{1, 2}, {1}}, []float64{1, 0}, DefaultConfig()},
		{"bad config", [][]float64{{1}, {2}}, []float64{1, 0}, Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Train(tc.xs, tc.ys, tc.cfg); err == nil {
				t.Error("Train accepted invalid input")
			}
		})
	}
}

func TestLogitDimMismatchPanics(t *testing.T) {
	xs := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	ys := []float64{0, 0, 1, 1}
	e, err := Train(xs, ys, Config{Trees: 5, MaxDepth: 2, LearningRate: 0.3, MinLeaf: 1, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Logit accepted wrong dimension")
		}
	}()
	e.Logit([]float64{1})
}

func TestPureLeafOnConstantLabels(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{1, 1, 1, 1}
	e, err := Train(xs, ys, Config{Trees: 10, MaxDepth: 3, LearningRate: 0.3, MinLeaf: 1, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if p := e.Predict(x); p < 0.9 {
			t.Errorf("constant-label prediction = %v, want ~1", p)
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	// With MinLeaf equal to the dataset size, no split is possible: the
	// model must reduce to bias + constant leaves and predict the base rate.
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{0, 0, 1, 1}
	e, err := Train(xs, ys, Config{Trees: 20, MaxDepth: 3, LearningRate: 0.3, MinLeaf: 4, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	p0, p3 := e.Predict(xs[0]), e.Predict(xs[3])
	if p0 != p3 {
		t.Errorf("unsplittable data produced distinct predictions %v vs %v", p0, p3)
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs, ys := xorData(rng, 120)
	e1, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Train(xs, ys, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:10] {
		if e1.Predict(x) != e2.Predict(x) {
			t.Fatal("training is nondeterministic")
		}
	}
}

func TestDimAccessor(t *testing.T) {
	xs := [][]float64{{0, 1, 2}, {3, 4, 5}}
	ys := []float64{0, 1}
	e, err := Train(xs, ys, Config{Trees: 2, MaxDepth: 1, LearningRate: 0.3, MinLeaf: 1, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 3 {
		t.Errorf("Dim = %d, want 3", e.Dim())
	}
}
