// Package gbdt implements gradient-boosted regression trees with logistic
// loss — the from-scratch stand-in for the LightGBM model the paper attacks
// via the EMBER feature set. Trees are grown depth-first with exact
// variance-reduction splits and leaves take a single Newton step, the same
// second-order update LightGBM applies.
package gbdt

import (
	"fmt"
	"math"
	"sort"

	"mpass/internal/tensor"
)

// Config controls boosting.
type Config struct {
	Trees        int     // number of boosting rounds
	MaxDepth     int     // maximum tree depth
	LearningRate float64 // shrinkage per round
	MinLeaf      int     // minimum samples per leaf
	Lambda       float64 // L2 regularization on leaf values
}

// DefaultConfig mirrors small-data LightGBM defaults.
func DefaultConfig() Config {
	return Config{Trees: 80, MaxDepth: 4, LearningRate: 0.15, MinLeaf: 4, Lambda: 1.0}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // child indices into the tree's node slice
	right     int
	value     float64
}

// Tree is a single regression tree in flattened form.
type Tree struct {
	nodes []node
}

// predict returns the leaf value for x.
func (t *Tree) predict(x []float64) float64 {
	i := 0
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Ensemble is a trained boosted model.
type Ensemble struct {
	Bias  float64 // initial log-odds
	LR    float64
	Trees []*Tree
	dim   int
}

// Dim returns the expected feature-vector length.
func (e *Ensemble) Dim() int { return e.dim }

// Logit returns the raw boosted score for x.
func (e *Ensemble) Logit(x []float64) float64 {
	if len(x) != e.dim {
		panic(fmt.Sprintf("gbdt: feature dim %d, model expects %d", len(x), e.dim))
	}
	s := e.Bias
	for _, t := range e.Trees {
		s += e.LR * t.predict(x)
	}
	return s
}

// Predict returns P(malware | x).
func (e *Ensemble) Predict(x []float64) float64 { return tensor.Sigmoid(e.Logit(x)) }

// FeatureImportance returns, per feature index, how many internal splits
// across the ensemble use that feature — the split-count importance measure.
func (e *Ensemble) FeatureImportance() map[int]int {
	out := make(map[int]int)
	for _, t := range e.Trees {
		for _, n := range t.nodes {
			if n.feature >= 0 {
				out[n.feature]++
			}
		}
	}
	return out
}

// Train fits an ensemble on feature matrix xs (rows) and labels ys in {0,1}.
func Train(xs [][]float64, ys []float64, cfg Config) (*Ensemble, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("gbdt: %d samples, %d labels", len(xs), len(ys))
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("gbdt: sample %d has dim %d, want %d", i, len(x), dim)
		}
	}
	if cfg.Trees <= 0 || cfg.MaxDepth <= 0 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("gbdt: invalid config %+v", cfg)
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}

	// Prior log-odds.
	var pos float64
	for _, y := range ys {
		pos += y
	}
	p := math.Min(math.Max(pos/float64(len(ys)), 1e-6), 1-1e-6)
	e := &Ensemble{Bias: math.Log(p / (1 - p)), LR: cfg.LearningRate, dim: dim}

	logits := make([]float64, len(xs))
	for i := range logits {
		logits[i] = e.Bias
	}
	grad := make([]float64, len(xs)) // residuals y - p
	hess := make([]float64, len(xs)) // p(1-p)
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}

	for m := 0; m < cfg.Trees; m++ {
		for i := range xs {
			pi := tensor.Sigmoid(logits[i])
			grad[i] = ys[i] - pi
			hess[i] = math.Max(pi*(1-pi), 1e-6)
		}
		t := &Tree{}
		t.grow(xs, grad, hess, idx, 0, cfg)
		e.Trees = append(e.Trees, t)
		for i, x := range xs {
			logits[i] += cfg.LearningRate * t.predict(x)
		}
	}
	return e, nil
}

// grow recursively builds the subtree over sample indices idx and returns
// the node's index in t.nodes.
func (t *Tree) grow(xs [][]float64, grad, hess []float64, idx []int, depth int, cfg Config) int {
	var sumG, sumH float64
	for _, i := range idx {
		sumG += grad[i]
		sumH += hess[i]
	}
	leafValue := sumG / (sumH + cfg.Lambda)

	self := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1, value: leafValue})
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return self
	}

	feat, thr, gain := bestSplit(xs, grad, hess, idx, cfg)
	if feat < 0 || gain <= 1e-12 {
		return self
	}

	var left, right []int
	for _, i := range idx {
		if xs[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return self
	}
	l := t.grow(xs, grad, hess, left, depth+1, cfg)
	r := t.grow(xs, grad, hess, right, depth+1, cfg)
	t.nodes[self] = node{feature: feat, threshold: thr, left: l, right: r}
	return self
}

// bestSplit scans every feature for the exact split maximizing the boosted
// gain (G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)).
func bestSplit(xs [][]float64, grad, hess []float64, idx []int, cfg Config) (feat int, thr, gain float64) {
	feat = -1
	dim := len(xs[idx[0]])

	var totG, totH float64
	for _, i := range idx {
		totG += grad[i]
		totH += hess[i]
	}
	parent := totG * totG / (totH + cfg.Lambda)

	type gv struct{ v, g, h float64 }
	col := make([]gv, len(idx))
	for f := 0; f < dim; f++ {
		for k, i := range idx {
			col[k] = gv{v: xs[i][f], g: grad[i], h: hess[i]}
		}
		sort.Slice(col, func(a, b int) bool { return col[a].v < col[b].v })
		var gl, hl float64
		for k := 0; k < len(col)-1; k++ {
			gl += col[k].g
			hl += col[k].h
			// A split between bit-equal feature values is unrealizable, so
			// the exact comparison is the correct duplicate test.
			//lint:ignore determinism exact duplicate detection between sorted neighbors
			if col[k].v == col[k+1].v {
				continue
			}
			if k+1 < cfg.MinLeaf || len(col)-k-1 < cfg.MinLeaf {
				continue
			}
			gr, hr := totG-gl, totH-hl
			g := gl*gl/(hl+cfg.Lambda) + gr*gr/(hr+cfg.Lambda) - parent
			if g > gain {
				gain = g
				feat = f
				thr = (col[k].v + col[k+1].v) / 2
			}
		}
	}
	return feat, thr, gain
}
