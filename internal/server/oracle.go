package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mpass/internal/core"
)

// ErrOracleUnavailable is returned once the retry layer's circuit breaker
// opens: enough consecutive queries exhausted their retries that the oracle
// is declared down and the attack fails fast instead of burning its whole
// query budget against a dead scanner.
var ErrOracleUnavailable = errors.New("server: oracle unavailable (circuit open)")

// residentOracle adapts the server's scan pipeline into the hard-label
// Oracle an attack queries. The context-aware path propagates errors and
// cancellation; the legacy context-free path fails closed (detected), since
// a scanner that cannot answer must not look like an evasion.
//
// The target is held by name, not index, and resolved against the generation
// that answered each query: a hot reload may reorder the set mid-attack, and
// a pinned index would silently read some other engine's label. A reload
// that drops the target entirely fails the query instead.
type residentOracle struct {
	s    *Server
	name string
}

func (o *residentOracle) Name() string { return o.name }

// ModelVersion implements core.ModelVersioner: the generation currently
// answering this oracle's queries.
func (o *residentOracle) ModelVersion() string { return o.s.snap().version }

// DetectedContext implements core.ContextOracle. Each query is bounded by
// the server's per-request timeout on top of the job's own deadline, and
// pipeline errors (queue shed, drain, timeout) surface to the caller so the
// retry layer can distinguish transient from fatal.
func (o *residentOracle) DetectedContext(ctx context.Context, raw []byte) (bool, error) {
	o.s.metrics.OracleQueries.Add(1)
	qctx, cancel := context.WithTimeout(ctx, o.s.cfg.RequestTimeout)
	defer cancel()
	// One generation pin per query; the label below still resolves against
	// out.set — the generation that actually scored — so a reload landing
	// between this load and the batcher flush cannot mislabel.
	ms := o.s.snap()
	out, _, _, err := o.s.scan(qctx, ms, raw, true)
	if err != nil {
		return false, err
	}
	idx, ok := out.set.byName[o.name]
	if !ok {
		return false, fmt.Errorf("server: target %q no longer resident (model set %s)", o.name, out.set.version)
	}
	return out.Labels[idx], nil
}

// Detected implements core.Oracle for context-free callers.
func (o *residentOracle) Detected(raw []byte) bool {
	//lint:ignore ctxflow context-free Oracle compatibility path; the serving path queries DetectedContext
	det, err := o.DetectedContext(context.Background(), raw)
	if err != nil {
		return true
	}
	return det
}

// retryOracle sits between the attack's query counter and the (possibly
// fault-injected) resident oracle: transient query errors are retried with
// exponential backoff, and a run of queries that exhaust their retries trips
// a circuit breaker so a dead oracle fails the job promptly. One instance is
// built per attack job and queried from that job's single goroutine, so the
// breaker state needs no locking.
type retryOracle struct {
	inner      core.Oracle
	attempts   int           // total tries per query (>= 1)
	backoff    time.Duration // first retry delay; doubles per retry
	backoffMax time.Duration // backoff ceiling
	breakAfter int           // consecutive exhausted queries before the breaker opens (0 = never)
	metrics    *Metrics

	consecExhausted int
	open            bool
}

func (o *retryOracle) Name() string { return o.inner.Name() }

// UnwrapOracle implements core.OracleUnwrapper, so capability probes (model
// version reporting) reach through the retry layer.
func (o *retryOracle) UnwrapOracle() core.Oracle { return o.inner }

// DetectedContext implements core.ContextOracle with retry semantics.
// Cancellation is never retried: once ctx expires (job deadline, shutdown
// cancel) the query returns immediately with the context's error. A query
// that exhausts its retries while the breaker is still closed fails closed
// — answering "detected" so the attack proceeds conservatively, exactly as
// the pre-retry oracle did — because a single bad query should not kill a
// job that has already spent most of its budget. Only the breaker, fed by
// consecutive exhausted queries, turns oracle failure into job failure.
func (o *retryOracle) DetectedContext(ctx context.Context, raw []byte) (bool, error) {
	if o.open {
		return false, ErrOracleUnavailable
	}
	delay := o.backoff
	var lastErr error
	for attempt := 0; attempt < o.attempts; attempt++ {
		if attempt > 0 {
			o.metrics.OracleRetries.Add(1)
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return false, ctx.Err()
			}
			delay *= 2
			if delay > o.backoffMax {
				delay = o.backoffMax
			}
		}
		det, err := core.QueryOracle(ctx, o.inner, raw)
		if err == nil {
			o.consecExhausted = 0
			return det, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The job itself is done (deadline or shutdown), not the oracle.
			return false, err
		}
	}
	o.consecExhausted++
	if o.breakAfter > 0 && o.consecExhausted >= o.breakAfter {
		o.open = true
		o.metrics.OracleBreaks.Add(1)
		return false, fmt.Errorf("%w after %d consecutive failed queries (last: %v)",
			ErrOracleUnavailable, o.consecExhausted, lastErr)
	}
	return true, nil // fail closed; see the method comment
}

// Detected implements core.Oracle for context-free callers, failing closed
// on error like the resident oracle it fronts.
func (o *retryOracle) Detected(raw []byte) bool {
	//lint:ignore ctxflow context-free Oracle compatibility path; the serving path queries DetectedContext
	det, err := o.DetectedContext(context.Background(), raw)
	if err != nil {
		return true
	}
	return det
}
