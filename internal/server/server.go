// Package server is the serving subsystem behind cmd/mpassd: an HTTP
// scan/attack service that keeps a trained detector suite resident and
// answers on-demand queries — the detector-as-a-service oracle the
// query-based threat model of MPass (and GAMMA's black-box setting)
// presumes.
//
// The pipeline, request to response:
//
//	POST /v1/scan   -> admission (bounded queue, 429 on overload)
//	                -> SHA-256 LRU score cache
//	                -> micro-batching dispatcher (Batcher) -> ScoreBatch
//	POST /v1/attack -> admission (bounded job queue, 429 on overload)
//	                -> parallel.Pool worker -> MPass attack whose oracle
//	                   queries loop back through the cache + batcher
//	GET  /v1/jobs/{id}, /healthz, /metrics
//
// Batched scores are bit-identical to single-sample Detector.Score calls;
// server_test.go holds the parity gate. Shutdown drains: in-flight scans
// flush, queued and running attack jobs complete, new work is rejected.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mpass/internal/core"
	"mpass/internal/detect"
	"mpass/internal/engine"
	"mpass/internal/nn"
	"mpass/internal/tenant"
)

// AttackFunc runs one adversarial-example attack on original against the
// named target, querying it only through oracle. Implementations own their
// attack configuration; seed makes each job's randomness independent. The
// context carries the job's deadline and the server's shutdown cancellation
// — implementations must stop promptly once it is done.
type AttackFunc func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error)

// MPassAttack is the production AttackFunc: the full MPass pipeline with the
// registry's gradient-capable engines as the known-model ensemble for the
// chosen target (hard-label-only engines never join — the paper's footnote 6
// LightGBM exclusion falls out of the capability probe) and the given
// benign-donor pool. The ensemble is resolved when the job starts, from the
// generation current at that moment, and stays pinned for the job's life.
func MPassAttack(reg *engine.Registry, donors [][]byte, maxQueries int) AttackFunc {
	return func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		known := engine.GradientModels(reg.Current(), target.Name())
		if len(known) == 0 {
			return nil, fmt.Errorf("server: no gradient-capable known models resident for target %q", target.Name())
		}
		cfg := core.DefaultConfig(known, donors)
		if maxQueries > 0 {
			cfg.MaxQueries = maxQueries
		}
		cfg.Seed = seed
		attacker, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return attacker.AttackContext(ctx, original, oracle)
	}
}

// Config sizes the serving pipeline. Zero values select the defaults noted
// per field.
type Config struct {
	// Detectors is the resident suite; scan responses list models in this
	// order. Exactly one of Detectors and Registry must be set.
	Detectors []detect.Detector
	// Registry supplies the resident models through the pluggable driver
	// layer instead of Detectors: the serving snapshot is built from its
	// current set, per-engine versions and health flow to /healthz, and
	// POST /v1/models/reload can swap generations without a restart.
	Registry *engine.Registry
	// Attack builds each /v1/attack job's attack run. Nil disables the
	// attack endpoints (501).
	Attack AttackFunc

	// Reload loads a candidate engine set for POST /v1/models/reload (the
	// path argument is the request's optional ?path= override, empty for the
	// configured default). Nil disables the endpoint (501).
	Reload func(path string) (*engine.Set, error)
	// Quant is the fixed-point table mode quantization-capable engines serve
	// in; reload certification re-applies it to incoming engines and gates
	// the swap on quant-vs-float parity.
	Quant nn.QuantMode
	// ProbeCorpus is the certification corpus reload candidates must score
	// finitely (and quant-consistently) before they may serve. Empty
	// synthesizes a deterministic default when Reload is configured.
	ProbeCorpus [][]byte

	// ModelVersion identifies the resident weight set on /healthz (e.g. a
	// digest of the model file). Empty derives a stable digest of the
	// detector names, so fleet-consistency checks work even unconfigured.
	// Registry-backed servers ignore it: their version is the engine set's
	// own content-addressed version, which must move on reload.
	ModelVersion string

	MaxBatch    int           // max requests per coalesced batch (default 32)
	BatchWindow time.Duration // flush window after the first request (default 2ms)
	ScanQueue   int           // scan admission queue; full = 429 (default 256)
	CacheSize   int           // LRU score-cache entries; 0 disables (default 4096)

	AttackWorkers int // concurrent attack jobs (default 2)
	AttackQueue   int // attack admission queue; full = 429 (default 64)

	RequestTimeout time.Duration // per-request deadline (default 10s)
	MaxBodyBytes   int64         // largest accepted buffered PE upload (default 8 MiB)

	// Streaming scan path. Uploads longer than StreamThreshold — or of
	// unknown length — bypass the buffered batcher and feed every
	// detector's ScoreStream chunk by chunk, so peak memory per request is
	// O(StreamChunk) instead of O(body). Scores equal the buffered path
	// bit for bit (detect's streaming equivalence gate). StreamThreshold
	// defaults to 1 MiB; negative disables streaming, and it is also off
	// when any configured detector lacks a streaming scorer or decision
	// threshold. StreamChunk is the read size (default 256 KiB).
	// MaxStreamBytes caps a streamed upload (default 64 MiB; beyond = 413).
	StreamThreshold int64
	StreamChunk     int
	MaxStreamBytes  int64

	// Job lifecycle bounds. JobDeadline caps each attack job's runtime
	// (default 2m; negative disables). JobTTL bounds how long a finished
	// job's result stays pollable (default 10m; negative disables). MaxJobs
	// caps the registry — live plus retained — evicting oldest-finished
	// first and shedding submits when every entry is live (default 4096;
	// negative = unbounded). DrainGrace is how long a forced shutdown waits
	// after cancelling stragglers for them to record a terminal state
	// (default 1s).
	JobDeadline time.Duration
	JobTTL      time.Duration
	MaxJobs     int
	DrainGrace  time.Duration

	// Oracle robustness. Each attack-job oracle query is retried up to
	// OracleAttempts times total (default 3; 1 disables retries) with
	// exponential backoff from OracleBackoff (default 10ms) capped at
	// OracleBackoffMax (default 1s). After OracleBreakAfter consecutive
	// queries exhaust their retries the job's circuit breaker opens and the
	// attack fails fast (default 5; negative disables).
	OracleAttempts   int
	OracleBackoff    time.Duration
	OracleBackoffMax time.Duration
	OracleBreakAfter int

	// Tenants, when non-nil, puts the multi-tenant admission layer in front
	// of every metered endpoint: requests must authenticate with a resident
	// API key and clear their tenant's token bucket and in-flight share
	// before competing for the shared batcher and job-pool capacity. Nil
	// leaves the server single-tenant and unauthenticated.
	Tenants *tenant.Table

	// OracleWrap, when non-nil, wraps each attack job's resident oracle
	// before the retry layer — the fault-injection hook (tests, mpassd
	// -fault-* flags). It must be safe for concurrent use across jobs.
	OracleWrap func(core.Oracle) core.Oracle

	Seed int64 // base seed for per-job attack randomness
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.ScanQueue <= 0 {
		c.ScanQueue = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.AttackWorkers <= 0 {
		c.AttackWorkers = 2
	}
	if c.AttackQueue <= 0 {
		c.AttackQueue = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.StreamThreshold == 0 {
		c.StreamThreshold = 1 << 20
	}
	if c.StreamChunk <= 0 {
		c.StreamChunk = 256 << 10
	}
	if c.MaxStreamBytes <= 0 {
		c.MaxStreamBytes = 64 << 20
	}
	if c.JobDeadline == 0 {
		c.JobDeadline = 2 * time.Minute
	}
	if c.JobTTL == 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	if c.OracleAttempts <= 0 {
		c.OracleAttempts = 3
	}
	if c.OracleBackoff <= 0 {
		c.OracleBackoff = 10 * time.Millisecond
	}
	if c.OracleBackoffMax <= 0 {
		c.OracleBackoffMax = time.Second
	}
	if c.OracleBreakAfter == 0 {
		c.OracleBreakAfter = 5
	}
	// Negative values mean "disabled"; normalize to the zero the mechanisms
	// treat as off.
	if c.JobDeadline < 0 {
		c.JobDeadline = 0
	}
	if c.JobTTL < 0 {
		c.JobTTL = 0
	}
	if c.MaxJobs < 0 {
		c.MaxJobs = 0
	}
	if c.OracleBreakAfter < 0 {
		c.OracleBreakAfter = 0
	}
}

// Server is the resident scan/attack service. Build one with New, mount
// Handler on any http.Server (or httptest), and Shutdown to drain.
type Server struct {
	cfg     Config
	metrics Metrics
	batcher *Batcher
	cache   *scoreCache
	jobs    *jobRegistry

	// models is the active generation; every request path resolves the
	// resident set through one atomic load (models.go). registry, when
	// configured, is kept in step with it across reloads.
	models   atomic.Pointer[modelSet]
	registry *engine.Registry

	// reloadMu serializes POST /v1/models/reload; probes is the frozen
	// certification corpus.
	reloadMu sync.Mutex
	probes   [][]byte

	draining atomic.Bool
	seedSeq  atomic.Int64
	started  time.Time
	mux      *http.ServeMux
}

// New validates cfg, starts the batching dispatcher and the attack worker
// pool, and returns the ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if cfg.Registry != nil && len(cfg.Detectors) > 0 {
		return nil, fmt.Errorf("server: configure Detectors or Registry, not both")
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newScoreCache(cfg.CacheSize),
		registry: cfg.Registry,
		started:  time.Now(),
	}
	var ms *modelSet
	if cfg.Registry != nil {
		ms = newModelSetFromEngines(cfg.Registry.Current(), cfg.StreamThreshold < 0)
	} else {
		var err error
		ms, err = newModelSetStatic(cfg.Detectors, cfg.ModelVersion, cfg.StreamThreshold < 0)
		if err != nil {
			return nil, err
		}
	}
	s.models.Store(ms)
	if cfg.Reload != nil {
		s.probes = cfg.ProbeCorpus
		if len(s.probes) == 0 {
			s.probes = defaultProbeCorpus()
		}
	}
	s.batcher = newBatcherSrc(s.snap, cfg.MaxBatch, cfg.ScanQueue, cfg.BatchWindow, &s.metrics)
	s.jobs = newJobRegistry(cfg.AttackWorkers, cfg.AttackQueue,
		cfg.JobDeadline, cfg.JobTTL, cfg.MaxJobs, cfg.DrainGrace, &s.metrics)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/scan", s.handleScan)
	s.mux.HandleFunc("POST /v1/attack", s.handleAttack)
	s.mux.HandleFunc("POST /v1/models/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/tenants/reload", s.handleTenantsReload)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the live counter set (tests and embedding daemons).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Shutdown drains the serving pipeline: new scans and attacks are rejected
// immediately, queued and running attack jobs complete (bounded by ctx),
// and the batcher flushes everything in flight before it stops. If ctx
// expires first, every outstanding job's context is cancelled and
// ctx-honoring jobs get Config.DrainGrace to record a terminal state — so
// even a wedged oracle cannot hold shutdown past the deadline plus grace.
// The caller is responsible for the HTTP listener's own Shutdown
// (http.Server waits for in-flight handlers, which in turn wait on the
// batcher).
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	err := s.jobs.shutdown(ctx)
	s.batcher.Close()
	return err
}

// scan runs the cache -> batcher pipeline. The caller passes the one
// generation snapshot it pinned for this request (snapshotonce): scan must
// not re-load the registry, or the lookup and the response could straddle a
// concurrent reload and mix generations. wait selects backpressure
// (internal oracle traffic) over shedding (interactive requests).
func (s *Server) scan(ctx context.Context, ms *modelSet, raw []byte, wait bool) (scanOut, [32]byte, bool, error) {
	sum := sha256.Sum256(raw)
	if out, ok := s.cache.get(scoreKey{version: ms.version, sum: sum}); ok {
		s.metrics.CacheHits.Add(1)
		return out, sum, true, nil
	}
	s.metrics.CacheMisses.Add(1)
	var out scanOut
	var err error
	if wait {
		out, err = s.batcher.ScoreWait(ctx, raw)
	} else {
		out, err = s.batcher.Score(ctx, raw)
	}
	if err != nil {
		return scanOut{}, sum, false, err
	}
	// File the entry under the generation that actually scored it: if a
	// reload lands between the lookup above and here, the result keys under
	// the old version — which no lookup will ever hit again — instead of
	// poisoning the new generation's segment.
	s.cache.put(scoreKey{version: out.set.version, sum: sum}, out)
	return out, sum, false, nil
}

// scanModelResult is one detector's verdict in a scan response.
type scanModelResult struct {
	Model     string  `json:"model"`
	Score     float64 `json:"score"`
	Malicious bool    `json:"malicious"`
}

// scanResponse is the POST /v1/scan response document.
type scanResponse struct {
	SHA256 string `json:"sha256"`
	Size   int    `json:"size"`
	Cached bool   `json:"cached"`
	// ModelVersion is the generation that produced these scores — under a
	// hot reload, always the set all Results came from, never a mix.
	ModelVersion string            `json:"model_version"`
	Malicious    bool              `json:"malicious"` // any model flags it
	Results      []scanModelResult `json:"results"`
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	// Tenant admission first: a 401/429 here must consume nothing — not the
	// body, not a cache lookup, not a batcher slot.
	grant, ok := s.admitTenant(w, r)
	if !ok {
		return
	}
	if grant != nil {
		defer grant.Release()
	}
	// One snapshot per request: the same generation routes the streaming
	// decision and keys the cache lookup below.
	ms := s.snap()
	if s.streamEligible(r, ms) {
		s.handleScanStream(w, r, ms, grant)
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Per-tenant Scans counts in lockstep with the global ScanRequests:
	// both tick once the request has cleared validation and enters the
	// pipeline, so 400/413 rejects appear in neither ledger.
	s.metrics.ScanRequests.Add(1)
	if grant != nil {
		grant.CountScan()
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, key, cached, err := s.scan(ctx, ms, raw, false)
	elapsed := time.Since(start)
	s.metrics.ScanLatency.Observe(elapsed)
	if grant != nil {
		grant.ObserveScanLatency(elapsed)
	}
	if err != nil {
		s.scanError(w, err)
		return
	}
	resp := scanResponse{
		SHA256:       hex.EncodeToString(key[:]),
		Size:         len(raw),
		Cached:       cached,
		ModelVersion: out.set.version,
	}
	for i, name := range out.set.names {
		resp.Results = append(resp.Results, scanModelResult{
			Model: name, Score: out.Scores[i], Malicious: out.Labels[i],
		})
		resp.Malicious = resp.Malicious || out.Labels[i]
	}
	writeJSON(w, http.StatusOK, resp)
}

// attackResponse is the POST /v1/attack response document.
type attackResponse struct {
	ID     string `json:"id"`
	Target string `json:"target"`
	Poll   string `json:"poll"`
}

func (s *Server) handleAttack(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.cfg.Attack == nil {
		writeError(w, http.StatusNotImplemented, "attack endpoint disabled")
		return
	}
	grant, ok := s.admitTenant(w, r)
	if !ok {
		return
	}
	var tenantName string
	if grant != nil {
		defer grant.Release()
		tenantName = grant.Tenant()
	}
	// The submit-time snapshot pins the target detector and records the
	// generation the job started against; oracle queries still flow through
	// the live pipeline, so the job view can report both versions when a
	// reload lands mid-attack.
	ms := s.snap()
	targetName := r.URL.Query().Get("target")
	if targetName == "" {
		targetName = ms.names[0]
	}
	idx, ok := ms.byName[targetName]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown target %q (have %v)", targetName, ms.names))
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	target := ms.dets[idx]
	// Oracle stack, innermost out: resident scan pipeline -> optional fault
	// wrapper (tests, -fault-* flags) -> retry + circuit breaker -> the
	// attack's own query counter (added by the AttackFunc caller below).
	// Queries counted against the attack budget are therefore logical ones;
	// retries absorb injected transients without charging the budget.
	var oracle core.Oracle = &residentOracle{s: s, name: targetName}
	if s.cfg.OracleWrap != nil {
		oracle = s.cfg.OracleWrap(oracle)
	}
	seed := s.cfg.Seed + s.seedSeq.Add(1)*7919
	id, err := s.jobs.submit(targetName, ms.version, tenantName, func(ctx context.Context, h *jobHandle) {
		retrying := &retryOracle{
			inner:      oracle,
			attempts:   s.cfg.OracleAttempts,
			backoff:    s.cfg.OracleBackoff,
			backoffMax: s.cfg.OracleBackoffMax,
			breakAfter: s.cfg.OracleBreakAfter,
			metrics:    &s.metrics,
		}
		counting := &core.CountingOracle{Oracle: retrying}
		res, aerr := s.cfg.Attack(ctx, target, raw, counting, seed)
		h.finish(raw, res, aerr, core.OracleModelVersion(counting))
	})
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	case err != nil:
		s.metrics.AttackRejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfterAttack())
		writeError(w, http.StatusTooManyRequests, "attack queue full")
		return
	}
	s.metrics.AttackRequests.Add(1)
	if grant != nil {
		grant.CountAttack()
	}
	writeJSON(w, http.StatusAccepted, attackResponse{ID: id, Target: targetName, Poll: "/v1/jobs/" + id})
}

// retryAfter estimates how long a shed client should wait before retrying:
// the current backlog divided by the observed completion rate, clamped to
// [1, 60] seconds.
func (s *Server) retryAfter(backlog int, completed int64) string {
	return strconv.Itoa(retryAfterSecs(backlog, completed, time.Since(s.started).Seconds()))
}

// retryAfterSecs is the pure drain-rate estimator behind every Retry-After
// hint. The cold-start guard comes first: before any completion has been
// observed (or with a non-positive uptime, as on a clock step) there is no
// rate to divide by, so the answer is the minimum legal hint of 1 rather
// than a division by zero. The clamp then bounds the estimate to [1, 60],
// which also absorbs a zero backlog (ceil(1/rate) can round to 1 but the
// clamp makes the floor unconditional) and any float oddity the division
// could produce.
func retryAfterSecs(backlog int, completed int64, upSeconds float64) int {
	if upSeconds <= 0 || completed <= 0 {
		return 1
	}
	rate := float64(completed) / upSeconds
	return clampRetrySecs(math.Ceil(float64(backlog+1) / rate))
}

// clampRetrySecs bounds a raw estimate to the advertised [1, 60] window.
// The lower comparison is written `!(secs >= 1)` so NaN — which fails every
// comparison — lands on the safe floor instead of leaking into the header.
func clampRetrySecs(secs float64) int {
	if !(secs >= 1) {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return int(secs)
}

// retryAfterScan derives the scan-shed hint from batcher throughput; scans
// drain orders of magnitude faster than attack jobs, so the two sheds
// advertise different waits.
func (s *Server) retryAfterScan() string {
	return s.retryAfter(len(s.batcher.reqs), s.metrics.BatchedRaws.Load())
}

// retryAfterAttack derives the attack-shed hint from job-pool throughput.
func (s *Server) retryAfterAttack() string {
	return s.retryAfter(s.jobs.pool.Pending(), int64(s.jobs.pool.Done()))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	caller, ok := s.authTenant(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	includeAE := r.URL.Query().Get("ae") == "1"
	v, ok := s.jobs.view(id, includeAE)
	// Multi-tenant servers scope jobs to their submitter: IDs are sequential
	// and enumerable, so a foreign tenant's poll must be indistinguishable
	// from a job that never existed — 404, not 403, or the status code alone
	// would confirm the guessed ID and leak another tenant's activity.
	if ok && caller != "" && v.Tenant != caller {
		ok = false
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	snap.JobsQueued = s.jobs.pool.Queued()
	snap.JobsPending = s.jobs.pool.Pending()
	snap.JobsDone = s.jobs.pool.Done()
	snap.JobsRegistry = s.jobs.size()
	snap.JobsRegistryCap = s.jobs.maxJobs
	if s.cfg.Tenants != nil {
		snap.Tenants = s.cfg.Tenants.Snapshot()
	}
	writeJSON(w, http.StatusOK, snap)
}

// readBody reads the raw PE upload, enforcing the size cap. On failure it
// writes the error response and returns ok=false.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		}
		return nil, false
	}
	if len(raw) == 0 {
		writeError(w, http.StatusBadRequest, "empty body; POST the PE bytes")
		return nil, false
	}
	return raw, true
}

// scanError maps pipeline errors to responses: queue-full sheds with 429,
// deadline expiry is 504, shutdown is 503.
func (s *Server) scanError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		s.metrics.ScanRejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfterScan())
		writeError(w, http.StatusTooManyRequests, "scan queue full")
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.ScanErrors.Add(1)
		writeError(w, http.StatusGatewayTimeout, "scan timed out")
	case errors.Is(err, ErrClosed):
		s.metrics.ScanErrors.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
	default:
		s.metrics.ScanErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
