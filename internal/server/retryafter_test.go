package server

import (
	"math"
	"testing"
	"time"
)

// TestRetryAfterSecs tables the drain-rate estimator, pinning the
// cold-start guards: with no observed completions (or a non-positive
// uptime) there is no rate to divide by, and the answer must be the
// minimum legal hint — never a division by zero, never "Retry-After: 0".
func TestRetryAfterSecs(t *testing.T) {
	for _, tc := range []struct {
		name      string
		backlog   int
		completed int64
		upSeconds float64
		want      int
	}{
		{"cold start: nothing completed", 100, 0, 10, 1},
		{"cold start: zero uptime", 100, 50, 0, 1},
		{"cold start: negative uptime (clock step)", 100, 50, -3, 1},
		{"cold start: both zero", 0, 0, 0, 1},
		{"zero backlog still floors at 1", 0, 1000, 1, 1},
		{"steady state", 9, 10, 10, 10},
		{"fractional estimate rounds up", 1, 3, 2, 2}, // 2 / 1.5 = 1.33 -> 2
		{"exactly the floor", 0, 1, 1, 1},
		{"exactly the ceiling", 59, 1, 1, 60},
		{"above the ceiling clamps", 1000, 1, 100, 60},
		{"huge backlog, tiny rate", 1 << 30, 1, 3600, 60},
	} {
		if got := retryAfterSecs(tc.backlog, tc.completed, tc.upSeconds); got != tc.want {
			t.Errorf("%s: retryAfterSecs(%d, %d, %v) = %d, want %d",
				tc.name, tc.backlog, tc.completed, tc.upSeconds, got, tc.want)
		}
	}
}

// TestClampRetrySecs drills the clamp boundaries, including the float
// oddities the division could produce: NaN fails every comparison, so the
// `!(secs >= 1)` floor must catch it.
func TestClampRetrySecs(t *testing.T) {
	for _, tc := range []struct {
		secs float64
		want int
	}{
		{math.NaN(), 1},
		{math.Inf(-1), 1},
		{math.Inf(1), 60},
		{-5, 1},
		{0, 1},
		{0.5, 1},
		{1, 1},
		{59.9, 59},
		{60, 60},
		{60.1, 60},
		{1e12, 60},
	} {
		if got := clampRetrySecs(tc.secs); got != tc.want {
			t.Errorf("clampRetrySecs(%v) = %d, want %d", tc.secs, got, tc.want)
		}
	}
}

// TestRetryAfterQuota checks the token-bucket refill rendering: whole
// seconds rounded up, floored at 1 (a sub-second refill must not tell the
// client "retry in 0"), capped at 60.
func TestRetryAfterQuota(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{time.Millisecond, "1"},
		{500 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1200 * time.Millisecond, "2"},
		{59 * time.Second, "59"},
		{90 * time.Second, "60"},
	} {
		if got := retryAfterQuota(tc.wait); got != tc.want {
			t.Errorf("retryAfterQuota(%v) = %q, want %q", tc.wait, got, tc.want)
		}
	}
}

// TestRetryAfterColdServer pins the estimator at the HTTP layer's inputs:
// a server that has completed nothing yet must advertise the floor hint,
// not crash or emit 0.
func TestRetryAfterColdServer(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if got := s.retryAfterScan(); got != "1" {
		t.Errorf("cold retryAfterScan = %q, want \"1\"", got)
	}
	if got := s.retryAfterAttack(); got != "1" {
		t.Errorf("cold retryAfterAttack = %q, want \"1\"", got)
	}
}
