package server

import (
	"container/list"
	"sync"
)

// scoreKey addresses one cached scan result: the content's SHA-256 paired
// with the model generation that scored it. Keying on the digest alone would
// serve stale verdicts after a hot reload — same bytes, different weights —
// so the version segments the cache by generation and the swap purges what
// the old generation left behind.
type scoreKey struct {
	version string
	sum     [32]byte
}

// scoreCache is a (version, SHA-256)-keyed LRU over full scan results.
// Adversarial workloads are extremely repetitive — an attack loop re-queries
// candidate byte strings it has seen before, and load generators replay a
// fixed sample pool — so a small cache absorbs a large share of oracle
// traffic before it reaches the batcher.
type scoreCache struct {
	mu  sync.Mutex
	cap int // immutable after construction
	// front = most recently used
	ll    *list.List                 //mpass:guardedby mu
	items map[scoreKey]*list.Element //mpass:guardedby mu
}

type cacheEntry struct {
	key scoreKey
	out scanOut
}

// newScoreCache returns a cache holding up to capacity results; capacity
// <= 0 disables caching (every get misses, every put is dropped).
func newScoreCache(capacity int) *scoreCache {
	return &scoreCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[scoreKey]*list.Element),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *scoreCache) get(key scoreKey) (scanOut, bool) {
	if c.cap <= 0 {
		return scanOut{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return scanOut{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// put inserts (or refreshes) key's result, evicting the least recently used
// entry when the cache is full.
func (c *scoreCache) put(key scoreKey, out scanOut) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// purge empties the cache and reports how many entries were dropped. The
// hot-reload swap calls it so no old-generation result lingers; version-keyed
// lookups would miss those entries anyway, but purging returns the capacity
// to the new generation immediately.
func (c *scoreCache) purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[scoreKey]*list.Element)
	return n
}

// len reports the current entry count.
func (c *scoreCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
