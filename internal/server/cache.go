package server

import (
	"container/list"
	"sync"
)

// scoreCache is a SHA-256-keyed LRU over full scan results. Adversarial
// workloads are extremely repetitive — an attack loop re-queries candidate
// byte strings it has seen before, and load generators replay a fixed
// sample pool — so a small cache absorbs a large share of oracle traffic
// before it reaches the batcher.
type scoreCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[[32]byte]*list.Element
}

type cacheEntry struct {
	key [32]byte
	out scanOut
}

// newScoreCache returns a cache holding up to capacity results; capacity
// <= 0 disables caching (every get misses, every put is dropped).
func newScoreCache(capacity int) *scoreCache {
	return &scoreCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[[32]byte]*list.Element),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *scoreCache) get(key [32]byte) (scanOut, bool) {
	if c.cap <= 0 {
		return scanOut{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return scanOut{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).out, true
}

// put inserts (or refreshes) key's result, evicting the least recently used
// entry when the cache is full.
func (c *scoreCache) put(key [32]byte, out scanOut) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).out = out
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, out: out})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the current entry count.
func (c *scoreCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
