package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpass/internal/core"
	"mpass/internal/detect"
	"mpass/internal/engine"
)

// fakeEngine is a minimal engine.Driver whose score, version, and health are
// test-controlled — the levers the reload handler's gates are exercised with.
type fakeEngine struct {
	name      string
	version   string
	score     float64
	healthErr error
}

func (f *fakeEngine) Name() string             { return f.name }
func (f *fakeEngine) Score(raw []byte) float64 { return f.score }
func (f *fakeEngine) Label(raw []byte) bool    { return f.score >= 0.5 }
func (f *fakeEngine) Threshold() float64       { return 0.5 }
func (f *fakeEngine) Version() string          { return f.version }
func (f *fakeEngine) Health() error            { return f.healthErr }
func (f *fakeEngine) ScoreBatch(raws [][]byte) []float64 {
	out := make([]float64, len(raws))
	for i := range out {
		out[i] = f.score
	}
	return out
}

func engineSet(t *testing.T, drivers ...engine.Driver) *engine.Set {
	t.Helper()
	set, err := engine.NewSet(drivers...)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return set
}

// registryServer is newTestServer for registry-backed configs (which must not
// carry the stub Detectors default).
func registryServer(t *testing.T, cfg Config, initial *engine.Set) (*Server, *httptest.Server) {
	t.Helper()
	reg, err := engine.NewRegistry(initial)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	cfg.Registry = reg
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func TestReloadRequiresLoader(t *testing.T) {
	initial := engineSet(t, &fakeEngine{name: "M", version: "vA", score: 0.25})
	_, ts := registryServer(t, Config{}, initial)
	resp, body := postBytes(t, ts.URL+"/v1/models/reload", []byte("x"))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without loader: status %d (%s), want 501", resp.StatusCode, body)
	}
}

// TestReloadSwapsGenerationAndPurgesCache walks the whole happy path: scan
// under the old generation (priming the cache), swap, and verify the scan
// response version, the scores, /healthz per-engine versions, and the cache
// segmentation all moved to the new generation — the stale-score regression
// test for the (version, content-hash) cache key.
func TestReloadSwapsGenerationAndPurgesCache(t *testing.T) {
	setA := engineSet(t, &fakeEngine{name: "M", version: "vA", score: 0.25})
	setB := engineSet(t, &fakeEngine{name: "M", version: "vB", score: 0.75})
	var pending atomic.Pointer[engine.Set]
	pending.Store(setB)
	s, ts := registryServer(t, Config{
		Reload: func(path string) (*engine.Set, error) { return pending.Load(), nil },
	}, setA)

	raw := []byte("same content, two generations")
	var before scanResponse
	resp, body := postBytes(t, ts.URL+"/v1/scan", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan: status %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if before.ModelVersion != setA.Version() || before.Results[0].Score != 0.25 {
		t.Fatalf("pre-reload scan = %+v, want version %s score 0.25", before, setA.Version())
	}
	// Prime the cache: a second scan of the same bytes must hit.
	resp, body = postBytes(t, ts.URL+"/v1/scan", raw)
	json.Unmarshal(body, &before)
	if !before.Cached {
		t.Fatal("second scan of identical bytes missed the cache")
	}

	resp, body = postBytes(t, ts.URL+"/v1/models/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", resp.StatusCode, body)
	}
	var rr reloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Swapped || rr.PreviousVersion != setA.Version() || rr.ModelVersion != setB.Version() {
		t.Fatalf("reload response %+v, want swap %s -> %s", rr, setA.Version(), setB.Version())
	}
	if rr.CachePurged != 1 {
		t.Fatalf("reload purged %d cache entries, want 1", rr.CachePurged)
	}
	if rr.ProbeSamples == 0 {
		t.Fatal("reload certified against zero probe samples")
	}
	if len(rr.Engines) != 1 || rr.Engines[0].Version != "vB" || !rr.Engines[0].Healthy {
		t.Fatalf("reload engines = %+v", rr.Engines)
	}

	// The same bytes now score under the new generation — not the cached old
	// score, not a stale version stamp.
	var after scanResponse
	resp, body = postBytes(t, ts.URL+"/v1/scan", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload scan: status %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("post-reload scan answered from the old generation's cache")
	}
	if after.ModelVersion != setB.Version() || after.Results[0].Score != 0.75 {
		t.Fatalf("post-reload scan = %+v, want version %s score 0.75", after, setB.Version())
	}

	var h HealthStatus
	getJSON(t, ts.URL+"/healthz", &h)
	if h.ModelVersion != setB.Version() {
		t.Fatalf("healthz version %s, want %s", h.ModelVersion, setB.Version())
	}
	if len(h.Engines) != 1 || h.Engines[0].Name != "M" || h.Engines[0].Version != "vB" {
		t.Fatalf("healthz engines = %+v", h.Engines)
	}
	if got := s.metrics.Reloads.Load(); got != 1 {
		t.Fatalf("Reloads = %d, want 1", got)
	}
	if got := s.metrics.CachePurged.Load(); got != 1 {
		t.Fatalf("CachePurged = %d, want 1", got)
	}
}

// TestReloadRejectsUncertifiableSets: loader errors, unhealthy engines, and
// non-finite scores all answer 422 and leave the old generation serving.
func TestReloadRejectsUncertifiableSets(t *testing.T) {
	setA := engineSet(t, &fakeEngine{name: "M", version: "vA", score: 0.25})
	var pending atomic.Pointer[engine.Set]
	var loadErr atomic.Bool
	s, ts := registryServer(t, Config{
		Reload: func(path string) (*engine.Set, error) {
			if loadErr.Load() {
				return nil, fmt.Errorf("model file corrupt")
			}
			return pending.Load(), nil
		},
	}, setA)

	cases := []struct {
		name string
		prep func()
	}{
		{"loader error", func() { loadErr.Store(true) }},
		{"nil set", func() { loadErr.Store(false); pending.Store(nil) }},
		{"unhealthy engine", func() {
			pending.Store(engineSet(t, &fakeEngine{name: "M", version: "vBad", score: 0.5,
				healthErr: fmt.Errorf("weights missing")}))
		}},
		{"non-finite scores", func() {
			pending.Store(engineSet(t, &fakeEngine{name: "M", version: "vNaN", score: math.NaN()}))
		}},
	}
	for i, c := range cases {
		c.prep()
		resp, body := postBytes(t, ts.URL+"/v1/models/reload", nil)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d (%s), want 422", c.name, resp.StatusCode, body)
		}
		if got := s.metrics.ReloadFailures.Load(); got != int64(i+1) {
			t.Fatalf("%s: ReloadFailures = %d, want %d", c.name, got, i+1)
		}
	}
	// The old generation never stopped serving.
	var sr scanResponse
	resp, body := postBytes(t, ts.URL+"/v1/scan", []byte("still here"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan after failed reloads: status %d (%s)", resp.StatusCode, body)
	}
	json.Unmarshal(body, &sr)
	if sr.ModelVersion != setA.Version() || sr.Results[0].Score != 0.25 {
		t.Fatalf("scan after failed reloads = %+v, want untouched generation %s", sr, setA.Version())
	}
	if got := s.metrics.Reloads.Load(); got != 0 {
		t.Fatalf("Reloads = %d after only failures", got)
	}
}

func TestReloadPassesPathOverride(t *testing.T) {
	setA := engineSet(t, &fakeEngine{name: "M", version: "vA", score: 0.25})
	var gotPath atomic.Value
	_, ts := registryServer(t, Config{
		Reload: func(path string) (*engine.Set, error) {
			gotPath.Store(path)
			return setA, nil
		},
	}, setA)
	resp, body := postBytes(t, ts.URL+"/v1/models/reload?path=/models/candidate", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", resp.StatusCode, body)
	}
	if got := gotPath.Load(); got != "/models/candidate" {
		t.Fatalf("loader saw path %q, want /models/candidate", got)
	}
	// Reloading the same set is a no-op swap but still a swap: same version.
	var rr reloadResponse
	json.Unmarshal(body, &rr)
	if rr.ModelVersion != setA.Version() || rr.PreviousVersion != setA.Version() {
		t.Fatalf("same-set reload = %+v", rr)
	}
}

// TestAttackJobReportsGenerationStraddle: a reload landing while an attack
// runs must not break the job, and the job view must record both the
// submit-time generation and the finish-time one.
func TestAttackJobReportsGenerationStraddle(t *testing.T) {
	setA := engineSet(t, &fakeEngine{name: "M", version: "vA", score: 0.25})
	setB := engineSet(t, &fakeEngine{name: "M", version: "vB", score: 0.75})
	var pending atomic.Pointer[engine.Set]
	pending.Store(setB)

	started := make(chan struct{})
	gate := make(chan struct{})
	attack := func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		if _, err := core.QueryOracle(ctx, oracle, original); err != nil {
			return nil, err
		}
		close(started)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		// This query runs against the post-reload generation.
		if _, err := core.QueryOracle(ctx, oracle, append(original, 0x01)); err != nil {
			return nil, err
		}
		return &core.Result{Success: true, AE: original, Queries: 2, Rounds: 1}, nil
	}
	_, ts := registryServer(t, Config{
		Attack: attack,
		Reload: func(path string) (*engine.Set, error) { return pending.Load(), nil },
	}, setA)

	resp, body := postBytes(t, ts.URL+"/v1/attack?target=M", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack: status %d (%s)", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	<-started

	resp, body = postBytes(t, ts.URL+"/v1/models/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-attack reload: status %d (%s)", resp.StatusCode, body)
	}
	close(gate)

	v := pollTerminal(t, ts.URL+ar.Poll)
	if v.State != JobDone {
		t.Fatalf("job state %s (%s), want done", v.State, v.Error)
	}
	if v.ModelVersion != setA.Version() {
		t.Fatalf("job submit version %s, want %s", v.ModelVersion, setA.Version())
	}
	if v.ModelVersionAtFinish != setB.Version() {
		t.Fatalf("job finish version %q, want %s (the straddle must be visible)",
			v.ModelVersionAtFinish, setB.Version())
	}
}

// TestReloadUnderLoadDrill is the acceptance drill, run under -race in CI:
// sustained concurrent scans and an attack job while generations swap back
// and forth. Every response must succeed (zero 5xx, zero sheds), every
// response's scores must exactly match the generation its version stamp
// names (zero mixed-version responses), and reloading weights whose bytes
// equal the original generation's must reproduce its version and its scores
// bit for bit.
func TestReloadUnderLoadDrill(t *testing.T) {
	mkDriver := func(name string, seed int64) *engine.ConvDriver {
		drv, err := engine.NewConvDriver(convDetector(t, name, seed))
		if err != nil {
			t.Fatalf("NewConvDriver: %v", err)
		}
		return drv
	}
	setA := engineSet(t, mkDriver("M", 1), mkDriver("N", 2))
	setB := engineSet(t, mkDriver("M", 3), mkDriver("N", 4))
	// Same construction, same seeds: byte-identical weights, so the driver
	// digests — and the set version — must equal setA's.
	setA2 := engineSet(t, mkDriver("M", 1), mkDriver("N", 2))
	if setA2.Version() != setA.Version() {
		t.Fatalf("identical weights digest to different set versions: %s vs %s",
			setA2.Version(), setA.Version())
	}
	if setB.Version() == setA.Version() {
		t.Fatal("distinct weights share a set version")
	}

	bodies := randomRaws(77, 12, 2048)
	// Ground truth per generation, computed outside the server.
	expected := map[string][][]float64{}
	for _, set := range []*engine.Set{setA, setB} {
		scores := make([][]float64, len(bodies))
		for i, raw := range bodies {
			row := make([]float64, set.Len())
			for j, d := range set.Drivers() {
				row[j] = d.Score(raw)
			}
			scores[i] = row
		}
		expected[set.Version()] = scores
	}

	var pending atomic.Pointer[engine.Set]
	pending.Store(setB)
	_, ts := registryServer(t, Config{
		Attack:    loopingAttack(64),
		Reload:    func(path string) (*engine.Set, error) { return pending.Load(), nil },
		ScanQueue: 4096,
		CacheSize: 4096,
	}, setA)

	resp, body := postBytes(t, ts.URL+"/v1/attack?target=M", bodies[0])
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack: status %d (%s)", resp.StatusCode, body)
	}
	var ar attackResponse
	json.Unmarshal(body, &ar)

	const workers, scansPerWorker = 6, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < scansPerWorker; i++ {
				raw := bodies[(w+i)%len(bodies)]
				resp, body := postBytes(t, ts.URL+"/v1/scan", raw)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d scan %d: status %d (%s)", w, i, resp.StatusCode, body)
					return
				}
				var sr scanResponse
				if err := json.Unmarshal(body, &sr); err != nil {
					t.Errorf("worker %d scan %d: %v", w, i, err)
					return
				}
				want, ok := expected[sr.ModelVersion]
				if !ok {
					t.Errorf("worker %d scan %d: unknown model version %q", w, i, sr.ModelVersion)
					return
				}
				row := want[(w+i)%len(bodies)]
				if len(sr.Results) != len(row) {
					t.Errorf("worker %d scan %d: %d results", w, i, len(sr.Results))
					return
				}
				for j := range row {
					// Exact equality: a response stamped with a generation must
					// carry that generation's scores bit for bit, for every
					// engine — a mix would betray a torn snapshot.
					if sr.Results[j].Score != row[j] {
						t.Errorf("worker %d scan %d engine %d: score %v under version %s, want %v",
							w, i, j, sr.Results[j].Score, sr.ModelVersion, row[j])
						return
					}
				}
			}
		}(w)
	}

	// Swap generations back and forth under the load.
	next := []*engine.Set{setB, setA, setB, setA, setB}
	for _, set := range next {
		pending.Store(set)
		resp, body := postBytes(t, ts.URL+"/v1/models/reload", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload under load: status %d (%s)", resp.StatusCode, body)
		}
		var rr reloadResponse
		json.Unmarshal(body, &rr)
		if rr.ModelVersion != set.Version() {
			t.Fatalf("reload landed on %s, want %s", rr.ModelVersion, set.Version())
		}
		time.Sleep(20 * time.Millisecond)
	}
	wg.Wait()

	// Final swap to the reconstructed original weights: same bytes, same
	// version, bit-identical scores.
	pending.Store(setA2)
	resp, body = postBytes(t, ts.URL+"/v1/models/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final reload: status %d (%s)", resp.StatusCode, body)
	}
	var rr reloadResponse
	json.Unmarshal(body, &rr)
	if rr.ModelVersion != setA.Version() {
		t.Fatalf("reloading identical bytes advertised %s, want %s", rr.ModelVersion, setA.Version())
	}
	for i, raw := range bodies {
		resp, body := postBytes(t, ts.URL+"/v1/scan", raw)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drill scan: status %d (%s)", resp.StatusCode, body)
		}
		var sr scanResponse
		json.Unmarshal(body, &sr)
		if sr.ModelVersion != setA.Version() {
			t.Fatalf("post-drill scan version %s, want %s", sr.ModelVersion, setA.Version())
		}
		for j, want := range expected[setA.Version()][i] {
			if sr.Results[j].Score != want {
				t.Fatalf("body %d engine %d: reloaded score %v != original %v", i, j, sr.Results[j].Score, want)
			}
		}
	}

	v := pollTerminal(t, ts.URL+ar.Poll)
	if v.State != JobDone {
		t.Fatalf("attack job ended %s (%s), want done through the reloads", v.State, v.Error)
	}
}
