package server

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func cacheKey(i int) scoreKey {
	return scoreKey{version: "v1", sum: sha256.Sum256([]byte(fmt.Sprintf("sample-%d", i)))}
}

func cacheOut(i int) scanOut {
	return scanOut{Scores: []float64{float64(i)}, Labels: []bool{i%2 == 0}}
}

func TestScoreCacheEvictsLRU(t *testing.T) {
	c := newScoreCache(3)
	for i := 0; i < 3; i++ {
		c.put(cacheKey(i), cacheOut(i))
	}
	// Touch 0 so 1 becomes the eviction victim.
	if _, ok := c.get(cacheKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.put(cacheKey(3), cacheOut(3))
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, ok := c.get(cacheKey(1)); ok {
		t.Fatal("LRU key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		out, ok := c.get(cacheKey(i))
		if !ok {
			t.Fatalf("key %d evicted unexpectedly", i)
		}
		if out.Scores[0] != float64(i) {
			t.Fatalf("key %d returned score %v", i, out.Scores[0])
		}
	}
}

func TestScoreCachePutRefreshesExisting(t *testing.T) {
	c := newScoreCache(2)
	c.put(cacheKey(0), cacheOut(0))
	c.put(cacheKey(1), cacheOut(1))
	c.put(cacheKey(0), scanOut{Scores: []float64{99}, Labels: []bool{true}})
	if c.len() != 2 {
		t.Fatalf("len = %d after refresh, want 2", c.len())
	}
	out, ok := c.get(cacheKey(0))
	if !ok || out.Scores[0] != 99 {
		t.Fatalf("refreshed entry = %v ok=%v", out, ok)
	}
	// The refresh moved key 0 to the front, so key 1 is evicted next.
	c.put(cacheKey(2), cacheOut(2))
	if _, ok := c.get(cacheKey(1)); ok {
		t.Fatal("key 1 survived eviction after refresh reordered recency")
	}
}

// Same content, different model generation: the version half of the key
// segments the cache, so a lookup under the new generation can never return
// a score the old weights produced — the stale-score bug a bare SHA-256 key
// had under hot reload.
func TestScoreCacheVersionSegmentsEntries(t *testing.T) {
	c := newScoreCache(8)
	sum := sha256.Sum256([]byte("same-bytes"))
	c.put(scoreKey{version: "set-old", sum: sum}, scanOut{Scores: []float64{0.9}, Labels: []bool{true}})
	if _, ok := c.get(scoreKey{version: "set-new", sum: sum}); ok {
		t.Fatal("new generation hit the old generation's entry for identical content")
	}
	c.put(scoreKey{version: "set-new", sum: sum}, scanOut{Scores: []float64{0.2}, Labels: []bool{false}})
	old, ok := c.get(scoreKey{version: "set-old", sum: sum})
	if !ok || old.Scores[0] != 0.9 {
		t.Fatalf("old generation entry = %v ok=%v, want its own score 0.9", old, ok)
	}
	fresh, ok := c.get(scoreKey{version: "set-new", sum: sum})
	if !ok || fresh.Scores[0] != 0.2 {
		t.Fatalf("new generation entry = %v ok=%v, want 0.2", fresh, ok)
	}
}

func TestScoreCachePurge(t *testing.T) {
	c := newScoreCache(8)
	for i := 0; i < 5; i++ {
		c.put(cacheKey(i), cacheOut(i))
	}
	if n := c.purge(); n != 5 {
		t.Fatalf("purge dropped %d entries, want 5", n)
	}
	if c.len() != 0 {
		t.Fatalf("len = %d after purge, want 0", c.len())
	}
	if _, ok := c.get(cacheKey(0)); ok {
		t.Fatal("entry survived purge")
	}
	// The cache keeps working after a purge.
	c.put(cacheKey(7), cacheOut(7))
	if _, ok := c.get(cacheKey(7)); !ok {
		t.Fatal("cache unusable after purge")
	}
	if n := c.purge(); n != 1 {
		t.Fatalf("second purge dropped %d entries, want 1", n)
	}
}

func TestScoreCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := newScoreCache(capacity)
		c.put(cacheKey(0), cacheOut(0))
		if _, ok := c.get(cacheKey(0)); ok {
			t.Fatalf("capacity %d: cache stored an entry", capacity)
		}
		if c.len() != 0 {
			t.Fatalf("capacity %d: len = %d", capacity, c.len())
		}
	}
}
