package server

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func cacheKey(i int) [32]byte { return sha256.Sum256([]byte(fmt.Sprintf("sample-%d", i))) }

func cacheOut(i int) scanOut {
	return scanOut{Scores: []float64{float64(i)}, Labels: []bool{i%2 == 0}}
}

func TestScoreCacheEvictsLRU(t *testing.T) {
	c := newScoreCache(3)
	for i := 0; i < 3; i++ {
		c.put(cacheKey(i), cacheOut(i))
	}
	// Touch 0 so 1 becomes the eviction victim.
	if _, ok := c.get(cacheKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.put(cacheKey(3), cacheOut(3))
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}
	if _, ok := c.get(cacheKey(1)); ok {
		t.Fatal("LRU key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		out, ok := c.get(cacheKey(i))
		if !ok {
			t.Fatalf("key %d evicted unexpectedly", i)
		}
		if out.Scores[0] != float64(i) {
			t.Fatalf("key %d returned score %v", i, out.Scores[0])
		}
	}
}

func TestScoreCachePutRefreshesExisting(t *testing.T) {
	c := newScoreCache(2)
	c.put(cacheKey(0), cacheOut(0))
	c.put(cacheKey(1), cacheOut(1))
	c.put(cacheKey(0), scanOut{Scores: []float64{99}, Labels: []bool{true}})
	if c.len() != 2 {
		t.Fatalf("len = %d after refresh, want 2", c.len())
	}
	out, ok := c.get(cacheKey(0))
	if !ok || out.Scores[0] != 99 {
		t.Fatalf("refreshed entry = %v ok=%v", out, ok)
	}
	// The refresh moved key 0 to the front, so key 1 is evicted next.
	c.put(cacheKey(2), cacheOut(2))
	if _, ok := c.get(cacheKey(1)); ok {
		t.Fatal("key 1 survived eviction after refresh reordered recency")
	}
}

func TestScoreCacheDisabled(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := newScoreCache(capacity)
		c.put(cacheKey(0), cacheOut(0))
		if _, ok := c.get(cacheKey(0)); ok {
			t.Fatalf("capacity %d: cache stored an entry", capacity)
		}
		if c.len() != 0 {
			t.Fatalf("capacity %d: len = %d", capacity, c.len())
		}
	}
}
