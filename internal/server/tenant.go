// Tenant admission glue: the HTTP face of internal/tenant. Quota checks
// run before the body is read and before any batcher or job-pool slot is
// touched, so a rejected request (401/429) consumes nothing downstream —
// a noisy tenant's floods never crowd the shared bounded queues that the
// global admission layer protects.
package server

import (
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mpass/internal/tenant"
)

// apiKey extracts the request credential: `Authorization: Bearer <key>`
// wins, `X-API-Key: <key>` is the curl-friendly fallback.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return r.Header.Get("X-API-Key")
}

// admitTenant runs tenant admission for one metered request. With no table
// configured the server is single-tenant and everything passes with a nil
// grant. On rejection it writes the 401/429 response (429 always carries a
// Retry-After ≥ 1 derived from the tenant's own refill wait) and returns
// ok=false; the caller must not touch the body or the pipeline.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (*tenant.Grant, bool) {
	if s.cfg.Tenants == nil {
		return nil, true
	}
	grant, err := s.cfg.Tenants.Admit(apiKey(r), time.Now())
	if err == nil {
		return grant, true
	}
	var qe *tenant.QuotaError
	if errors.As(err, &qe) {
		s.metrics.TenantRejected.Add(1)
		w.Header().Set("Retry-After", retryAfterQuota(qe.RetryAfter))
		writeError(w, http.StatusTooManyRequests, qe.Error())
		return nil, false
	}
	s.metrics.TenantUnauthenticated.Add(1)
	writeError(w, http.StatusUnauthorized, "unknown or missing API key")
	return nil, false
}

// authTenant authenticates without charging quota — read-only endpoints
// (job polls, operational reloads) where metering a poll loop would burn
// the budget the tenant needs for its actual work. Empty tenant name with
// ok=true means single-tenant mode.
func (s *Server) authTenant(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.cfg.Tenants == nil {
		return "", true
	}
	name, ok := s.cfg.Tenants.Lookup(apiKey(r))
	if !ok {
		s.metrics.TenantUnauthenticated.Add(1)
		writeError(w, http.StatusUnauthorized, "unknown or missing API key")
		return "", false
	}
	return name, true
}

// handleTenantsReload re-reads the allowlist file (POST /v1/tenants/reload
// — the HTTP twin of SIGHUP). Only an admin-flagged tenant may trigger it:
// reloads are an operational action (disk re-read, metric churn), and the
// gateway forwards customer credentials verbatim, so a plain resident key
// must not reach it. An allowlist with no admin entry leaves SIGHUP as the
// only trigger. A load or validation error leaves the current allowlist
// serving and answers 422.
func (s *Server) handleTenantsReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Tenants == nil {
		writeError(w, http.StatusNotImplemented, "tenant allowlist not configured")
		return
	}
	if _, ok := s.authTenant(w, r); !ok {
		return
	}
	if !s.cfg.Tenants.IsAdmin(apiKey(r)) {
		writeError(w, http.StatusForbidden, "reload requires an admin credential")
		return
	}
	n, err := s.cfg.Tenants.Reload()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.TenantReloads.Add(1)
	writeJSON(w, http.StatusOK, map[string]int{"tenants": n})
}

// retryAfterQuota renders a token-bucket refill wait as a Retry-After
// header value, through the same [1, 60] clamp as the drain-rate hints.
func retryAfterQuota(wait time.Duration) string {
	return strconv.Itoa(clampRetrySecs(math.Ceil(wait.Seconds())))
}
