package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"testing"

	"mpass/internal/detect"
)

// streamServer builds a server on real ConvDetectors (which implement the
// streaming scorer) with a tiny streaming threshold so small test bodies
// take the O(chunk) path.
func streamServer(t *testing.T, cfg Config) (*Server, string, []detect.Detector) {
	t.Helper()
	dets := []detect.Detector{
		convDetector(t, "A", 1),
		convDetector(t, "B", 2),
	}
	cfg.Detectors = dets
	s, ts := newTestServer(t, cfg)
	return s, ts.URL, dets
}

// TestScanStreamMatchesBuffered is the serving-layer streaming parity gate:
// a body routed through the chunked path must answer with exactly the
// scores, labels, and SHA-256 the buffered pipeline computes, and the
// result must land in the shared score cache.
func TestScanStreamMatchesBuffered(t *testing.T) {
	s, url, dets := streamServer(t, Config{StreamThreshold: 64, StreamChunk: 128})

	raw := make([]byte, 4096)
	rand.New(rand.NewSource(9)).Read(raw)

	resp, body := postBytes(t, url+"/v1/scan", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d: %s", resp.StatusCode, body)
	}
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding scan response: %v", err)
	}
	sum := sha256.Sum256(raw)
	if sr.SHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("sha256 = %s, want %s", sr.SHA256, hex.EncodeToString(sum[:]))
	}
	if sr.Size != len(raw) {
		t.Fatalf("size = %d, want %d", sr.Size, len(raw))
	}
	if len(sr.Results) != len(dets) {
		t.Fatalf("results for %d models, want %d", len(sr.Results), len(dets))
	}
	for i, d := range dets {
		want := d.Score(raw)
		if got := sr.Results[i].Score; got != want {
			t.Fatalf("%s: streamed score %v != buffered %v", d.Name(), got, want)
		}
		if sr.Results[i].Malicious != d.Label(raw) {
			t.Fatalf("%s: streamed label %v != buffered %v", d.Name(), sr.Results[i].Malicious, d.Label(raw))
		}
	}
	if got := s.metrics.ScansStreamed.Load(); got != 1 {
		t.Fatalf("ScansStreamed = %d, want 1", got)
	}
	if got := s.metrics.StreamedBytes.Load(); got != int64(len(raw)) {
		t.Fatalf("StreamedBytes = %d, want %d", got, len(raw))
	}
	// The streamed result is visible to the buffered pipeline's cache,
	// filed under the generation that streamed it.
	out, ok := s.cache.get(scoreKey{version: s.snap().version, sum: sum})
	if !ok {
		t.Fatal("streamed scan result not cached")
	}
	for i, d := range dets {
		if out.Scores[i] != d.Score(raw) {
			t.Fatalf("%s: cached score %v != %v", d.Name(), out.Scores[i], d.Score(raw))
		}
	}
}

// unsizedReader hides its concrete type so http.NewRequest cannot derive a
// ContentLength — the request goes out chunked, length unknown.
type unsizedReader struct{ io.Reader }

func postChunked(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, unsizedReader{body})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestScanStreamUnknownLength: chunked uploads (ContentLength -1) must take
// the streaming path regardless of size, and score identically.
func TestScanStreamUnknownLength(t *testing.T) {
	s, url, dets := streamServer(t, Config{})

	raw := make([]byte, 300)
	rand.New(rand.NewSource(10)).Read(raw)
	resp, body := postChunked(t, url+"/v1/scan", readerOf(raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d: %s", resp.StatusCode, body)
	}
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if got, want := sr.Results[0].Score, dets[0].Score(raw); got != want {
		t.Fatalf("chunked streamed score %v != %v", got, want)
	}
	if got := s.metrics.ScansStreamed.Load(); got != 1 {
		t.Fatalf("ScansStreamed = %d, want 1", got)
	}

	// A chunked empty body is still a 400, like the buffered path.
	resp, _ = postChunked(t, url+"/v1/scan", readerOf(nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty chunked body: status %d, want 400", resp.StatusCode)
	}
}

func readerOf(b []byte) io.Reader { return &sliceReader{rest: b} }

type sliceReader struct{ rest []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.rest) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.rest)
	r.rest = r.rest[n:]
	return n, nil
}

// TestScanStreamTooLarge: MaxStreamBytes caps the chunked path with 413.
func TestScanStreamTooLarge(t *testing.T) {
	_, url, _ := streamServer(t, Config{StreamThreshold: 64, MaxStreamBytes: 4096})
	raw := make([]byte, 8192)
	resp, body := postBytes(t, url+"/v1/scan", raw)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, body)
	}
}

// TestStreamRequiresStreamers: with detectors that cannot stream (the
// stubs), every scan — even one above the threshold — takes the buffered
// pipeline.
func TestStreamRequiresStreamers(t *testing.T) {
	s, ts := newTestServer(t, Config{StreamThreshold: 16})
	raw := make([]byte, 1024)
	resp, body := postBytes(t, ts.URL+"/v1/scan", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d: %s", resp.StatusCode, body)
	}
	if got := s.metrics.ScansStreamed.Load(); got != 0 {
		t.Fatalf("ScansStreamed = %d, want 0 without streaming detectors", got)
	}
}

// patternReader serves length bytes of a fixed pattern without ever
// holding them — the client side of the O(chunk) memory check.
type patternReader struct{ remaining int64 }

func (r *patternReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remaining {
		n = int(r.remaining)
	}
	for i := 0; i < n; i++ {
		p[i] = byte(i * 131)
	}
	r.remaining -= int64(n)
	return n, nil
}

// TestScanStreamBoundedMemory is the O(chunk) gate: streaming a body far
// larger than the buffered cap must allocate far less than the body size.
// TotalAlloc is monotonic, so the measurement is GC-safe; the generous
// bound leaves room for HTTP plumbing while still ruling out any path that
// buffers the upload.
func TestScanStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 16 MiB")
	}
	_, url, _ := streamServer(t, Config{
		StreamThreshold: 64,
		StreamChunk:     64 << 10,
		MaxStreamBytes:  64 << 20,
		MaxBodyBytes:    1 << 20, // buffered path would refuse this body
	})
	const bodyLen = 16 << 20

	post := func() {
		resp, body := postChunked(t, url+"/v1/scan", &patternReader{remaining: bodyLen})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan status %d: %s", resp.StatusCode, body)
		}
	}
	post() // warm pools, transport, and table caches

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	post()
	runtime.ReadMemStats(&after)
	alloced := int64(after.TotalAlloc - before.TotalAlloc)
	if alloced > bodyLen/4 {
		t.Fatalf("streaming a %d-byte body allocated %d bytes, want < %d",
			int64(bodyLen), alloced, int64(bodyLen/4))
	}
}
