package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpass/internal/core"
	"mpass/internal/detect"
	"mpass/internal/faultinject"
)

// --- registry bounds ---------------------------------------------------

// TestJobRegistryBoundedUnderChurn is the memory-leak regression gate: 10k
// jobs through a capped registry must leave its steady-state size at the
// cap, with the overflow accounted for in the eviction counter.
func TestJobRegistryBoundedUnderChurn(t *testing.T) {
	const (
		churn = 10_000
		cap   = 128
	)
	var m Metrics
	r := newJobRegistry(4, 64, 0, time.Hour, cap, time.Second, &m)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r.shutdown(ctx)
	})

	for i := 0; i < churn; i++ {
		for {
			_, err := r.submit("A", "", "", func(ctx context.Context, h *jobHandle) {
				h.finish([]byte("orig"), &core.Result{Success: false}, nil, "")
			})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("job %d: submit: %v", i, err)
			}
			time.Sleep(100 * time.Microsecond) // pool queue full; let it drain
		}
		if n := r.size(); n > cap {
			t.Fatalf("after %d submissions the registry holds %d jobs, cap %d", i+1, n, cap)
		}
	}

	if n := r.size(); n > cap {
		t.Fatalf("steady-state registry size %d exceeds cap %d", n, cap)
	}
	evicted := m.JobsEvicted.Load()
	if evicted < churn-int64(cap) {
		t.Fatalf("JobsEvicted = %d, want >= %d", evicted, churn-cap)
	}
}

// TestJobRegistryShedsWhenAllLive pins the second admission bound: a
// registry whose cap is consumed entirely by live jobs rejects new submits
// instead of evicting running work.
func TestJobRegistryShedsWhenAllLive(t *testing.T) {
	var m Metrics
	r := newJobRegistry(1, 8, 0, time.Hour, 2, time.Second, &m)
	release := make(chan struct{})
	t.Cleanup(func() {
		close(release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r.shutdown(ctx)
	})

	block := func(ctx context.Context, h *jobHandle) {
		<-release
		h.finish(nil, &core.Result{}, nil, "")
	}
	for i := 0; i < 2; i++ {
		if _, err := r.submit("A", "", "", block); err != nil {
			t.Fatalf("live job %d: %v", i, err)
		}
	}
	if _, err := r.submit("A", "", "", block); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit over a registry full of live jobs returned %v, want ErrOverloaded", err)
	}
	if m.JobsEvicted.Load() != 0 {
		t.Fatal("live jobs were evicted to make room")
	}
}

// TestJobRegistryTTLExpiresFinishedJobs verifies time-based retention: a
// finished job older than the TTL disappears on the next registry touch.
func TestJobRegistryTTLExpiresFinishedJobs(t *testing.T) {
	var m Metrics
	r := newJobRegistry(1, 8, 0, 20*time.Millisecond, 0, time.Second, &m)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r.shutdown(ctx)
	})

	done := make(chan struct{})
	id, err := r.submit("A", "", "", func(ctx context.Context, h *jobHandle) {
		h.finish(nil, &core.Result{}, nil, "")
		close(done)
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-done
	if _, ok := r.view(id, false); !ok {
		t.Fatal("freshly finished job already gone")
	}
	time.Sleep(30 * time.Millisecond)
	if _, ok := r.view(id, false); ok {
		t.Fatal("finished job survived past its TTL")
	}
	if m.JobsEvicted.Load() != 1 {
		t.Fatalf("JobsEvicted = %d, want 1", m.JobsEvicted.Load())
	}
}

// --- JobView JSON contract ---------------------------------------------

// TestJobViewTerminalJSONIsExplicit pins the omitempty fix: terminal states
// must serialize success/queries/rounds even at their zero values, while
// non-terminal states omit them (the outcome does not exist yet).
func TestJobViewTerminalJSONIsExplicit(t *testing.T) {
	var m Metrics
	r := newJobRegistry(1, 8, 0, time.Hour, 0, time.Second, &m)
	release := make(chan struct{})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		r.shutdown(ctx)
	})

	done := make(chan struct{})
	failedID, err := r.submit("A", "", "", func(ctx context.Context, h *jobHandle) {
		h.finish([]byte("orig"), &core.Result{Success: false, Queries: 0, Rounds: 0}, nil, "")
		close(done)
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-done
	queuedID, err := r.submit("A", "", "", func(ctx context.Context, h *jobHandle) {
		<-release
		h.finish(nil, &core.Result{}, nil, "")
	})
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	v, ok := r.view(failedID, false)
	if !ok {
		t.Fatal("finished job vanished")
	}
	raw, _ := json.Marshal(v)
	for _, want := range []string{`"success":false`, `"queries":0`, `"rounds":0`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("terminal JobView %s omits %s", raw, want)
		}
	}

	// The worker is parked on the queued job by now or soon; the view of a
	// non-terminal job must not claim an outcome either way.
	qv, ok := r.view(queuedID, false)
	if !ok {
		t.Fatal("queued job vanished")
	}
	qraw, _ := json.Marshal(qv)
	for _, banned := range []string{`"success"`, `"queries"`, `"rounds"`} {
		if strings.Contains(string(qraw), banned) {
			t.Fatalf("non-terminal JobView %s claims an outcome (%s)", qraw, banned)
		}
	}
	close(release)
}

// --- deadlines and shutdown under fault --------------------------------

// loopingAttack queries the oracle until it errors — the shape of a real
// attack's inner loop, honoring cancellation through the oracle path.
func loopingAttack(maxQueries int) AttackFunc {
	return func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		res := &core.Result{}
		for i := 0; i < maxQueries; i++ {
			res.Queries++
			if _, err := core.QueryOracle(ctx, oracle, append(original, byte(i))); err != nil {
				return res, err
			}
		}
		res.Success = true
		res.AE = original
		return res, nil
	}
}

// pollTerminal polls a job until it leaves the queued/running states.
func pollTerminal(t *testing.T, url string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var v JobView
	for {
		getJSON(t, url, &v)
		if v.State == JobDone || v.State == JobFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", v.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobDeadlineFailsHangingOracleJob is the per-job half of the
// acceptance gate: with a 100%-hang oracle, the configured job deadline
// cancels the attack and the job records a terminal failed state.
func TestJobDeadlineFailsHangingOracleJob(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Attack:      loopingAttack(1 << 20),
		JobDeadline: 150 * time.Millisecond,
		OracleWrap: func(inner core.Oracle) core.Oracle {
			return faultinject.Wrap(inner, faultinject.Config{Seed: 1, HangRate: 1})
		},
	})

	resp, body := postBytes(t, ts.URL+"/v1/attack", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d: %s", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	v := pollTerminal(t, ts.URL+ar.Poll)
	if v.State != JobFailed {
		t.Fatalf("hanging-oracle job finished %q, want failed", v.State)
	}
	if v.Success == nil || *v.Success {
		t.Fatalf("failed job success = %v, want explicit false", v.Success)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("job error %q does not mention the deadline", v.Error)
	}
	if got := s.metrics.JobsCancelled.Load(); got != 1 {
		t.Fatalf("JobsCancelled = %d, want 1", got)
	}
}

// TestShutdownUnderHangingOracleBoundedByJobDeadline is the drain half of
// the acceptance gate: with every oracle query hanging, Shutdown still
// completes within (roughly) the configured job deadline, because the
// deadline cancels the wedged query and the job fails over to a terminal
// state the drain can observe.
func TestShutdownUnderHangingOracleBoundedByJobDeadline(t *testing.T) {
	const jobDeadline = 200 * time.Millisecond
	s, ts := newTestServer(t, Config{
		Attack:      loopingAttack(1 << 20),
		JobDeadline: jobDeadline,
		OracleWrap: func(inner core.Oracle) core.Oracle {
			return faultinject.Wrap(inner, faultinject.Config{Seed: 7, HangRate: 1})
		},
	})

	resp, _ := postBytes(t, ts.URL+"/v1/attack", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d", resp.StatusCode)
	}

	begin := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under a hanging oracle: %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 10*jobDeadline {
		t.Fatalf("shutdown took %v with a %v job deadline", elapsed, jobDeadline)
	}
}

// TestShutdownCancelReapsCtxHonoringJob exercises the forced-shutdown
// lever with no job deadline at all: when the drain deadline expires, the
// pool-wide cancel must reach a hang parked inside the oracle, and the job
// records itself failed within the grace window, so Shutdown returns nil.
func TestShutdownCancelReapsCtxHonoringJob(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Attack:      loopingAttack(1 << 20),
		JobDeadline: -1, // disabled: cancellation is the only way out
		DrainGrace:  2 * time.Second,
		OracleWrap: func(inner core.Oracle) core.Oracle {
			return faultinject.Wrap(inner, faultinject.Config{Seed: 7, HangRate: 1})
		},
	})

	resp, body := postBytes(t, ts.URL+"/v1/attack", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d", resp.StatusCode)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v (cancelled stragglers should drain within grace)", err)
	}
	v, ok := s.jobs.view(ar.ID, false)
	if !ok || v.State != JobFailed {
		t.Fatalf("cancelled job state = %+v (found %v), want failed", v, ok)
	}
	if got := s.metrics.JobsCancelled.Load(); got != 1 {
		t.Fatalf("JobsCancelled = %d, want 1", got)
	}
}

// --- oracle retry and circuit breaker ----------------------------------

var errTransient = errors.New("transient oracle blip")

// transientOracle fails the first attempt of every logical query and
// answers on the retry — the retry layer should mask it completely.
type transientOracle struct {
	inner core.Oracle
	calls atomic.Int64
}

func (o *transientOracle) Name() string             { return o.inner.Name() }
func (o *transientOracle) Detected(raw []byte) bool { return o.inner.Detected(raw) }
func (o *transientOracle) DetectedContext(ctx context.Context, raw []byte) (bool, error) {
	if o.calls.Add(1)%2 == 1 {
		return false, errTransient
	}
	return core.QueryOracle(ctx, o.inner, raw)
}

func TestOracleRetryMasksTransientErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Attack:        loopingAttack(4),
		OracleBackoff: time.Millisecond,
		OracleWrap: func(inner core.Oracle) core.Oracle {
			return &transientOracle{inner: inner}
		},
	})

	resp, body := postBytes(t, ts.URL+"/v1/attack", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d: %s", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	v := pollTerminal(t, ts.URL+ar.Poll)
	if v.State != JobDone {
		t.Fatalf("job finished %q (err %q); retries should have masked every blip", v.State, v.Error)
	}
	if got := s.metrics.OracleRetries.Load(); got != 4 {
		t.Fatalf("OracleRetries = %d, want 4 (one per logical query)", got)
	}
	if got := s.metrics.OracleBreaks.Load(); got != 0 {
		t.Fatalf("OracleBreaks = %d, want 0", got)
	}
}

// deadOracle fails every query — the breaker's trigger.
type deadOracle struct{ inner core.Oracle }

func (o *deadOracle) Name() string             { return o.inner.Name() }
func (o *deadOracle) Detected(raw []byte) bool { return true }
func (o *deadOracle) DetectedContext(context.Context, []byte) (bool, error) {
	return false, errTransient
}

func TestOracleCircuitBreakerFailsJobFast(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Attack:           loopingAttack(1 << 20),
		OracleAttempts:   2,
		OracleBackoff:    time.Millisecond,
		OracleBreakAfter: 3,
		OracleWrap: func(inner core.Oracle) core.Oracle {
			return &deadOracle{inner: inner}
		},
	})

	resp, body := postBytes(t, ts.URL+"/v1/attack", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d: %s", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	v := pollTerminal(t, ts.URL+ar.Poll)
	if v.State != JobFailed {
		t.Fatalf("job against a dead oracle finished %q", v.State)
	}
	if !strings.Contains(v.Error, "circuit open") {
		t.Fatalf("job error %q does not mention the open circuit", v.Error)
	}
	if v.Queries == nil || *v.Queries != 3 {
		t.Fatalf("job burned %v queries, want exactly 3 (breakAfter) before failing fast", v.Queries)
	}
	if got := s.metrics.OracleBreaks.Load(); got != 1 {
		t.Fatalf("OracleBreaks = %d, want 1", got)
	}
	// 3 exhausted queries x (attempts-1) retries each.
	if got := s.metrics.OracleRetries.Load(); got != 3 {
		t.Fatalf("OracleRetries = %d, want 3", got)
	}
}

// --- Retry-After derivation --------------------------------------------

func TestRetryAfterDerivedFromThroughput(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	s.started = time.Now().Add(-10 * time.Second)

	// 10 completions over ~10s -> ~1/s; backlog of 9 plus this request -> ~10s
	// (the uptime clock keeps ticking, so the ceiling may land on 11).
	if got := s.retryAfter(9, 10); got != "10" && got != "11" {
		t.Fatalf("retryAfter(9, 10) = %q, want ~\"10\"", got)
	}
	// Massive backlog clamps at 60.
	if got := s.retryAfter(100_000, 10); got != "60" {
		t.Fatalf("retryAfter(100000, 10) = %q, want \"60\"", got)
	}
	// No history yet falls back to 1.
	if got := s.retryAfter(5, 0); got != "1" {
		t.Fatalf("retryAfter(5, 0) = %q, want \"1\"", got)
	}
	// Fast drains still answer at least 1.
	if got := s.retryAfter(0, 1_000_000); got != "1" {
		t.Fatalf("retryAfter(0, 1e6) = %q, want \"1\"", got)
	}
}
