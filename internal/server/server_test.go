package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpass/internal/core"
	"mpass/internal/detect"
)

// newTestServer builds a Server on stub detectors with an httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Detectors == nil {
		cfg.Detectors = []detect.Detector{
			&stubDetector{name: "A", thr: 0.5},
			&stubDetector{name: "B", thr: 0.2},
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postBytes(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

func TestScanEndpointParityAndCache(t *testing.T) {
	dets := []detect.Detector{
		&stubDetector{name: "A", thr: 0.5},
		&stubDetector{name: "B", thr: 0.2},
	}
	s, ts := newTestServer(t, Config{Detectors: dets})

	raw := []byte("definitely a portable executable")
	resp, body := postBytes(t, ts.URL+"/v1/scan", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d: %s", resp.StatusCode, body)
	}
	var sr scanResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decoding scan response: %v", err)
	}
	sum := sha256.Sum256(raw)
	if sr.SHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("sha256 = %s, want %s", sr.SHA256, hex.EncodeToString(sum[:]))
	}
	if sr.Size != len(raw) || sr.Cached {
		t.Fatalf("size/cached = %d/%v, want %d/false", sr.Size, sr.Cached, len(raw))
	}
	if len(sr.Results) != 2 {
		t.Fatalf("got %d model results, want 2", len(sr.Results))
	}
	anyMal := false
	for i, d := range dets {
		// JSON float64 round-trips exactly, so this is the bit-identical gate.
		if got, want := sr.Results[i].Score, d.Score(raw); got != want {
			t.Fatalf("model %s: served score %v != direct %v", d.Name(), got, want)
		}
		if got, want := sr.Results[i].Malicious, d.Label(raw); got != want {
			t.Fatalf("model %s: served label %v != direct %v", d.Name(), got, want)
		}
		anyMal = anyMal || d.Label(raw)
	}
	if sr.Malicious != anyMal {
		t.Fatalf("aggregate malicious = %v, want %v", sr.Malicious, anyMal)
	}

	// Second scan of the same bytes is a cache hit with identical results.
	resp2, body2 := postBytes(t, ts.URL+"/v1/scan", raw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached scan status %d", resp2.StatusCode)
	}
	var sr2 scanResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatal(err)
	}
	if !sr2.Cached {
		t.Fatal("second scan of identical bytes not served from cache")
	}
	if sr2.Results[0].Score != sr.Results[0].Score || sr2.Results[1].Score != sr.Results[1].Score {
		t.Fatal("cached scores differ from first scan")
	}
	if hits := s.metrics.CacheHits.Load(); hits != 1 {
		t.Fatalf("CacheHits = %d, want 1", hits)
	}
}

func TestScanRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})

	resp, _ := postBytes(t, ts.URL+"/v1/scan", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postBytes(t, ts.URL+"/v1/scan", bytes.Repeat([]byte{0x90}, 128))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
}

// stubAttack returns an AttackFunc that queries the oracle queries times and
// then succeeds with the original bytes plus a marker suffix.
func stubAttack(queries int) AttackFunc {
	return func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		for i := 0; i < queries; i++ {
			if _, err := core.QueryOracle(ctx, oracle, append(original, byte(i))); err != nil {
				return &core.Result{Queries: i}, err
			}
		}
		ae := append(append([]byte(nil), original...), 0xAA, 0xBB)
		return &core.Result{Success: true, AE: ae, Queries: queries, Rounds: 1}, nil
	}
}

func TestAttackJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Attack: stubAttack(3), Seed: 42})

	raw := []byte("victim sample bytes")
	resp, body := postBytes(t, ts.URL+"/v1/attack?target=B", raw)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d: %s", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Target != "B" || ar.ID == "" || ar.Poll != "/v1/jobs/"+ar.ID {
		t.Fatalf("bad attack response: %+v", ar)
	}

	var v JobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+ar.Poll+"?ae=1", &v)
		if v.State == JobDone || v.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.State != JobDone || v.Success == nil || !*v.Success {
		t.Fatalf("job finished %q success=%v (err %q)", v.State, v.Success, v.Error)
	}
	if v.Queries == nil || *v.Queries != 3 || v.Rounds == nil || *v.Rounds != 1 {
		t.Fatalf("queries/rounds = %v/%v, want 3/1", v.Queries, v.Rounds)
	}
	wantAE := append(append([]byte(nil), raw...), 0xAA, 0xBB)
	if v.AESize != len(wantAE) {
		t.Fatalf("ae_size = %d, want %d", v.AESize, len(wantAE))
	}
	gotAE, err := base64.StdEncoding.DecodeString(v.AEBase64)
	if err != nil || !bytes.Equal(gotAE, wantAE) {
		t.Fatalf("ae_base64 did not round-trip the adversarial example (err %v)", err)
	}
	sum := sha256.Sum256(wantAE)
	if v.AESHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("ae_sha256 = %s, want %s", v.AESHA256, hex.EncodeToString(sum[:]))
	}
	wantAPR := 100 * float64(2) / float64(len(raw))
	if v.APRPercent != wantAPR {
		t.Fatalf("apr_percent = %v, want %v", v.APRPercent, wantAPR)
	}
	if got := s.metrics.OracleQueries.Load(); got != 3 {
		t.Fatalf("OracleQueries = %d, want 3", got)
	}

	// Without ?ae=1 the payload stays out of the response.
	var lean JobView
	getJSON(t, ts.URL+ar.Poll, &lean)
	if lean.AEBase64 != "" {
		t.Fatal("ae_base64 leaked without ?ae=1")
	}
}

func TestAttackValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Attack: stubAttack(0)})

	resp, body := postBytes(t, ts.URL+"/v1/attack?target=nope", []byte("x"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown target: status %d: %s", resp.StatusCode, body)
	}
	resp = getJSON(t, ts.URL+"/v1/jobs/job-999999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestAttackDisabledWithoutAttackFunc(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postBytes(t, ts.URL+"/v1/attack", []byte("x"))
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
}

func TestAttackQueueOverloadSheds429(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	blockingAttack := func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		started <- struct{}{}
		<-release
		return &core.Result{Success: false, Queries: 0}, nil
	}
	s, ts := newTestServer(t, Config{
		Attack:        blockingAttack,
		AttackWorkers: 1,
		AttackQueue:   1,
	})

	// Job 1 occupies the single worker ...
	resp, _ := postBytes(t, ts.URL+"/v1/attack", []byte("one"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1 status %d", resp.StatusCode)
	}
	<-started
	// ... job 2 fills the queue ...
	resp, _ = postBytes(t, ts.URL+"/v1/attack", []byte("two"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 status %d", resp.StatusCode)
	}
	// ... and job 3 is shed.
	resp, body := postBytes(t, ts.URL+"/v1/attack", []byte("three"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.metrics.AttackRejected.Load(); got != 1 {
		t.Fatalf("AttackRejected = %d, want 1", got)
	}
	close(release)
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var hz struct {
		Status string   `json:"status"`
		Models []string `json:"models"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &hz)
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, hz)
	}
	if len(hz.Models) != 2 || hz.Models[0] != "A" || hz.Models[1] != "B" {
		t.Fatalf("healthz models = %v", hz.Models)
	}

	for i := 0; i < 3; i++ {
		postBytes(t, ts.URL+"/v1/scan", []byte(fmt.Sprintf("sample-%d", i)))
	}
	var snap MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.ScanRequests != 3 {
		t.Fatalf("scan_requests = %d, want 3", snap.ScanRequests)
	}
	if snap.Batches == 0 || snap.BatchedRaws != 3 {
		t.Fatalf("batches/batched_raws = %d/%d", snap.Batches, snap.BatchedRaws)
	}
	if snap.ScanLatency.Count != 3 || len(snap.ScanLatency.Counts) != len(histBounds)+1 {
		t.Fatalf("latency histogram count=%d buckets=%d", snap.ScanLatency.Count, len(snap.ScanLatency.Counts))
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a config with no detectors")
	}
	_, err := New(Config{Detectors: []detect.Detector{
		&stubDetector{name: "dup"}, &stubDetector{name: "dup"},
	}})
	if err == nil {
		t.Fatal("New accepted duplicate detector names")
	}
}
