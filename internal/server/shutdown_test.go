package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mpass/internal/core"
	"mpass/internal/detect"
)

// TestGracefulShutdownDrainsInFlightWork is the graceful-shutdown gate:
// with a scan mid-flush and an attack job mid-run, Shutdown must reject new
// requests immediately, let both in-flight pieces finish, and return within
// the drain deadline.
func TestGracefulShutdownDrainsInFlightWork(t *testing.T) {
	inner := &stubDetector{name: "A", thr: 0.5}
	gate := &gatedDetector{
		Detector: inner,
		entered:  make(chan int, 8),
		release:  make(chan struct{}, 8),
	}
	attackStarted := make(chan struct{})
	attackRelease := make(chan struct{})
	// The in-flight attack deliberately skips oracle queries: its drain must
	// not depend on the batcher, which the test is holding hostage.
	blockingAttack := func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		close(attackStarted)
		<-attackRelease
		ae := append(append([]byte(nil), original...), 0xCC)
		return &core.Result{Success: true, AE: ae, Queries: 0, Rounds: 1}, nil
	}

	s, err := New(Config{
		Detectors: []detect.Detector{gate},
		Attack:    blockingAttack,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// In-flight attack job.
	resp, body := postBytes(t, ts.URL+"/v1/attack", []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d: %s", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	<-attackStarted

	// In-flight scan, parked inside the gated flush.
	scanDone := make(chan *http.Response, 1)
	go func() {
		r, _ := postBytes(t, ts.URL+"/v1/scan", []byte("mid-flight sample"))
		scanDone <- r
	}()
	<-gate.entered

	const drainDeadline = 10 * time.Second
	shutdownDone := make(chan error, 1)
	begin := time.Now()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), drainDeadline)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Draining flips synchronously-enough: wait for /healthz to report it.
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		r, _ := http.Get(ts.URL + "/healthz")
		r.Body.Close()
		if r.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while draining.
	if r, _ := postBytes(t, ts.URL+"/v1/scan", []byte("late scan")); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("scan during drain: status %d, want 503", r.StatusCode)
	}
	if r, _ := postBytes(t, ts.URL+"/v1/attack", []byte("late attack")); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("attack during drain: status %d, want 503", r.StatusCode)
	}

	// Let the in-flight attack finish; the job drain completes, then the
	// batcher close waits on the parked flush, which we release next.
	close(attackRelease)
	gate.release <- struct{}{}

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(drainDeadline):
		t.Fatal("Shutdown did not return within the drain deadline")
	}
	if elapsed := time.Since(begin); elapsed >= drainDeadline {
		t.Fatalf("drain took %v, deadline %v", elapsed, drainDeadline)
	}

	// The in-flight scan completed with a real result.
	select {
	case r := <-scanDone:
		if r.StatusCode != http.StatusOK {
			t.Fatalf("in-flight scan finished with status %d", r.StatusCode)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight scan never completed")
	}

	// The in-flight attack job reached a terminal state; polling still works
	// after drain so clients can collect results.
	var v JobView
	getJSON(t, ts.URL+ar.Poll, &v)
	if v.State != JobDone || v.Success == nil || !*v.Success {
		t.Fatalf("in-flight job finished %q success=%v", v.State, v.Success)
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestShutdownDeadlineExpiresOnStuckJob pins the bounded half of the drain
// contract: a job that never finishes makes Shutdown return ctx's error at
// the deadline instead of hanging forever.
func TestShutdownDeadlineExpiresOnStuckJob(t *testing.T) {
	stuck := make(chan struct{})
	t.Cleanup(func() { close(stuck) })
	s, err := New(Config{
		Detectors: []detect.Detector{&stubDetector{name: "A", thr: 0.5}},
		// This attack ignores its context entirely — the worst-behaved job the
		// drain contract must still bound.
		Attack: func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
			<-stuck
			return &core.Result{}, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := postBytes(t, ts.URL+"/v1/attack", []byte("x")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != context.DeadlineExceeded {
			t.Fatalf("Shutdown returned %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung past its deadline")
	}
}
