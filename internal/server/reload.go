// POST /v1/models/reload — zero-downtime model hot-reload. The handler asks
// the configured loader for a candidate engine set, certifies it (every
// engine healthy, every probe score finite, quantized tables within their
// certified tolerance of the float path), and only then swaps the serving
// snapshot atomically. In-flight requests finish on the old generation, new
// requests see the new one, and the score cache is purged so no
// stale-generation score survives the swap. A candidate that fails
// certification is rejected with 422 and the old generation keeps serving —
// a bad model file can never take the scanner down.
package server

import (
	"fmt"
	"math"
	"net/http"

	"mpass/internal/corpus"
	"mpass/internal/engine"
	"mpass/internal/nn"
)

// reloadResponse is the POST /v1/models/reload response document.
type reloadResponse struct {
	Swapped         bool           `json:"swapped"`
	PreviousVersion string         `json:"previous_version"`
	ModelVersion    string         `json:"model_version"`
	Engines         []EngineHealth `json:"engines"`
	ProbeSamples    int            `json:"probe_samples"`
	CachePurged     int            `json:"cache_purged"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.cfg.Reload == nil {
		writeError(w, http.StatusNotImplemented, "reload disabled (no loader configured)")
		return
	}
	// Reloads serialize: concurrent swaps would race certification against
	// the generation they certify. Scans and attacks never take this lock.
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()

	next, err := s.cfg.Reload(r.URL.Query().Get("path"))
	if err == nil && next == nil {
		err = fmt.Errorf("loader returned no set")
	}
	if err != nil {
		s.metrics.ReloadFailures.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "loading model set: "+err.Error())
		return
	}
	// Incoming engines serve in the configured fixed-point mode; apply it
	// before certification so the parity gate checks exactly what will serve.
	for _, d := range next.Drivers() {
		if q, ok := engine.QuantizerOf(d); ok {
			q.SetQuantMode(s.cfg.Quant)
		}
	}
	if err := s.certify(next); err != nil {
		s.metrics.ReloadFailures.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "certification failed: "+err.Error())
		return
	}

	prev := s.snap()
	ms := newModelSetFromEngines(next, s.cfg.StreamThreshold < 0)
	if s.registry != nil {
		// Keep the registry in step with the serving snapshot; next is
		// non-nil, so Swap cannot fail.
		//lint:ignore snapshotonce Swap reads the old generation to return it; the reload path intentionally touches both generations, and scans never reach this handler
		s.registry.Swap(next)
	}
	s.models.Store(ms)
	purged := s.cache.purge()
	s.metrics.CachePurged.Add(int64(purged))
	s.metrics.Reloads.Add(1)
	writeJSON(w, http.StatusOK, reloadResponse{
		Swapped:         true,
		PreviousVersion: prev.version,
		ModelVersion:    ms.version,
		Engines:         ms.engineHealth(),
		ProbeSamples:    len(s.probes),
		CachePurged:     purged,
	})
}

// certify gates a swap on the candidate set: every engine must report
// healthy, score every probe sample to a finite value, and — when a
// fixed-point table mode is serving — stay within the mode's certified
// tolerance of its own float path with no label flips across the engine's
// threshold. The old generation keeps serving while this runs.
func (s *Server) certify(next *engine.Set) error {
	for _, d := range next.Drivers() {
		if err := d.Health(); err != nil {
			return fmt.Errorf("engine %s: %w", d.Name(), err)
		}
	}
	if len(s.probes) == 0 {
		return nil
	}
	for _, d := range next.Drivers() {
		scores := d.ScoreBatch(s.probes)
		if len(scores) != len(s.probes) {
			return fmt.Errorf("engine %s: %d scores for %d probes", d.Name(), len(scores), len(s.probes))
		}
		for i, sc := range scores {
			if math.IsNaN(sc) || math.IsInf(sc, 0) {
				return fmt.Errorf("engine %s: non-finite score %v on probe %d", d.Name(), sc, i)
			}
		}
		if s.cfg.Quant == nn.QuantOff {
			continue
		}
		q, ok := engine.QuantizerOf(d)
		if !ok {
			continue
		}
		// Quant-mode parity: the quantized scores just computed against the
		// float reference, restoring the serving mode afterwards.
		q.SetQuantMode(nn.QuantOff)
		ref := d.ScoreBatch(s.probes)
		q.SetQuantMode(s.cfg.Quant)
		tol := 1e-6
		if s.cfg.Quant == nn.QuantInt16 {
			tol = 1e-3
		}
		thr := d.Threshold()
		for i := range ref {
			if diff := math.Abs(scores[i] - ref[i]); diff > tol {
				return fmt.Errorf("engine %s: %v deviates %.3g from the float path on probe %d (tolerance %.0g)",
					d.Name(), s.cfg.Quant, diff, i, tol)
			}
			if (scores[i] >= thr) != (ref[i] >= thr) {
				return fmt.Errorf("engine %s: %v flips the label on probe %d", d.Name(), s.cfg.Quant, i)
			}
		}
	}
	return nil
}

// defaultProbeCorpus synthesizes the certification corpus when the embedder
// does not supply one: a deterministic handful of benign and malicious
// samples from the synthetic generator, enough to catch NaN weights and
// broken quant tables without making reloads slow.
func defaultProbeCorpus() [][]byte {
	g := corpus.NewGenerator(4242)
	probes := make([][]byte, 0, 8)
	for i := 0; i < 4; i++ {
		probes = append(probes, g.Sample(corpus.Benign).Raw, g.Sample(corpus.Malware).Raw)
	}
	return probes
}
