package server

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"mpass/internal/core"
	"mpass/internal/parallel"
	"mpass/internal/sandbox"
)

// JobState is an attack job's lifecycle stage.
type JobState string

// Job lifecycle: queued -> running -> done | failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is the registry's mutable record; reads and writes go through the
// registry mutex.
type job struct {
	id     string
	target string
	state  JobState

	created  time.Time
	started  time.Time
	finished time.Time

	// attack outcome
	success    bool
	queries    int
	rounds     int
	ae         []byte
	aprPercent float64
	functional *bool // sandbox verdict on successful AEs
	errMsg     string
}

// JobView is the JSON form of a job returned by GET /v1/jobs/{id}.
type JobView struct {
	ID      string   `json:"id"`
	Target  string   `json:"target"`
	State   JobState `json:"state"`
	Created string   `json:"created"`

	Success    bool    `json:"success,omitempty"`
	Queries    int     `json:"queries,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`
	AESize     int     `json:"ae_size,omitempty"`
	AESHA256   string  `json:"ae_sha256,omitempty"`
	AEBase64   string  `json:"ae_base64,omitempty"`
	APRPercent float64 `json:"apr_percent,omitempty"`
	Functional *bool   `json:"functionality_preserved,omitempty"`
	Error      string  `json:"error,omitempty"`
	ElapsedMs  float64 `json:"elapsed_ms,omitempty"`
}

// jobRegistry tracks attack jobs and runs them on a bounded parallel.Pool.
// The pool's queue is the admission bound: a full queue rejects the job at
// submission time and the HTTP layer answers 429.
type jobRegistry struct {
	mu   sync.Mutex
	jobs map[string]*job
	seq  int64
	pool *parallel.Pool
}

func newJobRegistry(workers, queue int) *jobRegistry {
	return &jobRegistry{
		jobs: make(map[string]*job),
		pool: parallel.NewPool(workers, queue),
	}
}

// submit registers a job and queues run; it returns ErrOverloaded when the
// pool queue is full and ErrClosed once the registry drains.
func (r *jobRegistry) submit(target string, run func(j *jobHandle)) (string, error) {
	r.mu.Lock()
	r.seq++
	j := &job{
		id:      fmt.Sprintf("job-%06d", r.seq),
		target:  target,
		state:   JobQueued,
		created: time.Now(),
	}
	r.jobs[j.id] = j
	r.mu.Unlock()

	h := &jobHandle{reg: r, id: j.id}
	ok := r.pool.TrySubmit(func() {
		h.setRunning()
		run(h)
	})
	if !ok {
		r.mu.Lock()
		delete(r.jobs, j.id)
		r.mu.Unlock()
		return "", ErrOverloaded
	}
	return j.id, nil
}

// view snapshots a job for the HTTP layer.
func (r *jobRegistry) view(id string, includeAE bool) (JobView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return JobView{}, false
	}
	v := JobView{
		ID:      j.id,
		Target:  j.target,
		State:   j.state,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.state == JobDone || j.state == JobFailed {
		v.Success = j.success
		v.Queries = j.queries
		v.Rounds = j.rounds
		v.Error = j.errMsg
		v.ElapsedMs = float64(j.finished.Sub(j.started)) / 1e6
		if j.success {
			v.AESize = len(j.ae)
			sum := sha256.Sum256(j.ae)
			v.AESHA256 = hex.EncodeToString(sum[:])
			v.APRPercent = j.aprPercent
			v.Functional = j.functional
			if includeAE {
				v.AEBase64 = base64.StdEncoding.EncodeToString(j.ae)
			}
		}
	}
	return v, true
}

// drain stops admission and waits for queued and running jobs within ctx.
func (r *jobRegistry) drain(ctx context.Context) error { return r.pool.Drain(ctx) }

// jobHandle lets the runner update its record without touching the map.
type jobHandle struct {
	reg *jobRegistry
	id  string
}

func (h *jobHandle) update(fn func(j *job)) {
	h.reg.mu.Lock()
	defer h.reg.mu.Unlock()
	if j, ok := h.reg.jobs[h.id]; ok {
		fn(j)
	}
}

func (h *jobHandle) setRunning() {
	h.update(func(j *job) {
		j.state = JobRunning
		j.started = time.Now()
	})
}

// finish records an attack result (or error) and flips the terminal state.
func (h *jobHandle) finish(original []byte, res *core.Result, err error) {
	var functional *bool
	if err == nil && res.Success {
		if ok, serr := sandbox.BehaviourPreserved(original, res.AE); serr == nil {
			functional = &ok
		}
	}
	h.update(func(j *job) {
		j.finished = time.Now()
		if err != nil {
			j.state = JobFailed
			j.errMsg = err.Error()
			return
		}
		j.state = JobDone
		j.success = res.Success
		j.queries = res.Queries
		j.rounds = res.Rounds
		if res.Success {
			j.ae = res.AE
			j.aprPercent = 100 * float64(len(res.AE)-len(original)) / float64(len(original))
			j.functional = functional
		}
	})
}
