package server

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpass/internal/core"
	"mpass/internal/parallel"
	"mpass/internal/sandbox"
)

// JobState is an attack job's lifecycle stage.
type JobState string

// Job lifecycle: queued -> running -> done | failed.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// job is the registry's mutable record; reads and writes go through the
// registry mutex.
type job struct {
	id     string
	target string
	tenant string // submitting tenant ("" on single-tenant servers)
	state  JobState

	// modelVersion is the generation the job was submitted against;
	// finishedVersion is the one its oracle was answering from when it
	// finished. They differ exactly when a hot reload landed mid-attack.
	modelVersion    string
	finishedVersion string

	created  time.Time
	started  time.Time
	finished time.Time

	// attack outcome
	success    bool
	queries    int
	rounds     int
	ae         []byte
	aprPercent float64
	functional *bool // sandbox verdict on successful AEs
	errMsg     string
}

// JobView is the JSON form of a job returned by GET /v1/jobs/{id}.
//
// Success, Queries, and Rounds are pointers so terminal states emit them
// explicitly: a finished-but-unsuccessful job reports "success": false and
// "queries": 0 rather than dropping the keys, which would make failure
// indistinguishable from missing data. For queued/running jobs they are
// omitted — the outcome does not exist yet.
type JobView struct {
	ID      string   `json:"id"`
	Target  string   `json:"target"`
	Tenant  string   `json:"tenant,omitempty"`
	State   JobState `json:"state"`
	Created string   `json:"created"`

	// ModelVersion is the generation the job was submitted against.
	// ModelVersionAtFinish appears only when a hot reload swapped the
	// resident set while the attack ran — the queries that produced the
	// result straddled generations, which a reproducibility audit needs to
	// know.
	ModelVersion         string `json:"model_version,omitempty"`
	ModelVersionAtFinish string `json:"model_version_at_finish,omitempty"`

	Success    *bool   `json:"success,omitempty"`
	Queries    *int    `json:"queries,omitempty"`
	Rounds     *int    `json:"rounds,omitempty"`
	AESize     int     `json:"ae_size,omitempty"`
	AESHA256   string  `json:"ae_sha256,omitempty"`
	AEBase64   string  `json:"ae_base64,omitempty"`
	APRPercent float64 `json:"apr_percent,omitempty"`
	Functional *bool   `json:"functionality_preserved,omitempty"`
	Error      string  `json:"error,omitempty"`
	ElapsedMs  float64 `json:"elapsed_ms,omitempty"`
}

// jobRegistry tracks attack jobs and runs them on a bounded parallel.Pool.
// The pool's queue is the admission bound for in-flight work, and the
// registry itself is bounded too: finished jobs are retained for ttl and
// evicted lazily (oldest first) whenever the map would exceed maxJobs, so a
// long-lived daemon under job churn holds a steady-state registry instead
// of leaking every result ever produced.
type jobRegistry struct {
	mu   sync.Mutex
	jobs map[string]*job //mpass:guardedby mu
	// finished holds job ids in finish order (the eviction queue); fhead is
	// the index of the oldest un-evicted entry.
	finished []string //mpass:guardedby mu
	fhead    int      //mpass:guardedby mu
	seq      int64    //mpass:guardedby mu
	pool     *parallel.Pool

	deadline time.Duration // per-job runtime cap (0 = none)
	ttl      time.Duration // finished-job retention (0 = keep until cap)
	maxJobs  int           // registry size cap (0 = unbounded)
	grace    time.Duration // post-cancel wait during a forced shutdown

	metrics *Metrics
}

func newJobRegistry(workers, queue int, deadline, ttl time.Duration, maxJobs int, grace time.Duration, m *Metrics) *jobRegistry {
	return &jobRegistry{
		jobs:     make(map[string]*job),
		pool:     parallel.NewPool(workers, queue),
		deadline: deadline,
		ttl:      ttl,
		maxJobs:  maxJobs,
		grace:    grace,
		metrics:  m,
	}
}

// evictLocked drops finished jobs that have outlived ttl, then keeps
// evicting oldest-finished-first while the registry (plus `need` incoming
// entries) would exceed maxJobs. Live jobs are never evicted. Callers hold
// r.mu.
func (r *jobRegistry) evictLocked(now time.Time, need int) {
	for r.fhead < len(r.finished) {
		id := r.finished[r.fhead]
		j, ok := r.jobs[id]
		if !ok {
			r.fhead++
			continue
		}
		expired := r.ttl > 0 && now.Sub(j.finished) >= r.ttl
		overCap := r.maxJobs > 0 && len(r.jobs)+need > r.maxJobs
		if !expired && !overCap {
			break
		}
		delete(r.jobs, id)
		r.fhead++
		r.metrics.JobsEvicted.Add(1)
	}
	// Compact the drained prefix so the eviction queue's backing array does
	// not itself become the leak.
	if r.fhead > 1024 && r.fhead*2 > len(r.finished) {
		r.finished = append(r.finished[:0], r.finished[r.fhead:]...)
		r.fhead = 0
	}
}

// size reports the current registry entry count (live + retained finished).
func (r *jobRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.jobs)
}

// submit registers a job and queues run. The job's context is derived from
// the pool (cancelled on forced shutdown) and bounded by the configured
// per-job deadline. It returns ErrOverloaded when the pool queue or the
// registry is full of live work, and ErrClosed once the registry drains.
func (r *jobRegistry) submit(target, modelVersion, tenant string, run func(ctx context.Context, j *jobHandle)) (string, error) {
	now := time.Now()
	r.mu.Lock()
	r.evictLocked(now, 1)
	if r.maxJobs > 0 && len(r.jobs)+1 > r.maxJobs {
		// Every remaining entry is live (queued or running) — the registry
		// cap is doing its job as a second admission bound.
		r.mu.Unlock()
		return "", ErrOverloaded
	}
	r.seq++
	j := &job{
		id:           fmt.Sprintf("job-%06d", r.seq),
		target:       target,
		tenant:       tenant,
		state:        JobQueued,
		modelVersion: modelVersion,
		created:      now,
	}
	r.jobs[j.id] = j
	r.mu.Unlock()

	h := &jobHandle{reg: r, id: j.id}
	err := r.pool.TrySubmitCtx(func(ctx context.Context) {
		if r.deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, r.deadline)
			defer cancel()
		}
		h.setRunning()
		run(ctx, h)
	})
	if err != nil {
		r.mu.Lock()
		delete(r.jobs, j.id)
		r.mu.Unlock()
		if errors.Is(err, parallel.ErrPoolClosed) {
			return "", ErrClosed
		}
		return "", ErrOverloaded
	}
	return j.id, nil
}

// view snapshots a job for the HTTP layer. TTL eviction also runs here so
// retention is enforced on read-heavy, submit-quiet servers.
func (r *jobRegistry) view(id string, includeAE bool) (JobView, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(time.Now(), 0)
	j, ok := r.jobs[id]
	if !ok {
		return JobView{}, false
	}
	v := JobView{
		ID:           j.id,
		Target:       j.target,
		Tenant:       j.tenant,
		State:        j.state,
		Created:      j.created.UTC().Format(time.RFC3339Nano),
		ModelVersion: j.modelVersion,
	}
	if j.finishedVersion != "" && j.finishedVersion != j.modelVersion {
		v.ModelVersionAtFinish = j.finishedVersion
	}
	if j.state == JobDone || j.state == JobFailed {
		success, queries, rounds := j.success, j.queries, j.rounds
		v.Success = &success
		v.Queries = &queries
		v.Rounds = &rounds
		v.Error = j.errMsg
		v.ElapsedMs = float64(j.finished.Sub(j.started)) / 1e6
		if j.success {
			v.AESize = len(j.ae)
			sum := sha256.Sum256(j.ae)
			v.AESHA256 = hex.EncodeToString(sum[:])
			v.APRPercent = j.aprPercent
			v.Functional = j.functional
			if includeAE {
				v.AEBase64 = base64.StdEncoding.EncodeToString(j.ae)
			}
		}
	}
	return v, true
}

// shutdown bounds the drain: first a graceful wait for queued and running
// jobs within ctx; if the deadline expires with stragglers, their contexts
// are cancelled and ctx-honoring jobs get grace to unwind (recording
// themselves as failed) before the original deadline error is surfaced.
// A nil return means every job reached a terminal state.
func (r *jobRegistry) shutdown(ctx context.Context) error {
	err := r.pool.Drain(ctx)
	if err == nil {
		return nil
	}
	r.pool.Cancel()
	// The grace window is deliberately decoupled from the caller's expired
	// context: it exists to reap tasks that honor cancellation promptly.
	//lint:ignore ctxflow bounded post-cancel grace after the caller's ctx already expired
	gctx, cancel := context.WithTimeout(context.Background(), r.grace)
	defer cancel()
	if r.pool.Drain(gctx) == nil {
		return nil
	}
	return err
}

// jobHandle lets the runner update its record without touching the map.
type jobHandle struct {
	reg *jobRegistry
	id  string
}

func (h *jobHandle) update(fn func(j *job)) {
	h.reg.mu.Lock()
	defer h.reg.mu.Unlock()
	if j, ok := h.reg.jobs[h.id]; ok {
		fn(j)
	}
}

func (h *jobHandle) setRunning() {
	h.update(func(j *job) {
		j.state = JobRunning
		j.started = time.Now()
	})
}

// finish records an attack result (or error) and flips the terminal state.
// A partial result attached to an error (cancelled or oracle-failed attack)
// still has its query/round spend recorded. modelVersion is the generation
// the job's oracle ended on (empty when unknown).
func (h *jobHandle) finish(original []byte, res *core.Result, err error, modelVersion string) {
	var functional *bool
	if err == nil && res.Success {
		if ok, serr := sandbox.BehaviourPreserved(original, res.AE); serr == nil {
			functional = &ok
		}
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		h.reg.metrics.JobsCancelled.Add(1)
	}
	h.update(func(j *job) {
		j.finished = time.Now()
		j.finishedVersion = modelVersion
		if res != nil {
			j.queries = res.Queries
			j.rounds = res.Rounds
		}
		if err != nil {
			j.state = JobFailed
			j.errMsg = err.Error()
			return
		}
		j.state = JobDone
		j.success = res.Success
		if res.Success {
			j.ae = res.AE
			j.aprPercent = 100 * float64(len(res.AE)-len(original)) / float64(len(original))
			j.functional = functional
		}
	})
	h.reg.mu.Lock()
	h.reg.finished = append(h.reg.finished, h.id)
	h.reg.mu.Unlock()
}
