package server

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestHealthzEnriched pins the machine-readable health document: model
// version, drain state, and queue depths — the signals the gateway's health
// checker and least-loaded picker consume — while the original bare
// contract (200 serving, 503 draining) stays intact.
func TestHealthzEnriched(t *testing.T) {
	s, ts := newTestServer(t, Config{ModelVersion: "test-v42", AttackQueue: 7})

	var h HealthStatus
	resp := getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("healthz = %+v, want status ok / not draining", h)
	}
	if h.ModelVersion != "test-v42" {
		t.Fatalf("model_version = %q, want test-v42", h.ModelVersion)
	}
	if len(h.Models) != 2 {
		t.Fatalf("models = %v, want the 2 stub detectors", h.Models)
	}
	if h.ScanQueueCap != 256 || h.JobsCap != 7 {
		t.Fatalf("caps = scan %d jobs %d, want 256 / 7", h.ScanQueueCap, h.JobsCap)
	}
	if h.ScanQueue < 0 || h.JobsPending != 0 || h.JobsRegistry != 0 {
		t.Fatalf("idle queue depths = %+v, want zeros", h)
	}

	// Draining flips both the JSON state and the status code.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp = getJSON(t, ts.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("draining healthz = %+v, want draining", h)
	}
}

// TestHealthzDefaultModelVersion pins the unconfigured fallback: a stable
// digest of the detector names, identical across replicas of the same suite.
func TestHealthzDefaultModelVersion(t *testing.T) {
	_, ts1 := newTestServer(t, Config{})
	_, ts2 := newTestServer(t, Config{})
	var h1, h2 HealthStatus
	getJSON(t, ts1.URL+"/healthz", &h1)
	getJSON(t, ts2.URL+"/healthz", &h2)
	if h1.ModelVersion == "" || h1.ModelVersion != h2.ModelVersion {
		t.Fatalf("default model versions %q vs %q, want equal and non-empty",
			h1.ModelVersion, h2.ModelVersion)
	}
}
