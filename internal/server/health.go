// Enriched health endpoint: GET /healthz answers a machine-readable
// HealthStatus so a fronting gateway can do more than liveness-probe — the
// document carries the model version (replica-set consistency checks), the
// drain state, and live queue depths (the least-loaded job-placement
// signal). The original bare contract is preserved exactly: 200 while
// serving, 503 while draining, so probes that only look at the status code
// keep working unchanged.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strings"
	"time"
)

// HealthStatus is the GET /healthz response document. internal/gateway
// decodes the same type, so the two sides cannot drift apart silently.
type HealthStatus struct {
	// Status is "ok" while serving and "draining" once shutdown begins
	// (the response code mirrors it: 200 vs 503).
	Status string `json:"status"`
	// Models lists the resident detectors in scan-response order.
	Models []string `json:"models"`
	// ModelVersion identifies the resident weight set (Config.ModelVersion,
	// or a digest of the model names when unset). Replicas in one fleet
	// should agree; the gateway surfaces mismatches.
	ModelVersion string  `json:"model_version"`
	Draining     bool    `json:"draining"`
	UptimeS      float64 `json:"uptime_s"`

	// Queue depths — the load signal a gateway's least-loaded picker and
	// cluster backpressure estimator consume.
	ScanQueue    int `json:"scan_queue"`     // scans waiting for the dispatcher
	ScanQueueCap int `json:"scan_queue_cap"` // admission bound (429 beyond)
	JobsQueued   int `json:"jobs_queued"`    // attack jobs waiting for a worker
	JobsPending  int `json:"jobs_pending"`   // attack jobs queued + running
	JobsCap      int `json:"jobs_cap"`       // attack admission bound
	JobsRegistry int `json:"jobs_registry"`  // live + retained finished jobs
}

// modelVersion resolves the advertised model version: the configured one,
// or a stable digest of the detector names so even an unconfigured replica
// advertises something comparable across a fleet.
func (s *Server) modelVersion() string {
	if s.cfg.ModelVersion != "" {
		return s.cfg.ModelVersion
	}
	sum := sha256.Sum256([]byte(strings.Join(s.names, "\x00")))
	return "models-" + hex.EncodeToString(sum[:8])
}

// health snapshots the serving state for /healthz.
func (s *Server) health() HealthStatus {
	draining := s.draining.Load()
	status := "ok"
	if draining {
		status = "draining"
	}
	return HealthStatus{
		Status:       status,
		Models:       s.names,
		ModelVersion: s.modelVersion(),
		Draining:     draining,
		UptimeS:      time.Since(s.started).Seconds(),
		ScanQueue:    len(s.batcher.reqs),
		ScanQueueCap: s.cfg.ScanQueue,
		JobsQueued:   s.jobs.pool.Queued(),
		JobsPending:  s.jobs.pool.Pending(),
		JobsCap:      s.cfg.AttackQueue,
		JobsRegistry: s.jobs.size(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
