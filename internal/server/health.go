// Enriched health endpoint: GET /healthz answers a machine-readable
// HealthStatus so a fronting gateway can do more than liveness-probe — the
// document carries the model-set version and per-engine versions
// (replica-set consistency checks across hot reloads), the drain state, and
// live queue depths (the least-loaded job-placement signal). The original
// bare contract is preserved exactly: 200 while serving, 503 while draining,
// so probes that only look at the status code keep working unchanged.
package server

import (
	"net/http"
	"time"
)

// EngineHealth is one resident engine's health line on /healthz: its name,
// its content-addressed weight version, and whether it currently reports
// healthy. internal/gateway surfaces these per replica, so a fleet operator
// can see exactly which engine generation every replica is serving.
type EngineHealth struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// HealthStatus is the GET /healthz response document. internal/gateway
// decodes the same type, so the two sides cannot drift apart silently.
type HealthStatus struct {
	// Status is "ok" while serving and "draining" once shutdown begins
	// (the response code mirrors it: 200 vs 503).
	Status string `json:"status"`
	// Models lists the resident detectors in scan-response order.
	Models []string `json:"models"`
	// ModelVersion identifies the resident model generation: the engine
	// set's content-addressed version on registry-backed servers (it moves
	// on every hot reload), or Config.ModelVersion / a name digest on static
	// ones. Replicas in one fleet should agree; the gateway surfaces
	// mismatches.
	ModelVersion string `json:"model_version"`
	// Engines carries per-engine name/version/health for the resident set,
	// in scan-response order.
	Engines  []EngineHealth `json:"engines,omitempty"`
	Draining bool           `json:"draining"`
	UptimeS  float64        `json:"uptime_s"`

	// Queue depths — the load signal a gateway's least-loaded picker and
	// cluster backpressure estimator consume.
	ScanQueue    int `json:"scan_queue"`     // scans waiting for the dispatcher
	ScanQueueCap int `json:"scan_queue_cap"` // admission bound (429 beyond)
	JobsQueued   int `json:"jobs_queued"`    // attack jobs waiting for a worker
	JobsPending  int `json:"jobs_pending"`   // attack jobs queued + running
	JobsCap      int `json:"jobs_cap"`       // attack admission bound
	JobsRegistry int `json:"jobs_registry"`  // live + retained finished jobs
}

// health snapshots the serving state for /healthz. The whole document is
// built from one model-set snapshot, so a reload landing mid-probe cannot
// produce a mixed-generation answer.
func (s *Server) health() HealthStatus {
	ms := s.snap()
	draining := s.draining.Load()
	status := "ok"
	if draining {
		status = "draining"
	}
	return HealthStatus{
		Status:       status,
		Models:       ms.names,
		ModelVersion: ms.version,
		Engines:      ms.engineHealth(),
		Draining:     draining,
		UptimeS:      time.Since(s.started).Seconds(),
		ScanQueue:    len(s.batcher.reqs),
		ScanQueueCap: s.cfg.ScanQueue,
		JobsQueued:   s.jobs.pool.Queued(),
		JobsPending:  s.jobs.pool.Pending(),
		JobsCap:      s.cfg.AttackQueue,
		JobsRegistry: s.jobs.size(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	code := http.StatusOK
	if h.Draining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
