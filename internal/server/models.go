// The resident-model snapshot: every request path — buffered scan batch,
// streaming scan, attack-oracle query, health probe — resolves the model set
// through one atomic load of a *modelSet, an immutable per-generation view.
// A handler that loads the snapshot keeps it for the whole request, so a hot
// reload landing mid-flight can never mix generations inside one response:
// in-flight work finishes on the old snapshot while new work sees the new
// one, with no locks on the hot path.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"mpass/internal/detect"
	"mpass/internal/engine"
)

// modelSet is one resident model generation, frozen at build time.
type modelSet struct {
	dets   []detect.Detector
	names  []string
	byName map[string]int
	// version identifies this exact generation; it keys the score cache and
	// stamps scan responses, job records, and /healthz.
	version string

	// Streaming scan path, resolved once per generation: non-nil only when
	// every member can stream and label (Streamer + Thresholder).
	streamers  []detect.Streamer
	thresholds []float64

	// drivers is non-nil for registry-backed sets; per-engine versions and
	// health derive from it. Static (Config.Detectors) sets leave it nil and
	// synthesize engine entries from the set version.
	drivers []engine.Driver
}

// snap loads the active model generation. Callers hold the returned pointer
// for the whole request so one request never spans a swap.
func (s *Server) snap() *modelSet { return s.models.Load() }

// newModelSetFromEngines builds the serving snapshot for one engine-set
// generation.
func newModelSetFromEngines(es *engine.Set, streamOff bool) *modelSet {
	ms := &modelSet{
		dets:    es.Detectors(),
		names:   es.Names(),
		byName:  make(map[string]int, es.Len()),
		version: es.Version(),
		drivers: es.Drivers(),
	}
	for i, n := range ms.names {
		ms.byName[n] = i
	}
	ms.resolveStreamers(streamOff)
	return ms
}

// newModelSetStatic wraps a fixed detector slice (legacy Config.Detectors
// servers). An empty version derives a stable digest of the detector names,
// so even an unconfigured replica advertises something comparable across a
// fleet.
func newModelSetStatic(dets []detect.Detector, version string, streamOff bool) (*modelSet, error) {
	if len(dets) == 0 {
		return nil, fmt.Errorf("server: no detectors configured")
	}
	ms := &modelSet{
		dets:   dets,
		names:  make([]string, len(dets)),
		byName: make(map[string]int, len(dets)),
	}
	for i, d := range dets {
		name := d.Name()
		if _, dup := ms.byName[name]; dup {
			return nil, fmt.Errorf("server: duplicate detector name %q", name)
		}
		ms.names[i] = name
		ms.byName[name] = i
	}
	if version == "" {
		sum := sha256.Sum256([]byte(strings.Join(ms.names, "\x00")))
		version = "models-" + hex.EncodeToString(sum[:8])
	}
	ms.version = version
	ms.resolveStreamers(streamOff)
	return ms, nil
}

// resolveStreamers fills streamers/thresholds when every member supports the
// streaming path; otherwise both stay nil and every scan takes the buffered
// pipeline. Driver-backed members probe through wrappers via the engine
// capability probes.
func (ms *modelSet) resolveStreamers(off bool) {
	if off {
		return
	}
	streamers := make([]detect.Streamer, len(ms.dets))
	thresholds := make([]float64, len(ms.dets))
	for i, d := range ms.dets {
		st, ok := d.(detect.Streamer)
		if !ok && ms.drivers != nil {
			st, ok = engine.StreamerOf(ms.drivers[i])
		}
		if !ok {
			return
		}
		th, ok := d.(detect.Thresholder)
		if !ok {
			return
		}
		streamers[i] = st
		thresholds[i] = th.DecisionThreshold()
	}
	ms.streamers = streamers
	ms.thresholds = thresholds
}

// engineHealth snapshots per-engine name/version/health for /healthz and the
// reload response. Static sets report the set version per member and are
// always healthy (they predate the Health contract).
func (ms *modelSet) engineHealth() []EngineHealth {
	out := make([]EngineHealth, len(ms.names))
	for i, name := range ms.names {
		eh := EngineHealth{Name: name, Version: ms.version, Healthy: true}
		if ms.drivers != nil {
			d := ms.drivers[i]
			eh.Version = d.Version()
			if err := d.Health(); err != nil {
				eh.Healthy = false
				eh.Error = err.Error()
			}
		}
		out[i] = eh
	}
	return out
}
