package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mpass/internal/tenant"
)

// postAuth posts bytes with a tenant credential attached (X-API-Key, or
// Authorization: Bearer when bearer is set).
func postAuth(t *testing.T, url, key string, bearer bool, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if key != "" {
		if bearer {
			req.Header.Set("Authorization", "Bearer "+key)
		} else {
			req.Header.Set("X-API-Key", key)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getAuthJSON(t *testing.T, url, key string, v any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

func tenantTable(t *testing.T, tenants ...tenant.Tenant) *tenant.Table {
	t.Helper()
	return tenant.NewTable(tenants, time.Now())
}

// requireRetryAfter asserts the 429 contract: an integer Retry-After of at
// least one second, never 0 and never absent.
func requireRetryAfter(t *testing.T, resp *http.Response) {
	t.Helper()
	ra := resp.Header.Get("Retry-After")
	n, err := strconv.Atoi(ra)
	if err != nil || n < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", ra)
	}
}

// TestTenantRejectionsConsumeNothing is the admission-ordering contract:
// unauthenticated and over-quota requests are turned away before the body
// is read, so neither the batcher, the cache, nor the job pool sees them.
func TestTenantRejectionsConsumeNothing(t *testing.T) {
	tb := tenantTable(t,
		tenant.Tenant{Name: "acme", Key: "ka", RatePerSec: 0.001, Burst: 1},
	)
	s, ts := newTestServer(t, Config{Tenants: tb, Attack: stubAttack(1)})

	// Missing key, wrong key: 401 on both endpoints.
	for _, key := range []string{"", "wrong"} {
		resp, body := postAuth(t, ts.URL+"/v1/scan", key, false, []byte("sample"))
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("scan with key %q: status %d (%s), want 401", key, resp.StatusCode, body)
		}
		resp, _ = postAuth(t, ts.URL+"/v1/attack", key, false, []byte("sample"))
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("attack with key %q: status %d, want 401", key, resp.StatusCode)
		}
	}

	// Burn the single token, then draw the quota rejection.
	resp, body := postAuth(t, ts.URL+"/v1/scan", "ka", false, []byte("sample"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first authenticated scan: status %d (%s)", resp.StatusCode, body)
	}
	resp, _ = postAuth(t, ts.URL+"/v1/scan", "ka", false, []byte("other sample"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota scan: status %d, want 429", resp.StatusCode)
	}
	requireRetryAfter(t, resp)

	// The one admitted scan is the only thing the pipeline ever saw.
	m := s.metrics.Snapshot()
	if m.ScanRequests != 1 || m.CacheMisses != 1 || m.BatchedRaws != 1 {
		t.Fatalf("pipeline saw scan_requests=%d cache_misses=%d batched_raws=%d, want 1/1/1 — rejections leaked in",
			m.ScanRequests, m.CacheMisses, m.BatchedRaws)
	}
	if m.AttackRequests != 0 || m.JobsRegistry != 0 {
		t.Fatalf("attack_requests=%d jobs_registry=%d after rejected attacks, want 0/0",
			m.AttackRequests, m.JobsRegistry)
	}
	if m.TenantUnauthenticated != 4 || m.TenantRejected != 1 {
		t.Fatalf("tenant_unauthenticated=%d tenant_rejected=%d, want 4/1",
			m.TenantUnauthenticated, m.TenantRejected)
	}
}

// TestTenantBearerAuth: the Authorization: Bearer form of the credential
// admits just like X-API-Key.
func TestTenantBearerAuth(t *testing.T) {
	tb := tenantTable(t, tenant.Tenant{Name: "acme", Key: "ka"})
	_, ts := newTestServer(t, Config{Tenants: tb})
	resp, body := postAuth(t, ts.URL+"/v1/scan", "ka", true, []byte("sample"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer scan: status %d (%s)", resp.StatusCode, body)
	}
}

// TestTenantFairnessUnderContention is the noisy-neighbor drill: tenant
// "noisy" saturates its own budget from many goroutines while tenant
// "good" keeps scanning — every one of good's requests must be admitted
// (the noisy tenant burned only its own bucket, never the shared
// pipeline), and every rejection noisy receives must carry a usable
// Retry-After.
func TestTenantFairnessUnderContention(t *testing.T) {
	tb := tenantTable(t,
		tenant.Tenant{Name: "good", Key: "kg", RatePerSec: 1e6, Burst: 1e6},
		tenant.Tenant{Name: "noisy", Key: "kn", RatePerSec: 0.001, Burst: 3, MaxInFlight: 2},
	)
	_, ts := newTestServer(t, Config{Tenants: tb})

	const perTenant = 40
	var wg sync.WaitGroup
	var noisyShed, noisyOK, goodOK, goodOther int64
	var mu sync.Mutex
	for i := 0; i < perTenant; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			resp, _ := postAuth(t, ts.URL+"/v1/scan", "kn", false, []byte(fmt.Sprintf("noisy sample %d", i)))
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				noisyShed++
				ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
				if err != nil || ra < 1 {
					t.Errorf("noisy 429 Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
				}
			case http.StatusOK:
				noisyOK++
			default:
				t.Errorf("noisy scan: unexpected status %d", resp.StatusCode)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			resp, _ := postAuth(t, ts.URL+"/v1/scan", "kg", false, []byte(fmt.Sprintf("good sample %d", i)))
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode == http.StatusOK {
				goodOK++
			} else {
				goodOther++
			}
		}(i)
	}
	wg.Wait()

	if goodOK != perTenant || goodOther != 0 {
		t.Fatalf("good tenant: %d/%d admitted (%d rejected) — noisy neighbor leaked into good's admission",
			goodOK, perTenant, goodOther)
	}
	// Burst 3 with a ~zero refill: noisy lands at most a handful.
	if noisyOK > 3 {
		t.Fatalf("noisy tenant admitted %d scans on a burst-3 bucket", noisyOK)
	}
	if noisyShed == 0 {
		t.Fatal("noisy tenant was never shed; contention did not materialize")
	}

	// Per-tenant metrics kept the books per tenant.
	snap := tb.Snapshot()
	if snap["good"].Scans != perTenant || snap["good"].RateLimited != 0 {
		t.Fatalf("good snapshot = %+v, want %d scans and 0 rate_limited", snap["good"], perTenant)
	}
	if got := snap["noisy"].RateLimited + snap["noisy"].Saturated; got != noisyShed {
		t.Fatalf("noisy rejections in snapshot = %d, observed %d", got, noisyShed)
	}
}

// TestTenantReloadEndpoint drills POST /v1/tenants/reload: admin keys
// may trigger it, plain resident keys get 403, anonymous callers 401, a
// key rotation takes effect atomically, and a broken allowlist leaves
// the old one serving (422).
func TestTenantReloadEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	write := func(doc string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants":[{"name":"ops","key":"kops","admin":true},{"name":"acme","key":"ka"}]}`)
	tb, err := tenant.LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Tenants: tb})

	resp, _ := postAuth(t, ts.URL+"/v1/tenants/reload", "", false, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous reload: status %d, want 401", resp.StatusCode)
	}
	// A resident customer key authenticates but is not an operator.
	resp, _ = postAuth(t, ts.URL+"/v1/tenants/reload", "ka", false, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("customer-key reload: status %d, want 403", resp.StatusCode)
	}
	if got := s.metrics.TenantReloads.Load(); got != 0 {
		t.Fatalf("tenant_reloads = %d after rejected attempts, want 0", got)
	}

	// Rotate the admin key on disk; the old key triggers the reload that
	// retires it.
	write(`{"tenants":[{"name":"ops","key":"kops-rotated","admin":true},{"name":"acme","key":"ka"}]}`)
	var out map[string]int
	resp, body := postAuth(t, ts.URL+"/v1/tenants/reload", "kops", false, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil || out["tenants"] != 2 {
		t.Fatalf("reload response %s (err %v), want {\"tenants\": 2}", body, err)
	}
	if resp, _ := postAuth(t, ts.URL+"/v1/scan", "kops", false, []byte("x")); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("rotated-out key scan: status %d, want 401", resp.StatusCode)
	}
	if resp, _ := postAuth(t, ts.URL+"/v1/scan", "kops-rotated", false, []byte("x")); resp.StatusCode != http.StatusOK {
		t.Fatalf("rotated-in key scan: status %d, want 200", resp.StatusCode)
	}
	if got := s.metrics.TenantReloads.Load(); got != 1 {
		t.Fatalf("tenant_reloads = %d, want 1", got)
	}

	// A broken file answers 422 and leaves the current allowlist serving.
	write(`{"tenants":[]}`)
	resp, _ = postAuth(t, ts.URL+"/v1/tenants/reload", "kops-rotated", false, nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken reload: status %d, want 422", resp.StatusCode)
	}
	if resp, _ := postAuth(t, ts.URL+"/v1/scan", "kops-rotated", false, []byte("y")); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan after failed reload: status %d — failed reload clobbered the table", resp.StatusCode)
	}
}

// TestTenantReloadUnconfigured: without an allowlist the endpoint is 501,
// not a nil-pointer panic.
func TestTenantReloadUnconfigured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, _ := postAuth(t, ts.URL+"/v1/tenants/reload", "anything", false, nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without allowlist: status %d, want 501", resp.StatusCode)
	}
}

// TestTenantJobAttribution: attack jobs record the submitting tenant in
// the job view, and job polls authenticate without burning quota.
func TestTenantJobAttribution(t *testing.T) {
	tb := tenantTable(t, tenant.Tenant{Name: "acme", Key: "ka", RatePerSec: 1, Burst: 1})
	_, ts := newTestServer(t, Config{Tenants: tb, Attack: stubAttack(1), Seed: 7})

	resp, body := postAuth(t, ts.URL+"/v1/attack?target=B", "ka", false, []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack: status %d (%s)", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}

	// Poll anonymously: 401. Poll with the key: fine — and the bucket
	// (burst 1, already spent on the submit) must not be charged.
	if resp := getAuthJSON(t, ts.URL+ar.Poll, "", nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous job poll: status %d, want 401", resp.StatusCode)
	}
	var v JobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp := getAuthJSON(t, ts.URL+ar.Poll, "ka", &v); resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll: status %d", resp.StatusCode)
		}
		if v.State == JobDone || v.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Tenant != "acme" {
		t.Fatalf("job view tenant = %q, want acme", v.Tenant)
	}
	if snap := tb.Snapshot()["acme"]; snap.Attacks != 1 || snap.Admitted != 1 {
		t.Fatalf("tenant snapshot = %+v, want 1 attack / 1 admitted (polls must not charge quota)", snap)
	}
}

// TestTenantJobIsolation: a job is visible only to its submitting
// tenant. Job IDs are sequential and enumerable, so a foreign tenant's
// poll must answer 404 — shaped exactly like a truly unknown ID, or the
// response alone would confirm the guessed ID — while the submitter
// keeps reading its own job, AE bytes included.
func TestTenantJobIsolation(t *testing.T) {
	tb := tenantTable(t,
		tenant.Tenant{Name: "acme", Key: "ka"},
		tenant.Tenant{Name: "mallory", Key: "km"},
	)
	_, ts := newTestServer(t, Config{Tenants: tb, Attack: stubAttack(1), Seed: 7})

	resp, body := postAuth(t, ts.URL+"/v1/attack?target=B", "ka", false, []byte("victim"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack: status %d (%s)", resp.StatusCode, body)
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	jobID := strings.TrimPrefix(ar.Poll, "/v1/jobs/")

	get := func(key, path string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.String()
	}

	// The submitter reads its own job, with and without the AE bytes.
	for _, q := range []string{"", "?ae=1"} {
		if resp, body := get("ka", ar.Poll+q); resp.StatusCode != http.StatusOK {
			t.Fatalf("owner poll %q: status %d (%s)", q, resp.StatusCode, body)
		}
	}

	// The foreign tenant's poll of the live ID and its poll of a
	// never-issued ID must be the same response, modulo the echoed ID.
	respForeign, bodyForeign := get("km", ar.Poll+"?ae=1")
	if respForeign.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign poll: status %d (%s), want 404", respForeign.StatusCode, bodyForeign)
	}
	respGhost, bodyGhost := get("km", "/v1/jobs/ghost?ae=1")
	if respGhost.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost poll: status %d, want 404", respGhost.StatusCode)
	}
	if want := strings.Replace(bodyGhost, `ghost`, jobID, 1); bodyForeign != want {
		t.Fatalf("foreign 404 body %q differs from unknown-ID 404 %q — existence leaked", bodyForeign, want)
	}
}

// TestTenantMetricsExposure: /metrics carries the per-tenant counter map
// with a scan-latency histogram that really observed the tenant's scans.
func TestTenantMetricsExposure(t *testing.T) {
	tb := tenantTable(t, tenant.Tenant{Name: "acme", Key: "ka"})
	_, ts := newTestServer(t, Config{Tenants: tb})

	for i := 0; i < 3; i++ {
		resp, _ := postAuth(t, ts.URL+"/v1/scan", "ka", false, []byte(fmt.Sprintf("sample %d", i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d: status %d", i, resp.StatusCode)
		}
	}

	var m MetricsSnapshot
	getJSON(t, ts.URL+"/metrics", &m)
	ten, ok := m.Tenants["acme"]
	if !ok {
		t.Fatalf("/metrics tenants map lacks acme: %+v", m.Tenants)
	}
	if ten.Scans != 3 || ten.Admitted != 3 {
		t.Fatalf("acme scans/admitted = %d/%d, want 3/3", ten.Scans, ten.Admitted)
	}
	if ten.ScanLatency.Count != 3 {
		t.Fatalf("acme latency count = %d, want 3", ten.ScanLatency.Count)
	}
	if ten.InFlight != 0 {
		t.Fatalf("acme in_flight = %d after responses completed, want 0", ten.InFlight)
	}
}
