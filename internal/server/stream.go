// Streaming scan path: uploads too large (or of unknown length) for the
// buffered batcher pipeline feed every detector's incremental scorer chunk
// by chunk, so a multi-gigabyte POST /v1/scan peaks at O(StreamChunk)
// memory per request instead of O(body). Scores are bit-identical to the
// buffered path — detect's streaming equivalence gate certifies that — so
// the two pipelines share the SHA-256 score cache: a streamed result
// satisfies later buffered scans of the same content and vice versa.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mpass/internal/detect"
	"mpass/internal/tenant"
)

// streamEligible routes a scan to the streaming pipeline: the generation
// must have resolved streamers (modelSet.resolveStreamers), and the declared
// body length must exceed the threshold or be unknown (chunked transfer
// encoding reports -1).
func (s *Server) streamEligible(r *http.Request, ms *modelSet) bool {
	if ms.streamers == nil {
		return false
	}
	return r.ContentLength < 0 || r.ContentLength > s.cfg.StreamThreshold
}

// handleScanStream scores one upload through ms's streaming scorers — the
// snapshot its caller routed on, held for the whole request so a reload
// mid-upload cannot mix generations. The body is read once in
// StreamChunk-sized pieces, each fanned to the SHA-256 hasher and every
// detector's stream; nothing retains the chunk, so peak memory is the chunk
// buffer plus the detectors' pooled scratch.
func (s *Server) handleScanStream(w http.ResponseWriter, r *http.Request, ms *modelSet, grant *tenant.Grant) {
	s.metrics.ScanRequests.Add(1)
	if grant != nil {
		grant.CountScan()
	}
	start := time.Now()

	streams := make([]detect.ScoreStream, len(ms.streamers))
	for i, st := range ms.streamers {
		streams[i] = st.NewStream()
	}
	// finish closes every stream exactly once — also on error paths, so
	// pooled scratch buffers always return to their pools.
	finished := false
	finish := func() []float64 {
		finished = true
		scores := make([]float64, len(streams))
		for i, st := range streams {
			scores[i] = st.Finish()
		}
		return scores
	}
	defer func() {
		if !finished {
			finish()
		}
	}()

	hasher := sha256.New()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxStreamBytes)
	buf := make([]byte, s.cfg.StreamChunk)
	var total int64
	for {
		n, err := body.Read(buf)
		if n > 0 {
			total += int64(n)
			hasher.Write(buf[:n])
			for _, st := range streams {
				st.Feed(buf[:n])
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			} else {
				writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			}
			return
		}
	}
	if total == 0 {
		writeError(w, http.StatusBadRequest, "empty body; POST the PE bytes")
		return
	}

	scores := finish()
	out := scanOut{Scores: scores, Labels: make([]bool, len(scores)), set: ms}
	for i, sc := range scores {
		out.Labels[i] = sc >= ms.thresholds[i]
	}
	var sum [32]byte
	hasher.Sum(sum[:0])
	s.cache.put(scoreKey{version: ms.version, sum: sum}, out)

	s.metrics.ScansStreamed.Add(1)
	s.metrics.StreamedBytes.Add(total)
	elapsed := time.Since(start)
	s.metrics.ScanLatency.Observe(elapsed)
	if grant != nil {
		grant.ObserveScanLatency(elapsed)
	}

	resp := scanResponse{
		SHA256:       hex.EncodeToString(sum[:]),
		Size:         int(total),
		ModelVersion: ms.version,
	}
	for i, name := range ms.names {
		resp.Results = append(resp.Results, scanModelResult{
			Model: name, Score: out.Scores[i], Malicious: out.Labels[i],
		})
		resp.Malicious = resp.Malicious || out.Labels[i]
	}
	writeJSON(w, http.StatusOK, resp)
}
