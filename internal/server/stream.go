// Streaming scan path: uploads too large (or of unknown length) for the
// buffered batcher pipeline feed every detector's incremental scorer chunk
// by chunk, so a multi-gigabyte POST /v1/scan peaks at O(StreamChunk)
// memory per request instead of O(body). Scores are bit-identical to the
// buffered path — detect's streaming equivalence gate certifies that — so
// the two pipelines share the SHA-256 score cache: a streamed result
// satisfies later buffered scans of the same content and vice versa.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"mpass/internal/detect"
)

// resolveStreamers fills s.streamers/s.thresholds when every configured
// detector supports the streaming path; otherwise both stay nil and every
// scan takes the buffered pipeline.
func (s *Server) resolveStreamers() {
	if s.cfg.StreamThreshold < 0 {
		return
	}
	streamers := make([]detect.Streamer, len(s.cfg.Detectors))
	thresholds := make([]float64, len(s.cfg.Detectors))
	for i, d := range s.cfg.Detectors {
		st, ok := d.(detect.Streamer)
		if !ok {
			return
		}
		th, ok := d.(detect.Thresholder)
		if !ok {
			return
		}
		streamers[i] = st
		thresholds[i] = th.DecisionThreshold()
	}
	s.streamers = streamers
	s.thresholds = thresholds
}

// streamEligible routes a scan to the streaming pipeline: streaming must be
// resolved, and the declared body length must exceed the threshold or be
// unknown (chunked transfer encoding reports -1).
func (s *Server) streamEligible(r *http.Request) bool {
	if s.streamers == nil {
		return false
	}
	return r.ContentLength < 0 || r.ContentLength > s.cfg.StreamThreshold
}

// handleScanStream scores one upload through the streaming scorers. The
// body is read once in StreamChunk-sized pieces, each fanned to the
// SHA-256 hasher and every detector's stream; nothing retains the chunk,
// so peak memory is the chunk buffer plus the detectors' pooled scratch.
func (s *Server) handleScanStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.ScanRequests.Add(1)
	start := time.Now()

	streams := make([]detect.ScoreStream, len(s.streamers))
	for i, st := range s.streamers {
		streams[i] = st.NewStream()
	}
	// finish closes every stream exactly once — also on error paths, so
	// pooled scratch buffers always return to their pools.
	finished := false
	finish := func() []float64 {
		finished = true
		scores := make([]float64, len(streams))
		for i, st := range streams {
			scores[i] = st.Finish()
		}
		return scores
	}
	defer func() {
		if !finished {
			finish()
		}
	}()

	hasher := sha256.New()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxStreamBytes)
	buf := make([]byte, s.cfg.StreamChunk)
	var total int64
	for {
		n, err := body.Read(buf)
		if n > 0 {
			total += int64(n)
			hasher.Write(buf[:n])
			for _, st := range streams {
				st.Feed(buf[:n])
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("body exceeds %d bytes", tooBig.Limit))
			} else {
				writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
			}
			return
		}
	}
	if total == 0 {
		writeError(w, http.StatusBadRequest, "empty body; POST the PE bytes")
		return
	}

	scores := finish()
	out := scanOut{Scores: scores, Labels: make([]bool, len(scores))}
	for i, sc := range scores {
		out.Labels[i] = sc >= s.thresholds[i]
	}
	var key [32]byte
	hasher.Sum(key[:0])
	s.cache.put(key, out)

	s.metrics.ScansStreamed.Add(1)
	s.metrics.StreamedBytes.Add(total)
	s.metrics.ScanLatency.Observe(time.Since(start))

	resp := scanResponse{
		SHA256: hex.EncodeToString(key[:]),
		Size:   int(total),
	}
	for i, name := range s.names {
		resp.Results = append(resp.Results, scanModelResult{
			Model: name, Score: out.Scores[i], Malicious: out.Labels[i],
		})
		resp.Malicious = resp.Malicious || out.Labels[i]
	}
	writeJSON(w, http.StatusOK, resp)
}
