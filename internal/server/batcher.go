package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"mpass/internal/detect"
)

// Batcher is the micro-batching dispatcher: concurrent scan requests are
// coalesced into one ScoreBatch call per resident detector, so the
// lookup-table fast path's per-batch costs (table fetch, worker fan-out)
// amortize across requests instead of being paid once per HTTP call.
//
// A single dispatcher goroutine alternates between collecting a batch —
// until MaxBatch requests are in hand or Window has passed since the first
// — and flushing it. While a flush is scoring, new arrivals queue in the
// submission channel, which is what builds the next coalesced batch under
// load. The channel is bounded: when it is full, Score fails fast with
// ErrOverloaded and the HTTP layer sheds the request with a 429.
//
// Scores are bit-identical to calling Detector.Score per sample: the
// dispatcher only regroups inputs, and the ScoreBatch implementations carry
// the repo-wide batch-equals-single parity guarantee.
type Batcher struct {
	// src resolves the model set to score with; the dispatcher loads it once
	// per flush, so every request coalesced into one batch is scored and
	// labeled by a single model generation even if a hot reload lands while
	// the batch is being collected.
	src     func() *modelSet
	max     int
	window  time.Duration
	metrics *Metrics

	mu     sync.RWMutex // guards closed vs. in-flight submissions
	closed bool         //mpass:guardedby mu
	reqs   chan *scanReq
	done   chan struct{} // dispatcher exited
}

// scanOut is one request's result: per-detector scores and hard labels, in
// set order, plus the model generation that produced them — response
// rendering and cache filing key on the set that actually scored, never on
// whatever is current by the time the result is consumed.
type scanOut struct {
	Scores []float64
	Labels []bool
	set    *modelSet
}

type scanReq struct {
	raw []byte
	out chan scanOut // buffered; the dispatcher never blocks on delivery
}

// Batcher errors surfaced to the HTTP layer.
var (
	ErrOverloaded = errors.New("server: scan queue full")
	ErrClosed     = errors.New("server: shutting down")
)

// newBatcher starts a dispatcher over a fixed detector slice — the
// compatibility constructor for embedders (and tests) without a reloadable
// model set.
func newBatcher(dets []detect.Detector, maxBatch, queue int, window time.Duration, m *Metrics) *Batcher {
	ms := &modelSet{dets: dets}
	return newBatcherSrc(func() *modelSet { return ms }, maxBatch, queue, window, m)
}

// newBatcherSrc starts the dispatcher over a model-set source. maxBatch and
// queue have sane minimums; window <= 0 flushes as soon as the channel runs
// dry (pure opportunistic coalescing).
func newBatcherSrc(src func() *modelSet, maxBatch, queue int, window time.Duration, m *Metrics) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queue < maxBatch {
		queue = maxBatch
	}
	b := &Batcher{
		src:     src,
		max:     maxBatch,
		window:  window,
		metrics: m,
		reqs:    make(chan *scanReq, queue),
		done:    make(chan struct{}),
	}
	go b.loop()
	return b
}

// Score submits raw for scoring and waits for the coalesced result. It
// fails fast with ErrOverloaded when the submission queue is full, ErrClosed
// after shutdown, or ctx's error when the caller's deadline expires first.
func (b *Batcher) Score(ctx context.Context, raw []byte) (scanOut, error) {
	req := &scanReq{raw: raw, out: make(chan scanOut, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return scanOut{}, ErrClosed
	}
	select {
	case b.reqs <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		return scanOut{}, ErrOverloaded
	}
	select {
	case out := <-req.out:
		return out, nil
	case <-ctx.Done():
		// The dispatcher will still deliver into the buffered channel; the
		// result is simply dropped.
		return scanOut{}, ctx.Err()
	}
}

// ScoreWait is Score with backpressure instead of shedding: when the queue
// is full it blocks until there is room (or ctx expires). Resident attack
// jobs use it for their oracle queries — a job that has already been
// admitted should slow down under load, not lose a query mid-attack.
func (b *Batcher) ScoreWait(ctx context.Context, raw []byte) (scanOut, error) {
	req := &scanReq{raw: raw, out: make(chan scanOut, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return scanOut{}, ErrClosed
	}
	// Holding the read lock while blocked on the send is safe: Close waits
	// for the write lock, and the dispatcher keeps consuming until Close
	// actually closes the channel, so the send always completes.
	select {
	case b.reqs <- req:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.mu.RUnlock()
		return scanOut{}, ctx.Err()
	}
	select {
	case out := <-req.out:
		return out, nil
	case <-ctx.Done():
		return scanOut{}, ctx.Err()
	}
}

// Close stops accepting requests, lets the dispatcher flush everything
// already queued, and waits for it to exit.
func (b *Batcher) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.reqs)
	}
	b.mu.Unlock()
	<-b.done
}

// loop is the dispatcher goroutine.
func (b *Batcher) loop() {
	defer close(b.done)
	batch := make([]*scanReq, 0, b.max)
	for {
		first, ok := <-b.reqs
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		if b.window > 0 {
			timer := time.NewTimer(b.window)
		collect:
			for len(batch) < b.max {
				select {
				case r, open := <-b.reqs:
					if !open {
						break collect
					}
					batch = append(batch, r)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		} else {
			for len(batch) < b.max {
				r, open := <-b.reqs
				if !open {
					break
				}
				batch = append(batch, r)
				if len(b.reqs) == 0 {
					break
				}
			}
		}
		b.flush(batch)
	}
}

// flush scores one coalesced batch and fans results back out.
func (b *Batcher) flush(batch []*scanReq) {
	if b.metrics != nil {
		b.metrics.observeBatch(len(batch))
	}
	raws := make([][]byte, len(batch))
	for i, r := range batch {
		raws[i] = r.raw
	}
	// One snapshot per flush: every request in this batch gets scores and
	// labels from the same model generation.
	set := b.src()
	outs := make([]scanOut, len(batch))
	for i := range outs {
		outs[i] = scanOut{
			Scores: make([]float64, len(set.dets)),
			Labels: make([]bool, len(set.dets)),
			set:    set,
		}
	}
	for di, d := range set.dets {
		scores := detect.ScoreAll(d, raws, 0)
		var labels []bool
		if th, ok := d.(detect.Thresholder); ok {
			thr := th.DecisionThreshold()
			labels = make([]bool, len(scores))
			for i, s := range scores {
				labels[i] = s >= thr
			}
		} else {
			labels = detect.LabelAll(d, raws, 0)
		}
		for i := range batch {
			outs[i].Scores[di] = scores[i]
			outs[i].Labels[di] = labels[i]
		}
	}
	for i, r := range batch {
		// Each request's out channel is buffered (cap 1) and written exactly
		// once, so this delivery can never block the dispatcher — even when
		// the requester already gave up on its context.
		//lint:ignore boundedqueue buffered cap-1 result channel, single write
		r.out <- outs[i]
	}
}
