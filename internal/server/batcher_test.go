package server

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mpass/internal/detect"
	"mpass/internal/nn"
)

// stubDetector scores deterministically from a hash of the input, so tests
// can verify per-request result routing without training anything.
type stubDetector struct {
	name string
	thr  float64
}

func (d *stubDetector) Name() string { return d.name }

func (d *stubDetector) Score(raw []byte) float64 {
	h := fnv.New64a()
	h.Write([]byte(d.name)) // distinct detectors disagree on the same bytes
	h.Write(raw)
	return float64(h.Sum64()%1000) / 1000
}

func (d *stubDetector) Label(raw []byte) bool { return d.Score(raw) >= d.thr }

func (d *stubDetector) DecisionThreshold() float64 { return d.thr }

// gatedDetector wraps a detector so every batch flush parks until the test
// releases it — the lever that makes coalescing deterministic.
type gatedDetector struct {
	detect.Detector
	entered chan int      // receives each flush's batch size
	release chan struct{} // one receive per flush
}

func (g *gatedDetector) ScoreBatch(raws [][]byte) []float64 {
	g.entered <- len(raws)
	<-g.release
	return detect.ScoreAll(g.Detector, raws, 1)
}

// convDetector builds a small untrained (random-weight) ConvDetector:
// deterministic scores through the real lookup-table batch path.
func convDetector(t *testing.T, name string, seed int64) *detect.ConvDetector {
	t.Helper()
	net, err := nn.NewConvNet(nn.ConvConfig{
		SeqLen: 512, EmbedDim: 3, Kernel: 8, Stride: 4, Filters: 6, Seed: seed,
	})
	if err != nil {
		t.Fatalf("NewConvNet: %v", err)
	}
	return &detect.ConvDetector{ModelName: name, Net: net, Threshold: 0.5}
}

func randomRaws(seed int64, n, maxLen int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	raws := make([][]byte, n)
	for i := range raws {
		raws[i] = make([]byte, 32+rng.Intn(maxLen))
		rng.Read(raws[i])
	}
	return raws
}

// TestBatcherParityWithDirectScore is the acceptance gate: scores served
// through the micro-batching path are bit-identical to direct
// Detector.Score calls on the same bytes.
func TestBatcherParityWithDirectScore(t *testing.T) {
	dets := []detect.Detector{
		convDetector(t, "MalConvA", 1),
		convDetector(t, "MalConvB", 2),
	}
	var m Metrics
	b := newBatcher(dets, 8, 64, time.Millisecond, &m)
	defer b.Close()

	raws := randomRaws(3, 48, 400)
	outs := make([]scanOut, len(raws))
	var wg sync.WaitGroup
	for i := range raws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Score(context.Background(), raws[i])
			if err != nil {
				t.Errorf("Score(%d): %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	for i, raw := range raws {
		for di, d := range dets {
			want := d.Score(raw)
			if got := outs[i].Scores[di]; got != want {
				t.Fatalf("sample %d model %s: batched score %v != direct %v", i, d.Name(), got, want)
			}
			if got, want := outs[i].Labels[di], d.Label(raw); got != want {
				t.Fatalf("sample %d model %s: batched label %v != direct %v", i, d.Name(), got, want)
			}
		}
	}
}

// TestBatcherCoalescesConcurrentScans pins the dispatcher's core behavior:
// requests arriving while a flush is in progress form the next batch, no
// response is lost or duplicated, and at least one coalesced batch with
// size > 1 is observed. Run under -race via `make race`.
func TestBatcherCoalescesConcurrentScans(t *testing.T) {
	inner := &stubDetector{name: "stub", thr: 0.5}
	gate := &gatedDetector{
		Detector: inner,
		entered:  make(chan int, 16),
		release:  make(chan struct{}),
	}
	var m Metrics
	b := newBatcher([]detect.Detector{gate}, 32, 64, 5*time.Millisecond, &m)
	defer b.Close()

	const extra = 15
	results := make(chan struct {
		i     int
		score float64
		err   error
	}, extra+1)
	submit := func(i int, raw []byte) {
		out, err := b.Score(context.Background(), raw)
		var score float64
		if err == nil {
			score = out.Scores[0]
		}
		results <- struct {
			i     int
			score float64
			err   error
		}{i, score, err}
	}
	raws := randomRaws(7, extra+1, 200)

	go submit(0, raws[0])
	if n := <-gate.entered; n != 1 {
		t.Fatalf("first flush batched %d requests, want 1", n)
	}
	// While flush #1 is parked, the rest queue up behind it.
	for i := 1; i <= extra; i++ {
		go submit(i, raws[i])
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.queued() < extra {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests queued", b.queued(), extra)
		}
		time.Sleep(time.Millisecond)
	}
	gate.release <- struct{}{} // flush #1 completes
	if n := <-gate.entered; n != extra {
		t.Fatalf("second flush batched %d requests, want %d", n, extra)
	}
	gate.release <- struct{}{} // flush #2 completes

	seen := make(map[int]bool)
	for k := 0; k < extra+1; k++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("request %d failed: %v", r.i, r.err)
		}
		if seen[r.i] {
			t.Fatalf("request %d answered twice", r.i)
		}
		seen[r.i] = true
		if want := inner.Score(raws[r.i]); r.score != want {
			t.Fatalf("request %d got score %v, want %v (response misrouted)", r.i, r.score, want)
		}
	}
	if got := m.Batches.Load(); got != 2 {
		t.Fatalf("Batches = %d, want 2", got)
	}
	if got := m.Coalesced.Load(); got < 1 {
		t.Fatal("no coalesced batch (size > 1) observed")
	}
	if got := m.MaxBatchSize.Load(); got != extra {
		t.Fatalf("MaxBatchSize = %d, want %d", got, extra)
	}
}

// queued reports the submission-channel depth (test hook).
func (b *Batcher) queued() int { return len(b.reqs) }

func TestBatcherShedsWhenQueueFull(t *testing.T) {
	inner := &stubDetector{name: "stub", thr: 0.5}
	gate := &gatedDetector{
		Detector: inner,
		entered:  make(chan int, 8),
		release:  make(chan struct{}),
	}
	b := newBatcher([]detect.Detector{gate}, 2, 2, time.Millisecond, nil)
	done := make(chan error, 8)
	go func() {
		_, err := b.Score(context.Background(), []byte("first"))
		done <- err
	}()
	<-gate.entered // dispatcher busy; queue is free again
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Score(context.Background(), []byte(fmt.Sprintf("fill-%d", i)))
			done <- err
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := b.Score(context.Background(), []byte("overflow")); err != ErrOverloaded {
		t.Fatalf("full queue returned %v, want ErrOverloaded", err)
	}
	gate.release <- struct{}{}
	<-gate.entered
	gate.release <- struct{}{}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
	b.Close()
}

func TestBatcherScoreAfterCloseAndCtxCancel(t *testing.T) {
	inner := &stubDetector{name: "stub", thr: 0.5}
	b := newBatcher([]detect.Detector{inner}, 4, 8, time.Millisecond, nil)
	if _, err := b.Score(context.Background(), []byte("x")); err != nil {
		t.Fatalf("Score before close: %v", err)
	}
	b.Close()
	if _, err := b.Score(context.Background(), []byte("x")); err != ErrClosed {
		t.Fatalf("Score after close returned %v, want ErrClosed", err)
	}
	if _, err := b.ScoreWait(context.Background(), []byte("x")); err != ErrClosed {
		t.Fatalf("ScoreWait after close returned %v, want ErrClosed", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b2 := newBatcher([]detect.Detector{inner}, 4, 8, time.Hour, nil) // huge window
	defer b2.Close()
	go b2.Score(context.Background(), []byte("hold the window open"))
	if _, err := b2.ScoreWait(ctx, []byte("y")); err != context.Canceled {
		t.Fatalf("cancelled ScoreWait returned %v, want context.Canceled", err)
	}
}

// TestScoreWaitCancelledMidBackpressure pins the prompt-cancellation half
// of the backpressure contract: a ScoreWait caller parked on a full queue
// (the position an attack job's oracle query occupies under load) must
// observe its context's cancellation immediately, not after the queue
// frees up.
func TestScoreWaitCancelledMidBackpressure(t *testing.T) {
	gate := &gatedDetector{
		Detector: &stubDetector{name: "stub", thr: 0.5},
		entered:  make(chan int, 8),
		release:  make(chan struct{}, 8),
	}
	b := newBatcher([]detect.Detector{gate}, 1, 1, time.Millisecond, nil)
	defer b.Close()

	// Park the dispatcher inside a flush ...
	firstDone := make(chan error, 1)
	go func() {
		_, err := b.Score(context.Background(), []byte("first"))
		firstDone <- err
	}()
	<-gate.entered
	// ... and fill the queue behind it.
	secondDone := make(chan error, 1)
	go func() {
		_, err := b.Score(context.Background(), []byte("second"))
		secondDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.queued() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// ScoreWait now blocks on the send; cancelling must release it while the
	// queue is still full.
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() {
		_, err := b.ScoreWait(ctx, []byte("third"))
		waitErr <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it reach the blocked send
	cancel()
	select {
	case err := <-waitErr:
		if err != context.Canceled {
			t.Fatalf("blocked ScoreWait returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ScoreWait ignored cancellation while parked on a full queue")
	}

	// Unwedge the dispatcher and confirm the legitimately queued work
	// still completes.
	gate.release <- struct{}{}
	<-gate.entered
	gate.release <- struct{}{}
	if err := <-firstDone; err != nil {
		t.Fatalf("first scan: %v", err)
	}
	if err := <-secondDone; err != nil {
		t.Fatalf("second scan: %v", err)
	}
}
