package server

import (
	"sync/atomic"
	"time"

	"mpass/internal/tenant"
)

// Metrics is the daemon's expvar-style counter set: plain atomics sampled
// into a JSON snapshot by the /metrics handler. Unlike the stdlib expvar
// package there is no process-global registry, so every Server instance —
// including the many spun up by tests — owns an independent set.
type Metrics struct {
	// Request outcomes.
	ScanRequests   atomic.Int64 // POST /v1/scan accepted for scoring
	ScanRejected   atomic.Int64 // scans shed with 429 (batcher queue full)
	AttackRequests atomic.Int64 // POST /v1/attack jobs admitted
	AttackRejected atomic.Int64 // attacks shed with 429 (job queue full)
	ScanErrors     atomic.Int64 // scans failing for any other reason

	// Scoring pipeline.
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	ScansStreamed atomic.Int64 // scans served by the O(chunk) streaming path
	StreamedBytes atomic.Int64 // total bytes fed through streaming scans
	Batches       atomic.Int64 // dispatcher flushes
	BatchedRaws   atomic.Int64 // samples scored across all flushes
	MaxBatchSize  atomic.Int64 // largest coalesced batch observed
	Coalesced     atomic.Int64 // flushes with more than one request

	// Oracle traffic from resident attack jobs.
	OracleQueries atomic.Int64
	OracleRetries atomic.Int64 // backed-off re-attempts after transient oracle errors
	OracleBreaks  atomic.Int64 // circuit-breaker openings (oracle declared unavailable)

	// Job lifecycle robustness.
	JobsEvicted   atomic.Int64 // finished jobs dropped from the registry (TTL or cap)
	JobsCancelled atomic.Int64 // jobs ended by deadline expiry or shutdown cancellation

	// Model hot-reload lifecycle.
	Reloads        atomic.Int64 // successful model-set swaps
	ReloadFailures atomic.Int64 // reloads rejected (load error or failed certification)
	CachePurged    atomic.Int64 // score-cache entries dropped across all swaps

	// Tenant admission layer (zero when no allowlist is configured).
	TenantUnauthenticated atomic.Int64 // requests rejected 401 (unknown or missing key)
	TenantRejected        atomic.Int64 // requests rejected 429 by a tenant quota
	TenantReloads         atomic.Int64 // successful allowlist reloads (SIGHUP or endpoint)

	ScanLatency Histogram
}

// observeBatch records one dispatcher flush of n requests.
//
//mpass:zeroalloc
func (m *Metrics) observeBatch(n int) {
	m.Batches.Add(1)
	m.BatchedRaws.Add(int64(n))
	if n > 1 {
		m.Coalesced.Add(1)
	}
	for {
		cur := m.MaxBatchSize.Load()
		if int64(n) <= cur || m.MaxBatchSize.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// histBounds are the scan-latency bucket upper bounds. The last implicit
// bucket is +Inf.
var histBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// Histogram is a fixed-bucket latency histogram with atomic counters.
type Histogram struct {
	counts [len(histBounds) + 1]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration. It sits on every scan response, so it must
// stay allocation free.
//
//mpass:zeroalloc
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	Count     int64     `json:"count"`
	MeanMs    float64   `json:"mean_ms"`
	BucketsMs []float64 `json:"buckets_ms"` // upper bounds; -1 = +Inf
	Counts    []int64   `json:"counts"`
}

// snapshot samples the histogram. Buckets are reported as cumulative upper
// bounds in milliseconds, with the +Inf bucket last.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanMs = float64(h.sum.Load()) / float64(s.Count) / 1e6
	}
	for i, b := range histBounds {
		s.BucketsMs = append(s.BucketsMs, float64(b)/1e6)
		s.Counts = append(s.Counts, h.counts[i].Load())
	}
	s.BucketsMs = append(s.BucketsMs, -1) // +Inf sentinel
	s.Counts = append(s.Counts, h.counts[len(histBounds)].Load())
	return s
}

// MetricsSnapshot is the /metrics response document.
type MetricsSnapshot struct {
	ScanRequests   int64 `json:"scan_requests"`
	ScanRejected   int64 `json:"scan_rejected"`
	ScanErrors     int64 `json:"scan_errors"`
	AttackRequests int64 `json:"attack_requests"`
	AttackRejected int64 `json:"attack_rejected"`

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	ScansStreamed int64 `json:"scans_streamed"`
	StreamedBytes int64 `json:"streamed_bytes"`

	Batches      int64   `json:"batches"`
	BatchedRaws  int64   `json:"batched_raws"`
	MaxBatchSize int64   `json:"max_batch_size"`
	Coalesced    int64   `json:"coalesced_batches"`
	MeanBatch    float64 `json:"mean_batch_size"`

	OracleQueries int64 `json:"oracle_queries"`
	OracleRetries int64 `json:"oracle_retries"`
	OracleBreaks  int64 `json:"oracle_breaks"`

	JobsQueued    int   `json:"jobs_queued"`
	JobsPending   int   `json:"jobs_pending"`
	JobsDone      int   `json:"jobs_done"`
	JobsEvicted   int64 `json:"jobs_evicted"`
	JobsCancelled int64 `json:"jobs_cancelled"`

	Reloads        int64 `json:"reloads"`
	ReloadFailures int64 `json:"reload_failures"`
	CachePurged    int64 `json:"cache_purged"`

	TenantUnauthenticated int64 `json:"tenant_unauthenticated"`
	TenantRejected        int64 `json:"tenant_rejected"`
	TenantReloads         int64 `json:"tenant_reloads"`

	// Tenants carries the per-tenant counter sets, keyed by tenant name.
	// Filled in by the Server (which owns the tenant table); absent on
	// single-tenant deployments.
	Tenants map[string]tenant.Snapshot `json:"tenants,omitempty"`

	// Registry gauges: current size and the max-live-jobs bound it is held
	// under (0 = unbounded). Filled in by the Server, which owns the registry.
	JobsRegistry    int `json:"jobs_registry"`
	JobsRegistryCap int `json:"jobs_registry_cap"`

	ScanLatency HistogramSnapshot `json:"scan_latency"`
}

// Snapshot samples every counter. Queue-depth gauges are filled in by the
// Server, which owns the job pool.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		ScanRequests:   m.ScanRequests.Load(),
		ScanRejected:   m.ScanRejected.Load(),
		ScanErrors:     m.ScanErrors.Load(),
		AttackRequests: m.AttackRequests.Load(),
		AttackRejected: m.AttackRejected.Load(),
		CacheHits:      m.CacheHits.Load(),
		CacheMisses:    m.CacheMisses.Load(),
		ScansStreamed:  m.ScansStreamed.Load(),
		StreamedBytes:  m.StreamedBytes.Load(),
		Batches:        m.Batches.Load(),
		BatchedRaws:    m.BatchedRaws.Load(),
		MaxBatchSize:   m.MaxBatchSize.Load(),
		Coalesced:      m.Coalesced.Load(),
		OracleQueries:  m.OracleQueries.Load(),
		OracleRetries:  m.OracleRetries.Load(),
		OracleBreaks:   m.OracleBreaks.Load(),
		JobsEvicted:    m.JobsEvicted.Load(),
		JobsCancelled:  m.JobsCancelled.Load(),
		Reloads:        m.Reloads.Load(),
		ReloadFailures: m.ReloadFailures.Load(),
		CachePurged:    m.CachePurged.Load(),

		TenantUnauthenticated: m.TenantUnauthenticated.Load(),
		TenantRejected:        m.TenantRejected.Load(),
		TenantReloads:         m.TenantReloads.Load(),

		ScanLatency: m.ScanLatency.snapshot(),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.BatchedRaws) / float64(s.Batches)
	}
	return s
}
