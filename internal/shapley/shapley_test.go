package shapley

import (
	"math"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/features"
	"mpass/internal/pefile"
)

// sectionMassScore scores a sample by weighted nonzero-byte mass of named
// sections — a transparent model whose exact Shapley values are easy to
// reason about.
func sectionMassScore(weights map[string]float64) func([]byte) float64 {
	return func(raw []byte) float64 {
		f, err := pefile.Parse(raw)
		if err != nil {
			return 0
		}
		var s float64
		for _, sec := range f.Sections {
			w := weights[sec.Name]
			if w == 0 {
				continue
			}
			nz := 0
			for _, b := range sec.Data {
				if b != 0 {
					nz++
				}
			}
			s += w * float64(nz) / float64(len(sec.Data)+1)
		}
		return s
	}
}

type fakeModel struct {
	name  string
	score func([]byte) float64
}

func (m *fakeModel) Name() string             { return m.name }
func (m *fakeModel) Score(raw []byte) float64 { return m.score(raw) }

func sample(t *testing.T, seed int64) []byte {
	t.Helper()
	return corpus.NewGenerator(seed).Sample(corpus.Malware).Raw
}

func TestShapleyAdditiveModelExact(t *testing.T) {
	// For a purely additive model, φ_i must equal section i's own
	// contribution, independent of the others.
	raw := sample(t, 1)
	score := sectionMassScore(map[string]float64{".text": 2, ".data": 1})
	phi, err := SectionShapley(raw, []string{".text", ".data", ".rdata"}, score)
	if err != nil {
		t.Fatal(err)
	}
	if phi[".text"] <= phi[".data"] {
		t.Errorf("additive model: phi(.text)=%v <= phi(.data)=%v", phi[".text"], phi[".data"])
	}
	if math.Abs(phi[".rdata"]) > 1e-12 {
		t.Errorf("irrelevant section got phi=%v", phi[".rdata"])
	}
}

func TestShapleyEfficiencyAxiom(t *testing.T) {
	raw := sample(t, 2)
	scores := []func([]byte) float64{
		sectionMassScore(map[string]float64{".text": 1, ".data": 3, ".rdata": 0.5}),
		// A non-additive model: interaction between .text and .data.
		func(b []byte) float64 {
			f, err := pefile.Parse(b)
			if err != nil {
				return 0
			}
			nz := func(name string) float64 {
				s := f.SectionByName(name)
				if s == nil {
					return 0
				}
				n := 0
				for _, x := range s.Data {
					if x != 0 {
						n++
					}
				}
				return float64(n) / float64(len(s.Data)+1)
			}
			return nz(".text")*nz(".data") + 0.3*nz(".rdata")
		},
	}
	for i, sc := range scores {
		resid, err := Efficiency(raw, []string{".text", ".data", ".rdata", ".idata"}, sc)
		if err != nil {
			t.Fatal(err)
		}
		if resid > 1e-9 {
			t.Errorf("score %d: efficiency residual %v", i, resid)
		}
	}
}

func TestShapleySymmetry(t *testing.T) {
	// Two sections entering the model identically must get equal values.
	raw := sample(t, 3)
	score := sectionMassScore(map[string]float64{".text": 1, ".data": 1})
	f, _ := pefile.Parse(raw)
	// Force identical content mass so the two are true symmetric players.
	text := f.SectionByName(".text")
	data := f.SectionByName(".data")
	n := len(text.Data)
	if len(data.Data) < n {
		n = len(data.Data)
	}
	// Rebuild both sections with identical bytes and identical length.
	text.Data = append([]byte(nil), text.Data[:n]...)
	data.Data = append([]byte(nil), text.Data...)
	text.VirtualSize = uint32(n)
	data.VirtualSize = uint32(n)
	raw2 := f.Bytes()

	phi, err := SectionShapley(raw2, []string{".text", ".data"}, score)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[".text"]-phi[".data"]) > 1e-9 {
		t.Errorf("symmetric sections: %v vs %v", phi[".text"], phi[".data"])
	}
}

func TestSectionShapleyRejectsGarbage(t *testing.T) {
	if _, err := SectionShapley([]byte("nope"), []string{".text"}, func([]byte) float64 { return 0 }); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestCommonSections(t *testing.T) {
	g := corpus.NewGenerator(4)
	var samples [][]byte
	for i := 0; i < 8; i++ {
		samples = append(samples, g.Sample(corpus.Malware).Raw)
	}
	names, err := CommonSections(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("topH=3 returned %d names", len(names))
	}
	// .text/.data/.rdata/.idata are in every sample; .rsrc only sometimes.
	for _, n := range names {
		if n == ".rsrc" {
			t.Error(".rsrc ranked above always-present sections")
		}
	}
}

func TestPEMFindsCodeAndDataCritical(t *testing.T) {
	// Two synthetic "known models" that (like the trained detectors) react
	// mostly to code and data content, with different secondary tastes.
	m1 := &fakeModel{"m1", sectionMassScore(map[string]float64{
		".text": 3, ".data": 2, ".rdata": 0.3,
	})}
	m2 := &fakeModel{"m2", sectionMassScore(map[string]float64{
		".text": 2.5, ".data": 2.2, ".idata": 0.2,
	})}
	g := corpus.NewGenerator(5)
	var samples [][]byte
	for i := 0; i < 5; i++ {
		samples = append(samples, g.Sample(corpus.Malware).Raw)
	}
	res, err := PEM([]Model{m1, m2}, samples, Config{TopH: 10, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	crit := map[string]bool{}
	for _, c := range res.Critical {
		crit[c] = true
	}
	if len(res.Critical) != 2 || !crit[".text"] || !crit[".data"] {
		t.Errorf("Critical = %v, want {.text, .data}", res.Critical)
	}
	for _, m := range []string{"m1", "m2"} {
		ranked := res.PerModel[m]
		if len(ranked) == 0 {
			t.Fatalf("no ranking for %s", m)
		}
		if top := ranked[0].Section; top != ".text" && top != ".data" {
			t.Errorf("%s top section = %s, want code or data", m, top)
		}
	}
}

func TestPEMOnRealFeatureModel(t *testing.T) {
	// Smoke: PEM over a feature-driven score (entropy of data sections)
	// completes and produces finite values.
	m := &fakeModel{"ent", func(raw []byte) float64 {
		f, err := pefile.Parse(raw)
		if err != nil {
			return 0
		}
		var s float64
		for _, sec := range f.DataSections() {
			s += features.Entropy(sec.Data)
		}
		return s / 8
	}}
	raws := [][]byte{sample(t, 6), sample(t, 7)}
	res, err := PEM([]Model{m}, raws, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range res.PerModel["ent"] {
		if math.IsNaN(sc.Value) || math.IsInf(sc.Value, 0) {
			t.Errorf("section %s value %v", sc.Section, sc.Value)
		}
	}
}

func TestPEMInputValidation(t *testing.T) {
	if _, err := PEM(nil, [][]byte{{1}}, DefaultConfig()); err == nil {
		t.Error("PEM accepted zero models")
	}
	m := &fakeModel{"m", func([]byte) float64 { return 0 }}
	if _, err := PEM([]Model{m}, nil, DefaultConfig()); err == nil {
		t.Error("PEM accepted zero samples")
	}
}

// TestSectionShapleyWorkerParity verifies the parallel subset-table path
// produces bit-identical Shapley values for every worker count.
func TestSectionShapleyWorkerParity(t *testing.T) {
	raw := sample(t, 9)
	score := sectionMassScore(map[string]float64{".text": 2, ".data": 1.5, ".rdata": 0.4})
	secs := []string{".text", ".data", ".rdata", ".idata"}
	ref, err := SectionShapleyWorkers(raw, secs, score, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := SectionShapleyWorkers(raw, secs, score, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d sections, want %d", workers, len(got), len(ref))
		}
		for name, v := range ref {
			if got[name] != v {
				t.Errorf("workers=%d: phi[%s] = %v, want %v (bit-identical)", workers, name, got[name], v)
			}
		}
	}
}

// TestPEMWorkerParity checks Algorithm 1 end to end across worker counts:
// per-model averages, rankings, and the critical intersection must match
// the serial run exactly.
func TestPEMWorkerParity(t *testing.T) {
	m1 := &fakeModel{"m1", sectionMassScore(map[string]float64{".text": 3, ".data": 2})}
	m2 := &fakeModel{"m2", sectionMassScore(map[string]float64{".text": 2, ".data": 2.5, ".rdata": 0.2})}
	g := corpus.NewGenerator(12)
	var samples [][]byte
	for i := 0; i < 4; i++ {
		samples = append(samples, g.Sample(corpus.Malware).Raw)
	}
	ref, err := PEM([]Model{m1, m2}, samples, Config{TopH: 8, TopK: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 6} {
		got, err := PEM([]Model{m1, m2}, samples, Config{TopH: 8, TopK: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Critical) != len(ref.Critical) {
			t.Fatalf("workers=%d: Critical %v, want %v", workers, got.Critical, ref.Critical)
		}
		for i := range ref.Critical {
			if got.Critical[i] != ref.Critical[i] {
				t.Errorf("workers=%d: Critical[%d] = %s, want %s", workers, i, got.Critical[i], ref.Critical[i])
			}
		}
		for name, ranked := range ref.PerModel {
			gr := got.PerModel[name]
			if len(gr) != len(ranked) {
				t.Fatalf("workers=%d: model %s ranking length mismatch", workers, name)
			}
			for i := range ranked {
				if gr[i] != ranked[i] {
					t.Errorf("workers=%d: %s rank %d = %+v, want %+v", workers, name, i, gr[i], ranked[i])
				}
			}
		}
	}
}
