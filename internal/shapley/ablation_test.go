package shapley

import (
	"fmt"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/pefile"
)

// cloneRenderShapley is the pre-fast-path reference: one Parse already done
// by the caller, then Clone + zero + Bytes per subset. The in-place
// ablation renderer must reproduce its φ values bit-for-bit.
func cloneRenderShapley(t *testing.T, raw []byte, secNames []string, score func([]byte) float64) map[string]float64 {
	t.Helper()
	f, err := pefile.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]bool, len(secNames))
	for _, n := range secNames {
		want[n] = true
	}
	var present []*pefile.Section
	for _, s := range f.Sections {
		if want[s.Name] && len(s.Data) > 0 {
			present = append(present, s)
		}
	}
	n := len(present)
	if n == 0 {
		return map[string]float64{}
	}
	ablated := make([]float64, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		g := f.Clone()
		for i, s := range present {
			if mask&(1<<i) == 0 {
				sec := g.SectionByName(s.Name)
				for j := range sec.Data {
					sec.Data[j] = 0
				}
			}
		}
		ablated[mask] = score(g.Bytes())
	}
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	weight := make([]float64, n)
	for s := 0; s < n; s++ {
		weight[s] = fact[s] * fact[n-s-1] / fact[n]
	}
	out := make(map[string]float64, n)
	full := uint32(1<<n) - 1
	for i, sec := range present {
		bit := uint32(1) << i
		var phi float64
		rest := full &^ bit
		for sub := uint32(0); ; sub = (sub - rest) & rest {
			size := 0
			for x := sub; x != 0; x &= x - 1 {
				size++
			}
			phi += weight[size] * (ablated[sub|bit] - ablated[sub])
			if sub == rest {
				break
			}
		}
		out[sec.Name] = phi
	}
	return out
}

// TestInPlaceAblationMatchesCloneRender is the renderer parity gate: for a
// content-sensitive score, the pooled in-place renderer must give exactly
// the φ values of the Clone-per-subset reference, at every worker count.
func TestInPlaceAblationMatchesCloneRender(t *testing.T) {
	secs := []string{".text", ".data", ".rdata", ".idata"}
	// A score with interactions and full-image sensitivity (header bytes
	// included), so any render difference shows up.
	score := func(raw []byte) float64 {
		var s float64
		for i, b := range raw {
			s += float64(b) * float64(i%251+1)
		}
		f, err := pefile.Parse(raw)
		if err != nil {
			return s
		}
		var nzText, nzData float64
		if sec := f.SectionByName(".text"); sec != nil {
			for _, b := range sec.Data {
				if b != 0 {
					nzText++
				}
			}
		}
		if sec := f.SectionByName(".data"); sec != nil {
			for _, b := range sec.Data {
				if b != 0 {
					nzData++
				}
			}
		}
		return s + nzText*nzData
	}
	for seed := int64(1); seed <= 3; seed++ {
		raw := corpus.NewGenerator(seed).Sample(corpus.Malware).Raw
		want := cloneRenderShapley(t, raw, secs, score)
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				got, err := SectionShapleyWorkers(raw, secs, score, workers)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("section sets differ: got %v, want %v", got, want)
				}
				for name, phi := range want {
					if got[name] != phi {
						t.Errorf("phi[%s] = %v, want %v (bit-exact)", name, got[name], phi)
					}
				}
			})
		}
	}
}

// TestAblationRendererRangeRestore drills the buffer-reuse bookkeeping: a
// single pooled buffer serving masks in an adversarial order must always
// restore previously zeroed ranges from the base image.
func TestAblationRendererRangeRestore(t *testing.T) {
	raw := corpus.NewGenerator(7).Sample(corpus.Malware).Raw
	f, err := pefile.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var present []*pefile.Section
	for _, name := range []string{".text", ".data", ".rdata"} {
		if s := f.SectionByName(name); s != nil && len(s.Data) > 0 {
			present = append(present, s)
		}
	}
	if len(present) < 3 {
		t.Skip("sample lacks the three probe sections")
	}
	r := newAblationRenderer(f, present)
	n := len(present)
	full := uint32(1<<n) - 1

	// Reference images, each rendered into a fresh buffer.
	wantFor := func(mask uint32) []byte {
		out := append([]byte(nil), r.base...)
		for i, rg := range r.ranges {
			if mask&(1<<i) == 0 {
				for j := rg[0]; j < rg[1]; j++ {
					out[j] = 0
				}
			}
		}
		return out
	}

	// Serial rendering reuses one pooled buffer across all masks; walk the
	// lattice in an order that flips bits both directions.
	order := []uint32{full, 0, 5, 2, full, 1, 6, 3, 0, full}
	for _, mask := range order {
		mask &= full
		img := r.render(mask)
		want := wantFor(mask)
		if string(img.buf) != string(want) {
			t.Fatalf("mask %03b: rendered image differs from reference", mask)
		}
		r.release(img)
	}
}
