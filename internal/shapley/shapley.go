// Package shapley implements the paper's problem-space explainability
// method (PEM, §III-B): exact section-level Shapley values (Eq. 1) over an
// ensemble of known detectors, and the Algorithm-1 workflow that averages
// them across sampled malware, ranks sections per model, and intersects the
// per-model top-k into the common critical sections.
//
// In the problem space a malware sample's "attributes" are its PE sections;
// f(x_ŝ) is the model's score on the sample with only the sections in ŝ
// present (absent sections are zeroed in place, keeping structure intact).
package shapley

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"mpass/internal/parallel"
	"mpass/internal/pefile"
)

// Model is the minimal detector view PEM needs. detect.Detector satisfies
// it.
type Model interface {
	Name() string
	Score(raw []byte) float64
}

// SectionScore pairs a section name with its averaged Shapley value.
type SectionScore struct {
	Section string
	Value   float64
}

// SectionShapley computes φ_{i,f,x} of Eq. 1 for every section of the
// sample that appears in secNames, evaluating the model exactly 2^n times
// for n participating sections. It is the single-threaded entry point;
// see SectionShapleyWorkers for the pooled variant.
func SectionShapley(raw []byte, secNames []string, score func([]byte) float64) (map[string]float64, error) {
	return SectionShapleyWorkers(raw, secNames, score, 1)
}

// SectionShapleyWorkers is SectionShapley with the subset evaluations — the
// entire cost of the computation — fanned out across a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). Every subset score is an independent
// pure evaluation and the φ summation always walks the subset lattice in
// the same order, so results are bit-identical for every worker count.
//
// score must be safe for concurrent calls and must neither mutate nor
// retain the byte slice it is handed — the ablated images live in reusable
// buffers. Every Detector in this codebase is read-only at scoring time and
// qualifies.
func SectionShapleyWorkers(raw []byte, secNames []string, score func([]byte) float64, workers int) (map[string]float64, error) {
	f, err := pefile.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("shapley: %w", err)
	}
	want := make(map[string]bool, len(secNames))
	for _, n := range secNames {
		want[n] = true
	}
	// Participating sections, in table order for determinism.
	var present []*pefile.Section
	for _, s := range f.Sections {
		if want[s.Name] && len(s.Data) > 0 {
			present = append(present, s)
		}
	}
	n := len(present)
	if n == 0 {
		return map[string]float64{}, nil
	}
	if n > 16 {
		return nil, fmt.Errorf("shapley: %d sections exceeds exact-enumeration limit 16", n)
	}

	// Every mask in [0, 2^n) is needed by the φ summation below, so instead
	// of memoizing lazily the table is filled up front, one independent
	// ablated render + model evaluation per mask, in parallel. Rendering is
	// in place: the serialized layout never depends on section content, so
	// each mask is the base image with the absent sections' byte ranges
	// zeroed — no Parse/Clone/Bytes per subset. Reusable image buffers
	// recycle through a pool, and each one tracks which ranges it currently
	// has zeroed so consecutive masks only touch the ranges that differ.
	render := newAblationRenderer(f, present)
	ablated := make([]float64, 1<<n)
	parallel.ForEach(workers, 1<<n, func(mask int) {
		img := render.render(uint32(mask))
		ablated[mask] = score(img.buf)
		render.release(img)
	})

	// Precompute the subset weights |ŝ|!(n−|ŝ|−1)!/n!.
	fact := make([]float64, n+1)
	fact[0] = 1
	for i := 1; i <= n; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	weight := make([]float64, n)
	for s := 0; s < n; s++ {
		weight[s] = fact[s] * fact[n-s-1] / fact[n]
	}

	out := make(map[string]float64, n)
	full := uint32(1<<n) - 1
	for i, sec := range present {
		bit := uint32(1) << i
		var phi float64
		rest := full &^ bit
		// Enumerate subsets ŝ of the other sections.
		for sub := uint32(0); ; sub = (sub - rest) & rest {
			size := bits.OnesCount32(sub)
			phi += weight[size] * (ablated[sub|bit] - ablated[sub])
			if sub == rest {
				break
			}
		}
		out[sec.Name] = phi
	}
	return out, nil
}

// ablationRenderer produces the serialized image for every ablation subset
// without re-parsing or re-serializing: PE layout never depends on section
// *content*, so "sections outside the mask zeroed, structure intact" equals
// the base image with those sections' raw byte ranges zeroed in place.
type ablationRenderer struct {
	base   []byte    // full serialized image, every section present
	ranges [][2]int  // per present section: [fileOffset, end) of its raw data
	pool   sync.Pool // *ablationImg
}

// ablationImg is one reusable image buffer plus the set of section ranges it
// currently has zeroed, so re-rendering touches only the ranges that differ
// from the previous mask it served.
type ablationImg struct {
	buf    []byte
	zeroed uint32
}

// newAblationRenderer serializes the base image (fixing the layout) and
// records each present section's raw byte range.
func newAblationRenderer(f *pefile.File, present []*pefile.Section) *ablationRenderer {
	r := &ablationRenderer{base: f.Bytes(), ranges: make([][2]int, len(present))}
	for i, s := range present {
		off := int(s.PointerToRawData)
		r.ranges[i] = [2]int{off, off + len(s.Data)}
	}
	return r
}

// render returns an image with exactly the sections in mask present (bit i
// set keeps present[i]) and every other participating section zeroed. The
// result is bit-identical to cloning the file, zeroing the absent sections'
// data, and serializing. Callers must hand the image back via release and
// must not retain buf past that.
func (r *ablationRenderer) render(mask uint32) *ablationImg {
	img, _ := r.pool.Get().(*ablationImg)
	if img == nil {
		img = &ablationImg{buf: append([]byte(nil), r.base...)}
	}
	for i, rg := range r.ranges {
		bit := uint32(1) << i
		wantZero := mask&bit == 0
		isZero := img.zeroed&bit != 0
		switch {
		case wantZero && !isZero:
			zero := img.buf[rg[0]:rg[1]]
			for j := range zero {
				zero[j] = 0
			}
		case !wantZero && isZero:
			copy(img.buf[rg[0]:rg[1]], r.base[rg[0]:rg[1]])
		}
	}
	img.zeroed = ^mask & (uint32(1)<<len(r.ranges) - 1)
	return img
}

// release recycles an image buffer for the next subset.
func (r *ablationRenderer) release(img *ablationImg) { r.pool.Put(img) }

// CommonSections returns the topH section names occurring most often across
// the samples, ties broken lexicographically for determinism.
func CommonSections(samples [][]byte, topH int) ([]string, error) {
	counts := make(map[string]int)
	for i, raw := range samples {
		f, err := pefile.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("shapley: sample %d: %w", i, err)
		}
		for _, s := range f.Sections {
			if len(s.Data) > 0 {
				counts[s.Name]++
			}
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool {
		if counts[names[a]] != counts[names[b]] {
			return counts[names[a]] > counts[names[b]]
		}
		return names[a] < names[b]
	})
	if topH > 0 && len(names) > topH {
		names = names[:topH]
	}
	return names, nil
}

// Config parameterizes the PEM workflow.
type Config struct {
	TopH int // most-common sections considered (paper: 30)
	TopK int // per-model critical sections kept before intersecting
	// Workers bounds the pool running Algorithm 1's (model, sample) Shapley
	// computations and their subset evaluations (<= 0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig uses the paper's top-30 common-section cap with a top-3
// per-model cut.
func DefaultConfig() Config { return Config{TopH: 30, TopK: 3} }

// Result is the output of Algorithm 1.
type Result struct {
	// Sections lists the common sections considered (S_all).
	Sections []string
	// PerModel maps each model name to its averaged, descending-ranked
	// section Shapley values (E_f(φ_i)).
	PerModel map[string][]SectionScore
	// Critical is the intersection of per-model top-k sections — the
	// common critical sections S̃, ordered by mean value across models.
	Critical []string
}

// PEM runs Algorithm 1: Shapley values per (model, section, sample),
// averaged over samples, ranked per model, intersected across models.
func PEM(models []Model, samples [][]byte, cfg Config) (*Result, error) {
	if len(models) == 0 || len(samples) == 0 {
		return nil, fmt.Errorf("shapley: need at least one model and one sample")
	}
	if cfg.TopH <= 0 {
		cfg.TopH = 30
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 3
	}
	common, err := CommonSections(samples, cfg.TopH)
	if err != nil {
		return nil, err
	}

	// Algorithm 1's dominant cost is the |models| × |samples| grid of
	// exact Shapley computations. Each grid entry is independent, so the
	// whole grid fans out over one pool; aggregation below then reads the
	// results in (model, sample) order, keeping every average bit-identical
	// to the nested serial loops.
	phis := make([]map[string]float64, len(models)*len(samples))
	gridErr := parallel.ForEachErr(cfg.Workers, len(phis), func(i int) error {
		m, raw := models[i/len(samples)], samples[i%len(samples)]
		phi, err := SectionShapleyWorkers(raw, common, m.Score, 1)
		if err != nil {
			return fmt.Errorf("model %s: %w", m.Name(), err)
		}
		phis[i] = phi
		return nil
	})
	if gridErr != nil {
		return nil, gridErr
	}

	res := &Result{Sections: common, PerModel: make(map[string][]SectionScore)}
	inTopK := make(map[string]int) // section -> number of models ranking it top-k
	meanAcross := make(map[string]float64)

	for mi, m := range models {
		sums := make(map[string]float64, len(common))
		for si := range samples {
			phi := phis[mi*len(samples)+si]
			for _, name := range common {
				sums[name] += phi[name] // absent sections contribute 0
			}
		}
		ranked := make([]SectionScore, 0, len(common))
		for _, name := range common {
			avg := sums[name] / float64(len(samples))
			ranked = append(ranked, SectionScore{Section: name, Value: avg})
			meanAcross[name] += avg / float64(len(models))
		}
		sort.Slice(ranked, func(a, b int) bool {
			if ranked[a].Value != ranked[b].Value {
				return ranked[a].Value > ranked[b].Value
			}
			return ranked[a].Section < ranked[b].Section
		})
		res.PerModel[m.Name()] = ranked
		k := cfg.TopK
		if k > len(ranked) {
			k = len(ranked)
		}
		for _, sc := range ranked[:k] {
			inTopK[sc.Section]++
		}
	}

	for name, cnt := range inTopK {
		if cnt == len(models) {
			res.Critical = append(res.Critical, name)
		}
	}
	sort.Slice(res.Critical, func(a, b int) bool {
		if meanAcross[res.Critical[a]] != meanAcross[res.Critical[b]] {
			return meanAcross[res.Critical[a]] > meanAcross[res.Critical[b]]
		}
		return res.Critical[a] < res.Critical[b]
	})
	return res, nil
}

// Efficiency returns the Shapley efficiency-axiom residual for one sample:
// |Σφ_i − (f(x) − f(x_∅))|. Exact computation should make this ~0; tests
// use it as the correctness property.
func Efficiency(raw []byte, secNames []string, score func([]byte) float64) (float64, error) {
	phi, err := SectionShapley(raw, secNames, score)
	if err != nil {
		return 0, err
	}
	f, err := pefile.Parse(raw)
	if err != nil {
		return 0, err
	}
	empty := f.Clone()
	want := make(map[string]bool)
	for _, n := range secNames {
		want[n] = true
	}
	for _, s := range empty.Sections {
		if want[s.Name] {
			for j := range s.Data {
				s.Data[j] = 0
			}
		}
	}
	// Fold in sorted-key order: map iteration order is randomized per run,
	// and float addition is order-sensitive at the bit level.
	keys := make([]string, 0, len(phi))
	for name := range phi {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	var sum float64
	for _, name := range keys {
		sum += phi[name]
	}
	return math.Abs(sum - (score(f.Bytes()) - score(empty.Bytes()))), nil
}
