package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpass/internal/core"
)

// echoOracle answers from a fixed script so tests can tell forwarded
// queries from injected ones.
type echoOracle struct {
	calls    int
	detected bool
}

func (o *echoOracle) Name() string { return "echo" }
func (o *echoOracle) Detected([]byte) bool {
	o.calls++
	return o.detected
}

// faultSequence replays n queries and records which fault (if any) each one
// drew — the determinism probe.
func faultSequence(t *testing.T, cfg Config, n int) []string {
	t.Helper()
	inner := &echoOracle{}
	o := Wrap(inner, cfg)
	seq := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := o.DetectedContext(ctx, []byte("q"))
		cancel()
		switch {
		case errors.Is(err, ErrInjected):
			seq = append(seq, "error")
		case errors.Is(err, context.DeadlineExceeded):
			seq = append(seq, "hang")
		case err == nil:
			seq = append(seq, "ok")
		default:
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
	}
	return seq
}

func TestInjectionIsDeterministicPerSeed(t *testing.T) {
	cfg := Config{Seed: 42, HangRate: 0.3, ErrorRate: 0.3}
	a := faultSequence(t, cfg, 64)
	b := faultSequence(t, cfg, 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d diverged across identical seeds: %q vs %q", i, a[i], b[i])
		}
	}
	kinds := map[string]int{}
	for _, k := range a {
		kinds[k]++
	}
	if kinds["hang"] == 0 || kinds["error"] == 0 || kinds["ok"] == 0 {
		t.Fatalf("64 queries at 0.3/0.3 rates should mix all outcomes, got %v", kinds)
	}

	cfg.Seed = 43
	c := faultSequence(t, cfg, 64)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical fault sequence")
	}
}

func TestZeroConfigForwardsEverything(t *testing.T) {
	inner := &echoOracle{detected: true}
	o := Wrap(inner, Config{Seed: 1})
	for i := 0; i < 32; i++ {
		det, err := o.DetectedContext(context.Background(), []byte("q"))
		if err != nil || !det {
			t.Fatalf("query %d: (%v, %v), want (true, nil)", i, det, err)
		}
	}
	if inner.calls != 32 {
		t.Fatalf("inner oracle saw %d calls, want 32", inner.calls)
	}
	s := o.Stats()
	if s.Queries != 32 || s.Hangs != 0 || s.Errors != 0 || s.Delays != 0 {
		t.Fatalf("stats = %+v, want 32 clean queries", s)
	}
}

func TestHangHonorsContextCancellation(t *testing.T) {
	o := Wrap(&echoOracle{}, Config{Seed: 1, HangRate: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := o.DetectedContext(ctx, []byte("q"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang-injected query returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hang-injected query ignored cancellation")
	}
	if s := o.Stats(); s.Hangs != 1 {
		t.Fatalf("stats = %+v, want 1 hang", s)
	}
}

func TestLatencyIsBoundedByContext(t *testing.T) {
	o := Wrap(&echoOracle{}, Config{Seed: 1, LatencyRate: 1, Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := o.DetectedContext(ctx, []byte("q"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("delayed query returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delayed query took %v despite a 10ms deadline", elapsed)
	}
	if s := o.Stats(); s.Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", s)
	}
}

func TestContextFreeDetectedFailsClosed(t *testing.T) {
	inner := &echoOracle{detected: false}
	o := Wrap(inner, Config{Seed: 1, HangRate: 1})
	if !o.Detected([]byte("q")) {
		t.Fatal("hang on the context-free path must fail closed (detected)")
	}
	if inner.calls != 0 {
		t.Fatal("failed-closed query still reached the inner oracle")
	}

	o2 := Wrap(inner, Config{Seed: 1, ErrorRate: 1})
	if !o2.Detected([]byte("q")) {
		t.Fatal("injected error on the context-free path must fail closed")
	}
}

// The wrapper must satisfy the oracle contracts it claims.
var (
	_ core.Oracle        = (*Oracle)(nil)
	_ core.ContextOracle = (*Oracle)(nil)
)
