package faultinject

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// doGet issues one GET through the transport.
func doGet(t *testing.T, client *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

// TestTransportDeterministic pins the determinism contract: equal seeds
// yield the identical error sequence, and the zero config injects nothing.
func TestTransportDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	sequence := func(seed int64) []bool {
		tr := WrapTransport(nil, TransportConfig{Seed: seed, ErrorRate: 0.4})
		client := &http.Client{Transport: tr}
		var outcomes []bool
		for i := 0; i < 40; i++ {
			resp, err := doGet(t, client, ts.URL)
			outcomes = append(outcomes, err != nil)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return outcomes
	}

	a, b := sequence(7), sequence(7)
	errs := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at request %d for equal seeds", i)
		}
		if a[i] {
			errs++
		}
	}
	if errs == 0 || errs == len(a) {
		t.Fatalf("error rate 0.4 injected %d/%d failures, want a mix", errs, len(a))
	}

	// Zero config: transparent.
	tr := WrapTransport(nil, TransportConfig{Seed: 1})
	client := &http.Client{Transport: tr}
	for i := 0; i < 10; i++ {
		resp, err := doGet(t, client, ts.URL)
		if err != nil {
			t.Fatalf("zero-config transport injected a fault: %v", err)
		}
		resp.Body.Close()
	}
	if s := tr.Stats(); s.Requests != 10 || s.Errors != 0 || s.Delays != 0 {
		t.Fatalf("zero-config stats = %+v", s)
	}
}

// TestTransportLatencyBoundedByContext: an injected delay must observe the
// request context instead of holding the caller hostage.
func TestTransportLatencyBoundedByContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	tr := WrapTransport(nil, TransportConfig{Seed: 1, LatencyRate: 1, Latency: time.Minute})
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("expected the delayed request to fail with the expired context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored the context: took %v", elapsed)
	}
	if s := tr.Stats(); s.Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", s)
	}
}
