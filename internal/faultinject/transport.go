// HTTP-layer fault injection: the gateway's analog of the oracle wrapper.
// Where Wrap degrades a core.Oracle for attack-job drills, Transport
// degrades an http.RoundTripper for cluster drills — dropped connections
// and added latency between a gateway and its replicas — with the same
// determinism contract: a fixed number of uniform draws per request from a
// seeded stream, so the fault sequence is a function of the request index
// alone and changing one rate never reshuffles the other faults.
package faultinject

import (
	"errors"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedTransport is the connection-level failure Transport raises;
// to the gateway it is indistinguishable from a replica dying mid-request.
var ErrInjectedTransport = errors.New("faultinject: injected transport error")

// TransportConfig sets per-request fault probabilities. Rates are in
// [0, 1]; a zero-valued config injects nothing.
type TransportConfig struct {
	// Seed drives the fault decision stream.
	Seed int64
	// ErrorRate is the probability a request fails with
	// ErrInjectedTransport before reaching the wire.
	ErrorRate float64
	// LatencyRate is the probability a request is delayed by Latency
	// before being forwarded (bounded by the request's context).
	LatencyRate float64
	// Latency is the injected delay magnitude.
	Latency time.Duration
}

// Transport is the fault-injecting RoundTripper. Two uniform draws per
// request — error, latency, in that order — regardless of rates.
type Transport struct {
	inner http.RoundTripper
	cfg   TransportConfig

	mu  sync.Mutex
	rng *rand.Rand

	requests atomic.Int64
	errs     atomic.Int64
	delays   atomic.Int64
}

// WrapTransport builds the fault-injecting transport around inner
// (http.DefaultTransport when nil).
func WrapTransport(inner http.RoundTripper, cfg TransportConfig) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// TransportStats counts what was actually injected.
type TransportStats struct {
	Requests int64 // requests seen
	Errors   int64 // requests failed with ErrInjectedTransport
	Delays   int64 // requests delayed by cfg.Latency
}

// Stats snapshots the injection counters.
func (t *Transport) Stats() TransportStats {
	return TransportStats{
		Requests: t.requests.Load(),
		Errors:   t.errs.Load(),
		Delays:   t.delays.Load(),
	}
}

// RoundTrip implements http.RoundTripper: it injects the drawn faults and
// otherwise forwards the request unchanged.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	t.mu.Lock()
	ue, ul := t.rng.Float64(), t.rng.Float64()
	t.mu.Unlock()
	if ue < t.cfg.ErrorRate {
		t.errs.Add(1)
		return nil, ErrInjectedTransport
	}
	if ul < t.cfg.LatencyRate && t.cfg.Latency > 0 {
		t.delays.Add(1)
		timer := time.NewTimer(t.cfg.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	return t.inner.RoundTrip(req)
}
