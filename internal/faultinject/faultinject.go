// Package faultinject wraps a core.Oracle with deterministic, seed-driven
// fault injection — transient errors, added latency, and outright hangs —
// so the serving layer's behavior under a degraded query oracle is
// exercised by tests and CI instead of merely claimed. Query-based attacks
// live or die on oracle availability (GAMMA and the Adversarial EXEmples
// survey both stress this); the reproduction therefore needs a lever that
// makes the oracle misbehave on demand.
//
// Fault decisions are drawn from a seeded *rand.Rand, three uniform draws
// per query (hang, error, latency — in that order) regardless of the
// configured rates, so the decision sequence for a given seed is a fixed
// function of the query index and changing one rate never reshuffles the
// other faults.
package faultinject

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mpass/internal/core"
)

// ErrInjected is the transient oracle failure the wrapper raises; retry
// layers treat it like any other transient error.
var ErrInjected = errors.New("faultinject: injected transient oracle error")

// Config sets per-query fault probabilities. All rates are in [0, 1];
// zero-valued Config injects nothing.
type Config struct {
	// Seed drives the fault decision stream.
	Seed int64
	// HangRate is the probability a query blocks until the caller's context
	// is cancelled (the stalled-scanner scenario).
	HangRate float64
	// ErrorRate is the probability a query fails with ErrInjected.
	ErrorRate float64
	// LatencyRate is the probability a query is delayed by Latency before
	// being forwarded.
	LatencyRate float64
	// Latency is the injected delay magnitude.
	Latency time.Duration
}

// Stats counts what the wrapper actually injected.
type Stats struct {
	Queries int64 // queries seen (context-aware and plain)
	Hangs   int64 // queries parked until ctx cancellation
	Errors  int64 // queries failed with ErrInjected
	Delays  int64 // queries delayed by cfg.Latency
}

// Oracle is the fault-injecting wrapper. It implements core.ContextOracle;
// the context-free Detected path cannot hang (there is nothing to interrupt
// it), so a drawn hang degrades to a fail-closed detection there.
type Oracle struct {
	inner core.Oracle
	cfg   Config

	mu  sync.Mutex
	rng *rand.Rand

	queries atomic.Int64
	hangs   atomic.Int64
	errs    atomic.Int64
	delays  atomic.Int64
}

// Wrap builds the fault-injecting oracle around inner.
func Wrap(inner core.Oracle, cfg Config) *Oracle {
	return &Oracle{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements core.Oracle.
func (o *Oracle) Name() string { return o.inner.Name() }

// UnwrapOracle implements core.OracleUnwrapper, so capability probes (model
// version reporting) reach through the fault layer.
func (o *Oracle) UnwrapOracle() core.Oracle { return o.inner }

// draw takes the query's three fault decisions from the seeded stream.
func (o *Oracle) draw() (hang, fail, delay bool) {
	o.mu.Lock()
	uh, ue, ul := o.rng.Float64(), o.rng.Float64(), o.rng.Float64()
	o.mu.Unlock()
	return uh < o.cfg.HangRate, ue < o.cfg.ErrorRate, ul < o.cfg.LatencyRate && o.cfg.Latency > 0
}

// DetectedContext implements core.ContextOracle: it injects the drawn
// faults — a hang parks on ctx.Done, an error returns ErrInjected, latency
// waits (also bounded by ctx) — and otherwise forwards the query.
func (o *Oracle) DetectedContext(ctx context.Context, raw []byte) (bool, error) {
	o.queries.Add(1)
	hang, fail, delay := o.draw()
	if hang {
		o.hangs.Add(1)
		<-ctx.Done()
		return false, ctx.Err()
	}
	if fail {
		o.errs.Add(1)
		return false, ErrInjected
	}
	if delay {
		o.delays.Add(1)
		t := time.NewTimer(o.cfg.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return false, ctx.Err()
		}
	}
	return core.QueryOracle(ctx, o.inner, raw)
}

// Detected implements core.Oracle for context-free callers. A drawn hang
// cannot be realized without a context to interrupt it, so it fails closed
// (detected), as does a drawn error; latency is injected as a plain sleep.
func (o *Oracle) Detected(raw []byte) bool {
	o.queries.Add(1)
	hang, fail, delay := o.draw()
	if hang {
		o.hangs.Add(1)
		return true
	}
	if fail {
		o.errs.Add(1)
		return true
	}
	if delay {
		o.delays.Add(1)
		//lint:ignore ctxflow context-free Oracle compatibility path; the bounded form is DetectedContext
		time.Sleep(o.cfg.Latency)
	}
	return o.inner.Detected(raw)
}

// Stats snapshots the injection counters.
func (o *Oracle) Stats() Stats {
	return Stats{
		Queries: o.queries.Load(),
		Hangs:   o.hangs.Load(),
		Errors:  o.errs.Load(),
		Delays:  o.delays.Load(),
	}
}
