package corpus

import (
	"fmt"

	"mpass/internal/pefile"
)

// Augment returns a structurally-perturbed copy of a sample: extra sections
// holding random or cross-program content, overlay appends, renamed
// sections, and a rewritten timestamp — while the code and data content (and
// therefore the family signal and the behaviour) stay untouched.
//
// Real-world training corpora contain exactly this variety (installers with
// overlays, resource-heavy binaries, packer-adjacent benign software), and
// detectors trained on it learn that file *structure* is not maliciousness.
// Training on augmented data is what concentrates every model's decision on
// code/data content — the property PEM measures and MPass exploits — and
// what keeps append-only attacks from trivially washing detectors out.
func (g *Generator) Augment(s *Sample, donors [][]byte) *Sample {
	f, err := pefile.Parse(s.Raw)
	if err != nil {
		panic(fmt.Sprintf("corpus: augmenting invalid sample %s: %v", s.Name, err))
	}
	// 1–3 extra sections with mixed content.
	n := 1 + g.rng.Intn(3)
	for i := 0; i < n; i++ {
		size := 128 + g.rng.Intn(2048)
		data := make([]byte, size)
		switch g.rng.Intn(3) {
		case 0: // high-entropy blob (resources, compressed data)
			g.rng.Read(data)
		case 1: // content borrowed from another program
			if len(donors) > 0 {
				d := donors[g.rng.Intn(len(donors))]
				off := g.rng.Intn(len(d))
				for j := range data {
					data[j] = d[(off+j)%len(d)]
				}
			}
		case 2: // sparse/zero padding
		}
		name := fmt.Sprintf(".a%d%c", i, 'a'+rune(g.rng.Intn(26)))
		if _, err := f.AddSection(name, data, pefile.SecCharacteristicsRsrc); err != nil {
			panic(err)
		}
	}
	// Random overlay.
	if g.rng.Intn(2) == 0 {
		ov := make([]byte, g.rng.Intn(2048))
		g.rng.Read(ov)
		f.AppendOverlay(ov)
	}
	// Occasional section rename and always a fresh timestamp.
	if g.rng.Intn(3) == 0 && len(f.Sections) > 0 {
		s := f.Sections[g.rng.Intn(len(f.Sections))]
		_ = f.RenameSection(s.Name, fmt.Sprintf(".r%02d", g.rng.Intn(100)))
	}
	f.SetTimestamp(uint32(g.rng.Int31()))

	g.n++
	return &Sample{
		Name:   fmt.Sprintf("%s-aug-%04d.exe", s.Family, g.n),
		Family: s.Family,
		Raw:    f.Bytes(),
	}
}

// MakeAugmentedDataset builds a dataset whose *training* split additionally
// contains structurally-augmented variants: one per benign training sample,
// and one per quarter of the malware training samples. The asymmetry is
// deliberate and mirrors real corpora: benign software ships with overlays,
// resources, and installers far more often than malware does, so detectors
// end up only partially invariant to structural noise on the malicious
// side — the residual attack surface that lets append-style baselines
// succeed part of the time (Tables I–III) while content-level evasion
// (MPass) succeeds almost always. The test split stays clean.
func MakeAugmentedDataset(seed int64, nMal, nBen int, trainFrac float64) *Dataset {
	ds := MakeDataset(seed, nMal, nBen, trainFrac)
	g := NewGenerator(seed + 424242)
	var donors [][]byte
	for _, s := range ds.Train {
		if s.Family == Benign {
			donors = append(donors, s.Raw)
		}
	}
	var aug []*Sample
	malSeen := 0
	for _, s := range ds.Train {
		if s.Family == Malware {
			malSeen++
			if malSeen%8 != 0 {
				continue
			}
		}
		aug = append(aug, g.Augment(s, donors))
	}
	ds.Train = append(ds.Train, aug...)
	return ds
}

// MakeVendorDataset builds the heavier training corpus the commercial-AV
// simulators use: every training sample of both families gets an augmented
// variant (vendors train on repacked, bundled, and installer-wrapped
// malware at scale, so their models are far more invariant to structural
// noise than the academic offline models).
func MakeVendorDataset(seed int64, nMal, nBen int, trainFrac float64) *Dataset {
	ds := MakeDataset(seed, nMal, nBen, trainFrac)
	g := NewGenerator(seed + 535353)
	var donors [][]byte
	for _, s := range ds.Train {
		if s.Family == Benign {
			donors = append(donors, s.Raw)
		}
	}
	var aug []*Sample
	for _, s := range ds.Train {
		aug = append(aug, g.Augment(s, donors))
		if s.Family == Malware {
			aug = append(aug, g.Augment(s, donors))
		}
	}
	ds.Train = append(ds.Train, aug...)
	return ds
}
