package corpus

import (
	"bytes"
	"math"
	"testing"

	"mpass/internal/pefile"
	"mpass/internal/sandbox"
)

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42).Sample(Malware)
	b := NewGenerator(42).Sample(Malware)
	if !bytes.Equal(a.Raw, b.Raw) {
		t.Error("same seed produced different samples")
	}
	c := NewGenerator(43).Sample(Malware)
	if bytes.Equal(a.Raw, c.Raw) {
		t.Error("different seeds produced identical samples")
	}
}

func TestSamplesAreValidPE(t *testing.T) {
	g := NewGenerator(1)
	for _, fam := range []Family{Benign, Malware} {
		for i := 0; i < 10; i++ {
			s := g.Sample(fam)
			f, err := pefile.Parse(s.Raw)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			if f.SectionByName(".text") == nil || f.SectionByName(".data") == nil {
				t.Errorf("%s: missing core sections", s.Name)
			}
			if f.EntrySection() == nil || !f.EntrySection().IsCode() {
				t.Errorf("%s: entry point not in a code section", s.Name)
			}
		}
	}
}

func TestSamplesExecuteAndHalt(t *testing.T) {
	g := NewGenerator(2)
	for _, fam := range []Family{Benign, Malware} {
		for i := 0; i < 15; i++ {
			s := g.Sample(fam)
			res, err := sandbox.Run(s.Raw)
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			if !res.Halted() {
				t.Fatalf("%s: fault %v", s.Name, res.Err)
			}
			if len(res.Trace) == 0 {
				t.Errorf("%s: empty behaviour trace", s.Name)
			}
		}
	}
}

func TestMalwareTracesShowSensitiveAPIs(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 10; i++ {
		s := g.Sample(Malware)
		res, err := sandbox.Run(s.Raw)
		if err != nil || !res.Halted() {
			t.Fatalf("%s: %v %v", s.Name, err, res.Err)
		}
		sensitive := 0
		for _, e := range res.Trace {
			if IsSensitive(e.API) {
				sensitive++
			}
		}
		if sensitive == 0 {
			t.Errorf("%s: no sensitive API in trace", s.Name)
		}
	}
}

func TestBenignTracesHaveNoSensitiveAPIs(t *testing.T) {
	g := NewGenerator(4)
	for i := 0; i < 10; i++ {
		s := g.Sample(Benign)
		res, err := sandbox.Run(s.Raw)
		if err != nil || !res.Halted() {
			t.Fatalf("%s: %v %v", s.Name, err, res.Err)
		}
		for _, e := range res.Trace {
			if IsSensitive(e.API) {
				t.Errorf("%s: benign sample called sensitive API %d", s.Name, e.API)
			}
		}
	}
}

func TestBehaviourDependsOnDataSection(t *testing.T) {
	// Corrupting .data without a recovery module must change the trace for
	// at least some samples: that property is what makes naive data-section
	// modification functionality-breaking.
	g := NewGenerator(5)
	changed := 0
	for i := 0; i < 12; i++ {
		s := g.Sample(Malware)
		f, err := pefile.Parse(s.Raw)
		if err != nil {
			t.Fatal(err)
		}
		d := f.SectionByName(".data")
		for j := range d.Data {
			d.Data[j] ^= 0xA5
		}
		ok, err := sandbox.BehaviourPreserved(s.Raw, f.Bytes())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !ok {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no sample's behaviour depends on its data section")
	}
}

func TestImportSectionNamesCalledAPIs(t *testing.T) {
	g := NewGenerator(6)
	s := g.Sample(Malware)
	f, err := pefile.Parse(s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	idata := f.SectionByName(".idata")
	if idata == nil {
		t.Fatal("no .idata section")
	}
	res, err := sandbox.Run(s.Raw)
	if err != nil || !res.Halted() {
		t.Fatal(err, res.Err)
	}
	for _, e := range res.Trace {
		name := APIName(e.API)
		if name == "" {
			t.Fatalf("trace contains unnamed API %d", e.API)
		}
		if !bytes.Contains(idata.Data, []byte(name)) {
			t.Errorf("import table missing called API %q", name)
		}
	}
}

func TestFamilyDataSectionEntropyGap(t *testing.T) {
	// Malware .data should be visibly higher-entropy than benign .data; the
	// EMBER-style features rely on this.
	ent := func(b []byte) float64 {
		var hist [256]int
		for _, x := range b {
			hist[x]++
		}
		h := 0.0
		for _, c := range hist {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(len(b))
			h -= p * math.Log2(p)
		}
		return h
	}
	g := NewGenerator(7)
	var malEnt, benEnt float64
	const n = 10
	for i := 0; i < n; i++ {
		m, _ := pefile.Parse(g.Sample(Malware).Raw)
		b, _ := pefile.Parse(g.Sample(Benign).Raw)
		malEnt += ent(m.SectionByName(".data").Data)
		benEnt += ent(b.SectionByName(".data").Data)
	}
	if malEnt/n <= benEnt/n {
		t.Errorf("malware data entropy %.2f not above benign %.2f", malEnt/n, benEnt/n)
	}
}

func TestMakeDatasetSplit(t *testing.T) {
	ds := MakeDataset(11, 10, 10, 0.8)
	if len(ds.Train) != 16 || len(ds.Test) != 4 {
		t.Fatalf("split = %d/%d, want 16/4", len(ds.Train), len(ds.Test))
	}
	countMal := func(ss []*Sample) int {
		n := 0
		for _, s := range ss {
			if s.Family == Malware {
				n++
			}
		}
		return n
	}
	if countMal(ds.Train) != 8 || countMal(ds.Test) != 2 {
		t.Errorf("family balance off: train %d/16 malware, test %d/4",
			countMal(ds.Train), countMal(ds.Test))
	}
}

func TestFamilyString(t *testing.T) {
	if Benign.String() != "benign" || Malware.String() != "malware" {
		t.Error("Family.String mismatch")
	}
}

func TestAPINameAndSensitivity(t *testing.T) {
	if APIName(900) != "CreateRemoteThread" {
		t.Errorf("APIName(900) = %q", APIName(900))
	}
	if APIName(1) != "GetTickCount" {
		t.Errorf("APIName(1) = %q", APIName(1))
	}
	if APIName(123456) != "" {
		t.Error("unknown API has a name")
	}
	if IsSensitive(1) || !IsSensitive(900) {
		t.Error("IsSensitive misclassifies")
	}
}
