package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// API identifiers used by synthetic programs. The split mirrors what static
// detectors key on in real PE malware: a benign program imports and calls
// mundane OS services, while malware additionally invokes a recognizable set
// of sensitive APIs (process injection, registry persistence, crypto for
// ransomware payloads). The numeric IDs appear as SYS immediates inside code
// sections, and the names appear as import strings in .idata — so both the
// byte-level detectors (MalConv family) and the feature-based detector
// (EMBER/LightGBM style) can learn the family signal, and both signals live
// exactly where the paper's PEM locates them: code and data sections.
type APIInfo struct {
	ID   uint32
	Name string
}

// BenignAPIs are invoked by both families.
var BenignAPIs = []APIInfo{
	{1, "GetTickCount"},
	{2, "CreateFileW"},
	{3, "ReadFile"},
	{4, "WriteFile"},
	{5, "CloseHandle"},
	{6, "GetModuleHandleW"},
	{7, "LoadLibraryW"},
	{8, "GetProcAddress"},
	{9, "HeapAlloc"},
	{10, "HeapFree"},
	{11, "GetSystemTimeAsFileTime"},
	{12, "QueryPerformanceCounter"},
	{13, "MessageBoxW"},
	{14, "GetWindowTextW"},
	{15, "SendMessageW"},
	{16, "GetCommandLineW"},
	{17, "ExitProcess"},
	{18, "Sleep"},
	{19, "GetLastError"},
	{20, "SetFilePointer"},
}

// SensitiveAPIs are the malicious-behaviour markers called (almost) only by
// the malware family.
var SensitiveAPIs = []APIInfo{
	{900, "CreateRemoteThread"},
	{901, "WriteProcessMemory"},
	{902, "VirtualAllocEx"},
	{903, "OpenProcess"},
	{904, "RegSetValueExW"},
	{905, "RegCreateKeyExW"},
	{906, "CryptEncrypt"},
	{907, "CryptAcquireContextW"},
	{908, "InternetOpenUrlW"},
	{909, "HttpSendRequestW"},
	{910, "URLDownloadToFileW"},
	{911, "ShellExecuteW"},
	{912, "AdjustTokenPrivileges"},
	{913, "SetWindowsHookExW"},
	{914, "GetAsyncKeyState"},
	{915, "CreateToolhelp32Snapshot"},
	{916, "Process32FirstW"},
	{917, "NtUnmapViewOfSection"},
	{918, "IsDebuggerPresent"},
	{919, "DeleteFileW"},
}

// APIName resolves an API ID to its import-table name, or "" if unknown.
func APIName(id uint32) string {
	for _, a := range BenignAPIs {
		if a.ID == id {
			return a.Name
		}
	}
	for _, a := range SensitiveAPIs {
		if a.ID == id {
			return a.Name
		}
	}
	return ""
}

// IsSensitive reports whether the API ID belongs to the sensitive set.
func IsSensitive(id uint32) bool { return id >= 900 }

// cryptoConstants are well-known high-entropy tables (the first bytes of
// the AES S-box and of the MD5 sine table) that ransomware-style samples
// embed in their data sections. They are a fixed, family-wide pattern —
// precisely the kind of data-section feature detectors latch onto.
var cryptoConstants = [][]byte{
	{ // AES S-box, first 64 entries
		0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
		0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
		0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
		0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
		0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
		0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
		0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
		0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	},
	{ // MD5 T[1..8], little-endian
		0x78, 0xa4, 0x6a, 0xd7, 0x56, 0xb7, 0xc7, 0xe8,
		0xdb, 0x70, 0x20, 0x24, 0xee, 0xce, 0xbd, 0xc1,
		0xaf, 0x0f, 0x7c, 0xf5, 0x2a, 0xc6, 0x87, 0x47,
		0x13, 0x46, 0x30, 0xa8, 0x01, 0x95, 0x46, 0xfd,
	},
	{ // RC4-style identity permutation prefix
		0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
		0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
		0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17,
	},
}

// malwareStrings populate malware .rdata: ransom-note fragments, tor/bitcoin
// markers, persistence registry paths.
var malwareStrings = []string{
	"YOUR FILES HAVE BEEN ENCRYPTED",
	"send 0.5 BTC to wallet 1BoatSLRHtKNngkdXEeobR76b53LETtpyT",
	"http://decryptor5xqxkzjh.onion/pay",
	"SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run",
	"cmd.exe /c vssadmin delete shadows /all /quiet",
	"SELECT * FROM moz_logins",
	"\\Device\\PhysicalDrive0",
	"Global\\MsWinZonesCacheCounterMutexA",
	"taskkill /f /im msmpeng.exe",
	".locked",
}

// Benign strings are generated procedurally: real benign software carries
// an effectively unbounded variety of vendor names, paths, and UI text, and
// that diversity matters — it is why verbatim benign content can never
// become a reliable malware signature. Only small framing fragments recur.
var (
	benignSyllables = []string{
		"con", "tor", "al", "ven", "mi", "cro", "soft", "data", "net", "sys",
		"core", "lib", "ser", "vice", "pro", "max", "lux", "temp", "arc", "dyn",
		"plex", "form", "ware", "view", "grid", "node", "byte", "flux", "mono",
	}
	benignTemplates = []string{
		"Copyright (c) 20%02d %s Corporation",
		"C:\\Program Files\\%s\\%s.dll",
		"https://www.%s.com/%s/update.xml",
		"%s %s Runtime Library",
		"Software\\%s\\%s\\Settings",
		"%s configuration error in module %s",
		"en-%s",
		"%s.ini",
		"Please restart %s to apply %s updates.",
		"\\\\%s\\share\\%s",
	}
)

// benignWord draws a pronounceable pseudo-word.
func benignWord(rng *rand.Rand) string {
	n := 2 + rng.Intn(3)
	var b []byte
	for i := 0; i < n; i++ {
		b = append(b, benignSyllables[rng.Intn(len(benignSyllables))]...)
	}
	if rng.Intn(2) == 0 && len(b) > 0 {
		b[0] = byte(unicodeUpper(rune(b[0])))
	}
	return string(b)
}

func unicodeUpper(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - 32
	}
	return r
}

// benignString renders one synthetic benign literal.
func benignString(rng *rand.Rand) string {
	t := benignTemplates[rng.Intn(len(benignTemplates))]
	switch strings.Count(t, "%") {
	case 1:
		return fmt.Sprintf(t, benignWord(rng))
	default:
		if strings.Contains(t, "%02d") {
			return fmt.Sprintf(t, rng.Intn(30), benignWord(rng))
		}
		return fmt.Sprintf(t, benignWord(rng), benignWord(rng))
	}
}
