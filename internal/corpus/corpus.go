// Package corpus generates the synthetic PE programs that stand in for the
// paper's evaluation corpus (2000 VirusTotal/VirusShare malware samples and
// 50,000 benign donor programs).
//
// Every generated sample is a complete, runnable PE32 image whose code is
// VISA-32 (see internal/visa) and whose observable behaviour is an API-call
// trace in the internal/sandbox VM. The two families differ in exactly the
// places the paper's explainability study identifies as critical:
//
//   - code sections: malware calls sensitive APIs (SYS 900+) in loops and
//     feeds data-section bytes through them; benign programs call mundane
//     APIs,
//   - data sections: malware embeds fixed crypto tables and high-entropy key
//     blocks; benign programs embed low-entropy configuration text,
//   - .idata/.rdata: import-name strings and family-typical literals.
//
// Generation is fully deterministic given the seed.
package corpus

import (
	"fmt"
	"math/rand"

	"mpass/internal/pefile"
	"mpass/internal/visa"
)

// Family labels a sample.
type Family int

const (
	// Benign is the goodware family (label 0 / negative class).
	Benign Family = iota
	// Malware is the malicious family (label 1 / positive class).
	Malware
)

// String returns "benign" or "malware".
func (f Family) String() string {
	if f == Malware {
		return "malware"
	}
	return "benign"
}

// Sample is one generated program.
type Sample struct {
	Name   string
	Family Family
	Raw    []byte // serialized PE image
}

// Generator produces samples deterministically from its seed.
type Generator struct {
	rng *rand.Rand
	n   int // samples generated so far, used in names
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Sample generates one program of the requested family.
func (g *Generator) Sample(f Family) *Sample {
	g.n++
	name := fmt.Sprintf("%s-%04d.exe", f, g.n)
	raw := g.build(f)
	return &Sample{Name: name, Family: f, Raw: raw}
}

// Batch generates n samples of one family.
func (g *Generator) Batch(n int, f Family) []*Sample {
	out := make([]*Sample, n)
	for i := range out {
		out[i] = g.Sample(f)
	}
	return out
}

// Dataset bundles a labeled train/test split.
type Dataset struct {
	Train []*Sample
	Test  []*Sample
}

// MakeDataset generates nMal malware and nBen benign samples and splits them
// trainFrac/1-trainFrac, interleaved so both splits stay balanced.
func MakeDataset(seed int64, nMal, nBen int, trainFrac float64) *Dataset {
	g := NewGenerator(seed)
	mal := g.Batch(nMal, Malware)
	ben := g.Batch(nBen, Benign)
	ds := &Dataset{}
	cutM := int(float64(nMal) * trainFrac)
	cutB := int(float64(nBen) * trainFrac)
	ds.Train = append(ds.Train, mal[:cutM]...)
	ds.Train = append(ds.Train, ben[:cutB]...)
	ds.Test = append(ds.Test, mal[cutM:]...)
	ds.Test = append(ds.Test, ben[cutB:]...)
	return ds
}

// program is the intermediate plan assembled in two passes (section virtual
// addresses are only known after the PE layout, but code size is fixed
// because VISA instructions are fixed-width).
type program struct {
	family    Family
	calls     []uint32 // API call plan, in order
	dataBytes []byte   // .data content
	dataRefs  []int32  // offsets into dataBytes passed through SYS args
	rdata     []byte   // strings section content
	idata     []byte   // import-name table content
	loopN     int32    // iterations of the central loop
	loopAPIs  []uint32 // APIs called inside the loop
}

// build constructs a full PE image for one sample.
func (g *Generator) build(fam Family) []byte {
	p := g.plan(fam)

	// Pass 1: assemble with placeholder section addresses to size the code.
	size := len(p.assemble(0, 0))

	f := pefile.New()
	text, err := f.AddSection(".text", make([]byte, size), pefile.SecCharacteristicsText)
	if err != nil {
		panic(err) // name and size are generator-controlled
	}
	data, err := f.AddSection(".data", p.dataBytes, pefile.SecCharacteristicsData)
	if err != nil {
		panic(err)
	}
	rdata, err := f.AddSection(".rdata", p.rdata, pefile.SecCharacteristicsRsrc)
	if err != nil {
		panic(err)
	}
	if _, err := f.AddSection(".idata", p.idata, pefile.SecCharacteristicsRsrc); err != nil {
		panic(err)
	}
	if g.rng.Intn(3) == 0 {
		rsrc := g.resourceBlob(fam)
		if _, err := f.AddSection(".rsrc", rsrc, pefile.SecCharacteristicsRsrc); err != nil {
			panic(err)
		}
	}
	_ = rdata

	// Pass 2: assemble against the real virtual addresses.
	code := p.assemble(int32(text.VirtualAddress), int32(data.VirtualAddress))
	if len(code) != size {
		panic("corpus: two-pass assembly size mismatch")
	}
	copy(text.Data, code)
	f.SetEntryPoint(text.VirtualAddress)
	f.SetTimestamp(uint32(0x5D000000 + g.rng.Intn(1<<24)))
	return f.Bytes()
}

// plan draws the random structure of one program.
func (g *Generator) plan(fam Family) *program {
	p := &program{family: fam}

	// Straight-line API call plan.
	nBenignCalls := 6 + g.rng.Intn(10)
	for i := 0; i < nBenignCalls; i++ {
		p.calls = append(p.calls, BenignAPIs[g.rng.Intn(len(BenignAPIs))].ID)
	}
	if fam == Malware {
		nBad := 8 + g.rng.Intn(10)
		for i := 0; i < nBad; i++ {
			id := SensitiveAPIs[g.rng.Intn(len(SensitiveAPIs))].ID
			// Insert at a random position so the sensitive calls are spread
			// through the code section rather than clustered at the end.
			at := g.rng.Intn(len(p.calls) + 1)
			p.calls = append(p.calls[:at], append([]uint32{id}, p.calls[at:]...)...)
		}
	}

	// Data section.
	p.dataBytes = g.dataSection(fam)
	nRefs := 3 + g.rng.Intn(4)
	for i := 0; i < nRefs; i++ {
		p.dataRefs = append(p.dataRefs, int32(g.rng.Intn(len(p.dataBytes))))
	}

	// Central loop.
	p.loopN = int32(2 + g.rng.Intn(4))
	nLoopAPIs := 1 + g.rng.Intn(2)
	for i := 0; i < nLoopAPIs; i++ {
		if fam == Malware && g.rng.Intn(2) == 0 {
			p.loopAPIs = append(p.loopAPIs, SensitiveAPIs[g.rng.Intn(len(SensitiveAPIs))].ID)
		} else {
			p.loopAPIs = append(p.loopAPIs, BenignAPIs[g.rng.Intn(len(BenignAPIs))].ID)
		}
	}

	p.rdata = g.stringSection(fam)
	p.idata = g.importSection(p)
	// A fifth of benign programs reference a sensitive API without calling
	// it (debuggers, updaters, and security tools legitimately import
	// process- and crypto-APIs). This keeps "imports a sensitive API" from
	// being a perfect class separator, as in real corpora.
	if fam == Benign && g.rng.Intn(5) == 0 {
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			name := SensitiveAPIs[g.rng.Intn(len(SensitiveAPIs))].Name
			p.idata = append(p.idata, name...)
			p.idata = append(p.idata, 0)
		}
	}
	return p
}

// dataSection draws family-typical .data content.
func (g *Generator) dataSection(fam Family) []byte {
	var out []byte
	if fam == Malware {
		// One or more crypto tables at random offsets plus a high-entropy
		// key blob: the data-section malicious features PEM discovers.
		n := 1 + g.rng.Intn(len(cryptoConstants))
		perm := g.rng.Perm(len(cryptoConstants))
		for _, idx := range perm[:n] {
			out = append(out, cryptoConstants[idx]...)
			pad := make([]byte, 8+g.rng.Intn(40))
			g.rng.Read(pad)
			out = append(out, pad...)
		}
		key := make([]byte, 64+g.rng.Intn(192))
		g.rng.Read(key)
		out = append(out, key...)
	} else {
		// Low-entropy config text and zero runs.
		for i := 0; i < 3+g.rng.Intn(4); i++ {
			out = append(out, benignString(g.rng)...)
			out = append(out, make([]byte, 4+g.rng.Intn(28))...)
		}
		// A small counter table: structured, low entropy.
		for i := 0; i < 48; i++ {
			out = append(out, byte(i%16))
		}
	}
	if len(out) < 64 {
		out = append(out, make([]byte, 64-len(out))...)
	}
	return out
}

// stringSection draws family-typical .rdata literals: malware reuses fixed
// family strings (ransom notes and persistence paths recur across a
// family's samples — which is why signature engines catch them), while
// benign literals are synthesized fresh per program.
func (g *Generator) stringSection(fam Family) []byte {
	var out []byte
	n := 4 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		if fam == Malware {
			out = append(out, malwareStrings[g.rng.Intn(len(malwareStrings))]...)
		} else {
			out = append(out, benignString(g.rng)...)
		}
		out = append(out, 0)
	}
	// Malware also keeps a couple of benign-looking strings (real malware
	// links the CRT too).
	if fam == Malware {
		for i := 0; i < 2; i++ {
			out = append(out, benignString(g.rng)...)
			out = append(out, 0)
		}
	}
	return out
}

// importSection renders the NUL-separated import-name table for every API
// the program calls — the stand-in for the PE import directory.
func (g *Generator) importSection(p *program) []byte {
	seen := make(map[uint32]bool)
	var out []byte
	emit := func(id uint32) {
		if seen[id] {
			return
		}
		seen[id] = true
		out = append(out, APIName(id)...)
		out = append(out, 0)
	}
	for _, id := range p.calls {
		emit(id)
	}
	for _, id := range p.loopAPIs {
		emit(id)
	}
	emit(BenignAPIs[0].ID) // called by the leaf subroutine in every program
	return out
}

// resourceBlob draws optional .rsrc content (icons/manifests stand-in).
func (g *Generator) resourceBlob(fam Family) []byte {
	n := 96 + g.rng.Intn(160)
	out := make([]byte, n)
	if fam == Malware && g.rng.Intn(2) == 0 {
		g.rng.Read(out) // packed payload: high entropy
	} else {
		copy(out, "<assembly xmlns=\"urn:schemas-microsoft-com:asm.v1\">")
	}
	return out
}

// assemble renders the program plan to VISA code. textVA/dataVA are the
// virtual addresses of the code and data sections (zero on the sizing pass).
func (p *program) assemble(textVA, dataVA int32) []byte {
	var a visa.Assembler

	// Prologue: materialize the data base pointer.
	a.Movi(6, dataVA) // R6 = &data

	refIdx := 0
	for i, api := range p.calls {
		// Every few calls, pass a data-section byte as the API argument so
		// behaviour depends on data content (modifying .data without the
		// recovery module breaks the trace).
		if refIdx < len(p.dataRefs) && i%3 == 1 {
			a.Loadb(0, 6, p.dataRefs[refIdx])
			refIdx++
		} else {
			a.Movi(0, int32(api%97)) // cheap deterministic argument
		}
		a.Sys(int32(api))
	}

	// Central counted loop.
	a.Movi(5, p.loopN)
	a.Label("loop")
	for _, api := range p.loopAPIs {
		a.Mov(0, 5) // argument = loop counter
		a.Sys(int32(api))
	}
	a.Subi(5, 1)
	a.Jnz(5, "loop")

	// A subroutine call to exercise the stack.
	a.Call("leaf")
	a.Jmp("done")
	a.Label("leaf")
	a.Movi(0, 1)
	a.Sys(int32(BenignAPIs[0].ID))
	a.Ret()

	a.Label("done")
	a.Halt()
	return a.MustAssemble()
}
