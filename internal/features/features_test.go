package features

import (
	"math"
	"testing"

	"mpass/internal/corpus"
)

func TestDimIsStable(t *testing.T) {
	g := corpus.NewGenerator(1)
	for _, fam := range []corpus.Family{corpus.Benign, corpus.Malware} {
		v := Extract(g.Sample(fam).Raw)
		if len(v) != Dim {
			t.Fatalf("%s: dim %d, want %d", fam, len(v), Dim)
		}
	}
}

func TestExtractOnGarbageStillWorks(t *testing.T) {
	v := Extract([]byte("definitely not a PE file"))
	if len(v) != Dim {
		t.Fatalf("dim %d, want %d", len(v), Dim)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d is %v", i, x)
		}
	}
}

func TestExtractOnEmptyInput(t *testing.T) {
	v := Extract(nil)
	if len(v) != Dim {
		t.Fatalf("dim %d, want %d", len(v), Dim)
	}
}

func TestFamiliesSeparateOnImportFeatures(t *testing.T) {
	g := corpus.NewGenerator(2)
	// The hashed import buckets occupy the vector tail. Malware imports
	// both benign and sensitive APIs, so its total bucket mass is larger.
	mass := func(v []float64) float64 {
		var s float64
		for _, x := range v[Dim-importDim:] {
			s += x
		}
		return s
	}
	var malSum, benSum float64
	for i := 0; i < 10; i++ {
		malSum += mass(Extract(g.Sample(corpus.Malware).Raw))
		benSum += mass(Extract(g.Sample(corpus.Benign).Raw))
	}
	if malSum <= benSum {
		t.Errorf("import bucket mass: malware %v <= benign %v", malSum, benSum)
	}
}

func TestEntropy(t *testing.T) {
	if e := Entropy(nil); e != 0 {
		t.Errorf("Entropy(nil) = %v", e)
	}
	if e := Entropy([]byte{7, 7, 7, 7}); e != 0 {
		t.Errorf("constant entropy = %v, want 0", e)
	}
	uniform := make([]byte, 256)
	for i := range uniform {
		uniform[i] = byte(i)
	}
	if e := Entropy(uniform); math.Abs(e-8) > 1e-9 {
		t.Errorf("uniform entropy = %v, want 8", e)
	}
	two := []byte{0, 1, 0, 1}
	if e := Entropy(two); math.Abs(e-1) > 1e-9 {
		t.Errorf("two-symbol entropy = %v, want 1", e)
	}
}

func TestByteHistogramNormalized(t *testing.T) {
	v := byteHistogram([]byte{0, 1, 2, 3, 255})
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %v", sum)
	}
	if v[0] != 0.8 { // bytes 0..3 fall in bin 0
		t.Errorf("bin 0 = %v, want 0.8", v[0])
	}
	if v[63] != 0.2 {
		t.Errorf("bin 63 = %v, want 0.2", v[63])
	}
}

func TestEntropyHistogramShortInput(t *testing.T) {
	v := entropyHistogram([]byte{1, 2, 3})
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("short-input entropy histogram sums to %v", sum)
	}
}

func TestStringFeaturesPopulated(t *testing.T) {
	g := corpus.NewGenerator(3)
	base := Dim - importDim - stringDim
	v := Extract(g.Sample(corpus.Malware).Raw)
	var mass float64
	for _, x := range v[base : base+stringDim] {
		mass += x
	}
	if mass <= 0 {
		t.Error("string feature block empty for a string-bearing sample")
	}
	// No-strings input zeroes the aggregates and sets the flag.
	nv := Extract([]byte{0, 1, 2, 3})
	if nv[base+4] != 1 { // boolTo01(nStrings == 0)
		t.Errorf("no-strings flag = %v", nv[base+4])
	}
}
