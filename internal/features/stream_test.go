package features

import (
	"math/rand"
	"strings"
	"testing"

	"mpass/internal/corpus"
)

// feedStream pushes raw through e in pseudo-random chunk sizes up to max.
func feedStream(e *StreamExtractor, raw []byte, max int, rng *rand.Rand) {
	for len(raw) > 0 {
		n := 1
		if max > 1 {
			n += rng.Intn(max)
		}
		if n > len(raw) {
			n = len(raw)
		}
		e.Feed(raw[:n])
		raw = raw[n:]
	}
}

func vecEqual(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dim %d, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: feature %d: stream %v != extract %v", tag, i, got[i], want[i])
		}
	}
}

// TestStreamExtractorPrefixPathExact: samples within the structural cap
// must finish bit-identical to Extract in every family — the stream
// literally replays the buffered prefix through it.
func TestStreamExtractorPrefixPathExact(t *testing.T) {
	g := corpus.NewGenerator(41)
	rng := rand.New(rand.NewSource(42))
	inputs := [][]byte{
		nil,
		[]byte("definitely not a PE file"),
		g.Sample(corpus.Benign).Raw,
		g.Sample(corpus.Malware).Raw,
	}
	for i, raw := range inputs {
		want := Extract(raw)
		for _, max := range []int{1, 7, 129, 1 << 20} {
			e := NewStreamExtractor()
			feedStream(e, raw, max, rng)
			vecEqual(t, "prefix path", e.Finish(), want)
			_ = i
		}
	}
}

// TestStreamExtractorIncrementalExact forces the incremental path (cap 0)
// on inputs whose structural features are zero anyway (no PE header), so
// the whole vector must match Extract exactly under every chunking —
// including window boundaries (255/256/257/383/384), API names straddling
// chunk seams, and back-to-back name occurrences.
func TestStreamExtractorIncrementalExact(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	name := corpus.SensitiveAPIs[0].Name
	base := make([]byte, 4000)
	rng.Read(base)
	base[0] = 0 // never a PE header
	// Splice in printable strings and API names, some adjacent.
	copy(base[100:], "hello world this is a long printable string")
	copy(base[700:], name+name)
	copy(base[1500:], name)
	copy(base[3000:], corpus.BenignAPIs[0].Name)

	structStart := histDim + entHistDim
	structEnd := structStart + headerDim + sectionDim
	for _, L := range []int{1, 5, 100, 255, 256, 257, 383, 384, 1000, 4000} {
		raw := base[:L]
		want := Extract(raw)
		for _, x := range want[structStart:structEnd] {
			if x != 0 {
				t.Fatalf("len %d: test input unexpectedly parsed as PE", L)
			}
		}
		for _, max := range []int{1, 3, 128, 1 << 20} {
			e := NewStreamExtractorCap(0)
			feedStream(e, raw, max, rng)
			vecEqual(t, "incremental", e.Finish(), want)
		}
	}
}

// TestStreamExtractorOverflowDegradesStructuralOnly: past the cap, only
// the header/section block may differ from Extract (it zeroes); every
// byte-level family must still be exact.
func TestStreamExtractorOverflowDegradesStructuralOnly(t *testing.T) {
	g := corpus.NewGenerator(44)
	rng := rand.New(rand.NewSource(45))
	raw := g.Sample(corpus.Malware).Raw
	want := Extract(raw)
	structStart := histDim + entHistDim
	structEnd := structStart + headerDim + sectionDim

	e := NewStreamExtractorCap(16) // force overflow
	feedStream(e, raw, 64, rng)
	got := e.Finish()
	if len(got) != Dim {
		t.Fatalf("dim %d, want %d", len(got), Dim)
	}
	for i := range got {
		if i >= structStart && i < structEnd {
			if got[i] != 0 {
				t.Fatalf("structural feature %d = %v, want 0 in degraded mode", i, got[i])
			}
			continue
		}
		if got[i] != want[i] {
			t.Fatalf("byte-level feature %d: stream %v != extract %v", i, got[i], want[i])
		}
	}
}

// TestStreamExtractorReset: a Reset extractor must be indistinguishable
// from a fresh one, allocations aside.
func TestStreamExtractorReset(t *testing.T) {
	g := corpus.NewGenerator(46)
	rng := rand.New(rand.NewSource(47))
	a := g.Sample(corpus.Benign).Raw
	b := g.Sample(corpus.Malware).Raw

	e := NewStreamExtractorCap(0)
	feedStream(e, a, 33, rng)
	e.Finish()
	e.Reset()
	feedStream(e, b, 33, rng)
	got := e.Finish()

	f := NewStreamExtractorCap(0)
	feedStream(f, b, 57, rng)
	vecEqual(t, "reset", got, f.Finish())
}

// TestAPINamesHaveNoSelfOverlap pins the corpus invariant the seam counter
// relies on: no API name has a proper border (a prefix that is also a
// suffix), so occurrences can never overlap and per-chunk counting plus
// boundary stitching equals strings.Count over the whole sample.
func TestAPINamesHaveNoSelfOverlap(t *testing.T) {
	check := func(name string) {
		for k := 1; k < len(name); k++ {
			if strings.HasPrefix(name, name[len(name)-k:]) {
				t.Errorf("API name %q has a border of length %d; seam counting assumes none", name, k)
			}
		}
	}
	for _, a := range corpus.BenignAPIs {
		check(a.Name)
	}
	for _, a := range corpus.SensitiveAPIs {
		check(a.Name)
	}
}
