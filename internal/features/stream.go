package features

import (
	"bytes"

	"mpass/internal/corpus"
)

// StreamExtractor computes Extract's feature vector from a sample fed as a
// sequence of chunks, in bounded memory regardless of sample size.
//
// The byte-level families (byte histogram, byte-entropy histogram, string
// statistics, hashed imports) accumulate incrementally and reproduce
// Extract bit for bit under every chunking: histograms keep integer counts
// that dequantize to the same normalized floats, the entropy window rolls
// through a 256-byte buffer replicating Extract's exact window/stride/
// short-window rules, string runs carry their (length, FNV) state across
// chunk seams, and import-name counting stitches chunk boundaries with a
// tail buffer of the longest name minus one byte (sound because no known
// API name self-overlaps — stream_test.go pins that corpus invariant).
//
// The structural families (header, sections) need pefile.Parse over the
// whole image, so the extractor buffers a bounded prefix: samples no larger
// than the cap finish through Extract itself (bit-exact in every family),
// while larger samples drop the buffer and zero the structural features —
// exactly Extract's documented degraded mode for unparseable PEs. Peak
// memory is O(cap), constant in the sample size.
type StreamExtractor struct {
	structCap int
	overflow  bool
	prefix    []byte
	total     int64

	hist [histDim]int64

	entBuf  [256]byte
	entFill int
	entBins [entHistDim]int64
	entWins int64

	curRun             int
	runHash            uint32
	nStrings, totalLen float64
	maxLen             float64
	hashed             [4]float64

	apiCounts []int64
	tail      []byte
	seam      []byte
}

// DefaultStructuralCap is the prefix-buffer bound of NewStreamExtractor:
// large enough that every upload the buffered scan path accepts
// (internal/server's MaxBodyBytes) still gets exact structural features
// when routed through a stream instead.
const DefaultStructuralCap = 8 << 20

// apiPattern is one known API name prepared for incremental counting.
type apiPattern struct {
	pat    []byte
	bucket int
}

var (
	apiPatterns = buildAPIPatterns()
	// apiTailKeep is the seam width: an occurrence crossing a chunk
	// boundary starts at most len(name)-1 bytes before it.
	apiTailKeep = maxPatternLen(apiPatterns) - 1
)

func buildAPIPatterns() []apiPattern {
	var out []apiPattern
	add := func(name string) {
		var h uint32 = 2166136261
		for i := 0; i < len(name); i++ {
			h = (h ^ uint32(name[i])) * 16777619
		}
		out = append(out, apiPattern{pat: []byte(name), bucket: int(h) % importDim})
	}
	for _, a := range corpus.BenignAPIs {
		add(a.Name)
	}
	for _, a := range corpus.SensitiveAPIs {
		add(a.Name)
	}
	return out
}

func maxPatternLen(ps []apiPattern) int {
	m := 1
	for _, p := range ps {
		if len(p.pat) > m {
			m = len(p.pat)
		}
	}
	return m
}

// NewStreamExtractor returns a stream extractor with the default
// structural prefix cap.
func NewStreamExtractor() *StreamExtractor {
	return NewStreamExtractorCap(DefaultStructuralCap)
}

// NewStreamExtractorCap bounds the structural prefix buffer at cap bytes;
// samples larger than cap get zeroed structural features. A cap of 0
// disables structural buffering entirely (every sample takes the
// incremental path), which the equivalence tests use to force it.
func NewStreamExtractorCap(cap int) *StreamExtractor {
	e := &StreamExtractor{
		structCap: cap,
		apiCounts: make([]int64, len(apiPatterns)),
		tail:      make([]byte, 0, apiTailKeep),
		seam:      make([]byte, 0, 2*apiTailKeep),
	}
	e.runHash = 2166136261
	return e
}

// Reset returns the extractor to its initial state, retaining allocations.
func (e *StreamExtractor) Reset() {
	e.overflow = false
	e.prefix = e.prefix[:0]
	e.total = 0
	e.hist = [histDim]int64{}
	e.entFill = 0
	e.entBins = [entHistDim]int64{}
	e.entWins = 0
	e.curRun = 0
	e.runHash = 2166136261
	e.nStrings, e.totalLen, e.maxLen = 0, 0, 0
	e.hashed = [4]float64{}
	for i := range e.apiCounts {
		e.apiCounts[i] = 0
	}
	e.tail = e.tail[:0]
	e.seam = e.seam[:0]
}

// Feed appends one chunk of the sample.
func (e *StreamExtractor) Feed(p []byte) {
	if len(p) == 0 {
		return
	}
	e.total += int64(len(p))

	// Structural prefix: keep while the whole sample can still fit, drop
	// the moment it cannot — memory goes back to O(chunk) and Finish takes
	// the incremental path.
	if !e.overflow {
		if len(p) <= e.structCap-len(e.prefix) {
			e.prefix = append(e.prefix, p...)
		} else {
			e.overflow = true
			e.prefix = nil
		}
	}

	for _, b := range p {
		e.hist[int(b)/4]++
	}

	// Entropy windows: fill the rolling 256-byte buffer; every time it
	// fills, one stride-aligned window is complete. Sliding keeps the last
	// 128 bytes, so windows start at exact multiples of the stride — the
	// same off sequence Extract walks, with partial tails never processed.
	q := p
	for len(q) > 0 {
		n := copy(e.entBuf[e.entFill:], q)
		e.entFill += n
		q = q[n:]
		if e.entFill == len(e.entBuf) {
			e.entWindow(e.entBuf[:])
			copy(e.entBuf[:128], e.entBuf[128:])
			e.entFill = 128
		}
	}

	for _, b := range p {
		if b >= 0x20 && b < 0x7F {
			e.curRun++
			e.runHash = (e.runHash ^ uint32(b)) * 16777619
		} else {
			e.flushRun()
		}
	}

	e.countImports(p)
}

// entWindow replicates Extract's per-window entropy/mean binning.
func (e *StreamExtractor) entWindow(w []byte) {
	ent := Entropy(w)
	var sum int
	for _, b := range w {
		sum += int(b)
	}
	mean := float64(sum) / float64(len(w))
	eb := int(ent)
	if eb > 7 {
		eb = 7
	}
	mb := int(mean) / 32
	if mb > 7 {
		mb = 7
	}
	e.entBins[eb*8+mb]++
	e.entWins++
}

// flushRun ends the current printable run, replicating stringFeatures'
// flush rule.
func (e *StreamExtractor) flushRun() {
	if e.curRun >= 5 {
		e.nStrings++
		e.totalLen += float64(e.curRun)
		if float64(e.curRun) > e.maxLen {
			e.maxLen = float64(e.curRun)
		}
		e.hashed[e.runHash%4]++
	}
	e.curRun = 0
	e.runHash = 2166136261
}

// countImports counts API-name occurrences: first those crossing the
// previous chunk boundary (via the tail+prefix seam), then those fully
// inside p, then it rolls the tail forward. Occurrences are non-
// overlapping, matching strings.Count over the whole sample.
func (e *StreamExtractor) countImports(p []byte) {
	if tl := len(e.tail); tl > 0 {
		e.seam = append(e.seam[:0], e.tail...)
		n := apiTailKeep
		if n > len(p) {
			n = len(p)
		}
		e.seam = append(e.seam, p[:n]...)
		for i := range apiPatterns {
			pat := apiPatterns[i].pat
			L := len(pat)
			s := tl - L + 1
			if s < 0 {
				s = 0
			}
			for ; s < tl && s+L <= len(e.seam); s++ {
				if bytes.Equal(e.seam[s:s+L], pat) {
					e.apiCounts[i]++
					s += L - 1 // skip the match; occurrences never overlap
				}
			}
		}
	}
	for i := range apiPatterns {
		e.apiCounts[i] += int64(bytes.Count(p, apiPatterns[i].pat))
	}
	if len(p) >= apiTailKeep {
		e.tail = append(e.tail[:0], p[len(p)-apiTailKeep:]...)
	} else {
		keep := apiTailKeep - len(p)
		if keep > len(e.tail) {
			keep = len(e.tail)
		}
		copy(e.tail, e.tail[len(e.tail)-keep:])
		e.tail = append(e.tail[:keep], p...)
	}
}

// Finish closes the stream and returns the feature vector. Samples that
// fit the structural cap go through Extract itself; larger ones assemble
// the incremental families with structural features zeroed. The extractor
// must be Reset before reuse.
func (e *StreamExtractor) Finish() []float64 {
	e.flushRun()
	if !e.overflow {
		return Extract(e.prefix)
	}

	v := make([]float64, 0, Dim)

	bh := make([]float64, histDim)
	inv := 1 / float64(e.total)
	for i, c := range e.hist {
		bh[i] = float64(c) * inv
	}
	v = append(v, bh...)

	if e.entWins == 0 {
		e.entWindow(e.entBuf[:e.entFill])
	}
	eh := make([]float64, entHistDim)
	einv := 1 / float64(e.entWins)
	for i, c := range e.entBins {
		eh[i] = float64(c) * einv
	}
	v = append(v, eh...)

	// Structural families: the image exceeded the prefix cap, so no parse
	// is possible — same zeroed block Extract emits for unparseable PEs.
	v = append(v, make([]float64, headerDim+sectionDim)...)

	avgLen := 0.0
	if e.nStrings > 0 {
		avgLen = e.totalLen / e.nStrings
	}
	v = append(v,
		logScale(e.nStrings),
		avgLen/32,
		logScale(e.maxLen),
		logScale(e.totalLen),
		boolTo01(e.nStrings == 0),
		boolTo01(e.totalLen > 0 && e.totalLen/float64(e.total+1) > 0.5),
	)
	for _, h := range e.hashed {
		v = append(v, logScale(h))
	}

	imp := make([]float64, importDim)
	for i, c := range e.apiCounts {
		imp[apiPatterns[i].bucket] += float64(c)
	}
	for i := range imp {
		imp[i] = logScale(imp[i])
	}
	v = append(v, imp...)
	return v
}
