// Package features extracts EMBER-style static feature vectors from PE
// images. It is the feature front-end of the LightGBM-style detector
// (internal/gbdt), mirroring the feature families of Anderson & Roth's
// EMBER dataset at reduced dimensionality: raw byte histogram, byte-entropy
// histogram, header fields, section statistics, printable-string features,
// and import-table features.
//
// The extractor works on raw bytes and degrades gracefully: inputs that do
// not parse as PE still produce the byte-level families, with the
// structural families zeroed — exactly how a robust production pipeline
// behaves when malware corrupts its own headers.
package features

import (
	"math"
	"strings"

	"mpass/internal/corpus"
	"mpass/internal/pefile"
)

// Dimension sizes of each feature family.
const (
	histDim    = 64 // byte histogram, 4 byte values per bin
	entHistDim = 64 // 8 entropy buckets × 8 mean-byte buckets
	headerDim  = 12
	sectionDim = 14
	stringDim  = 10
	importDim  = 6

	// Dim is the total feature vector length.
	Dim = histDim + entHistDim + headerDim + sectionDim + stringDim + importDim
)

// Extract computes the feature vector for a raw sample.
func Extract(raw []byte) []float64 {
	v := make([]float64, 0, Dim)
	v = append(v, byteHistogram(raw)...)
	v = append(v, entropyHistogram(raw)...)

	f, err := pefile.Parse(raw)
	if err != nil {
		v = append(v, make([]float64, headerDim+sectionDim)...)
	} else {
		v = append(v, headerFeatures(f, len(raw))...)
		v = append(v, sectionFeatures(f)...)
	}
	v = append(v, stringFeatures(raw)...)
	v = append(v, importFeatures(raw)...)
	return v
}

// byteHistogram is the normalized 64-bin byte-value histogram.
func byteHistogram(raw []byte) []float64 {
	out := make([]float64, histDim)
	if len(raw) == 0 {
		return out
	}
	for _, b := range raw {
		out[int(b)/4]++
	}
	inv := 1 / float64(len(raw))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Entropy returns the Shannon entropy of b in bits per byte.
func Entropy(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var hist [256]int
	for _, x := range b {
		hist[x]++
	}
	h := 0.0
	inv := 1 / float64(len(b))
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) * inv
		h -= p * math.Log2(p)
	}
	return h
}

// entropyHistogram slides a 256-byte window (stride 128) over the sample
// and accumulates a joint (entropy bucket, mean-byte bucket) histogram,
// the EMBER "byte-entropy histogram" at 8×8 resolution.
func entropyHistogram(raw []byte) []float64 {
	out := make([]float64, entHistDim)
	const win, stride = 256, 128
	if len(raw) == 0 {
		return out
	}
	n := 0
	for off := 0; off == 0 || off+win <= len(raw); off += stride {
		end := off + win
		if end > len(raw) {
			end = len(raw)
		}
		w := raw[off:end]
		e := Entropy(w)
		var sum int
		for _, b := range w {
			sum += int(b)
		}
		mean := float64(sum) / float64(len(w))
		eb := int(e) // entropy in [0,8]
		if eb > 7 {
			eb = 7
		}
		mb := int(mean) / 32
		if mb > 7 {
			mb = 7
		}
		out[eb*8+mb]++
		n++
		if end == len(raw) {
			break
		}
	}
	inv := 1 / float64(n)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// headerFeatures summarizes COFF/optional header fields.
func headerFeatures(f *pefile.File, fileSize int) []float64 {
	o := &f.Optional
	ep := float64(0)
	if s := f.EntrySection(); s != nil && s.IsCode() {
		ep = 1
	}
	return []float64{
		float64(len(f.Sections)),
		logScale(float64(fileSize)),
		logScale(float64(o.SizeOfCode)),
		logScale(float64(o.SizeOfInitializedData)),
		logScale(float64(o.SizeOfImage)),
		logScale(float64(o.AddressOfEntryPoint)),
		ep,
		float64(o.Subsystem),
		float64(f.FileHeader.TimeDateStamp>>24) / 256, // coarse build era
		logScale(float64(len(f.Overlay))),
		float64(o.MajorLinkerVersion),
		boolTo01(len(f.Overlay) > 0),
	}
}

// standardNames are the section names a vanilla toolchain emits; renamed or
// injected sections fall outside this set.
var standardNames = map[string]bool{
	".text": true, ".data": true, ".rdata": true, ".idata": true,
	".rsrc": true, ".reloc": true, ".bss": true,
}

// sectionFeatures summarizes per-section structure and entropy.
func sectionFeatures(f *pefile.File) []float64 {
	var (
		nExec, nData, nNonStd         float64
		codeEnt, dataEnt, maxEnt      float64
		codeBytes, dataBytes, allSize float64
	)
	for _, s := range f.Sections {
		e := Entropy(s.Data)
		if e > maxEnt {
			maxEnt = e
		}
		allSize += float64(len(s.Data))
		if s.IsCode() {
			nExec++
			codeEnt += e
			codeBytes += float64(len(s.Data))
		}
		if s.IsData() {
			nData++
			dataEnt += e
			dataBytes += float64(len(s.Data))
		}
		if !standardNames[s.Name] {
			nNonStd++
		}
	}
	if nExec > 0 {
		codeEnt /= nExec
	}
	if nData > 0 {
		dataEnt /= nData
	}
	var codeRatio, dataRatio float64
	if allSize > 0 {
		codeRatio = codeBytes / allSize
		dataRatio = dataBytes / allSize
	}
	entry := f.EntrySection()
	entryEnt := 0.0
	entryStd := 0.0
	if entry != nil {
		entryEnt = Entropy(entry.Data)
		if standardNames[entry.Name] {
			entryStd = 1
		}
	}
	return []float64{
		nExec, nData, nNonStd,
		codeEnt, dataEnt, maxEnt,
		codeRatio, dataRatio,
		logScale(codeBytes), logScale(dataBytes),
		entryEnt, entryStd,
		float64(len(f.SlackRegions())),
		boolTo01(entry == nil),
	}
}

// stringFeatures summarizes printable-string statistics plus a small hashed
// histogram of string content. As in EMBER, strings enter the vector only
// through lossy aggregates — no exact-substring oracle features — so the
// model has to rely on distributional evidence it shares with the byte
// histograms.
func stringFeatures(raw []byte) []float64 {
	var nStrings, totalLen, maxLen float64
	var hashed [4]float64
	cur := 0
	var h uint32 = 2166136261
	flush := func() {
		if cur >= 5 {
			nStrings++
			totalLen += float64(cur)
			if float64(cur) > maxLen {
				maxLen = float64(cur)
			}
			hashed[h%4]++
		}
		cur = 0
		h = 2166136261
	}
	for _, b := range raw {
		if b >= 0x20 && b < 0x7F {
			cur++
			h = (h ^ uint32(b)) * 16777619
		} else {
			flush()
		}
	}
	flush()
	avgLen := 0.0
	if nStrings > 0 {
		avgLen = totalLen / nStrings
	}
	out := []float64{
		logScale(nStrings),
		avgLen / 32,
		logScale(maxLen),
		logScale(totalLen),
		boolTo01(nStrings == 0),
		boolTo01(totalLen > 0 && totalLen/float64(len(raw)+1) > 0.5),
	}
	for _, v := range hashed {
		out = append(out, logScale(v))
	}
	return out
}

// importFeatures hashes every known API name present in the image into a
// small bucket histogram — EMBER's hashed import features at reduced width.
// Benign and sensitive names collide in buckets, so no single feature is a
// class oracle; appended benign content dilutes the same buckets.
func importFeatures(raw []byte) []float64 {
	s := string(raw)
	out := make([]float64, importDim)
	count := func(name string) {
		n := strings.Count(s, name)
		if n == 0 {
			return
		}
		var h uint32 = 2166136261
		for i := 0; i < len(name); i++ {
			h = (h ^ uint32(name[i])) * 16777619
		}
		out[int(h)%(importDim)] += float64(n)
	}
	for _, a := range corpus.BenignAPIs {
		count(a.Name)
	}
	for _, a := range corpus.SensitiveAPIs {
		count(a.Name)
	}
	for i := range out {
		out[i] = logScale(out[i])
	}
	return out
}

func logScale(x float64) float64 { return math.Log1p(x) }

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
