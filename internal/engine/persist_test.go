package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpass/internal/detect"
)

// TestEnvelopeRoundTripBitIdentity is the per-engine persistence gate: for
// every persistable engine kind (conv, gbdt, rnn), save → load must yield
// the same name, the same content-addressed version, the same threshold, and
// bit-identical scores through both the single-sample and batched paths.
// The version assertion is what the reload drill keys on — reloading the
// same bytes must advertise the same generation.
func TestEnvelopeRoundTripBitIdentity(t *testing.T) {
	_, _, raws := fixtures(t)
	for _, d := range fullSet(t).Drivers() {
		var buf bytes.Buffer
		if err := SaveEngine(&buf, d, 3); err != nil {
			t.Fatalf("SaveEngine(%s): %v", d.Name(), err)
		}
		loaded, idx, err := LoadEngine(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("LoadEngine(%s): %v", d.Name(), err)
		}
		if idx != 3 {
			t.Fatalf("%s: index %d survived as %d", d.Name(), 3, idx)
		}
		if loaded.Name() != d.Name() {
			t.Fatalf("loaded name %q, want %q", loaded.Name(), d.Name())
		}
		if loaded.Version() != d.Version() {
			t.Fatalf("%s: loaded version %s != saved %s (identical bytes must mean identical version)",
				d.Name(), loaded.Version(), d.Version())
		}
		if loaded.Threshold() != d.Threshold() {
			t.Fatalf("%s: threshold %v survived as %v", d.Name(), d.Threshold(), loaded.Threshold())
		}
		if err := loaded.Health(); err != nil {
			t.Fatalf("%s: unhealthy after load: %v", d.Name(), err)
		}
		batch := loaded.ScoreBatch(raws)
		for j, raw := range raws {
			want := d.Score(raw)
			if got := loaded.Score(raw); got != want {
				t.Fatalf("%s sample %d: loaded score %v != original %v", d.Name(), j, got, want)
			}
			if batch[j] != want {
				t.Fatalf("%s sample %d: loaded batch score %v != original %v", d.Name(), j, batch[j], want)
			}
			if loaded.Label(raw) != d.Label(raw) {
				t.Fatalf("%s sample %d: loaded label flipped", d.Name(), j)
			}
		}
	}
}

// TestSaveEngineRejectsRuntimeOnly: wrapper drivers have no envelope form —
// persisting one must fail loudly instead of writing a file that cannot
// round-trip.
func TestSaveEngineRejectsRuntimeOnly(t *testing.T) {
	wrapped, err := WrapDetector(stub("External", "v1"), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveEngine(&bytes.Buffer{}, wrapped, 0); err == nil {
		t.Fatal("SaveEngine accepted a runtime-only wrapped detector")
	}
	// A set containing one poisons the whole directory save.
	suite, _, _ := fixtures(t)
	conv, err := NewConvDriver(suite.MalConv)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewSet(conv, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveDir(t.TempDir(), mixed); err == nil {
		t.Fatal("SaveDir accepted a set with a runtime-only member")
	}
}

func TestLoadEngineRejectsBadEnvelopes(t *testing.T) {
	if _, _, err := LoadEngine(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("LoadEngine accepted garbage")
	}
	suite, _, _ := fixtures(t)
	conv, err := NewConvDriver(suite.MalConv)
	if err != nil {
		t.Fatal(err)
	}
	mangle := func(f func(*envelope)) error {
		var buf bytes.Buffer
		if err := SaveEngine(&buf, conv, 0); err != nil {
			t.Fatal(err)
		}
		var env envelope
		if err := decodePayload(buf.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		f(&env)
		raw, err := encodePayload(&env)
		if err != nil {
			t.Fatal(err)
		}
		_, _, lerr := LoadEngine(bytes.NewReader(raw))
		return lerr
	}
	if err := mangle(func(e *envelope) { e.Magic = "pickle" }); err == nil {
		t.Fatal("LoadEngine accepted a wrong magic")
	}
	if err := mangle(func(e *envelope) { e.Version = engineVersion + 1 }); err == nil {
		t.Fatal("LoadEngine accepted a future format version")
	}
	if err := mangle(func(e *envelope) { e.Kind = "onnx" }); err == nil {
		t.Fatal("LoadEngine accepted an unknown kind")
	}
	if err := mangle(func(e *envelope) { e.Name = "Imposter" }); err == nil {
		t.Fatal("LoadEngine accepted an envelope whose name disagrees with its payload")
	}
}

// TestSaveDirLoadDirRoundTrip: a directory of envelopes must rebuild the
// exact set — same order, same names, same per-engine versions, and
// therefore the same set version.
func TestSaveDirLoadDirRoundTrip(t *testing.T) {
	set := fullSet(t)
	dir := t.TempDir()
	if err := SaveDir(dir, set); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), envelopeSuffix) {
			files++
		}
	}
	if files != set.Len() {
		t.Fatalf("%d envelope files for %d engines", files, set.Len())
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if loaded.Version() != set.Version() {
		t.Fatalf("round-tripped set version %s != %s", loaded.Version(), set.Version())
	}
	for i, d := range loaded.Drivers() {
		orig := set.Drivers()[i]
		if d.Name() != orig.Name() || d.Version() != orig.Version() {
			t.Fatalf("member %d: %s/%s, want %s/%s", i, d.Name(), d.Version(), orig.Name(), orig.Version())
		}
	}
	if err := SaveDir(t.TempDir(), nil); err == nil {
		t.Fatal("SaveDir accepted a nil set")
	}
}

// TestLoadDirOrdersByRecordedIndex: load order follows each envelope's
// recorded Index, not filesystem listing order — a renamed file cannot
// reorder the set.
func TestLoadDirOrdersByRecordedIndex(t *testing.T) {
	suite, _, _ := fixtures(t)
	set, err := FromSuite(suite)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Write with filenames that sort in reverse of the recorded indices.
	for i, d := range set.Drivers() {
		name := filepath.Join(dir, envelopeFileName(set.Len()-1-i, d.Name()))
		if err := SaveEngineFile(name, d, i); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range set.Names() {
		if loaded.Names()[i] != name {
			t.Fatalf("load order %v, want %v (filenames must not override indices)",
				loaded.Names(), set.Names())
		}
	}
	// An empty directory is an explicit error, not an empty set.
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir accepted a directory with no envelopes")
	}
}

// TestLoadPathResolvesAllForms: directory of envelopes, legacy monolithic
// suite gob, lone envelope file — and refuses everything else.
func TestLoadPathResolvesAllForms(t *testing.T) {
	suite, _, raws := fixtures(t)
	set, err := FromSuite(suite)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := SaveDir(dir, set); err != nil {
		t.Fatal(err)
	}
	fromDir, src, err := LoadPath(dir)
	if err != nil {
		t.Fatalf("LoadPath(dir): %v", err)
	}
	if !strings.Contains(src, "dir") {
		t.Fatalf("dir source = %q", src)
	}
	if fromDir.Version() != set.Version() {
		t.Fatalf("dir load version %s != %s", fromDir.Version(), set.Version())
	}

	legacy := filepath.Join(t.TempDir(), "models.gob")
	if err := detect.SaveSuiteFile(legacy, suite); err != nil {
		t.Fatal(err)
	}
	fromLegacy, src, err := LoadPath(legacy)
	if err != nil {
		t.Fatalf("LoadPath(legacy): %v", err)
	}
	if !strings.Contains(src, "legacy") {
		t.Fatalf("legacy source = %q", src)
	}
	for i, name := range set.Names() {
		if fromLegacy.Names()[i] != name {
			t.Fatalf("legacy load order %v, want %v", fromLegacy.Names(), set.Names())
		}
	}
	// The two load forms score bit-identically: same weights, either wrapper.
	for i, d := range fromLegacy.Drivers() {
		dd := fromDir.Drivers()[i]
		for _, raw := range raws[:4] {
			if d.Score(raw) != dd.Score(raw) {
				t.Fatalf("%s: legacy-form score != envelope-form score", d.Name())
			}
		}
	}

	lone := filepath.Join(t.TempDir(), "malconv.engine.gob")
	if err := SaveEngineFile(lone, set.Drivers()[0], 0); err != nil {
		t.Fatal(err)
	}
	single, src, err := LoadPath(lone)
	if err != nil {
		t.Fatalf("LoadPath(lone envelope): %v", err)
	}
	if !strings.Contains(src, "single") {
		t.Fatalf("single source = %q", src)
	}
	if single.Len() != 1 || single.Names()[0] != "MalConv" {
		t.Fatalf("single load = %v", single.Names())
	}

	junk := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(junk, []byte("neither form"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadPath(junk); err == nil {
		t.Fatal("LoadPath accepted a junk file")
	}
	if _, _, err := LoadPath(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("LoadPath accepted a missing path")
	}
}

// TestSaveEngineFileAtomic: the temp-and-rename write never leaves a torn
// file behind — after a save the directory holds exactly the target file.
func TestSaveEngineFileAtomic(t *testing.T) {
	suite, _, _ := fixtures(t)
	conv, err := NewConvDriver(suite.MalConv)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "malconv.engine.gob")
	if err := SaveEngineFile(path, conv, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "malconv.engine.gob" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory after save: %v, want only the target file", names)
	}
	// A runtime-only driver fails before the rename: no target file appears.
	wrapped, err := WrapDetector(stub("External", "v1"), "")
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "external.engine.gob")
	if err := SaveEngineFile(bad, wrapped, 1); err == nil {
		t.Fatal("SaveEngineFile accepted a runtime-only driver")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("failed save left a file behind")
	}
}
