// Package engine is the pluggable detector-driver layer: every resident
// model — the gated-conv networks, the boosted-tree ensemble, the recurrent
// byte LM, the commercial-AV simulators — sits behind one Driver interface
// (score, batch-score, threshold, health, version), and a Registry holds the
// active Set behind an atomic pointer so a freshly loaded model set swaps in
// under live traffic without a restart.
//
// The interface is deliberately the intersection every engine can honor;
// richer capabilities (streaming scoring, embedding-space gradients,
// fixed-point table modes) are optional and discovered through the
// capability probes (StreamerOf, GradientOf, QuantizerOf), which look
// through wrapper drivers via Unwrapper. The serving layer never type-checks
// concrete models again: a new engine plugs into the batcher, the score
// cache, persistence, and the attack oracle by implementing Driver and —
// when it wants a seat in persistence — an envelope kind (persist.go).
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"mpass/internal/detect"
	"mpass/internal/nn"
)

// Driver is one named detector engine. It extends detect.Detector (Name,
// Score, Label) with the serving-layer contract: a batched scorer, the
// decision threshold its hard label derives from, a self-reported health
// check, and a content-addressed version identifying the exact weights.
//
// ScoreBatch must return scores bit-identical to per-sample Score calls, in
// input order — the repo-wide batch-equals-single parity guarantee the
// micro-batching dispatcher relies on.
type Driver interface {
	detect.Detector
	ScoreBatch(raws [][]byte) []float64
	Threshold() float64
	// Version identifies the engine's exact weight set. Persisted engines
	// use a digest of the serialized payload ("sha256:..."), so two loads of
	// the same bytes always advertise the same version.
	Version() string
	// Health returns nil when the engine can answer queries. It runs on
	// every /healthz request and during reload certification, so it must be
	// cheap and must not score.
	Health() error
}

// Unwrapper is implemented by wrapper drivers; the capability probes look
// through it to the underlying detector.
type Unwrapper interface {
	Unwrap() detect.Detector
}

// Quantizer is the fixed-point capability: engines whose inference tables
// can switch between float64 and int16/int32 modes (the gated-conv family).
type Quantizer interface {
	SetQuantMode(m nn.QuantMode)
}

// StreamerOf probes d for the streaming-scorer capability, looking through
// wrappers. Engines with it serve the O(chunk) scan path.
func StreamerOf(d Driver) (detect.Streamer, bool) {
	if st, ok := d.(detect.Streamer); ok {
		return st, true
	}
	if u, ok := d.(Unwrapper); ok {
		if st, ok := u.Unwrap().(detect.Streamer); ok {
			return st, true
		}
	}
	return nil, false
}

// GradientOf probes d for the differentiable-score capability, looking
// through wrappers. Engines with it can join the MPass known-model ensemble;
// hard-label-only engines (trees, AV simulators) never can — the paper's
// footnote 6 exclusion falls out of the probe instead of a hardcoded list.
func GradientOf(d Driver) (detect.GradientModel, bool) {
	if g, ok := d.(detect.GradientModel); ok {
		return g, true
	}
	if u, ok := d.(Unwrapper); ok {
		if g, ok := u.Unwrap().(detect.GradientModel); ok {
			return g, true
		}
	}
	return nil, false
}

// QuantizerOf probes d for the fixed-point table capability, looking through
// wrappers.
func QuantizerOf(d Driver) (Quantizer, bool) {
	if q, ok := d.(Quantizer); ok {
		return q, true
	}
	if u, ok := d.(Unwrapper); ok {
		if q, ok := u.Unwrap().(Quantizer); ok {
			return q, true
		}
	}
	return nil, false
}

// GradientModels collects the gradient-capable members of the set, in set
// order, excluding the named target — the MPass known-model ensemble for an
// attack on that target. With the default suite resident this reproduces
// Suite.KnownFor exactly: the three conv nets minus the target, trees never.
func GradientModels(s *Set, excludeTarget string) []detect.GradientModel {
	if s == nil {
		return nil
	}
	var out []detect.GradientModel
	for _, d := range s.drivers {
		if d.Name() == excludeTarget {
			continue
		}
		if g, ok := GradientOf(d); ok {
			out = append(out, g)
		}
	}
	return out
}

// Set is an immutable ordered collection of drivers — one resident model
// generation. Scan responses list engines in set order; the set version is a
// digest over the member names and versions, so any membership or weight
// change produces a new version.
type Set struct {
	drivers []Driver
	names   []string
	byName  map[string]int
	version string
}

// NewSet validates the drivers (non-empty, unique non-empty names) and
// freezes them into a Set.
func NewSet(drivers ...Driver) (*Set, error) {
	if len(drivers) == 0 {
		return nil, fmt.Errorf("engine: empty driver set")
	}
	s := &Set{
		drivers: append([]Driver(nil), drivers...),
		names:   make([]string, len(drivers)),
		byName:  make(map[string]int, len(drivers)),
	}
	h := sha256.New()
	for i, d := range s.drivers {
		if d == nil {
			return nil, fmt.Errorf("engine: nil driver at index %d", i)
		}
		name := d.Name()
		if name == "" {
			return nil, fmt.Errorf("engine: driver at index %d has an empty name", i)
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("engine: duplicate driver name %q", name)
		}
		s.names[i] = name
		s.byName[name] = i
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(d.Version()))
		h.Write([]byte{0})
	}
	s.version = "set-" + hex.EncodeToString(h.Sum(nil)[:8])
	return s, nil
}

// Len reports the member count.
func (s *Set) Len() int { return len(s.drivers) }

// Drivers returns the members in set order. The slice is shared and
// read-only.
func (s *Set) Drivers() []Driver { return s.drivers }

// Names returns the member names in set order. The slice is shared and
// read-only.
func (s *Set) Names() []string { return s.names }

// Get resolves a member by name.
func (s *Set) Get(name string) (Driver, bool) {
	i, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.drivers[i], true
}

// Index resolves a member's position in set order.
func (s *Set) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Version identifies this exact model generation.
func (s *Set) Version() string { return s.version }

// Detectors adapts the set to the detect.Detector slice older call sites
// consume, in set order.
func (s *Set) Detectors() []detect.Detector {
	out := make([]detect.Detector, len(s.drivers))
	for i, d := range s.drivers {
		out[i] = d
	}
	return out
}

// Registry is the named-driver registry: the current Set sits behind an
// atomic pointer for lock-free readers (every scan, every oracle query),
// while swaps and registrations serialize on a mutex. A reader that loads
// the pointer holds a consistent generation for as long as it keeps the
// *Set — in-flight work finishes on the old generation while new work sees
// the new one.
type Registry struct {
	mu  sync.Mutex
	cur atomic.Pointer[Set]
}

// NewRegistry starts a registry serving the initial set.
func NewRegistry(initial *Set) (*Registry, error) {
	if initial == nil {
		return nil, fmt.Errorf("engine: registry needs an initial set")
	}
	r := &Registry{}
	r.cur.Store(initial)
	return r, nil
}

// Current returns the active set. Never nil.
func (r *Registry) Current() *Set { return r.cur.Load() }

// Swap atomically replaces the active set and returns the previous one.
func (r *Registry) Swap(next *Set) (*Set, error) {
	if next == nil {
		return nil, fmt.Errorf("engine: cannot swap in a nil set")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.cur.Load()
	r.cur.Store(next)
	return prev, nil
}

// Register appends a driver to the active set (copy-on-write: readers of the
// previous generation are unaffected). It fails on name collisions.
func (r *Registry) Register(d Driver) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cur.Load()
	next, err := NewSet(append(append([]Driver(nil), cur.drivers...), d)...)
	if err != nil {
		return err
	}
	r.cur.Store(next)
	return nil
}
