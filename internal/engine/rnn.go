// The RNN engine: the recurrent byte language model of internal/nn/rnn.go
// (MalRNN's generative core) repurposed as a detector. Trained on benign
// program bytes only, the LM assigns low perplexity to byte streams that
// look like ordinary software and high perplexity to packed, encrypted, or
// synthetic malware content — a language-model anomaly detector in the
// spirit of the one-class baselines surveyed alongside MalConv. The squashed
// score is sigmoid((perplexity - benign mean) / scale), so it lands in
// (0, 1) like every other engine and calibrates the same way.
package engine

import (
	"fmt"
	"math"
	"sort"

	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/nn"
	"mpass/internal/parallel"
	"mpass/internal/tensor"
)

// RNNDetector scores byte sequences by benign-LM perplexity. Exported
// fields are the trained state; the zero value is unusable — build with
// TrainRNN or load from an envelope.
type RNNDetector struct {
	ModelName string
	LM        *nn.ByteLM
	// RefPPL/Scale normalize raw perplexity before the sigmoid squash:
	// benign-corpus mean and spread, fixed at train time.
	RefPPL float64
	Scale  float64
	// Thresh is the calibrated decision threshold on the squashed score.
	Thresh float64
	// MaxBytes is the scored prefix cap — the RNN's counterpart of the conv
	// models' SeqLen window.
	MaxBytes int
}

// Name implements detect.Detector.
func (d *RNNDetector) Name() string { return d.ModelName }

// Score implements detect.Detector: squashed perplexity of the scored
// prefix.
func (d *RNNDetector) Score(raw []byte) float64 {
	if d.MaxBytes > 0 && len(raw) > d.MaxBytes {
		raw = raw[:d.MaxBytes]
	}
	return d.squash(d.LM.Perplexity(raw))
}

// squash maps raw perplexity into (0, 1].
func (d *RNNDetector) squash(ppl float64) float64 {
	return 1 / (1 + math.Exp(-(ppl-d.RefPPL)/d.Scale))
}

// Label implements detect.Detector.
func (d *RNNDetector) Label(raw []byte) bool { return d.Score(raw) >= d.Thresh }

// ScoreBatch implements the batched path; recurrent evaluation has no
// cross-sample amortization, so samples simply fan out.
func (d *RNNDetector) ScoreBatch(raws [][]byte) []float64 {
	scores := make([]float64, len(raws))
	parallel.ForEach(0, len(raws), func(i int) {
		scores[i] = d.Score(raws[i])
	})
	return scores
}

// DecisionThreshold implements detect.Thresholder.
func (d *RNNDetector) DecisionThreshold() float64 { return d.Thresh }

// rnnStream evaluates perplexity incrementally: the hidden state advances
// byte by byte as chunks arrive, so memory is O(hidden) regardless of body
// size and the result is bit-identical to the buffered Score (same ops in
// the same order — Perplexity's loop unrolled across Feed calls).
type rnnStream struct {
	d   *RNNDetector
	h   tensor.Vec
	n   int
	nll float64
}

// NewStream implements detect.Streamer.
func (d *RNNDetector) NewStream() detect.ScoreStream {
	return &rnnStream{d: d, h: tensor.NewVec(d.LM.Hidden)}
}

// Feed implements detect.ScoreStream.
func (s *rnnStream) Feed(p []byte) {
	lm := s.d.LM
	for _, b := range p {
		if s.d.MaxBytes > 0 && s.n >= s.d.MaxBytes {
			return
		}
		if s.n > 0 {
			// s.h has stepped through bytes [0, n): it predicts byte n = b,
			// exactly Perplexity's iteration t = n-1.
			pr := lm.NextProb(s.h, b)
			s.nll -= math.Log(math.Max(pr, 1e-12))
		}
		s.h = lm.StepState(s.h, b)
		s.n++
	}
}

// Finish implements detect.ScoreStream.
func (s *rnnStream) Finish() float64 {
	t := s.n - 1
	if t < 1 {
		return s.d.squash(math.Inf(1))
	}
	return s.d.squash(math.Exp(s.nll / float64(t)))
}

// Streamer/gradient capability note: RNNDetector streams but is recurrent,
// not differentiable w.r.t. a fixed embedding window, so GradientOf
// correctly leaves it out of known-model ensembles.

// RNNConfig sizes RNN-detector training.
type RNNConfig struct {
	EmbedDim, Hidden int
	// Chunk is the BPTT truncation length; Epochs sweeps the benign split.
	Chunk, Epochs int
	LR            float64
	TargetFPR     float64
	Seed          int64
	// MaxBytes caps the scored prefix (default 4096).
	MaxBytes int
}

// DefaultRNNConfig trains a small model quickly on the synthetic corpus.
func DefaultRNNConfig() RNNConfig {
	return RNNConfig{EmbedDim: 8, Hidden: 16, Chunk: 256, Epochs: 1, LR: 5e-3, TargetFPR: 0.05, Seed: 1, MaxBytes: 4096}
}

// TrainRNN trains the benign byte LM on the dataset's benign training split
// and calibrates the perplexity normalization and decision threshold.
func TrainRNN(ds *corpus.Dataset, cfg RNNConfig) (*RNNDetector, error) {
	if cfg.EmbedDim <= 0 || cfg.Hidden <= 0 || cfg.Chunk < 2 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("engine: invalid RNN config %+v", cfg)
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 4096
	}
	var benign [][]byte
	for _, s := range ds.Train {
		if s.Family == corpus.Benign {
			benign = append(benign, s.Raw)
		}
	}
	if len(benign) == 0 {
		return nil, fmt.Errorf("engine: no benign samples to train the byte LM on")
	}

	lm := nn.NewByteLM(cfg.EmbedDim, cfg.Hidden, cfg.Seed)
	opt := nn.NewAdam(cfg.LR)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, raw := range benign {
			limit := len(raw)
			if limit > cfg.MaxBytes {
				limit = cfg.MaxBytes
			}
			for at := 0; at+2 <= limit; at += cfg.Chunk {
				end := at + cfg.Chunk
				if end > limit {
					end = limit
				}
				if _, err := lm.TrainChunk(raw[at:end], opt); err != nil {
					return nil, err
				}
			}
		}
	}

	// Normalize against the benign perplexity distribution, then calibrate
	// the threshold at the target FPR on the same split (detect.calibrate's
	// recipe, on the squashed score).
	ppls := make([]float64, len(benign))
	parallel.ForEach(0, len(benign), func(i int) {
		raw := benign[i]
		if len(raw) > cfg.MaxBytes {
			raw = raw[:cfg.MaxBytes]
		}
		ppls[i] = lm.Perplexity(raw)
	})
	var mean float64
	for _, p := range ppls {
		mean += p
	}
	mean /= float64(len(ppls))
	var varsum float64
	for _, p := range ppls {
		varsum += (p - mean) * (p - mean)
	}
	scale := math.Sqrt(varsum / float64(len(ppls)))
	if scale < 1 {
		scale = 1
	}

	d := &RNNDetector{ModelName: "RNN-PPL", LM: lm, RefPPL: mean, Scale: scale, MaxBytes: cfg.MaxBytes}
	scores := make([]float64, len(ppls))
	for i, p := range ppls {
		scores[i] = d.squash(p)
	}
	sort.Float64s(scores)
	k := int(float64(len(scores)) * (1 - cfg.TargetFPR))
	if k >= len(scores) {
		k = len(scores) - 1
	}
	thr := scores[k] + 1e-6
	if thr < 0.5 {
		thr = 0.5
	}
	if thr > 0.99 {
		thr = 0.99
	}
	d.Thresh = thr
	return d, nil
}

// NewRNNDriver wraps a trained RNN detector, deriving the version from its
// serialized weights.
func NewRNNDriver(d *RNNDetector) (*RNNDriver, error) {
	if d == nil || d.LM == nil {
		return nil, fmt.Errorf("engine: nil RNN detector")
	}
	payload, err := encodePayload(d)
	if err != nil {
		return nil, fmt.Errorf("engine: serializing %s: %w", d.Name(), err)
	}
	return &RNNDriver{RNNDetector: d, version: payloadDigest(payload)}, nil
}

// RNNDriver plugs the perplexity detector into the registry.
type RNNDriver struct {
	*RNNDetector
	version string
}

// Threshold implements Driver.
func (d *RNNDriver) Threshold() float64 { return d.RNNDetector.Thresh }

// Version implements Driver.
func (d *RNNDriver) Version() string { return d.version }

// Health implements Driver.
func (d *RNNDriver) Health() error {
	if d.RNNDetector == nil || d.RNNDetector.LM == nil {
		return fmt.Errorf("engine: RNN driver has no language model")
	}
	return nil
}

// Unwrap implements Unwrapper.
func (d *RNNDriver) Unwrap() detect.Detector { return d.RNNDetector }
