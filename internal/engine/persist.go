// Per-engine persistence: each driver serializes into its own versioned gob
// envelope — magic, format version, engine kind, name, suite order, and the
// weight payload — replacing the monolithic suite blob. Files are written
// atomically (temp + rename, like detect.SaveSuiteFile), a directory of
// envelopes round-trips as a Set, and LoadPath still reads a legacy
// models.gob by wrapping the decoded suite in drivers. The envelope digest
// doubles as the engine version, so a load always advertises exactly what is
// on disk.
package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mpass/internal/detect"
)

// envelope is the on-disk per-engine form.
type envelope struct {
	Magic   string
	Version int    // envelope format version
	Kind    string // payload decoder selector: "conv", "gbdt", "rnn"
	Name    string // engine name (duplicated out of the payload for listings)
	Index   int    // position in suite order, so a directory load is ordered
	Payload []byte // gob of the underlying detector
}

const (
	engineMagic   = "mpass-engine"
	engineVersion = 1
	// envelopeSuffix names engine files inside a model directory.
	envelopeSuffix = ".engine.gob"
)

// engineKind maps a driver to its envelope kind; drivers without one (AV
// simulators, wrapped externals) are runtime-only and cannot be saved.
func engineKind(d Driver) (kind string, payload any, err error) {
	switch t := d.(type) {
	case *ConvDriver:
		return "conv", t.ConvDetector, nil
	case *GBDTDriver:
		return "gbdt", t.GBDTDetector, nil
	case *RNNDriver:
		return "rnn", t.RNNDetector, nil
	default:
		return "", nil, fmt.Errorf("engine: %s (%T) is runtime-only and has no envelope form", d.Name(), d)
	}
}

// SaveEngine writes one driver's envelope to w.
func SaveEngine(w io.Writer, d Driver, index int) error {
	kind, payload, err := engineKind(d)
	if err != nil {
		return err
	}
	raw, err := encodePayload(payload)
	if err != nil {
		return fmt.Errorf("engine: serializing %s: %w", d.Name(), err)
	}
	return gob.NewEncoder(w).Encode(&envelope{
		Magic:   engineMagic,
		Version: engineVersion,
		Kind:    kind,
		Name:    d.Name(),
		Index:   index,
		Payload: raw,
	})
}

// LoadEngine reads one envelope and rebuilds its driver. The driver's
// version is the payload digest, so saving and reloading identical bytes
// yields an identical version.
func LoadEngine(r io.Reader) (Driver, int, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, 0, fmt.Errorf("engine: load envelope: %w", err)
	}
	if env.Magic != engineMagic {
		return nil, 0, fmt.Errorf("engine: not an engine file (magic %q)", env.Magic)
	}
	if env.Version != engineVersion {
		return nil, 0, fmt.Errorf("engine: envelope version %d, this build reads %d", env.Version, engineVersion)
	}
	d, err := decodeEngine(env)
	if err != nil {
		return nil, 0, err
	}
	if d.Name() != env.Name {
		return nil, 0, fmt.Errorf("engine: envelope named %q but payload decodes to %q", env.Name, d.Name())
	}
	return d, env.Index, nil
}

// decodeEngine rebuilds the typed driver from an envelope payload.
func decodeEngine(env envelope) (Driver, error) {
	switch env.Kind {
	case "conv":
		var det detect.ConvDetector
		if err := decodePayload(env.Payload, &det); err != nil {
			return nil, fmt.Errorf("engine: conv payload %q: %w", env.Name, err)
		}
		return NewConvDriver(&det)
	case "gbdt":
		var det detect.GBDTDetector
		if err := decodePayload(env.Payload, &det); err != nil {
			return nil, fmt.Errorf("engine: gbdt payload %q: %w", env.Name, err)
		}
		return NewGBDTDriver(&det)
	case "rnn":
		var det RNNDetector
		if err := decodePayload(env.Payload, &det); err != nil {
			return nil, fmt.Errorf("engine: rnn payload %q: %w", env.Name, err)
		}
		return NewRNNDriver(&det)
	default:
		return nil, fmt.Errorf("engine: unknown engine kind %q (envelope %q)", env.Kind, env.Name)
	}
}

func decodePayload(raw []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// SaveEngineFile writes one driver's envelope atomically: temp file in the
// destination directory, then rename, so a crash mid-write never leaves a
// torn engine for the next load.
func SaveEngineFile(path string, d Driver, index int) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".engine-*.gob")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := SaveEngine(tmp, d, index); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadEngineFile reads one envelope written by SaveEngineFile.
func LoadEngineFile(path string) (Driver, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return LoadEngine(f)
}

// envelopeFileName names an engine's file inside a model directory; the
// index prefix keeps directory listings in suite order.
func envelopeFileName(index int, name string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return fmt.Sprintf("%02d-%s%s", index, clean, envelopeSuffix)
}

// SaveDir writes every persistable member of the set into dir (created if
// missing), one envelope file per engine, each atomically. Runtime-only
// members (AV drivers, wrapped detectors) are an error: a directory must
// round-trip to the set that wrote it.
func SaveDir(dir string, s *Set) error {
	if s == nil || s.Len() == 0 {
		return fmt.Errorf("engine: empty set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, d := range s.drivers {
		if err := SaveEngineFile(filepath.Join(dir, envelopeFileName(i, d.Name())), d, i); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads every *.engine.gob in dir into a Set, ordered by each
// envelope's recorded Index (name-tiebroken), independent of filesystem
// listing order.
func LoadDir(dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type loaded struct {
		d     Driver
		index int
	}
	var all []loaded
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), envelopeSuffix) {
			continue
		}
		d, idx, err := LoadEngineFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("engine: %s: %w", e.Name(), err)
		}
		all = append(all, loaded{d: d, index: idx})
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("engine: no %s files in %s", envelopeSuffix, dir)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].index != all[j].index {
			return all[i].index < all[j].index
		}
		return all[i].d.Name() < all[j].d.Name()
	})
	drivers := make([]Driver, len(all))
	for i, l := range all {
		drivers[i] = l.d
	}
	return NewSet(drivers...)
}

// LoadPath resolves a model path of either form: a directory of per-engine
// envelopes, a single engine envelope, or a legacy monolithic suite gob
// (detect.SaveSuiteFile), which loads wrapped in drivers. The returned
// source string describes what was read, for logs.
func LoadPath(path string) (*Set, string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, "", err
	}
	if fi.IsDir() {
		s, err := LoadDir(path)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("%s (dir, %d engines)", path, s.Len()), nil
	}
	// A file: legacy suite first (the common case), then a lone envelope.
	if suite, serr := detect.LoadSuiteFile(path); serr == nil {
		s, err := FromSuite(suite)
		if err != nil {
			return nil, "", err
		}
		return s, fmt.Sprintf("%s (legacy suite)", path), nil
	}
	d, _, err := LoadEngineFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("engine: %s is neither a suite gob nor an engine envelope: %w", path, err)
	}
	s, err := NewSet(d)
	if err != nil {
		return nil, "", err
	}
	return s, fmt.Sprintf("%s (single engine)", path), nil
}
