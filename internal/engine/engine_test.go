package engine

import (
	"sync"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/detect"
)

// Shared fixtures: detector training dominates this package's test time, so
// the suite, the RNN, and the probe corpus slice are built exactly once.
var (
	fixOnce  sync.Once
	fixSuite *detect.Suite
	fixRNN   *RNNDetector
	fixRaws  [][]byte
	fixErr   error
)

func fixtures(t *testing.T) (*detect.Suite, *RNNDetector, [][]byte) {
	t.Helper()
	fixOnce.Do(func() {
		ds := corpus.MakeDataset(7, 16, 16, 0.75)
		cfg := detect.DefaultTrainConfig()
		cfg.Epochs = 4
		cfg.TargetFPR = 0.05
		fixSuite, fixErr = detect.TrainSuite(ds, cfg)
		if fixErr != nil {
			return
		}
		fixRNN, fixErr = TrainRNN(ds, DefaultRNNConfig())
		if fixErr != nil {
			return
		}
		for _, s := range ds.Test {
			fixRaws = append(fixRaws, s.Raw)
			if len(fixRaws) == 8 {
				break
			}
		}
	})
	if fixErr != nil {
		t.Fatalf("building fixtures: %v", fixErr)
	}
	return fixSuite, fixRNN, fixRaws
}

// fullSet is the suite plus the RNN engine — every persistable driver kind.
func fullSet(t *testing.T) *Set {
	t.Helper()
	suite, rnn, _ := fixtures(t)
	set, err := FromSuite(suite)
	if err != nil {
		t.Fatalf("FromSuite: %v", err)
	}
	drv, err := NewRNNDriver(rnn)
	if err != nil {
		t.Fatalf("NewRNNDriver: %v", err)
	}
	set, err = NewSet(append(append([]Driver(nil), set.Drivers()...), drv)...)
	if err != nil {
		t.Fatalf("NewSet: %v", err)
	}
	return set
}

// stubDriver is a minimal Driver for registry-semantics tests, where real
// weights would only add noise.
type stubDriver struct {
	name    string
	version string
	score   float64
}

func (d *stubDriver) Name() string             { return d.name }
func (d *stubDriver) Score(raw []byte) float64 { return d.score }
func (d *stubDriver) Label(raw []byte) bool    { return d.score >= 0.5 }
func (d *stubDriver) Threshold() float64       { return 0.5 }
func (d *stubDriver) Version() string          { return d.version }
func (d *stubDriver) Health() error            { return nil }
func (d *stubDriver) ScoreBatch(raws [][]byte) []float64 {
	out := make([]float64, len(raws))
	for i := range out {
		out[i] = d.score
	}
	return out
}

func stub(name, version string) *stubDriver {
	return &stubDriver{name: name, version: version, score: 0.25}
}

func TestNewSetValidates(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Fatal("NewSet accepted an empty set")
	}
	if _, err := NewSet(stub("A", "v1"), nil); err == nil {
		t.Fatal("NewSet accepted a nil driver")
	}
	if _, err := NewSet(stub("A", "v1"), stub("A", "v2")); err == nil {
		t.Fatal("NewSet accepted duplicate names")
	}
	if _, err := NewSet(stub("", "v1")); err == nil {
		t.Fatal("NewSet accepted an empty name")
	}
}

// TestSetVersionTracksMembership: the set version is a digest over member
// names and versions — identical membership means identical version, and any
// membership, order, or weight change produces a new one. The scan cache and
// the reload drill both key on this.
func TestSetVersionTracksMembership(t *testing.T) {
	a, b := stub("A", "v1"), stub("B", "v1")
	s1, err := NewSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version() != s2.Version() {
		t.Fatalf("identical membership: versions %s != %s", s1.Version(), s2.Version())
	}
	reordered, _ := NewSet(b, a)
	if reordered.Version() == s1.Version() {
		t.Fatal("reordered set kept the same version")
	}
	bumped, _ := NewSet(a, stub("B", "v2"))
	if bumped.Version() == s1.Version() {
		t.Fatal("weight change (B v1 -> v2) kept the same set version")
	}
	grown, _ := NewSet(a, b, stub("C", "v1"))
	if grown.Version() == s1.Version() {
		t.Fatal("membership change kept the same set version")
	}
}

func TestSetLookups(t *testing.T) {
	s, err := NewSet(stub("A", "v1"), stub("B", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Names(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Names() = %v", got)
	}
	if d, ok := s.Get("B"); !ok || d.Name() != "B" {
		t.Fatalf("Get(B) = %v, %v", d, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Fatalf("Index(B) = %d, %v", i, ok)
	}
	dets := s.Detectors()
	if len(dets) != 2 || dets[0].Name() != "A" {
		t.Fatalf("Detectors() = %v", dets)
	}
}

// TestRegistrySwapIsolation: a reader that loaded the old generation keeps a
// consistent view after a swap — the zero-mixed-version property the serving
// layer builds on.
func TestRegistrySwapIsolation(t *testing.T) {
	old, _ := NewSet(stub("A", "v1"))
	r, err := NewRegistry(old)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry(nil); err == nil {
		t.Fatal("NewRegistry accepted nil")
	}
	held := r.Current()

	next, _ := NewSet(stub("A", "v2"), stub("B", "v1"))
	prev, err := r.Swap(next)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if prev != old {
		t.Fatal("Swap did not return the previous set")
	}
	if r.Current() != next {
		t.Fatal("Current() is not the swapped-in set")
	}
	if held.Version() != old.Version() || held.Len() != 1 {
		t.Fatal("a held reference changed under the swap")
	}
	if _, err := r.Swap(nil); err == nil {
		t.Fatal("Swap accepted nil")
	}
}

func TestRegistryRegisterCopiesOnWrite(t *testing.T) {
	initial, _ := NewSet(stub("A", "v1"))
	r, _ := NewRegistry(initial)
	held := r.Current()
	if err := r.Register(stub("B", "v1")); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if r.Current().Len() != 2 {
		t.Fatalf("registered set has %d members, want 2", r.Current().Len())
	}
	if held.Len() != 1 {
		t.Fatal("Register mutated the previous generation")
	}
	if err := r.Register(stub("A", "v9")); err == nil {
		t.Fatal("Register accepted a name collision")
	}
	if r.Current().Len() != 2 {
		t.Fatal("failed Register changed the active set")
	}
}

// TestGradientModelsMatchSuiteKnownFor: the capability-probe ensemble must
// reproduce Suite.KnownFor exactly — conv nets minus the target, the tree
// ensemble never (the paper's footnote-6 LightGBM exclusion), and the RNN
// (recurrent, non-differentiable) never.
func TestGradientModelsMatchSuiteKnownFor(t *testing.T) {
	suite, _, _ := fixtures(t)
	set := fullSet(t)
	for _, target := range []string{"MalConv", "NonNeg", "LightGBM", "MalGCG", "RNN-PPL", "SomeExternalAV"} {
		want := suite.KnownFor(target)
		got := GradientModels(set, target)
		if len(got) != len(want) {
			t.Fatalf("target %s: %d gradient models via probes, Suite.KnownFor has %d",
				target, len(got), len(want))
		}
		for i := range want {
			if got[i].Name() != want[i].Name() {
				t.Fatalf("target %s: ensemble[%d] = %s, want %s (set order must match suite order)",
					target, i, got[i].Name(), want[i].Name())
			}
		}
		for _, g := range got {
			switch g.Name() {
			case target:
				t.Fatalf("target %s included in its own known-model ensemble", target)
			case "LightGBM", "RNN-PPL":
				t.Fatalf("non-differentiable engine %s passed the gradient probe", g.Name())
			}
		}
	}
	if GradientModels(nil, "MalConv") != nil {
		t.Fatal("GradientModels(nil) != nil")
	}
}

// TestCapabilityProbesLookThroughWrappers: a detect.Detector adapted via
// WrapDetector keeps its streaming/gradient/quantization capabilities
// discoverable through Unwrap.
func TestCapabilityProbesLookThroughWrappers(t *testing.T) {
	suite, rnn, _ := fixtures(t)
	wrapped, err := WrapDetector(suite.MalConv, "")
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.Version() != "wrapped-MalConv" {
		t.Fatalf("wrapped version = %s", wrapped.Version())
	}
	if _, ok := StreamerOf(wrapped); !ok {
		t.Fatal("streamer capability lost through the wrapper")
	}
	if _, ok := GradientOf(wrapped); !ok {
		t.Fatal("gradient capability lost through the wrapper")
	}
	if _, ok := QuantizerOf(wrapped); !ok {
		t.Fatal("quantizer capability lost through the wrapper")
	}
	// And the probes answer no, not panic, for engines without the capability.
	rnnDrv, err := NewRNNDriver(rnn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := GradientOf(rnnDrv); ok {
		t.Fatal("recurrent engine claimed the gradient capability")
	}
	if _, ok := StreamerOf(rnnDrv); !ok {
		t.Fatal("RNN engine lost its streaming capability")
	}
	if _, ok := QuantizerOf(stub("A", "v1")); ok {
		t.Fatal("stub claimed the quantizer capability")
	}
}

// TestFromSuitePreservesPaperOrder: the legacy bridge must present engines
// in §IV-A order, with thresholds intact, scoring bit-identically to the
// wrapped suite members.
func TestFromSuitePreservesPaperOrder(t *testing.T) {
	suite, _, raws := fixtures(t)
	set, err := FromSuite(suite)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MalConv", "NonNeg", "LightGBM", "MalGCG"}
	for i, name := range want {
		if set.Names()[i] != name {
			t.Fatalf("set order %v, want %v", set.Names(), want)
		}
	}
	for i, d := range set.Drivers() {
		underlying := suite.OfflineTargets()[i]
		for _, raw := range raws {
			if d.Score(raw) != underlying.Score(raw) {
				t.Fatalf("%s: driver score != suite score", d.Name())
			}
		}
		batch := d.ScoreBatch(raws)
		for j, raw := range raws {
			if batch[j] != underlying.Score(raw) {
				t.Fatalf("%s sample %d: batch score %v != single %v",
					d.Name(), j, batch[j], underlying.Score(raw))
			}
		}
		if d.Health() != nil {
			t.Fatalf("%s: unhealthy after construction: %v", d.Name(), d.Health())
		}
	}
	if set.Drivers()[0].Threshold() != suite.MalConv.Threshold {
		t.Fatal("MalConv threshold lost in the bridge")
	}
	if set.Drivers()[2].Threshold() != suite.LGBM.Threshold {
		t.Fatal("LightGBM threshold lost in the bridge")
	}
}

// TestRNNStreamMatchesBuffered is the RNN's streaming parity gate: feeding
// the body in chunks of any size must produce exactly the buffered score —
// same ops in the same order, the repo-wide bit-identity contract.
func TestRNNStreamMatchesBuffered(t *testing.T) {
	_, rnn, raws := fixtures(t)
	for _, chunk := range []int{1, 7, 64, 1 << 20} {
		for i, raw := range raws {
			st := rnn.NewStream()
			for at := 0; at < len(raw); at += chunk {
				end := at + chunk
				if end > len(raw) {
					end = len(raw)
				}
				st.Feed(raw[at:end])
			}
			if got, want := st.Finish(), rnn.Score(raw); got != want {
				t.Fatalf("chunk %d sample %d: streamed %v != buffered %v", chunk, i, got, want)
			}
		}
	}
	// Degenerate bodies: empty and single-byte streams have no predicted
	// byte, so both paths saturate rather than divide by zero.
	for _, raw := range [][]byte{nil, {0x4d}} {
		st := rnn.NewStream()
		st.Feed(raw)
		if got, want := st.Finish(), rnn.Score(raw); got != want {
			t.Fatalf("len %d: streamed %v != buffered %v", len(raw), got, want)
		}
	}
}

func TestRNNSeparatesFamilies(t *testing.T) {
	_, rnn, _ := fixtures(t)
	if rnn.Name() != "RNN-PPL" {
		t.Fatalf("RNN name = %q", rnn.Name())
	}
	if rnn.Thresh < 0.5 || rnn.Thresh > 0.99 {
		t.Fatalf("calibrated threshold %v outside [0.5, 0.99]", rnn.Thresh)
	}
	for i, raw := range corpusSplit(t, corpus.Benign, 8) {
		if s := rnn.Score(raw); s < 0 || s > 1 {
			t.Fatalf("benign %d: score %v outside [0, 1]", i, s)
		}
	}
}

// corpusSplit samples fresh raws of one family from the shared generator
// seed, independent of the training split.
func corpusSplit(t *testing.T, family corpus.Family, n int) [][]byte {
	t.Helper()
	g := corpus.NewGenerator(99)
	out := make([][]byte, n)
	for i := range out {
		out[i] = g.Sample(family).Raw
	}
	return out
}

func TestDriverConstructorsRejectNil(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"conv", func() error { _, err := NewConvDriver(nil); return err }()},
		{"gbdt", func() error { _, err := NewGBDTDriver(nil); return err }()},
		{"rnn", func() error { _, err := NewRNNDriver(nil); return err }()},
		{"av", func() error { _, err := NewAVDriver(nil, ""); return err }()},
		{"wrap", func() error { _, err := WrapDetector(nil, ""); return err }()},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s constructor accepted nil", c.name)
		}
	}
}

func TestTrainRNNRejectsBadConfig(t *testing.T) {
	_, _, _ = fixtures(t)
	bad := DefaultRNNConfig()
	bad.Hidden = 0
	if _, err := TrainRNN(&corpus.Dataset{}, bad); err == nil {
		t.Fatal("TrainRNN accepted Hidden=0")
	}
	ok := DefaultRNNConfig()
	if _, err := TrainRNN(&corpus.Dataset{}, ok); err == nil {
		t.Fatal("TrainRNN accepted an empty dataset")
	}
}

// Compile-time interface checks for the test stub and the real drivers.
var (
	_ Driver = (*stubDriver)(nil)
	_ Driver = (*ConvDriver)(nil)
	_ Driver = (*GBDTDriver)(nil)
	_ Driver = (*RNNDriver)(nil)
	_ Driver = (*AVDriver)(nil)
)
