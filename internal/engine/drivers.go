package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"

	"mpass/internal/av"
	"mpass/internal/detect"
	"mpass/internal/parallel"
)

// Driver implementations for every model family in the repo. The conv and
// tree drivers embed their detect counterparts, so the full capability
// surface (BatchScorer, Thresholder, Streamer, GradientModel, Quantizer)
// promotes through and the probes find it without unwrapping; versions are
// content digests of the serialized weights, computed once at construction.

// payloadDigest is the content-addressed engine version: a digest of the
// serialized weight payload, so identical bytes always mean identical
// version — the property the reload drill's bit-identity assertion keys on.
func payloadDigest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:8])
}

// encodePayload gobs a detector into the envelope payload form.
func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ConvDriver plugs a gated-conv detector (MalConv, NonNeg, MalGCG) into the
// registry. Streaming, gradients, and quantization all promote from the
// embedded detector.
type ConvDriver struct {
	*detect.ConvDetector
	version string
}

// NewConvDriver wraps d, deriving the version from its serialized weights.
func NewConvDriver(d *detect.ConvDetector) (*ConvDriver, error) {
	if d == nil || d.Net == nil {
		return nil, fmt.Errorf("engine: nil conv detector")
	}
	payload, err := encodePayload(d)
	if err != nil {
		return nil, fmt.Errorf("engine: serializing %s: %w", d.Name(), err)
	}
	return &ConvDriver{ConvDetector: d, version: payloadDigest(payload)}, nil
}

// Threshold implements Driver (shadowing the embedded threshold field).
func (d *ConvDriver) Threshold() float64 { return d.ConvDetector.Threshold }

// Version implements Driver.
func (d *ConvDriver) Version() string { return d.version }

// Health implements Driver.
func (d *ConvDriver) Health() error {
	if d.ConvDetector == nil || d.ConvDetector.Net == nil {
		return fmt.Errorf("engine: conv driver has no network")
	}
	return nil
}

// Unwrap implements Unwrapper.
func (d *ConvDriver) Unwrap() detect.Detector { return d.ConvDetector }

// GBDTDriver plugs the boosted-tree detector into the registry. It streams
// (feature extraction is incremental) but is not differentiable, so the
// gradient probe correctly excludes it from known-model ensembles.
type GBDTDriver struct {
	*detect.GBDTDetector
	version string
}

// NewGBDTDriver wraps d, deriving the version from its serialized weights.
func NewGBDTDriver(d *detect.GBDTDetector) (*GBDTDriver, error) {
	if d == nil || d.Ensemble == nil {
		return nil, fmt.Errorf("engine: nil gbdt detector")
	}
	payload, err := encodePayload(d)
	if err != nil {
		return nil, fmt.Errorf("engine: serializing %s: %w", d.Name(), err)
	}
	return &GBDTDriver{GBDTDetector: d, version: payloadDigest(payload)}, nil
}

// Threshold implements Driver (shadowing the embedded threshold field).
func (d *GBDTDriver) Threshold() float64 { return d.GBDTDetector.Threshold }

// Version implements Driver.
func (d *GBDTDriver) Version() string { return d.version }

// Health implements Driver.
func (d *GBDTDriver) Health() error {
	if d.GBDTDetector == nil || d.GBDTDetector.Ensemble == nil {
		return fmt.Errorf("engine: gbdt driver has no ensemble")
	}
	return nil
}

// Unwrap implements Unwrapper.
func (d *GBDTDriver) Unwrap() detect.Detector { return d.GBDTDetector }

// AVDriver plugs a commercial-AV simulator into the registry. AVs are
// hard-label-only (one bit per query, like the VirusTotal interface the
// paper attacks), so Score degenerates to {0, 1} around a 0.5 threshold.
// Ensemble members are live heterogeneous objects, not serializable weights;
// AV drivers register at runtime only and SaveEngine rejects them.
type AVDriver struct {
	av      *av.AV
	version string
	// Workers bounds ScoreBatch parallelism (<= 0 = GOMAXPROCS).
	Workers int
}

// NewAVDriver wraps a; version labels the simulator build (empty derives a
// stable "live-<name>" tag).
func NewAVDriver(a *av.AV, version string) (*AVDriver, error) {
	if a == nil {
		return nil, fmt.Errorf("engine: nil AV")
	}
	if version == "" {
		version = "live-" + a.Name()
	}
	return &AVDriver{av: a, version: version}, nil
}

// Name implements Driver.
func (d *AVDriver) Name() string { return d.av.Name() }

// Score implements Driver: the hard verdict as a degenerate score.
func (d *AVDriver) Score(raw []byte) float64 {
	if d.av.Detected(raw) {
		return 1
	}
	return 0
}

// Label implements Driver.
func (d *AVDriver) Label(raw []byte) bool { return d.av.Detected(raw) }

// ScoreBatch implements Driver; member checks fan out per sample.
func (d *AVDriver) ScoreBatch(raws [][]byte) []float64 {
	scores := make([]float64, len(raws))
	parallel.ForEach(d.Workers, len(raws), func(i int) {
		scores[i] = d.Score(raws[i])
	})
	return scores
}

// Threshold implements Driver.
func (d *AVDriver) Threshold() float64 { return 0.5 }

// DecisionThreshold implements detect.Thresholder.
func (d *AVDriver) DecisionThreshold() float64 { return 0.5 }

// Version implements Driver.
func (d *AVDriver) Version() string { return d.version }

// Health implements Driver.
func (d *AVDriver) Health() error {
	if d.av == nil {
		return fmt.Errorf("engine: AV driver has no ensemble")
	}
	return nil
}

// AV exposes the wrapped simulator (the learning loop's LearnRound lives
// there).
func (d *AVDriver) AV() *av.AV { return d.av }

// detectorDriver adapts any detect.Detector into a Driver — the
// compatibility wrapper for detectors that predate the driver layer (test
// stubs, external models).
type detectorDriver struct {
	detect.Detector
	version string
}

// WrapDetector adapts d into a Driver under the given version label (empty
// derives a stable "wrapped-<name>" tag). Capabilities of the underlying
// detector stay discoverable through the probes via Unwrap.
func WrapDetector(d detect.Detector, version string) (Driver, error) {
	if d == nil {
		return nil, fmt.Errorf("engine: nil detector")
	}
	if version == "" {
		version = "wrapped-" + d.Name()
	}
	return &detectorDriver{Detector: d, version: version}, nil
}

// ScoreBatch implements Driver through the detect batched-or-parallel path.
func (d *detectorDriver) ScoreBatch(raws [][]byte) []float64 {
	return detect.ScoreAll(d.Detector, raws, 0)
}

// Threshold implements Driver: the detector's own decision threshold when it
// has one, else the conventional 0.5.
func (d *detectorDriver) Threshold() float64 {
	if th, ok := d.Detector.(detect.Thresholder); ok {
		return th.DecisionThreshold()
	}
	return 0.5
}

// Version implements Driver.
func (d *detectorDriver) Version() string { return d.version }

// Health implements Driver.
func (d *detectorDriver) Health() error { return nil }

// Unwrap implements Unwrapper.
func (d *detectorDriver) Unwrap() detect.Detector { return d.Detector }

// FromSuite wraps the trained offline suite into a driver Set, preserving
// the paper's §IV-A order. This is the bridge from the legacy monolithic
// models.gob to the per-engine world: load the suite, wrap it, serve it.
func FromSuite(s *detect.Suite) (*Set, error) {
	if s == nil {
		return nil, fmt.Errorf("engine: nil suite")
	}
	malconv, err := NewConvDriver(s.MalConv)
	if err != nil {
		return nil, err
	}
	nonneg, err := NewConvDriver(s.NonNeg)
	if err != nil {
		return nil, err
	}
	lgbm, err := NewGBDTDriver(s.LGBM)
	if err != nil {
		return nil, err
	}
	malgcg, err := NewConvDriver(s.MalGCG)
	if err != nil {
		return nil, err
	}
	return NewSet(malconv, nonneg, lgbm, malgcg)
}
