package packer

import (
	"bytes"
	"math/rand"
	"testing"

	"mpass/internal/corpus"
	"mpass/internal/features"
	"mpass/internal/pefile"
	"mpass/internal/sandbox"
)

func victim(t *testing.T, seed int64) []byte {
	t.Helper()
	return corpus.NewGenerator(seed).Sample(corpus.Malware).Raw
}

func TestAllPackersPreserveBehaviour(t *testing.T) {
	for _, p := range All() {
		t.Run(p.Name(), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				orig := victim(t, seed)
				rng := rand.New(rand.NewSource(seed))
				packed, err := p.Pack(orig, rng)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				ok, err := sandbox.BehaviourPreserved(orig, packed)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !ok {
					t.Errorf("seed %d: behaviour broken", seed)
				}
			}
		})
	}
}

func TestPackedBytesDiffer(t *testing.T) {
	orig := victim(t, 7)
	for _, p := range All() {
		t.Run(p.Name(), func(t *testing.T) {
			packed, err := p.Pack(orig, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(packed, orig) {
				t.Error("packing changed nothing")
			}
			f, err := pefile.Parse(packed)
			if err != nil {
				t.Fatalf("packed output is not a valid PE: %v", err)
			}
			if f.EntrySection() == nil {
				t.Error("packed entry point unmapped")
			}
		})
	}
}

func TestUPXSignatureSections(t *testing.T) {
	packed, err := NewUPX().Pack(victim(t, 8), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	f, _ := pefile.Parse(packed)
	if f.SectionByName("UPX0") == nil || f.SectionByName("UPX1") == nil {
		t.Error("UPX0/UPX1 section pair missing")
	}
	// The packed original section is zeroed.
	u0 := f.SectionByName("UPX0")
	for _, b := range u0.Data {
		if b != 0 {
			t.Fatal("UPX0 not zeroed")
		}
	}
}

func TestEncryptingPackersRaiseCodeEntropy(t *testing.T) {
	orig := victim(t, 9)
	of, _ := pefile.Parse(orig)
	origEnt := features.Entropy(of.SectionByName(".text").Data)
	for _, p := range []Packer{NewPESpin(), NewASPack()} {
		t.Run(p.Name(), func(t *testing.T) {
			packed, err := p.Pack(orig, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			pf, _ := pefile.Parse(packed)
			ent := features.Entropy(pf.SectionByName(".text").Data)
			if ent <= origEnt {
				t.Errorf("packed .text entropy %.2f <= original %.2f", ent, origEnt)
			}
		})
	}
}

func TestPackersShareFixedStubAcrossSamples(t *testing.T) {
	// The stub opcode sequence must be identical across different inputs —
	// the learnable fixed pattern that distinguishes packers from MPass.
	p := NewPESpin()
	stub := func(seed int64) []byte {
		packed, err := p.Pack(victim(t, seed), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		f, _ := pefile.Parse(packed)
		s := f.SectionByName(".pspin")
		if s == nil {
			t.Fatal("no stub section")
		}
		// Compare opcode bytes only (immediates hold per-file constants).
		ops := make([]byte, 0, len(s.Data)/8)
		for off := 0; off+8 <= len(s.Data); off += 8 {
			ops = append(ops, s.Data[off])
		}
		return ops
	}
	a, b := stub(10), stub(11)
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff > n/10 {
		t.Errorf("stub opcode streams differ in %d/%d positions; expected a fixed pattern", diff, n)
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{0, 0, 0, 0},
		bytes.Repeat([]byte{7}, 1000),
		{1, 2, 3, 4, 5},
	}
	for _, c := range cases {
		enc := rleEncode(c)
		var dec []byte
		for i := 0; i+1 < len(enc); i += 2 {
			for k := 0; k < int(enc[i]); k++ {
				dec = append(dec, enc[i+1])
			}
		}
		if !bytes.Equal(dec, c) {
			t.Errorf("RLE round trip failed for %v", c)
		}
	}
}

func TestPackRejectsGarbage(t *testing.T) {
	for _, p := range All() {
		if _, err := p.Pack([]byte("not a pe"), rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("%s accepted garbage", p.Name())
		}
	}
}
