// Package packer implements the three obfuscators the paper compares MPass
// against in Table IV: UPX, PESpin, and ASPack. Each is simulated as a
// working runtime packer for the VISA-32/PE substrate:
//
//   - UPX: RLE-compresses the code and data sections into a "UPX1" blob
//     section and prepends a fixed decompression stub;
//   - PESpin: encrypts code/data in place with a rolling XOR stream and
//     prepends a fixed decryption stub;
//   - ASPack: encrypts code/data in place with a position-keyed additive
//     cipher and prepends its own fixed stub.
//
// All three preserve functionality (verified against internal/sandbox),
// but — unlike MPass — their stubs are *fixed instruction sequences* and
// their transforms push section entropy toward the packed-file profile.
// That is exactly why they underperform in Table IV: they change bytes
// without any notion of what the target models look at.
package packer

import (
	"fmt"
	"math/rand"

	"mpass/internal/pefile"
	"mpass/internal/visa"
)

// Packer transforms a PE image into a packed, functionality-equivalent one.
type Packer interface {
	Name() string
	Pack(original []byte, rng *rand.Rand) ([]byte, error)
}

// All returns the three obfuscators in the paper's Table IV order.
func All() []Packer {
	return []Packer{NewUPX(), NewPESpin(), NewASPack()}
}

// region is one section selected for packing.
type region struct {
	section *pefile.Section
	va      uint32
	n       int
}

// packableRegions selects code + initialized-data sections, the content a
// real packer transforms.
func packableRegions(f *pefile.File) []region {
	var out []region
	for _, s := range f.Sections {
		if (s.IsCode() || s.Characteristics&pefile.SecInitializedData != 0) && len(s.Data) > 0 {
			out = append(out, region{section: s, va: s.VirtualAddress, n: len(s.Data)})
		}
	}
	return out
}

// UPX is the RLE-compressing packer simulator.
type UPX struct{}

// NewUPX returns the UPX simulator.
func NewUPX() *UPX { return &UPX{} }

// Name implements Packer.
func (*UPX) Name() string { return "UPX" }

// rleEncode compresses b as (count, value) pairs, count in [1,255].
func rleEncode(b []byte) []byte {
	var out []byte
	for i := 0; i < len(b); {
		j := i
		for j < len(b) && b[j] == b[i] && j-i < 255 {
			j++
		}
		out = append(out, byte(j-i), b[i])
		i = j
	}
	return out
}

// Pack implements Packer.
func (u *UPX) Pack(original []byte, rng *rand.Rand) ([]byte, error) {
	f, err := pefile.Parse(original)
	if err != nil {
		return nil, fmt.Errorf("upx: %w", err)
	}
	regs := packableRegions(f)
	if len(regs) == 0 {
		return nil, fmt.Errorf("upx: nothing to pack")
	}
	origEntry := f.Optional.AddressOfEntryPoint

	// Compress every region into one blob; zero the originals (UPX0-style).
	var blob []byte
	blobOffsets := make([]int, len(regs))
	for i, r := range regs {
		blobOffsets[i] = len(blob)
		blob = append(blob, rleEncode(r.section.Data)...)
		for j := range r.section.Data {
			r.section.Data[j] = 0
		}
	}

	// The stub section layout: [stub code][blob]. Two-pass assembly sizes
	// the code first.
	stubVA := f.NextVirtualAddress()
	asmStub := func(codeLen int) []byte {
		var a visa.Assembler
		blobBase := int32(stubVA) + int32(codeLen)
		for i, r := range regs {
			a.Movi(1, blobBase+int32(blobOffsets[i])) // src
			a.Movi(2, int32(r.va))                    // dst
			a.Movi(3, int32(r.n))                     // remaining
			loop := fmt.Sprintf("r%d_loop", i)
			fill := fmt.Sprintf("r%d_fill", i)
			done := fmt.Sprintf("r%d_done", i)
			a.Label(loop)
			a.Jz(3, done)
			a.Loadb(4, 1, 0) // count
			a.Loadb(5, 1, 1) // value
			a.Addi(1, 2)
			a.Label(fill)
			a.Storeb(5, 2, 0)
			a.Addi(2, 1)
			a.Subi(3, 1)
			a.Subi(4, 1)
			a.Jnz(4, fill)
			a.Jmp(loop)
			a.Label(done)
		}
		// Jump to the original entry (relative, patched via label trick:
		// emit a JMP whose displacement we fix below).
		a.Emit(visa.Inst{Op: visa.JMP}) // placeholder
		code := a.MustAssemble()
		// Patch the final JMP: it sits at the end of the code.
		at := len(code) - visa.Size
		jmp := visa.Inst{Op: visa.JMP, Imm: int32(origEntry) - (int32(stubVA) + int32(at) + visa.Size)}
		jmp.Encode(code[at:])
		return code
	}
	probe := asmStub(0)
	code := asmStub(len(probe))
	if len(code) != len(probe) {
		return nil, fmt.Errorf("upx: stub sizing mismatch")
	}

	// The real tool normally leaves its telltale UPX0/UPX1 pair, but
	// renamed builds circulate; a minority of packed files carry generic
	// names, which is what slips past name-based AV heuristics.
	blobName, shellName := "UPX1", "UPX0"
	if rng.Intn(5) == 0 {
		blobName, shellName = "MEW1", "MEW0"
	}
	if _, err := f.AddSection(blobName, append(code, blob...), pefile.SecCharacteristicsText|pefile.SecMemWrite); err != nil {
		return nil, err
	}
	regs[0].section.Name = shellName
	f.SetEntryPoint(stubVA)
	return f.Bytes(), nil
}

// streamPacker factors the two in-place encryption packers.
type streamPacker struct {
	name     string
	stubName string
	altName  string // less-telltale name a minority of builds use
}

// pickName returns the stub section name for one packed file.
func (p streamPacker) pickName(rng *rand.Rand) string {
	if p.altName != "" && rng.Intn(5) == 0 {
		return p.altName
	}
	return p.stubName
}

// PESpin is the rolling-XOR encrypting packer simulator.
type PESpin struct{ streamPacker }

// NewPESpin returns the PESpin simulator.
func NewPESpin() *PESpin {
	return &PESpin{streamPacker{name: "PESpin", stubName: ".pspin", altName: ".spin"}}
}

// Name implements Packer.
func (p *PESpin) Name() string { return p.name }

// Pack implements Packer. The key stream evolves as k ← k + 4k + 17
// (mod 2³²); byte i is XORed with the low key byte.
func (p *PESpin) Pack(original []byte, rng *rand.Rand) ([]byte, error) {
	f, err := pefile.Parse(original)
	if err != nil {
		return nil, fmt.Errorf("pespin: %w", err)
	}
	regs := packableRegions(f)
	if len(regs) == 0 {
		return nil, fmt.Errorf("pespin: nothing to pack")
	}
	origEntry := f.Optional.AddressOfEntryPoint
	key := rng.Uint32() | 1

	// Encrypt in place.
	for _, r := range regs {
		k := key
		for i := range r.section.Data {
			r.section.Data[i] ^= byte(k)
			k = k + (k << 2) + 17
		}
	}

	stubVA := f.NextVirtualAddress()
	var a visa.Assembler
	for i, r := range regs {
		a.Movi(1, int32(r.va))
		a.Movi(3, int32(r.n))
		a.Movi(4, int32(key))
		loop := fmt.Sprintf("r%d", i)
		a.Label(loop)
		a.Loadb(5, 1, 0)
		a.Mov(6, 4)
		a.Andi(6, 0xFF)
		a.Xor(5, 6)
		a.Storeb(5, 1, 0)
		// k = k + (k<<2) + 17
		a.Mov(6, 4)
		a.Shli(6, 2)
		a.Add(4, 6)
		a.Addi(4, 17)
		a.Addi(1, 1)
		a.Subi(3, 1)
		a.Jnz(3, loop)
	}
	code := finishStub(&a, stubVA, origEntry)
	if _, err := f.AddSection(p.pickName(rng), code, pefile.SecCharacteristicsText|pefile.SecMemWrite); err != nil {
		return nil, err
	}
	f.SetEntryPoint(stubVA)
	return f.Bytes(), nil
}

// ASPack is the additive-cipher packer simulator.
type ASPack struct{ streamPacker }

// NewASPack returns the ASPack simulator.
func NewASPack() *ASPack {
	return &ASPack{streamPacker{name: "ASPack", stubName: ".aspack", altName: ".apack"}}
}

// Name implements Packer.
func (p *ASPack) Name() string { return p.name }

// Pack implements Packer. Byte i of each region is stored as
// x + 13·i + c (mod 256) with a random per-file constant c.
func (p *ASPack) Pack(original []byte, rng *rand.Rand) ([]byte, error) {
	f, err := pefile.Parse(original)
	if err != nil {
		return nil, fmt.Errorf("aspack: %w", err)
	}
	regs := packableRegions(f)
	if len(regs) == 0 {
		return nil, fmt.Errorf("aspack: nothing to pack")
	}
	origEntry := f.Optional.AddressOfEntryPoint
	c := byte(rng.Intn(256))

	for _, r := range regs {
		for i := range r.section.Data {
			r.section.Data[i] += byte(13*i) + c
		}
	}

	stubVA := f.NextVirtualAddress()
	var a visa.Assembler
	for ri, r := range regs {
		a.Movi(1, int32(r.va))
		a.Movi(3, int32(r.n))
		a.Movi(6, 0) // i
		loop := fmt.Sprintf("r%d", ri)
		a.Label(loop)
		a.Loadb(5, 1, 0)
		// R7 = 13*i + c = 8i + 4i + i + c
		a.Mov(7, 6)
		a.Shli(7, 3)
		a.Mov(4, 6)
		a.Shli(4, 2)
		a.Add(7, 4)
		a.Add(7, 6)
		a.Addi(7, int32(c))
		a.Sub(5, 7)
		a.Andi(5, 0xFF)
		a.Storeb(5, 1, 0)
		a.Addi(1, 1)
		a.Addi(6, 1)
		a.Subi(3, 1)
		a.Jnz(3, loop)
	}
	code := finishStub(&a, stubVA, origEntry)
	if _, err := f.AddSection(p.pickName(rng), code, pefile.SecCharacteristicsText|pefile.SecMemWrite); err != nil {
		return nil, err
	}
	f.SetEntryPoint(stubVA)
	return f.Bytes(), nil
}

// finishStub appends the jump back to the original entry point and patches
// its displacement for the stub's final position.
func finishStub(a *visa.Assembler, stubVA, origEntry uint32) []byte {
	a.Emit(visa.Inst{Op: visa.JMP}) // placeholder
	code := a.MustAssemble()
	at := len(code) - visa.Size
	jmp := visa.Inst{Op: visa.JMP, Imm: int32(origEntry) - (int32(stubVA) + int32(at) + visa.Size)}
	jmp.Encode(code[at:])
	return code
}
