package pefile

import (
	"encoding/binary"
	"fmt"
)

// Checksum computes the standard PE image checksum over raw bytes: the
// 16-bit one's-complement sum of the file (with the stored CheckSum field
// treated as zero) plus the file length. Real loaders only verify it for
// drivers, but AV heuristics flag mismatches, so attack tooling must be
// able to re-stamp it after mutation.
func Checksum(raw []byte) (uint32, error) {
	if len(raw) < dosHeaderSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(raw))
	}
	lfanew := binary.LittleEndian.Uint32(raw[60:64])
	// CheckSum lives at optional-header offset 64.
	csOff := int(lfanew) + 4 + fileHeaderSize + 64
	if csOff+4 > len(raw) {
		return 0, fmt.Errorf("%w: checksum field beyond file", ErrTruncated)
	}

	var sum uint64
	for i := 0; i+1 < len(raw); i += 2 {
		if i == csOff || i == csOff+2 {
			continue // the stored checksum itself counts as zero
		}
		sum += uint64(binary.LittleEndian.Uint16(raw[i:]))
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	if len(raw)%2 == 1 {
		sum += uint64(raw[len(raw)-1])
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	sum = (sum & 0xFFFF) + (sum >> 16)
	return uint32(sum) + uint32(len(raw)), nil
}

// StampChecksum serializes the file with a freshly computed checksum.
func (f *File) StampChecksum() ([]byte, error) {
	f.Optional.CheckSum = 0
	raw := f.Bytes()
	cs, err := Checksum(raw)
	if err != nil {
		return nil, err
	}
	f.Optional.CheckSum = cs
	return f.Bytes(), nil
}

// ValidationIssue describes one structural problem found by Validate.
type ValidationIssue struct {
	Section string // empty for file-level issues
	Problem string
}

func (v ValidationIssue) String() string {
	if v.Section == "" {
		return v.Problem
	}
	return v.Section + ": " + v.Problem
}

// Validate checks the structural invariants a loader (and this package's
// own mutators) rely on, returning every violation found. A nil slice
// means the image is well-formed.
func (f *File) Validate() []ValidationIssue {
	var issues []ValidationIssue
	add := func(section, problem string) {
		issues = append(issues, ValidationIssue{Section: section, Problem: problem})
	}

	fa, sa := f.Optional.FileAlignment, f.Optional.SectionAlignment
	if fa == 0 || fa&(fa-1) != 0 {
		add("", fmt.Sprintf("file alignment %#x is not a power of two", fa))
	}
	if sa == 0 || sa&(sa-1) != 0 {
		add("", fmt.Sprintf("section alignment %#x is not a power of two", sa))
	}
	if f.Optional.AddressOfEntryPoint != 0 && f.EntrySection() == nil {
		add("", fmt.Sprintf("entry point %#x not inside any section", f.Optional.AddressOfEntryPoint))
	}

	seen := make(map[string]int)
	for i, s := range f.Sections {
		seen[s.Name]++
		if fa != 0 && s.PointerToRawData%fa != 0 {
			add(s.Name, fmt.Sprintf("raw pointer %#x not file-aligned", s.PointerToRawData))
		}
		if fa != 0 && s.SizeOfRawData%fa != 0 {
			add(s.Name, fmt.Sprintf("raw size %#x not file-aligned", s.SizeOfRawData))
		}
		if sa != 0 && s.VirtualAddress%sa != 0 {
			add(s.Name, fmt.Sprintf("virtual address %#x not section-aligned", s.VirtualAddress))
		}
		if uint32(len(s.Data)) != s.SizeOfRawData {
			add(s.Name, fmt.Sprintf("data length %d != raw size %d", len(s.Data), s.SizeOfRawData))
		}
		end := s.VirtualAddress + align(maxU32(s.VirtualSize, 1), maxU32(sa, 1))
		if end > f.Optional.SizeOfImage {
			add(s.Name, fmt.Sprintf("extends past SizeOfImage (%#x > %#x)", end, f.Optional.SizeOfImage))
		}
		for _, t := range f.Sections[i+1:] {
			if s.Contains(t.VirtualAddress) || t.Contains(s.VirtualAddress) {
				add(s.Name, fmt.Sprintf("virtual range overlaps %q", t.Name))
			}
		}
	}
	for name, n := range seen {
		if n > 1 {
			add(name, fmt.Sprintf("duplicated %d times", n))
		}
	}
	if int(f.FileHeader.NumberOfSections) != len(f.Sections) {
		add("", fmt.Sprintf("header section count %d != %d sections",
			f.FileHeader.NumberOfSections, len(f.Sections)))
	}
	return issues
}
