package pefile

import (
	"encoding/binary"
	"fmt"
)

// align rounds v up to the next multiple of a (a must be a power of two in
// valid PE images, but any positive a works here).
func align(v, a uint32) uint32 {
	if a == 0 {
		return v
	}
	return (v + a - 1) / a * a
}

// New creates an empty PE32 image with default headers and no sections.
// The caller adds sections with AddSection and sets the entry point.
func New() *File {
	f := &File{}
	f.DOSStub = defaultDOSStub()
	f.lfanew = uint32(dosHeaderSize + len(f.DOSStub))
	f.FileHeader = FileHeader{
		Machine:              machine86,
		SizeOfOptionalHeader: optHeaderSize,
		Characteristics:      0x0102, // EXECUTABLE_IMAGE | 32BIT_MACHINE
	}
	f.Optional = OptionalHeader32{
		Magic:                 opt32,
		MajorLinkerVersion:    14,
		ImageBase:             DefaultImageBase,
		SectionAlignment:      DefaultSectionAlignment,
		FileAlignment:         DefaultFileAlignment,
		MajorSubsystemVersion: 6,
		Subsystem:             3, // IMAGE_SUBSYSTEM_WINDOWS_CUI
		SizeOfStackReserve:    0x100000,
		SizeOfStackCommit:     0x1000,
		SizeOfHeapReserve:     0x100000,
		SizeOfHeapCommit:      0x1000,
		NumberOfRvaAndSizes:   numDataDirs,
	}
	return f
}

// defaultDOSStub returns the classic 64-byte "This program cannot be run in
// DOS mode" stub used by images built from scratch.
func defaultDOSStub() []byte {
	stub := make([]byte, 64)
	copy(stub, []byte{
		0x0E, 0x1F, 0xBA, 0x0E, 0x00, 0xB4, 0x09, 0xCD,
		0x21, 0xB8, 0x01, 0x4C, 0xCD, 0x21,
	})
	copy(stub[14:], "This program cannot be run in DOS mode.\r\r\n$")
	return stub
}

// headerSpan returns the byte length of everything before raw section data:
// DOS header, DOS stub, NT signature, file header, optional header, and the
// section table for n sections.
func (f *File) headerSpan(n int) uint32 {
	return uint32(dosHeaderSize+len(f.DOSStub)) + 4 + fileHeaderSize +
		uint32(f.FileHeader.SizeOfOptionalHeader) + uint32(n*sectionHeaderSize)
}

// Layout recomputes every derived header field: section raw pointers and
// sizes (respecting FileAlignment), virtual addresses are left untouched,
// SizeOfHeaders, SizeOfImage, SizeOfCode/InitializedData, and the section
// count. Mutators call it automatically; callers that edit Section.Data in
// place should call it before Bytes.
func (f *File) Layout() {
	fa := f.Optional.FileAlignment
	if fa == 0 {
		fa = DefaultFileAlignment
		f.Optional.FileAlignment = fa
	}
	sa := f.Optional.SectionAlignment
	if sa == 0 {
		sa = DefaultSectionAlignment
		f.Optional.SectionAlignment = sa
	}

	f.FileHeader.NumberOfSections = uint16(len(f.Sections))
	hdr := align(f.headerSpan(len(f.Sections)), fa)
	f.Optional.SizeOfHeaders = hdr

	off := hdr
	var sizeCode, sizeData, imageEnd uint32
	imageEnd = align(hdr, sa)
	for _, s := range f.Sections {
		raw := align(uint32(len(s.Data)), fa)
		if uint32(len(s.Data)) != raw {
			// Pad the stored data so len(Data) == SizeOfRawData; keeps
			// byte-level attacks able to index the full on-disk extent.
			pad := make([]byte, raw-uint32(len(s.Data)))
			s.Data = append(s.Data, pad...)
		}
		s.SizeOfRawData = raw
		if raw == 0 {
			s.PointerToRawData = 0
		} else {
			s.PointerToRawData = off
			off += raw
		}
		if s.VirtualSize == 0 {
			s.VirtualSize = uint32(len(s.Data))
		}
		end := s.VirtualAddress + align(s.VirtualSize, sa)
		if end > imageEnd {
			imageEnd = end
		}
		if s.IsCode() {
			sizeCode += raw
		} else if s.Characteristics&SecInitializedData != 0 {
			sizeData += raw
		}
	}
	f.Optional.SizeOfCode = sizeCode
	f.Optional.SizeOfInitializedData = sizeData
	f.Optional.SizeOfImage = imageEnd
	if cs := f.CodeSections(); len(cs) > 0 {
		f.Optional.BaseOfCode = cs[0].VirtualAddress
	}
	if ds := f.DataSections(); len(ds) > 0 {
		f.Optional.BaseOfData = ds[0].VirtualAddress
	}
}

// NextVirtualAddress returns the first section-aligned RVA past all
// existing sections (or past the headers when there are none).
func (f *File) NextVirtualAddress() uint32 {
	sa := f.Optional.SectionAlignment
	if sa == 0 {
		sa = DefaultSectionAlignment
	}
	next := align(f.headerSpan(len(f.Sections)+1), sa)
	for _, s := range f.Sections {
		end := s.VirtualAddress + align(maxU32(s.VirtualSize, uint32(len(s.Data))), sa)
		if end > next {
			next = end
		}
	}
	return next
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// AddSection appends a new section holding data with the given
// characteristics, assigns it the next free virtual address, re-lays-out the
// file, and returns the new section.
func (f *File) AddSection(name string, data []byte, characteristics uint32) (*Section, error) {
	if len(name) > 8 {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	s := &Section{
		Name:            name,
		VirtualAddress:  f.NextVirtualAddress(),
		VirtualSize:     uint32(len(data)),
		Characteristics: characteristics,
		Data:            append([]byte(nil), data...),
	}
	f.Sections = append(f.Sections, s)
	f.Layout()
	return s, nil
}

// RemoveSection deletes the named section. Virtual addresses of the
// remaining sections are unchanged (PE allows VA gaps).
func (f *File) RemoveSection(name string) error {
	for i, s := range f.Sections {
		if s.Name == name {
			f.Sections = append(f.Sections[:i], f.Sections[i+1:]...)
			f.Layout()
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrNoSuchSection, name)
}

// RenameSection changes a section's name in place. Section names are one of
// the header fields the paper's Figure 2 marks as freely perturbable.
func (f *File) RenameSection(oldName, newName string) error {
	if len(newName) > 8 {
		return fmt.Errorf("%w: %q", ErrNameTooLong, newName)
	}
	s := f.SectionByName(oldName)
	if s == nil {
		return fmt.Errorf("%w: %q", ErrNoSuchSection, oldName)
	}
	s.Name = newName
	return nil
}

// SetEntryPoint redirects execution to the given RVA. This is how the
// recovery module takes control before the original program runs.
func (f *File) SetEntryPoint(rva uint32) { f.Optional.AddressOfEntryPoint = rva }

// SetTimestamp overwrites the COFF timestamp, another functionality-neutral
// header perturbation from Figure 2.
func (f *File) SetTimestamp(ts uint32) { f.FileHeader.TimeDateStamp = ts }

// AppendOverlay adds bytes past the last section's raw data ("overlay
// appending" in the paper, used when a sample has no room for new sections).
func (f *File) AppendOverlay(b []byte) { f.Overlay = append(f.Overlay, b...) }

// Size returns the total serialized size in bytes.
func (f *File) Size() int {
	f.Layout()
	end := f.Optional.SizeOfHeaders
	for _, s := range f.Sections {
		if s.SizeOfRawData > 0 && s.PointerToRawData+s.SizeOfRawData > end {
			end = s.PointerToRawData + s.SizeOfRawData
		}
	}
	return int(end) + len(f.Overlay)
}

// Bytes serializes the image. It always re-runs Layout first so derived
// fields are consistent with the current section contents.
func (f *File) Bytes() []byte {
	f.Layout()
	out := make([]byte, f.Size())

	// DOS header.
	binary.LittleEndian.PutUint16(out[0:], dosMagic)
	binary.LittleEndian.PutUint16(out[2:], 0x90) // e_cblp, cosmetic
	f.lfanew = uint32(dosHeaderSize + len(f.DOSStub))
	binary.LittleEndian.PutUint32(out[60:], f.lfanew)
	copy(out[dosHeaderSize:], f.DOSStub)

	off := int(f.lfanew)
	binary.LittleEndian.PutUint32(out[off:], ntMagic)
	off += 4

	fh := &f.FileHeader
	binary.LittleEndian.PutUint16(out[off:], fh.Machine)
	binary.LittleEndian.PutUint16(out[off+2:], fh.NumberOfSections)
	binary.LittleEndian.PutUint32(out[off+4:], fh.TimeDateStamp)
	binary.LittleEndian.PutUint32(out[off+8:], fh.PointerToSymbolTable)
	binary.LittleEndian.PutUint32(out[off+12:], fh.NumberOfSymbols)
	binary.LittleEndian.PutUint16(out[off+16:], fh.SizeOfOptionalHeader)
	binary.LittleEndian.PutUint16(out[off+18:], fh.Characteristics)
	off += fileHeaderSize

	writeOptional32(out[off:], &f.Optional)
	off += int(fh.SizeOfOptionalHeader)

	for _, s := range f.Sections {
		h := out[off:]
		copy(h[0:8], s.Name)
		binary.LittleEndian.PutUint32(h[8:], s.VirtualSize)
		binary.LittleEndian.PutUint32(h[12:], s.VirtualAddress)
		binary.LittleEndian.PutUint32(h[16:], s.SizeOfRawData)
		binary.LittleEndian.PutUint32(h[20:], s.PointerToRawData)
		binary.LittleEndian.PutUint32(h[36:], s.Characteristics)
		off += sectionHeaderSize
	}

	end := int(f.Optional.SizeOfHeaders)
	for _, s := range f.Sections {
		if s.SizeOfRawData == 0 {
			continue
		}
		copy(out[s.PointerToRawData:], s.Data)
		if e := int(s.PointerToRawData + s.SizeOfRawData); e > end {
			end = e
		}
	}
	copy(out[end:], f.Overlay)
	return out
}

func writeOptional32(b []byte, o *OptionalHeader32) {
	binary.LittleEndian.PutUint16(b[0:], o.Magic)
	b[2] = o.MajorLinkerVersion
	b[3] = o.MinorLinkerVersion
	binary.LittleEndian.PutUint32(b[4:], o.SizeOfCode)
	binary.LittleEndian.PutUint32(b[8:], o.SizeOfInitializedData)
	binary.LittleEndian.PutUint32(b[12:], o.SizeOfUninitializedData)
	binary.LittleEndian.PutUint32(b[16:], o.AddressOfEntryPoint)
	binary.LittleEndian.PutUint32(b[20:], o.BaseOfCode)
	binary.LittleEndian.PutUint32(b[24:], o.BaseOfData)
	binary.LittleEndian.PutUint32(b[28:], o.ImageBase)
	binary.LittleEndian.PutUint32(b[32:], o.SectionAlignment)
	binary.LittleEndian.PutUint32(b[36:], o.FileAlignment)
	binary.LittleEndian.PutUint16(b[40:], o.MajorOperatingSystemVersion)
	binary.LittleEndian.PutUint16(b[42:], o.MinorOperatingSystemVersion)
	binary.LittleEndian.PutUint16(b[44:], o.MajorImageVersion)
	binary.LittleEndian.PutUint16(b[46:], o.MinorImageVersion)
	binary.LittleEndian.PutUint16(b[48:], o.MajorSubsystemVersion)
	binary.LittleEndian.PutUint16(b[50:], o.MinorSubsystemVersion)
	binary.LittleEndian.PutUint32(b[52:], o.Win32VersionValue)
	binary.LittleEndian.PutUint32(b[56:], o.SizeOfImage)
	binary.LittleEndian.PutUint32(b[60:], o.SizeOfHeaders)
	binary.LittleEndian.PutUint32(b[64:], o.CheckSum)
	binary.LittleEndian.PutUint16(b[68:], o.Subsystem)
	binary.LittleEndian.PutUint16(b[70:], o.DllCharacteristics)
	binary.LittleEndian.PutUint32(b[72:], o.SizeOfStackReserve)
	binary.LittleEndian.PutUint32(b[76:], o.SizeOfStackCommit)
	binary.LittleEndian.PutUint32(b[80:], o.SizeOfHeapReserve)
	binary.LittleEndian.PutUint32(b[84:], o.SizeOfHeapCommit)
	binary.LittleEndian.PutUint32(b[88:], o.LoaderFlags)
	binary.LittleEndian.PutUint32(b[92:], o.NumberOfRvaAndSizes)
	for i := 0; i < numDataDirs; i++ {
		binary.LittleEndian.PutUint32(b[96+8*i:], o.DataDirectories[i].VirtualAddress)
		binary.LittleEndian.PutUint32(b[100+8*i:], o.DataDirectories[i].Size)
	}
}

// SlackRegion describes unused bytes between a section's meaningful content
// (VirtualSize) and its file-aligned raw size. The paper's footnote 5 notes
// these are too small to matter for attacks; they are exposed for the
// ablations anyway.
type SlackRegion struct {
	Section string
	Offset  uint32 // file offset of the first slack byte
	Length  uint32
}

// SlackRegions enumerates per-section slack (alignment padding) regions.
func (f *File) SlackRegions() []SlackRegion {
	var out []SlackRegion
	for _, s := range f.Sections {
		if s.SizeOfRawData == 0 || s.VirtualSize >= s.SizeOfRawData {
			continue
		}
		out = append(out, SlackRegion{
			Section: s.Name,
			Offset:  s.PointerToRawData + s.VirtualSize,
			Length:  s.SizeOfRawData - s.VirtualSize,
		})
	}
	return out
}

// Clone returns a deep copy of the file.
func (f *File) Clone() *File {
	g := &File{
		DOSStub:    append([]byte(nil), f.DOSStub...),
		FileHeader: f.FileHeader,
		Optional:   f.Optional,
		Overlay:    append([]byte(nil), f.Overlay...),
		lfanew:     f.lfanew,
	}
	for _, s := range f.Sections {
		c := *s
		c.Data = append([]byte(nil), s.Data...)
		g.Sections = append(g.Sections, &c)
	}
	return g
}
