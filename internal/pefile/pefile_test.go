package pefile

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSample constructs a small two-section image used across tests.
func buildSample(t *testing.T) *File {
	t.Helper()
	f := New()
	code := bytes.Repeat([]byte{0x90}, 300)
	data := bytes.Repeat([]byte{0xAB}, 150)
	if _, err := f.AddSection(".text", code, SecCharacteristicsText); err != nil {
		t.Fatalf("AddSection .text: %v", err)
	}
	if _, err := f.AddSection(".data", data, SecCharacteristicsData); err != nil {
		t.Fatalf("AddSection .data: %v", err)
	}
	f.SetEntryPoint(f.SectionByName(".text").VirtualAddress)
	return f
}

func TestNewImageRoundTrip(t *testing.T) {
	f := buildSample(t)
	raw := f.Bytes()

	g, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got, want := len(g.Sections), 2; got != want {
		t.Fatalf("sections = %d, want %d", got, want)
	}
	if g.Sections[0].Name != ".text" || g.Sections[1].Name != ".data" {
		t.Errorf("section names = %q, %q", g.Sections[0].Name, g.Sections[1].Name)
	}
	if !bytes.Equal(g.Bytes(), raw) {
		t.Error("re-serialized bytes differ from original")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", []byte("MZ")},
		{"no magic", make([]byte, 128)},
		{"bad lfanew", func() []byte {
			b := make([]byte, 128)
			b[0], b[1] = 'M', 'Z'
			b[60] = 0xF0 // lfanew beyond file
			b[61] = 0xFF
			return b
		}()},
		{"no PE sig", func() []byte {
			b := make([]byte, 256)
			b[0], b[1] = 'M', 'Z'
			b[60] = 64
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.b); err == nil {
				t.Error("Parse accepted malformed input")
			}
		})
	}
}

func TestSectionAlignmentInvariants(t *testing.T) {
	f := buildSample(t)
	f.Layout()
	for _, s := range f.Sections {
		if s.SizeOfRawData%f.Optional.FileAlignment != 0 {
			t.Errorf("section %q raw size %#x not file-aligned", s.Name, s.SizeOfRawData)
		}
		if s.PointerToRawData%f.Optional.FileAlignment != 0 {
			t.Errorf("section %q raw pointer %#x not file-aligned", s.Name, s.PointerToRawData)
		}
		if s.VirtualAddress%f.Optional.SectionAlignment != 0 {
			t.Errorf("section %q VA %#x not section-aligned", s.Name, s.VirtualAddress)
		}
		if uint32(len(s.Data)) != s.SizeOfRawData {
			t.Errorf("section %q len(Data)=%d != SizeOfRawData=%d", s.Name, len(s.Data), s.SizeOfRawData)
		}
	}
	if f.Optional.SizeOfImage%f.Optional.SectionAlignment != 0 {
		t.Errorf("SizeOfImage %#x not section-aligned", f.Optional.SizeOfImage)
	}
}

func TestAddSectionAssignsDisjointVAs(t *testing.T) {
	f := buildSample(t)
	s3, err := f.AddSection(".mp", make([]byte, 700), SecCharacteristicsText)
	if err != nil {
		t.Fatalf("AddSection: %v", err)
	}
	for _, s := range f.Sections[:2] {
		if s3.Contains(s.VirtualAddress) || s.Contains(s3.VirtualAddress) {
			t.Errorf("section %q VA range overlaps %q", s3.Name, s.Name)
		}
	}
	// Round-trip survives the added section.
	g, err := Parse(f.Bytes())
	if err != nil {
		t.Fatalf("Parse after AddSection: %v", err)
	}
	if g.SectionByName(".mp") == nil {
		t.Error("added section lost on round trip")
	}
}

func TestAddSectionNameTooLong(t *testing.T) {
	f := New()
	if _, err := f.AddSection("waytoolongname", nil, SecCode); err == nil {
		t.Error("AddSection accepted a 14-byte name")
	}
}

func TestRemoveSection(t *testing.T) {
	f := buildSample(t)
	if err := f.RemoveSection(".data"); err != nil {
		t.Fatalf("RemoveSection: %v", err)
	}
	if f.SectionByName(".data") != nil {
		t.Error(".data still present after removal")
	}
	if err := f.RemoveSection(".nope"); err == nil {
		t.Error("RemoveSection succeeded on a missing section")
	}
}

func TestRenameSection(t *testing.T) {
	f := buildSample(t)
	if err := f.RenameSection(".text", ".blob"); err != nil {
		t.Fatalf("RenameSection: %v", err)
	}
	if f.SectionByName(".blob") == nil {
		t.Fatal("renamed section not found")
	}
	if err := f.RenameSection(".blob", "far-too-long"); err == nil {
		t.Error("RenameSection accepted an over-long name")
	}
	if err := f.RenameSection(".gone", ".x"); err == nil {
		t.Error("RenameSection succeeded on a missing section")
	}
}

func TestEntryPointAndSectionAt(t *testing.T) {
	f := buildSample(t)
	text := f.SectionByName(".text")
	f.SetEntryPoint(text.VirtualAddress + 16)
	if got := f.EntrySection(); got != text {
		t.Errorf("EntrySection = %v, want .text", got)
	}
	if got := f.SectionAt(0); got != nil {
		t.Errorf("SectionAt(0) = %q, want nil", got.Name)
	}
}

func TestRVAOffsetInverse(t *testing.T) {
	f := buildSample(t)
	f.Layout()
	text := f.SectionByName(".text")
	for _, delta := range []uint32{0, 1, 17, 299} {
		rva := text.VirtualAddress + delta
		off, ok := f.RVAToOffset(rva)
		if !ok {
			t.Fatalf("RVAToOffset(%#x) failed", rva)
		}
		back, ok := f.OffsetToRVA(off)
		if !ok || back != rva {
			t.Errorf("OffsetToRVA(RVAToOffset(%#x)) = %#x, ok=%v", rva, back, ok)
		}
	}
	if _, ok := f.RVAToOffset(0xdeadbeef); ok {
		t.Error("RVAToOffset accepted an unmapped RVA")
	}
}

func TestOverlayRoundTrip(t *testing.T) {
	f := buildSample(t)
	f.AppendOverlay([]byte("OVERLAYDATA"))
	g, err := Parse(f.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !bytes.Equal(g.Overlay, []byte("OVERLAYDATA")) {
		t.Errorf("overlay = %q", g.Overlay)
	}
}

func TestHeaderEditsSurviveRoundTrip(t *testing.T) {
	f := buildSample(t)
	f.SetTimestamp(0x5EADBEEF)
	g, err := Parse(f.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.FileHeader.TimeDateStamp != 0x5EADBEEF {
		t.Errorf("timestamp = %#x", g.FileHeader.TimeDateStamp)
	}
}

func TestSlackRegions(t *testing.T) {
	f := buildSample(t)
	f.Layout()
	regs := f.SlackRegions()
	if len(regs) != 2 {
		t.Fatalf("slack regions = %d, want 2", len(regs))
	}
	// .text holds 300 bytes content in a 512-byte aligned chunk.
	if regs[0].Length != 512-300 {
		t.Errorf(".text slack = %d, want %d", regs[0].Length, 512-300)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildSample(t)
	g := f.Clone()
	g.Sections[0].Data[0] = 0xFF
	g.SetTimestamp(42)
	if f.Sections[0].Data[0] == 0xFF {
		t.Error("clone shares section data with original")
	}
	if f.FileHeader.TimeDateStamp == 42 {
		t.Error("clone shares header with original")
	}
}

func TestCodeAndDataSectionFilters(t *testing.T) {
	f := buildSample(t)
	if _, err := f.AddSection(".rsrc", make([]byte, 32), SecCharacteristicsRsrc); err != nil {
		t.Fatal(err)
	}
	if got := len(f.CodeSections()); got != 1 {
		t.Errorf("CodeSections = %d, want 1", got)
	}
	if got := len(f.DataSections()); got != 1 {
		t.Errorf("DataSections = %d, want 1", got)
	}
}

// TestQuickRoundTrip is the property test: any image built from random
// section contents parses back to identical bytes.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(nSec uint8, seed int64) bool {
		n := int(nSec)%4 + 1
		local := rand.New(rand.NewSource(seed))
		f := New()
		for i := 0; i < n; i++ {
			size := local.Intn(2000)
			data := make([]byte, size)
			local.Read(data)
			chars := uint32(SecCharacteristicsText)
			if i%2 == 1 {
				chars = SecCharacteristicsData
			}
			name := string([]byte{'.', byte('a' + i)})
			if _, err := f.AddSection(name, data, chars); err != nil {
				return false
			}
		}
		if local.Intn(2) == 1 {
			ov := make([]byte, local.Intn(300))
			local.Read(ov)
			f.AppendOverlay(ov)
		}
		raw := f.Bytes()
		g, err := Parse(raw)
		if err != nil {
			return false
		}
		return bytes.Equal(g.Bytes(), raw)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSizeMatchesBytes(t *testing.T) {
	f := buildSample(t)
	f.AppendOverlay([]byte{1, 2, 3})
	if got, want := f.Size(), len(f.Bytes()); got != want {
		t.Errorf("Size = %d, len(Bytes) = %d", got, want)
	}
}
