package pefile

import (
	"testing"
)

func TestChecksumDeterministicAndSensitive(t *testing.T) {
	f := buildSample(t)
	raw, err := f.StampChecksum()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Optional.CheckSum == 0 {
		t.Fatal("checksum not stamped")
	}
	// Recomputing over the stamped file with the field zeroed reproduces
	// the stored value.
	cs, err := Checksum(raw)
	if err != nil {
		t.Fatal(err)
	}
	if cs != g.Optional.CheckSum {
		t.Errorf("recomputed %#x != stored %#x", cs, g.Optional.CheckSum)
	}
	// Flipping any content byte changes the checksum.
	raw2 := append([]byte(nil), raw...)
	raw2[len(raw2)-1] ^= 0xFF
	cs2, err := Checksum(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if cs2 == cs {
		t.Error("checksum insensitive to content change")
	}
}

func TestChecksumIgnoresStoredField(t *testing.T) {
	f := buildSample(t)
	f.Optional.CheckSum = 0
	a, err := Checksum(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	f.Optional.CheckSum = 0xDEADBEEF
	b, err := Checksum(f.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("checksum depends on its own field: %#x vs %#x", a, b)
	}
}

func TestChecksumTruncated(t *testing.T) {
	if _, err := Checksum([]byte{1, 2}); err == nil {
		t.Error("short input accepted")
	}
	b := make([]byte, 128)
	b[60] = 0xF0
	b[61] = 0xFF
	if _, err := Checksum(b); err == nil {
		t.Error("out-of-range lfanew accepted")
	}
}

func TestValidateCleanImage(t *testing.T) {
	f := buildSample(t)
	f.Layout()
	if issues := f.Validate(); len(issues) != 0 {
		t.Errorf("clean image has issues: %v", issues)
	}
}

func TestValidateDetectsProblems(t *testing.T) {
	t.Run("entry outside sections", func(t *testing.T) {
		f := buildSample(t)
		f.SetEntryPoint(0xFF0000)
		if len(f.Validate()) == 0 {
			t.Error("bad entry point not reported")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		f := buildSample(t)
		if err := f.RenameSection(".data", ".text"); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, is := range f.Validate() {
			if is.Section == ".text" && is.Problem != "" {
				found = true
			}
		}
		if !found {
			t.Error("duplicate section name not reported")
		}
	})
	t.Run("overlapping VAs", func(t *testing.T) {
		f := buildSample(t)
		f.Sections[1].VirtualAddress = f.Sections[0].VirtualAddress
		if len(f.Validate()) == 0 {
			t.Error("overlapping sections not reported")
		}
	})
	t.Run("misaligned raw size", func(t *testing.T) {
		f := buildSample(t)
		f.Layout()
		f.Sections[0].SizeOfRawData++
		if len(f.Validate()) == 0 {
			t.Error("misaligned raw size not reported")
		}
	})
	t.Run("bad alignment", func(t *testing.T) {
		f := buildSample(t)
		f.Optional.FileAlignment = 0x300 // not a power of two
		if len(f.Validate()) == 0 {
			t.Error("non-power-of-two alignment not reported")
		}
	})
}

func TestValidationIssueString(t *testing.T) {
	if got := (ValidationIssue{Problem: "p"}).String(); got != "p" {
		t.Errorf("file-level issue = %q", got)
	}
	if got := (ValidationIssue{Section: ".x", Problem: "p"}).String(); got != ".x: p" {
		t.Errorf("section issue = %q", got)
	}
}
