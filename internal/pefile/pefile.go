// Package pefile implements parsing, serialization, and mutation of PE32
// (Portable Executable) images as used by Windows executables.
//
// The package is self-contained (no debug/pe dependency) because the MPass
// attack needs write access to every structure a reader exposes: it adds
// sections, rewrites entry points, renames sections, edits timestamps,
// appends overlays, and re-lays-out raw data while keeping file and section
// alignment invariants intact. The stdlib reader is read-only.
//
// Only the subset of PE32 needed by the paper is modeled: DOS header, COFF
// file header, the 32-bit optional header with its data directories, the
// section table, raw section data, and the trailing overlay. That subset is
// round-trip stable: Parse followed by Bytes reproduces the input exactly
// for files produced by this package.
package pefile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Core PE32 constants. Values follow the Microsoft PE/COFF specification.
const (
	dosMagic  = 0x5A4D     // "MZ"
	ntMagic   = 0x00004550 // "PE\0\0"
	opt32     = 0x10B      // PE32 optional header magic
	machine86 = 0x014C     // IMAGE_FILE_MACHINE_I386

	dosHeaderSize     = 64
	fileHeaderSize    = 20
	optHeaderSize     = 224 // PE32 optional header incl. 16 data directories
	sectionHeaderSize = 40
	numDataDirs       = 16

	// DefaultFileAlignment and DefaultSectionAlignment are the alignments
	// used by images this package builds from scratch.
	DefaultFileAlignment    = 0x200
	DefaultSectionAlignment = 0x1000

	// DefaultImageBase is the preferred load address for built images.
	DefaultImageBase = 0x400000
)

// Section characteristics flags (IMAGE_SCN_*).
const (
	SecCode                = 0x00000020
	SecInitializedData     = 0x00000040
	SecUninitializedData   = 0x00000080
	SecMemExecute          = 0x20000000
	SecMemRead             = 0x40000000
	SecMemWrite            = 0x80000000
	SecCharacteristicsText = SecCode | SecMemExecute | SecMemRead
	SecCharacteristicsData = SecInitializedData | SecMemRead | SecMemWrite
	SecCharacteristicsRsrc = SecInitializedData | SecMemRead
)

// FileHeader mirrors IMAGE_FILE_HEADER.
type FileHeader struct {
	Machine              uint16
	NumberOfSections     uint16
	TimeDateStamp        uint32
	PointerToSymbolTable uint32
	NumberOfSymbols      uint32
	SizeOfOptionalHeader uint16
	Characteristics      uint16
}

// DataDirectory is one entry of the optional header's directory table.
type DataDirectory struct {
	VirtualAddress uint32
	Size           uint32
}

// OptionalHeader32 mirrors IMAGE_OPTIONAL_HEADER32.
type OptionalHeader32 struct {
	Magic                       uint16
	MajorLinkerVersion          uint8
	MinorLinkerVersion          uint8
	SizeOfCode                  uint32
	SizeOfInitializedData       uint32
	SizeOfUninitializedData     uint32
	AddressOfEntryPoint         uint32
	BaseOfCode                  uint32
	BaseOfData                  uint32
	ImageBase                   uint32
	SectionAlignment            uint32
	FileAlignment               uint32
	MajorOperatingSystemVersion uint16
	MinorOperatingSystemVersion uint16
	MajorImageVersion           uint16
	MinorImageVersion           uint16
	MajorSubsystemVersion       uint16
	MinorSubsystemVersion       uint16
	Win32VersionValue           uint32
	SizeOfImage                 uint32
	SizeOfHeaders               uint32
	CheckSum                    uint32
	Subsystem                   uint16
	DllCharacteristics          uint16
	SizeOfStackReserve          uint32
	SizeOfStackCommit           uint32
	SizeOfHeapReserve           uint32
	SizeOfHeapCommit            uint32
	LoaderFlags                 uint32
	NumberOfRvaAndSizes         uint32
	DataDirectories             [numDataDirs]DataDirectory
}

// Section is one section-table entry together with its raw file data.
type Section struct {
	Name             string // up to 8 bytes, NUL-padded on disk
	VirtualSize      uint32
	VirtualAddress   uint32
	SizeOfRawData    uint32
	PointerToRawData uint32
	Characteristics  uint32

	// Data is the raw on-disk content (len == SizeOfRawData after layout).
	Data []byte
}

// IsCode reports whether the section is marked executable code.
func (s *Section) IsCode() bool { return s.Characteristics&SecCode != 0 }

// IsData reports whether the section holds initialized, writable data.
func (s *Section) IsData() bool {
	return s.Characteristics&SecInitializedData != 0 && s.Characteristics&SecMemWrite != 0
}

// Contains reports whether the given RVA falls inside the section's
// virtual address range.
func (s *Section) Contains(rva uint32) bool {
	return rva >= s.VirtualAddress && rva < s.VirtualAddress+s.VirtualSize
}

// File is a parsed, mutable PE32 image.
type File struct {
	DOSStub    []byte // bytes between the DOS header and the NT signature
	FileHeader FileHeader
	Optional   OptionalHeader32
	Sections   []*Section
	Overlay    []byte // bytes past the last section's raw data

	lfanew uint32 // offset of the NT signature
}

// Errors returned by Parse and the mutators.
var (
	ErrNotPE         = errors.New("pefile: not a PE image")
	ErrTruncated     = errors.New("pefile: truncated image")
	ErrBadAlignment  = errors.New("pefile: bad alignment")
	ErrNoSuchSection = errors.New("pefile: no such section")
	ErrNameTooLong   = errors.New("pefile: section name longer than 8 bytes")
)

// Parse decodes a PE32 image from raw is bytes. The returned File owns
// copies of all data; mutating it never aliases b.
func Parse(b []byte) (*File, error) {
	if len(b) < dosHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if binary.LittleEndian.Uint16(b[0:2]) != dosMagic {
		return nil, fmt.Errorf("%w: missing MZ magic", ErrNotPE)
	}
	lfanew := binary.LittleEndian.Uint32(b[60:64])
	if int(lfanew)+4+fileHeaderSize > len(b) {
		return nil, fmt.Errorf("%w: e_lfanew=%#x beyond file", ErrTruncated, lfanew)
	}
	if binary.LittleEndian.Uint32(b[lfanew:lfanew+4]) != ntMagic {
		return nil, fmt.Errorf("%w: missing PE signature", ErrNotPE)
	}

	f := &File{lfanew: lfanew}
	f.DOSStub = append([]byte(nil), b[dosHeaderSize:lfanew]...)

	off := int(lfanew) + 4
	fh := &f.FileHeader
	fh.Machine = binary.LittleEndian.Uint16(b[off:])
	fh.NumberOfSections = binary.LittleEndian.Uint16(b[off+2:])
	fh.TimeDateStamp = binary.LittleEndian.Uint32(b[off+4:])
	fh.PointerToSymbolTable = binary.LittleEndian.Uint32(b[off+8:])
	fh.NumberOfSymbols = binary.LittleEndian.Uint32(b[off+12:])
	fh.SizeOfOptionalHeader = binary.LittleEndian.Uint16(b[off+16:])
	fh.Characteristics = binary.LittleEndian.Uint16(b[off+18:])
	off += fileHeaderSize

	if fh.SizeOfOptionalHeader < optHeaderSize {
		return nil, fmt.Errorf("%w: optional header %d < %d bytes",
			ErrTruncated, fh.SizeOfOptionalHeader, optHeaderSize)
	}
	if off+int(fh.SizeOfOptionalHeader) > len(b) {
		return nil, fmt.Errorf("%w: optional header beyond file", ErrTruncated)
	}
	if err := parseOptional32(b[off:off+optHeaderSize], &f.Optional); err != nil {
		return nil, err
	}
	off += int(fh.SizeOfOptionalHeader)

	n := int(fh.NumberOfSections)
	if off+n*sectionHeaderSize > len(b) {
		return nil, fmt.Errorf("%w: section table beyond file", ErrTruncated)
	}
	endOfData := 0
	for i := 0; i < n; i++ {
		h := b[off+i*sectionHeaderSize:]
		s := &Section{
			Name:             strings.TrimRight(string(h[0:8]), "\x00"),
			VirtualSize:      binary.LittleEndian.Uint32(h[8:]),
			VirtualAddress:   binary.LittleEndian.Uint32(h[12:]),
			SizeOfRawData:    binary.LittleEndian.Uint32(h[16:]),
			PointerToRawData: binary.LittleEndian.Uint32(h[20:]),
			Characteristics:  binary.LittleEndian.Uint32(h[36:]),
		}
		lo, hi := int(s.PointerToRawData), int(s.PointerToRawData)+int(s.SizeOfRawData)
		if s.SizeOfRawData > 0 {
			if hi > len(b) || lo > hi {
				return nil, fmt.Errorf("%w: section %q raw data [%#x,%#x) beyond file",
					ErrTruncated, s.Name, lo, hi)
			}
			s.Data = append([]byte(nil), b[lo:hi]...)
			if hi > endOfData {
				endOfData = hi
			}
		}
		f.Sections = append(f.Sections, s)
	}
	headerEnd := off + n*sectionHeaderSize
	if endOfData < headerEnd {
		endOfData = headerEnd
	}
	if endOfData < len(b) {
		f.Overlay = append([]byte(nil), b[endOfData:]...)
	}
	return f, nil
}

func parseOptional32(b []byte, o *OptionalHeader32) error {
	o.Magic = binary.LittleEndian.Uint16(b[0:])
	if o.Magic != opt32 {
		return fmt.Errorf("%w: optional magic %#x (want PE32 %#x)", ErrNotPE, o.Magic, opt32)
	}
	o.MajorLinkerVersion = b[2]
	o.MinorLinkerVersion = b[3]
	o.SizeOfCode = binary.LittleEndian.Uint32(b[4:])
	o.SizeOfInitializedData = binary.LittleEndian.Uint32(b[8:])
	o.SizeOfUninitializedData = binary.LittleEndian.Uint32(b[12:])
	o.AddressOfEntryPoint = binary.LittleEndian.Uint32(b[16:])
	o.BaseOfCode = binary.LittleEndian.Uint32(b[20:])
	o.BaseOfData = binary.LittleEndian.Uint32(b[24:])
	o.ImageBase = binary.LittleEndian.Uint32(b[28:])
	o.SectionAlignment = binary.LittleEndian.Uint32(b[32:])
	o.FileAlignment = binary.LittleEndian.Uint32(b[36:])
	o.MajorOperatingSystemVersion = binary.LittleEndian.Uint16(b[40:])
	o.MinorOperatingSystemVersion = binary.LittleEndian.Uint16(b[42:])
	o.MajorImageVersion = binary.LittleEndian.Uint16(b[44:])
	o.MinorImageVersion = binary.LittleEndian.Uint16(b[46:])
	o.MajorSubsystemVersion = binary.LittleEndian.Uint16(b[48:])
	o.MinorSubsystemVersion = binary.LittleEndian.Uint16(b[50:])
	o.Win32VersionValue = binary.LittleEndian.Uint32(b[52:])
	o.SizeOfImage = binary.LittleEndian.Uint32(b[56:])
	o.SizeOfHeaders = binary.LittleEndian.Uint32(b[60:])
	o.CheckSum = binary.LittleEndian.Uint32(b[64:])
	o.Subsystem = binary.LittleEndian.Uint16(b[68:])
	o.DllCharacteristics = binary.LittleEndian.Uint16(b[70:])
	o.SizeOfStackReserve = binary.LittleEndian.Uint32(b[72:])
	o.SizeOfStackCommit = binary.LittleEndian.Uint32(b[76:])
	o.SizeOfHeapReserve = binary.LittleEndian.Uint32(b[80:])
	o.SizeOfHeapCommit = binary.LittleEndian.Uint32(b[84:])
	o.LoaderFlags = binary.LittleEndian.Uint32(b[88:])
	o.NumberOfRvaAndSizes = binary.LittleEndian.Uint32(b[92:])
	for i := 0; i < numDataDirs; i++ {
		o.DataDirectories[i].VirtualAddress = binary.LittleEndian.Uint32(b[96+8*i:])
		o.DataDirectories[i].Size = binary.LittleEndian.Uint32(b[100+8*i:])
	}
	if o.SectionAlignment == 0 || o.FileAlignment == 0 {
		return fmt.Errorf("%w: zero alignment", ErrBadAlignment)
	}
	return nil
}

// SectionByName returns the first section with the given name, or nil.
func (f *File) SectionByName(name string) *Section {
	for _, s := range f.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SectionAt returns the section containing the given RVA, or nil.
func (f *File) SectionAt(rva uint32) *Section {
	for _, s := range f.Sections {
		if s.Contains(rva) {
			return s
		}
	}
	return nil
}

// CodeSections returns all executable sections in table order.
func (f *File) CodeSections() []*Section {
	var out []*Section
	for _, s := range f.Sections {
		if s.IsCode() {
			out = append(out, s)
		}
	}
	return out
}

// DataSections returns all initialized writable data sections in table order.
func (f *File) DataSections() []*Section {
	var out []*Section
	for _, s := range f.Sections {
		if s.IsData() {
			out = append(out, s)
		}
	}
	return out
}

// RVAToOffset converts an RVA to a file offset. The second return value is
// false when the RVA is not backed by raw data in any section.
func (f *File) RVAToOffset(rva uint32) (uint32, bool) {
	s := f.SectionAt(rva)
	if s == nil {
		return 0, false
	}
	delta := rva - s.VirtualAddress
	if delta >= s.SizeOfRawData {
		return 0, false
	}
	return s.PointerToRawData + delta, true
}

// OffsetToRVA converts a file offset to an RVA. The second return value is
// false when the offset does not fall inside any section's raw data.
func (f *File) OffsetToRVA(off uint32) (uint32, bool) {
	for _, s := range f.Sections {
		if off >= s.PointerToRawData && off < s.PointerToRawData+s.SizeOfRawData {
			return s.VirtualAddress + (off - s.PointerToRawData), true
		}
	}
	return 0, false
}

// EntrySection returns the section containing the entry point, or nil.
func (f *File) EntrySection() *Section {
	return f.SectionAt(f.Optional.AddressOfEntryPoint)
}
