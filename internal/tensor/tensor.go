// Package tensor provides the small dense linear-algebra kernels used by the
// neural detectors (internal/nn) and the boosted trees (internal/gbdt).
// It is deliberately minimal: flat float64 slices, row-major matrices, and
// the handful of BLAS-1/2 operations the models need, written as simple
// loops the compiler can bounds-check-eliminate.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec { return append(Vec(nil), v...) }

// Zero sets every element to 0.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element to x.
func (v Vec) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Equal reports exact element-wise equality — the bit-identity check the
// serial-vs-parallel parity tests rest on.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if x != w[i] {
			return false
		}
	}
	return true
}

// Dot returns the inner product of v and w; the slices must match in length.
func Dot(v, w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Add computes v += w element-wise in place. It is the row-accumulation
// kernel of the tiled inference fast path (internal/nn), so it must stay
// allocation free and fold strictly in index order — bit-parity between the
// table and direct forward paths depends on that order.
//
//mpass:zeroalloc
func (v Vec) Add(w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d vs %d", len(v), len(w)))
	}
	for i, x := range w {
		v[i] += x
	}
}

// Axpy computes w += a*v in place.
func Axpy(a float64, v, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(v), len(w)))
	}
	for i, x := range v {
		w[i] += a * x
	}
}

// Scale multiplies v by a in place.
func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Norm2 returns the Euclidean norm.
func (v Vec) Norm2() float64 { return math.Sqrt(Dot(v, v)) }

// ArgMax returns the index of the largest element (-1 for empty vectors).
func (v Vec) ArgMax() int {
	if len(v) == 0 {
		return -1
	}
	bi := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[bi] {
			bi = i
		}
	}
	return bi
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       Vec
}

// NewMat returns a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: NewVec(rows * cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MatVec computes m·v.
func (m *Mat) MatVec(v Vec) Vec {
	out := NewVec(m.Rows)
	m.MatVecInto(v, out)
	return out
}

// MatVecInto computes m·v into out (length Rows), allocating nothing. Each
// out[i] is the same Dot the allocating MatVec produces, so results are
// bit-identical between the two.
//
//mpass:zeroalloc
func (m *Mat) MatVecInto(v, out Vec) {
	if len(v) != m.Cols || len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVecInto %dx%d by %d into %d", m.Rows, m.Cols, len(v), len(out)))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
}

// XavierInit fills the matrix with Uniform(-lim, lim), lim = sqrt(6/(in+out)),
// the standard Glorot initialization for tanh/sigmoid-adjacent layers.
func (m *Mat) XavierInit(rng *rand.Rand) {
	lim := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * lim
	}
}

// HeInit fills the matrix with N(0, sqrt(2/cols)) for ReLU layers.
func (m *Mat) HeInit(rng *rand.Rand) {
	sd := math.Sqrt(2.0 / float64(m.Cols))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sd
	}
}

// Sigmoid returns 1/(1+e^-x) with clamping that avoids overflow.
func Sigmoid(x float64) float64 {
	switch {
	case x > 40:
		return 1
	case x < -40:
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// BCE returns the binary cross-entropy of probability p against label y,
// clamped away from log(0).
func BCE(p, y float64) float64 {
	const eps = 1e-9
	if p < eps {
		p = eps
	} else if p > 1-eps {
		p = 1 - eps
	}
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}
