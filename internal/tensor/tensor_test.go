package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotAndAxpy(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := Dot(v, w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	Axpy(2, v, w)
	want := Vec{6, 9, 12}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot on mismatched lengths did not panic")
		}
	}()
	Dot(Vec{1}, Vec{1, 2})
}

func TestMatVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, Vec{1, 2, 3, 4, 5, 6})
	got := m.MatVec(Vec{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MatVec = %v, want [6 15]", got)
	}
}

func TestMatRowAliasesStorage(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Error("Row does not alias storage")
	}
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 {
		t.Error("Set/At mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMat(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 2)
	if m.At(0, 0) != 1 {
		t.Error("Mat.Clone shares storage")
	}
	v := Vec{1, 2}
	cv := v.Clone()
	cv[0] = 7
	if v[0] != 1 {
		t.Error("Vec.Clone shares storage")
	}
}

func TestArgMax(t *testing.T) {
	if got := (Vec{}).ArgMax(); got != -1 {
		t.Errorf("empty ArgMax = %d", got)
	}
	if got := (Vec{1, 5, 3, 5}).ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want first max index 1", got)
	}
}

func TestSigmoidProperties(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Errorf("Sigmoid(0) = %v", Sigmoid(0))
	}
	if Sigmoid(100) != 1 || Sigmoid(-100) != 0 {
		t.Error("saturation clamps missing")
	}
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := Sigmoid(x)
		return s >= 0 && s <= 1 && math.Abs(s+Sigmoid(-x)-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestBCE(t *testing.T) {
	if got := BCE(0.5, 1); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("BCE(0.5,1) = %v, want ln 2", got)
	}
	if got := BCE(0, 1); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("BCE(0,1) = %v, want finite clamp", got)
	}
	if BCE(0.9, 1) >= BCE(0.1, 1) {
		t.Error("BCE not monotone in confidence")
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(16, 16)
	m.XavierInit(rng)
	lim := math.Sqrt(6.0 / 32)
	for _, v := range m.Data {
		if v < -lim || v > lim {
			t.Fatalf("Xavier value %v outside ±%v", v, lim)
		}
	}
	h := NewMat(16, 16)
	h.HeInit(rng)
	var nonzero int
	for _, v := range h.Data {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("HeInit left matrix zero")
	}
}

func TestZeroAndScaleAndNorm(t *testing.T) {
	v := Vec{3, 4}
	if v.Norm2() != 5 {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	v.Scale(2)
	if v[0] != 6 || v[1] != 8 {
		t.Errorf("Scale = %v", v)
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Errorf("Zero = %v", v)
	}
}

func TestFillAndEqual(t *testing.T) {
	v := NewVec(4)
	v.Fill(2.5)
	for _, x := range v {
		if x != 2.5 {
			t.Fatalf("Fill = %v", v)
		}
	}
	if !v.Equal(Vec{2.5, 2.5, 2.5, 2.5}) {
		t.Error("Equal false on identical vectors")
	}
	if v.Equal(Vec{2.5, 2.5}) {
		t.Error("Equal true across lengths")
	}
	if v.Equal(Vec{2.5, 2.5, 2.5, 2.6}) {
		t.Error("Equal true on differing vectors")
	}
}
