package nn

import (
	"math/rand"
	"testing"
)

// cloneNet builds a second, independently allocated network with the same
// seed, so two training runs share no state.
func cloneNet(t *testing.T, cfg ConvConfig) (*ConvNet, *ConvNet) {
	t.Helper()
	a, err := NewConvNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewConvNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestTrainBatchParallelParity is the determinism guarantee of the parallel
// engine: training with Workers=1 and Workers=8 must produce bit-identical
// losses and weights at every step, on both architectures (direct head and
// hidden layer + NonNeg clamp).
func TestTrainBatchParallelParity(t *testing.T) {
	configs := []ConvConfig{
		tinyConfig(),
		{SeqLen: 128, EmbedDim: 4, Kernel: 16, Stride: 8, Filters: 5, Hidden: 6, NonNeg: true, Seed: 11},
	}
	for _, cfg := range configs {
		serial, par := cloneNet(t, cfg)
		serial.Workers = 1
		par.Workers = 8

		rng := rand.New(rand.NewSource(21))
		xs, ys := markerData(rng, 30)
		optS, optP := NewAdam(0.01), NewAdam(0.01)
		for step := 0; step < 5; step++ {
			ls := serial.TrainBatch(xs, ys, optS)
			lp := par.TrainBatch(xs, ys, optP)
			if ls != lp {
				t.Fatalf("step %d: loss %v (serial) != %v (parallel)", step, ls, lp)
			}
		}
		ps, pp := serial.params(), par.params()
		for i := range ps {
			if !ps[i].Equal(pp[i]) {
				t.Fatalf("parameter tensor %d differs between Workers=1 and Workers=8", i)
			}
		}
	}
}

// TestPredictBatchMatchesPredict checks the batched scoring path against the
// one-sample API for several worker counts.
func TestPredictBatchMatchesPredict(t *testing.T) {
	n, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	raws := make([][]byte, 17)
	for i := range raws {
		raws[i] = make([]byte, 16+rng.Intn(300))
		rng.Read(raws[i])
	}
	want := make([]float64, len(raws))
	for i, r := range raws {
		want[i] = n.Predict(r)
	}
	for _, workers := range []int{0, 1, 4} {
		n.Workers = workers
		got := n.PredictBatch(raws)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sample %d: batch %v != single %v", workers, i, got[i], want[i])
			}
		}
	}
	if out := n.PredictBatch(nil); len(out) != 0 {
		t.Errorf("PredictBatch(nil) returned %d scores", len(out))
	}
}
