package nn

import (
	"math"
	"math/rand"
	"testing"
)

// quantBounds pins the certified absolute score-deviation bound per mode:
// int32 carries the serving certificate (≤ 1e-6, re-proven on the full
// eval corpus by the detect-level gate); int16 is the compact variant with
// a measured, looser bound.
var quantBounds = map[QuantMode]float64{
	QuantInt16: 1e-3,
	QuantInt32: 1e-6,
}

func TestQuantModeParse(t *testing.T) {
	for _, m := range []QuantMode{QuantOff, QuantInt16, QuantInt32} {
		got, err := ParseQuantMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseQuantMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseQuantMode("float128"); err == nil {
		t.Fatal("ParseQuantMode accepted garbage")
	}
}

// TestQuantForwardWithinBound is the package-level half of the error-bound
// gate: for both detector shapes and both fixed-point modes, quantized
// scores must stay within the mode's certified bound of the float64 table
// path — on fresh weights and on weights grown by training.
func TestQuantForwardWithinBound(t *testing.T) {
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(200 + ci)))
		// A few training steps widen the table's dynamic range beyond the
		// Xavier init, making the bound check non-vacuous.
		xs, ys := markerData(rng, 16)
		opt := NewAdam(0.01)
		for e := 0; e < 3; e++ {
			n.TrainBatch(xs, ys, opt)
		}
		for trial := 0; trial < 20; trial++ {
			raw := make([]byte, 1+rng.Intn(2*cfg.SeqLen))
			rng.Read(raw)
			n.SetQuantMode(QuantOff)
			want := n.Predict(raw)
			for mode, bound := range quantBounds {
				n.SetQuantMode(mode)
				got := n.Predict(raw)
				if dev := math.Abs(got - want); dev > bound {
					t.Errorf("cfg %d trial %d mode %v: |%v - %v| = %g exceeds %g",
						ci, trial, mode, got, want, dev, bound)
				}
			}
			n.SetQuantMode(QuantOff)
		}
	}
}

// TestQuantTablesInvalidatedByTraining checks the weight-version guard on
// the fixed-point path: after a training step the quantized tables must be
// rebuilt from the new weights.
func TestQuantTablesInvalidatedByTraining(t *testing.T) {
	n, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetQuantMode(QuantInt32)
	rng := rand.New(rand.NewSource(47))
	xs, ys := markerData(rng, 20)
	probe := xs[0]

	before := n.Predict(probe) // builds quant tables at version 0
	n.TrainBatch(xs, ys, NewAdam(0.01))

	sc := n.getScratch()
	want := n.forward(probe, sc).score
	n.putScratch(sc)
	got := n.Predict(probe)
	if math.Abs(got-want) > quantBounds[QuantInt32] {
		t.Fatalf("post-training quant Predict %v not within bound of direct %v (stale tables?)", got, want)
	}
	if got == before {
		t.Fatalf("quant Predict unchanged (%v) across a training step", got)
	}
}

// TestQuantModeOffRestoresBitExact pins that switching quantization off
// returns to the bit-identical float64 table path, and that mode switches
// are cheap round trips.
func TestQuantModeOffRestoresBitExact(t *testing.T) {
	n, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(48))
	raw := make([]byte, n.Cfg.SeqLen)
	rng.Read(raw)

	sc := n.getScratch()
	want := n.forward(raw, sc).score
	n.putScratch(sc)

	n.SetQuantMode(QuantInt16)
	n.Predict(raw)
	n.SetQuantMode(QuantOff)
	if got := n.Predict(raw); got != want {
		t.Fatalf("Predict after quant round trip %v != direct %v", got, want)
	}
}

// TestQuantGobDecodeRebuilds pins the persistence contract: quantized
// tables never travel through gob, and a decode into a quant-enabled
// receiver serves fresh fixed-point tables derived from the loaded weights.
func TestQuantGobDecodeRebuilds(t *testing.T) {
	src, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(49))
	xs, ys := markerData(rng, 16)
	src.TrainBatch(xs, ys, NewAdam(0.01))

	blob, err := src.GobEncode()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dst.SetQuantMode(QuantInt32)
	dst.Predict(xs[0]) // populate quant tables for the pre-decode weights
	if err := dst.GobDecode(blob); err != nil {
		t.Fatal(err)
	}
	if dst.QuantMode() != QuantInt32 {
		t.Fatalf("decode reset quant mode to %v", dst.QuantMode())
	}
	src.SetQuantMode(QuantInt32)
	for _, raw := range xs {
		if got, want := dst.Predict(raw), src.Predict(raw); got != want {
			t.Fatalf("decoded quant Predict %v != source %v (stale quant tables?)", got, want)
		}
	}
}

// TestZeroAllocPredictQuant extends the allocation-regression gate to the
// fixed-point path in both modes.
func TestZeroAllocPredictQuant(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run via make alloc")
	}
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(210 + ci)))
		raw := make([]byte, cfg.SeqLen)
		rng.Read(raw)
		for _, mode := range []QuantMode{QuantInt16, QuantInt32} {
			n.SetQuantMode(mode)
			n.Predict(raw) // build tables outside the measured region
			if got := testing.AllocsPerRun(50, func() { n.Predict(raw) }); got != 0 {
				t.Errorf("cfg %d mode %v: Predict allocates %.0f per run, want 0", ci, mode, got)
			}
		}
		n.SetQuantMode(QuantOff)
	}
}
