package nn

import (
	"math"

	"mpass/internal/tensor"
)

// This file is the ConvNet inference engine: a lookup-table fast path used
// whenever weights are frozen (Predict, PredictBatch, InputGradient — and
// through them detect's Score/ScoreBatch/Label), plus the pooled scratch
// buffers that make those calls allocation free in steady state.
//
// The gated convolution at window position t computes, per filter f,
//
//	cv[f] = Σ_j dot(ConvW_f[j·D:(j+1)·D], Embed[x[t·S+j]]) + ConvB[f]
//
// (and the gate counterpart). The inner dot depends only on the kernel
// offset j and the byte value b = x[t·S+j], so for frozen weights every one
// of the K·256 possible (offset, byte) responses is precomputed once into
// respTable. A window then costs K row additions of length F instead of a
// K·D gather copy plus two K·D-multiply dots per filter — the EmbedDim
// factor leaves the hot loop entirely.
//
// Both paths fold partial sums in the same order (per-offset partials in j
// order, bias last; see ConvNet.forward), so table and direct scores are
// bit-identical. fastpath_test.go enforces this.
//
// Storage is cache-tiled: conv and gate responses for one (offset, byte)
// pair are fused into a single row, blocked into feature tiles of
// featureTile lanes so the K row additions of a window walk contiguous
// cache lines instead of striding across two parallel arrays. quant.go
// layers an int16/int32 fixed-point variant over the same geometry, and
// stream.go exposes the whole engine as a chunk-at-a-time scorer.

// featureTile is the tile width of the fused table layout: 8 float64 lanes
// = one 64-byte cache line. Within a row, tile i carries the conv lanes for
// filters [i·8, i·8+w) immediately followed by their gate lanes, so the two
// responses a window accumulation needs for a filter always share (at most)
// two adjacent lines — for the repo's F = 8 detectors, exactly one row of
// 128 contiguous bytes per (offset, byte) lookup.
const featureTile = 8

// respTable holds the precomputed per-(kernel-offset, byte) filter
// responses for one weight version, in the fused tiled layout: row
// (j*256+b) starts at lane (j*256+b)*2F, and within the row the tile
// starting at filter f0 (width w = min(featureTile, F-f0)) occupies lanes
// [2·f0, 2·f0+w) for conv and [2·f0+w, 2·f0+2w) for gate.
type respTable struct {
	version uint64
	lanes   []float64
}

// tileWidth returns the width of the feature tile starting at filter f0.
func tileWidth(F, f0 int) int {
	if w := F - f0; w < featureTile {
		return w
	}
	return featureTile
}

// laneOffsets returns the lane indices of filter f's conv and gate entries
// within a row of the fused layout (test and build helper; the hot loop
// works on whole tiles instead).
func laneOffsets(F, f int) (conv, gate int) {
	f0 := (f / featureTile) * featureTile
	w := tileWidth(F, f0)
	conv = 2*f0 + (f - f0)
	return conv, conv + w
}

// MarkWeightsChanged invalidates the inference tables. TrainBatch calls it
// after every optimizer step; callers that mutate weights directly (Adam.Step
// on params(), embedding edits, weight surgery) must call it themselves
// before the next inference, or the fast path will keep serving the old
// weights.
func (n *ConvNet) MarkWeightsChanged() { n.weightVersion++ }

// WeightVersion returns the current weight-mutation counter. It only moves
// when TrainBatch or MarkWeightsChanged run, so equal versions imply the
// inference tables are still valid.
func (n *ConvNet) WeightVersion() uint64 { return n.weightVersion }

// tables returns byte-response tables for the current weights, building them
// on first use and after every weight change. Concurrent frozen-weight
// callers are safe: the double-checked build runs once and is published
// through an atomic pointer.
func (n *ConvNet) tables() *respTable {
	if t := n.tab.Load(); t != nil && t.version == n.weightVersion {
		return t
	}
	n.tabMu.Lock()
	defer n.tabMu.Unlock()
	if t := n.tab.Load(); t != nil && t.version == n.weightVersion {
		return t
	}
	t := n.buildTables()
	n.tab.Store(t)
	return t
}

// buildTables precomputes the per-offset byte responses. Cost is
// K·256·F·D multiplies — for the repo's detector sizes, well under the
// arithmetic of a single forward pass — and the accumulation order of each
// entry matches one offset-blocked partial of the direct path exactly.
func (n *ConvNet) buildTables() *respTable {
	cfg := n.Cfg
	K, d, F := cfg.Kernel, cfg.EmbedDim, cfg.Filters
	t := &respTable{
		version: n.weightVersion,
		lanes:   make([]float64, K*256*2*F),
	}
	for j := 0; j < K; j++ {
		base := j * d
		for b := 0; b < 256; b++ {
			row := n.Embed.Row(b)
			lanes := t.lanes[(j*256+b)*2*F : (j*256+b+1)*2*F]
			for f := 0; f < F; f++ {
				cw, gw := n.ConvW.Row(f), n.GateW.Row(f)
				var pc, pg float64
				for k := 0; k < d; k++ {
					pc += cw[base+k] * row[k]
					pg += gw[base+k] * row[k]
				}
				ci, gi := laneOffsets(F, f)
				lanes[ci] = pc
				lanes[gi] = pg
			}
		}
	}
	return t
}

// forwardTable is the frozen-weight forward pass over precomputed response
// tables. It fills the same backward-ready cache as the direct path and is
// bit-identical to it.
//
// Per window the K row offsets are resolved once into a scratch index
// buffer, then each filter's conv and gate sums accumulate in registers
// over the K rows in j order — exactly the direct path's fold order, so
// tiling and the register rewrite change the memory walk, never the
// arithmetic. The tile loop keeps the two lanes a filter needs on the same
// (or an adjacent) cache line; see featureTile.
//
//mpass:zeroalloc
func (n *ConvNet) forwardTable(raw []byte, tab *respTable, sc *scratch) *cache {
	cfg := n.Cfg
	c := &sc.c
	c.x = n.pad(raw, sc)
	T := cfg.positions()
	F := cfg.Filters
	F2 := 2 * F
	K := cfg.Kernel
	best := sc.best
	best.Fill(math.Inf(-1))
	winC, winG := sc.winC, sc.winG
	lanes := tab.lanes
	idx := sc.qIdx
	x := c.x
	for t := 0; t < T; t++ {
		pos := t * cfg.Stride
		for j := 0; j < K; j++ {
			idx[j] = (j*256 + int(x[pos+j])) * F2
		}
		for f0 := 0; f0 < F; f0 += featureTile {
			w := tileWidth(F, f0)
			tile := 2 * f0
			for i := 0; i < w; i++ {
				ci := tile + i
				gi := ci + w
				var cv, gv float64
				for j := 0; j < K; j++ {
					off := idx[j]
					cv += lanes[off+ci]
					gv += lanes[off+gi]
				}
				winC[f0+i] = cv
				winG[f0+i] = gv
			}
		}
		for f := 0; f < F; f++ {
			cv := winC[f] + n.ConvB[f]
			b := best[f]
			// Exact max-pool pruning: σ(gv) ∈ (0, 1], so h = cv·σ(gv) is at
			// most cv when cv > 0 and at most 0 otherwise. When that ceiling
			// cannot beat the running max, the strict h > b update below is
			// provably a no-op and the sigmoid — the dominant epilogue cost —
			// is skipped. best/argmax/cVal/gVal come out bit-identical.
			if cv <= b && b >= 0 {
				continue
			}
			gv := winG[f] + n.GateB[f]
			h := cv * tensor.Sigmoid(gv)
			if h > b {
				best[f] = h
				c.argmax[f] = t
				c.cVal[f] = cv
				c.gVal[f] = gv
			}
		}
	}
	copy(c.pooled, best)
	n.head(c)
	return c
}

// scratch bundles every buffer one forward (and optionally backward) pass
// needs: the cache of intermediates, the padded-input and gather buffers,
// per-window accumulators for the table path, and the backward delta
// vectors. Instances recycle through ConvNet.scratchPool.
type scratch struct {
	c          cache
	padBuf     []byte
	w          tensor.Vec // Kernel×EmbedDim gather buffer (direct + backward)
	best       tensor.Vec // Filters: running max-pool values
	winC, winG tensor.Vec // Filters: per-window pre-activation accumulators
	dPooled    tensor.Vec // Filters: backward delta
	dHid       tensor.Vec // Hidden: backward delta (nil without hidden layer)

	// Kernel-length row-offset buffer shared by the table forward passes:
	// per window, the K (offset, byte) row starts are resolved once here.
	qIdx []int
	// Per-filter integer prune thresholds for the fixed-point path
	// (quant.go): the largest conv sum that provably cannot beat the
	// running max.
	qTh []int64
}

// getScratch returns a scratch sized for this network, recycled when
// possible. Safe for concurrent use from pool workers.
func (n *ConvNet) getScratch() *scratch {
	cfg := n.Cfg
	if v := n.scratchPool.Get(); v != nil {
		sc := v.(*scratch)
		// A recycled scratch can predate a GobDecode that swapped the
		// architecture; drop it and allocate for the current shape.
		if len(sc.padBuf) == cfg.SeqLen && len(sc.best) == cfg.Filters &&
			len(sc.c.hidden) == cfg.Hidden && len(sc.qIdx) == cfg.Kernel {
			return sc
		}
	}
	F := cfg.Filters
	sc := &scratch{
		padBuf:  make([]byte, cfg.SeqLen),
		w:       tensor.NewVec(cfg.Kernel * cfg.EmbedDim),
		best:    tensor.NewVec(F),
		winC:    tensor.NewVec(F),
		winG:    tensor.NewVec(F),
		dPooled: tensor.NewVec(F),
		qIdx:    make([]int, cfg.Kernel),
		qTh:     make([]int64, F),
		c: cache{
			argmax: make([]int, F),
			cVal:   tensor.NewVec(F),
			gVal:   tensor.NewVec(F),
			pooled: tensor.NewVec(F),
		},
	}
	if cfg.Hidden > 0 {
		sc.c.hidden = tensor.NewVec(cfg.Hidden)
		sc.dHid = tensor.NewVec(cfg.Hidden)
	}
	return sc
}

// putScratch recycles sc. The cached input alias is dropped so the pool
// never pins caller byte slices.
func (n *ConvNet) putScratch(sc *scratch) {
	sc.c.x = nil
	n.scratchPool.Put(sc)
}

// getInputGrad returns a zeroed InputGrad sized for this network, recycled
// from the Release pool when possible.
func (n *ConvNet) getInputGrad() *InputGrad {
	if v := n.igPool.Get(); v != nil {
		ig := v.(*InputGrad)
		if len(ig.Grad) == n.Cfg.SeqLen*n.Cfg.EmbedDim {
			ig.Grad.Zero()
			ig.Loss, ig.Score = 0, 0
			return ig
		}
	}
	return &InputGrad{
		Grad: tensor.NewVec(n.Cfg.SeqLen * n.Cfg.EmbedDim),
		pool: &n.igPool,
	}
}
