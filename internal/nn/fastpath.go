package nn

import (
	"math"

	"mpass/internal/tensor"
)

// This file is the ConvNet inference engine: a lookup-table fast path used
// whenever weights are frozen (Predict, PredictBatch, InputGradient — and
// through them detect's Score/ScoreBatch/Label), plus the pooled scratch
// buffers that make those calls allocation free in steady state.
//
// The gated convolution at window position t computes, per filter f,
//
//	cv[f] = Σ_j dot(ConvW_f[j·D:(j+1)·D], Embed[x[t·S+j]]) + ConvB[f]
//
// (and the gate counterpart). The inner dot depends only on the kernel
// offset j and the byte value b = x[t·S+j], so for frozen weights every one
// of the K·256 possible (offset, byte) responses is precomputed once into
// respTable: P[j][b][f] for the conv weights, and the same for the gate.
// A window then costs K row additions of length F instead of a K·D gather
// copy plus two K·D-multiply dots per filter — the EmbedDim factor leaves
// the hot loop entirely.
//
// Both paths fold partial sums in the same order (per-offset partials in j
// order, bias last; see ConvNet.forward), so table and direct scores are
// bit-identical. fastpath_test.go enforces this.

// respTable holds the precomputed per-(kernel-offset, byte) filter
// responses for one weight version. Entries are indexed [(j*256+b)*F + f].
type respTable struct {
	version uint64
	conv    []float64
	gate    []float64
}

// MarkWeightsChanged invalidates the inference tables. TrainBatch calls it
// after every optimizer step; callers that mutate weights directly (Adam.Step
// on params(), embedding edits, weight surgery) must call it themselves
// before the next inference, or the fast path will keep serving the old
// weights.
func (n *ConvNet) MarkWeightsChanged() { n.weightVersion++ }

// WeightVersion returns the current weight-mutation counter. It only moves
// when TrainBatch or MarkWeightsChanged run, so equal versions imply the
// inference tables are still valid.
func (n *ConvNet) WeightVersion() uint64 { return n.weightVersion }

// tables returns byte-response tables for the current weights, building them
// on first use and after every weight change. Concurrent frozen-weight
// callers are safe: the double-checked build runs once and is published
// through an atomic pointer.
func (n *ConvNet) tables() *respTable {
	if t := n.tab.Load(); t != nil && t.version == n.weightVersion {
		return t
	}
	n.tabMu.Lock()
	defer n.tabMu.Unlock()
	if t := n.tab.Load(); t != nil && t.version == n.weightVersion {
		return t
	}
	t := n.buildTables()
	n.tab.Store(t)
	return t
}

// buildTables precomputes the per-offset byte responses. Cost is
// K·256·F·D multiplies — for the repo's detector sizes, well under the
// arithmetic of a single forward pass — and the accumulation order of each
// entry matches one offset-blocked partial of the direct path exactly.
func (n *ConvNet) buildTables() *respTable {
	cfg := n.Cfg
	K, d, F := cfg.Kernel, cfg.EmbedDim, cfg.Filters
	t := &respTable{
		version: n.weightVersion,
		conv:    make([]float64, K*256*F),
		gate:    make([]float64, K*256*F),
	}
	for j := 0; j < K; j++ {
		base := j * d
		for b := 0; b < 256; b++ {
			row := n.Embed.Row(b)
			off := (j*256 + b) * F
			cOut := t.conv[off : off+F]
			gOut := t.gate[off : off+F]
			for f := 0; f < F; f++ {
				cw, gw := n.ConvW.Row(f), n.GateW.Row(f)
				var pc, pg float64
				for k := 0; k < d; k++ {
					pc += cw[base+k] * row[k]
					pg += gw[base+k] * row[k]
				}
				cOut[f] = pc
				gOut[f] = pg
			}
		}
	}
	return t
}

// forwardTable is the frozen-weight forward pass over precomputed response
// tables. It fills the same backward-ready cache as the direct path and is
// bit-identical to it.
//
//mpass:zeroalloc
func (n *ConvNet) forwardTable(raw []byte, tab *respTable, sc *scratch) *cache {
	cfg := n.Cfg
	c := &sc.c
	c.x = n.pad(raw, sc)
	T := cfg.positions()
	F := cfg.Filters
	K := cfg.Kernel
	best := sc.best
	best.Fill(math.Inf(-1))
	winC, winG := sc.winC, sc.winG
	x := c.x
	for t := 0; t < T; t++ {
		pos := t * cfg.Stride
		winC.Zero()
		winG.Zero()
		for j := 0; j < K; j++ {
			off := (j*256 + int(x[pos+j])) * F
			cRow := tab.conv[off : off+F]
			gRow := tab.gate[off : off+F]
			for f := 0; f < F; f++ {
				winC[f] += cRow[f]
				winG[f] += gRow[f]
			}
		}
		for f := 0; f < F; f++ {
			cv := winC[f] + n.ConvB[f]
			gv := winG[f] + n.GateB[f]
			h := cv * tensor.Sigmoid(gv)
			if h > best[f] {
				best[f] = h
				c.argmax[f] = t
				c.cVal[f] = cv
				c.gVal[f] = gv
			}
		}
	}
	copy(c.pooled, best)
	n.head(c)
	return c
}

// scratch bundles every buffer one forward (and optionally backward) pass
// needs: the cache of intermediates, the padded-input and gather buffers,
// per-window accumulators for the table path, and the backward delta
// vectors. Instances recycle through ConvNet.scratchPool.
type scratch struct {
	c          cache
	padBuf     []byte
	w          tensor.Vec // Kernel×EmbedDim gather buffer (direct + backward)
	best       tensor.Vec // Filters: running max-pool values
	winC, winG tensor.Vec // Filters: per-window pre-activation accumulators
	dPooled    tensor.Vec // Filters: backward delta
	dHid       tensor.Vec // Hidden: backward delta (nil without hidden layer)
}

// getScratch returns a scratch sized for this network, recycled when
// possible. Safe for concurrent use from pool workers.
func (n *ConvNet) getScratch() *scratch {
	cfg := n.Cfg
	if v := n.scratchPool.Get(); v != nil {
		sc := v.(*scratch)
		// A recycled scratch can predate a GobDecode that swapped the
		// architecture; drop it and allocate for the current shape.
		if len(sc.padBuf) == cfg.SeqLen && len(sc.best) == cfg.Filters && len(sc.c.hidden) == cfg.Hidden {
			return sc
		}
	}
	F := cfg.Filters
	sc := &scratch{
		padBuf:  make([]byte, cfg.SeqLen),
		w:       tensor.NewVec(cfg.Kernel * cfg.EmbedDim),
		best:    tensor.NewVec(F),
		winC:    tensor.NewVec(F),
		winG:    tensor.NewVec(F),
		dPooled: tensor.NewVec(F),
		c: cache{
			argmax: make([]int, F),
			cVal:   tensor.NewVec(F),
			gVal:   tensor.NewVec(F),
			pooled: tensor.NewVec(F),
		},
	}
	if cfg.Hidden > 0 {
		sc.c.hidden = tensor.NewVec(cfg.Hidden)
		sc.dHid = tensor.NewVec(cfg.Hidden)
	}
	return sc
}

// putScratch recycles sc. The cached input alias is dropped so the pool
// never pins caller byte slices.
func (n *ConvNet) putScratch(sc *scratch) {
	sc.c.x = nil
	n.scratchPool.Put(sc)
}

// getInputGrad returns a zeroed InputGrad sized for this network, recycled
// from the Release pool when possible.
func (n *ConvNet) getInputGrad() *InputGrad {
	if v := n.igPool.Get(); v != nil {
		ig := v.(*InputGrad)
		if len(ig.Grad) == n.Cfg.SeqLen*n.Cfg.EmbedDim {
			ig.Grad.Zero()
			ig.Loss, ig.Score = 0, 0
			return ig
		}
	}
	return &InputGrad{
		Grad: tensor.NewVec(n.Cfg.SeqLen * n.Cfg.EmbedDim),
		pool: &n.igPool,
	}
}
