// Package nn is a from-scratch micro neural-network framework sized for the
// paper's byte-level detectors: gated 1-D convolutions over byte embeddings
// (the MalConv architecture family) and a small GRU byte language model
// (used by the MalRNN baseline). It provides exactly what the MPass attack
// needs and nothing more: forward scoring, backprop training with Adam, and
// gradients with respect to the embedded input sequence — the quantity
// Eq. 3 of the paper differentiates when optimizing perturbations.
package nn

import (
	"math"

	"mpass/internal/tensor"
)

// Adam implements the Adam optimizer over a fixed list of parameter
// slices. The paper's optimization (§IV-A) uses Adam with learning rate
// 0.01; training uses the conventional 1e-3 default.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t    int
	m, v []tensor.Vec
}

// NewAdam returns an Adam optimizer with standard moment coefficients.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update: params[i] -= lr * mhat/(sqrt(vhat)+eps), using
// grads[i] as the gradient of the loss w.r.t. params[i]. The first call
// fixes the parameter shapes; later calls must pass identical shapes.
func (a *Adam) Step(params, grads []tensor.Vec) {
	if a.m == nil {
		a.m = make([]tensor.Vec, len(params))
		a.v = make([]tensor.Vec, len(params))
		for i, p := range params {
			a.m[i] = tensor.NewVec(len(p))
			a.v[i] = tensor.NewVec(len(p))
		}
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p {
			gj := g[j] + a.WeightDecay*p[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			p[j] -= a.LR * (m[j] / c1) / (math.Sqrt(v[j]/c2) + a.Eps)
		}
	}
}
