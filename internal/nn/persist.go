package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mpass/internal/tensor"
)

// Gob persistence for trained networks (detect.SaveSuite / LoadSuite).
//
// Only the architecture and the trained parameters travel: gradient
// accumulators, scratch pools, inference tables, and the Workers knob are
// runtime state, rebuilt on decode. Decoding ends with MarkWeightsChanged so
// the lookup-table fast path re-derives its byte-response tables from the
// loaded weights instead of serving stale ones.

// convNetState is the serialized form of a ConvNet.
type convNetState struct {
	Cfg   ConvConfig
	Embed tensor.Vec
	ConvW tensor.Vec
	GateW tensor.Vec
	ConvB tensor.Vec
	GateB tensor.Vec
	HidW  tensor.Vec // nil without a hidden layer
	HidB  tensor.Vec
	OutW  tensor.Vec
	OutB  tensor.Vec
}

// GobEncode implements gob.GobEncoder.
func (n *ConvNet) GobEncode() ([]byte, error) {
	st := convNetState{
		Cfg:   n.Cfg,
		Embed: n.Embed.Data,
		ConvW: n.ConvW.Data,
		GateW: n.GateW.Data,
		ConvB: n.ConvB,
		GateB: n.GateB,
		OutW:  n.OutW,
		OutB:  n.OutB,
	}
	if n.HidW != nil {
		st.HidW = n.HidW.Data
		st.HidB = n.HidB
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. The receiver is rebuilt from scratch:
// parameter storage is allocated via NewConvNet (which also validates the
// architecture), decoded weights are copied over it, and the weight-version
// counter is bumped so the next inference rebuilds the fast-path tables.
func (n *ConvNet) GobDecode(data []byte) error {
	var st convNetState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	m, err := NewConvNet(st.Cfg)
	if err != nil {
		return fmt.Errorf("nn: decoded config: %w", err)
	}
	for _, c := range []struct {
		name string
		dst  tensor.Vec
		src  tensor.Vec
	}{
		{"embed", m.Embed.Data, st.Embed},
		{"convw", m.ConvW.Data, st.ConvW},
		{"gatew", m.GateW.Data, st.GateW},
		{"convb", m.ConvB, st.ConvB},
		{"gateb", m.GateB, st.GateB},
		{"outw", m.OutW, st.OutW},
		{"outb", m.OutB, st.OutB},
	} {
		if len(c.src) != len(c.dst) {
			return fmt.Errorf("nn: decoded %s has %d values, config needs %d", c.name, len(c.src), len(c.dst))
		}
		copy(c.dst, c.src)
	}
	if m.HidW != nil {
		if len(st.HidW) != len(m.HidW.Data) || len(st.HidB) != len(m.HidB) {
			return fmt.Errorf("nn: decoded hidden layer sized %d/%d, config needs %d/%d",
				len(st.HidW), len(st.HidB), len(m.HidW.Data), len(m.HidB))
		}
		copy(m.HidW.Data, st.HidW)
		copy(m.HidB, st.HidB)
	}

	// Move the rebuilt state onto the receiver field by field — the struct
	// holds pools and an atomic pointer, so a whole-value copy is off limits.
	n.Cfg = m.Cfg
	n.Embed, n.ConvW, n.GateW = m.Embed, m.ConvW, m.GateW
	n.ConvB, n.GateB = m.ConvB, m.GateB
	n.HidW, n.HidB = m.HidW, m.HidB
	n.OutW, n.OutB = m.OutW, m.OutB
	n.gEmbed, n.gConvW, n.gGateW = m.gEmbed, m.gConvW, m.gGateW
	n.gConvB, n.gGateB = m.gConvB, m.gGateB
	n.gHidW, n.gHidB = m.gHidW, m.gHidB
	n.gOutW, n.gOutB = m.gOutW, m.gOutB
	n.paramList, n.gradList = nil, nil
	// Quantized tables are never persisted; drop any cached image so the
	// fixed-point path re-derives from the loaded weights. The selected
	// QuantMode survives the decode — a live daemon hot-reloading weights
	// keeps serving the format it was configured for.
	n.qtab.Store(nil)
	n.MarkWeightsChanged()
	return nil
}
