package nn

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// trainTiny fits a small net (hidden layer on when hidden is true) for a few
// steps so persisted weights are not just the random init.
func trainTiny(t *testing.T, hidden int) *ConvNet {
	t.Helper()
	net, err := NewConvNet(ConvConfig{
		SeqLen: 256, EmbedDim: 3, Kernel: 8, Stride: 4, Filters: 5,
		Hidden: hidden, Seed: 11,
	})
	if err != nil {
		t.Fatalf("NewConvNet: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	opt := NewAdam(1e-2)
	for step := 0; step < 4; step++ {
		batch := make([][]byte, 6)
		ys := make([]float64, 6)
		for i := range batch {
			batch[i] = make([]byte, 200)
			rng.Read(batch[i])
			ys[i] = float64(i % 2)
		}
		net.TrainBatch(batch, ys, opt)
	}
	return net
}

func TestConvNetGobRoundTrip(t *testing.T) {
	for _, hidden := range []int{0, 4} {
		net := trainTiny(t, hidden)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(net); err != nil {
			t.Fatalf("hidden=%d: encode: %v", hidden, err)
		}
		var back ConvNet
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			t.Fatalf("hidden=%d: decode: %v", hidden, err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 16; i++ {
			raw := make([]byte, 50+rng.Intn(300))
			rng.Read(raw)
			if got, want := back.Predict(raw), net.Predict(raw); got != want {
				t.Fatalf("hidden=%d sample %d: decoded score %v != original %v", hidden, i, got, want)
			}
			gig, wig := back.InputGradient(raw, 0), net.InputGradient(raw, 0)
			if gig.Score != wig.Score || gig.Loss != wig.Loss {
				t.Fatalf("hidden=%d sample %d: decoded gradient pass diverged", hidden, i)
			}
			gig.Release()
			wig.Release()
		}
	}
}

// TestConvNetGobDecodeRebuildsTables drives the decoded net through the
// table fast path and then trains it one more step: both the rebuilt tables
// and the invalidation-on-train contract must survive persistence.
func TestConvNetGobDecodeRebuildsTables(t *testing.T) {
	net := trainTiny(t, 0)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(net); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back ConvNet
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	raw := make([]byte, 180)
	rand.New(rand.NewSource(2)).Read(raw)
	before := back.Predict(raw) // builds the fast-path tables
	v := back.WeightVersion()

	opt := NewAdam(1e-2)
	back.TrainBatch([][]byte{raw}, []float64{1}, opt)
	if back.WeightVersion() == v {
		t.Fatal("TrainBatch after decode did not bump the weight version")
	}
	sc := back.getScratch()
	direct := back.forward(raw, sc).score
	back.putScratch(sc)
	if got := back.Predict(raw); got != direct {
		t.Fatalf("post-train table score %v != direct %v (stale tables after decode)", got, direct)
	}
	if before == direct {
		t.Fatal("training step changed nothing; test lost its signal")
	}
}

func TestConvNetGobDecodeRejectsMismatchedWeights(t *testing.T) {
	net := trainTiny(t, 0)
	st := convNetState{
		Cfg:   net.Cfg,
		Embed: net.Embed.Data[:len(net.Embed.Data)-1], // truncated
		ConvW: net.ConvW.Data, GateW: net.GateW.Data,
		ConvB: net.ConvB, GateB: net.GateB,
		OutW: net.OutW, OutB: net.OutB,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		t.Fatalf("encode state: %v", err)
	}
	var back ConvNet
	if err := back.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decode accepted a truncated embedding table")
	}
}
