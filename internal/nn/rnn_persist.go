package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mpass/internal/tensor"
)

// Gob persistence for the recurrent byte language model, mirroring the
// ConvNet convention (persist.go): architecture plus trained parameters
// travel, gradient accumulators are runtime state rebuilt on decode. This is
// what lets the RNN-backed detector ride the per-engine envelope format of
// internal/engine.

// byteLMState is the serialized form of a ByteLM.
type byteLMState struct {
	EmbedDim, Hidden int
	Embed            tensor.Vec
	Wx               tensor.Vec
	Wh               tensor.Vec
	Bh               tensor.Vec
	Wo               tensor.Vec
	Bo               tensor.Vec
}

// GobEncode implements gob.GobEncoder.
func (lm *ByteLM) GobEncode() ([]byte, error) {
	st := byteLMState{
		EmbedDim: lm.EmbedDim,
		Hidden:   lm.Hidden,
		Embed:    lm.Embed.Data,
		Wx:       lm.Wx.Data,
		Wh:       lm.Wh.Data,
		Bh:       lm.Bh,
		Wo:       lm.Wo.Data,
		Bo:       lm.Bo,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. The receiver is rebuilt from scratch:
// parameter storage (and fresh gradient accumulators) come from NewByteLM,
// then the decoded weights are copied over it.
func (lm *ByteLM) GobDecode(data []byte) error {
	var st byteLMState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if st.EmbedDim <= 0 || st.Hidden <= 0 {
		return fmt.Errorf("nn: decoded ByteLM has invalid shape %dx%d", st.EmbedDim, st.Hidden)
	}
	m := NewByteLM(st.EmbedDim, st.Hidden, 0)
	for _, c := range []struct {
		name string
		dst  tensor.Vec
		src  tensor.Vec
	}{
		{"embed", m.Embed.Data, st.Embed},
		{"wx", m.Wx.Data, st.Wx},
		{"wh", m.Wh.Data, st.Wh},
		{"bh", m.Bh, st.Bh},
		{"wo", m.Wo.Data, st.Wo},
		{"bo", m.Bo, st.Bo},
	} {
		if len(c.src) != len(c.dst) {
			return fmt.Errorf("nn: decoded ByteLM %s has %d values, shape needs %d", c.name, len(c.src), len(c.dst))
		}
		copy(c.dst, c.src)
	}
	*lm = *m
	return nil
}
