package nn

import (
	"math/rand"
	"testing"
)

// The PredictTable* benchmark family is the CI speedup gate's input: the
// same serving-size network scored through each table format, in one `go
// test -bench` run so machine noise cancels. cmd/benchjson's -gate flag
// enforces PredictTableQuant32 ≥ 1.3× PredictTableFloat (make quant-gate).
//
// The shape is the MalConv/NonNeg serving configuration (detect.SeqLen =
// 16384); the literal is repeated here because internal/nn cannot import
// internal/detect.
func servingNet(b *testing.B) (*ConvNet, []byte) {
	b.Helper()
	n, err := NewConvNet(ConvConfig{
		SeqLen: 16384, EmbedDim: 4, Kernel: 8, Stride: 8, Filters: 8, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]byte, 16384)
	rand.New(rand.NewSource(2)).Read(raw)
	return n, raw
}

func benchPredict(b *testing.B, mode QuantMode) {
	n, raw := servingNet(b)
	n.SetQuantMode(mode)
	n.Predict(raw) // build tables outside the timed region
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Predict(raw)
	}
}

func BenchmarkPredictTableFloat(b *testing.B)   { benchPredict(b, QuantOff) }
func BenchmarkPredictTableQuant16(b *testing.B) { benchPredict(b, QuantInt16) }
func BenchmarkPredictTableQuant32(b *testing.B) { benchPredict(b, QuantInt32) }

func BenchmarkConvStream(b *testing.B) {
	n, raw := servingNet(b)
	n.NewStream().Finish()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := n.NewStream()
		feedChunks(s, raw, 4096)
		s.Finish()
	}
}
