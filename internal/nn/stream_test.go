package nn

import (
	"math/rand"
	"testing"
)

// feedChunks pushes raw through the stream in chunks of at most size bytes.
func feedChunks(s *ConvStream, raw []byte, size int) {
	for len(raw) > 0 {
		n := size
		if n > len(raw) {
			n = len(raw)
		}
		s.Feed(raw[:n])
		raw = raw[n:]
	}
}

// TestConvStreamMatchesPredict is the streaming equivalence gate at the
// network level: for every chunking, input length class (short/padded,
// exact, truncated), and table mode, Feed/Finish must reproduce Predict
// bit for bit.
func TestConvStreamMatchesPredict(t *testing.T) {
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(300 + ci)))
		lengths := []int{1, cfg.SeqLen / 3, cfg.SeqLen, 2*cfg.SeqLen + 5}
		chunks := []int{1, 7, 64, 1 << 20}
		for _, mode := range []QuantMode{QuantOff, QuantInt32, QuantInt16} {
			n.SetQuantMode(mode)
			for _, L := range lengths {
				raw := make([]byte, L)
				rng.Read(raw)
				want := n.Predict(raw)
				for _, sz := range chunks {
					s := n.NewStream()
					feedChunks(s, raw, sz)
					if got := s.Finish(); got != want {
						t.Fatalf("cfg %d mode %v len %d chunk %d: stream %v != Predict %v",
							ci, mode, L, sz, got, want)
					}
				}
			}
		}
		n.SetQuantMode(QuantOff)
	}
}

// TestZeroAllocConvStream gates the streaming unit of work: a NewStream +
// Feed + Finish cycle must not allocate in steady state, in float and
// fixed-point modes alike.
func TestZeroAllocConvStream(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run via make alloc")
	}
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(310 + ci)))
		raw := make([]byte, 2*cfg.SeqLen)
		rng.Read(raw)
		for _, mode := range []QuantMode{QuantOff, QuantInt32} {
			n.SetQuantMode(mode)
			n.NewStream().Finish() // warm pools and tables
			got := testing.AllocsPerRun(50, func() {
				s := n.NewStream()
				feedChunks(s, raw, 1024)
				s.Finish()
			})
			if got != 0 {
				t.Errorf("cfg %d mode %v: stream cycle allocates %.0f per run, want 0", ci, mode, got)
			}
		}
		n.SetQuantMode(QuantOff)
	}
}
