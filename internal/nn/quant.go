package nn

import (
	"fmt"
	"math"

	"mpass/internal/tensor"
)

// This file is the fixed-point variant of the inference fast path: the
// fused tiled respTable re-expressed in int16 or int32 lanes with a
// per-table scale, so window accumulation becomes integer adds over half-
// or quarter-width rows and the float multiply only happens once per
// window at dequantization.
//
// Quantization scheme. Conv and gate lanes get independent symmetric
// scales chosen from the observed dynamic range of the float table:
//
//	scale = maxAbs / qmax,  q = clamp(round(v/scale), ±qmax)
//
// with qmax = 2^15-1 (int16) or 2^31-1 (int32). A window sum of K
// quantized entries then carries at most K·scale/2 absolute pre-activation
// error, and integer accumulation is exact: K·qmax fits int32 for int16
// lanes and int64 for int32 lanes, so no overflow and no rounding beyond
// the initial per-entry half-ulp. For the repo's detector shapes the
// int32 bound works out to ~1e-8 pre-activation — the ≤ 1e-6 score bound
// the detect-level gate certifies on the full eval corpus. Int16 halves
// the table footprint again (one 64-byte line now holds conv AND gate for
// 16 filters) at a ~1e-4 pre-activation bound; it keeps label parity in
// practice but is not covered by the 1e-6 certificate, so int32 is the
// serving default when quantization is on.
//
// Quantized tables are runtime-only artifacts: they are rebuilt lazily
// from the float table whenever the weight version or mode changes, and
// are never persisted (persist.go drops them on decode), so a loaded
// suite can never serve stale fixed-point state.

// QuantMode selects the numeric format of the inference tables served by
// Predict, PredictBatch, and streams.
type QuantMode int32

const (
	// QuantOff serves the float64 table path (bit-identical to the direct
	// forward pass).
	QuantOff QuantMode = iota
	// QuantInt16 serves int16 lanes with int32 accumulation — smallest
	// footprint, loosest (measured, uncertified) error bound.
	QuantInt16
	// QuantInt32 serves int32 lanes with int64 accumulation — the
	// certified ≤ 1e-6 absolute score deviation mode.
	QuantInt32
)

// String returns the flag spelling of m.
func (m QuantMode) String() string {
	switch m {
	case QuantOff:
		return "off"
	case QuantInt16:
		return "int16"
	case QuantInt32:
		return "int32"
	}
	return fmt.Sprintf("QuantMode(%d)", int32(m))
}

// ParseQuantMode parses the -quant flag spellings.
func ParseQuantMode(s string) (QuantMode, error) {
	switch s {
	case "off", "":
		return QuantOff, nil
	case "int16":
		return QuantInt16, nil
	case "int32":
		return QuantInt32, nil
	}
	return QuantOff, fmt.Errorf("nn: unknown quant mode %q (want off|int16|int32)", s)
}

// quantTable is the fixed-point image of one respTable: identical fused
// tile geometry (see fastpath.go), integer lanes, and the two dequant
// scales. Exactly one of lanes16/lanes32 is non-nil, per mode.
type quantTable struct {
	version uint64
	mode    QuantMode
	lanes16 []int16
	lanes32 []int32

	convScale, gateScale float64
}

// SetQuantMode selects the table format served by subsequent inference
// calls. The fixed-point tables are (re)built lazily on first use; passing
// QuantOff restores the bit-exact float64 path. Safe to call concurrently
// with frozen-weight scoring.
func (n *ConvNet) SetQuantMode(m QuantMode) { n.quantMode.Store(int32(m)) }

// QuantMode returns the currently selected table format.
func (n *ConvNet) QuantMode() QuantMode { return QuantMode(n.quantMode.Load()) }

// quantTables returns the fixed-point tables for the current weights and
// mode, or nil when quantization is off. Same double-checked lazy build
// as tables(), under its own mutex (the build itself calls tables()).
func (n *ConvNet) quantTables() *quantTable {
	mode := QuantMode(n.quantMode.Load())
	if mode == QuantOff {
		return nil
	}
	if qt := n.qtab.Load(); qt != nil && qt.version == n.weightVersion && qt.mode == mode {
		return qt
	}
	n.qtabMu.Lock()
	defer n.qtabMu.Unlock()
	if qt := n.qtab.Load(); qt != nil && qt.version == n.weightVersion && qt.mode == mode {
		return qt
	}
	qt := n.buildQuantTable(mode)
	n.qtab.Store(qt)
	return qt
}

// quantScale returns the symmetric scale mapping [-maxAbs, maxAbs] onto
// [-qmax, qmax]. An all-zero table gets scale 1 so dequantization stays
// well-defined.
func quantScale(maxAbs, qmax float64) float64 {
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / qmax
}

// quantLane rounds v to the nearest step of scale, clamped to ±qmax.
func quantLane(v, scale, qmax float64) int64 {
	q := math.Round(v / scale)
	if q > qmax {
		q = qmax
	} else if q < -qmax {
		q = -qmax
	}
	return int64(q)
}

// buildQuantTable quantizes the current float table. Cost is one linear
// pass for the range scan and one for the rounding — far below the float
// table build itself, and amortized the same way (once per weight version).
func (n *ConvNet) buildQuantTable(mode QuantMode) *quantTable {
	tab := n.tables()
	F := n.Cfg.Filters
	F2 := 2 * F
	rows := len(tab.lanes) / F2

	var maxC, maxG float64
	for r := 0; r < rows; r++ {
		lanes := tab.lanes[r*F2 : (r+1)*F2]
		for f := 0; f < F; f++ {
			ci, gi := laneOffsets(F, f)
			if a := math.Abs(lanes[ci]); a > maxC {
				maxC = a
			}
			if a := math.Abs(lanes[gi]); a > maxG {
				maxG = a
			}
		}
	}

	var qmax float64
	switch mode {
	case QuantInt16:
		qmax = math.MaxInt16
	case QuantInt32:
		qmax = math.MaxInt32
	default:
		panic(fmt.Sprintf("nn: buildQuantTable with mode %v", mode))
	}
	qt := &quantTable{
		version:   tab.version,
		mode:      mode,
		convScale: quantScale(maxC, qmax),
		gateScale: quantScale(maxG, qmax),
	}
	if mode == QuantInt16 {
		qt.lanes16 = make([]int16, len(tab.lanes))
	} else {
		qt.lanes32 = make([]int32, len(tab.lanes))
	}
	for r := 0; r < rows; r++ {
		base := r * F2
		for f := 0; f < F; f++ {
			ci, gi := laneOffsets(F, f)
			qc := quantLane(tab.lanes[base+ci], qt.convScale, qmax)
			qg := quantLane(tab.lanes[base+gi], qt.gateScale, qmax)
			if mode == QuantInt16 {
				qt.lanes16[base+ci] = int16(qc)
				qt.lanes16[base+gi] = int16(qg)
			} else {
				qt.lanes32[base+ci] = int32(qc)
				qt.lanes32[base+gi] = int32(qg)
			}
		}
	}
	return qt
}

// forwardTableQuant is the fixed-point forward pass. It mirrors
// forwardTable's structure — per-window row-offset resolution, register
// accumulation over the K rows — but the accumulators are integers (int32
// for int16 lanes, int64 for int32 lanes; both exact, no overflow for any
// K the config validator admits), and max-pool pruning happens in the
// integer domain: a per-filter threshold (quantThresh) lets pruned lanes
// skip dequantization, the bias add, the sigmoid, AND the entire gate-lane
// sum. Pruning is conservative by construction, so the pooled result is
// identical to the unpruned fixed-point forward; the only deviation from
// the float path is the bounded table rounding.
//
//mpass:zeroalloc
func (n *ConvNet) forwardTableQuant(raw []byte, qt *quantTable, sc *scratch) *cache {
	cfg := n.Cfg
	c := &sc.c
	c.x = n.pad(raw, sc)
	T := cfg.positions()
	F := cfg.Filters
	F2 := 2 * F
	K := cfg.Kernel
	best := sc.best
	best.Fill(math.Inf(-1))
	th := sc.qTh
	for i := range th {
		th[i] = math.MinInt64
	}
	idx := sc.qIdx
	x := c.x
	int16Mode := qt.mode == QuantInt16
	for t := 0; t < T; t++ {
		pos := t * cfg.Stride
		for j := 0; j < K; j++ {
			idx[j] = (j*256 + int(x[pos+j])) * F2
		}
		if int16Mode {
			n.quantWindow16(qt, sc, t)
		} else {
			n.quantWindow32(qt, sc, t)
		}
	}
	copy(c.pooled, best)
	n.head(c)
	return c
}

// quantThresh returns the largest integer conv sum that provably cannot
// beat the running max b: any cv with cv ≤ thresh has cv·scale + bias ≤ b
// (the extra -1 step of slack dominates every float rounding involved, so
// the prune never skips a true update). While b < 0 no integer ceiling is
// sound — a negative activation can still win — so pruning stays disabled.
func quantThresh(b, bias, scale float64) int64 {
	if b < 0 {
		return math.MinInt64
	}
	x := math.Floor((b - bias) / scale)
	if x < -4.6e18 {
		return math.MinInt64
	}
	if x > 4.6e18 {
		return math.MaxInt64
	}
	return int64(x) - 1
}

// quantPoolUpdate runs the exact float epilogue for one candidate window
// lane and refreshes the filter's integer prune threshold on update.
//
//mpass:zeroalloc
func (n *ConvNet) quantPoolUpdate(sc *scratch, t, f int, cvf, gvf, cs float64) {
	h := cvf * tensor.Sigmoid(gvf)
	if h > sc.best[f] {
		sc.best[f] = h
		sc.c.argmax[f] = t
		sc.c.cVal[f] = cvf
		sc.c.gVal[f] = gvf
		sc.qTh[f] = quantThresh(h, n.ConvB[f], cs)
	}
}

// Unlike the float path, integer window sums are exact under every fold
// order, so the window kernels below are free to unroll the kernel loop —
// the serving detectors all use Kernel = 8, and the unrolled form keeps
// the eight row offsets in registers and drops the per-lane loop overhead
// that otherwise dominates this cache-resident workload.

// quantWindow16 scores one window position against the int16 tables.
//
//mpass:zeroalloc
func (n *ConvNet) quantWindow16(qt *quantTable, sc *scratch, t int) {
	lanes := qt.lanes16
	idx := sc.qIdx
	th := sc.qTh
	F := n.Cfg.Filters
	cs, gs := qt.convScale, qt.gateScale
	if len(idx) == 8 {
		o0, o1, o2, o3 := idx[0], idx[1], idx[2], idx[3]
		o4, o5, o6, o7 := idx[4], idx[5], idx[6], idx[7]
		for f0 := 0; f0 < F; f0 += featureTile {
			w := tileWidth(F, f0)
			tile := 2 * f0
			for i := 0; i < w; i++ {
				ci := tile + i
				cv := int32(lanes[o0+ci]) + int32(lanes[o1+ci]) + int32(lanes[o2+ci]) + int32(lanes[o3+ci]) +
					int32(lanes[o4+ci]) + int32(lanes[o5+ci]) + int32(lanes[o6+ci]) + int32(lanes[o7+ci])
				f := f0 + i
				if int64(cv) <= th[f] {
					continue
				}
				gi := ci + w
				gv := int32(lanes[o0+gi]) + int32(lanes[o1+gi]) + int32(lanes[o2+gi]) + int32(lanes[o3+gi]) +
					int32(lanes[o4+gi]) + int32(lanes[o5+gi]) + int32(lanes[o6+gi]) + int32(lanes[o7+gi])
				n.quantPoolUpdate(sc, t, f, float64(cv)*cs+n.ConvB[f], float64(gv)*gs+n.GateB[f], cs)
			}
		}
		return
	}
	for f0 := 0; f0 < F; f0 += featureTile {
		w := tileWidth(F, f0)
		tile := 2 * f0
		for i := 0; i < w; i++ {
			ci := tile + i
			var cv int32
			for _, off := range idx {
				cv += int32(lanes[off+ci])
			}
			f := f0 + i
			if int64(cv) <= th[f] {
				continue
			}
			gi := ci + w
			var gv int32
			for _, off := range idx {
				gv += int32(lanes[off+gi])
			}
			n.quantPoolUpdate(sc, t, f, float64(cv)*cs+n.ConvB[f], float64(gv)*gs+n.GateB[f], cs)
		}
	}
}

// quantWindow32 is quantWindow16 for int32 lanes with int64 accumulation.
//
//mpass:zeroalloc
func (n *ConvNet) quantWindow32(qt *quantTable, sc *scratch, t int) {
	lanes := qt.lanes32
	idx := sc.qIdx
	th := sc.qTh
	F := n.Cfg.Filters
	cs, gs := qt.convScale, qt.gateScale
	if len(idx) == 8 {
		o0, o1, o2, o3 := idx[0], idx[1], idx[2], idx[3]
		o4, o5, o6, o7 := idx[4], idx[5], idx[6], idx[7]
		for f0 := 0; f0 < F; f0 += featureTile {
			w := tileWidth(F, f0)
			tile := 2 * f0
			for i := 0; i < w; i++ {
				ci := tile + i
				cv := int64(lanes[o0+ci]) + int64(lanes[o1+ci]) + int64(lanes[o2+ci]) + int64(lanes[o3+ci]) +
					int64(lanes[o4+ci]) + int64(lanes[o5+ci]) + int64(lanes[o6+ci]) + int64(lanes[o7+ci])
				f := f0 + i
				if cv <= th[f] {
					continue
				}
				gi := ci + w
				gv := int64(lanes[o0+gi]) + int64(lanes[o1+gi]) + int64(lanes[o2+gi]) + int64(lanes[o3+gi]) +
					int64(lanes[o4+gi]) + int64(lanes[o5+gi]) + int64(lanes[o6+gi]) + int64(lanes[o7+gi])
				n.quantPoolUpdate(sc, t, f, float64(cv)*cs+n.ConvB[f], float64(gv)*gs+n.GateB[f], cs)
			}
		}
		return
	}
	for f0 := 0; f0 < F; f0 += featureTile {
		w := tileWidth(F, f0)
		tile := 2 * f0
		for i := 0; i < w; i++ {
			ci := tile + i
			var cv int64
			for _, off := range idx {
				cv += int64(lanes[off+ci])
			}
			f := f0 + i
			if cv <= th[f] {
				continue
			}
			gi := ci + w
			var gv int64
			for _, off := range idx {
				gv += int64(lanes[off+gi])
			}
			n.quantPoolUpdate(sc, t, f, float64(cv)*cs+n.ConvB[f], float64(gv)*gs+n.GateB[f], cs)
		}
	}
}
