package nn

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"mpass/internal/parallel"
	"mpass/internal/tensor"
)

// ConvConfig parameterizes a gated byte-convolution classifier.
//
// The detectors instantiated from this one architecture:
//
//   - MalConv (Raff et al.): one gated conv block, direct dense head.
//   - NonNeg (Fleshman et al.): same, with the head weights constrained
//     non-negative after every optimizer step.
//   - MalGCG stand-in (Raff et al. 2021): wider receptive field plus a
//     hidden layer, approximating the deeper constant-memory model.
type ConvConfig struct {
	SeqLen   int  // input length in bytes (truncate/zero-pad)
	EmbedDim int  // byte embedding dimensionality
	Kernel   int  // convolution window, in bytes
	Stride   int  // convolution stride, in bytes
	Filters  int  // number of gated filters
	Hidden   int  // hidden dense units; 0 = logistic head directly on pool
	NonNeg   bool // clamp head weights >= 0 after each step
	Seed     int64
}

// Validate reports configuration errors early.
func (c ConvConfig) Validate() error {
	switch {
	case c.SeqLen <= 0 || c.EmbedDim <= 0 || c.Filters <= 0:
		return fmt.Errorf("nn: non-positive dimension in %+v", c)
	case c.Kernel <= 0 || c.Stride <= 0:
		return fmt.Errorf("nn: non-positive kernel/stride in %+v", c)
	case c.Kernel > c.SeqLen:
		return fmt.Errorf("nn: kernel %d exceeds sequence %d", c.Kernel, c.SeqLen)
	}
	return nil
}

// positions returns the number of convolution windows.
func (c ConvConfig) positions() int { return (c.SeqLen-c.Kernel)/c.Stride + 1 }

// ConvNet is a gated 1-D convolutional byte classifier with max-over-time
// pooling — the MalConv architecture.
type ConvNet struct {
	Cfg ConvConfig

	// Workers bounds the data parallelism of TrainBatch and PredictBatch
	// (<= 0 selects GOMAXPROCS). Results are bit-identical for every value:
	// the forward passes fan out, but losses and gradients are always
	// accumulated in sample order.
	Workers int

	Embed        *tensor.Mat // 256 × D byte embeddings
	ConvW, GateW *tensor.Mat // F × K·D
	ConvB, GateB tensor.Vec  // F
	HidW         *tensor.Mat // H × F (nil when Hidden == 0)
	HidB         tensor.Vec  // H
	OutW         tensor.Vec  // H (or F when no hidden layer)
	OutB         tensor.Vec  // 1

	// gradient accumulators, parallel to the parameters above
	gEmbed, gConvW, gGateW *tensor.Mat
	gConvB, gGateB         tensor.Vec
	gHidW                  *tensor.Mat
	gHidB, gOutW, gOutB    tensor.Vec

	// Inference fast path (fastpath.go). weightVersion counts weight
	// mutations; tab caches the byte-response tables built at a specific
	// version, so any training step transparently invalidates them.
	weightVersion uint64
	tab           atomic.Pointer[respTable]
	tabMu         sync.Mutex

	// Fixed-point variant (quant.go): quantMode selects the served table
	// format, qtab caches the quantized image of the float table for one
	// (version, mode) pair. Never persisted — rebuilt lazily after any
	// weight change, mode switch, or gob decode.
	quantMode atomic.Int32
	qtab      atomic.Pointer[quantTable]
	qtabMu    sync.Mutex

	// Reusable per-call buffers: scratchPool holds forward/backward scratch
	// (one per in-flight forward), igPool recycles InputGrad results after
	// Release, streamPool recycles ConvStream shells (stream.go). All three
	// make steady-state Predict, InputGradient, and stream scoring
	// allocation free.
	scratchPool sync.Pool
	igPool      sync.Pool
	streamPool  sync.Pool

	// paramList/gradList are the fixed param/grad slice sets, built once so
	// params()/grads() don't allocate on the zeroGrads hot path.
	paramList, gradList []tensor.Vec
}

// NewConvNet builds and randomly initializes the network.
func NewConvNet(cfg ConvConfig) (*ConvNet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	kd := cfg.Kernel * cfg.EmbedDim
	n := &ConvNet{
		Cfg:    cfg,
		Embed:  tensor.NewMat(256, cfg.EmbedDim),
		ConvW:  tensor.NewMat(cfg.Filters, kd),
		GateW:  tensor.NewMat(cfg.Filters, kd),
		ConvB:  tensor.NewVec(cfg.Filters),
		GateB:  tensor.NewVec(cfg.Filters),
		OutB:   tensor.NewVec(1),
		gEmbed: tensor.NewMat(256, cfg.EmbedDim),
		gConvW: tensor.NewMat(cfg.Filters, kd),
		gGateW: tensor.NewMat(cfg.Filters, kd),
		gConvB: tensor.NewVec(cfg.Filters),
		gGateB: tensor.NewVec(cfg.Filters),
		gOutB:  tensor.NewVec(1),
	}
	n.Embed.XavierInit(rng)
	n.ConvW.XavierInit(rng)
	n.GateW.XavierInit(rng)
	if cfg.Hidden > 0 {
		n.HidW = tensor.NewMat(cfg.Hidden, cfg.Filters)
		n.HidW.HeInit(rng)
		n.HidB = tensor.NewVec(cfg.Hidden)
		n.OutW = tensor.NewVec(cfg.Hidden)
		n.gHidW = tensor.NewMat(cfg.Hidden, cfg.Filters)
		n.gHidB = tensor.NewVec(cfg.Hidden)
	} else {
		n.OutW = tensor.NewVec(cfg.Filters)
	}
	lim := math.Sqrt(6.0 / float64(len(n.OutW)+1))
	for i := range n.OutW {
		n.OutW[i] = (rng.Float64()*2 - 1) * lim
	}
	n.gOutW = tensor.NewVec(len(n.OutW))
	return n, nil
}

// params and grads expose the trainable state in a fixed order for Adam.
// The slice sets are built once (the underlying storage never moves) so the
// accessors stay off every hot path's allocation profile.
func (n *ConvNet) params() []tensor.Vec {
	if n.paramList == nil {
		n.paramList = []tensor.Vec{n.Embed.Data, n.ConvW.Data, n.GateW.Data, n.ConvB, n.GateB, n.OutW, n.OutB}
		if n.HidW != nil {
			n.paramList = append(n.paramList, n.HidW.Data, n.HidB)
		}
	}
	return n.paramList
}

func (n *ConvNet) grads() []tensor.Vec {
	if n.gradList == nil {
		n.gradList = []tensor.Vec{n.gEmbed.Data, n.gConvW.Data, n.gGateW.Data, n.gConvB, n.gGateB, n.gOutW, n.gOutB}
		if n.HidW != nil {
			n.gradList = append(n.gradList, n.gHidW.Data, n.gHidB)
		}
	}
	return n.gradList
}

func (n *ConvNet) zeroGrads() {
	for _, g := range n.grads() {
		g.Zero()
	}
}

// pad truncates or zero-pads raw bytes to SeqLen. The zero byte doubles as
// the padding symbol, as in MalConv. Short inputs are padded into the
// scratch buffer, so no per-call allocation happens either way.
func (n *ConvNet) pad(b []byte, sc *scratch) []byte {
	L := n.Cfg.SeqLen
	if len(b) >= L {
		return b[:L]
	}
	out := sc.padBuf
	copy(out, b)
	for i := len(b); i < L; i++ {
		out[i] = 0
	}
	return out
}

// cache holds the forward intermediates needed for one backward pass.
type cache struct {
	x      []byte     // padded input
	argmax []int      // per filter: window index of the max activation
	cVal   tensor.Vec // conv pre-activation at argmax
	gVal   tensor.Vec // gate pre-activation at argmax
	pooled tensor.Vec
	hidden tensor.Vec // post-ReLU (nil without hidden layer)
	logit  float64
	score  float64
}

// gather writes the embedded window at byte offset pos into w.
func (n *ConvNet) gather(x []byte, pos int, w tensor.Vec) {
	d := n.Cfg.EmbedDim
	for j := 0; j < n.Cfg.Kernel; j++ {
		row := n.Embed.Row(int(x[pos+j]))
		copy(w[j*d:(j+1)*d], row)
	}
}

// forward runs the full network through the direct (weight-reading) path,
// filling the scratch-owned cache. It is the path training uses, since
// weights move every step.
//
// The convolution dot products accumulate in offset-blocked order — one
// partial sum per kernel offset j over the EmbedDim lanes, folded in j
// order, bias last — exactly the order the lookup-table path adds its
// precomputed per-offset responses. The two paths are therefore
// bit-identical, which keeps the repo-wide parity guarantee intact no
// matter which path a call site takes.
func (n *ConvNet) forward(raw []byte, sc *scratch) *cache {
	cfg := n.Cfg
	c := &sc.c
	c.x = n.pad(raw, sc)
	T := cfg.positions()
	F := cfg.Filters
	K, d := cfg.Kernel, cfg.EmbedDim
	best := sc.best
	best.Fill(math.Inf(-1))
	w := sc.w
	for t := 0; t < T; t++ {
		n.gather(c.x, t*cfg.Stride, w)
		for f := 0; f < F; f++ {
			cw, gw := n.ConvW.Row(f), n.GateW.Row(f)
			var cv, gv float64
			for j := 0; j < K; j++ {
				var pc, pg float64
				for k := j * d; k < (j+1)*d; k++ {
					pc += cw[k] * w[k]
					pg += gw[k] * w[k]
				}
				cv += pc
				gv += pg
			}
			cv += n.ConvB[f]
			gv += n.GateB[f]
			h := cv * tensor.Sigmoid(gv)
			if h > best[f] {
				best[f] = h
				c.argmax[f] = t
				c.cVal[f] = cv
				c.gVal[f] = gv
			}
		}
	}
	copy(c.pooled, best)
	n.head(c)
	return c
}

// head applies the dense layers on top of the pooled activations — shared by
// the direct and table forward paths.
func (n *ConvNet) head(c *cache) {
	if n.HidW != nil {
		n.HidW.MatVecInto(c.pooled, c.hidden)
		for i := range c.hidden {
			c.hidden[i] += n.HidB[i]
			if c.hidden[i] < 0 {
				c.hidden[i] = 0
			}
		}
		c.logit = tensor.Dot(n.OutW, c.hidden) + n.OutB[0]
	} else {
		c.logit = tensor.Dot(n.OutW, c.pooled) + n.OutB[0]
	}
	c.score = tensor.Sigmoid(c.logit)
}

// Predict returns the malware probability for raw bytes, through the
// lookup-table fast path — float64 tables by default, the fixed-point
// variant when a QuantMode is set. Steady state allocates nothing either
// way.
//
//mpass:zeroalloc
func (n *ConvNet) Predict(raw []byte) float64 {
	sc := n.getScratch()
	var score float64
	if qt := n.quantTables(); qt != nil {
		score = n.forwardTableQuant(raw, qt, sc).score
	} else {
		score = n.forwardTable(raw, n.tables(), sc).score
	}
	n.putScratch(sc)
	return score
}

// PredictBatch scores every sample, fanning the (read-only) table-path
// forward passes across the Workers pool. Scores are returned in input order
// and are identical to calling Predict per sample.
func (n *ConvNet) PredictBatch(raws [][]byte) []float64 {
	scores := make([]float64, len(raws))
	if len(raws) == 0 {
		return scores
	}
	if qt := n.quantTables(); qt != nil {
		parallel.ForEach(n.Workers, len(raws), func(i int) {
			sc := n.getScratch()
			scores[i] = n.forwardTableQuant(raws[i], qt, sc).score
			n.putScratch(sc)
		})
		return scores
	}
	tab := n.tables()
	parallel.ForEach(n.Workers, len(raws), func(i int) {
		sc := n.getScratch()
		scores[i] = n.forwardTable(raws[i], tab, sc).score
		n.putScratch(sc)
	})
	return scores
}

// backward accumulates parameter gradients for one example with label y.
// When inGrad is non-nil (length SeqLen*EmbedDim) it also accumulates the
// gradient of the loss with respect to the embedded input. sc provides the
// reusable gather and delta buffers; it may be the scratch that produced c
// or any other scratch of this network.
func (n *ConvNet) backward(c *cache, y float64, inGrad tensor.Vec, sc *scratch) {
	cfg := n.Cfg
	delta := c.score - y // dLoss/dlogit for BCE + sigmoid

	dPooled := sc.dPooled
	dPooled.Zero()
	if n.HidW != nil {
		n.gOutB[0] += delta
		tensor.Axpy(delta, c.hidden, n.gOutW)
		dHid := sc.dHid
		for i := range dHid {
			if c.hidden[i] > 0 {
				dHid[i] = delta * n.OutW[i]
			} else {
				dHid[i] = 0
			}
		}
		for i := 0; i < cfg.Hidden; i++ {
			if dHid[i] == 0 {
				continue
			}
			tensor.Axpy(dHid[i], c.pooled, n.gHidW.Row(i))
			n.gHidB[i] += dHid[i]
			tensor.Axpy(dHid[i], n.HidW.Row(i), dPooled)
		}
	} else {
		n.gOutB[0] += delta
		tensor.Axpy(delta, c.pooled, n.gOutW)
		tensor.Axpy(delta, n.OutW, dPooled)
	}

	w := sc.w
	d := cfg.EmbedDim
	for f := 0; f < cfg.Filters; f++ {
		if dPooled[f] == 0 {
			continue
		}
		t := c.argmax[f]
		pos := t * cfg.Stride
		n.gather(c.x, pos, w)
		sg := tensor.Sigmoid(c.gVal[f])
		dc := dPooled[f] * sg
		dg := dPooled[f] * c.cVal[f] * sg * (1 - sg)
		tensor.Axpy(dc, w, n.gConvW.Row(f))
		tensor.Axpy(dg, w, n.gGateW.Row(f))
		n.gConvB[f] += dc
		n.gGateB[f] += dg
		// Gradient w.r.t. the embedded window: dc*ConvW + dg*GateW, routed
		// both into the embedding table (training) and, when requested,
		// into the dense input-gradient buffer (attack).
		cw, gw := n.ConvW.Row(f), n.GateW.Row(f)
		for j := 0; j < cfg.Kernel; j++ {
			b := int(c.x[pos+j])
			erow := n.gEmbed.Row(b)
			for k := 0; k < d; k++ {
				g := dc*cw[j*d+k] + dg*gw[j*d+k]
				erow[k] += g
				if inGrad != nil {
					inGrad[(pos+j)*d+k] += g
				}
			}
		}
	}
}

// TrainBatch performs one optimizer step on a minibatch and returns the
// mean BCE loss. Labels are 1 for malware, 0 for benign.
//
// The batch is data-parallel: forward passes — the overwhelming share of
// the arithmetic, since backward only revisits each filter's argmax window
// — run concurrently on the Workers pool, while the loss and gradient
// accumulation replay the cached forwards in sample order. Losses and
// updated weights are therefore bit-identical for every worker count.
func (n *ConvNet) TrainBatch(batch [][]byte, labels []float64, opt *Adam) float64 {
	if len(batch) != len(labels) {
		panic("nn: batch/label length mismatch")
	}
	scratches := make([]*scratch, len(batch))
	parallel.ForEach(n.Workers, len(batch), func(i int) {
		sc := n.getScratch()
		n.forward(batch[i], sc)
		scratches[i] = sc
	})
	n.zeroGrads()
	var loss float64
	bw := n.getScratch()
	for i, sc := range scratches {
		loss += tensor.BCE(sc.c.score, labels[i])
		n.backward(&sc.c, labels[i], nil, bw)
		n.putScratch(sc)
	}
	n.putScratch(bw)
	inv := 1 / float64(len(batch))
	for _, g := range n.grads() {
		g.Scale(inv)
	}
	opt.Step(n.params(), n.grads())
	if n.Cfg.NonNeg {
		n.clampNonNeg()
	}
	n.MarkWeightsChanged()
	return loss * inv
}

// clampNonNeg enforces the NonNeg-network constraint on the classification
// head: appended content can then only raise the malware score, never wash
// it out (Fleshman et al.).
func (n *ConvNet) clampNonNeg() {
	for i, v := range n.OutW {
		if v < 0 {
			n.OutW[i] = 0
		}
	}
	if n.HidW != nil {
		for i, v := range n.HidW.Data {
			if v < 0 {
				n.HidW.Data[i] = 0
			}
		}
	}
}

// InputGrad holds the gradient of the loss with respect to the embedded
// input sequence — the continuous object the paper's Eq. 3 optimizes.
type InputGrad struct {
	Grad  tensor.Vec // SeqLen × EmbedDim, row-major by byte position
	Loss  float64
	Score float64

	pool *sync.Pool // recycle target set by the producing network
}

// Release returns the InputGrad's buffers to the producing network for
// reuse. After Release the receiver (including Grad) must not be read. It is
// optional — unreleased results are simply collected — but hot loops that
// release keep steady-state InputGradient allocation free.
func (ig *InputGrad) Release() {
	if ig.pool != nil {
		ig.pool.Put(ig)
	}
}

// InputGradient computes dBCE(f(x), target)/d embed(x). target is the class
// the attacker steers toward: 0 (benign) for evasion.
//
// The forward pass rides the lookup-table fast path, and the returned
// InputGrad comes from a recycle pool (see Release); a loop that releases
// each result allocates nothing in steady state.
//
//mpass:zeroalloc
func (n *ConvNet) InputGradient(raw []byte, target float64) *InputGrad {
	sc := n.getScratch()
	c := n.forwardTable(raw, n.tables(), sc)
	ig := n.getInputGrad()
	ig.Loss = tensor.BCE(c.score, target)
	ig.Score = c.score
	// backward also accumulates into parameter grad buffers; zero them
	// first and discard afterwards so training state is unaffected.
	n.zeroGrads()
	n.backward(c, target, ig.Grad, sc)
	n.zeroGrads()
	n.putScratch(sc)
	return ig
}

// EmbedRow returns byte b's embedding vector (aliasing internal storage;
// callers must not modify it).
func (n *ConvNet) EmbedRow(b byte) tensor.Vec { return n.Embed.Row(int(b)) }

// EmbedMatrix returns the full 256×EmbedDim byte-embedding table, aliasing
// internal storage. Callers must treat it as read-only; mutating it without
// MarkWeightsChanged leaves the inference tables stale.
func (n *ConvNet) EmbedMatrix() *tensor.Mat { return n.Embed }

// SeqLen returns the model's input window in bytes.
func (n *ConvNet) SeqLen() int { return n.Cfg.SeqLen }

// EmbedDim returns the embedding dimensionality.
func (n *ConvNet) EmbedDim() int { return n.Cfg.EmbedDim }
