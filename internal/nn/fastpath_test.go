package nn

import (
	"math/rand"
	"testing"
)

// fastPathConfigs covers both detector shapes: the direct-head MalConv
// layout and the hidden-layer MalGCG layout (with a stride narrower than
// the kernel, so windows overlap).
func fastPathConfigs() []ConvConfig {
	return []ConvConfig{
		tinyConfig(),
		{SeqLen: 128, EmbedDim: 4, Kernel: 16, Stride: 8, Filters: 5, Hidden: 6, Seed: 11},
	}
}

// TestTableForwardMatchesDirect is the fast-path parity guarantee: the
// lookup-table forward must agree bit-for-bit with the direct weight-reading
// forward on every cache field backward consumes, for random inputs of
// every length class (short/padded, exact, truncated).
func TestTableForwardMatchesDirect(t *testing.T) {
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(40 + ci)))
		for trial := 0; trial < 20; trial++ {
			raw := make([]byte, 1+rng.Intn(2*cfg.SeqLen))
			rng.Read(raw)

			scD, scT := n.getScratch(), n.getScratch()
			d := n.forward(raw, scD)
			tb := n.forwardTable(raw, n.tables(), scT)

			if d.score != tb.score || d.logit != tb.logit {
				t.Fatalf("cfg %d trial %d: direct score %v / logit %v != table %v / %v",
					ci, trial, d.score, d.logit, tb.score, tb.logit)
			}
			if !d.pooled.Equal(tb.pooled) || !d.cVal.Equal(tb.cVal) || !d.gVal.Equal(tb.gVal) {
				t.Fatalf("cfg %d trial %d: pooled/cVal/gVal differ between paths", ci, trial)
			}
			for f := range d.argmax {
				if d.argmax[f] != tb.argmax[f] {
					t.Fatalf("cfg %d trial %d: argmax[%d] %d != %d", ci, trial, f, d.argmax[f], tb.argmax[f])
				}
			}
			n.putScratch(scD)
			n.putScratch(scT)
		}
	}
}

// TestTablesInvalidatedByTraining checks the weight-version guard: after a
// training step the fast path must serve the new weights, not the cached
// tables.
func TestTablesInvalidatedByTraining(t *testing.T) {
	n, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	xs, ys := markerData(rng, 20)
	probe := xs[0]

	before := n.Predict(probe) // builds tables at version 0
	opt := NewAdam(0.01)
	n.TrainBatch(xs, ys, opt)

	sc := n.getScratch()
	want := n.forward(probe, sc).score
	n.putScratch(sc)
	if got := n.Predict(probe); got != want {
		t.Fatalf("post-training Predict %v != direct forward %v (stale tables?)", got, want)
	}
	if got := n.Predict(probe); got == before {
		t.Fatalf("Predict unchanged (%v) across a training step", got)
	}
}

// TestMarkWeightsChanged pins the contract for direct weight mutation: the
// fast path serves stale scores until MarkWeightsChanged, and correct ones
// after.
func TestMarkWeightsChanged(t *testing.T) {
	n, err := NewConvNet(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte("weight-surgery probe input bytes")
	before := n.Predict(raw)

	n.Embed.Set(int(raw[0]), 0, 5.0) // drastic edit touching raw's first byte
	if got := n.Predict(raw); got != before {
		t.Fatalf("tables rebuilt without MarkWeightsChanged: %v != %v", got, before)
	}
	n.MarkWeightsChanged()
	sc := n.getScratch()
	want := n.forward(raw, sc).score
	n.putScratch(sc)
	if got := n.Predict(raw); got != want {
		t.Fatalf("post-invalidation Predict %v != direct %v", got, want)
	}
	if want == before {
		t.Fatal("probe edit did not move the score; test is vacuous")
	}
}

// TestInputGradientTablePathMatchesDirect checks that the gradient computed
// off a table-path forward equals one computed off a direct forward.
func TestInputGradientTablePathMatchesDirect(t *testing.T) {
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(60 + ci)))
		raw := make([]byte, cfg.SeqLen)
		rng.Read(raw)

		ig := n.InputGradient(raw, 0) // table path

		// Direct-path reference: forward + backward without tables.
		sc := n.getScratch()
		c := n.forward(raw, sc)
		ref := n.getInputGrad()
		n.zeroGrads()
		n.backward(c, 0, ref.Grad, sc)
		n.zeroGrads()
		n.putScratch(sc)

		if !ig.Grad.Equal(ref.Grad) {
			t.Fatalf("cfg %d: input gradients differ between table and direct paths", ci)
		}
		if ig.Score != c.score {
			t.Fatalf("cfg %d: score %v != %v", ci, ig.Score, c.score)
		}
		ig.Release()
		ref.Release()
	}
}

// TestZeroAllocPredict is the allocation-regression gate for the scoring hot
// path: steady-state Predict must not allocate, for short (padded) and long
// (truncated) inputs alike.
func TestZeroAllocPredict(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run via make alloc")
	}
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(80 + ci)))
		short := make([]byte, cfg.SeqLen/2)
		long := make([]byte, 2*cfg.SeqLen)
		rng.Read(short)
		rng.Read(long)
		n.Predict(short) // build tables outside the measured region
		for name, raw := range map[string][]byte{"short": short, "long": long} {
			if got := testing.AllocsPerRun(50, func() { n.Predict(raw) }); got != 0 {
				t.Errorf("cfg %d: Predict(%s) allocates %.0f per run, want 0", ci, name, got)
			}
		}
	}
}

// TestZeroAllocInputGradient gates the attack's unit of work: an
// InputGradient + Release cycle must not allocate in steady state.
func TestZeroAllocInputGradient(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run via make alloc")
	}
	for ci, cfg := range fastPathConfigs() {
		n, err := NewConvNet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(90 + ci)))
		raw := make([]byte, cfg.SeqLen)
		rng.Read(raw)
		n.InputGradient(raw, 0).Release() // warm pools and tables
		if got := testing.AllocsPerRun(50, func() { n.InputGradient(raw, 0).Release() }); got != 0 {
			t.Errorf("cfg %d: InputGradient allocates %.0f per run, want 0", ci, got)
		}
	}
}
