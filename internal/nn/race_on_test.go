//go:build race

package nn

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation allocates and would fail the
// AllocsPerRun gates. The zero-alloc tests skip themselves under race;
// `make alloc` (wired into `make ci`) runs them without it.
const raceEnabled = true
