package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mpass/internal/tensor"
)

// ByteLM is a recurrent byte-level language model. It is the generative
// engine behind the MalRNN baseline (Ebrahimi et al.): trained on benign
// program bytes, it samples "benign-looking" payloads that the attack
// appends to malware. A single tanh recurrent layer is enough to capture
// the local byte statistics (instruction encodings, ASCII runs, padding)
// of the synthetic corpus.
type ByteLM struct {
	EmbedDim, Hidden int

	Embed *tensor.Mat // 256 × E
	Wx    *tensor.Mat // H × E
	Wh    *tensor.Mat // H × H
	Bh    tensor.Vec  // H
	Wo    *tensor.Mat // 256 × H
	Bo    tensor.Vec  // 256

	gEmbed, gWx, gWh, gWo *tensor.Mat
	gBh, gBo              tensor.Vec
}

// NewByteLM builds a randomly initialized language model.
func NewByteLM(embedDim, hidden int, seed int64) *ByteLM {
	rng := rand.New(rand.NewSource(seed))
	lm := &ByteLM{
		EmbedDim: embedDim,
		Hidden:   hidden,
		Embed:    tensor.NewMat(256, embedDim),
		Wx:       tensor.NewMat(hidden, embedDim),
		Wh:       tensor.NewMat(hidden, hidden),
		Bh:       tensor.NewVec(hidden),
		Wo:       tensor.NewMat(256, hidden),
		Bo:       tensor.NewVec(256),
		gEmbed:   tensor.NewMat(256, embedDim),
		gWx:      tensor.NewMat(hidden, embedDim),
		gWh:      tensor.NewMat(hidden, hidden),
		gBh:      tensor.NewVec(hidden),
		gWo:      tensor.NewMat(256, hidden),
		gBo:      tensor.NewVec(256),
	}
	lm.Embed.XavierInit(rng)
	lm.Wx.XavierInit(rng)
	lm.Wh.XavierInit(rng)
	lm.Wo.XavierInit(rng)
	return lm
}

func (lm *ByteLM) params() []tensor.Vec {
	return []tensor.Vec{lm.Embed.Data, lm.Wx.Data, lm.Wh.Data, lm.Bh, lm.Wo.Data, lm.Bo}
}

func (lm *ByteLM) grads() []tensor.Vec {
	return []tensor.Vec{lm.gEmbed.Data, lm.gWx.Data, lm.gWh.Data, lm.gBh, lm.gWo.Data, lm.gBo}
}

// step advances the hidden state by one byte and returns the new state.
func (lm *ByteLM) step(h tensor.Vec, b byte) tensor.Vec {
	x := lm.Embed.Row(int(b))
	nh := tensor.NewVec(lm.Hidden)
	for i := 0; i < lm.Hidden; i++ {
		nh[i] = math.Tanh(tensor.Dot(lm.Wx.Row(i), x) + tensor.Dot(lm.Wh.Row(i), h) + lm.Bh[i])
	}
	return nh
}

// logits returns the next-byte distribution parameters for hidden state h.
func (lm *ByteLM) logits(h tensor.Vec) tensor.Vec {
	out := lm.Wo.MatVec(h)
	tensor.Axpy(1, lm.Bo, out)
	return out
}

func softmax(logits tensor.Vec) tensor.Vec {
	maxv := logits[0]
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	out := tensor.NewVec(len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	out.Scale(1 / sum)
	return out
}

// TrainChunk runs truncated BPTT over one byte chunk (predicting chunk[t+1]
// from chunk[..t]) and applies one Adam step. It returns the mean
// cross-entropy over the chunk's predictions.
func (lm *ByteLM) TrainChunk(chunk []byte, opt *Adam) (float64, error) {
	T := len(chunk) - 1
	if T < 1 {
		return 0, fmt.Errorf("nn: chunk of %d bytes is too short to train on", len(chunk))
	}
	for _, g := range lm.grads() {
		g.Zero()
	}

	// Forward, caching states and probabilities.
	hs := make([]tensor.Vec, T+1)
	hs[0] = tensor.NewVec(lm.Hidden)
	probs := make([]tensor.Vec, T)
	var loss float64
	for t := 0; t < T; t++ {
		hs[t+1] = lm.step(hs[t], chunk[t])
		p := softmax(lm.logits(hs[t+1]))
		probs[t] = p
		loss -= math.Log(math.Max(p[chunk[t+1]], 1e-12))
	}

	// Backward through time.
	dhNext := tensor.NewVec(lm.Hidden)
	for t := T - 1; t >= 0; t-- {
		// Output layer: dlogit = p - onehot(target).
		dlogit := probs[t].Clone()
		dlogit[chunk[t+1]] -= 1
		dh := dhNext.Clone()
		for k := 0; k < 256; k++ {
			if dlogit[k] == 0 {
				continue
			}
			tensor.Axpy(dlogit[k], hs[t+1], lm.gWo.Row(k))
			lm.gBo[k] += dlogit[k]
			tensor.Axpy(dlogit[k], lm.Wo.Row(k), dh)
		}
		// Through tanh.
		draw := tensor.NewVec(lm.Hidden)
		for i := 0; i < lm.Hidden; i++ {
			draw[i] = dh[i] * (1 - hs[t+1][i]*hs[t+1][i])
		}
		x := lm.Embed.Row(int(chunk[t]))
		dhNext.Zero()
		dx := tensor.NewVec(lm.EmbedDim)
		for i := 0; i < lm.Hidden; i++ {
			if draw[i] == 0 {
				continue
			}
			tensor.Axpy(draw[i], x, lm.gWx.Row(i))
			tensor.Axpy(draw[i], hs[t], lm.gWh.Row(i))
			lm.gBh[i] += draw[i]
			tensor.Axpy(draw[i], lm.Wx.Row(i), dx)
			tensor.Axpy(draw[i], lm.Wh.Row(i), dhNext)
		}
		tensor.Axpy(1, dx, lm.gEmbed.Row(int(chunk[t])))
	}

	inv := 1 / float64(T)
	for _, g := range lm.grads() {
		g.Scale(inv)
	}
	opt.Step(lm.params(), lm.grads())
	return loss * inv, nil
}

// StepState advances a hidden state by one byte and returns the new state —
// the exported streaming-evaluation hook (internal/engine's incremental
// perplexity scorer). Bit-identical to the step Perplexity takes.
func (lm *ByteLM) StepState(h tensor.Vec, b byte) tensor.Vec { return lm.step(h, b) }

// NextProb returns the model probability of b being the next byte given
// hidden state h, exactly as Perplexity computes it.
func (lm *ByteLM) NextProb(h tensor.Vec, b byte) float64 { return softmax(lm.logits(h))[b] }

// Perplexity evaluates the model on a byte sequence without training.
func (lm *ByteLM) Perplexity(seq []byte) float64 {
	T := len(seq) - 1
	if T < 1 {
		return math.Inf(1)
	}
	h := tensor.NewVec(lm.Hidden)
	var nll float64
	for t := 0; t < T; t++ {
		h = lm.step(h, seq[t])
		p := softmax(lm.logits(h))
		nll -= math.Log(math.Max(p[seq[t+1]], 1e-12))
	}
	return math.Exp(nll / float64(T))
}

// Generate samples n bytes after priming on prime, using the given
// temperature (1 = model distribution; lower = greedier).
func (lm *ByteLM) Generate(prime []byte, n int, temperature float64, rng *rand.Rand) []byte {
	if temperature <= 0 {
		temperature = 1
	}
	h := tensor.NewVec(lm.Hidden)
	if len(prime) == 0 {
		prime = []byte{0}
	}
	for _, b := range prime {
		h = lm.step(h, b)
	}
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		lg := lm.logits(h)
		lg.Scale(1 / temperature)
		p := softmax(lg)
		r := rng.Float64()
		var acc float64
		var pick byte
		for k := 0; k < 256; k++ {
			acc += p[k]
			if r <= acc {
				pick = byte(k)
				break
			}
		}
		out = append(out, pick)
		h = lm.step(h, pick)
	}
	return out
}
