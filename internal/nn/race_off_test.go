//go:build !race

package nn

// raceEnabled is false in regular test builds; see race_on_test.go.
const raceEnabled = false
