package nn

import (
	"math"
	"math/rand"
	"testing"

	"mpass/internal/tensor"
)

func tinyConfig() ConvConfig {
	return ConvConfig{
		SeqLen: 128, EmbedDim: 4, Kernel: 8, Stride: 8, Filters: 6, Seed: 1,
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []ConvConfig{
		{},
		{SeqLen: 10, EmbedDim: 2, Kernel: 0, Stride: 1, Filters: 1},
		{SeqLen: 10, EmbedDim: 2, Kernel: 16, Stride: 1, Filters: 1},
		{SeqLen: 10, EmbedDim: 2, Kernel: 2, Stride: 0, Filters: 1},
	}
	for i, cfg := range bad {
		if _, err := NewConvNet(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewConvNet(tinyConfig()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPredictInUnitInterval(t *testing.T) {
	n, _ := NewConvNet(tinyConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		b := make([]byte, rng.Intn(300))
		rng.Read(b)
		p := n.Predict(b)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("Predict = %v", p)
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := NewConvNet(tinyConfig())
	b, _ := NewConvNet(tinyConfig())
	in := []byte("some input bytes for the model....")
	if a.Predict(in) != b.Predict(in) {
		t.Error("same seed gives different models")
	}
	cfg := tinyConfig()
	cfg.Seed = 99
	c, _ := NewConvNet(cfg)
	if a.Predict(in) == c.Predict(in) {
		t.Error("different seeds give identical models")
	}
}

// synthetic two-class byte data: class 1 contains the marker pattern at an
// aligned offset, class 0 does not.
func markerData(rng *rand.Rand, n int) ([][]byte, []float64) {
	marker := []byte{0x1D, 0, 0, 0, 0x84, 0x03, 0, 0}
	xs := make([][]byte, n)
	ys := make([]float64, n)
	for i := range xs {
		b := make([]byte, 128)
		for j := range b {
			b[j] = byte(rng.Intn(64))
		}
		if i%2 == 0 {
			at := 8 * rng.Intn(10)
			copy(b[at:], marker)
			ys[i] = 1
		}
		xs[i] = b
	}
	return xs, ys
}

func TestTrainingLearnsMarker(t *testing.T) {
	n, _ := NewConvNet(tinyConfig())
	rng := rand.New(rand.NewSource(3))
	xs, ys := markerData(rng, 60)
	opt := NewAdam(0.01)
	var last float64
	for epoch := 0; epoch < 30; epoch++ {
		last = n.TrainBatch(xs, ys, opt)
	}
	if last > 0.2 {
		t.Fatalf("training loss stuck at %v", last)
	}
	// Held-out check.
	txs, tys := markerData(rand.New(rand.NewSource(17)), 30)
	correct := 0
	for i, x := range txs {
		p := n.Predict(x)
		if (p > 0.5) == (tys[i] > 0.5) {
			correct++
		}
	}
	if correct < 27 {
		t.Errorf("held-out accuracy %d/30", correct)
	}
}

func TestNonNegConstraint(t *testing.T) {
	cfg := tinyConfig()
	cfg.NonNeg = true
	cfg.Hidden = 5
	n, _ := NewConvNet(cfg)
	rng := rand.New(rand.NewSource(4))
	xs, ys := markerData(rng, 40)
	opt := NewAdam(0.01)
	for epoch := 0; epoch < 10; epoch++ {
		n.TrainBatch(xs, ys, opt)
	}
	for _, v := range n.OutW {
		if v < 0 {
			t.Fatalf("OutW has negative weight %v under NonNeg", v)
		}
	}
	for _, v := range n.HidW.Data {
		if v < 0 {
			t.Fatalf("HidW has negative weight %v under NonNeg", v)
		}
	}
}

func TestHiddenLayerVariantTrains(t *testing.T) {
	cfg := tinyConfig()
	cfg.Hidden = 8
	cfg.Kernel = 16
	cfg.Stride = 16
	n, _ := NewConvNet(cfg)
	rng := rand.New(rand.NewSource(5))
	xs, ys := markerData(rng, 60)
	opt := NewAdam(0.01)
	var last float64
	for epoch := 0; epoch < 40; epoch++ {
		last = n.TrainBatch(xs, ys, opt)
	}
	if last > 0.25 {
		t.Errorf("hidden-layer variant loss stuck at %v", last)
	}
}

// TestInputGradientNumeric verifies the analytic embedding-space gradient
// against central differences — the correctness anchor for the whole
// optimization attack (Eq. 3).
func TestInputGradientNumeric(t *testing.T) {
	cfg := ConvConfig{SeqLen: 32, EmbedDim: 3, Kernel: 4, Stride: 4, Filters: 4, Seed: 7}
	n, _ := NewConvNet(cfg)
	rng := rand.New(rand.NewSource(8))
	x := make([]byte, 32)
	rng.Read(x)

	ig := n.InputGradient(x, 0)

	// Numeric: perturb one embedding-table entry used by a specific byte
	// position and compare to the analytic input gradient at that slot.
	// Because forward embeds x through the table, nudging Embed[x[pos]][k]
	// shifts every position holding that byte; to isolate one slot, pick a
	// byte value occurring exactly once.
	count := map[byte]int{}
	for _, b := range x {
		count[b]++
	}
	var pos int = -1
	for i, b := range x {
		if count[b] == 1 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Skip("no unique byte in random input")
	}
	bVal := int(x[pos])
	const h = 1e-5
	// Direct weight edits bypass TrainBatch, so the inference tables must be
	// invalidated by hand after every Set.
	for k := 0; k < cfg.EmbedDim; k++ {
		orig := n.Embed.At(bVal, k)
		n.Embed.Set(bVal, k, orig+h)
		n.MarkWeightsChanged()
		lp := tensor.BCE(n.Predict(x), 0)
		n.Embed.Set(bVal, k, orig-h)
		n.MarkWeightsChanged()
		lm := tensor.BCE(n.Predict(x), 0)
		n.Embed.Set(bVal, k, orig)
		n.MarkWeightsChanged()
		num := (lp - lm) / (2 * h)
		ana := ig.Grad[pos*cfg.EmbedDim+k]
		if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("grad[%d,%d]: numeric %v vs analytic %v", pos, k, num, ana)
		}
	}
}

func TestInputGradientDoesNotPerturbTraining(t *testing.T) {
	n, _ := NewConvNet(tinyConfig())
	x := make([]byte, 64)
	before := n.Predict(x)
	n.InputGradient(x, 0)
	if n.Predict(x) != before {
		t.Error("InputGradient mutated model parameters")
	}
	// And gradient buffers are left zeroed for the next TrainBatch.
	for _, g := range n.grads() {
		for _, v := range g {
			if v != 0 {
				t.Fatal("InputGradient left dirty gradient buffers")
			}
		}
	}
}

func TestPadTruncates(t *testing.T) {
	n, _ := NewConvNet(tinyConfig())
	long := make([]byte, 1000)
	for i := range long {
		long[i] = byte(i)
	}
	sc := n.getScratch()
	defer n.putScratch(sc)
	if got := len(n.pad(long, sc)); got != 128 {
		t.Errorf("pad kept %d bytes, want 128", got)
	}
	if got := len(n.pad([]byte{1}, sc)); got != 128 {
		t.Errorf("pad gave %d bytes, want 128", got)
	}
}

func TestAccessors(t *testing.T) {
	n, _ := NewConvNet(tinyConfig())
	if n.SeqLen() != 128 || n.EmbedDim() != 4 {
		t.Error("accessor mismatch")
	}
	if len(n.EmbedRow(7)) != 4 {
		t.Error("EmbedRow length mismatch")
	}
}
