package nn

// ConvStream scores one sample fed as a sequence of chunks, in O(SeqLen)
// memory regardless of sample size.
//
// The MalConv-family models truncate (or zero-pad) every input to
// Cfg.SeqLen bytes before the convolution, so a streaming pass needs no
// window-carry machinery at all: Feed copies bytes into the pooled padded-
// input scratch until it is full and discards the rest, and Finish
// zero-pads the tail and runs the normal table forward — float64 or
// fixed-point per the network's QuantMode. Scores are therefore exactly
// Predict(concat(chunks)), bit for bit, under every chunking. stream_test.go
// pins that equivalence.
//
// A ConvStream is single-use: after Finish it recycles itself (and its
// scratch) through the network's pools, so steady-state streaming allocates
// nothing. It must not be shared across goroutines.
type ConvStream struct {
	n    *ConvNet
	sc   *scratch
	fill int
}

// NewStream starts a streaming score. The returned stream must be finished
// (exactly once) to release its scratch.
func (n *ConvNet) NewStream() *ConvStream {
	var s *ConvStream
	if v := n.streamPool.Get(); v != nil {
		s = v.(*ConvStream)
	} else {
		s = &ConvStream{}
	}
	s.n = n
	s.sc = n.getScratch()
	s.fill = 0
	return s
}

// Feed appends one chunk of the sample. Bytes beyond SeqLen are consumed
// and ignored, mirroring Predict's truncation.
//
//mpass:zeroalloc
func (s *ConvStream) Feed(p []byte) {
	buf := s.sc.padBuf
	if s.fill >= len(buf) {
		return
	}
	s.fill += copy(buf[s.fill:], p)
}

// Finish zero-pads the remaining tail, scores the assembled window through
// the active table path, releases the stream's buffers, and returns the
// malware probability. The stream must not be used afterwards.
func (s *ConvStream) Finish() float64 {
	n, sc := s.n, s.sc
	buf := sc.padBuf
	for i := s.fill; i < len(buf); i++ {
		buf[i] = 0
	}
	var score float64
	if qt := n.quantTables(); qt != nil {
		score = n.forwardTableQuant(buf, qt, sc).score
	} else {
		score = n.forwardTable(buf, n.tables(), sc).score
	}
	n.putScratch(sc)
	s.sc = nil
	s.fill = 0
	n.streamPool.Put(s)
	return score
}
