package visa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseInst parses the assembler-like syntax produced by Inst.String back
// into an instruction, so dumps from pe-inspect can be edited and
// reassembled. The grammar is exactly String's output:
//
//	NOP | HALT | RET | PUSHA | POPA
//	MOVI R1, -5        ADDI/SUBI/XORI/ANDI/ORI/SHLI/SHRI alike
//	MOV R1, R2         ADD/SUB/XOR alike
//	LOADB R1, [R2+8]   LOADW/STOREB/STOREW alike
//	PUSH R3 | POP R3 | JMPR R3
//	JMP +16 | CALL -8
//	JZ R1, +8 | JNZ R1, -16
//	JLT R1, R2, +24
//	SYS 901
func ParseInst(s string) (Inst, error) {
	fields := strings.FieldsFunc(strings.TrimSpace(s), func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t'
	})
	if len(fields) == 0 {
		return Inst{}, fmt.Errorf("visa: empty instruction")
	}
	op, ok := opByName(fields[0])
	if !ok {
		return Inst{}, fmt.Errorf("visa: unknown mnemonic %q", fields[0])
	}
	in := Inst{Op: op}
	args := fields[1:]

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("visa: %s wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	switch op {
	case NOP, HALT, RET, PUSHA, POPA:
		return in, need(0)
	case MOVI, ADDI, SUBI, XORI, ANDI, ORI, SHLI, SHRI:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Ra, err = parseReg(args[0]); err != nil {
			return in, err
		}
		imm, err := parseImm(args[1])
		in.Imm = imm
		return in, err
	case MOV, ADD, SUB, XOR:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Ra, err = parseReg(args[0]); err != nil {
			return in, err
		}
		in.Rb, err = parseReg(args[1])
		return in, err
	case LOADB, LOADW, STOREB, STOREW:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Ra, err = parseReg(args[0]); err != nil {
			return in, err
		}
		in.Rb, in.Imm, err = parseMem(args[1])
		return in, err
	case PUSH, POP, JMPR:
		if err := need(1); err != nil {
			return in, err
		}
		var err error
		in.Ra, err = parseReg(args[0])
		return in, err
	case JMP, CALL:
		if err := need(1); err != nil {
			return in, err
		}
		imm, err := parseImm(args[0])
		in.Imm = imm
		return in, err
	case JZ, JNZ:
		if err := need(2); err != nil {
			return in, err
		}
		var err error
		if in.Ra, err = parseReg(args[0]); err != nil {
			return in, err
		}
		imm, err := parseImm(args[1])
		in.Imm = imm
		return in, err
	case JLT:
		if err := need(3); err != nil {
			return in, err
		}
		var err error
		if in.Ra, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rb, err = parseReg(args[1]); err != nil {
			return in, err
		}
		imm, err := parseImm(args[2])
		in.Imm = imm
		return in, err
	case SYS:
		if err := need(1); err != nil {
			return in, err
		}
		imm, err := parseImm(args[0])
		in.Imm = imm
		return in, err
	}
	return in, fmt.Errorf("visa: unhandled mnemonic %q", fields[0])
}

// ParseProgram parses one instruction per non-empty line; lines starting
// with ';' or '#' are comments.
func ParseProgram(src string) ([]Inst, error) {
	var out []Inst
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		in, err := ParseInst(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, in)
	}
	return out, nil
}

func opByName(name string) (Op, bool) {
	for op := Op(0); op < opCount; op++ {
		if opNames[op] == name {
			return op, true
		}
	}
	return 0, false
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'R' && s[0] != 'r') {
		return 0, fmt.Errorf("visa: bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("visa: bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	n, err := strconv.ParseInt(strings.TrimPrefix(s, "+"), 0, 64)
	if err != nil || n < -1<<31 || n > 1<<31-1 {
		return 0, fmt.Errorf("visa: bad immediate %q", s)
	}
	return int32(n), nil
}

// parseMem parses "[R2+8]", "[R2-4]", or "[R2]".
func parseMem(s string) (uint8, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("visa: bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	sep := strings.IndexAny(body[1:], "+-")
	if sep < 0 {
		r, err := parseReg(body)
		return r, 0, err
	}
	sep++ // offset into body
	r, err := parseReg(body[:sep])
	if err != nil {
		return 0, 0, err
	}
	imm, err := parseImm(body[sep:])
	return r, imm, err
}
