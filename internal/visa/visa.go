// Package visa defines VISA-32, a compact 32-bit virtual instruction set
// that stands in for x86 machine code inside the synthetic PE corpus.
//
// The paper's runtime-recovery technique needs a real ISA: the recovery
// module is machine code that decodes the original program at runtime, and
// the shuffle strategy permutes its instructions and re-links them with
// relative jumps, patching every relative operand for its new position.
// VISA-32 keeps those mechanics (relative branches, byte-granular
// loads/stores for self-modification, a stack for context save/restore,
// API-call traps for behaviour tracing) while staying small enough that the
// sandbox in internal/sandbox can execute whole programs in microseconds.
//
// Every instruction is exactly 8 bytes:
//
//	byte 0   opcode
//	byte 1   ra  (first register operand)
//	byte 2   rb  (second register operand)
//	byte 3   reserved, must be zero
//	byte 4-7 imm (little-endian int32)
//
// Branch targets are relative to the address of the *next* instruction,
// i.e. target = addr + Size + imm, matching x86 rel32 semantics.
package visa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the fixed encoded length of every instruction, in bytes.
const Size = 8

// NumRegs is the number of general-purpose registers R0..R7.
const NumRegs = 8

// Op is an instruction opcode.
type Op uint8

// The VISA-32 instruction set.
const (
	NOP    Op = iota // no operation
	HALT             // stop execution
	MOVI             // ra = imm
	MOV              // ra = rb
	ADD              // ra += rb
	ADDI             // ra += imm
	SUB              // ra -= rb
	SUBI             // ra -= imm
	XOR              // ra ^= rb
	XORI             // ra ^= imm
	ANDI             // ra &= imm
	ORI              // ra |= imm
	SHLI             // ra <<= imm (mod 32)
	SHRI             // ra >>= imm (mod 32, logical)
	LOADB            // ra = mem8[rb+imm]
	STOREB           // mem8[rb+imm] = ra (low byte)
	LOADW            // ra = mem32[rb+imm]
	STOREW           // mem32[rb+imm] = ra
	PUSH             // push ra
	POP              // pop into ra
	PUSHA            // push R0..R7
	POPA             // pop R7..R0
	JMP              // pc = next + imm
	JZ               // if ra == 0 { pc = next + imm }
	JNZ              // if ra != 0 { pc = next + imm }
	JLT              // if ra < rb (unsigned) { pc = next + imm }
	CALL             // push next; pc = next + imm
	JMPR             // pc = ra (absolute, register-indirect)
	RET              // pop pc
	SYS              // invoke API imm with argument R0; result in R0

	opCount // sentinel; keep last
)

var opNames = [...]string{
	NOP: "NOP", HALT: "HALT", MOVI: "MOVI", MOV: "MOV", ADD: "ADD",
	ADDI: "ADDI", SUB: "SUB", SUBI: "SUBI", XOR: "XOR", XORI: "XORI",
	ANDI: "ANDI", ORI: "ORI", SHLI: "SHLI", SHRI: "SHRI", LOADB: "LOADB",
	STOREB: "STOREB", LOADW: "LOADW", STOREW: "STOREW", PUSH: "PUSH",
	POP: "POP", PUSHA: "PUSHA", POPA: "POPA", JMP: "JMP", JZ: "JZ",
	JNZ: "JNZ", JLT: "JLT", CALL: "CALL", JMPR: "JMPR", RET: "RET", SYS: "SYS",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < opCount }

// IsBranch reports whether the opcode's immediate is a relative branch
// displacement that must be re-patched when the instruction moves.
func (o Op) IsBranch() bool {
	switch o {
	case JMP, JZ, JNZ, JLT, CALL:
		return true
	}
	return false
}

// IsConditional reports whether the branch falls through when untaken.
func (o Op) IsConditional() bool {
	switch o {
	case JZ, JNZ, JLT:
		return true
	}
	return false
}

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Ra  uint8
	Rb  uint8
	Imm int32
}

// String renders the instruction in assembler-like syntax.
func (i Inst) String() string {
	switch i.Op {
	case NOP, HALT, RET, PUSHA, POPA:
		return i.Op.String()
	case MOVI, ADDI, SUBI, XORI, ANDI, ORI, SHLI, SHRI:
		return fmt.Sprintf("%s R%d, %d", i.Op, i.Ra, i.Imm)
	case MOV, ADD, SUB, XOR:
		return fmt.Sprintf("%s R%d, R%d", i.Op, i.Ra, i.Rb)
	case LOADB, LOADW, STOREB, STOREW:
		return fmt.Sprintf("%s R%d, [R%d%+d]", i.Op, i.Ra, i.Rb, i.Imm)
	case PUSH, POP, JMPR:
		return fmt.Sprintf("%s R%d", i.Op, i.Ra)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", i.Op, i.Imm)
	case JZ, JNZ:
		return fmt.Sprintf("%s R%d, %+d", i.Op, i.Ra, i.Imm)
	case JLT:
		return fmt.Sprintf("%s R%d, R%d, %+d", i.Op, i.Ra, i.Rb, i.Imm)
	case SYS:
		return fmt.Sprintf("SYS %d", i.Imm)
	}
	return fmt.Sprintf("%s R%d, R%d, %d", i.Op, i.Ra, i.Rb, i.Imm)
}

// Errors returned by Decode.
var (
	ErrShort    = errors.New("visa: buffer shorter than one instruction")
	ErrBadOp    = errors.New("visa: undefined opcode")
	ErrBadReg   = errors.New("visa: register out of range")
	ErrReserved = errors.New("visa: reserved byte not zero")
)

// Encode writes the instruction into an 8-byte slice.
func (i Inst) Encode(b []byte) {
	_ = b[Size-1]
	b[0] = byte(i.Op)
	b[1] = i.Ra
	b[2] = i.Rb
	b[3] = 0
	binary.LittleEndian.PutUint32(b[4:], uint32(i.Imm))
}

// Bytes returns the 8-byte encoding of the instruction.
func (i Inst) Bytes() []byte {
	b := make([]byte, Size)
	i.Encode(b)
	return b
}

// Decode parses one instruction from the front of b.
func Decode(b []byte) (Inst, error) {
	if len(b) < Size {
		return Inst{}, fmt.Errorf("%w: %d bytes", ErrShort, len(b))
	}
	in := Inst{
		Op:  Op(b[0]),
		Ra:  b[1],
		Rb:  b[2],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if !in.Op.Valid() {
		return in, fmt.Errorf("%w: %d", ErrBadOp, b[0])
	}
	if in.Ra >= NumRegs || in.Rb >= NumRegs {
		return in, fmt.Errorf("%w: ra=%d rb=%d", ErrBadReg, in.Ra, in.Rb)
	}
	if b[3] != 0 {
		return in, fmt.Errorf("%w: %#x", ErrReserved, b[3])
	}
	return in, nil
}

// EncodeProgram concatenates the encodings of insts.
func EncodeProgram(insts []Inst) []byte {
	out := make([]byte, len(insts)*Size)
	for i, in := range insts {
		in.Encode(out[i*Size:])
	}
	return out
}

// DecodeProgram decodes as many whole instructions as b contains. Trailing
// bytes shorter than one instruction are ignored. It stops at the first
// undecodable instruction and returns what it has along with the error.
func DecodeProgram(b []byte) ([]Inst, error) {
	var out []Inst
	for off := 0; off+Size <= len(b); off += Size {
		in, err := Decode(b[off:])
		if err != nil {
			return out, fmt.Errorf("at offset %#x: %w", off, err)
		}
		out = append(out, in)
	}
	return out, nil
}
