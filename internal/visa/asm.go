package visa

import (
	"fmt"
	"sort"
)

// Assembler builds VISA-32 programs with symbolic branch labels. Labels are
// resolved to rel32 displacements when Assemble is called.
//
// The zero value is ready to use:
//
//	var a Assembler
//	a.MOVI(0, 10)
//	a.Label("loop")
//	a.SUBI(0, 1)
//	a.JNZ(0, "loop")
//	a.HALT()
//	code, err := a.Assemble()
type Assembler struct {
	insts  []Inst
	labels map[string]int // label -> instruction index
	refs   map[int]string // instruction index -> target label
}

// Len returns the number of instructions emitted so far.
func (a *Assembler) Len() int { return len(a.insts) }

// PC returns the byte offset of the next instruction to be emitted.
func (a *Assembler) PC() int32 { return int32(len(a.insts) * Size) }

// Label binds name to the current position. Re-binding a name panics: label
// names are programmer input, not runtime data.
func (a *Assembler) Label(name string) {
	if a.labels == nil {
		a.labels = make(map[string]int)
	}
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("visa: duplicate label %q", name))
	}
	a.labels[name] = len(a.insts)
}

// Emit appends a raw instruction.
func (a *Assembler) Emit(in Inst) { a.insts = append(a.insts, in) }

func (a *Assembler) emitRef(in Inst, label string) {
	if a.refs == nil {
		a.refs = make(map[int]string)
	}
	a.refs[len(a.insts)] = label
	a.insts = append(a.insts, in)
}

// The instruction helpers, one per opcode.

func (a *Assembler) Nop()                  { a.Emit(Inst{Op: NOP}) }
func (a *Assembler) Halt()                 { a.Emit(Inst{Op: HALT}) }
func (a *Assembler) Movi(r uint8, v int32) { a.Emit(Inst{Op: MOVI, Ra: r, Imm: v}) }
func (a *Assembler) Mov(rd, rs uint8)      { a.Emit(Inst{Op: MOV, Ra: rd, Rb: rs}) }
func (a *Assembler) Add(rd, rs uint8)      { a.Emit(Inst{Op: ADD, Ra: rd, Rb: rs}) }
func (a *Assembler) Addi(r uint8, v int32) { a.Emit(Inst{Op: ADDI, Ra: r, Imm: v}) }
func (a *Assembler) Sub(rd, rs uint8)      { a.Emit(Inst{Op: SUB, Ra: rd, Rb: rs}) }
func (a *Assembler) Subi(r uint8, v int32) { a.Emit(Inst{Op: SUBI, Ra: r, Imm: v}) }
func (a *Assembler) Xor(rd, rs uint8)      { a.Emit(Inst{Op: XOR, Ra: rd, Rb: rs}) }
func (a *Assembler) Xori(r uint8, v int32) { a.Emit(Inst{Op: XORI, Ra: r, Imm: v}) }
func (a *Assembler) Andi(r uint8, v int32) { a.Emit(Inst{Op: ANDI, Ra: r, Imm: v}) }
func (a *Assembler) Ori(r uint8, v int32)  { a.Emit(Inst{Op: ORI, Ra: r, Imm: v}) }
func (a *Assembler) Shli(r uint8, v int32) { a.Emit(Inst{Op: SHLI, Ra: r, Imm: v}) }
func (a *Assembler) Shri(r uint8, v int32) { a.Emit(Inst{Op: SHRI, Ra: r, Imm: v}) }

func (a *Assembler) Loadb(rd, base uint8, disp int32) {
	a.Emit(Inst{Op: LOADB, Ra: rd, Rb: base, Imm: disp})
}
func (a *Assembler) Storeb(rs, base uint8, disp int32) {
	a.Emit(Inst{Op: STOREB, Ra: rs, Rb: base, Imm: disp})
}
func (a *Assembler) Loadw(rd, base uint8, disp int32) {
	a.Emit(Inst{Op: LOADW, Ra: rd, Rb: base, Imm: disp})
}
func (a *Assembler) Storew(rs, base uint8, disp int32) {
	a.Emit(Inst{Op: STOREW, Ra: rs, Rb: base, Imm: disp})
}

func (a *Assembler) Push(r uint8)      { a.Emit(Inst{Op: PUSH, Ra: r}) }
func (a *Assembler) Pop(r uint8)       { a.Emit(Inst{Op: POP, Ra: r}) }
func (a *Assembler) Pusha()            { a.Emit(Inst{Op: PUSHA}) }
func (a *Assembler) Popa()             { a.Emit(Inst{Op: POPA}) }
func (a *Assembler) Ret()              { a.Emit(Inst{Op: RET}) }
func (a *Assembler) Jmpr(r uint8)      { a.Emit(Inst{Op: JMPR, Ra: r}) }
func (a *Assembler) Sys(api int32)     { a.Emit(Inst{Op: SYS, Imm: api}) }
func (a *Assembler) Jmp(label string)  { a.emitRef(Inst{Op: JMP}, label) }
func (a *Assembler) Call(label string) { a.emitRef(Inst{Op: CALL}, label) }
func (a *Assembler) Jz(r uint8, label string) {
	a.emitRef(Inst{Op: JZ, Ra: r}, label)
}
func (a *Assembler) Jnz(r uint8, label string) {
	a.emitRef(Inst{Op: JNZ, Ra: r}, label)
}
func (a *Assembler) Jlt(ra, rb uint8, label string) {
	a.emitRef(Inst{Op: JLT, Ra: ra, Rb: rb}, label)
}

// Instructions resolves all label references and returns the final
// instruction slice. The assembler can keep being used afterwards.
func (a *Assembler) Instructions() ([]Inst, error) {
	out := make([]Inst, len(a.insts))
	copy(out, a.insts)
	// Deterministic error reporting: visit refs in index order.
	idxs := make([]int, 0, len(a.refs))
	for i := range a.refs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		label := a.refs[i]
		tgt, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("visa: undefined label %q at instruction %d", label, i)
		}
		// rel32 relative to the following instruction.
		out[i].Imm = int32((tgt - (i + 1)) * Size)
	}
	return out, nil
}

// Assemble resolves labels and returns the encoded program bytes.
func (a *Assembler) Assemble() ([]byte, error) {
	insts, err := a.Instructions()
	if err != nil {
		return nil, err
	}
	return EncodeProgram(insts), nil
}

// MustAssemble is Assemble that panics on unresolved labels; for use in
// tests and generators whose labels are static.
func (a *Assembler) MustAssemble() []byte {
	b, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return b
}
