package visa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseInstRoundTripsString(t *testing.T) {
	// Property: every valid instruction survives String -> ParseInst.
	prop := func(op uint8, ra, rb uint8, imm int32) bool {
		in := Inst{Op: Op(op) % opCount, Ra: ra % NumRegs, Rb: rb % NumRegs, Imm: imm}
		// Normalize fields String does not render (e.g. NOP has no regs).
		switch in.Op {
		case NOP, HALT, RET, PUSHA, POPA:
			in.Ra, in.Rb, in.Imm = 0, 0, 0
		case MOVI, ADDI, SUBI, XORI, ANDI, ORI, SHLI, SHRI:
			in.Rb = 0
		case MOV, ADD, SUB, XOR:
			in.Imm = 0
		case PUSH, POP, JMPR:
			in.Rb, in.Imm = 0, 0
		case JMP, CALL:
			in.Ra, in.Rb = 0, 0
		case JZ, JNZ:
			in.Rb = 0
		case SYS:
			in.Ra, in.Rb = 0, 0
		}
		got, err := ParseInst(in.String())
		return err == nil && got == in
	}
	cfg := &quick.Config{MaxCount: 600, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseInstExamples(t *testing.T) {
	cases := []struct {
		src  string
		want Inst
	}{
		{"NOP", Inst{Op: NOP}},
		{"MOVI R3, -12345", Inst{Op: MOVI, Ra: 3, Imm: -12345}},
		{"MOVI R3, 0x10", Inst{Op: MOVI, Ra: 3, Imm: 16}},
		{"ADD R1, R2", Inst{Op: ADD, Ra: 1, Rb: 2}},
		{"LOADB R0, [R7+12]", Inst{Op: LOADB, Ra: 0, Rb: 7, Imm: 12}},
		{"STOREW R5, [R6-4]", Inst{Op: STOREW, Ra: 5, Rb: 6, Imm: -4}},
		{"LOADW R1, [R2]", Inst{Op: LOADW, Ra: 1, Rb: 2}},
		{"JMP +16", Inst{Op: JMP, Imm: 16}},
		{"JNZ R4, -8", Inst{Op: JNZ, Ra: 4, Imm: -8}},
		{"JLT R1, R2, +24", Inst{Op: JLT, Ra: 1, Rb: 2, Imm: 24}},
		{"SYS 901", Inst{Op: SYS, Imm: 901}},
		{"  PUSH R7  ", Inst{Op: PUSH, Ra: 7}},
	}
	for _, tc := range cases {
		got, err := ParseInst(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%q = %+v, want %+v", tc.src, got, tc.want)
		}
	}
}

func TestParseInstRejects(t *testing.T) {
	bad := []string{
		"", "FROB R1", "MOVI", "MOVI R9, 1", "MOVI R1", "ADD R1",
		"LOADB R1, R2", "LOADB R1, [X2+1]", "JMP lots", "SYS",
		"MOVI R1, 99999999999999999999",
	}
	for _, src := range bad {
		if _, err := ParseInst(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestParseProgram(t *testing.T) {
	src := `
	; countdown loop
	MOVI R0, 3
	SUBI R0, 1   # decrement
	JNZ R0, -16
	HALT
`
	insts, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 4 {
		t.Fatalf("parsed %d instructions, want 4", len(insts))
	}
	if insts[3].Op != HALT {
		t.Errorf("last op = %v", insts[3].Op)
	}
	if _, err := ParseProgram("HALT\nWAT"); err == nil {
		t.Error("bad line accepted")
	}
}
