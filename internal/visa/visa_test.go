package visa

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: NOP},
		{Op: HALT},
		{Op: MOVI, Ra: 3, Imm: -12345},
		{Op: MOV, Ra: 1, Rb: 2},
		{Op: LOADB, Ra: 0, Rb: 7, Imm: 0x7FFFFFFF},
		{Op: STOREW, Ra: 5, Rb: 6, Imm: -0x80000000},
		{Op: JMP, Imm: -8},
		{Op: JLT, Ra: 2, Rb: 3, Imm: 64},
		{Op: SYS, Imm: 901},
	}
	for _, in := range cases {
		t.Run(in.String(), func(t *testing.T) {
			got, err := Decode(in.Bytes())
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got != in {
				t.Errorf("round trip = %+v, want %+v", got, in)
			}
		})
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	prop := func(op uint8, ra, rb uint8, imm int32) bool {
		in := Inst{Op: Op(op % uint8(opCount)), Ra: ra % NumRegs, Rb: rb % NumRegs, Imm: imm}
		got, err := Decode(in.Bytes())
		return err == nil && got == in
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"short", []byte{1, 2, 3}},
		{"bad op", Inst{Op: opCount}.Bytes()},
		{"bad reg", func() []byte {
			b := Inst{Op: MOV}.Bytes()
			b[1] = NumRegs
			return b
		}()},
		{"reserved", func() []byte {
			b := Inst{Op: NOP}.Bytes()
			b[3] = 1
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.b); err == nil {
				t.Error("Decode accepted invalid encoding")
			}
		})
	}
}

func TestBranchClassification(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		wantBranch := op == JMP || op == JZ || op == JNZ || op == JLT || op == CALL
		if got := op.IsBranch(); got != wantBranch {
			t.Errorf("%v.IsBranch() = %v, want %v", op, got, wantBranch)
		}
		wantCond := op == JZ || op == JNZ || op == JLT
		if got := op.IsConditional(); got != wantCond {
			t.Errorf("%v.IsConditional() = %v, want %v", op, got, wantCond)
		}
	}
}

func TestAssemblerForwardAndBackwardLabels(t *testing.T) {
	var a Assembler
	a.Movi(0, 3)
	a.Jmp("skip") // forward reference
	a.Halt()
	a.Label("skip")
	a.Label("loop")
	a.Subi(0, 1)
	a.Jnz(0, "loop") // backward reference
	a.Halt()

	insts, err := a.Instructions()
	if err != nil {
		t.Fatalf("Instructions: %v", err)
	}
	// JMP at index 1 targets index 3: (3-2)*8 = 8.
	if insts[1].Imm != 8 {
		t.Errorf("forward JMP imm = %d, want 8", insts[1].Imm)
	}
	// JNZ at index 4 targets index 3: (3-5)*8 = -16.
	if insts[4].Imm != -16 {
		t.Errorf("backward JNZ imm = %d, want -16", insts[4].Imm)
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	var a Assembler
	a.Jmp("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("Assemble resolved an undefined label")
	}
}

func TestAssemblerDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	var a Assembler
	a.Label("x")
	a.Label("x")
}

func TestEncodeDecodeProgram(t *testing.T) {
	var a Assembler
	a.Movi(1, 100)
	a.Movi(2, 200)
	a.Add(1, 2)
	a.Sys(5)
	a.Halt()
	raw := a.MustAssemble()

	insts, err := DecodeProgram(raw)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if len(insts) != 5 {
		t.Fatalf("decoded %d instructions, want 5", len(insts))
	}
	if !bytes.Equal(EncodeProgram(insts), raw) {
		t.Error("EncodeProgram(DecodeProgram(x)) != x")
	}
}

func TestDecodeProgramStopsAtBadInstruction(t *testing.T) {
	good := Inst{Op: NOP}.Bytes()
	bad := Inst{Op: opCount}.Bytes()
	insts, err := DecodeProgram(append(append([]byte{}, good...), bad...))
	if err == nil {
		t.Fatal("DecodeProgram accepted a bad opcode")
	}
	if len(insts) != 1 {
		t.Errorf("decoded %d instructions before error, want 1", len(insts))
	}
	if !strings.Contains(err.Error(), "0x8") {
		t.Errorf("error %q does not name the failing offset", err)
	}
}

func TestInstStringCoversAllOps(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		s := Inst{Op: op, Ra: 1, Rb: 2, Imm: 3}.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("opcode %d has no formatted mnemonic: %q", op, s)
		}
	}
	if got := Op(200).String(); got != "OP(200)" {
		t.Errorf("unknown opcode string = %q", got)
	}
}

func TestPCAndLen(t *testing.T) {
	var a Assembler
	if a.PC() != 0 || a.Len() != 0 {
		t.Error("zero-value assembler not empty")
	}
	a.Nop()
	a.Nop()
	if a.PC() != 16 || a.Len() != 2 {
		t.Errorf("PC=%d Len=%d after two instructions", a.PC(), a.Len())
	}
}
