package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Pool is the long-lived counterpart of the batch helpers above: a fixed set
// of worker goroutines consuming a bounded submission queue. The batch
// helpers fan a known slice of work across goroutines and return; a Pool
// accepts work that arrives over time — the serving layer's attack jobs —
// and makes overload explicit: TrySubmit never blocks, it reports a full
// queue so the caller can shed load (HTTP 429) instead of buffering
// unboundedly.
type Pool struct {
	mu     sync.RWMutex // guards closed vs. in-flight TrySubmit sends
	closed bool

	tasks   chan func()
	workers sync.WaitGroup
	pending atomic.Int64 // queued + running tasks
	done    atomic.Int64 // tasks completed over the pool's lifetime

	// base is the context handed to ctx-aware tasks; Cancel cancels it, so
	// every queued and running task submitted via TrySubmitCtx observes the
	// pool-wide cancellation at once (the forced-shutdown lever).
	base       context.Context
	cancelBase context.CancelFunc
}

// Submission errors. TrySubmit collapses both into false; TrySubmitCtx
// surfaces them so callers can answer "queue full" (shed, retry later) and
// "pool closed" (shutting down, go away) differently.
var (
	ErrQueueFull  = errors.New("parallel: pool queue full")
	ErrPoolClosed = errors.New("parallel: pool closed")
)

// NewPool starts a pool with the given worker count (resolved via Workers,
// so <= 0 selects GOMAXPROCS) and queue capacity (minimum 1).
func NewPool(workers, queue int) *Pool {
	if queue < 1 {
		queue = 1
	}
	//lint:ignore ctxflow pool-lifetime cancellation root; Cancel severs it for every task at once
	base, cancel := context.WithCancel(context.Background())
	p := &Pool{tasks: make(chan func(), queue), base: base, cancelBase: cancel}
	w := Workers(workers)
	p.workers.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer p.workers.Done()
			for task := range p.tasks {
				task()
				p.done.Add(1)
				p.pending.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit enqueues task without blocking. It returns false when the queue
// is full or the pool is closed — the admission-control signal.
func (p *Pool) TrySubmit(task func()) bool {
	return p.TrySubmitCtx(func(context.Context) { task() }) == nil
}

// TrySubmitCtx enqueues a cancellation-aware task without blocking. The
// task receives the pool's base context: it is live for the pool's whole
// life and cancelled by Cancel, so long-running tasks (serving-layer attack
// jobs) can be reaped during a forced shutdown. Callers wanting a per-task
// deadline derive one from the received context. Returns ErrQueueFull when
// the queue is full and ErrPoolClosed after Drain/Close.
func (p *Pool) TrySubmitCtx(task func(ctx context.Context)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- func() { task(p.base) }:
		p.pending.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// Cancel cancels the context every ctx-aware task received, queued and
// running alike. It does not close the pool or wait: pair it with Drain to
// force a bounded shutdown — Drain for the graceful half, Cancel when the
// deadline is near and the stragglers must be reaped.
func (p *Pool) Cancel() { p.cancelBase() }

// Pending returns the number of tasks submitted but not yet finished
// (queued plus running).
func (p *Pool) Pending() int { return int(p.pending.Load()) }

// Queued returns the number of tasks waiting in the queue (not yet picked
// up by a worker).
func (p *Pool) Queued() int { return len(p.tasks) }

// Done returns how many tasks have completed since the pool started.
func (p *Pool) Done() int { return int(p.done.Load()) }

// Drain closes the pool to new submissions and waits for every queued and
// running task to finish, or for ctx to expire — the graceful-shutdown
// primitive. On ctx expiry the workers keep running their current tasks in
// the background; only the wait is abandoned. Drain is idempotent.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		p.cancelBase() // every task finished; release the base context
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the pool with no deadline.
func (p *Pool) Close() {
	//lint:ignore ctxflow Close is by contract the unbounded drain; Drain(ctx) is the bounded form
	p.Drain(context.Background())
}
