package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroAndTinyN(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	ForEach(8, 1, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachErr(workers, 100, func(i int) error {
			if i == 90 || i == 17 || i == 55 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 17" {
			t.Errorf("workers=%d: err = %v, want fail at 17", workers, err)
		}
		if err := ForEachErr(workers, 10, func(int) error { return nil }); err != nil {
			t.Errorf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var a, b, c atomic.Bool
	sentinel := errors.New("boom")
	err := Do(3,
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return sentinel },
		func() error { c.Store(true); return nil },
	)
	if !errors.Is(err, sentinel) {
		t.Errorf("Do error = %v, want sentinel", err)
	}
	if !a.Load() || !b.Load() || !c.Load() {
		t.Error("Do skipped a task after a failure")
	}
}

// TestMapReduceOrderIndependence is the determinism anchor: a fold over
// values whose floating-point sum depends on ordering must come out
// bit-identical for every worker count.
func TestMapReduceDeterministicFold(t *testing.T) {
	const n = 5000
	mapFn := func(i int) float64 { return 1.0 / float64(i+1) }
	ref := MapReduce(1, n, mapFn, 0.0, func(a, v float64) float64 { return a + v })
	for _, workers := range []int{2, 3, 16} {
		got := MapReduce(workers, n, mapFn, 0.0, func(a, v float64) float64 { return a + v })
		if got != ref {
			t.Errorf("workers=%d: sum %v != serial %v", workers, got, ref)
		}
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(4, 0, func(i int) int { return i }, 42, func(a, v int) int { return a + v })
	if got != 42 {
		t.Errorf("empty MapReduce = %d, want accumulator unchanged", got)
	}
}
