// Package parallel is the shared data-parallel compute layer behind the
// pipeline's hot paths: minibatch training and batch scoring (internal/nn,
// internal/detect), exact Shapley enumeration (internal/shapley), and the
// experiment harness (internal/eval).
//
// Every helper takes the same Workers knob: values <= 0 resolve to
// runtime.GOMAXPROCS(0), 1 runs inline on the calling goroutine (no pool,
// no synchronization), and larger values bound the number of worker
// goroutines. Work is handed out through an atomic cursor, so helpers
// balance load across uneven item costs without per-item channel traffic.
//
// Determinism contract: helpers never reorder results. ForEach gives every
// index its own isolated slot of whatever the caller indexes, ForEachErr
// reports the lowest-index error, and MapReduce folds mapped values in
// strict index order — so a reduction over floating-point values is
// bit-identical for every worker count, including the inline path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Workers knob to a concrete goroutine count:
// n <= 0 selects runtime.GOMAXPROCS(0), anything else is returned as is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n), using up to workers goroutines
// (resolved via Workers). fn must be safe for concurrent invocation with
// distinct indices; each index is executed exactly once. When the resolved
// worker count (or n) is 1 the loop runs inline on the caller's goroutine.
func ForEach(workers, n int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr runs fn(i) for every i in [0, n) like ForEach and returns the
// error with the lowest index, or nil when every call succeeds. All indices
// run even after a failure — callers that need cancellation should check
// shared state inside fn — so the returned error is deterministic across
// worker counts and schedules.
func ForEachErr(workers, n int, fn func(i int) error) error {
	// Tracks only the lowest failing index instead of an O(n) error slice:
	// the all-success path (by far the common one) never allocates and
	// never takes the lock.
	var mu sync.Mutex
	bestIdx := n
	var bestErr error
	ForEach(workers, n, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < bestIdx {
				bestIdx, bestErr = i, err
			}
			mu.Unlock()
		}
	})
	return bestErr
}

// Do runs the given heterogeneous tasks concurrently, bounded by workers,
// and returns the first (lowest-index) error. It is the fan-out primitive
// for "train these independent models at the same time" call sites.
func Do(workers int, tasks ...func() error) error {
	return ForEachErr(workers, len(tasks), func(i int) error {
		return tasks[i]()
	})
}

// MapReduce computes mapFn(i) for every i in [0, n) across up to workers
// goroutines, then folds the results in strict index order:
//
//	acc = fold(fold(fold(acc, m(0)), m(1)), ... m(n-1))
//
// The index-ordered fold makes floating-point reductions bit-identical for
// every worker count. mapFn must be safe for concurrent invocation; fold
// runs on the calling goroutine only.
func MapReduce[T, A any](workers, n int, mapFn func(i int) T, acc A, fold func(acc A, v T) A) A {
	vals := make([]T, n)
	ForEach(workers, n, func(i int) {
		vals[i] = mapFn(i)
	})
	for _, v := range vals {
		acc = fold(acc, v)
	}
	return acc
}
