package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.TrySubmit(func() { ran.Add(1) }) {
			t.Fatalf("task %d rejected with room in the queue", i)
		}
	}
	p.Close()
	if ran.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", ran.Load())
	}
	if p.Done() != 50 || p.Pending() != 0 {
		t.Fatalf("Done=%d Pending=%d after Close, want 50/0", p.Done(), p.Pending())
	}
}

func TestPoolShedsLoadWhenFull(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(1, 2)
	var started sync.WaitGroup
	started.Add(1)
	p.TrySubmit(func() { started.Done(); <-block }) // occupies the worker
	started.Wait()
	if !p.TrySubmit(func() {}) || !p.TrySubmit(func() {}) {
		t.Fatal("queue rejected tasks below capacity")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("queue accepted a task beyond capacity")
	}
	if p.Queued() != 2 || p.Pending() != 3 {
		t.Fatalf("Queued=%d Pending=%d, want 2/3", p.Queued(), p.Pending())
	}
	close(block)
	p.Close()
}

func TestPoolDrainWaitsForRunningTasks(t *testing.T) {
	p := NewPool(2, 8)
	var finished atomic.Bool
	p.TrySubmit(func() {
		time.Sleep(50 * time.Millisecond)
		finished.Store(true)
	})
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !finished.Load() {
		t.Fatal("Drain returned before the running task finished")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted work after Drain")
	}
	// Idempotent.
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestPoolDrainHonorsDeadline(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	p.TrySubmit(func() { <-release })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain under stuck task: err=%v, want DeadlineExceeded", err)
	}
	close(release)
	p.Close()
}

// TestPoolSubmitCloseRace hammers TrySubmit from many goroutines while the
// pool drains — under -race this is the guard against the classic
// send-on-closed-channel crash.
func TestPoolSubmitCloseRace(t *testing.T) {
	p := NewPool(2, 4)
	var accepted atomic.Int64
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if p.TrySubmit(func() { ran.Add(1) }) {
					accepted.Add(1)
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
	// Stragglers that won the race before close have all run by now.
	p.workers.Wait()
	if ran.Load() != accepted.Load() {
		t.Fatalf("accepted %d tasks but ran %d", accepted.Load(), ran.Load())
	}
}

func TestPoolTrySubmitCtxErrors(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(1, 1)
	var started sync.WaitGroup
	started.Add(1)
	if err := p.TrySubmitCtx(func(context.Context) { started.Done(); <-block }); err != nil {
		t.Fatalf("first TrySubmitCtx: %v", err)
	}
	started.Wait()
	if err := p.TrySubmitCtx(func(context.Context) {}); err != nil {
		t.Fatalf("queueable TrySubmitCtx: %v", err)
	}
	if err := p.TrySubmitCtx(func(context.Context) {}); err != ErrQueueFull {
		t.Fatalf("full queue returned %v, want ErrQueueFull", err)
	}
	close(block)
	p.Close()
	if err := p.TrySubmitCtx(func(context.Context) {}); err != ErrPoolClosed {
		t.Fatalf("closed pool returned %v, want ErrPoolClosed", err)
	}
}

// TestPoolCancelReapsRunningAndQueuedTasks pins the forced-shutdown lever:
// Cancel cancels the context of the running task and of tasks still queued,
// so a bounded Drain+Cancel sequence frees ctx-honoring workers promptly.
func TestPoolCancelReapsRunningAndQueuedTasks(t *testing.T) {
	p := NewPool(1, 2)
	running := make(chan struct{})
	observed := make(chan error, 2)
	p.TrySubmitCtx(func(ctx context.Context) {
		close(running)
		<-ctx.Done()
		observed <- ctx.Err()
	})
	p.TrySubmitCtx(func(ctx context.Context) {
		// Queued behind the first task: by the time it runs, the pool
		// context is already cancelled.
		observed <- ctx.Err()
	})
	<-running
	p.Cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-observed:
			if err != context.Canceled {
				t.Fatalf("task %d observed %v, want context.Canceled", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled task never unblocked")
		}
	}
	p.Close()
}

// TestPoolDrainThenCancelBoundsStuckWork is the jobRegistry shutdown shape:
// graceful Drain times out on a ctx-honoring straggler, Cancel reaps it, and
// a second Drain completes.
func TestPoolDrainThenCancelBoundsStuckWork(t *testing.T) {
	p := NewPool(1, 1)
	p.TrySubmitCtx(func(ctx context.Context) { <-ctx.Done() })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain under hung task: %v, want DeadlineExceeded", err)
	}
	p.Cancel()
	gctx, gcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer gcancel()
	if err := p.Drain(gctx); err != nil {
		t.Fatalf("post-Cancel Drain: %v", err)
	}
}
