// Package sandbox executes synthetic PE programs and records their API-call
// traces. It is this repository's substitute for the Cuckoo sandbox the
// paper uses to verify that adversarial examples preserve the original
// malware's functionality (§IV-A "Verifying functionality-preserving").
//
// A VM maps every section of a PE32 image at its virtual address, starts at
// the image entry point, and interprets VISA-32 instructions until HALT, an
// execution fault, or the step budget. Each SYS instruction appends an
// (API, argument) event to the trace; the trace is the observable behaviour
// of the program, and two samples are behaviour-equivalent exactly when
// their traces are equal — the same criterion (API call sequences) the
// paper applies.
package sandbox

import (
	"errors"
	"fmt"

	"mpass/internal/pefile"
	"mpass/internal/visa"
)

// DefaultMaxSteps bounds execution length; synthetic corpus programs run in
// a few thousand steps, recovery stubs add a few steps per recovered byte.
const DefaultMaxSteps = 4_000_000

// stackSize is the byte size of the VM's dedicated stack region.
const stackSize = 64 * 1024

// Event is one API invocation observed at runtime.
type Event struct {
	API uint32 // API identifier (the SYS immediate)
	Arg uint32 // value of R0 at the call
}

// Trace is the ordered API-call history of one execution.
type Trace []Event

// Equal reports whether two traces are identical event-for-event.
func (t Trace) Equal(u Trace) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// String renders the trace compactly for test failure messages.
func (t Trace) String() string {
	s := "["
	for i, e := range t {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d(%#x)", e.API, e.Arg)
	}
	return s + "]"
}

// Fault reasons reported by Run.
var (
	ErrSteps     = errors.New("sandbox: step budget exhausted")
	ErrMemory    = errors.New("sandbox: memory access outside image")
	ErrStack     = errors.New("sandbox: stack overflow or underflow")
	ErrDecode    = errors.New("sandbox: instruction decode fault")
	ErrPC        = errors.New("sandbox: program counter outside image")
	ErrNoEntry   = errors.New("sandbox: entry point not mapped")
	ErrTraceSize = errors.New("sandbox: trace length limit exceeded")
)

// maxTrace caps recorded events so a runaway loop cannot exhaust memory.
const maxTrace = 1 << 16

// Result summarizes one execution.
type Result struct {
	Trace Trace
	Steps int
	Err   error // nil on clean HALT
}

// Halted reports whether the program ran to a clean HALT.
func (r *Result) Halted() bool { return r.Err == nil }

// VM executes one image. A VM is single-use: construct with New, call Run
// once, inspect the result.
type VM struct {
	mem      []byte // flat image memory indexed by RVA
	stack    []byte
	regs     [visa.NumRegs]uint32
	sp       uint32 // offset into stack, grows upward
	pc       uint32 // RVA of next instruction
	maxSteps int
}

// Option configures a VM.
type Option func(*VM)

// WithMaxSteps overrides the execution step budget.
func WithMaxSteps(n int) Option {
	return func(m *VM) { m.maxSteps = n }
}

// New builds a VM for the given parsed image. Section data is copied into a
// flat RVA-indexed memory, so executing a sample never mutates the File.
func New(f *pefile.File, opts ...Option) (*VM, error) {
	f.Layout()
	size := f.Optional.SizeOfImage
	if size == 0 || size > 1<<28 {
		return nil, fmt.Errorf("sandbox: unreasonable image size %#x", size)
	}
	m := &VM{
		mem:      make([]byte, size),
		stack:    make([]byte, stackSize),
		pc:       f.Optional.AddressOfEntryPoint,
		maxSteps: DefaultMaxSteps,
	}
	for _, s := range f.Sections {
		end := int(s.VirtualAddress) + len(s.Data)
		if end > len(m.mem) {
			return nil, fmt.Errorf("sandbox: section %q extends past image (%#x > %#x)",
				s.Name, end, len(m.mem))
		}
		copy(m.mem[s.VirtualAddress:], s.Data)
	}
	if int(m.pc)+visa.Size > len(m.mem) {
		return nil, fmt.Errorf("%w: entry %#x, image %#x", ErrNoEntry, m.pc, len(m.mem))
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Run parses the raw PE bytes and executes them, returning the behaviour
// trace. It is the one-call convenience used throughout the evaluation.
func Run(raw []byte, opts ...Option) (*Result, error) {
	f, err := pefile.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("sandbox: %w", err)
	}
	return RunFile(f, opts...)
}

// RunFile executes an already-parsed image.
func RunFile(f *pefile.File, opts ...Option) (*Result, error) {
	m, err := New(f, opts...)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}

// apiResult is the deterministic value an API call leaves in R0. Subsequent
// control flow may branch on it, so recovered programs must reproduce API
// results bit-exactly to keep their traces aligned.
func apiResult(api, arg uint32) uint32 {
	x := api*0x9E3779B9 ^ arg*0x85EBCA6B
	x ^= x >> 13
	x *= 0xC2B2AE35
	x ^= x >> 16
	return x
}

// Run interprets instructions until HALT, a fault, or the step budget.
func (m *VM) Run() *Result {
	res := &Result{}
	for steps := 0; ; steps++ {
		if steps >= m.maxSteps {
			res.Steps = steps
			res.Err = fmt.Errorf("%w (%d)", ErrSteps, m.maxSteps)
			return res
		}
		if int(m.pc)+visa.Size > len(m.mem) {
			res.Steps = steps
			res.Err = fmt.Errorf("%w: pc=%#x", ErrPC, m.pc)
			return res
		}
		in, err := visa.Decode(m.mem[m.pc : m.pc+visa.Size])
		if err != nil {
			res.Steps = steps
			res.Err = fmt.Errorf("%w at %#x: %v", ErrDecode, m.pc, err)
			return res
		}
		next := m.pc + visa.Size
		m.pc = next

		switch in.Op {
		case visa.NOP:
		case visa.HALT:
			res.Steps = steps + 1
			return res
		case visa.MOVI:
			m.regs[in.Ra] = uint32(in.Imm)
		case visa.MOV:
			m.regs[in.Ra] = m.regs[in.Rb]
		case visa.ADD:
			m.regs[in.Ra] += m.regs[in.Rb]
		case visa.ADDI:
			m.regs[in.Ra] += uint32(in.Imm)
		case visa.SUB:
			m.regs[in.Ra] -= m.regs[in.Rb]
		case visa.SUBI:
			m.regs[in.Ra] -= uint32(in.Imm)
		case visa.XOR:
			m.regs[in.Ra] ^= m.regs[in.Rb]
		case visa.XORI:
			m.regs[in.Ra] ^= uint32(in.Imm)
		case visa.ANDI:
			m.regs[in.Ra] &= uint32(in.Imm)
		case visa.ORI:
			m.regs[in.Ra] |= uint32(in.Imm)
		case visa.SHLI:
			m.regs[in.Ra] <<= uint32(in.Imm) & 31
		case visa.SHRI:
			m.regs[in.Ra] >>= uint32(in.Imm) & 31
		case visa.LOADB:
			addr := m.regs[in.Rb] + uint32(in.Imm)
			if int(addr) >= len(m.mem) {
				res.Steps, res.Err = steps, fmt.Errorf("%w: LOADB %#x", ErrMemory, addr)
				return res
			}
			m.regs[in.Ra] = uint32(m.mem[addr])
		case visa.STOREB:
			addr := m.regs[in.Rb] + uint32(in.Imm)
			if int(addr) >= len(m.mem) {
				res.Steps, res.Err = steps, fmt.Errorf("%w: STOREB %#x", ErrMemory, addr)
				return res
			}
			m.mem[addr] = byte(m.regs[in.Ra])
		case visa.LOADW:
			addr := m.regs[in.Rb] + uint32(in.Imm)
			if int(addr)+4 > len(m.mem) {
				res.Steps, res.Err = steps, fmt.Errorf("%w: LOADW %#x", ErrMemory, addr)
				return res
			}
			m.regs[in.Ra] = uint32(m.mem[addr]) | uint32(m.mem[addr+1])<<8 |
				uint32(m.mem[addr+2])<<16 | uint32(m.mem[addr+3])<<24
		case visa.STOREW:
			addr := m.regs[in.Rb] + uint32(in.Imm)
			if int(addr)+4 > len(m.mem) {
				res.Steps, res.Err = steps, fmt.Errorf("%w: STOREW %#x", ErrMemory, addr)
				return res
			}
			v := m.regs[in.Ra]
			m.mem[addr] = byte(v)
			m.mem[addr+1] = byte(v >> 8)
			m.mem[addr+2] = byte(v >> 16)
			m.mem[addr+3] = byte(v >> 24)
		case visa.PUSH:
			if err := m.push(m.regs[in.Ra]); err != nil {
				res.Steps, res.Err = steps, err
				return res
			}
		case visa.POP:
			v, err := m.pop()
			if err != nil {
				res.Steps, res.Err = steps, err
				return res
			}
			m.regs[in.Ra] = v
		case visa.PUSHA:
			for r := 0; r < visa.NumRegs; r++ {
				if err := m.push(m.regs[r]); err != nil {
					res.Steps, res.Err = steps, err
					return res
				}
			}
		case visa.POPA:
			for r := visa.NumRegs - 1; r >= 0; r-- {
				v, err := m.pop()
				if err != nil {
					res.Steps, res.Err = steps, err
					return res
				}
				m.regs[r] = v
			}
		case visa.JMP:
			m.pc = next + uint32(in.Imm)
		case visa.JZ:
			if m.regs[in.Ra] == 0 {
				m.pc = next + uint32(in.Imm)
			}
		case visa.JNZ:
			if m.regs[in.Ra] != 0 {
				m.pc = next + uint32(in.Imm)
			}
		case visa.JLT:
			if m.regs[in.Ra] < m.regs[in.Rb] {
				m.pc = next + uint32(in.Imm)
			}
		case visa.CALL:
			if err := m.push(next); err != nil {
				res.Steps, res.Err = steps, err
				return res
			}
			m.pc = next + uint32(in.Imm)
		case visa.JMPR:
			m.pc = m.regs[in.Ra]
		case visa.RET:
			v, err := m.pop()
			if err != nil {
				res.Steps, res.Err = steps, err
				return res
			}
			m.pc = v
		case visa.SYS:
			if len(res.Trace) >= maxTrace {
				res.Steps, res.Err = steps, ErrTraceSize
				return res
			}
			api := uint32(in.Imm)
			arg := m.regs[0]
			res.Trace = append(res.Trace, Event{API: api, Arg: arg})
			m.regs[0] = apiResult(api, arg)
		}
	}
}

func (m *VM) push(v uint32) error {
	if int(m.sp)+4 > len(m.stack) {
		return fmt.Errorf("%w: push at sp=%#x", ErrStack, m.sp)
	}
	m.stack[m.sp] = byte(v)
	m.stack[m.sp+1] = byte(v >> 8)
	m.stack[m.sp+2] = byte(v >> 16)
	m.stack[m.sp+3] = byte(v >> 24)
	m.sp += 4
	return nil
}

func (m *VM) pop() (uint32, error) {
	if m.sp < 4 {
		return 0, fmt.Errorf("%w: pop at sp=%#x", ErrStack, m.sp)
	}
	m.sp -= 4
	v := uint32(m.stack[m.sp]) | uint32(m.stack[m.sp+1])<<8 |
		uint32(m.stack[m.sp+2])<<16 | uint32(m.stack[m.sp+3])<<24
	return v, nil
}

// BehaviourPreserved runs both images and reports whether the modified one
// halts cleanly with a trace identical to the original's. This is the
// functionality-preservation check applied to every AE in the evaluation.
func BehaviourPreserved(original, modified []byte, opts ...Option) (bool, error) {
	ro, err := Run(original, opts...)
	if err != nil {
		return false, fmt.Errorf("original: %w", err)
	}
	if !ro.Halted() {
		return false, fmt.Errorf("original did not halt: %w", ro.Err)
	}
	rm, err := Run(modified, opts...)
	if err != nil || !rm.Halted() {
		return false, nil
	}
	return ro.Trace.Equal(rm.Trace), nil
}
