package sandbox

import (
	"errors"
	"strings"
	"testing"

	"mpass/internal/pefile"
	"mpass/internal/visa"
)

// image wraps code (and optional data) in a minimal PE for execution.
func image(t *testing.T, code []byte, data []byte) *pefile.File {
	t.Helper()
	f := pefile.New()
	text, err := f.AddSection(".text", code, pefile.SecCharacteristicsText)
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		if _, err := f.AddSection(".data", data, pefile.SecCharacteristicsData); err != nil {
			t.Fatal(err)
		}
	}
	f.SetEntryPoint(text.VirtualAddress)
	return f
}

func run(t *testing.T, f *pefile.File, opts ...Option) *Result {
	t.Helper()
	res, err := RunFile(f, opts...)
	if err != nil {
		t.Fatalf("RunFile: %v", err)
	}
	return res
}

func TestHaltStopsExecution(t *testing.T) {
	var a visa.Assembler
	a.Halt()
	res := run(t, image(t, a.MustAssemble(), nil))
	if !res.Halted() {
		t.Fatalf("not halted: %v", res.Err)
	}
	if res.Steps != 1 {
		t.Errorf("steps = %d, want 1", res.Steps)
	}
}

func TestArithmeticAndTrace(t *testing.T) {
	var a visa.Assembler
	a.Movi(0, 40)
	a.Movi(1, 2)
	a.Add(0, 1) // R0 = 42
	a.Sys(7)    // trace (7, 42)
	a.Halt()
	res := run(t, image(t, a.MustAssemble(), nil))
	if !res.Halted() {
		t.Fatalf("fault: %v", res.Err)
	}
	want := Trace{{API: 7, Arg: 42}}
	if !res.Trace.Equal(want) {
		t.Errorf("trace = %v, want %v", res.Trace, want)
	}
}

func TestLoopCountsDown(t *testing.T) {
	var a visa.Assembler
	a.Movi(0, 3)
	a.Label("loop")
	a.Sys(1)
	a.Movi(0, 0) // reset arg; SYS clobbered R0 with the API result
	a.Addi(0, 1)
	a.Subi(1, 0) // no-op to vary code
	a.Subi(0, 1) // R0 = 0
	a.Addi(2, 1) // R2 counts iterations
	a.Movi(3, 3)
	a.Mov(4, 2)
	a.Sub(4, 3) // R4 = R2 - 3
	a.Jnz(4, "loop")
	a.Halt()
	res := run(t, image(t, a.MustAssemble(), nil))
	if !res.Halted() {
		t.Fatalf("fault: %v", res.Err)
	}
	if len(res.Trace) != 3 {
		t.Errorf("loop executed %d times, want 3", len(res.Trace))
	}
}

func TestMemoryLoadStore(t *testing.T) {
	data := []byte{10, 20, 30, 40}
	f := pefile.New()
	// Assemble after we know the data VA, so build sections first.
	text, err := f.AddSection(".text", make([]byte, 0x200), pefile.SecCharacteristicsText)
	if err != nil {
		t.Fatal(err)
	}
	dsec, err := f.AddSection(".data", data, pefile.SecCharacteristicsData)
	if err != nil {
		t.Fatal(err)
	}
	var a visa.Assembler
	a.Movi(1, int32(dsec.VirtualAddress))
	a.Loadb(0, 1, 2) // R0 = data[2] = 30
	a.Sys(9)
	a.Movi(0, 0x11223344)
	a.Storew(0, 1, 0)
	a.Loadw(2, 1, 0)
	a.Mov(0, 2)
	a.Sys(10)
	a.Halt()
	copy(text.Data, a.MustAssemble())
	f.SetEntryPoint(text.VirtualAddress)

	res := run(t, f)
	if !res.Halted() {
		t.Fatalf("fault: %v", res.Err)
	}
	want := Trace{{API: 9, Arg: 30}, {API: 10, Arg: 0x11223344}}
	if !res.Trace.Equal(want) {
		t.Errorf("trace = %v, want %v", res.Trace, want)
	}
}

func TestCallRetAndStack(t *testing.T) {
	var a visa.Assembler
	a.Movi(0, 5)
	a.Call("fn")
	a.Sys(2) // after return, R0 = apiResult from inside fn? No: fn leaves R0+1
	a.Halt()
	a.Label("fn")
	a.Addi(0, 1)
	a.Ret()
	res := run(t, image(t, a.MustAssemble(), nil))
	if !res.Halted() {
		t.Fatalf("fault: %v", res.Err)
	}
	want := Trace{{API: 2, Arg: 6}}
	if !res.Trace.Equal(want) {
		t.Errorf("trace = %v, want %v", res.Trace, want)
	}
}

func TestPushaPopaRestoresContext(t *testing.T) {
	var a visa.Assembler
	a.Movi(0, 111)
	a.Movi(5, 555)
	a.Pusha()
	a.Movi(0, 999) // clobber
	a.Movi(5, 888)
	a.Popa()
	a.Sys(3) // should see 111
	a.Mov(0, 5)
	a.Sys(4) // should see 555
	a.Halt()
	res := run(t, image(t, a.MustAssemble(), nil))
	if !res.Halted() {
		t.Fatalf("fault: %v", res.Err)
	}
	want := Trace{{API: 3, Arg: 111}, {API: 4, Arg: 555}}
	if !res.Trace.Equal(want) {
		t.Errorf("trace = %v, want %v", res.Trace, want)
	}
}

func TestAPIResultFeedsControlFlow(t *testing.T) {
	// Branch on a bit of the API result; both runs of an identical image
	// must take the same path (determinism).
	var a visa.Assembler
	a.Movi(0, 1)
	a.Sys(5)
	a.Andi(0, 1)
	a.Jz(0, "even")
	a.Sys(100)
	a.Jmp("end")
	a.Label("even")
	a.Sys(200)
	a.Label("end")
	a.Halt()
	img := image(t, a.MustAssemble(), nil)
	r1 := run(t, img)
	r2 := run(t, img)
	if !r1.Halted() || !r2.Halted() {
		t.Fatalf("faults: %v / %v", r1.Err, r2.Err)
	}
	if !r1.Trace.Equal(r2.Trace) {
		t.Errorf("nondeterministic traces: %v vs %v", r1.Trace, r2.Trace)
	}
	if len(r1.Trace) != 2 {
		t.Errorf("trace length = %d, want 2", len(r1.Trace))
	}
}

func TestSelfModifyingCode(t *testing.T) {
	// The program overwrites a HALT with a SYS by storing bytes into its own
	// code section — the capability the recovery module depends on.
	f := pefile.New()
	text, err := f.AddSection(".text", make([]byte, 0x200), pefile.SecCharacteristicsText)
	if err != nil {
		t.Fatal(err)
	}
	var a visa.Assembler
	a.Movi(1, int32(text.VirtualAddress)) // base of code
	// The patch target is instruction index 5 (offset 40): initially HALT.
	// Overwrite its opcode byte with SYS and its imm with 77.
	a.Movi(0, int32(visa.SYS))
	a.Storeb(0, 1, 40)
	a.Movi(0, 77)
	a.Storeb(0, 1, 44) // imm low byte
	a.Halt()           // placeholder at offset 40, gets patched before reach?
	// Execution order: the five instructions above run first; the patched
	// instruction at offset 40 is this HALT — but we already executed up to
	// it. Rebuild: patch a *later* slot instead.
	code := a.MustAssemble()
	// Append: after patching, fall through to offset 40 (the patched SYS),
	// then a real HALT at offset 48.
	code = code[:40]                                         // drop the placeholder HALT emitted above
	code = append(code, visa.Inst{Op: visa.HALT}.Bytes()...) // offset 40: patched to SYS 77
	code = append(code, visa.Inst{Op: visa.HALT}.Bytes()...) // offset 48: final HALT
	copy(text.Data, code)
	f.SetEntryPoint(text.VirtualAddress)

	res := run(t, f)
	if !res.Halted() {
		t.Fatalf("fault: %v", res.Err)
	}
	if len(res.Trace) != 1 || res.Trace[0].API != 77 {
		t.Errorf("trace = %v, want [77(...)]", res.Trace)
	}
}

func TestStepBudgetFault(t *testing.T) {
	var a visa.Assembler
	a.Label("spin")
	a.Jmp("spin")
	res := run(t, image(t, a.MustAssemble(), nil), WithMaxSteps(100))
	if res.Halted() {
		t.Fatal("infinite loop halted cleanly")
	}
	if !errors.Is(res.Err, ErrSteps) {
		t.Errorf("err = %v, want ErrSteps", res.Err)
	}
}

func TestMemoryFault(t *testing.T) {
	var a visa.Assembler
	a.Movi(1, 0x7FFFFFF0)
	a.Loadb(0, 1, 0)
	a.Halt()
	res := run(t, image(t, a.MustAssemble(), nil))
	if res.Halted() || !errors.Is(res.Err, ErrMemory) {
		t.Errorf("err = %v, want ErrMemory", res.Err)
	}
}

func TestStackUnderflow(t *testing.T) {
	var a visa.Assembler
	a.Pop(0)
	res := run(t, image(t, a.MustAssemble(), nil))
	if res.Halted() || !errors.Is(res.Err, ErrStack) {
		t.Errorf("err = %v, want ErrStack", res.Err)
	}
}

func TestDecodeFaultOnGarbageEntry(t *testing.T) {
	res := run(t, image(t, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, nil))
	if res.Halted() || !errors.Is(res.Err, ErrDecode) {
		t.Errorf("err = %v, want ErrDecode", res.Err)
	}
}

func TestPCOutsideImage(t *testing.T) {
	var a visa.Assembler
	a.Movi(0, 0x0FFFFFF8)
	a.Jmpr(0)
	res := run(t, image(t, a.MustAssemble(), nil))
	if res.Halted() || !errors.Is(res.Err, ErrPC) {
		t.Errorf("err = %v, want ErrPC", res.Err)
	}
}

func TestBehaviourPreserved(t *testing.T) {
	var a visa.Assembler
	a.Movi(0, 42)
	a.Sys(11)
	a.Halt()
	orig := image(t, a.MustAssemble(), nil).Bytes()

	t.Run("identical", func(t *testing.T) {
		ok, err := BehaviourPreserved(orig, orig)
		if err != nil || !ok {
			t.Errorf("ok=%v err=%v, want true,nil", ok, err)
		}
	})
	t.Run("different trace", func(t *testing.T) {
		var b visa.Assembler
		b.Movi(0, 43)
		b.Sys(11)
		b.Halt()
		mod := image(t, b.MustAssemble(), nil).Bytes()
		ok, err := BehaviourPreserved(orig, mod)
		if err != nil || ok {
			t.Errorf("ok=%v err=%v, want false,nil", ok, err)
		}
	})
	t.Run("modified faults", func(t *testing.T) {
		var b visa.Assembler
		b.Pop(0)
		mod := image(t, b.MustAssemble(), nil).Bytes()
		ok, err := BehaviourPreserved(orig, mod)
		if err != nil || ok {
			t.Errorf("ok=%v err=%v, want false,nil", ok, err)
		}
	})
	t.Run("original faults is an error", func(t *testing.T) {
		var b visa.Assembler
		b.Pop(0)
		bad := image(t, b.MustAssemble(), nil).Bytes()
		if _, err := BehaviourPreserved(bad, orig); err == nil {
			t.Error("want error when original cannot run")
		}
	})
}

func TestTraceStringAndEqual(t *testing.T) {
	tr := Trace{{API: 1, Arg: 2}}
	if !strings.Contains(tr.String(), "1(0x2)") {
		t.Errorf("String = %q", tr.String())
	}
	if tr.Equal(Trace{}) {
		t.Error("unequal lengths reported equal")
	}
	if tr.Equal(Trace{{API: 1, Arg: 3}}) {
		t.Error("different events reported equal")
	}
}
