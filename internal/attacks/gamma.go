package attacks

import (
	"fmt"
	"math/rand"
	"sort"

	"mpass/internal/core"
	"mpass/internal/pefile"
)

// GAMMA is the genetic benign-injection baseline (Demetrio et al.). A
// genome selects which harvested benign sections to inject and how much
// benign padding to append; a small population evolves under hard-label
// fitness (bypass beats detection; among detected candidates, smaller is
// fitter, matching the published size-penalty λ). Every fitness evaluation
// costs one query, which is why GAMMA's AVQ is high, and the injected
// sections are why its APR dwarfs everyone else's (Table III: ~4000%).
type GAMMA struct {
	cfg        Config
	Population int
	MutateProb float64
	// harvest is the benign-section pool genomes index into.
	harvest [][]byte
}

// NewGAMMA harvests donor sections and builds the baseline.
func NewGAMMA(cfg Config) (*GAMMA, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &GAMMA{cfg: cfg, Population: 8, MutateProb: 0.3}
	for _, d := range cfg.Donors {
		f, err := pefile.Parse(d)
		if err != nil {
			continue // non-PE donor content is still usable by others
		}
		for _, s := range f.Sections {
			if len(s.Data) > 0 {
				g.harvest = append(g.harvest, append([]byte(nil), s.Data...))
			}
		}
	}
	if len(g.harvest) == 0 {
		return nil, fmt.Errorf("gamma: no benign sections harvested from donors")
	}
	return g, nil
}

// Name implements Attack.
func (g *GAMMA) Name() string { return "GAMMA" }

// genome encodes one candidate: which harvested sections to inject (by
// repetition-allowed index) and the padding length.
type genome struct {
	inject  []int
	padding int
}

func (g *GAMMA) randomGenome(rng *rand.Rand) genome {
	n := 2 + rng.Intn(10)
	ge := genome{padding: rng.Intn(8192)}
	for i := 0; i < n; i++ {
		ge.inject = append(ge.inject, rng.Intn(len(g.harvest)))
	}
	return ge
}

func (g *GAMMA) mutate(ge genome, rng *rand.Rand) genome {
	out := genome{inject: append([]int(nil), ge.inject...), padding: ge.padding}
	switch rng.Intn(3) {
	case 0: // add an injection
		out.inject = append(out.inject, rng.Intn(len(g.harvest)))
	case 1: // drop one
		if len(out.inject) > 1 {
			i := rng.Intn(len(out.inject))
			out.inject = append(out.inject[:i], out.inject[i+1:]...)
		}
	case 2: // re-draw padding
		out.padding = rng.Intn(8192)
	}
	return out
}

func crossover(a, b genome, rng *rand.Rand) genome {
	out := genome{padding: a.padding}
	if rng.Intn(2) == 0 {
		out.padding = b.padding
	}
	cut := 0
	if len(a.inject) > 0 {
		cut = rng.Intn(len(a.inject) + 1)
	}
	out.inject = append(out.inject, a.inject[:cut]...)
	if len(b.inject) > 0 {
		out.inject = append(out.inject, b.inject[rng.Intn(len(b.inject)):]...)
	}
	if len(out.inject) == 0 {
		out.inject = []int{rng.Intn(1 << 30)}
	}
	return out
}

// render applies a genome to the pristine sample.
func (g *GAMMA) render(original []byte, ge genome, rng *rand.Rand) ([]byte, error) {
	f, err := pefile.Parse(original)
	if err != nil {
		return nil, fmt.Errorf("gamma: %w", err)
	}
	for _, idx := range ge.inject {
		data := g.harvest[idx%len(g.harvest)]
		chars := uint32(pefile.SecCharacteristicsRsrc)
		if idx%2 == 1 {
			chars = pefile.SecCharacteristicsData
		}
		if _, err := f.AddSection(randomSectionName(f, rng), data, chars); err != nil {
			return nil, err
		}
	}
	if ge.padding > 0 {
		f.AppendOverlay(donorBytes(g.cfg.Donors, rng, ge.padding))
	}
	return f.Bytes(), nil
}

// Run implements Attack.
func (g *GAMMA) Run(original []byte, target core.Oracle) (*core.Result, error) {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ (int64(len(original)) << 2)))
	res := &core.Result{}

	type scored struct {
		ge   genome
		size int
	}
	pop := make([]scored, 0, g.Population)

	evaluate := func(ge genome) (bypassed bool, raw []byte, err error) {
		raw, err = g.render(original, ge, rng)
		if err != nil {
			return false, nil, err
		}
		res.Queries++
		return !target.Detected(raw), raw, nil
	}

	// Initial population.
	for i := 0; i < g.Population && res.Queries < g.cfg.MaxQueries; i++ {
		ge := g.randomGenome(rng)
		ok, raw, err := evaluate(ge)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Success, res.AE = true, raw
			return res, nil
		}
		pop = append(pop, scored{ge: ge, size: len(raw)})
	}

	for res.Queries < g.cfg.MaxQueries {
		res.Rounds++
		// Elitism by size (all current members are detected; smaller is
		// fitter under the size penalty).
		sort.Slice(pop, func(i, j int) bool { return pop[i].size < pop[j].size })
		elite := pop
		if len(elite) > g.Population/2 {
			elite = elite[:g.Population/2]
		}
		var next []scored
		next = append(next, elite...)
		for len(next) < g.Population && res.Queries < g.cfg.MaxQueries {
			a := elite[rng.Intn(len(elite))].ge
			b := elite[rng.Intn(len(elite))].ge
			child := crossover(a, b, rng)
			if rng.Float64() < g.MutateProb {
				child = g.mutate(child, rng)
			}
			ok, raw, err := evaluate(child)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Success, res.AE = true, raw
				return res, nil
			}
			next = append(next, scored{ge: child, size: len(raw)})
		}
		pop = next
	}
	return res, nil
}
