package attacks

import (
	"mpass/internal/core"
)

// MPass adapts the core attacker to the common Attack interface so the
// evaluation grid can drive all five attacks uniformly.
type MPass struct {
	Attacker *core.Attacker
}

// NewMPass wraps a configured core attacker.
func NewMPass(a *core.Attacker) *MPass { return &MPass{Attacker: a} }

// Name implements Attack.
func (m *MPass) Name() string { return "MPass" }

// Run implements Attack.
func (m *MPass) Run(original []byte, target core.Oracle) (*core.Result, error) {
	return m.Attacker.Attack(original, target)
}
