package attacks

import (
	"fmt"
	"math/rand"

	"mpass/internal/core"
	"mpass/internal/nn"
	"mpass/internal/pefile"
)

// MalRNN is the language-model appending baseline (Ebrahimi et al.): a byte
// LM trained on benign programs generates payloads that are appended to the
// malware, growing geometrically until the target stops detecting it or the
// query budget runs out. No header or section-table change is made — the
// attack surface is purely the tail, the narrowest of all baselines.
type MalRNN struct {
	cfg Config
	lm  *nn.ByteLM
	// InitialLen is the first payload size; each retry doubles it up to
	// MaxPayload.
	InitialLen int
	MaxPayload int
	// Temperature controls LM sampling.
	Temperature float64
}

// TrainMalRNNLM fits the byte language model on the donor pool. It is
// separated from NewMalRNN so one trained LM can be shared across attack
// instances (training is the expensive part).
func TrainMalRNNLM(donors [][]byte, epochs int, seed int64) (*nn.ByteLM, error) {
	if len(donors) == 0 {
		return nil, fmt.Errorf("malrnn: no donor programs to train on")
	}
	lm := nn.NewByteLM(8, 24, seed)
	opt := nn.NewAdam(5e-3)
	rng := rand.New(rand.NewSource(seed))
	const chunk = 96
	for e := 0; e < epochs; e++ {
		for range donors {
			d := donors[rng.Intn(len(donors))]
			if len(d) <= chunk {
				continue
			}
			off := rng.Intn(len(d) - chunk)
			if _, err := lm.TrainChunk(d[off:off+chunk], opt); err != nil {
				return nil, err
			}
		}
	}
	return lm, nil
}

// NewMalRNN builds the baseline around a trained LM.
func NewMalRNN(cfg Config, lm *nn.ByteLM) (*MalRNN, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if lm == nil {
		return nil, fmt.Errorf("malrnn: nil language model")
	}
	return &MalRNN{
		cfg: cfg, lm: lm,
		InitialLen: 1024, MaxPayload: 16384, Temperature: 0.8,
	}, nil
}

// Name implements Attack.
func (m *MalRNN) Name() string { return "MalRNN" }

// Run implements Attack.
func (m *MalRNN) Run(original []byte, target core.Oracle) (*core.Result, error) {
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ (int64(len(original)) << 3)))
	res := &core.Result{}

	f, err := pefile.Parse(original)
	if err != nil {
		return nil, fmt.Errorf("malrnn: %w", err)
	}
	// Prime the LM with the sample's trailing bytes, as the published
	// attack conditions generation on the file context.
	prime := original
	if len(prime) > 64 {
		prime = prime[len(prime)-64:]
	}

	size := m.InitialLen
	total := 0
	for res.Queries < m.cfg.MaxQueries {
		res.Rounds++
		payload := m.lm.Generate(prime, size, m.Temperature, rng)
		f.AppendOverlay(payload)
		total += size
		raw := f.Bytes()
		res.Queries++
		if !target.Detected(raw) {
			res.Success = true
			res.AE = raw
			return res, nil
		}
		if size < m.MaxPayload {
			size *= 2
		}
		if total > 4*m.MaxPayload {
			// Appending clearly is not working; restart with fresh noise.
			if f, err = pefile.Parse(original); err != nil {
				return nil, err
			}
			total = 0
			size = m.InitialLen
		}
	}
	return res, nil
}
