package attacks

import (
	"strings"
	"sync"
	"testing"

	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/nn"
	"mpass/internal/pefile"
	"mpass/internal/sandbox"
)

var (
	fixOnce sync.Once
	donors  [][]byte
	victim  []byte
	lm      *nn.ByteLM
	lmErr   error
)

func fixtures(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		g := corpus.NewGenerator(101)
		for i := 0; i < 8; i++ {
			donors = append(donors, g.Sample(corpus.Benign).Raw)
		}
		victim = g.Sample(corpus.Malware).Raw
		lm, lmErr = TrainMalRNNLM(donors, 2, 7)
	})
	if lmErr != nil {
		t.Fatalf("LM training: %v", lmErr)
	}
}

func config() Config { return Config{Donors: donors, MaxQueries: 60, Seed: 3} }

// sizeOracle detects the sample until its size doubles — every append-style
// baseline can beat it within budget.
type sizeOracle struct{ base int }

func (o sizeOracle) Name() string             { return "size" }
func (o sizeOracle) Detected(raw []byte) bool { return len(raw) < 2*o.base }

// alwaysOracle never lets anything through.
type alwaysOracle struct{}

func (alwaysOracle) Name() string         { return "always" }
func (alwaysOracle) Detected([]byte) bool { return true }

// sectionCountOracle flags files with few sections — GAMMA's injection and
// the add-section action beat it; pure appending does not.
type sectionCountOracle struct{}

func (sectionCountOracle) Name() string { return "sections" }
func (sectionCountOracle) Detected(raw []byte) bool {
	f, err := pefile.Parse(raw)
	if err != nil {
		return true
	}
	return len(f.Sections) < 7
}

func allAttacks(t *testing.T) []Attack {
	t.Helper()
	fixtures(t)
	rla, err := NewRLA(config())
	if err != nil {
		t.Fatal(err)
	}
	mab, err := NewMAB(config())
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := NewGAMMA(config())
	if err != nil {
		t.Fatal(err)
	}
	malrnn, err := NewMalRNN(config(), lm)
	if err != nil {
		t.Fatal(err)
	}
	return []Attack{rla, mab, gamma, malrnn}
}

func TestBaselinesBeatSizeOracle(t *testing.T) {
	for _, atk := range allAttacks(t) {
		t.Run(atk.Name(), func(t *testing.T) {
			res, err := atk.Run(victim, sizeOracle{base: len(victim)})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Fatalf("failed in %d queries", res.Queries)
			}
			if res.Queries <= 0 || res.Queries > 60 {
				t.Errorf("queries = %d", res.Queries)
			}
			if _, err := pefile.Parse(res.AE); err != nil {
				t.Errorf("AE invalid: %v", err)
			}
		})
	}
}

func TestBaselinesPreserveFunctionality(t *testing.T) {
	for _, atk := range allAttacks(t) {
		t.Run(atk.Name(), func(t *testing.T) {
			res, err := atk.Run(victim, sizeOracle{base: len(victim)})
			if err != nil || !res.Success {
				t.Fatalf("res=%+v err=%v", res, err)
			}
			ok, err := sandbox.BehaviourPreserved(victim, res.AE)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Error("baseline AE broke behaviour")
			}
		})
	}
}

func TestBaselinesRespectBudget(t *testing.T) {
	for _, atk := range allAttacks(t) {
		t.Run(atk.Name(), func(t *testing.T) {
			res, err := atk.Run(victim, alwaysOracle{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Success {
				t.Error("success against always-detect oracle")
			}
			if res.Queries != 60 {
				t.Errorf("queries = %d, want exactly the budget 60", res.Queries)
			}
		})
	}
}

func TestBaselinesNeverTouchCodeOrData(t *testing.T) {
	// The defining restriction: original .text and .data bytes survive in
	// every baseline AE.
	origF, err := pefile.Parse(victim)
	if err != nil {
		t.Fatal(err)
	}
	for _, atk := range allAttacks(t) {
		t.Run(atk.Name(), func(t *testing.T) {
			res, err := atk.Run(victim, sizeOracle{base: len(victim)})
			if err != nil || !res.Success {
				t.Fatalf("res=%+v err=%v", res, err)
			}
			aeF, err := pefile.Parse(res.AE)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{".text", ".data"} {
				os := origF.SectionByName(name)
				// Sections may be renamed (RLA/MAB rename action) — locate
				// by virtual address instead.
				as := aeF.SectionAt(os.VirtualAddress)
				if as == nil {
					t.Fatalf("%s section vanished", name)
				}
				for i := range os.Data {
					if os.Data[i] != as.Data[i] {
						t.Fatalf("%s modified at offset %d", name, i)
					}
				}
			}
		})
	}
}

func TestGAMMAInjectsSections(t *testing.T) {
	fixtures(t)
	gamma, err := NewGAMMA(config())
	if err != nil {
		t.Fatal(err)
	}
	res, err := gamma.Run(victim, sectionCountOracle{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("GAMMA could not satisfy the section-count oracle")
	}
	f, _ := pefile.Parse(res.AE)
	if len(f.Sections) < 7 {
		t.Errorf("AE has %d sections", len(f.Sections))
	}
}

func TestMalRNNAppendsOnly(t *testing.T) {
	fixtures(t)
	m, err := NewMalRNN(config(), lm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(victim, sizeOracle{base: len(victim)})
	if err != nil || !res.Success {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	f, _ := pefile.Parse(res.AE)
	of, _ := pefile.Parse(victim)
	if len(f.Sections) != len(of.Sections) {
		t.Errorf("MalRNN changed the section table: %d vs %d sections",
			len(f.Sections), len(of.Sections))
	}
	if len(f.Overlay) == 0 {
		t.Error("MalRNN produced no overlay payload")
	}
}

func TestConfigValidation(t *testing.T) {
	fixtures(t)
	bad := Config{Donors: nil, MaxQueries: 10}
	if _, err := NewRLA(bad); err == nil {
		t.Error("RLA accepted empty donors")
	}
	bad2 := Config{Donors: donors, MaxQueries: 0}
	if _, err := NewMAB(bad2); err == nil {
		t.Error("MAB accepted zero budget")
	}
	if _, err := NewMalRNN(config(), nil); err == nil {
		t.Error("MalRNN accepted nil LM")
	}
	if _, err := NewGAMMA(Config{Donors: [][]byte{[]byte("not a pe")}, MaxQueries: 5}); err == nil {
		t.Error("GAMMA accepted donors with no harvestable sections")
	}
}

func TestAttackNames(t *testing.T) {
	names := map[string]bool{}
	for _, atk := range allAttacks(t) {
		names[atk.Name()] = true
	}
	for _, want := range []string{"RLA", "MAB", "GAMMA", "MalRNN"} {
		if !names[want] {
			t.Errorf("missing attack %q (have %v)", want, names)
		}
	}
}

func TestMPassAdapter(t *testing.T) {
	fixtures(t)
	cfg := core.DefaultConfig(nil, donors)
	cfg.SkipOptimize = true
	cfg.MaxQueries = 5
	atk, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp := NewMPass(atk)
	if mp.Name() != "MPass" {
		t.Errorf("name = %q", mp.Name())
	}
	res, err := mp.Run(victim, sizeOracle{base: len(victim)})
	if err != nil {
		t.Fatal(err)
	}
	// MPass roughly doubles the file (keys + stub), so the size oracle may
	// or may not trip; just check the adapter plumbs through.
	if res.Queries == 0 {
		t.Error("no queries made through adapter")
	}
	if !strings.Contains("MPass", mp.Name()) {
		t.Error("unexpected name")
	}
}
