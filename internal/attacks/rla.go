package attacks

import (
	"fmt"
	"math/rand"

	"mpass/internal/core"
	"mpass/internal/pefile"
)

// RLA is the RL-Attack baseline: episodic tabular Q-learning over the
// mutation space. Each episode starts from the pristine malware, applies up
// to EpisodeLen mutations, and queries the target after every mutation; a
// bypass terminates with reward 1. Q-values persist across episodes of the
// same sample, so later episodes exploit what earlier ones learned — but
// every step costs a query, which is why RLA's AVQ is the highest of all
// baselines, exactly as in Table II.
type RLA struct {
	cfg        Config
	EpisodeLen int
	Epsilon    float64
	Alpha      float64 // learning rate
	Gamma      float64 // discount
}

// NewRLA builds the baseline with the published tool's defaults. Unlike the
// other baselines, RL-Attack's append actions use *random* payload bytes
// (its gym-malware action set), not harvested benign content — one reason
// the paper finds it the weakest attack.
func NewRLA(cfg Config) (*RLA, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x524C41))
	pool := make([][]byte, 4)
	for i := range pool {
		b := make([]byte, 8192)
		rng.Read(b)
		pool[i] = b
	}
	cfg.Donors = pool
	return &RLA{cfg: cfg, EpisodeLen: 8, Epsilon: 0.3, Alpha: 0.5, Gamma: 0.9}, nil
}

// Name implements Attack.
func (r *RLA) Name() string { return "RLA" }

// state buckets the observable file structure, the tabular stand-in for
// RL-Attack's hand-crafted feature state.
func rlaState(f *pefile.File, step int) int {
	nSec := len(f.Sections)
	if nSec > 7 {
		nSec = 7
	}
	ov := 0
	switch {
	case len(f.Overlay) == 0:
	case len(f.Overlay) < 1024:
		ov = 1
	default:
		ov = 2
	}
	return (step*8+nSec)*3 + ov
}

// Run implements Attack.
func (r *RLA) Run(original []byte, target core.Oracle) (*core.Result, error) {
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(len(original))))
	q := make(map[[2]int]float64) // (state, action) -> value
	res := &core.Result{}

	bestQ := func(s int) (int, float64) {
		bi, bv := 0, q[[2]int{s, 0}]
		for a := 1; a < numActions; a++ {
			if v := q[[2]int{s, a}]; v > bv {
				bi, bv = a, v
			}
		}
		return bi, bv
	}

	for res.Queries < r.cfg.MaxQueries {
		res.Rounds++
		f, err := pefile.Parse(original)
		if err != nil {
			return nil, fmt.Errorf("rla: %w", err)
		}
		for step := 0; step < r.EpisodeLen && res.Queries < r.cfg.MaxQueries; step++ {
			s := rlaState(f, step)
			var a int
			if rng.Float64() < r.Epsilon {
				a = rng.Intn(numActions)
			} else {
				a, _ = bestQ(s)
			}
			applyAction(a, f, r.cfg.Donors, rng)
			raw := f.Bytes()
			res.Queries++
			detected := target.Detected(raw)

			reward := -0.05
			if !detected {
				reward = 1
			}
			s2 := rlaState(f, step+1)
			_, nextV := bestQ(s2)
			key := [2]int{s, a}
			q[key] += r.Alpha * (reward + r.Gamma*nextV - q[key])

			if !detected {
				res.Success = true
				res.AE = raw
				return res, nil
			}
		}
	}
	return res, nil
}
