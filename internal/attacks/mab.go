package attacks

import (
	"fmt"
	"math"
	"math/rand"

	"mpass/internal/core"
	"mpass/internal/pefile"
)

// MAB is the MAB-Malware baseline: a Thompson-sampling multi-armed bandit
// over the mutation space. Unlike RLA it is stateless across steps — each
// pull samples an action from the Beta posteriors, applies it to the
// current working candidate, and queries. Rewards propagate to the pulled
// arm; a detected candidate occasionally resets to the pristine sample so a
// bad mutation path cannot poison the whole budget. This mirrors the
// published tool's behaviour of being markedly more query-efficient than
// RL-Attack (Table II) while still an order of magnitude costlier than
// MPass.
type MAB struct {
	cfg       Config
	ResetProb float64
}

// NewMAB builds the baseline.
func NewMAB(cfg Config) (*MAB, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &MAB{cfg: cfg, ResetProb: 0.15}, nil
}

// Name implements Attack.
func (m *MAB) Name() string { return "MAB" }

// betaSample draws from Beta(a, b) via two gamma draws.
func betaSample(rng *rand.Rand, a, b float64) float64 {
	x := gammaSample(rng, a)
	y := gammaSample(rng, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia–Tsang for
// shape >= 1 and the boost transform below it.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Run implements Attack.
func (m *MAB) Run(original []byte, target core.Oracle) (*core.Result, error) {
	rng := rand.New(rand.NewSource(m.cfg.Seed ^ (int64(len(original)) << 1)))
	alpha := make([]float64, numActions)
	beta := make([]float64, numActions)
	for i := range alpha {
		alpha[i], beta[i] = 1, 1
	}
	res := &core.Result{}

	f, err := pefile.Parse(original)
	if err != nil {
		return nil, fmt.Errorf("mab: %w", err)
	}
	for res.Queries < m.cfg.MaxQueries {
		res.Rounds++
		// Thompson sampling: pull the arm with the highest posterior draw.
		arm, best := 0, -1.0
		for a := 0; a < numActions; a++ {
			if v := betaSample(rng, alpha[a], beta[a]); v > best {
				arm, best = a, v
			}
		}
		applyAction(arm, f, m.cfg.Donors, rng)
		raw := f.Bytes()
		res.Queries++
		if !target.Detected(raw) {
			alpha[arm]++
			res.Success = true
			res.AE = raw
			return res, nil
		}
		beta[arm]++
		if rng.Float64() < m.ResetProb {
			if f, err = pefile.Parse(original); err != nil {
				return nil, fmt.Errorf("mab: %w", err)
			}
		}
	}
	return res, nil
}
