// Package attacks reimplements the four state-of-the-art black-box
// baselines the paper compares against (§IV "Datasets and baselines"):
//
//   - RLA — RL-Attack (Anderson et al., Black Hat 2017): tabular
//     Q-learning over functionality-safe PE mutations.
//   - MAB — MAB-Malware (Song et al., AsiaCCS 2022): Thompson-sampling
//     multi-armed bandit over the same mutation space.
//   - GAMMA — (Demetrio et al., TIFS 2021): genetic optimization that
//     injects benign sections and padding.
//   - MalRNN — (Ebrahimi et al. 2020): appends payloads sampled from a
//     byte-level language model trained on benign programs.
//
// All baselines share the defining restriction the paper exploits: they
// only apply transformations that are safe *without* a recovery mechanism —
// header edits, section additions, and tail appends — and never touch code
// or data section contents.
package attacks

import (
	"fmt"
	"math/rand"

	"mpass/internal/core"
	"mpass/internal/pefile"
)

// Attack is the common interface the evaluation harness drives. MPass and
// every baseline implement it.
type Attack interface {
	Name() string
	Run(original []byte, target core.Oracle) (*core.Result, error)
}

// Config carries what every baseline needs.
type Config struct {
	// Donors is the benign-content pool mutations draw from. The published
	// baseline tools ship with a small payload set; keep this modest to
	// stay faithful (MPass gets its own, larger pool).
	Donors [][]byte
	// MaxQueries is the per-sample hard-label query budget.
	MaxQueries int
	// Seed drives all attack randomness.
	Seed int64
}

func (c Config) validate() error {
	if len(c.Donors) == 0 {
		return fmt.Errorf("attacks: empty donor pool")
	}
	if c.MaxQueries <= 0 {
		return fmt.Errorf("attacks: non-positive query budget")
	}
	return nil
}

// donorBytes returns n bytes from a random donor at a random offset.
func donorBytes(donors [][]byte, rng *rand.Rand, n int) []byte {
	d := donors[rng.Intn(len(donors))]
	out := make([]byte, n)
	off := rng.Intn(len(d))
	for i := range out {
		out[i] = d[(off+i)%len(d)]
	}
	return out
}

// The shared mutation space: every entry preserves functionality trivially
// (no code/data content is touched), mirroring the action sets of RL-Attack
// and MAB-Malware.
const numActions = 6

// applyAction mutates f in place with action id a.
func applyAction(a int, f *pefile.File, donors [][]byte, rng *rand.Rand) {
	switch a {
	case 0: // append benign bytes to the overlay
		f.AppendOverlay(donorBytes(donors, rng, 1024+rng.Intn(3072)))
	case 1: // add a new section of benign content
		name := randomSectionName(f, rng)
		data := donorBytes(donors, rng, 1024+rng.Intn(3072))
		chars := uint32(pefile.SecCharacteristicsRsrc)
		if rng.Intn(2) == 0 {
			chars = pefile.SecCharacteristicsData
		}
		// Name collisions are avoided by randomSectionName; size is
		// generator-bounded, so the error path is impossible here.
		if _, err := f.AddSection(name, data, chars); err != nil {
			panic(err)
		}
	case 2: // randomize the build timestamp
		f.SetTimestamp(uint32(rng.Int31()))
	case 3: // rename a random section
		if len(f.Sections) > 0 {
			s := f.Sections[rng.Intn(len(f.Sections))]
			_ = f.RenameSection(s.Name, randomSectionName(f, rng))
		}
	case 4: // append zero padding to the overlay
		f.AppendOverlay(make([]byte, 512+rng.Intn(1024)))
	case 5: // grow an existing benign-content section
		for _, s := range f.Sections {
			if s.Characteristics == pefile.SecCharacteristicsRsrc {
				s.Data = append(s.Data, donorBytes(donors, rng, 1024+rng.Intn(2048))...)
				s.VirtualSize = uint32(len(s.Data))
				f.Layout()
				return
			}
		}
		f.AppendOverlay(donorBytes(donors, rng, 1024))
	}
}

func randomSectionName(f *pefile.File, rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	for {
		b := []byte{'.', 0, 0, 0, 0}
		for i := 1; i < len(b); i++ {
			b[i] = letters[rng.Intn(len(letters))]
		}
		if f.SectionByName(string(b)) == nil {
			return string(b)
		}
	}
}
