// Request proxying: the routing decision for a scan is its content
// SHA-256, so every upload is read and hashed *before* a replica is
// chosen. Small bodies stay in memory; large or unknown-length ones spool
// to a temp file while the hash accumulates incrementally, keeping gateway
// memory O(MaxBufferBytes) per request at any upload size. Both forms
// replay cheaply, which is what makes the retry-once-after-replica-loss
// guarantee safe: the second attempt re-sends identical bytes to the
// surviving owner of the key.
package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"time"
)

// payload is one upload, fully received and hashed, replayable per attempt.
type payload struct {
	sum  [32]byte
	size int64
	mem  []byte   // whole body, when it fit in MaxBufferBytes
	file *os.File // else the spool file holding the whole body
}

// reader returns a fresh reader over the whole body for one forward
// attempt. Spooled payloads read through a SectionReader, so attempts
// never disturb each other's offsets.
func (p *payload) reader() io.Reader {
	if p.file != nil {
		return io.NewSectionReader(p.file, 0, p.size)
	}
	return bytes.NewReader(p.mem)
}

// cleanup releases the spool file, if any. Idempotent: error paths inside
// readPayload clean up eagerly, and the handlers' deferred cleanup must
// then find nothing left to do rather than double-close the file.
func (p *payload) cleanup() {
	if p.file != nil {
		name := p.file.Name()
		p.file.Close()
		os.Remove(name)
		p.file = nil
	}
}

// errBodyTooLarge maps to 413.
var errBodyTooLarge = errors.New("gateway: body exceeds the configured cap")

// readPayload receives and hashes the upload. The incremental hash is fed
// first by the in-memory prefix, then — if the body outgrows
// MaxBufferBytes — by the copy loop spilling into the spool file, so no
// path ever holds more than MaxBufferBytes plus a copy buffer in memory.
func (g *Gateway) readPayload(r *http.Request) (*payload, error) {
	h := sha256.New()
	// +1 beyond the cap distinguishes "exactly at the cap" from "over it".
	lr := io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1)
	mem, err := io.ReadAll(io.LimitReader(lr, g.cfg.MaxBufferBytes+1))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	h.Write(mem)
	if int64(len(mem)) <= g.cfg.MaxBufferBytes {
		if int64(len(mem)) > g.cfg.MaxBodyBytes {
			return nil, errBodyTooLarge
		}
		p := &payload{size: int64(len(mem)), mem: mem}
		h.Sum(p.sum[:0])
		return p, nil
	}
	// Body outgrew the buffer: spool it. The file receives the prefix plus
	// the remainder, so it holds the complete body for replay.
	f, err := os.CreateTemp(g.cfg.SpoolDir, "mpass-gateway-*.spool")
	if err != nil {
		return nil, fmt.Errorf("spooling body: %w", err)
	}
	p := &payload{file: f}
	if _, err := f.Write(mem); err != nil {
		p.cleanup()
		return nil, fmt.Errorf("spooling body: %w", err)
	}
	rest, err := io.Copy(io.MultiWriter(f, h), lr)
	if err != nil {
		p.cleanup()
		return nil, fmt.Errorf("spooling body: %w", err)
	}
	p.size = int64(len(mem)) + rest
	if p.size > g.cfg.MaxBodyBytes {
		p.cleanup()
		return nil, errBodyTooLarge
	}
	h.Sum(p.sum[:0])
	g.metrics.ScansSpooled.Add(1)
	g.metrics.SpooledBytes.Add(p.size)
	return p, nil
}

// authHeader carries the client's tenant credential so every replica
// attempt — including the retry onto a rebuilt ring — presents the same
// identity. The gateway never authenticates itself; replicas own the
// allowlist, the gateway just relays the key and the 401/429 verdicts.
type authHeader struct {
	bearer string // Authorization header, verbatim
	apiKey string // X-API-Key header
}

func authFrom(r *http.Request) authHeader {
	return authHeader{
		bearer: r.Header.Get("Authorization"),
		apiKey: r.Header.Get("X-API-Key"),
	}
}

func (a authHeader) apply(h http.Header) {
	if a.bearer != "" {
		h.Set("Authorization", a.bearer)
	}
	if a.apiKey != "" {
		h.Set("X-API-Key", a.apiKey)
	}
}

// forward sends one attempt of the payload to a replica endpoint.
func (g *Gateway) forward(ctx context.Context, rep *replica, path, query string, p *payload, auth authHeader) (*http.Response, error) {
	url := rep.base + path
	if query != "" {
		url += "?" + query
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, p.reader())
	if err != nil {
		return nil, err
	}
	req.ContentLength = p.size
	req.Header.Set("Content-Type", "application/octet-stream")
	auth.apply(req.Header)
	return g.client.Do(req)
}

// relay copies a replica response through to the client verbatim (status,
// content type, body).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// retryAfter is the cluster-level form of the replica estimator: summed
// backlog across healthy replicas divided by the observed cluster
// completion rate, clamped to [1, 60] seconds — same shape, fleet-wide
// inputs.
func (g *Gateway) retryAfter(backlog int, completed int64) string {
	up := time.Since(g.started).Seconds()
	if up <= 0 || completed <= 0 {
		return "1"
	}
	rate := float64(completed) / up
	secs := int(math.Ceil(float64(backlog+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.Itoa(secs)
}

// clusterBacklogs sums the probed queue depths across healthy replicas.
func (g *Gateway) clusterBacklogs() (scanQueue, jobsPending int) {
	for _, rep := range g.replicas {
		if !rep.healthy.Load() {
			continue
		}
		st, _ := rep.status()
		scanQueue += st.ScanQueue
		jobsPending += st.JobsPending
	}
	return scanQueue, jobsPending
}

// retryAfterScan derives the cluster scan-shed hint.
func (g *Gateway) retryAfterScan() string {
	backlog, _ := g.clusterBacklogs()
	return g.retryAfter(backlog, g.metrics.ScansRouted.Load())
}

// retryAfterAttack derives the cluster attack-shed hint.
func (g *Gateway) retryAfterAttack() string {
	_, backlog := g.clusterBacklogs()
	return g.retryAfter(backlog, g.metrics.AttacksRouted.Load())
}

// retriable reports whether a forward error warrants the one retry on a
// surviving replica: transport-level failures yes, the caller's own
// deadline or disconnect no.
func retriable(ctx context.Context, err error) bool {
	return err != nil && ctx.Err() == nil
}

func (g *Gateway) handleScan(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	p, err := g.readPayload(r)
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", g.cfg.MaxBodyBytes))
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	defer p.cleanup()
	if p.size == 0 {
		writeError(w, http.StatusBadRequest, "empty body; POST the PE bytes")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	// Shard-affine placement: the ring snapshot taken here also answers the
	// retry target, so one request observes one consistent view even while
	// a probe rebuilds the published ring concurrently.
	rg := g.ring.Load()
	key := keyOf(p.sum)
	primary := rg.owner(key)
	if primary < 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy replicas")
		return
	}
	auth := authFrom(r)
	g.metrics.ScansRouted.Add(1)
	resp, err := g.forward(ctx, g.replicas[primary], "/v1/scan", r.URL.RawQuery, p, auth)
	if retriable(ctx, err) {
		// The owner vanished mid-request: mark it down (the prober will
		// bring it back), re-shard, and retry exactly once on the replica
		// that now owns the key. A second failure surfaces as 502 — never a
		// silent drop.
		g.markDown(primary)
		g.metrics.ScanRetries.Add(1)
		alt := rg.ownerExcluding(key, primary)
		if alt < 0 {
			g.metrics.ScansFailed.Add(1)
			writeError(w, http.StatusBadGateway, "no surviving replica for retry: "+err.Error())
			return
		}
		resp, err = g.forward(ctx, g.replicas[alt], "/v1/scan", r.URL.RawQuery, p, auth)
	}
	if err != nil {
		g.metrics.ScansFailed.Add(1)
		if ctx.Err() != nil {
			writeError(w, http.StatusGatewayTimeout, "scan timed out: "+err.Error())
			return
		}
		writeError(w, http.StatusBadGateway, "replica unreachable after retry: "+err.Error())
		return
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Replica-level shed becomes a cluster-level hint: the wait is
		// derived from the fleet's summed backlog, not one member's. A
		// longer replica hint survives — a tenant-quota 429 carries the
		// tenant's own bucket-refill wait, which no amount of fleet
		// capacity shortens.
		g.metrics.ScansShed.Add(1)
		resp.Header.Set("Retry-After", maxRetryAfter(resp.Header.Get("Retry-After"), g.retryAfterScan()))
	}
	relay(w, resp)
}

// maxRetryAfter keeps the stricter of the replica's own 429 hint and the
// cluster drain hint, floored at the minimum legal "1" when neither parses.
func maxRetryAfter(replica, cluster string) string {
	r, rerr := strconv.Atoi(replica)
	c, cerr := strconv.Atoi(cluster)
	switch {
	case rerr != nil && cerr != nil:
		return "1"
	case rerr != nil:
		return cluster
	case cerr != nil || r >= c:
		return replica
	}
	return cluster
}

// pickLeastLoaded returns the healthy replica with the lowest load
// (probed jobs_pending plus this gateway's in-flight submits), excluding
// one index (-1 excludes none). Ties break by index, so placement is
// deterministic given equal gauges.
func (g *Gateway) pickLeastLoaded(exclude int) int {
	best, bestLoad := -1, int64(math.MaxInt64)
	for i, rep := range g.replicas {
		if i == exclude || !rep.healthy.Load() {
			continue
		}
		if l := rep.load(); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// attackAccepted mirrors the replica's POST /v1/attack response document.
type attackAccepted struct {
	ID     string `json:"id"`
	Target string `json:"target"`
	Poll   string `json:"poll"`
}

func (g *Gateway) handleAttack(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "gateway draining")
		return
	}
	p, err := g.readPayload(r)
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d bytes", g.cfg.MaxBodyBytes))
		} else {
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	defer p.cleanup()

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()

	idx := g.pickLeastLoaded(-1)
	if idx < 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy replicas")
		return
	}
	auth := authFrom(r)
	resp, err := g.submitAttack(ctx, idx, r.URL.RawQuery, p, auth)
	if retriable(ctx, err) {
		g.markDown(idx)
		g.metrics.AttackRetries.Add(1)
		if alt := g.pickLeastLoaded(idx); alt >= 0 {
			resp, err = g.submitAttack(ctx, alt, r.URL.RawQuery, p, auth)
			idx = alt
		}
	}
	if err != nil {
		g.metrics.AttacksFailed.Add(1)
		writeError(w, http.StatusBadGateway, "replica unreachable after retry: "+err.Error())
		return
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		g.metrics.AttacksFailed.Add(1)
		writeError(w, http.StatusBadGateway, "reading replica response: "+rerr.Error())
		return
	}
	if resp.StatusCode != http.StatusAccepted {
		if resp.StatusCode == http.StatusTooManyRequests {
			g.metrics.AttacksShed.Add(1)
			w.Header().Set("Retry-After", maxRetryAfter(resp.Header.Get("Retry-After"), g.retryAfterAttack()))
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return
	}
	// Lift the replica-local job ID into the cluster namespace:
	// {replica}/{id}. GET /v1/jobs/{replica}/{id} then routes back to the
	// owning replica deterministically, with no gateway-side job table to
	// keep consistent.
	var acc attackAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		g.metrics.AttacksFailed.Add(1)
		writeError(w, http.StatusBadGateway, "decoding replica response: "+err.Error())
		return
	}
	rep := g.replicas[idx]
	g.metrics.AttacksRouted.Add(1)
	acc.ID = rep.name + "/" + acc.ID
	acc.Poll = "/v1/jobs/" + acc.ID
	writeJSON(w, http.StatusAccepted, acc)
}

// submitAttack posts one attack submission attempt, tracking the in-flight
// count the least-loaded picker reads.
func (g *Gateway) submitAttack(ctx context.Context, idx int, query string, p *payload, auth authHeader) (*http.Response, error) {
	rep := g.replicas[idx]
	rep.inflightAttacks.Add(1)
	defer rep.inflightAttacks.Add(-1)
	return g.forward(ctx, rep, "/v1/attack", query, p, auth)
}

func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	repName := r.PathValue("replica")
	id := r.PathValue("id")
	idx, ok := g.byName[repName]
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown replica %q in job id", repName))
		return
	}
	g.metrics.JobPolls.Add(1)
	rep := g.replicas[idx]
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	url := rep.base + "/v1/jobs/" + id
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		g.metrics.JobErrors.Add(1)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	authFrom(r).apply(req.Header)
	resp, err := g.client.Do(req)
	if err != nil {
		// Job results live on exactly one replica; if it is gone, the
		// result is gone with it. Say so instead of pretending otherwise.
		g.metrics.JobErrors.Add(1)
		if rep.healthy.Load() {
			g.markDown(idx)
		}
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("replica %s unreachable; job results are replica-local and may be lost: %v", repName, err))
		return
	}
	relay(w, resp)
}
