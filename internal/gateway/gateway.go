package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mpass/internal/parallel"
	"mpass/internal/server"
)

// Config sizes the gateway. Zero values select the defaults noted per
// field; only Replicas is required.
type Config struct {
	// Replicas lists the mpassd fleet as host:port addresses. The address
	// doubles as the replica's stable identity: ring placement and the
	// cluster job-ID namespace ({replica}/{id}) both derive from it, so a
	// fleet description is the only coordination the cluster needs.
	Replicas []string

	// VNodes is how many ring points each replica contributes (default
	// 128). More points flatten the shard-size distribution; the ring test
	// pins the ≤ 1/N + ε movement bound this buys.
	VNodes int

	// Health checking. Each replica is probed on its own jittered interval
	// — uniform in [HealthInterval/2, 3·HealthInterval/2) from a seeded
	// stream, so a fleet of gateways never thunders in phase (default 1s).
	// A probe slower than HealthTimeout fails (default 2s). FailAfter
	// consecutive failures mark the replica down and re-shard the ring
	// (default 2); one success marks it back up. Transport errors on
	// proxied requests mark the replica down immediately — the prober is
	// the recovery path, not the only detector.
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	FailAfter      int

	// RequestTimeout bounds one proxied scan or attack submit, including
	// the single retry after a replica loss (default 30s).
	RequestTimeout time.Duration

	// Upload handling. Bodies are read fully (hashed incrementally) before
	// routing, because the route *is* the content hash. Bodies up to
	// MaxBufferBytes stay in memory (default 1 MiB); longer ones spool to a
	// temp file in SpoolDir (default os.TempDir()), keeping gateway memory
	// O(MaxBufferBytes) per request. MaxBodyBytes caps any upload (default
	// 64 MiB, matching mpassd's streaming cap; 413 beyond).
	MaxBufferBytes int64
	MaxBodyBytes   int64
	SpoolDir       string

	// MaxIdleConnsPerReplica sizes the pooled keep-alive connections kept
	// warm to each replica (default 64).
	MaxIdleConnsPerReplica int

	// Transport overrides the replica-facing RoundTripper (tests wire
	// faultinject.Transport here). Nil builds the pooled keep-alive
	// transport described above.
	Transport http.RoundTripper

	// Seed drives the health-probe jitter stream (default 1).
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 128
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBufferBytes <= 0 {
		c.MaxBufferBytes = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxIdleConnsPerReplica <= 0 {
		c.MaxIdleConnsPerReplica = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// replica is one fleet member's live state. The routing path reads only
// the healthy bit and the load gauges; the probe loop and the
// request-error fast path write them.
type replica struct {
	name string // host:port — ring identity and job-ID namespace prefix
	base string // http://host:port

	healthy atomic.Bool

	mu          sync.Mutex
	consecFails int                 //mpass:guardedby mu
	lastStatus  server.HealthStatus //mpass:guardedby mu — most recent decoded /healthz document
	lastProbe   time.Time           //mpass:guardedby mu

	// inflightAttacks counts attack submits this gateway currently has
	// outstanding against the replica — the freshness correction on top of
	// the probed jobs_pending gauge for least-loaded placement.
	inflightAttacks atomic.Int64
}

// status returns the last decoded health document and when it was probed.
func (r *replica) status() (server.HealthStatus, time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastStatus, r.lastProbe
}

// load is the least-loaded placement signal: probed pending attack jobs
// plus submits in flight from this gateway since the probe.
func (r *replica) load() int64 {
	r.mu.Lock()
	pending := int64(r.lastStatus.JobsPending)
	r.mu.Unlock()
	return pending + r.inflightAttacks.Load()
}

// Gateway fans one HTTP front over the replica fleet. Build with New,
// mount Handler, Close to stop the health prober.
type Gateway struct {
	cfg      Config
	replicas []*replica
	byName   map[string]int
	client   *http.Client

	ring   atomic.Pointer[ring]
	ringMu sync.Mutex // serializes rebuilds; lookups are lock-free

	metrics  Metrics
	probes   *parallel.Pool
	draining atomic.Bool
	started  time.Time
	mux      *http.ServeMux
}

// New validates cfg, builds the ring over the full fleet (replicas start
// presumed healthy; the first failed probe or proxied request corrects
// that within FailAfter probes), and starts the per-replica health loops.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway: no replicas configured")
	}
	cfg.fillDefaults()
	g := &Gateway{
		cfg:     cfg,
		byName:  make(map[string]int, len(cfg.Replicas)),
		started: time.Now(),
	}
	for i, addr := range cfg.Replicas {
		if addr == "" {
			return nil, fmt.Errorf("gateway: empty replica address at index %d", i)
		}
		if _, dup := g.byName[addr]; dup {
			return nil, fmt.Errorf("gateway: duplicate replica %q", addr)
		}
		r := &replica{name: addr, base: "http://" + addr}
		r.healthy.Store(true)
		g.byName[addr] = i
		g.replicas = append(g.replicas, r)
	}
	g.metrics.ReplicasTotal.Store(int64(len(g.replicas)))
	g.metrics.ReplicasHealthy.Store(int64(len(g.replicas)))

	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        cfg.MaxIdleConnsPerReplica * len(cfg.Replicas),
			MaxIdleConnsPerHost: cfg.MaxIdleConnsPerReplica,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	g.client = &http.Client{Transport: transport}

	g.rebuildRing()

	// One probe loop per replica, all on a bounded pool whose base context
	// is the gateway's lifetime: Close cancels it and every loop exits.
	g.probes = parallel.NewPool(len(g.replicas), len(g.replicas))
	for i := range g.replicas {
		idx := i
		if err := g.probes.TrySubmitCtx(func(ctx context.Context) {
			g.probeLoop(ctx, idx)
		}); err != nil {
			g.probes.Cancel()
			return nil, fmt.Errorf("gateway: starting health prober: %w", err)
		}
	}

	g.mux = http.NewServeMux()
	g.mux.HandleFunc("POST /v1/scan", g.handleScan)
	g.mux.HandleFunc("POST /v1/attack", g.handleAttack)
	g.mux.HandleFunc("GET /v1/jobs/{replica}/{id}", g.handleJob)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Handler returns the HTTP handler tree.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Metrics exposes the live gateway counter set (tests, embedding daemons).
func (g *Gateway) Metrics() *Metrics { return &g.metrics }

// Close stops accepting new work (503), cancels the health-probe loops,
// and waits for them to exit. The HTTP listener's own Shutdown remains the
// caller's job, mirroring server.Server.
func (g *Gateway) Close(ctx context.Context) error {
	if !g.draining.CompareAndSwap(false, true) {
		return nil
	}
	g.probes.Cancel()
	err := g.probes.Drain(ctx)
	if t, ok := g.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	return err
}

// healthyMembers snapshots the indices of replicas currently marked up.
func (g *Gateway) healthyMembers() []int {
	members := make([]int, 0, len(g.replicas))
	for i, r := range g.replicas {
		if r.healthy.Load() {
			members = append(members, i)
		}
	}
	return members
}

// rebuildRing publishes a fresh ring over the healthy set. Rebuilds are
// serialized so a probe success and a request-path failure interleaving
// cannot publish a ring older than the state both observed.
func (g *Gateway) rebuildRing() {
	g.ringMu.Lock()
	defer g.ringMu.Unlock()
	members := g.healthyMembers()
	names := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		names[i] = r.name
	}
	g.ring.Store(buildRing(members, names, g.cfg.VNodes))
	g.metrics.RingRebuilds.Add(1)
	g.metrics.ReplicasHealthy.Store(int64(len(members)))
}

// markDown records a replica failure (probe threshold crossed or a proxied
// request's transport error) and re-shards if it was up.
func (g *Gateway) markDown(i int) {
	r := g.replicas[i]
	if r.healthy.CompareAndSwap(true, false) {
		g.metrics.ReplicaDownEvents.Add(1)
		g.rebuildRing()
	}
}

// markUp records a successful probe and re-shards if the replica was down.
func (g *Gateway) markUp(i int) {
	r := g.replicas[i]
	if r.healthy.CompareAndSwap(false, true) {
		g.metrics.ReplicaUpEvents.Add(1)
		g.rebuildRing()
	}
}

// probeLoop drives one replica's health checks until the gateway closes.
// The interval is jittered per iteration from a seeded stream: uniform in
// [interval/2, 3·interval/2), so probes across replicas (and across
// gateway processes started with different seeds) decorrelate.
func (g *Gateway) probeLoop(ctx context.Context, i int) {
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(i)*7919))
	timer := time.NewTimer(0) // first probe immediately
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		g.probe(ctx, i)
		jittered := g.cfg.HealthInterval/2 +
			time.Duration(rng.Int63n(int64(g.cfg.HealthInterval)))
		timer.Reset(jittered)
	}
}

// probe runs one health check: GET /healthz, decode the enriched
// HealthStatus, update the replica's gauges, and flip its up/down state
// through the FailAfter ladder. A 503 (draining replica) counts as down
// for routing — a draining mpassd rejects new work — but its decoded
// status is still recorded.
func (g *Gateway) probe(ctx context.Context, i int) {
	r := g.replicas[i]
	pctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		g.probeResult(i, nil, err)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.probeResult(i, nil, err)
		return
	}
	defer resp.Body.Close()
	var h server.HealthStatus
	if derr := json.NewDecoder(resp.Body).Decode(&h); derr != nil {
		g.probeResult(i, nil, derr)
		return
	}
	if resp.StatusCode != http.StatusOK {
		g.probeResult(i, &h, fmt.Errorf("healthz status %d", resp.StatusCode))
		return
	}
	g.probeResult(i, &h, nil)
}

// probeResult folds one probe outcome into the replica state.
func (g *Gateway) probeResult(i int, h *server.HealthStatus, err error) {
	r := g.replicas[i]
	r.mu.Lock()
	r.lastProbe = time.Now()
	if h != nil {
		r.lastStatus = *h
	}
	if err != nil {
		r.consecFails++
		fails := r.consecFails
		r.mu.Unlock()
		g.metrics.ProbeFailures.Add(1)
		if fails >= g.cfg.FailAfter {
			g.markDown(i)
		}
		return
	}
	r.consecFails = 0
	r.mu.Unlock()
	g.markUp(i)
}
