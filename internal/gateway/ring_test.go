package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// testKeys derives nKeys deterministic ring keys (hashes of a counter), the
// same key population for every property below.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	var buf [8]byte
	for i := range keys {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		sum := sha256.Sum256(buf[:])
		keys[i] = keyOf(sum)
	}
	return keys
}

func fleetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "10.0.0." + string(rune('1'+i)) + ":8877"
	}
	return names
}

func members(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// TestRingDeterministicPlacement: the ring is a pure function of the
// member set — two builds place every key identically.
func TestRingDeterministicPlacement(t *testing.T) {
	names := fleetNames(4)
	a := buildRing(members(4), names, 128)
	b := buildRing(members(4), names, 128)
	for _, k := range testKeys(10000) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("key %x: owners differ across identical builds", k)
		}
	}
}

// TestRingBalance: with 128 vnodes the shard sizes are within a sane band
// of the fair share — no replica starves or hoards.
func TestRingBalance(t *testing.T) {
	const n, nKeys = 4, 20000
	r := buildRing(members(n), fleetNames(n), 128)
	counts := make([]int, n)
	for _, k := range testKeys(nKeys) {
		counts[r.owner(k)]++
	}
	fair := nKeys / n
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("replica %d owns %d of %d keys (fair share %d): ring badly unbalanced %v",
				i, c, nKeys, fair, counts)
		}
	}
}

// TestRingMovementBound is the consistent-hashing contract: when one of N
// replicas leaves, (a) keys it did not own keep their owner exactly, and
// (b) the moved fraction — precisely its former share — stays within
// 1/N + ε of the fair share.
func TestRingMovementBound(t *testing.T) {
	const n = 4
	const nKeys = 20000
	const epsilon = 0.08
	names := fleetNames(n)
	full := buildRing(members(n), names, 128)

	for removed := 0; removed < n; removed++ {
		var rest []int
		for i := 0; i < n; i++ {
			if i != removed {
				rest = append(rest, i)
			}
		}
		reduced := buildRing(rest, names, 128)
		moved := 0
		for _, k := range testKeys(nKeys) {
			before, after := full.owner(k), reduced.owner(k)
			if before != removed && before != after {
				t.Fatalf("removing replica %d moved key %x from surviving replica %d to %d",
					removed, k, before, after)
			}
			if before == removed {
				moved++
			}
		}
		if frac := float64(moved) / nKeys; frac > 1.0/n+epsilon {
			t.Fatalf("removing replica %d moved %.3f of the keyspace, want <= 1/%d + %.2f",
				removed, frac, n, epsilon)
		}
	}
}

// TestRingOwnerExcludingMatchesRebuild: the retry target (walk past the
// failed owner on the old ring) is exactly the owner on the rebuilt ring —
// so a retried request lands on, and warms, the shard that keeps serving
// the key after convergence.
func TestRingOwnerExcludingMatchesRebuild(t *testing.T) {
	const n = 4
	names := fleetNames(n)
	full := buildRing(members(n), names, 128)
	for removed := 0; removed < n; removed++ {
		var rest []int
		for i := 0; i < n; i++ {
			if i != removed {
				rest = append(rest, i)
			}
		}
		reduced := buildRing(rest, names, 128)
		for _, k := range testKeys(5000) {
			if got, want := full.ownerExcluding(k, removed), reduced.owner(k); got != want {
				t.Fatalf("key %x excluding %d: ownerExcluding=%d, rebuilt ring owner=%d",
					k, removed, got, want)
			}
		}
	}
}

// TestRingEmptyAndSingle: edge cases — the empty ring owns nothing, a
// single member owns everything.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := buildRing(nil, nil, 128)
	if got := empty.owner(42); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	solo := buildRing([]int{2}, fleetNames(3), 128)
	for _, k := range testKeys(100) {
		if got := solo.owner(k); got != 2 {
			t.Fatalf("single-member ring owner = %d, want 2", got)
		}
	}
	if got := solo.ownerExcluding(42, 2); got != -1 {
		t.Fatalf("ownerExcluding the only member = %d, want -1", got)
	}
}
