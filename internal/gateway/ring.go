// Package gateway is the scale-out front tier over a fleet of mpassd
// replicas: one stdlib-only HTTP process that consistent-hashes scan
// traffic by content SHA-256 (so each replica's LRU score cache stays hot
// for its shard of the keyspace), places attack jobs on the least-loaded
// healthy replica under a cluster-wide job-ID namespace, health-checks the
// fleet on a jittered interval, re-shards on replica loss with a
// retry-once guarantee for in-flight requests, aggregates /metrics across
// replicas, and derives cluster-level 429/Retry-After from summed replica
// backlogs. Black-box attacks are oracle-query-bound (Demetrio et al.,
// GAMMA), so aggregate cluster throughput — not single-node latency — is
// what bounds attack-evaluation speed; this package is where that
// aggregate comes from.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is an immutable consistent-hash ring over replica indices. Each
// replica contributes vnodes points, placed by SHA-256 of
// "replicaName#vnode"; a key (the leading 8 bytes of the content SHA-256)
// is owned by the first point clockwise. Immutability is the concurrency
// story: lookups read a snapshot through an atomic pointer, rebuilds
// publish a fresh ring, and no lock sits on the request path.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int // index into the gateway's replica table
}

// buildRing places vnodes points per member. members holds replica table
// indices (the healthy set); names their stable identities — points derive
// from the name, never the index, so membership changes move only the
// departed replica's arcs (the consistent-hashing contract the ring tests
// pin: non-owned keys never move).
func buildRing(members []int, names []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		name := names[m]
		for v := 0; v < vnodes; v++ {
			sum := sha256.Sum256([]byte(name + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				hash:    binary.BigEndian.Uint64(sum[:8]),
				replica: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by replica index so the ring
		// is a deterministic function of the member set.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// keyOf reduces a content digest to its ring position.
func keyOf(sum [32]byte) uint64 { return binary.BigEndian.Uint64(sum[:8]) }

// owner returns the replica owning key, or -1 on an empty ring.
func (r *ring) owner(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the top arc
	}
	return r.points[i].replica
}

// ownerExcluding returns the key's owner when exclude is removed from the
// ring — the retry target after the primary owner fails mid-request. It
// walks clockwise from the key past every point of the excluded replica,
// which is exactly where the key lands after the rebuild, so the retried
// request warms the cache shard that will keep serving this content.
func (r *ring) ownerExcluding(key uint64, exclude int) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if p.replica != exclude {
			return p.replica
		}
	}
	return -1
}
