package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"mpass/internal/parallel"
	"mpass/internal/server"
	"mpass/internal/tenant"
)

// Metrics is the gateway's own counter set — routing, retry, re-shard, and
// backpressure events. Replica-side counters are not mirrored here; the
// /metrics handler fetches and merges them live so the cluster view is
// always the fleet's truth, not a gateway-side shadow.
type Metrics struct {
	ScansRouted  atomic.Int64 // scan requests forwarded to a replica
	ScanRetries  atomic.Int64 // scans retried once after a replica loss
	ScansFailed  atomic.Int64 // scans failed after the retry (502/504 to client)
	ScansShed    atomic.Int64 // replica 429s passed through with cluster Retry-After
	ScansSpooled atomic.Int64 // uploads too large to buffer, spooled to disk while hashing
	SpooledBytes atomic.Int64

	AttacksRouted atomic.Int64 // attack submits forwarded
	AttackRetries atomic.Int64 // attack submits retried once after a replica loss
	AttacksFailed atomic.Int64
	AttacksShed   atomic.Int64 // replica 429s passed through

	JobPolls  atomic.Int64 // GET /v1/jobs/{replica}/{id} forwards
	JobErrors atomic.Int64 // polls that could not reach the owning replica

	ProbeFailures     atomic.Int64
	RingRebuilds      atomic.Int64
	ReplicaDownEvents atomic.Int64
	ReplicaUpEvents   atomic.Int64
	ReplicasHealthy   atomic.Int64 // gauge
	ReplicasTotal     atomic.Int64 // gauge
}

// GatewaySnapshot is the JSON form of Metrics inside the /metrics document.
type GatewaySnapshot struct {
	ScansRouted  int64 `json:"scans_routed"`
	ScanRetries  int64 `json:"scan_retries"`
	ScansFailed  int64 `json:"scans_failed"`
	ScansShed    int64 `json:"scans_shed"`
	ScansSpooled int64 `json:"scans_spooled"`
	SpooledBytes int64 `json:"spooled_bytes"`

	AttacksRouted int64 `json:"attacks_routed"`
	AttackRetries int64 `json:"attack_retries"`
	AttacksFailed int64 `json:"attacks_failed"`
	AttacksShed   int64 `json:"attacks_shed"`

	JobPolls  int64 `json:"job_polls"`
	JobErrors int64 `json:"job_errors"`

	ProbeFailures     int64 `json:"probe_failures"`
	RingRebuilds      int64 `json:"ring_rebuilds"`
	ReplicaDownEvents int64 `json:"replica_down_events"`
	ReplicaUpEvents   int64 `json:"replica_up_events"`
	ReplicasHealthy   int64 `json:"replicas_healthy"`
	ReplicasTotal     int64 `json:"replicas_total"`
}

// Snapshot samples every gateway counter.
func (m *Metrics) Snapshot() GatewaySnapshot {
	return GatewaySnapshot{
		ScansRouted:       m.ScansRouted.Load(),
		ScanRetries:       m.ScanRetries.Load(),
		ScansFailed:       m.ScansFailed.Load(),
		ScansShed:         m.ScansShed.Load(),
		ScansSpooled:      m.ScansSpooled.Load(),
		SpooledBytes:      m.SpooledBytes.Load(),
		AttacksRouted:     m.AttacksRouted.Load(),
		AttackRetries:     m.AttackRetries.Load(),
		AttacksFailed:     m.AttacksFailed.Load(),
		AttacksShed:       m.AttacksShed.Load(),
		JobPolls:          m.JobPolls.Load(),
		JobErrors:         m.JobErrors.Load(),
		ProbeFailures:     m.ProbeFailures.Load(),
		RingRebuilds:      m.RingRebuilds.Load(),
		ReplicaDownEvents: m.ReplicaDownEvents.Load(),
		ReplicaUpEvents:   m.ReplicaUpEvents.Load(),
		ReplicasHealthy:   m.ReplicasHealthy.Load(),
		ReplicasTotal:     m.ReplicasTotal.Load(),
	}
}

// ReplicaMetrics is one fleet member's slice of the /metrics document.
type ReplicaMetrics struct {
	Name    string                  `json:"name"`
	Healthy bool                    `json:"healthy"`
	Error   string                  `json:"error,omitempty"`
	Metrics *server.MetricsSnapshot `json:"metrics,omitempty"`
}

// ClusterMetrics is the gateway's GET /metrics response: the fleet summed
// into one MetricsSnapshot (same shape as a single replica's /metrics, so
// existing tooling reads either), the gateway's own counters, and the
// per-replica snapshots the sum was built from.
type ClusterMetrics struct {
	Cluster  server.MetricsSnapshot `json:"cluster"`
	Gateway  GatewaySnapshot        `json:"gateway"`
	Replicas []ReplicaMetrics       `json:"replicas"`
}

// mergeSnapshots sums replica snapshots field by field. Counters add;
// MaxBatchSize takes the max; MeanBatch is recomputed from the summed
// numerator/denominator; histograms merge bucket-wise (every replica uses
// the same fixed bounds) with the mean re-derived from the merged counts.
func mergeSnapshots(snaps []*server.MetricsSnapshot) server.MetricsSnapshot {
	var out server.MetricsSnapshot
	var meanNumer float64 // Σ count_i · mean_i, for the merged latency mean
	for _, s := range snaps {
		if s == nil {
			continue
		}
		out.ScanRequests += s.ScanRequests
		out.ScanRejected += s.ScanRejected
		out.ScanErrors += s.ScanErrors
		out.AttackRequests += s.AttackRequests
		out.AttackRejected += s.AttackRejected
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.ScansStreamed += s.ScansStreamed
		out.StreamedBytes += s.StreamedBytes
		out.Batches += s.Batches
		out.BatchedRaws += s.BatchedRaws
		if s.MaxBatchSize > out.MaxBatchSize {
			out.MaxBatchSize = s.MaxBatchSize
		}
		out.Coalesced += s.Coalesced
		out.OracleQueries += s.OracleQueries
		out.OracleRetries += s.OracleRetries
		out.OracleBreaks += s.OracleBreaks
		out.JobsQueued += s.JobsQueued
		out.JobsPending += s.JobsPending
		out.JobsDone += s.JobsDone
		out.JobsEvicted += s.JobsEvicted
		out.JobsCancelled += s.JobsCancelled
		out.JobsRegistry += s.JobsRegistry
		out.JobsRegistryCap += s.JobsRegistryCap
		out.TenantUnauthenticated += s.TenantUnauthenticated
		out.TenantRejected += s.TenantRejected
		out.TenantReloads += s.TenantReloads
		if len(s.Tenants) > 0 && out.Tenants == nil {
			out.Tenants = make(map[string]tenant.Snapshot)
		}
		for name, ts := range s.Tenants {
			out.Tenants[name] = tenant.Merge(out.Tenants[name], ts)
		}

		h := s.ScanLatency
		if len(out.ScanLatency.BucketsMs) == 0 {
			out.ScanLatency.BucketsMs = append([]float64(nil), h.BucketsMs...)
			out.ScanLatency.Counts = append([]int64(nil), h.Counts...)
		} else if len(h.Counts) == len(out.ScanLatency.Counts) {
			for i, c := range h.Counts {
				out.ScanLatency.Counts[i] += c
			}
		}
		out.ScanLatency.Count += h.Count
		meanNumer += float64(h.Count) * h.MeanMs
	}
	if out.Batches > 0 {
		out.MeanBatch = float64(out.BatchedRaws) / float64(out.Batches)
	}
	if out.ScanLatency.Count > 0 {
		out.ScanLatency.MeanMs = meanNumer / float64(out.ScanLatency.Count)
	}
	return out
}

// fetchReplicaMetrics pulls one replica's /metrics snapshot.
func (g *Gateway) fetchReplicaMetrics(ctx context.Context, r *replica) (*server.MetricsSnapshot, error) {
	mctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(mctx, http.MethodGet, r.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// handleMetrics aggregates /metrics across the fleet: every replica —
// including ones marked down, which may still answer — is polled
// concurrently, the reachable snapshots are summed, and the response
// carries cluster totals, gateway counters, and the per-replica slices.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n := len(g.replicas)
	docs := make([]ReplicaMetrics, n)
	snaps := make([]*server.MetricsSnapshot, n)
	parallel.ForEach(n, n, func(i int) {
		rep := g.replicas[i]
		docs[i] = ReplicaMetrics{Name: rep.name, Healthy: rep.healthy.Load()}
		snap, err := g.fetchReplicaMetrics(r.Context(), rep)
		if err != nil {
			docs[i].Error = err.Error()
			return
		}
		docs[i].Metrics = snap
		snaps[i] = snap
	})
	writeJSON(w, http.StatusOK, ClusterMetrics{
		Cluster:  mergeSnapshots(snaps),
		Gateway:  g.metrics.Snapshot(),
		Replicas: docs,
	})
}

// ClusterHealth is the gateway's GET /healthz response: per-replica state
// plus the fleet roll-up. Status is "ok" with the whole fleet up,
// "degraded" (still 200) with a partial fleet, "unavailable" (503) with
// none — so bare status-code probes keep working against the gateway too.
type ClusterHealth struct {
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy"`
	Total    int             `json:"total"`
	UptimeS  float64         `json:"uptime_s"`
	ModelMix bool            `json:"model_mixed"` // healthy replicas disagree on model_version
	Replicas []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one member's health slice. Engines passes through the
// replica's per-engine name/version/health lines, so a fleet operator can
// see exactly which engine generation each replica is serving across a
// rolling hot-reload.
type ReplicaHealth struct {
	Name         string                `json:"name"`
	Healthy      bool                  `json:"healthy"`
	Draining     bool                  `json:"draining,omitempty"`
	ModelVersion string                `json:"model_version,omitempty"`
	Engines      []server.EngineHealth `json:"engines,omitempty"`
	JobsPending  int                   `json:"jobs_pending"`
	ScanQueue    int                   `json:"scan_queue"`
	AgeS         float64               `json:"probe_age_s"` // time since the last probe
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	now := time.Now()
	doc := ClusterHealth{
		Total:   len(g.replicas),
		UptimeS: time.Since(g.started).Seconds(),
	}
	version := ""
	for _, rep := range g.replicas {
		st, probed := rep.status()
		up := rep.healthy.Load()
		rh := ReplicaHealth{
			Name:         rep.name,
			Healthy:      up,
			Draining:     st.Draining,
			ModelVersion: st.ModelVersion,
			Engines:      st.Engines,
			JobsPending:  st.JobsPending,
			ScanQueue:    st.ScanQueue,
		}
		if !probed.IsZero() {
			rh.AgeS = now.Sub(probed).Seconds()
		}
		doc.Replicas = append(doc.Replicas, rh)
		if up {
			doc.Healthy++
			if st.ModelVersion != "" {
				if version == "" {
					version = st.ModelVersion
				} else if version != st.ModelVersion {
					doc.ModelMix = true
				}
			}
		}
	}
	code := http.StatusOK
	switch {
	case doc.Healthy == 0:
		doc.Status = "unavailable"
		code = http.StatusServiceUnavailable
	case doc.Healthy < doc.Total:
		doc.Status = "degraded"
	default:
		doc.Status = "ok"
	}
	writeJSON(w, code, doc)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
