package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpass/internal/core"
	"mpass/internal/detect"
	"mpass/internal/faultinject"
	"mpass/internal/server"
)

// stubDetector is a deterministic, training-free detector so a whole fleet
// of real server.Server replicas boots in microseconds.
type stubDetector struct {
	name string
	thr  float64
}

func (d *stubDetector) Name() string { return d.name }
func (d *stubDetector) Score(raw []byte) float64 {
	sum := sha256.Sum256(raw)
	return float64(sum[0]) / 255
}
func (d *stubDetector) Label(raw []byte) bool      { return d.Score(raw) > d.thr }
func (d *stubDetector) DecisionThreshold() float64 { return d.thr }

// stubAttack is a fast AttackFunc: one oracle query, terminal result.
func stubAttack() server.AttackFunc {
	return func(ctx context.Context, target detect.Detector, original []byte, oracle core.Oracle, seed int64) (*core.Result, error) {
		if _, err := core.QueryOracle(ctx, oracle, original); err != nil {
			return nil, err
		}
		return &core.Result{Success: false, Queries: 1, Rounds: 1}, nil
	}
}

// fleet is a gateway fronting n real in-process replicas.
type fleet struct {
	gw      *Gateway
	gwTS    *httptest.Server
	servers []*server.Server
	ts      []*httptest.Server
	names   []string
}

// newFleet boots n replicas (real server.Server instances on stub
// detectors) and a gateway over them. gcfg.Replicas is filled in here.
func newFleet(t *testing.T, n int, gcfg Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			Detectors: []detect.Detector{
				&stubDetector{name: "A", thr: 0.5},
				&stubDetector{name: "B", thr: 0.2},
			},
			Attack:       stubAttack(),
			ModelVersion: "fleet-v1",
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		f.servers = append(f.servers, srv)
		f.ts = append(f.ts, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	gcfg.Replicas = f.names
	if gcfg.HealthInterval == 0 {
		gcfg.HealthInterval = 50 * time.Millisecond
	}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatalf("gateway New: %v", err)
	}
	f.gw = gw
	f.gwTS = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		f.gwTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		gw.Close(ctx)
		for i, ts := range f.ts {
			ts.Close()
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			f.servers[i].Shutdown(sctx)
			scancel()
		}
	})
	return f
}

// scanDoc mirrors the replica scan response.
type scanDoc struct {
	SHA256  string `json:"sha256"`
	Cached  bool   `json:"cached"`
	Results []struct {
		Model string  `json:"model"`
		Score float64 `json:"score"`
	} `json:"results"`
}

func postScan(t *testing.T, base string, body []byte) (int, scanDoc) {
	t.Helper()
	resp, err := http.Post(base+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/scan: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc scanDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("decoding scan response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, doc
}

// sampleBodies builds n distinct deterministic uploads.
func sampleBodies(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, size)
		rng.Read(b)
		out[i] = b
	}
	return out
}

// TestGatewayShardAffineCaching: scanning every sample twice through the
// gateway must cost exactly one cache miss per sample fleet-wide — each
// key has one home replica, and the repeat hits that replica's hot cache.
// Scores relayed through the gateway equal direct detector calls.
func TestGatewayShardAffineCaching(t *testing.T) {
	const nSamples = 24
	f := newFleet(t, 3, Config{})
	samples := sampleBodies(nSamples, 512, 42)
	det := &stubDetector{name: "A", thr: 0.5}

	for round := 0; round < 2; round++ {
		for i, body := range samples {
			status, doc := postScan(t, f.gwTS.URL, body)
			if status != http.StatusOK {
				t.Fatalf("round %d sample %d: status %d", round, i, status)
			}
			sum := sha256.Sum256(body)
			if doc.SHA256 != hex.EncodeToString(sum[:]) {
				t.Fatalf("sample %d: gateway routed hash mismatch", i)
			}
			if got, want := doc.Results[0].Score, det.Score(body); got != want {
				t.Fatalf("sample %d: relayed score %v, direct %v", i, got, want)
			}
			if round == 1 && !doc.Cached {
				t.Errorf("sample %d: second scan missed the shard cache", i)
			}
		}
	}

	var hits, misses int64
	perReplicaMisses := make([]int64, len(f.servers))
	for i, srv := range f.servers {
		m := srv.Metrics()
		hits += m.CacheHits.Load()
		misses += m.CacheMisses.Load()
		perReplicaMisses[i] = m.CacheMisses.Load()
	}
	if misses != nSamples {
		t.Fatalf("fleet cache misses = %d, want exactly %d (one per distinct sample): %v",
			misses, nSamples, perReplicaMisses)
	}
	if hits != nSamples {
		t.Fatalf("fleet cache hits = %d, want %d (every repeat hits its shard)", hits, nSamples)
	}
	if g := f.gw.Metrics().ScansRouted.Load(); g != 2*nSamples {
		t.Fatalf("scans_routed = %d, want %d", g, 2*nSamples)
	}
}

// TestGatewayJobNamespace: attack submits come back in the cluster job-ID
// namespace {replica}/{id}, and polling that ID through the gateway
// reaches the owning replica and a terminal state.
func TestGatewayJobNamespace(t *testing.T) {
	f := newFleet(t, 3, Config{})
	body := sampleBodies(1, 256, 7)[0]

	resp, err := http.Post(f.gwTS.URL+"/v1/attack", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/attack: %v", err)
	}
	var acc struct {
		ID   string `json:"id"`
		Poll string `json:"poll"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attack status %d", resp.StatusCode)
	}
	repName, jobID, found := strings.Cut(acc.ID, "/")
	if !found {
		t.Fatalf("job id %q lacks the {replica}/{id} namespace", acc.ID)
	}
	if _, known := f.gw.byName[repName]; !known {
		t.Fatalf("job id %q names unknown replica %q", acc.ID, repName)
	}
	if !strings.HasPrefix(jobID, "job-") {
		t.Fatalf("job id %q: replica-local part %q unexpected", acc.ID, jobID)
	}
	if acc.Poll != "/v1/jobs/"+acc.ID {
		t.Fatalf("poll path %q does not match id %q", acc.Poll, acc.ID)
	}

	state := pollJob(t, f.gwTS.URL+acc.Poll, 10*time.Second)
	if state != "done" {
		t.Fatalf("job ended %q, want done", state)
	}
}

// pollJob polls a gateway job URL until a terminal state or the deadline.
func pollJob(t *testing.T, url string, wait time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		var v struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
		if v.State == "done" || v.State == "failed" {
			return v.State
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", url, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// clusterHealth fetches and decodes the gateway's /healthz.
func clusterHealth(t *testing.T, base string) (int, ClusterHealth) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h ClusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decoding cluster health: %v", err)
	}
	return resp.StatusCode, h
}

// TestGatewayReplicaKillDrill is the re-shard drill: kill one replica out
// from under live traffic and require (a) every scan still succeeds — the
// dead shard's keys are retried exactly once on the surviving owner, never
// dropped silently; (b) the health checker converges to a degraded 2/3
// fleet and the ring re-shards; (c) keys owned by survivors never move;
// (d) completed jobs on surviving replicas stay pollable, and polls for
// the dead replica's jobs fail loudly.
func TestGatewayReplicaKillDrill(t *testing.T) {
	const nSamples = 30
	f := newFleet(t, 3, Config{})
	samples := sampleBodies(nSamples, 512, 99)

	// Warm every shard and record pre-kill placement.
	ringBefore := f.gw.ring.Load()
	ownersBefore := make([]int, nSamples)
	for i, body := range samples {
		if status, _ := postScan(t, f.gwTS.URL, body); status != http.StatusOK {
			t.Fatalf("warm scan %d: status %d", i, status)
		}
		ownersBefore[i] = ringBefore.owner(keyOf(sha256.Sum256(body)))
	}

	// A completed job on a replica we will NOT kill.
	body := samples[0]
	resp, err := http.Post(f.gwTS.URL+"/v1/attack", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID   string `json:"id"`
		Poll string `json:"poll"`
	}
	json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if pollJob(t, f.gwTS.URL+acc.Poll, 10*time.Second) != "done" {
		t.Fatal("pre-kill job did not complete")
	}
	jobReplica, _, _ := strings.Cut(acc.ID, "/")

	// Kill a replica that owns part of the keyspace but not the job.
	victim := -1
	for i, name := range f.names {
		if name == jobReplica {
			continue
		}
		for _, o := range ownersBefore {
			if o == i {
				victim = i
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no replica owns keys outside the job replica; enlarge the sample set")
	}
	victimKeys := 0
	for _, o := range ownersBefore {
		if o == victim {
			victimKeys++
		}
	}
	f.ts[victim].Close() // connections refused from here on

	// Scans succeed throughout: dead-shard keys are retried once onto the
	// surviving owner; nothing is dropped.
	for i, body := range samples {
		status, _ := postScan(t, f.gwTS.URL, body)
		if status != http.StatusOK {
			t.Fatalf("post-kill scan %d: status %d (owner was %d, victim %d)",
				i, status, ownersBefore[i], victim)
		}
	}
	gm := f.gw.Metrics()
	if gm.ScansFailed.Load() != 0 {
		t.Fatalf("scans_failed = %d after the drill, want 0", gm.ScansFailed.Load())
	}
	if retries := gm.ScanRetries.Load(); retries < 1 || retries > int64(victimKeys) {
		t.Fatalf("scan_retries = %d, want in [1, %d] (victim owned %d keys)",
			retries, victimKeys, victimKeys)
	}

	// Convergence: the prober marks the victim down, healthz reports 2/3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, h := clusterHealth(t, f.gwTS.URL)
		if h.Healthy == 2 {
			if code != http.StatusOK || h.Status != "degraded" {
				t.Fatalf("degraded fleet: code %d status %q", code, h.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never converged to 2 healthy replicas: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Re-shard moved only the victim's arcs: surviving owners are stable.
	ringAfter := f.gw.ring.Load()
	for i, body := range samples {
		after := ringAfter.owner(keyOf(sha256.Sum256(body)))
		if after == victim {
			t.Fatalf("sample %d still routed to the dead replica", i)
		}
		if ownersBefore[i] != victim && after != ownersBefore[i] {
			t.Fatalf("sample %d moved from surviving replica %d to %d", i, ownersBefore[i], after)
		}
	}

	// Completed work on survivors is not lost; the dead replica's jobs
	// fail loudly, never silently.
	if state := pollJob(t, f.gwTS.URL+acc.Poll, 5*time.Second); state != "done" {
		t.Fatalf("completed job lost after re-shard: state %q", state)
	}
	lost, err := http.Get(f.gwTS.URL + "/v1/jobs/" + f.names[victim] + "/job-000001")
	if err != nil {
		t.Fatal(err)
	}
	lostBody, _ := io.ReadAll(lost.Body)
	lost.Body.Close()
	if lost.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead-replica job poll: status %d (%s), want 502", lost.StatusCode, lostBody)
	}
	if !strings.Contains(string(lostBody), "unreachable") {
		t.Fatalf("dead-replica job poll error is not explicit: %s", lostBody)
	}
}

// TestGatewayMetricsAggregation: the gateway /metrics document sums the
// fleet and exposes every per-replica snapshot.
func TestGatewayMetricsAggregation(t *testing.T) {
	const nSamples = 12
	f := newFleet(t, 3, Config{})
	for _, body := range sampleBodies(nSamples, 256, 5) {
		if status, _ := postScan(t, f.gwTS.URL, body); status != http.StatusOK {
			t.Fatalf("scan status %d", status)
		}
	}
	resp, err := http.Get(f.gwTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster.ScanRequests != nSamples {
		t.Fatalf("cluster scan_requests = %d, want %d", doc.Cluster.ScanRequests, nSamples)
	}
	if len(doc.Replicas) != 3 {
		t.Fatalf("replicas = %d entries, want 3", len(doc.Replicas))
	}
	var sum int64
	for _, r := range doc.Replicas {
		if r.Metrics == nil {
			t.Fatalf("replica %s: no metrics snapshot (%s)", r.Name, r.Error)
		}
		sum += r.Metrics.ScanRequests
	}
	if sum != doc.Cluster.ScanRequests {
		t.Fatalf("cluster sum %d != Σ replicas %d", doc.Cluster.ScanRequests, sum)
	}
	if doc.Gateway.ScansRouted != nSamples {
		t.Fatalf("gateway scans_routed = %d, want %d", doc.Gateway.ScansRouted, nSamples)
	}
	if doc.Gateway.ReplicasHealthy != 3 || doc.Gateway.ReplicasTotal != 3 {
		t.Fatalf("gateway gauges = %d/%d, want 3/3",
			doc.Gateway.ReplicasHealthy, doc.Gateway.ReplicasTotal)
	}
	// The merged histogram carries every observed scan.
	if doc.Cluster.ScanLatency.Count != nSamples {
		t.Fatalf("merged latency count = %d, want %d", doc.Cluster.ScanLatency.Count, nSamples)
	}
}

// TestGatewaySpooledUpload: a body larger than MaxBufferBytes is hashed
// incrementally while spooling to disk, routed by the resulting digest,
// and forwarded intact.
func TestGatewaySpooledUpload(t *testing.T) {
	f := newFleet(t, 2, Config{MaxBufferBytes: 1024})
	body := sampleBodies(1, 8000, 3)[0]
	status, doc := postScan(t, f.gwTS.URL, body)
	if status != http.StatusOK {
		t.Fatalf("spooled scan status %d", status)
	}
	sum := sha256.Sum256(body)
	if doc.SHA256 != hex.EncodeToString(sum[:]) {
		t.Fatalf("spooled scan hash mismatch: %s", doc.SHA256)
	}
	m := f.gw.Metrics()
	if m.ScansSpooled.Load() != 1 || m.SpooledBytes.Load() != int64(len(body)) {
		t.Fatalf("spool counters = %d scans / %d bytes, want 1 / %d",
			m.ScansSpooled.Load(), m.SpooledBytes.Load(), len(body))
	}
	// And the cap still applies to spooled bodies.
	f2 := newFleet(t, 1, Config{MaxBufferBytes: 1024, MaxBodyBytes: 4096})
	status, _ = postScan(t, f2.gwTS.URL, body)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-cap spooled scan status %d, want 413", status)
	}
}

// TestGatewayInjectedTransportFaults drives the gateway through
// faultinject.Transport: with every request failing deterministically the
// gateway answers loudly (503/502 — by then the fleet is marked down),
// and with injected latency only, traffic flows untouched.
func TestGatewayInjectedTransportFaults(t *testing.T) {
	// All-error: the very first scan marks the primary down, the retry
	// path finds the other replica, which also fails — 502, counted, loud.
	tr := faultinject.WrapTransport(nil, faultinject.TransportConfig{Seed: 1, ErrorRate: 1})
	f := newFleet(t, 2, Config{Transport: tr, HealthInterval: time.Hour})
	body := sampleBodies(1, 128, 11)[0]
	resp, err := http.Post(f.gwTS.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-faulty fleet scan status %d (%s), want 502/503", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte("error")) {
		t.Fatalf("faulted scan response not explicit: %s", raw)
	}
	if f.gw.Metrics().ScansFailed.Load()+f.gw.Metrics().ScanRetries.Load() == 0 {
		t.Fatal("injected transport faults left no trace in gateway metrics")
	}

	// Latency-only injection: deterministic delays, zero failures.
	ltr := faultinject.WrapTransport(nil, faultinject.TransportConfig{
		Seed: 2, LatencyRate: 1, Latency: 2 * time.Millisecond,
	})
	f2 := newFleet(t, 2, Config{Transport: ltr, HealthInterval: time.Hour})
	for i, b := range sampleBodies(6, 128, 13) {
		if status, _ := postScan(t, f2.gwTS.URL, b); status != http.StatusOK {
			t.Fatalf("latency-injected scan %d: status %d", i, status)
		}
	}
	if f2.gw.Metrics().ScansFailed.Load() != 0 {
		t.Fatal("latency injection caused failures")
	}
	if ltr.Stats().Delays == 0 {
		t.Fatal("latency injection never fired")
	}
}

// TestGatewayClusterBackpressure uses fake always-shedding replicas: the
// gateway relays the 429 but rewrites Retry-After from the fleet's summed
// backlog — the cluster-level estimator.
func TestGatewayClusterBackpressure(t *testing.T) {
	mkReplica := func(scanQueue int) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(server.HealthStatus{
				Status: "ok", ModelVersion: "fake-v1", ScanQueue: scanQueue, ScanQueueCap: 256,
			})
		})
		mux.HandleFunc("POST /v1/scan", func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"scan queue full"}`)
		})
		return httptest.NewServer(mux)
	}
	r1, r2 := mkReplica(100), mkReplica(50)
	defer r1.Close()
	defer r2.Close()

	gw, err := New(Config{
		Replicas: []string{
			strings.TrimPrefix(r1.URL, "http://"),
			strings.TrimPrefix(r2.URL, "http://"),
		},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		gw.Close(ctx)
	})

	// Wait until both replicas' backlogs have been probed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		scanQ, _ := gw.clusterBacklogs()
		if scanQ == 150 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probed cluster backlog = %d, want 150", scanQ)
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := sampleBodies(1, 64, 17)[0]
	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed scan status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("cluster shed carries no Retry-After")
	}
	// Summed backlog of 150 against ~1 completed forward must stretch the
	// hint well past the single replica's hardcoded "1".
	if ra == "1" {
		t.Fatalf("Retry-After = %q: cluster estimator did not use the summed backlog", ra)
	}
	if gw.Metrics().ScansShed.Load() == 0 {
		t.Fatal("scans_shed not counted")
	}
}

// TestGatewayLeastLoadedPlacement uses fake replicas with asymmetric
// probed load: attack submits must land on the idle one.
func TestGatewayLeastLoadedPlacement(t *testing.T) {
	mkReplica := func(pending int, hits *int64) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(server.HealthStatus{
				Status: "ok", ModelVersion: "fake-v1", JobsPending: pending,
			})
		})
		mux.HandleFunc("POST /v1/attack", func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			*hits++
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, `{"id":"job-%06d","target":"A","poll":"/v1/jobs/job-%06d"}`, *hits, *hits)
		})
		return httptest.NewServer(mux)
	}
	var busyHits, idleHits int64
	busy, idle := mkReplica(100, &busyHits), mkReplica(0, &idleHits)
	defer busy.Close()
	defer idle.Close()

	gw, err := New(Config{
		Replicas: []string{
			strings.TrimPrefix(busy.URL, "http://"),
			strings.TrimPrefix(idle.URL, "http://"),
		},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		gw.Close(ctx)
	})

	// Wait for the load gauges to be probed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if gw.replicas[0].load() == 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("busy replica's load never probed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := sampleBodies(1, 64, 23)[0]
	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/v1/attack", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("attack %d: status %d", i, resp.StatusCode)
		}
	}
	if busyHits != 0 || idleHits != 5 {
		t.Fatalf("placement = busy %d / idle %d, want 0 / 5", busyHits, idleHits)
	}
}

// TestGatewayDrain: once closed, the gateway sheds new work with 503 and
// reports draining on /healthz.
func TestGatewayDrain(t *testing.T) {
	f := newFleet(t, 1, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.gw.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	body := sampleBodies(1, 64, 29)[0]
	status, _ := postScan(t, f.gwTS.URL, body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain scan status %d, want 503", status)
	}
	code, _ := clusterHealth(t, f.gwTS.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz %d, want 503", code)
	}
}
