package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"mpass/internal/detect"
	"mpass/internal/server"
	"mpass/internal/tenant"
)

// newTenantFleet is newFleet with a tenant allowlist on every replica:
// each replica owns an independent table built from the same tenant list,
// exactly as separate mpassd processes sharing one allowlist file would.
func newTenantFleet(t *testing.T, n int, gcfg Config, tenants []tenant.Tenant) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			Detectors: []detect.Detector{
				&stubDetector{name: "A", thr: 0.5},
				&stubDetector{name: "B", thr: 0.2},
			},
			Attack:       stubAttack(),
			ModelVersion: "fleet-v1",
			Tenants:      tenant.NewTable(tenants, time.Now()),
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		f.servers = append(f.servers, srv)
		f.ts = append(f.ts, ts)
		f.names = append(f.names, strings.TrimPrefix(ts.URL, "http://"))
	}
	gcfg.Replicas = f.names
	if gcfg.HealthInterval == 0 {
		gcfg.HealthInterval = 50 * time.Millisecond
	}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatalf("gateway New: %v", err)
	}
	f.gw = gw
	f.gwTS = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		f.gwTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		gw.Close(ctx)
		for i, ts := range f.ts {
			ts.Close()
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			f.servers[i].Shutdown(sctx)
			scancel()
		}
	})
	return f
}

// doAuth sends one request through the gateway with an optional credential.
func doAuth(t *testing.T, method, url, key string, bearer bool, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		if bearer {
			req.Header.Set("Authorization", "Bearer "+key)
		} else {
			req.Header.Set("X-API-Key", key)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return resp
}

// TestGatewayForwardsTenantCredential: the gateway relays the client's
// credential on every proxied hop — scan, attack submit, job poll — and
// relays the replicas' 401/429 verdicts verbatim. The gateway itself never
// authenticates.
func TestGatewayForwardsTenantCredential(t *testing.T) {
	f := newTenantFleet(t, 2, Config{}, []tenant.Tenant{
		{Name: "acme", Key: "acme-key"},
	})

	// Anonymous scan: the replica's 401 comes back through the gateway.
	resp := doAuth(t, http.MethodPost, f.gwTS.URL+"/v1/scan", "", false, []byte("sample"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous scan via gateway: status %d, want 401", resp.StatusCode)
	}

	// Both credential forms pass through.
	for _, bearer := range []bool{false, true} {
		resp := doAuth(t, http.MethodPost, f.gwTS.URL+"/v1/scan", "acme-key", bearer,
			[]byte(fmt.Sprintf("sample bearer=%v", bearer)))
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("authed scan (bearer=%v): status %d (%s)", bearer, resp.StatusCode, body)
		}
	}

	// Attack submit carries the key; the cluster-namespaced poll does too.
	resp = doAuth(t, http.MethodPost, f.gwTS.URL+"/v1/attack?target=B", "acme-key", false, []byte("victim"))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("authed attack via gateway: status %d (%s)", resp.StatusCode, body)
	}
	var acc attackAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if resp := doAuth(t, http.MethodGet, f.gwTS.URL+acc.Poll, "", false, nil); true {
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("anonymous job poll via gateway: status %d, want 401", resp.StatusCode)
		}
	}
	resp = doAuth(t, http.MethodGet, f.gwTS.URL+acc.Poll, "acme-key", false, nil)
	var view struct {
		Tenant string `json:"tenant"`
	}
	err := json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("authed job poll: status %d, err %v", resp.StatusCode, err)
	}
	if view.Tenant != "acme" {
		t.Fatalf("job view tenant through gateway = %q, want acme", view.Tenant)
	}
}

// TestGatewayRelaysQuotaRetryAfter: a tenant-quota 429 crosses the gateway
// with a Retry-After no shorter than the tenant's own bucket-refill wait —
// the cluster drain hint must not shadow a longer per-tenant wait.
func TestGatewayRelaysQuotaRetryAfter(t *testing.T) {
	f := newTenantFleet(t, 2, Config{}, []tenant.Tenant{
		// One token, then a 20s refill: the replica's hint must survive.
		{Name: "slow", Key: "slow-key", RatePerSec: 0.05, Burst: 1},
	})
	shed := 0
	for i := 0; i < 2; i++ {
		// Identical bytes route to one replica; its bucket drains on the
		// first admit.
		resp := doAuth(t, http.MethodPost, f.gwTS.URL+"/v1/scan", "slow-key", false, []byte("pinned sample"))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("gateway 429 Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
			}
			// 1 token / 0.05 per sec → the bucket hint is ~20s; the cluster
			// drain hint would be ~1s. The larger one must win.
			if ra < 10 {
				t.Fatalf("gateway 429 Retry-After = %d, want the tenant's ~20s refill hint, not the cluster drain hint", ra)
			}
		}
	}
	if shed != 1 {
		t.Fatalf("shed %d of 2 pinned scans, want exactly 1", shed)
	}
	if f.gw.Metrics().ScansShed.Load() != 1 {
		t.Fatalf("gateway scans_shed = %d, want 1", f.gw.Metrics().ScansShed.Load())
	}
}

// TestGatewayTenantFleetMetrics: the cluster /metrics document merges
// per-tenant counters across replicas — counts sum and the per-tenant
// latency histogram carries every scan the fleet served for that tenant.
func TestGatewayTenantFleetMetrics(t *testing.T) {
	f := newTenantFleet(t, 3, Config{}, []tenant.Tenant{
		{Name: "acme", Key: "acme-key"},
		{Name: "beta", Key: "beta-key"},
	})

	const acmeScans, betaScans = 12, 5
	for i := 0; i < acmeScans; i++ {
		resp := doAuth(t, http.MethodPost, f.gwTS.URL+"/v1/scan", "acme-key", false,
			[]byte(fmt.Sprintf("acme sample %d", i)))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("acme scan %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < betaScans; i++ {
		resp := doAuth(t, http.MethodPost, f.gwTS.URL+"/v1/scan", "beta-key", false,
			[]byte(fmt.Sprintf("beta sample %d", i)))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("beta scan %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(f.gwTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc ClusterMetrics
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	acme, ok := doc.Cluster.Tenants["acme"]
	if !ok {
		t.Fatalf("cluster tenants map lacks acme: %+v", doc.Cluster.Tenants)
	}
	if acme.Scans != acmeScans || acme.Admitted != acmeScans {
		t.Fatalf("merged acme scans/admitted = %d/%d, want %d", acme.Scans, acme.Admitted, acmeScans)
	}
	if acme.ScanLatency.Count != acmeScans {
		t.Fatalf("merged acme latency count = %d, want %d", acme.ScanLatency.Count, acmeScans)
	}
	if beta := doc.Cluster.Tenants["beta"]; beta.Scans != betaScans {
		t.Fatalf("merged beta scans = %d, want %d", beta.Scans, betaScans)
	}

	// The distinct bodies spread over the ring: more than one replica must
	// have contributed to the merged acme count, proving a real merge
	// rather than a single replica's passthrough.
	contributing := 0
	for _, rm := range doc.Replicas {
		if rm.Metrics != nil && rm.Metrics.Tenants["acme"].Scans > 0 {
			contributing++
		}
	}
	if contributing < 2 {
		t.Fatalf("acme scans landed on %d replica(s); the merge was never exercised", contributing)
	}
}

// countSpoolFiles counts leftover gateway spool files in dir.
func countSpoolFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.Contains(e.Name(), ".spool") {
			n++
		}
	}
	return n
}

// deadAddr returns a host:port that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// spoolGateway builds a gateway over arbitrary replica addresses with a
// private spool dir and a tiny buffer, so every test body spools to disk.
func spoolGateway(t *testing.T, cfg Config, replicas ...string) (*Gateway, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Replicas = replicas
	cfg.SpoolDir = dir
	cfg.MaxBufferBytes = 512
	if cfg.HealthInterval == 0 {
		// Keep the prober quiet: one immediate probe cannot cross the
		// default FailAfter=2 ladder, so health state stays as the request
		// path leaves it.
		cfg.HealthInterval = time.Hour
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		gw.Close(ctx)
	})
	return gw, ts, dir
}

// spoolBody is comfortably over the 512-byte test buffer.
func spoolBody() []byte { return bytes.Repeat([]byte{0x42}, 4096) }

// TestSpoolCleanupOnSuccess: the happy path leaves no spool file behind.
func TestSpoolCleanupOnSuccess(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer backend.Close()
	_, ts, dir := spoolGateway(t, Config{}, strings.TrimPrefix(backend.URL, "http://"))

	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(spoolBody()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d", resp.StatusCode)
	}
	if n := countSpoolFiles(t, dir); n != 0 {
		t.Fatalf("%d spool file(s) leaked after a successful scan", n)
	}
}

// TestSpoolCleanupOnReplicaError: a replica 5xx is relayed and the spool
// file is still removed — the error path shares the deferred cleanup.
func TestSpoolCleanupOnReplicaError(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, "replica exploded", http.StatusInternalServerError)
	}))
	defer backend.Close()
	_, ts, dir := spoolGateway(t, Config{}, strings.TrimPrefix(backend.URL, "http://"))

	for _, path := range []string{"/v1/scan", "/v1/attack"} {
		resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(spoolBody()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("%s status %d, want relayed 500", path, resp.StatusCode)
		}
		if n := countSpoolFiles(t, dir); n != 0 {
			t.Fatalf("%s: %d spool file(s) leaked after a replica 5xx", path, n)
		}
	}
}

// TestSpoolCleanupOnRetry: the primary is unreachable, the retry replays
// the spooled body onto the survivor — and after both the successful retry
// and a fleet-wide failure, the spool dir is empty.
func TestSpoolCleanupOnRetry(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, _ := io.Copy(io.Discard, r.Body)
		fmt.Fprintf(w, `{"bytes":%d}`, n)
	}))
	defer backend.Close()

	// Dead + live: whichever the ring owns first, every request ends on the
	// live replica with the full body, via at most one retry.
	_, ts, dir := spoolGateway(t, Config{},
		deadAddr(t), strings.TrimPrefix(backend.URL, "http://"))
	body := spoolBody()
	for i := 0; i < 4; i++ {
		// Distinct bodies walk different ring keys, so some hit the dead
		// primary and exercise the retry replay.
		resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream",
			bytes.NewReader(append(body, byte(i))))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d: status %d (%s)", i, resp.StatusCode, raw)
		}
		if want := fmt.Sprintf(`{"bytes":%d}`, len(body)+1); string(raw) != want {
			t.Fatalf("scan %d: replica saw %s, want %s — replay truncated", i, raw, want)
		}
	}
	if n := countSpoolFiles(t, dir); n != 0 {
		t.Fatalf("%d spool file(s) leaked across retry replays", n)
	}

	// All replicas dead: 502 after the retry, and still no leak.
	_, ts2, dir2 := spoolGateway(t, Config{}, deadAddr(t), deadAddr(t))
	resp, err := http.Post(ts2.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead-fleet scan status %d, want 502/503", resp.StatusCode)
	}
	if n := countSpoolFiles(t, dir2); n != 0 {
		t.Fatalf("%d spool file(s) leaked after a dead-fleet 502", n)
	}
}

// TestSpoolCleanupOnClientDisconnect: the client walks away while the
// replica still holds the request; the handler unwinds through its
// deferred cleanup and the spool file goes with it.
func TestSpoolCleanupOnClientDisconnect(t *testing.T) {
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		// Hold the in-flight request until the client's disconnect
		// propagates (or the test gives up).
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer backend.Close()
	defer close(release)
	_, ts, dir := spoolGateway(t, Config{}, strings.TrimPrefix(backend.URL, "http://"))

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/scan",
		bytes.NewReader(spoolBody()))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// The handler finishes asynchronously after the disconnect; poll
	// briefly for the deferred cleanup to land.
	deadline := time.Now().Add(5 * time.Second)
	for countSpoolFiles(t, dir) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d spool file(s) still present after client disconnect", countSpoolFiles(t, dir))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSpoolCleanupOnOversizeAndDrain: a 413 cleans up eagerly inside
// readPayload, and a draining gateway sheds before ever spooling.
func TestSpoolCleanupOnOversizeAndDrain(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write([]byte(`{}`))
	}))
	defer backend.Close()
	gw, ts, dir := spoolGateway(t, Config{MaxBodyBytes: 2048},
		strings.TrimPrefix(backend.URL, "http://"))

	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(spoolBody()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize status %d, want 413", resp.StatusCode)
	}
	if n := countSpoolFiles(t, dir); n != 0 {
		t.Fatalf("%d spool file(s) leaked after a 413", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	gw.Close(ctx)
	resp, err = http.Post(ts.URL+"/v1/scan", "application/octet-stream",
		bytes.NewReader(bytes.Repeat([]byte{1}, 1024)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", resp.StatusCode)
	}
	if n := countSpoolFiles(t, dir); n != 0 {
		t.Fatalf("%d spool file(s) leaked from a draining gateway", n)
	}
}
