package eval

import (
	"fmt"
	"math/rand"

	"mpass/internal/attacks"
	"mpass/internal/av"
	"mpass/internal/core"
	"mpass/internal/packer"
	"mpass/internal/pefile"
	"mpass/internal/shapley"
)

// RunPackerComparison reproduces Table IV: UPX, PESpin, and ASPack against
// the five AVs, with MPass's Figure-3 row for comparison. A packer "succeeds"
// on a sample when its packed output evades the AV (packers are one-shot —
// no query loop).
func (s *Suite) RunPackerComparison(mpassRow map[string]*Cell) (*Grid, error) {
	grid := newGrid()
	for _, p := range packer.All() {
		for _, target := range s.AVs {
			target.ResetSignatures()
			cell := &Cell{Attack: p.Name(), Target: target.Name()}
			rng := rand.New(rand.NewSource(s.Cfg.Seed + int64(len(p.Name()))))
			for _, v := range s.Victims {
				packed, err := p.Pack(v.Raw, rng)
				if err != nil {
					return nil, fmt.Errorf("eval: %s: %w", p.Name(), err)
				}
				cell.Total++
				cell.Queries++
				if !target.Detected(packed) {
					cell.Success++
					cell.SumAPR += 100 * float64(len(packed)-len(v.Raw)) / float64(len(v.Raw))
					cell.AEs = append(cell.AEs, VictimAE{VictimIdx: cell.Total - 1, AE: packed})
				}
			}
			grid.put(cell)
		}
	}
	// MPass's row comes from the Figure-3 grid so the comparison uses the
	// same AEs, as the paper does.
	for tgt, cell := range mpassRow {
		c := *cell
		c.Target = tgt
		grid.put(&c)
	}
	return grid, nil
}

// positionAblationGrid runs an MPass variant (configured by mutate) against
// the five AVs — shared by the Table V and Table VI ablations.
func (s *Suite) positionAblationGrid(name string, mutate func(*core.Config)) (*Grid, error) {
	grid := newGrid()
	for _, target := range s.AVs {
		target.ResetSignatures()
		factory := AttackFactory{Name: name, New: func(seed int64) (attacks.Attack, error) {
			cfg := core.DefaultConfig(s.KnownFor(target.Name()), s.MPassDonorPool)
			cfg.MaxQueries = s.Cfg.MaxQueries
			cfg.Seed = seed
			mutate(&cfg)
			atk, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return attacks.NewMPass(atk), nil
		}}
		cell, err := s.runCell(factory, target, target.Name())
		if err != nil {
			return nil, err
		}
		grid.put(cell)
	}
	return grid, nil
}

// RunOtherSecAblation reproduces Table V: the Other-sec setting encodes
// only non-code/data sections (all other attack machinery unchanged).
func (s *Suite) RunOtherSecAblation() (*Grid, error) {
	return s.positionAblationGrid("Other-sec", func(cfg *core.Config) {
		cfg.CriticalSections = []string{".rdata", ".idata", ".rsrc"}
	})
}

// RunRandomDataAblation reproduces Table VI: random bytes at the same
// modification positions, no optimization.
func (s *Suite) RunRandomDataAblation() (*Grid, error) {
	return s.positionAblationGrid("Random data", func(cfg *core.Config) {
		cfg.Fill = core.FillRandom
		cfg.SkipOptimize = true
	})
}

// RunEnsembleAblation is the DESIGN.md design-choice ablation: MPass with a
// single known model versus the full ensemble, attacking LightGBM (the one
// target that is never in the ensemble, so transfer quality is isolated).
func (s *Suite) RunEnsembleAblation() (*Grid, error) {
	grid := newGrid()
	oracle := core.DetectorOracle{D: s.LGBM}
	for _, v := range []struct {
		name string
		n    int
	}{{"ensemble-1", 1}, {"ensemble-all", 3}} {
		v := v
		factory := AttackFactory{Name: v.name, New: func(seed int64) (attacks.Attack, error) {
			known := s.KnownFor(s.LGBM.Name())
			if len(known) > v.n {
				known = known[:v.n]
			}
			cfg := core.DefaultConfig(known, s.MPassDonorPool)
			cfg.MaxQueries = s.Cfg.MaxQueries
			cfg.Seed = seed
			atk, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return attacks.NewMPass(atk), nil
		}}
		cell, err := s.runCell(factory, oracle, s.LGBM.Name())
		if err != nil {
			return nil, err
		}
		grid.put(cell)
	}
	return grid, nil
}

// RunShuffleAblation contrasts MPass with and without the shuffle strategy
// under AV learning — the design choice Figure 4 rests on. It returns
// bypass-rate curves for both variants on one AV.
func (s *Suite) RunShuffleAblation(rounds int) (withShuffle, withoutShuffle []float64, err error) {
	target := s.AVs[0]
	run := func(shuffle bool) ([]float64, error) {
		target.ResetSignatures()
		factory := AttackFactory{Name: "MPass", New: func(seed int64) (attacks.Attack, error) {
			cfg := core.DefaultConfig(s.KnownFor(target.Name()), s.MPassDonorPool)
			cfg.MaxQueries = s.Cfg.MaxQueries
			cfg.Seed = seed
			cfg.Shuffle = shuffle
			atk, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return attacks.NewMPass(atk), nil
		}}
		cell, err := s.runCell(factory, target, target.Name())
		if err != nil {
			return nil, err
		}
		var pool [][]byte
		for _, ae := range cell.AEs {
			pool = append(pool, ae.AE)
		}
		return s.learningCurve(target, map[string][][]byte{"MPass": pool}, rounds)["MPass"], nil
	}
	if withShuffle, err = run(true); err != nil {
		return nil, nil, err
	}
	if withoutShuffle, err = run(false); err != nil {
		return nil, nil, err
	}
	return withShuffle, withoutShuffle, nil
}

// PEMRanking is the §III-B explainability result.
type PEMRanking struct {
	Result *shapley.Result
	// Top2OverTop3 is the mean ratio between the 2nd and 3rd ranked
	// sections' Shapley values across models (paper: 1.3–6.0×).
	Top2OverTop3 float64
}

// RunPEMRanking runs Algorithm 1 over the known models and a sample of the
// victim malware.
func (s *Suite) RunPEMRanking(nSamples int) (*PEMRanking, error) {
	if nSamples > len(s.Victims) {
		nSamples = len(s.Victims)
	}
	var raws [][]byte
	for _, v := range s.Victims[:nSamples] {
		raws = append(raws, v.Raw)
	}
	models := []shapley.Model{s.MalConv, s.NonNeg, s.MalGCG, s.LGBM}
	res, err := shapley.PEM(models, raws, shapley.Config{TopH: 10, TopK: 3, Workers: s.Cfg.Workers})
	if err != nil {
		return nil, err
	}
	var ratioSum float64
	var n int
	for _, ranked := range res.PerModel {
		if len(ranked) >= 3 && ranked[2].Value > 1e-9 {
			ratioSum += ranked[1].Value / ranked[2].Value
			n++
		}
	}
	out := &PEMRanking{Result: res}
	if n > 0 {
		out.Top2OverTop3 = ratioSum / float64(n)
	}
	return out, nil
}

// LearningCurves maps attack -> per-round bypass rate (Figure 4, one AV).
type LearningCurves map[string][]float64

// RunLearningCurve reproduces Figure 4 for one AV: the successful AEs from
// the Figure-3 grid are re-submitted after each weekly learning round. The
// AV learns from the union of everything submitted to it (it cannot tell
// attacks apart), and each curve tracks its own attack's surviving AEs.
func (s *Suite) RunLearningCurve(avGrid *Grid, avName string, rounds int) (LearningCurves, error) {
	var target *av.AV
	for _, a := range s.AVs {
		if a.Name() == avName {
			target = a
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("eval: unknown AV %q", avName)
	}
	pools := make(map[string][][]byte)
	for _, atk := range avGrid.Attacks {
		cell := avGrid.Cell(atk, avName)
		if cell == nil {
			continue
		}
		for _, ae := range cell.AEs {
			pools[atk] = append(pools[atk], ae.AE)
		}
	}
	target.ResetSignatures()
	return s.learningCurve(target, pools, rounds), nil
}

// learningCurve drives the weekly rounds. Round 0 is pre-learning (100% by
// construction); before each later round the AV mines the union pool.
func (s *Suite) learningCurve(target *av.AV, pools map[string][][]byte, rounds int) LearningCurves {
	var union [][]byte
	for _, pool := range pools {
		union = append(union, pool...)
	}
	curves := make(LearningCurves)
	for atk := range pools {
		curves[atk] = make([]float64, 0, rounds)
	}
	for r := 0; r < rounds; r++ {
		if r > 0 {
			target.LearnRound(union, 30)
		}
		for atk, pool := range pools {
			if len(pool) == 0 {
				curves[atk] = append(curves[atk], 0)
				continue
			}
			pass := 0
			for _, ae := range pool {
				if !target.Detected(ae) {
					pass++
				}
			}
			curves[atk] = append(curves[atk], 100*float64(pass)/float64(len(pool)))
		}
	}
	return curves
}

// SectionStats summarizes how much of the victims' byte mass lives in code
// and data sections — the §I claim that they are "often more than 60%".
func (s *Suite) SectionStats() (codeDataFraction float64, err error) {
	var cd, total float64
	for _, v := range s.Victims {
		f, err := pefile.Parse(v.Raw)
		if err != nil {
			return 0, err
		}
		total += float64(len(v.Raw))
		for _, sec := range f.Sections {
			if sec.IsCode() || sec.Characteristics&pefile.SecInitializedData != 0 {
				cd += float64(len(sec.Data))
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("eval: no victims")
	}
	return cd / total, nil
}
