package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Metric selects which grid quantity a table renders.
type Metric int

// The three Table I–III quantities.
const (
	MetricASR Metric = iota
	MetricAVQ
	MetricAPR
)

func (m Metric) String() string {
	switch m {
	case MetricASR:
		return "ASR (%)"
	case MetricAVQ:
		return "AVQ"
	case MetricAPR:
		return "APR (%)"
	}
	return "?"
}

func (m Metric) of(c *Cell) float64 {
	switch m {
	case MetricASR:
		return c.ASR()
	case MetricAVQ:
		return c.AVQ()
	case MetricAPR:
		return c.APR()
	}
	return 0
}

// RenderTable renders the grid as a fixed-width text table with targets as
// rows and attacks as columns — the layout of the paper's Tables I–VI.
func (g *Grid) RenderTable(title string, m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", title, m)
	width := 10
	fmt.Fprintf(&b, "%-10s", "Target")
	for _, atk := range g.Attacks {
		fmt.Fprintf(&b, "%*s", width, atk)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 10+width*len(g.Attacks)))
	b.WriteByte('\n')
	for _, tgt := range g.Targets {
		fmt.Fprintf(&b, "%-10s", tgt)
		for _, atk := range g.Attacks {
			c := g.Cell(atk, tgt)
			if c == nil {
				fmt.Fprintf(&b, "%*s", width, "-")
				continue
			}
			fmt.Fprintf(&b, "%*.1f", width, m.of(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFunctionality renders the §IV-A verification result.
func RenderFunctionality(reports []FunctionalityReport) string {
	var b strings.Builder
	b.WriteString("Functionality-preserving check (sandbox trace equality)\n")
	fmt.Fprintf(&b, "%-10s%12s%10s%10s\n", "Attack", "preserved %", "ok", "broken")
	b.WriteString(strings.Repeat("-", 42))
	b.WriteByte('\n')
	for _, r := range reports {
		fmt.Fprintf(&b, "%-10s%12.1f%10d%10d\n", r.Attack, r.Rate(), r.Preserved, r.Broken)
	}
	return b.String()
}

// RenderCurves renders Figure-4-style bypass-rate series.
func RenderCurves(title string, curves LearningCurves) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — bypass rate (%%) per learning round\n", title)
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	rounds := 0
	for _, n := range names {
		if len(curves[n]) > rounds {
			rounds = len(curves[n])
		}
	}
	fmt.Fprintf(&b, "%-10s", "Attack")
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("wk%d", r))
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 10+8*rounds))
	b.WriteByte('\n')
	for _, n := range names {
		fmt.Fprintf(&b, "%-10s", n)
		for _, v := range curves[n] {
			fmt.Fprintf(&b, "%8.1f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPEM renders the §III-B explainability finding.
func RenderPEM(r *PEMRanking) string {
	var b strings.Builder
	b.WriteString("PEM (Algorithm 1) — per-model mean section Shapley values\n")
	names := make([]string, 0, len(r.Result.PerModel))
	for n := range r.Result.PerModel {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-10s", n)
		for i, sc := range r.Result.PerModel[n] {
			if i >= 5 {
				break
			}
			fmt.Fprintf(&b, "  %s=%.4f", sc.Section, sc.Value)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "common critical sections S~: %v\n", r.Result.Critical)
	fmt.Fprintf(&b, "rank-2 / rank-3 Shapley ratio: %.2fx (paper reports 1.3-6.0x)\n", r.Top2OverTop3)
	return b.String()
}
