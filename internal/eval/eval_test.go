package eval

import (
	"strings"
	"sync"
	"testing"
)

// One shared quick-config suite: Setup trains nine models and is by far the
// slowest step.
var (
	suiteOnce sync.Once
	suiteErr  error
	s         *Suite
)

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		s, suiteErr = Setup(QuickConfig())
	})
	if suiteErr != nil {
		t.Fatalf("Setup: %v", suiteErr)
	}
	return s
}

func TestSetupSelectsEligibleVictims(t *testing.T) {
	s := quickSuite(t)
	if len(s.Victims) == 0 {
		t.Fatal("no victims")
	}
	for _, v := range s.Victims {
		for _, d := range s.OfflineTargets() {
			if !d.Label(v.Raw) {
				t.Errorf("victim %s not detected by %s", v.Name, d.Name())
			}
		}
	}
}

func TestKnownForExcludesTargetAndLightGBM(t *testing.T) {
	s := quickSuite(t)
	known := s.KnownFor("MalConv")
	if len(known) != 2 {
		t.Fatalf("known models = %d, want 2", len(known))
	}
	for _, m := range known {
		if m.Name() == "MalConv" || m.Name() == "LightGBM" {
			t.Errorf("%s must not be a known model here", m.Name())
		}
	}
	if got := len(s.KnownFor("LightGBM")); got != 3 {
		t.Errorf("LightGBM target: known = %d, want 3", got)
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m := Metrics{Success: 2, Total: 4, Queries: 20, SumAPR: 300}
	if m.ASR() != 50 {
		t.Errorf("ASR = %v", m.ASR())
	}
	if m.AVQ() != 5 {
		t.Errorf("AVQ = %v", m.AVQ())
	}
	if m.APR() != 150 {
		t.Errorf("APR = %v", m.APR())
	}
	var zero Metrics
	if zero.ASR() != 0 || zero.AVQ() != 0 || zero.APR() != 0 {
		t.Error("zero metrics not zero")
	}
}

func TestOfflineGridSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid in -short mode")
	}
	s := quickSuite(t)
	grid, err := s.RunOfflineGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Attacks) != 5 || len(grid.Targets) != 4 {
		t.Fatalf("grid = %d attacks × %d targets", len(grid.Attacks), len(grid.Targets))
	}
	// Primary claim: MPass's ASR is the maximum on every differentiable
	// target. LightGBM is the documented exception (EXPERIMENTS.md): it is
	// never a known model, and on this substrate conv-ensemble transfer to
	// a tree model over structural features is only partial, while
	// benign-injection baselines can wash the trees out entirely.
	for _, tgt := range grid.Targets {
		mp := grid.Cell("MPass", tgt).ASR()
		if tgt == "LightGBM" {
			if mp == 0 {
				t.Errorf("MPass ASR on LightGBM = 0, want partial transfer")
			}
			continue
		}
		for _, atk := range grid.Attacks {
			if atk == "MPass" {
				continue
			}
			if got := grid.Cell(atk, tgt).ASR(); got > mp {
				t.Errorf("%s ASR %.1f beats MPass %.1f on %s", atk, got, mp, tgt)
			}
		}
		if mp < 80 {
			t.Errorf("MPass ASR on %s = %.1f, want high", tgt, mp)
		}
		// Query efficiency: MPass needs the fewest queries.
		mq := grid.Cell("MPass", tgt).AVQ()
		if mq > 15 {
			t.Errorf("MPass AVQ on %s = %.1f", tgt, mq)
		}
	}

	t.Run("functionality", func(t *testing.T) {
		reports, err := s.RunFunctionalityCheck(grid)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reports {
			if r.Attack == "MPass" && r.Broken > 0 {
				t.Errorf("MPass broke %d AEs", r.Broken)
			}
		}
		out := RenderFunctionality(reports)
		if !strings.Contains(out, "MPass") {
			t.Error("render missing MPass row")
		}
	})

	t.Run("render", func(t *testing.T) {
		for _, m := range []Metric{MetricASR, MetricAVQ, MetricAPR} {
			out := grid.RenderTable("TABLE", m)
			if !strings.Contains(out, "MalConv") || !strings.Contains(out, "MPass") {
				t.Errorf("render %v missing headers:\n%s", m, out)
			}
		}
	})
}

func TestPEMRankingFindsContentSections(t *testing.T) {
	s := quickSuite(t)
	r, err := s.RunPEMRanking(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Result.Critical) == 0 {
		t.Fatal("PEM found no common critical sections")
	}
	// The attack-relevant property: every PEM-critical section must be in
	// MPass's default modification set (code + initialized-data sections),
	// so the attack's recovery construction covers the features the models
	// actually use. Header-adjacent sections would break this.
	content := map[string]bool{
		".text": true, ".data": true, ".rdata": true, ".idata": true, ".rsrc": true,
	}
	for _, c := range r.Result.Critical {
		if !content[c] {
			t.Errorf("critical section %q outside the code/data modification set", c)
		}
	}
	out := RenderPEM(r)
	if !strings.Contains(out, "common critical sections") {
		t.Error("RenderPEM output malformed")
	}
}

func TestSectionStats(t *testing.T) {
	s := quickSuite(t)
	frac, err := s.SectionStats()
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.4 || frac > 1 {
		t.Errorf("code+data fraction = %.2f, want the dominant share", frac)
	}
}

func TestLearningCurveUnknownAV(t *testing.T) {
	s := quickSuite(t)
	if _, err := s.RunLearningCurve(newGrid(), "AV99", 3); err == nil {
		t.Error("unknown AV accepted")
	}
}

func TestRenderCurves(t *testing.T) {
	curves := LearningCurves{
		"MPass": {100, 100, 100},
		"MAB":   {100, 60, 40},
	}
	out := RenderCurves("AV1", curves)
	if !strings.Contains(out, "wk2") || !strings.Contains(out, "MAB") {
		t.Errorf("curve render malformed:\n%s", out)
	}
}

func TestMetricStrings(t *testing.T) {
	if MetricASR.String() != "ASR (%)" || MetricAVQ.String() != "AVQ" || MetricAPR.String() != "APR (%)" {
		t.Error("metric names wrong")
	}
	if Metric(99).String() != "?" {
		t.Error("unknown metric name")
	}
}

func TestConfigValidateRejectsNegativeWorkers(t *testing.T) {
	cfg := QuickConfig()
	cfg.Workers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted Workers = -1")
	}
	if _, err := Setup(cfg); err == nil {
		t.Error("Setup accepted Workers = -1")
	}
	cfg.Workers = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate rejected Workers = 0: %v", err)
	}
}
