package eval

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	g := newGrid()
	g.Put(&Cell{Attack: "MPass", Target: "MalConv",
		Metrics: Metrics{Success: 3, Total: 4, Queries: 9, SumAPR: 450}})
	g.Put(&Cell{Attack: "MAB", Target: "MalConv",
		Metrics: Metrics{Success: 1, Total: 4, Queries: 80, SumAPR: 900}})

	var b strings.Builder
	if err := g.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "attack,target,asr_pct") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "MPass,MalConv,75.00,2.25,150.00,3,4,9") {
		t.Errorf("missing MPass row:\n%s", out)
	}
}

func TestWriteCurvesCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCurvesCSV(&b, "AV1", LearningCurves{"MPass": {100, 100}, "MAB": {100, 40}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "AV1,MAB,1,40.00") {
		t.Errorf("missing decayed MAB row:\n%s", out)
	}
	if strings.Count(out, "\n") != 5 { // header + 4 rows
		t.Errorf("unexpected row count:\n%s", out)
	}
}

func TestWriteFunctionalityCSV(t *testing.T) {
	var b strings.Builder
	reports := []FunctionalityReport{{Attack: "RLA", Preserved: 7, Broken: 3}}
	if err := WriteFunctionalityCSV(&b, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "RLA,7,3,70.00") {
		t.Errorf("bad functionality CSV:\n%s", b.String())
	}
}
