package eval

import (
	"fmt"
	"math/rand"

	"mpass/internal/attacks"
	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/detect"
)

// ATResult reports the §VI "Adversarial training" experiment: the paper
// retrains a detector on a 50/50 mix of MPass AEs and clean malware and
// finds the attack's success rate suppressed by less than 10 points.
type ATResult struct {
	// BaselineASR is MPass's ASR against the originally trained model.
	BaselineASR float64
	// ATASR is MPass's ASR against the adversarially trained model.
	ATASR float64
	// CleanAccBefore/After track the collateral cost on clean accuracy.
	CleanAccBefore, CleanAccAfter float64
}

// Suppression is the ASR drop in percentage points.
func (r *ATResult) Suppression() float64 { return r.BaselineASR - r.ATASR }

// RunAdversarialTraining reproduces the classic-AT probe of §VI against
// MalConv: generate MPass AEs for the training-split malware, retrain the
// model with those AEs mixed 50/50 into the malware class, and re-attack.
// The paper's observation — and this harness's result — is that the AE
// space reachable by MPass (fresh donors, fresh shuffles, re-optimized
// perturbations) is far larger than any finite AE sample, so AT suppresses
// the attack by only a few points.
func (s *Suite) RunAdversarialTraining() (*ATResult, error) {
	res := &ATResult{CleanAccBefore: 100 * detect.Accuracy(s.MalConv, s.DS.Test)}

	// Baseline ASR on the victim set.
	base, err := s.mpassASR(s.MalConv, s.Cfg.Seed+41000)
	if err != nil {
		return nil, err
	}
	res.BaselineASR = base

	// Generate AEs against the *current* model for training malware.
	atkCfg := core.DefaultConfig(s.KnownFor("MalConv"), s.MPassDonorPool)
	atkCfg.MaxQueries = 20
	atkCfg.Seed = s.Cfg.Seed + 42000
	attacker, err := core.New(atkCfg)
	if err != nil {
		return nil, err
	}
	var aes []*corpus.Sample
	for _, m := range s.DS.Train {
		if m.Family != corpus.Malware {
			continue
		}
		r, err := attacker.Attack(m.Raw, &core.CountingOracle{Oracle: core.DetectorOracle{D: s.MalConv}})
		if err != nil {
			return nil, fmt.Errorf("eval: AT AE generation: %w", err)
		}
		if r.Success {
			aes = append(aes, &corpus.Sample{
				Name: "ae-" + m.Name, Family: corpus.Malware, Raw: r.AE,
			})
		}
	}
	if len(aes) == 0 {
		return nil, fmt.Errorf("eval: no AEs for adversarial training")
	}

	// Retrain with the 50/50 AE/clean malware mix (Szegedy-style AT).
	mixed := &corpus.Dataset{Test: s.DS.Test}
	mixed.Train = append(mixed.Train, s.DS.Train...)
	mixed.Train = append(mixed.Train, aes...)
	tc := s.Cfg.Train
	tc.Seed += 7
	hardened, err := detect.TrainMalConv(mixed, tc)
	if err != nil {
		return nil, err
	}
	res.CleanAccAfter = 100 * detect.Accuracy(hardened, s.DS.Test)

	after, err := s.mpassASR(hardened, s.Cfg.Seed+43000)
	if err != nil {
		return nil, err
	}
	res.ATASR = after
	return res, nil
}

// mpassASR attacks every victim with fresh MPass instances and returns ASR.
func (s *Suite) mpassASR(target detect.Detector, seed int64) (float64, error) {
	factory := AttackFactory{Name: "MPass", New: func(sd int64) (attacks.Attack, error) {
		cfg := core.DefaultConfig(s.KnownFor(target.Name()), s.MPassDonorPool)
		cfg.MaxQueries = s.Cfg.MaxQueries
		cfg.Seed = sd + seed
		atk, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return attacks.NewMPass(atk), nil
	}}
	cell, err := s.runCell(factory, core.DetectorOracle{D: target}, target.Name())
	if err != nil {
		return 0, err
	}
	return cell.ASR(), nil
}

// RunGradientATProbe demonstrates the paper's first §VI argument: AT with
// *uniform gradient perturbations* (PGD-style byte noise that ignores
// functionality constraints) produces training points outside the
// distribution of real function-preserving AEs, so it does not help
// against MPass. The probe retrains MalConv on noise-perturbed malware and
// reports the (non-)suppression.
func (s *Suite) RunGradientATProbe() (*ATResult, error) {
	res := &ATResult{CleanAccBefore: 100 * detect.Accuracy(s.MalConv, s.DS.Test)}
	base, err := s.mpassASR(s.MalConv, s.Cfg.Seed+44000)
	if err != nil {
		return nil, err
	}
	res.BaselineASR = base

	// "Gradient AE" stand-ins: malware with uniform random byte flips —
	// what unconstrained PGD in byte space amounts to after projection.
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 45000))
	var noisy []*corpus.Sample
	for _, m := range s.DS.Train {
		if m.Family != corpus.Malware {
			continue
		}
		raw := append([]byte(nil), m.Raw...)
		flips := len(raw) / 10
		for i := 0; i < flips; i++ {
			raw[rng.Intn(len(raw))] = byte(rng.Intn(256))
		}
		noisy = append(noisy, &corpus.Sample{Name: "pgd-" + m.Name, Family: corpus.Malware, Raw: raw})
	}
	mixed := &corpus.Dataset{Test: s.DS.Test}
	mixed.Train = append(mixed.Train, s.DS.Train...)
	mixed.Train = append(mixed.Train, noisy...)
	tc := s.Cfg.Train
	tc.Seed += 11
	hardened, err := detect.TrainMalConv(mixed, tc)
	if err != nil {
		return nil, err
	}
	res.CleanAccAfter = 100 * detect.Accuracy(hardened, s.DS.Test)
	after, err := s.mpassASR(hardened, s.Cfg.Seed+46000)
	if err != nil {
		return nil, err
	}
	res.ATASR = after
	return res, nil
}

// RenderAT formats a §VI defense-probe result.
func RenderAT(title string, r *ATResult) string {
	return fmt.Sprintf(
		"%s\n  MPass ASR before: %5.1f%%   after: %5.1f%%   suppression: %.1f points\n  clean accuracy  : %5.1f%% -> %5.1f%%\n",
		title, r.BaselineASR, r.ATASR, r.Suppression(), r.CleanAccBefore, r.CleanAccAfter)
}

// Interface check: the hardened model still satisfies GradientModel.
var _ detect.GradientModel = (*detect.ConvDetector)(nil)
