package eval

import (
	"testing"

	"mpass/internal/engine"
)

// TestEngineSetWrapsWholeSuite: the bridge must expose every suite model —
// offline targets in §IV-A order, AV simulators after — scoring identically
// to the wrapped originals, with the gradient probe reproducing KnownFor.
func TestEngineSetWrapsWholeSuite(t *testing.T) {
	s := quickSuite(t)
	set, err := s.EngineSet()
	if err != nil {
		t.Fatalf("EngineSet: %v", err)
	}
	offline := s.OfflineTargets()
	if set.Len() != len(offline)+len(s.AVs) {
		t.Fatalf("set has %d engines, want %d offline + %d AVs", set.Len(), len(offline), len(s.AVs))
	}
	for i, d := range offline {
		if set.Names()[i] != d.Name() {
			t.Fatalf("engine %d = %s, want offline target %s", i, set.Names()[i], d.Name())
		}
	}
	for i, a := range s.AVs {
		got := set.Drivers()[len(offline)+i]
		if got.Name() != a.Name() {
			t.Fatalf("engine %d = %s, want AV %s", len(offline)+i, got.Name(), a.Name())
		}
		if got.Version() == "" {
			t.Fatalf("AV driver %s has no version tag", a.Name())
		}
	}

	// Scores and verdicts pass through unchanged: same weights, same state.
	raw := s.Victims[0].Raw
	for i, d := range offline {
		if got, want := set.Drivers()[i].Score(raw), d.Score(raw); got != want {
			t.Fatalf("%s: driver score %v != suite score %v", d.Name(), got, want)
		}
	}
	for i, a := range s.AVs {
		drv := set.Drivers()[len(offline)+i]
		if drv.Label(raw) != a.Detected(raw) {
			t.Fatalf("%s: driver verdict != AV verdict", a.Name())
		}
	}

	// The capability probes reproduce KnownFor through the bridge: conv nets
	// minus the target; trees and AVs (hard-label) never.
	for _, target := range []string{"MalConv", "LightGBM", s.AVs[0].Name()} {
		want := s.KnownFor(target)
		got := engine.GradientModels(set, target)
		if len(got) != len(want) {
			t.Fatalf("target %s: %d gradient models, want %d", target, len(got), len(want))
		}
		for i := range want {
			if got[i].Name() != want[i].Name() {
				t.Fatalf("target %s: ensemble[%d] = %s, want %s", target, i, got[i].Name(), want[i].Name())
			}
		}
	}

	// AV drivers are live ensembles: the set cannot be persisted as a model
	// directory, and saying so is the API contract.
	if err := engine.SaveDir(t.TempDir(), set); err == nil {
		t.Fatal("SaveDir accepted a set containing live AV drivers")
	}
}
