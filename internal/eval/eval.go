// Package eval is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IV–§V) on the synthetic substrate:
//
//	Table I/II/III — ASR/AVQ/APR of {MPass, RLA, MAB, GAMMA, MalRNN} against
//	                 {MalConv, NonNeg, LightGBM, MalGCG}  (RunOfflineGrid)
//	§IV-A          — functionality verification of all AEs (RunFunctionalityCheck)
//	Figure 3       — ASR of the five attacks against AV1..AV5 (RunAVGrid)
//	Table IV       — UPX/PESpin/ASPack vs MPass on the AVs (RunPackerComparison)
//	Figure 4       — bypass rate under AV learning over five rounds (RunLearningCurve)
//	Table V        — Other-sec ablation (RunOtherSecAblation)
//	Table VI       — random-data ablation (RunRandomDataAblation)
//	§III-B finding — PEM section ranking (RunPEMRanking)
//	DESIGN ablation — known-ensemble size (RunEnsembleAblation)
//
// The suite owns the corpus, the trained detectors, the AV simulators, the
// donor pools, and the MalRNN language model, so one Setup call prepares
// every experiment.
package eval

import (
	"fmt"
	"runtime"
	"sync"

	"mpass/internal/attacks"
	"mpass/internal/av"
	"mpass/internal/core"
	"mpass/internal/corpus"
	"mpass/internal/detect"
	"mpass/internal/nn"
	"mpass/internal/sandbox"
)

// Config sizes the evaluation. Defaults reproduce the paper's shape at
// laptop scale; the paper's own sizes (2000 malware, 50k donors) are noted
// inline.
type Config struct {
	Seed int64
	// Corpus sizing (paper: 2000 malware + separate benign corpora).
	NumMalware, NumBenign int
	TrainFrac             float64
	// Victims is how many detected malware samples each experiment attacks.
	Victims int
	// MaxQueries is the per-sample budget (paper: 100).
	MaxQueries int
	// MPassDonors is MPass's benign-donor pool size (paper: 50,000).
	MPassDonors int
	// BaselineDonors is the baselines' payload pool size (their published
	// tools ship small fixed payload sets).
	BaselineDonors int
	// Train configures detector training.
	Train detect.TrainConfig
	// Workers bounds attack parallelism (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig is the full benchmark configuration.
func DefaultConfig() Config {
	return Config{
		Seed:       1,
		NumMalware: 60, NumBenign: 60, TrainFrac: 0.67,
		Victims:     20,
		MaxQueries:  100,
		MPassDonors: 256, BaselineDonors: 6,
		Train: detect.DefaultTrainConfig(),
	}
}

// QuickConfig is a scaled-down configuration for tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.NumMalware, cfg.NumBenign = 40, 40
	cfg.TrainFrac = 0.75
	cfg.Victims = 6
	cfg.MaxQueries = 40
	cfg.MPassDonors = 64
	return cfg
}

// Suite bundles everything the experiments need.
type Suite struct {
	Cfg Config
	DS  *corpus.Dataset

	MalConv *detect.ConvDetector
	NonNeg  *detect.ConvDetector
	LGBM    *detect.GBDTDetector
	MalGCG  *detect.ConvDetector
	AVs     []*av.AV

	MPassDonorPool    [][]byte
	BaselineDonorPool [][]byte
	LM                *nn.ByteLM

	// Victims are test-split malware samples verified to (1) run with
	// malicious behaviour in the sandbox and (2) be detected by every
	// offline model — the paper's two sample requirements.
	Victims []*corpus.Sample
}

// Setup builds the corpus, trains all detectors and AV simulators, trains
// the MalRNN language model, and selects the victim set.
func Setup(cfg Config) (*Suite, error) {
	s := &Suite{Cfg: cfg}
	s.DS = corpus.MakeAugmentedDataset(cfg.Seed, cfg.NumMalware, cfg.NumBenign, cfg.TrainFrac)

	var err error
	s.MalConv, s.NonNeg, s.LGBM, s.MalGCG, err = detect.TrainAll(s.DS, cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("eval: offline models: %w", err)
	}

	g := corpus.NewGenerator(cfg.Seed + 77000)
	for i := 0; i < cfg.MPassDonors; i++ {
		s.MPassDonorPool = append(s.MPassDonorPool, g.Sample(corpus.Benign).Raw)
	}
	for i := 0; i < cfg.BaselineDonors; i++ {
		s.BaselineDonorPool = append(s.BaselineDonorPool, g.Sample(corpus.Benign).Raw)
	}

	// The donor programs are ordinary benign software; vendors have the
	// same files in their benign corpora (see av.SuiteConfig.ExtraBenignRef).
	extraRef := append(append([][]byte{}, s.MPassDonorPool...), s.BaselineDonorPool...)
	s.AVs, err = av.NewSuite(s.DS, av.SuiteConfig{
		Train: cfg.Train, Seed: cfg.Seed + 9000, ExtraBenignRef: extraRef,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: AV suite: %w", err)
	}
	s.LM, err = attacks.TrainMalRNNLM(s.BaselineDonorPool, 3, cfg.Seed+5)
	if err != nil {
		return nil, fmt.Errorf("eval: MalRNN LM: %w", err)
	}

	// Victim selection: sandbox-verified malicious behaviour + detected by
	// all offline models.
	for _, m := range s.DS.Test {
		if m.Family != corpus.Malware {
			continue
		}
		res, err := sandbox.Run(m.Raw)
		if err != nil || !res.Halted() || !hasSensitive(res.Trace) {
			continue
		}
		if s.MalConv.Label(m.Raw) && s.NonNeg.Label(m.Raw) &&
			s.LGBM.Label(m.Raw) && s.MalGCG.Label(m.Raw) {
			s.Victims = append(s.Victims, m)
		}
	}
	if len(s.Victims) == 0 {
		return nil, fmt.Errorf("eval: no eligible victims")
	}
	if len(s.Victims) > cfg.Victims {
		s.Victims = s.Victims[:cfg.Victims]
	}
	return s, nil
}

func hasSensitive(tr sandbox.Trace) bool {
	for _, e := range tr {
		if corpus.IsSensitive(e.API) {
			return true
		}
	}
	return false
}

// KnownFor returns MPass's known-model ensemble when attacking the named
// target: the remaining differentiable offline models (LightGBM can never
// be a known model — paper footnote 6; for AV targets all three are known).
func (s *Suite) KnownFor(target string) []detect.GradientModel {
	var out []detect.GradientModel
	for _, m := range []detect.GradientModel{s.MalConv, s.NonNeg, s.MalGCG} {
		if m.Name() != target {
			out = append(out, m)
		}
	}
	return out
}

// AttackFactory builds per-victim attack instances (attacks keep per-run
// RNG state, so each victim gets a fresh instance seeded deterministically).
type AttackFactory struct {
	Name string
	New  func(seed int64) (attacks.Attack, error)
}

// Factories returns the five attacks of Tables I–III, configured for the
// named target.
func (s *Suite) Factories(target string) []AttackFactory {
	base := attacks.Config{Donors: s.BaselineDonorPool, MaxQueries: s.Cfg.MaxQueries}
	return []AttackFactory{
		{Name: "MPass", New: func(seed int64) (attacks.Attack, error) {
			cfg := core.DefaultConfig(s.KnownFor(target), s.MPassDonorPool)
			cfg.MaxQueries = s.Cfg.MaxQueries
			cfg.Seed = seed
			atk, err := core.New(cfg)
			if err != nil {
				return nil, err
			}
			return attacks.NewMPass(atk), nil
		}},
		{Name: "RLA", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewRLA(c)
		}},
		{Name: "MAB", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewMAB(c)
		}},
		{Name: "GAMMA", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewGAMMA(c)
		}},
		{Name: "MalRNN", New: func(seed int64) (attacks.Attack, error) {
			c := base
			c.Seed = seed
			return attacks.NewMalRNN(c, s.LM)
		}},
	}
}

// Metrics are the paper's three comparison measures (§IV-A).
type Metrics struct {
	Success int
	Total   int
	Queries int     // summed over all victims (Q_all)
	SumAPR  float64 // summed over successful AEs
}

// ASR is the attack success rate in percent.
func (m *Metrics) ASR() float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(m.Success) / float64(m.Total)
}

// AVQ is Q_all / N, the paper's average-query metric.
func (m *Metrics) AVQ() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Queries) / float64(m.Total)
}

// APR is the mean file-size increment of successful AEs, in percent.
func (m *Metrics) APR() float64 {
	if m.Success == 0 {
		return 0
	}
	return m.SumAPR / float64(m.Success)
}

// Cell is one (attack, target) grid entry.
type Cell struct {
	Attack string
	Target string
	Metrics
	// AEs holds (victim index, AE bytes) for every success; consumed by
	// the functionality check and the AV-learning experiment.
	AEs []VictimAE
}

// VictimAE pairs a successful adversarial example with its victim.
type VictimAE struct {
	VictimIdx int
	AE        []byte
}

// runCell attacks every victim with per-victim instances of one attack
// against one oracle, in parallel.
func (s *Suite) runCell(factory AttackFactory, oracle core.Oracle, targetName string) (*Cell, error) {
	cell := &Cell{Attack: factory.Name, Target: targetName}
	workers := s.Cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type out struct {
		idx int
		res *core.Result
		err error
	}
	sem := make(chan struct{}, workers)
	results := make([]out, len(s.Victims))
	var wg sync.WaitGroup
	for i, v := range s.Victims {
		wg.Add(1)
		go func(i int, raw []byte) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			atk, err := factory.New(s.Cfg.Seed + int64(i)*7919)
			if err != nil {
				results[i] = out{idx: i, err: err}
				return
			}
			res, err := atk.Run(raw, &core.CountingOracle{Oracle: oracle})
			results[i] = out{idx: i, res: res, err: err}
		}(i, v.Raw)
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("eval: %s vs %s, victim %d: %w",
				factory.Name, targetName, r.idx, r.err)
		}
		cell.Total++
		cell.Queries += r.res.Queries
		if r.res.Success {
			cell.Success++
			orig := len(s.Victims[r.idx].Raw)
			cell.SumAPR += 100 * float64(len(r.res.AE)-orig) / float64(orig)
			cell.AEs = append(cell.AEs, VictimAE{VictimIdx: r.idx, AE: r.res.AE})
		}
	}
	return cell, nil
}
